//! Property tests spanning the ISA crate's encode/decode/print/parse
//! surfaces and the emulator's determinism guarantees.

use popk::emu::Machine;
use popk::isa::{asm, decode, encode, Insn, Op, Reg};
use proptest::prelude::*;

/// Strategy: an arbitrary well-formed instruction.
fn arb_insn() -> impl Strategy<Value = Insn> {
    let reg = (0u8..32).prop_map(Reg::gpr);
    let r3_ops = prop::sample::select(vec![
        Op::Add,
        Op::Addu,
        Op::Sub,
        Op::Subu,
        Op::Slt,
        Op::Sltu,
        Op::And,
        Op::Or,
        Op::Xor,
        Op::Nor,
        Op::Sllv,
        Op::Srlv,
        Op::Srav,
        Op::AddS,
        Op::SubS,
        Op::MulS,
        Op::DivS,
    ]);
    let imm_ops = prop::sample::select(vec![Op::Addi, Op::Addiu, Op::Slti]);
    let logic_imm_ops = prop::sample::select(vec![Op::Andi, Op::Ori, Op::Xori]);
    let load_ops = prop::sample::select(vec![Op::Lb, Op::Lbu, Op::Lh, Op::Lhu, Op::Lw]);
    let store_ops = prop::sample::select(vec![Op::Sb, Op::Sh, Op::Sw]);
    let shift_ops = prop::sample::select(vec![Op::Sll, Op::Srl, Op::Sra]);
    let br2_ops = prop::sample::select(vec![Op::Beq, Op::Bne]);
    let br1_ops = prop::sample::select(vec![Op::Blez, Op::Bgtz, Op::Bltz, Op::Bgez]);

    prop_oneof![
        (r3_ops, reg.clone(), reg.clone(), reg.clone())
            .prop_map(|(op, a, b, c)| Insn::r3(op, a, b, c)),
        (imm_ops, reg.clone(), reg.clone(), any::<i16>())
            .prop_map(|(op, a, b, i)| Insn::imm_op(op, a, b, i as i32)),
        (logic_imm_ops, reg.clone(), reg.clone(), any::<u16>())
            .prop_map(|(op, a, b, i)| Insn::imm_op(op, a, b, i as i32)),
        (reg.clone(), any::<u16>()).prop_map(|(a, i)| Insn::lui(a, i)),
        (load_ops, reg.clone(), any::<i16>(), reg.clone())
            .prop_map(|(op, a, off, b)| Insn::load(op, a, off, b)),
        (store_ops, reg.clone(), any::<i16>(), reg.clone())
            .prop_map(|(op, a, off, b)| Insn::store(op, a, off, b)),
        (shift_ops, reg.clone(), reg.clone(), 0u8..32)
            .prop_map(|(op, a, b, s)| Insn::shift_imm(op, a, b, s)),
        (br2_ops, reg.clone(), reg.clone(), -32768i32..32768)
            .prop_map(|(op, a, b, d)| Insn::branch(op, a, b, d)),
        (br1_ops, reg.clone(), -32768i32..32768)
            .prop_map(|(op, a, d)| Insn::branch(op, a, Reg::ZERO, d)),
        (0u32..(1 << 26)).prop_map(|t| Insn::jump(Op::J, t)),
        (0u32..(1 << 26)).prop_map(|t| Insn::jump(Op::Jal, t)),
        reg.clone().prop_map(|a| Insn::jump_reg(Op::Jr, Reg::ZERO, a)),
        (reg.clone(), reg.clone()).prop_map(|(a, b)| Insn::jump_reg(Op::Jalr, a, b)),
        (reg.clone(), reg.clone()).prop_map(|(a, b)| Insn::muldiv(Op::Mult, a, b)),
        (reg.clone(), reg.clone()).prop_map(|(a, b)| Insn::muldiv(Op::Divu, a, b)),
        reg.clone().prop_map(|a| Insn::mfhilo(Op::Mfhi, a)),
        reg.prop_map(|a| Insn::mfhilo(Op::Mflo, a)),
        Just(Insn::sys(Op::Syscall)),
        Just(Insn::nop()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// encode ∘ decode is the identity on well-formed instructions.
    #[test]
    fn encode_decode_roundtrip(insn in arb_insn()) {
        let word = encode(&insn);
        let back = decode(word).expect("well-formed instructions decode");
        prop_assert_eq!(back, insn);
    }

    /// Encoding is injective: distinct instructions get distinct words.
    #[test]
    fn encoding_is_injective(a in arb_insn(), b in arb_insn()) {
        if a != b {
            prop_assert_ne!(encode(&a), encode(&b));
        }
    }

    /// defs/uses never include more than two registers, never duplicate,
    /// and never list r0 as a def.
    #[test]
    fn def_use_wellformed(insn in arb_insn()) {
        let defs: Vec<_> = insn.defs().iter().collect();
        let uses: Vec<_> = insn.uses().iter().collect();
        prop_assert!(defs.len() <= 2);
        prop_assert!(uses.len() <= 2);
        prop_assert!(!defs.contains(&Reg::ZERO));
        let mut d = defs.clone();
        d.dedup();
        prop_assert_eq!(d.len(), defs.len());
    }
}

#[test]
fn workload_disassembly_reassembles() {
    // Program::disassemble output round-trips through the text assembler
    // for branchless-display forms is not guaranteed (labels become
    // relative displacements), but every emitted instruction must at
    // least re-encode identically through binary encode/decode.
    for w in popk::workloads::all() {
        let p = w.test_program();
        for insn in &p.text {
            let back = decode(encode(insn)).unwrap();
            assert_eq!(&back, insn, "{}: {insn}", w.name);
        }
    }
}

#[test]
fn workload_programs_roundtrip_through_object_format() {
    use popk::isa::obj::{read_object, write_object};
    for w in popk::workloads::all() {
        let p = w.test_program();
        let q = read_object(&write_object(&p)).unwrap();
        assert_eq!(q.text, p.text, "{}", w.name);
        assert_eq!(q.data, p.data, "{}", w.name);
        assert_eq!(q.entry, p.entry, "{}", w.name);
        assert_eq!(q.symbols, p.symbols, "{}", w.name);
    }
}

#[test]
fn emulation_is_deterministic() {
    let w = popk::workloads::by_name("twolf").unwrap();
    let p = w.test_program();
    let run = |p: &popk::isa::Program| {
        let mut m = Machine::new(p);
        m.run(1_000_000).unwrap();
        (m.icount(), m.output_ints().to_vec())
    };
    assert_eq!(run(&p), run(&p));
}

#[test]
fn assembler_accepts_its_own_documented_syntax() {
    // The full syntax surface in one program.
    let p = asm::assemble(
        r#"
        .data
        w:  .word 1, -2, 0x33
        h:  .half 7, 8
        by: .byte 'a', 255
        s:  .asciiz "ok\n"
            .align 8
        sp8: .space 8
        .text
        main:
            lui  r8, 0x1000
            ori  r8, r8, 0
            lw   r9, 0(r8)
            lh   r10, 4(r8)
            lbu  r11, 8(r8)
            move r12, r9
            li   r13, -70000
            la   r14, sp8
            sllv r15, r9, r10
            mult r9, r10
            mflo r16
            mthi r16
            jal  f
            b    end
        f:
            jalr r25
            jr   ra
        end:
            nop
            break
        "#,
    );
    let p = p.unwrap();
    assert!(p.symbol("sp8").is_some());
    assert!(p.text.len() > 15);
}
