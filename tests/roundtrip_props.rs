//! Property tests spanning the ISA crate's encode/decode/print/parse
//! surfaces and the emulator's determinism guarantees.

use popk::emu::Machine;
use popk::isa::rng::SplitMix64;
use popk::isa::{asm, decode, encode, Insn, Op, Reg};

const R3_OPS: [Op; 17] = [
    Op::Add,
    Op::Addu,
    Op::Sub,
    Op::Subu,
    Op::Slt,
    Op::Sltu,
    Op::And,
    Op::Or,
    Op::Xor,
    Op::Nor,
    Op::Sllv,
    Op::Srlv,
    Op::Srav,
    Op::AddS,
    Op::SubS,
    Op::MulS,
    Op::DivS,
];
const IMM_OPS: [Op; 3] = [Op::Addi, Op::Addiu, Op::Slti];
const LOGIC_IMM_OPS: [Op; 3] = [Op::Andi, Op::Ori, Op::Xori];
const LOAD_OPS: [Op; 5] = [Op::Lb, Op::Lbu, Op::Lh, Op::Lhu, Op::Lw];
const STORE_OPS: [Op; 3] = [Op::Sb, Op::Sh, Op::Sw];
const SHIFT_OPS: [Op; 3] = [Op::Sll, Op::Srl, Op::Sra];
const BR2_OPS: [Op; 2] = [Op::Beq, Op::Bne];
const BR1_OPS: [Op; 4] = [Op::Blez, Op::Bgtz, Op::Bltz, Op::Bgez];

/// An arbitrary well-formed instruction — the deterministic equivalent of
/// the old proptest strategy, covering every constructor form.
fn arb_insn(rng: &mut SplitMix64) -> Insn {
    let reg = |rng: &mut SplitMix64| Reg::gpr(rng.below(32) as u8);
    let imm16 = |rng: &mut SplitMix64| rng.next_u32() as u16 as i16;
    let disp = |rng: &mut SplitMix64| rng.next_u32() as u16 as i16 as i32;
    match rng.below(19) {
        0 => {
            let op = *rng.pick(&R3_OPS);
            Insn::r3(op, reg(rng), reg(rng), reg(rng))
        }
        1 => {
            let op = *rng.pick(&IMM_OPS);
            Insn::imm_op(op, reg(rng), reg(rng), imm16(rng) as i32)
        }
        2 => {
            let op = *rng.pick(&LOGIC_IMM_OPS);
            Insn::imm_op(op, reg(rng), reg(rng), (rng.next_u32() as u16) as i32)
        }
        3 => Insn::lui(reg(rng), rng.next_u32() as u16),
        4 => {
            let op = *rng.pick(&LOAD_OPS);
            Insn::load(op, reg(rng), imm16(rng), reg(rng))
        }
        5 => {
            let op = *rng.pick(&STORE_OPS);
            Insn::store(op, reg(rng), imm16(rng), reg(rng))
        }
        6 => {
            let op = *rng.pick(&SHIFT_OPS);
            Insn::shift_imm(op, reg(rng), reg(rng), rng.below(32) as u8)
        }
        7 => {
            let op = *rng.pick(&BR2_OPS);
            Insn::branch(op, reg(rng), reg(rng), disp(rng))
        }
        8 => {
            let op = *rng.pick(&BR1_OPS);
            Insn::branch(op, reg(rng), Reg::ZERO, disp(rng))
        }
        9 => Insn::jump(Op::J, rng.below(1 << 26)),
        10 => Insn::jump(Op::Jal, rng.below(1 << 26)),
        11 => Insn::jump_reg(Op::Jr, Reg::ZERO, reg(rng)),
        12 => Insn::jump_reg(Op::Jalr, reg(rng), reg(rng)),
        13 => Insn::muldiv(Op::Mult, reg(rng), reg(rng)),
        14 => Insn::muldiv(Op::Divu, reg(rng), reg(rng)),
        15 => Insn::mfhilo(Op::Mfhi, reg(rng)),
        16 => Insn::mfhilo(Op::Mflo, reg(rng)),
        17 => Insn::sys(Op::Syscall),
        _ => Insn::nop(),
    }
}

/// encode ∘ decode is the identity on well-formed instructions.
#[test]
fn encode_decode_roundtrip() {
    let mut rng = SplitMix64::new(0xe4c0de);
    for _ in 0..4096 {
        let insn = arb_insn(&mut rng);
        let word = encode(&insn);
        let back = decode(word).expect("well-formed instructions decode");
        assert_eq!(back, insn);
    }
}

/// Encoding is injective: distinct instructions get distinct words.
#[test]
fn encoding_is_injective() {
    let mut rng = SplitMix64::new(0x171ec7);
    for _ in 0..4096 {
        let a = arb_insn(&mut rng);
        let b = arb_insn(&mut rng);
        if a != b {
            assert_ne!(encode(&a), encode(&b), "{a} vs {b}");
        }
    }
}

/// defs/uses never include more than two registers, never duplicate, and
/// never list r0 as a def.
#[test]
fn def_use_wellformed() {
    let mut rng = SplitMix64::new(0xdef5);
    for _ in 0..4096 {
        let insn = arb_insn(&mut rng);
        let defs: Vec<_> = insn.defs().iter().collect();
        let uses: Vec<_> = insn.uses().iter().collect();
        assert!(defs.len() <= 2);
        assert!(uses.len() <= 2);
        assert!(!defs.contains(&Reg::ZERO));
        let mut d = defs.clone();
        d.dedup();
        assert_eq!(d.len(), defs.len());
    }
}

#[test]
fn workload_disassembly_reassembles() {
    // Program::disassemble output round-trips through the text assembler
    // for branchless-display forms is not guaranteed (labels become
    // relative displacements), but every emitted instruction must at
    // least re-encode identically through binary encode/decode.
    for w in popk::workloads::all() {
        let p = w.test_program();
        for insn in &p.text {
            let back = decode(encode(insn)).unwrap();
            assert_eq!(&back, insn, "{}: {insn}", w.name);
        }
    }
}

#[test]
fn workload_programs_roundtrip_through_object_format() {
    use popk::isa::obj::{read_object, write_object};
    for w in popk::workloads::all() {
        let p = w.test_program();
        let q = read_object(&write_object(&p)).unwrap();
        assert_eq!(q.text, p.text, "{}", w.name);
        assert_eq!(q.data, p.data, "{}", w.name);
        assert_eq!(q.entry, p.entry, "{}", w.name);
        assert_eq!(q.symbols, p.symbols, "{}", w.name);
    }
}

/// Corrupt object bytes never panic the reader: single-byte mutations,
/// truncations, and random garbage all come back as `Err`, never abort.
#[test]
fn corrupt_object_bytes_never_panic() {
    use popk::isa::obj::{read_object, write_object};
    let p = popk::workloads::by_name("bzip").unwrap().test_program();
    let bytes = write_object(&p);
    let mut rng = SplitMix64::new(0xc0_44u64);

    // Single-byte mutations at random offsets: parse must return (the
    // result may legitimately be Ok for don't-care bytes, but it must
    // never panic or hang).
    for _ in 0..2048 {
        let mut b = bytes.clone();
        let i = rng.below(b.len() as u32) as usize;
        b[i] ^= (1 + rng.below(255)) as u8;
        let _ = read_object(&b);
    }

    // Truncation at every prefix length.
    for cut in 0..bytes.len().min(512) {
        let _ = read_object(&bytes[..cut]);
    }
    for _ in 0..256 {
        let cut = rng.below(bytes.len() as u32) as usize;
        assert!(read_object(&bytes[..cut]).is_err(), "cut {cut}");
    }

    // Random garbage behind a valid magic.
    for _ in 0..512 {
        let mut b = b"POPK".to_vec();
        for _ in 0..rng.below(64) {
            b.push(rng.next_u32() as u8);
        }
        let _ = read_object(&b);
    }
}

/// Random 32-bit words never panic the instruction decoder.
#[test]
fn random_words_never_panic_decode() {
    let mut rng = SplitMix64::new(0xdec0de);
    for _ in 0..65536 {
        let _ = decode(rng.next_u32());
    }
}

#[test]
fn emulation_is_deterministic() {
    let w = popk::workloads::by_name("twolf").unwrap();
    let p = w.test_program();
    let run = |p: &popk::isa::Program| {
        let mut m = Machine::new(p);
        m.run(1_000_000).unwrap();
        (m.icount(), m.output_ints().to_vec())
    };
    assert_eq!(run(&p), run(&p));
}

#[test]
fn assembler_accepts_its_own_documented_syntax() {
    // The full syntax surface in one program.
    let p = asm::assemble(
        r#"
        .data
        w:  .word 1, -2, 0x33
        h:  .half 7, 8
        by: .byte 'a', 255
        s:  .asciiz "ok\n"
            .align 8
        sp8: .space 8
        .text
        main:
            lui  r8, 0x1000
            ori  r8, r8, 0
            lw   r9, 0(r8)
            lh   r10, 4(r8)
            lbu  r11, 8(r8)
            move r12, r9
            li   r13, -70000
            la   r14, sp8
            sllv r15, r9, r10
            mult r9, r10
            mflo r16
            mthi r16
            jal  f
            b    end
        f:
            jalr r25
            jr   ra
        end:
            nop
            break
        "#,
    );
    let p = p.unwrap();
    assert!(p.symbol("sp8").is_some());
    assert!(p.text.len() > 15);
}
