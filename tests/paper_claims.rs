//! The paper's quantitative claims, asserted as tests at reduced budget.
//!
//! Absolute numbers differ from the paper (different workload stand-ins,
//! 200 K-instruction budgets instead of 500 M) but each *shape* claim is
//! enforced: who wins, in which direction, and by roughly what kind of
//! factor. EXPERIMENTS.md records the measured values next to the paper's.

use popk::characterize::{drive, BranchStudy, DisambigStudy, TagMatchStudy};
use popk::core::{simulate, MachineConfig, Optimizations};
use popk_cache::CacheConfig;

const LIMIT: u64 = 40_000;

fn geomean(vals: &[f64]) -> f64 {
    (vals.iter().map(|v| v.ln()).sum::<f64>() / vals.len() as f64).exp()
}

/// §7.1 / Fig. 11: slice-by-2 with all techniques lands near the ideal
/// machine (paper: within ~1%; we allow a 10% band at this budget), and
/// far above simple pipelining.
#[test]
fn claim_slice2_approaches_ideal() {
    let mut ratios = Vec::new();
    let mut speedups = Vec::new();
    for w in popk::workloads::all() {
        let p = w.program();
        let ideal = simulate(&p, &MachineConfig::ideal(), LIMIT).ipc();
        let full = simulate(&p, &MachineConfig::slice2_full(), LIMIT).ipc();
        let simple = simulate(&p, &MachineConfig::simple2(), LIMIT).ipc();
        ratios.push(full / ideal);
        speedups.push(full / simple);
    }
    let ratio = geomean(&ratios);
    let speedup = geomean(&speedups);
    assert!(
        ratio > 0.90 && ratio < 1.10,
        "slice-2 full should be near ideal, got {ratio}"
    );
    assert!(
        speedup > 1.10,
        "paper: ~16% speedup over simple pipelining, got {speedup}"
    );
}

/// Fig. 11 (slice-by-4): deeper slicing loses more of the ideal IPC but
/// gains more over naive pipelining (paper: 18% below ideal, +44%).
#[test]
fn claim_slice4_tradeoff() {
    let mut ratios = Vec::new();
    let mut speedups = Vec::new();
    for w in popk::workloads::all() {
        let p = w.program();
        let ideal = simulate(&p, &MachineConfig::ideal(), LIMIT).ipc();
        let full = simulate(&p, &MachineConfig::slice4_full(), LIMIT).ipc();
        let simple = simulate(&p, &MachineConfig::simple4(), LIMIT).ipc();
        ratios.push(full / ideal);
        speedups.push(full / simple);
    }
    let ratio = geomean(&ratios);
    let speedup = geomean(&speedups);
    assert!(
        ratio > 0.60 && ratio < 0.95,
        "slice-4 full should sit clearly below ideal, got {ratio}"
    );
    assert!(
        speedup > 1.30,
        "paper: ~44% speedup over simple pipelining, got {speedup}"
    );
}

/// Fig. 12: partial operand bypassing provides roughly half of the total
/// benefit; the new techniques provide the rest.
#[test]
fn claim_bypassing_is_roughly_half() {
    let mut bypass_fraction = Vec::new();
    for name in ["gcc", "gzip", "twolf", "vortex", "bzip"] {
        let p = popk::workloads::by_name(name).unwrap().program();
        let simple = simulate(&p, &MachineConfig::slice2(Optimizations::level(0)), LIMIT).ipc();
        let bypass = simulate(&p, &MachineConfig::slice2(Optimizations::level(1)), LIMIT).ipc();
        let full = simulate(&p, &MachineConfig::slice2(Optimizations::level(5)), LIMIT).ipc();
        let total = full - simple;
        if total > 1e-6 {
            bypass_fraction.push((bypass - simple) / total);
        }
    }
    let avg = bypass_fraction.iter().sum::<f64>() / bypass_fraction.len() as f64;
    assert!(
        avg > 0.3 && avg < 0.85,
        "bypassing should be roughly half the benefit, got {avg}"
    );
}

/// §5.1 / Fig. 2: after 9 compared bits, essentially every load has
/// either ruled out all stores or found a unique (correct) match.
#[test]
fn claim_nine_bits_disambiguate() {
    for name in ["bzip", "gcc"] {
        let p = popk::workloads::by_name(name).unwrap().program();
        let mut study = DisambigStudy::new(32);
        drive(&p, LIMIT, &mut [&mut study]).unwrap();
        let r = study.report();
        let resolved = r.resolved_after_bits(9);
        assert!(
            resolved > 90.0,
            "{name}: after 9 bits only {resolved}% of loads resolved"
        );
        assert!((r.resolved_after_bits(30) - 100.0).abs() < 1e-9);
    }
}

/// §5.2 / Fig. 4 & §7.1: speculating with two partial tag bits on the
/// Table 2 L1D is highly accurate (the paper measures a ~2% way-miss
/// rate in the slice-by-2 machine).
#[test]
fn claim_partial_tag_speculation_is_accurate() {
    let mut rates = Vec::new();
    for w in popk::workloads::all() {
        let p = w.program();
        let s = simulate(&p, &MachineConfig::slice2_full(), LIMIT);
        if s.partial_tag_accesses > 100 {
            rates.push(s.way_mispredict_rate());
        }
    }
    assert!(!rates.is_empty());
    let avg = rates.iter().sum::<f64>() / rates.len() as f64;
    assert!(avg < 0.10, "average way-miss rate too high: {avg}");
}

/// Fig. 4 convergence: with the full tag, partial classification equals
/// conventional hit/miss on every geometry the paper plots.
#[test]
fn claim_fig4_converges_to_hit_rate() {
    for (big, ways) in [(true, 2u32), (true, 4), (false, 4), (false, 8)] {
        let cfg = if big {
            CacheConfig::new(64 * 1024, 64, ways)
        } else {
            CacheConfig::small_8k(ways)
        };
        let p = popk::workloads::by_name("twolf").unwrap().program();
        let mut study = TagMatchStudy::new(cfg);
        drive(&p, LIMIT, &mut [&mut study]).unwrap();
        let r = study.report();
        let full = &r.counts[cfg.tag_bits() as usize];
        assert_eq!(full[0], r.hits);
        assert_eq!(full[3], 0, "no ambiguity at full width");
    }
}

/// §5.3 / Fig. 6: only beq/bne resolve early; a substantial fraction of
/// mispredictions is provable from the low byte; everything is provable
/// at full width.
#[test]
fn claim_early_branch_detection() {
    let mut total_mis = 0u64;
    let mut within_8 = 0.0f64;
    let mut n = 0;
    for w in popk::workloads::all() {
        let p = w.program();
        let mut study = BranchStudy::table2();
        drive(&p, LIMIT, &mut [&mut study]).unwrap();
        let r = study.report();
        if r.mispredicts > 20 {
            within_8 += r.percent_detected_within(8);
            n += 1;
        }
        total_mis += r.mispredicts;
        assert!(
            (r.percent_detected_within(32) - 100.0).abs() < 1e-9,
            "{}",
            w.name
        );
        // beq/bne must dominate the early-detectable set: detection below
        // 32 bits is impossible for sign branches by construction
        // (popk-slice property tests cover the bit-level invariant).
    }
    assert!(total_mis > 500);
    let avg = within_8 / n as f64;
    assert!(
        avg > 20.0,
        "a substantial share of mispredicts should be provable in 8 bits, got {avg}%"
    );
}

/// §6: the bit-sliced machine with *no* techniques behaves exactly like
/// naive EX pipelining — the level-0 stack bar is the simple-pipeline bar.
#[test]
fn claim_level0_equals_simple_pipelining() {
    for name in ["li", "go"] {
        let p = popk::workloads::by_name(name).unwrap().program();
        let a = simulate(&p, &MachineConfig::slice2(Optimizations::level(0)), LIMIT);
        let b = simulate(&p, &MachineConfig::simple2(), LIMIT);
        assert_eq!(a.cycles, b.cycles, "{name}");
    }
}
