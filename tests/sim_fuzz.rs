//! Fuzz-style property tests of the timing model: random (but
//! terminating) programs must run to completion on every pipeline
//! configuration, commit exactly the dynamic instruction count the
//! emulator retires, and do so deterministically. This is the test that
//! catches scheduler deadlocks and slice-wakeup regressions.

use popk::core::{simulate, MachineConfig, Optimizations, Simulator};
use popk::emu::Machine;
use popk::isa::{Insn, Op, Program, Reg, DATA_BASE, TEXT_BASE};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Gen {
    Alu(Op, u8, u8, u8),
    Imm(Op, u8, u8, i16),
    Shift(Op, u8, u8, u8),
    Load(Op, u8, u16),
    Store(Op, u8, u16),
    MulDiv(Op, u8, u8),
    MoveFrom(Op, u8),
    Fp(Op, u8, u8, u8),
    // Forward conditional branch skipping `skip` upcoming instructions.
    Branch(Op, u8, u8, u8),
}

fn arb_step() -> impl Strategy<Value = Gen> {
    let r = 8u8..24; // stay clear of ABI registers
    prop_oneof![
        (
            prop::sample::select(vec![
                Op::Addu,
                Op::Subu,
                Op::And,
                Op::Or,
                Op::Xor,
                Op::Nor,
                Op::Slt,
                Op::Sltu
            ]),
            r.clone(),
            r.clone(),
            r.clone()
        )
            .prop_map(|(op, a, b, c)| Gen::Alu(op, a, b, c)),
        (
            prop::sample::select(vec![Op::Addiu, Op::Slti, Op::Andi, Op::Ori, Op::Xori]),
            r.clone(),
            r.clone(),
            any::<i16>()
        )
            .prop_map(|(op, a, b, i)| Gen::Imm(op, a, b, i)),
        (
            prop::sample::select(vec![Op::Sll, Op::Srl, Op::Sra]),
            r.clone(),
            r.clone(),
            0u8..32
        )
            .prop_map(|(op, a, b, s)| Gen::Shift(op, a, b, s)),
        (
            prop::sample::select(vec![Op::Lw, Op::Lh, Op::Lhu, Op::Lb, Op::Lbu]),
            r.clone(),
            0u16..256
        )
            .prop_map(|(op, a, o)| Gen::Load(op, a, o)),
        (
            prop::sample::select(vec![Op::Sw, Op::Sh, Op::Sb]),
            r.clone(),
            0u16..256
        )
            .prop_map(|(op, a, o)| Gen::Store(op, a, o)),
        (
            prop::sample::select(vec![Op::Mult, Op::Multu, Op::Div, Op::Divu]),
            r.clone(),
            r.clone()
        )
            .prop_map(|(op, a, b)| Gen::MulDiv(op, a, b)),
        (prop::sample::select(vec![Op::Mfhi, Op::Mflo]), r.clone())
            .prop_map(|(op, a)| Gen::MoveFrom(op, a)),
        (
            prop::sample::select(vec![Op::AddS, Op::SubS, Op::MulS]),
            r.clone(),
            r.clone(),
            r.clone()
        )
            .prop_map(|(op, a, b, c)| Gen::Fp(op, a, b, c)),
        (
            prop::sample::select(vec![Op::Beq, Op::Bne, Op::Blez, Op::Bgtz]),
            r.clone(),
            r,
            1u8..6
        )
            .prop_map(|(op, a, b, skip)| Gen::Branch(op, a, b, skip)),
    ]
}

/// Materialize the generated steps into a well-formed, terminating
/// program: a small data window, aligned memory accesses, and only
/// forward branches.
fn build(steps: &[Gen]) -> Program {
    let base = Reg::gpr(24); // data window base, set once
    let mut text = vec![
        Insn::lui(base, (DATA_BASE >> 16) as u16),
        // Seed a few registers so early consumers have varied values.
        Insn::imm_op(Op::Addiu, Reg::gpr(8), Reg::ZERO, 13),
        Insn::imm_op(Op::Addiu, Reg::gpr(9), Reg::ZERO, -7),
        Insn::imm_op(Op::Ori, Reg::gpr(10), Reg::ZERO, 0x5a5a_i32 & 0xffff),
    ];
    for s in steps {
        let insn = match *s {
            Gen::Alu(op, a, b, c) => Insn::r3(op, Reg::gpr(a), Reg::gpr(b), Reg::gpr(c)),
            Gen::Imm(op, a, b, i) => {
                let imm = if matches!(op, Op::Andi | Op::Ori | Op::Xori) {
                    (i as u16) as i32
                } else {
                    i as i32
                };
                Insn::imm_op(op, Reg::gpr(a), Reg::gpr(b), imm)
            }
            Gen::Shift(op, a, b, sh) => Insn::shift_imm(op, Reg::gpr(a), Reg::gpr(b), sh),
            Gen::Load(op, a, off) => {
                let align = op.mem_width().unwrap().bytes() as u16;
                Insn::load(op, Reg::gpr(a), (off / align * align) as i16, base)
            }
            Gen::Store(op, a, off) => {
                let align = op.mem_width().unwrap().bytes() as u16;
                Insn::store(op, Reg::gpr(a), (off / align * align) as i16, base)
            }
            Gen::MulDiv(op, a, b) => Insn::muldiv(op, Reg::gpr(a), Reg::gpr(b)),
            Gen::MoveFrom(op, a) => Insn::mfhilo(op, Reg::gpr(a)),
            Gen::Fp(op, a, b, c) => Insn::r3(op, Reg::gpr(a), Reg::gpr(b), Reg::gpr(c)),
            Gen::Branch(op, a, b, skip) => {
                let rt = if matches!(op, Op::Beq | Op::Bne) { Reg::gpr(b) } else { Reg::ZERO };
                Insn::branch(op, Reg::gpr(a), rt, skip as i32)
            }
        };
        text.push(insn);
    }
    // Padding so every branch target exists, then exit.
    for _ in 0..8 {
        text.push(Insn::nop());
    }
    text.push(Insn::imm_op(Op::Addiu, Reg::V0, Reg::ZERO, 0));
    text.push(Insn::sys(Op::Syscall));
    Program { text, data: vec![0; 512], entry: TEXT_BASE, symbols: Default::default() }
}

fn configs() -> Vec<MachineConfig> {
    let mut wrong_path = MachineConfig::slice2_full();
    wrong_path.model_wrong_path = true;
    let mut everything = MachineConfig::slice4(Optimizations::extended());
    everything.opts.mem_dep_predict = true;
    vec![
        MachineConfig::ideal(),
        MachineConfig::simple2(),
        MachineConfig::simple4(),
        MachineConfig::slice2_full(),
        MachineConfig::slice4_full(),
        MachineConfig::slice2(Optimizations::level(2)),
        wrong_path,
        everything,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_programs_complete_on_every_machine(
        steps in prop::collection::vec(arb_step(), 5..120),
    ) {
        let program = build(&steps);

        // Ground truth from the emulator.
        let mut m = Machine::new(&program);
        let code = m.run(100_000).expect("functional execution");
        prop_assert_eq!(code, Some(0), "program must exit");
        let retired = m.icount();

        for cfg in configs() {
            let stats = simulate(&program, &cfg, 100_000);
            prop_assert_eq!(
                stats.committed, retired,
                "{} must commit the whole trace", cfg.label()
            );
            prop_assert!(stats.cycles > 0);
            prop_assert!(
                stats.cycles < 500 * retired + 10_000,
                "{}: implausible cycle count {}",
                cfg.label(),
                stats.cycles
            );
        }
    }

    #[test]
    fn timelines_are_well_formed(
        steps in prop::collection::vec(arb_step(), 5..80),
    ) {
        let program = build(&steps);
        for cfg in [MachineConfig::slice2_full(), MachineConfig::slice4_full()] {
            let mut sim = Simulator::new(&cfg);
            let (stats, timings) = sim.run_timeline(&program, 50_000, 200);
            prop_assert!(stats.committed > 0);
            let mut prev_commit = 0u64;
            let mut prev_seq = 0u64;
            for (i, t) in timings.iter().enumerate() {
                prop_assert!(t.is_consistent(), "{}: {:?}", cfg.label(), t);
                if i > 0 {
                    prop_assert!(t.seq > prev_seq, "commit order by seq");
                    prop_assert!(t.committed >= prev_commit, "commit cycles monotone");
                }
                prev_seq = t.seq;
                prev_commit = t.committed;
            }
        }
    }

    #[test]
    fn simulation_is_deterministic(
        steps in prop::collection::vec(arb_step(), 5..60),
    ) {
        let program = build(&steps);
        let cfg = MachineConfig::slice4_full();
        let a = simulate(&program, &cfg, 50_000);
        let b = simulate(&program, &cfg, 50_000);
        prop_assert_eq!(a.cycles, b.cycles);
        prop_assert_eq!(a.committed, b.committed);
        prop_assert_eq!(a.branch_mispredicts, b.branch_mispredicts);
        prop_assert_eq!(a.l1d_accesses, b.l1d_accesses);
    }
}
