//! Fuzz-style property tests of the timing model: random (but
//! terminating) programs must run to completion on every pipeline
//! configuration, commit exactly the dynamic instruction count the
//! emulator retires, and do so deterministically. This is the test that
//! catches scheduler deadlocks and slice-wakeup regressions.
//!
//! Programs are drawn from the workspace's deterministic [`SplitMix64`]
//! stream; two historical failure seeds are additionally pinned as
//! standalone regression tests at the bottom of the file.

use popk::core::{simulate, MachineConfig, Optimizations, Simulator};
use popk::emu::Machine;
use popk::isa::rng::SplitMix64;
use popk::isa::{Insn, Op, Program, Reg, DATA_BASE, TEXT_BASE};

#[derive(Clone, Debug)]
enum Gen {
    Alu(Op, u8, u8, u8),
    Imm(Op, u8, u8, i16),
    Shift(Op, u8, u8, u8),
    Load(Op, u8, u16),
    Store(Op, u8, u16),
    MulDiv(Op, u8, u8),
    MoveFrom(Op, u8),
    Fp(Op, u8, u8, u8),
    // Forward conditional branch skipping `skip` upcoming instructions.
    Branch(Op, u8, u8, u8),
}

const ALU_OPS: [Op; 8] = [
    Op::Addu,
    Op::Subu,
    Op::And,
    Op::Or,
    Op::Xor,
    Op::Nor,
    Op::Slt,
    Op::Sltu,
];
const IMM_OPS: [Op; 5] = [Op::Addiu, Op::Slti, Op::Andi, Op::Ori, Op::Xori];
const SHIFT_OPS: [Op; 3] = [Op::Sll, Op::Srl, Op::Sra];
const LOAD_OPS: [Op; 5] = [Op::Lw, Op::Lh, Op::Lhu, Op::Lb, Op::Lbu];
const STORE_OPS: [Op; 3] = [Op::Sw, Op::Sh, Op::Sb];
const MULDIV_OPS: [Op; 4] = [Op::Mult, Op::Multu, Op::Div, Op::Divu];
const MOVEFROM_OPS: [Op; 2] = [Op::Mfhi, Op::Mflo];
const FP_OPS: [Op; 3] = [Op::AddS, Op::SubS, Op::MulS];
const BRANCH_OPS: [Op; 4] = [Op::Beq, Op::Bne, Op::Blez, Op::Bgtz];

/// One random step, registers confined to r8..r23 (clear of ABI regs).
fn arb_step(rng: &mut SplitMix64) -> Gen {
    let r = |rng: &mut SplitMix64| rng.range(8, 24) as u8;
    match rng.below(9) {
        0 => Gen::Alu(*rng.pick(&ALU_OPS), r(rng), r(rng), r(rng)),
        1 => Gen::Imm(
            *rng.pick(&IMM_OPS),
            r(rng),
            r(rng),
            rng.next_u32() as u16 as i16,
        ),
        2 => Gen::Shift(*rng.pick(&SHIFT_OPS), r(rng), r(rng), rng.below(32) as u8),
        3 => Gen::Load(*rng.pick(&LOAD_OPS), r(rng), rng.below(256) as u16),
        4 => Gen::Store(*rng.pick(&STORE_OPS), r(rng), rng.below(256) as u16),
        5 => Gen::MulDiv(*rng.pick(&MULDIV_OPS), r(rng), r(rng)),
        6 => Gen::MoveFrom(*rng.pick(&MOVEFROM_OPS), r(rng)),
        7 => Gen::Fp(*rng.pick(&FP_OPS), r(rng), r(rng), r(rng)),
        _ => Gen::Branch(
            *rng.pick(&BRANCH_OPS),
            r(rng),
            r(rng),
            rng.range(1, 6) as u8,
        ),
    }
}

fn arb_steps(rng: &mut SplitMix64, lo: u32, hi: u32) -> Vec<Gen> {
    let n = rng.range(lo, hi) as usize;
    (0..n).map(|_| arb_step(rng)).collect()
}

/// Materialize the generated steps into a well-formed, terminating
/// program: a small data window, aligned memory accesses, and only
/// forward branches.
fn build(steps: &[Gen]) -> Program {
    let base = Reg::gpr(24); // data window base, set once
    let mut text = vec![
        Insn::lui(base, (DATA_BASE >> 16) as u16),
        // Seed a few registers so early consumers have varied values.
        Insn::imm_op(Op::Addiu, Reg::gpr(8), Reg::ZERO, 13),
        Insn::imm_op(Op::Addiu, Reg::gpr(9), Reg::ZERO, -7),
        Insn::imm_op(Op::Ori, Reg::gpr(10), Reg::ZERO, 0x5a5a_i32 & 0xffff),
    ];
    for s in steps {
        let insn = match *s {
            Gen::Alu(op, a, b, c) => Insn::r3(op, Reg::gpr(a), Reg::gpr(b), Reg::gpr(c)),
            Gen::Imm(op, a, b, i) => {
                let imm = if matches!(op, Op::Andi | Op::Ori | Op::Xori) {
                    (i as u16) as i32
                } else {
                    i as i32
                };
                Insn::imm_op(op, Reg::gpr(a), Reg::gpr(b), imm)
            }
            Gen::Shift(op, a, b, sh) => Insn::shift_imm(op, Reg::gpr(a), Reg::gpr(b), sh),
            Gen::Load(op, a, off) => {
                let align = op.mem_width().unwrap().bytes() as u16;
                Insn::load(op, Reg::gpr(a), (off / align * align) as i16, base)
            }
            Gen::Store(op, a, off) => {
                let align = op.mem_width().unwrap().bytes() as u16;
                Insn::store(op, Reg::gpr(a), (off / align * align) as i16, base)
            }
            Gen::MulDiv(op, a, b) => Insn::muldiv(op, Reg::gpr(a), Reg::gpr(b)),
            Gen::MoveFrom(op, a) => Insn::mfhilo(op, Reg::gpr(a)),
            Gen::Fp(op, a, b, c) => Insn::r3(op, Reg::gpr(a), Reg::gpr(b), Reg::gpr(c)),
            Gen::Branch(op, a, b, skip) => {
                let rt = if matches!(op, Op::Beq | Op::Bne) {
                    Reg::gpr(b)
                } else {
                    Reg::ZERO
                };
                Insn::branch(op, Reg::gpr(a), rt, skip as i32)
            }
        };
        text.push(insn);
    }
    // Padding so every branch target exists, then exit.
    for _ in 0..8 {
        text.push(Insn::nop());
    }
    text.push(Insn::imm_op(Op::Addiu, Reg::V0, Reg::ZERO, 0));
    text.push(Insn::sys(Op::Syscall));
    Program {
        text,
        data: vec![0; 512],
        entry: TEXT_BASE,
        symbols: Default::default(),
    }
}

fn configs() -> Vec<MachineConfig> {
    let mut wrong_path = MachineConfig::slice2_full();
    wrong_path.model_wrong_path = true;
    let mut everything = MachineConfig::slice4(Optimizations::extended());
    everything.opts.mem_dep_predict = true;
    vec![
        MachineConfig::ideal(),
        MachineConfig::simple2(),
        MachineConfig::simple4(),
        MachineConfig::slice2_full(),
        MachineConfig::slice4_full(),
        MachineConfig::slice2(Optimizations::level(2)),
        wrong_path,
        everything,
    ]
}

/// Run `steps` on the emulator (ground truth) and every machine config,
/// asserting full commitment and a plausible cycle count.
fn check_completes_everywhere(steps: &[Gen]) {
    let program = build(steps);

    let mut m = Machine::new(&program);
    let code = m.run(100_000).expect("functional execution");
    assert_eq!(code, Some(0), "program must exit: {steps:?}");
    let retired = m.icount();

    for cfg in configs() {
        let stats = simulate(&program, &cfg, 100_000);
        assert_eq!(
            stats.committed,
            retired,
            "{} must commit the whole trace: {steps:?}",
            cfg.label()
        );
        assert!(stats.cycles > 0);
        assert!(
            stats.cycles < 500 * retired + 10_000,
            "{}: implausible cycle count {}: {steps:?}",
            cfg.label(),
            stats.cycles
        );
    }
}

#[test]
fn random_programs_complete_on_every_machine() {
    let mut rng = SplitMix64::new(0xf022);
    for _ in 0..48 {
        let steps = arb_steps(&mut rng, 5, 120);
        check_completes_everywhere(&steps);
    }
}

/// Branch-dense step stream: roughly every third instruction is a
/// conditional branch on chaotically evolving registers, so the
/// predictor mispredicts constantly — a misprediction storm that keeps
/// the squash/recovery path hot under `model_wrong_path`.
fn arb_branchy_steps(rng: &mut SplitMix64, lo: u32, hi: u32) -> Vec<Gen> {
    let n = rng.range(lo, hi) as usize;
    (0..n)
        .map(|i| {
            if i % 3 == 2 {
                Gen::Branch(
                    *rng.pick(&BRANCH_OPS),
                    rng.range(8, 24) as u8,
                    rng.range(8, 24) as u8,
                    rng.range(1, 6) as u8,
                )
            } else {
                arb_step(rng)
            }
        })
        .collect()
}

#[test]
fn misprediction_storms_complete_on_every_machine() {
    let mut rng = SplitMix64::new(0x57a2);
    for _ in 0..24 {
        let steps = arb_branchy_steps(&mut rng, 30, 120);
        check_completes_everywhere(&steps);
    }
}

#[test]
fn timelines_are_well_formed() {
    let mut rng = SplitMix64::new(0x71e1);
    for _ in 0..24 {
        let steps = arb_steps(&mut rng, 5, 80);
        let program = build(&steps);
        for cfg in [MachineConfig::slice2_full(), MachineConfig::slice4_full()] {
            let mut sim = Simulator::new(&cfg);
            let (stats, timings) = sim.run_timeline(&program, 50_000, 200);
            assert!(stats.committed > 0);
            let mut prev_commit = 0u64;
            let mut prev_seq = 0u64;
            for (i, t) in timings.iter().enumerate() {
                assert!(t.is_consistent(), "{}: {:?} ({steps:?})", cfg.label(), t);
                if i > 0 {
                    assert!(t.seq > prev_seq, "commit order by seq");
                    assert!(t.committed >= prev_commit, "commit cycles monotone");
                }
                prev_seq = t.seq;
                prev_commit = t.committed;
            }
        }
    }
}

#[test]
fn simulation_is_deterministic() {
    let mut rng = SplitMix64::new(0xde7e);
    for _ in 0..24 {
        let steps = arb_steps(&mut rng, 5, 60);
        let program = build(&steps);
        let cfg = MachineConfig::slice4_full();
        let a = simulate(&program, &cfg, 50_000);
        let b = simulate(&program, &cfg, 50_000);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.committed, b.committed);
        assert_eq!(a.branch_mispredicts, b.branch_mispredicts);
        assert_eq!(a.l1d_accesses, b.l1d_accesses);
    }
}

// ---------------------------------------------------------------------
// Pinned regressions. These two step sequences were minimized failure
// cases from earlier fuzzing (formerly recorded in a proptest regression
// file); each exercises a same-register `bne`/`beq` interleaved with
// dependent ALU/memory traffic. Keep them as standalone tests so the
// exact programs run on every machine configuration forever.
// ---------------------------------------------------------------------

/// Seed 1: `bne r8, r8` (never taken) between a dependent add chain and a
/// trailing xori — historically tripped branch-resolution bookkeeping.
#[test]
fn regression_same_register_bne_with_dependent_chain() {
    let steps = [
        Gen::Alu(Op::Addu, 8, 8, 8),
        Gen::Alu(Op::Addu, 9, 8, 8),
        Gen::Imm(Op::Addiu, 15, 16, -12556),
        Gen::Branch(Op::Bne, 8, 8, 4),
        Gen::Imm(Op::Xori, 9, 8, -20245),
    ];
    check_completes_everywhere(&steps);
}

/// Seed 2: a leading never-taken `bne r8, r8` whose skip window contains
/// the whole add/load body, followed by `beq` on untouched registers —
/// historically tripped wrong-path fetch/commit accounting.
#[test]
fn regression_leading_bne_skip_window_over_load() {
    let steps = [
        Gen::Branch(Op::Bne, 8, 8, 1),
        Gen::Alu(Op::Addu, 8, 8, 8),
        Gen::Alu(Op::Addu, 8, 8, 8),
        Gen::Load(Op::Lw, 8, 13),
        Gen::Branch(Op::Beq, 14, 22, 2),
    ];
    check_completes_everywhere(&steps);
}

/// Seed 3: a misprediction storm — branches on registers an interleaved
/// add/xor mesh keeps churning, so outcomes flip and the predictor
/// stays wrong. Pinned when the pipeline was split into stage modules,
/// to cover squash/recovery across the frontend/commit boundary (the
/// phantoms fetched while a storm branch awaits resolution must all be
/// squashed, never retired, and never perturb the next resolution).
#[test]
fn regression_misprediction_storm_squashes_cleanly() {
    // Cold 2-bit counters predict weakly taken, so every never-taken
    // (`bne r, r`) or not-taken branch below is a fresh mispredict.
    let steps = [
        Gen::Imm(Op::Addiu, 11, 8, 3),
        Gen::Alu(Op::Addu, 8, 8, 9),
        Gen::Branch(Op::Bne, 8, 8, 2),
        Gen::Alu(Op::Xor, 9, 9, 10),
        Gen::Branch(Op::Beq, 9, 11, 3),
        Gen::Alu(Op::Subu, 10, 10, 8),
        Gen::Branch(Op::Bne, 10, 10, 1),
        Gen::Alu(Op::Addu, 8, 8, 10),
        Gen::Branch(Op::Blez, 8, 0, 2),
        Gen::Alu(Op::Xor, 8, 8, 9),
        Gen::Branch(Op::Bne, 11, 11, 4),
        Gen::Alu(Op::Addu, 9, 9, 8),
        Gen::Branch(Op::Bne, 9, 9, 2),
        Gen::Alu(Op::Subu, 9, 9, 10),
        Gen::Branch(Op::Bne, 8, 8, 1),
    ];
    check_completes_everywhere(&steps);

    // The storm must actually storm — and resolve deterministically —
    // with wrong-path phantoms occupying the machine.
    let program = build(&steps);
    let mut cfg = MachineConfig::slice4_full();
    cfg.model_wrong_path = true;
    let a = simulate(&program, &cfg, 100_000);
    let b = simulate(&program, &cfg, 100_000);
    assert!(
        a.branch_mispredicts >= 2,
        "not a storm: {}",
        a.branch_mispredicts
    );
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.committed, b.committed);
    assert_eq!(a.branch_mispredicts, b.branch_mispredicts);
}
