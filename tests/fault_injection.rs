//! Self-checking simulation, end to end: seed-driven fault injection
//! into the partial-operand policy inputs, the commit-time oracle
//! lockstep, the no-progress watchdog, config validation, and the
//! panic-isolated sweep executor.
//!
//! The contract under test: every injected fault is either *recovered*
//! (policy-input faults perturb timing only — the verify/recover paths
//! of the partial-knowledge techniques absorb them, and the oracle sees
//! a clean architectural stream) or *flagged* (commit-record faults
//! corrupt what the pipeline claims to retire, and the oracle reports a
//! structured divergence). Nothing panics either way.

use popk::core::{
    try_simulate, FaultKinds, FaultPlan, MachineConfig, SimError, SimStats, Simulator,
};
use popk::isa::Program;

const LIMIT: u64 = 30_000;

fn program(name: &str) -> Program {
    popk::workloads::by_name(name)
        .unwrap_or_else(|| panic!("unknown workload {name}"))
        .test_program()
}

/// A bit-sliced all-techniques config with the oracle enabled — the
/// machine where every fault site (operand slices, partial
/// disambiguation, partial tags, commit records) is live.
fn oracle_cfg() -> MachineConfig {
    let mut cfg = MachineConfig::slice2_full();
    cfg.oracle = true;
    cfg
}

fn run_with_faults(
    p: &Program,
    cfg: &MachineConfig,
    kinds: FaultKinds,
    seed: u64,
) -> (Result<SimStats, SimError>, popk::core::FaultLog) {
    let mut sim = Simulator::new(cfg);
    sim.set_fault_plan(FaultPlan::new(seed, 25, kinds));
    let result = sim.try_run(p, LIMIT);
    (result, sim.fault_log())
}

#[test]
fn oracle_lockstep_is_clean_across_machines() {
    for name in ["bzip", "gcc", "twolf"] {
        let p = program(name);
        for mut cfg in [
            MachineConfig::ideal(),
            MachineConfig::simple2(),
            MachineConfig::slice2_full(),
            MachineConfig::slice4_full(),
        ] {
            cfg.oracle = true;
            let s = try_simulate(&p, &cfg, LIMIT)
                .unwrap_or_else(|e| panic!("{name}: oracle diverged: {e}"));
            assert!(s.committed > 0, "{name}");
        }
    }
}

#[test]
fn recoverable_faults_are_absorbed_by_the_verify_paths() {
    // Policy-input faults perturb timing decisions the techniques
    // already verify and recover from; with the oracle watching every
    // retirement, the architectural stream must stay exact.
    let p = program("gcc");
    let cfg = oracle_cfg();
    let clean = try_simulate(&p, &cfg, LIMIT).expect("clean run");

    let single = |f: fn(&mut FaultKinds)| {
        let mut k = FaultKinds::default();
        f(&mut k);
        k
    };
    let plans = [
        ("operand_slice", single(|k| k.operand_slice = true)),
        ("disambig_match", single(|k| k.disambig_match = true)),
        ("tag_bits", single(|k| k.tag_bits = true)),
        ("all recoverable", FaultKinds::recoverable()),
    ];
    for (label, kinds) in plans {
        for seed in [1u64, 0xbeef, 0x5eed_5eed] {
            let (result, log) = run_with_faults(&p, &cfg, kinds, seed);
            let s = result.unwrap_or_else(|e| panic!("{label} seed {seed:#x}: {e}"));
            assert!(log.total() > 0, "{label} seed {seed:#x}: no faults fired");
            assert_eq!(
                s.committed, clean.committed,
                "{label} seed {seed:#x}: architectural stream changed"
            );
        }
    }
}

#[test]
fn each_recoverable_site_actually_fires() {
    let p = program("gcc");
    let cfg = oracle_cfg();
    let (result, log) = run_with_faults(&p, &cfg, FaultKinds::recoverable(), 7);
    result.expect("recoverable faults never diverge");
    assert!(log.operand_slice > 0, "operand site never fired");
    assert!(log.disambig_match > 0, "disambig site never fired");
    assert!(log.tag_bits > 0, "tag site never fired");
    assert_eq!(log.commit_record, 0, "commit faults were not requested");
}

#[test]
fn commit_record_faults_are_flagged_by_the_oracle() {
    // Corrupting what the pipeline claims to retire is exactly what the
    // lockstep oracle exists to catch: every seed must produce a
    // structured divergence, never a panic, never a silent pass.
    let p = program("bzip");
    let cfg = oracle_cfg();
    let kinds = FaultKinds {
        commit_record: true,
        ..FaultKinds::default()
    };
    for seed in [2u64, 3, 0xfa11] {
        let (result, log) = run_with_faults(&p, &cfg, kinds, seed);
        match result {
            Err(SimError::OracleDivergence { seq, field, .. }) => {
                assert!(log.commit_record > 0, "seed {seed:#x}: nothing injected");
                assert!(!field.is_empty());
                assert!(seq < LIMIT);
            }
            other => panic!("seed {seed:#x}: expected divergence, got {other:?}"),
        }
    }
}

#[test]
fn commit_faults_only_touch_the_oracle_claim() {
    // The injected commit-record corruption applies to a local copy of
    // the retirement claim; with the oracle off it must be inert — the
    // simulated machine itself is untouched.
    let p = program("bzip");
    let mut cfg = MachineConfig::slice2_full();
    cfg.oracle = false;
    let clean = try_simulate(&p, &cfg, LIMIT).expect("clean run");
    let kinds = FaultKinds {
        commit_record: true,
        ..FaultKinds::default()
    };
    let (result, log) = run_with_faults(&p, &cfg, kinds, 2);
    let s = result.expect("oracle off: corruption of the claim copy is inert");
    assert!(log.commit_record > 0);
    assert_eq!(s.committed, clean.committed);
    assert_eq!(s.cycles, clean.cycles);
}

#[test]
fn starved_machine_terminates_via_watchdog() {
    // Zero memory ports is a validated-legal but non-viable machine: the
    // first load can never issue, commit stops, and the watchdog must
    // convert the livelock into a typed error with a pipeline snapshot.
    let p = program("gcc");
    let mut cfg = MachineConfig::slice2_full();
    cfg.mem_ports = 0;
    cfg.watchdog = 5_000;
    match try_simulate(&p, &cfg, LIMIT) {
        Err(SimError::Deadlock(snap)) => {
            assert!(snap.cycle - snap.last_commit_cycle > 5_000);
            assert!(snap.window_len > 0, "stuck window should be non-empty");
            assert!(!snap.head.is_empty(), "snapshot should name the stuck head");
        }
        other => panic!("expected deadlock, got {other:?}"),
    }
}

#[test]
fn degenerate_configs_are_typed_errors() {
    let p = program("bzip");
    type Breaker = fn(&mut MachineConfig);
    let cases: [(&str, Breaker); 3] = [
        ("width", |c| c.width = 0),
        ("lsq_size", |c| c.lsq_size = 0),
        ("memory.l1d", |c| c.memory.l1d.size_bytes = 48 * 1024),
    ];
    for (field, breaker) in cases {
        let mut cfg = MachineConfig::slice2_full();
        breaker(&mut cfg);
        match try_simulate(&p, &cfg, LIMIT) {
            Err(SimError::InvalidConfig(e)) => {
                assert!(e.field.contains(field), "{field}: got `{}`", e.field);
            }
            other => panic!("{field}: expected InvalidConfig, got {other:?}"),
        }
    }
}

#[test]
fn poisoned_sweep_job_still_emits_a_complete_artifact() {
    // One workload's jobs panic on entry; the sweep must retry, isolate
    // the failure into the artifact's `failures` array plus a per-row
    // error entry, and leave every other row intact.
    popk_bench::set_poisoned_workload(Some("gcc"));
    let rep = popk_bench::table1_report_with(5_000, 2, false);
    popk_bench::set_poisoned_workload(None);

    assert_eq!(rep.failures, 1);
    assert!(rep.text.contains("FAILED"), "text lacks failure section");
    let json = rep.artifact.json();
    let Some(popk::core::Json::Array(failures)) = json.get("failures") else {
        panic!("artifact lacks failures array");
    };
    assert_eq!(failures.len(), 1);
    assert_eq!(
        failures[0].get("workload"),
        Some(&popk::core::Json::from("gcc"))
    );
    let Some(popk::core::Json::Array(rows)) = json.get("workloads") else {
        panic!("artifact lacks workloads array");
    };
    assert_eq!(rows.len(), 11, "every row present, failed one included");
    let error_rows = rows.iter().filter(|r| r.get("error").is_some()).count();
    assert_eq!(error_rows, 1);

    // A healthy sweep afterwards: no failures key at all, so committed
    // artifact bodies are unchanged by the robustness machinery.
    let rep = popk_bench::table1_report_with(5_000, 2, false);
    assert_eq!(rep.failures, 0);
    assert!(rep.artifact.json().get("failures").is_none());
}
