//! Cross-crate integration: workloads → emulator → characterization →
//! timing model, checking the pieces agree with each other.

use popk::characterize::{drive, BranchStudy, DisambigCategory, DisambigStudy, TagMatchStudy};
use popk::core::{simulate, MachineConfig, Optimizations};
use popk::emu::Machine;
use popk_cache::CacheConfig;

const LIMIT: u64 = 30_000;

#[test]
fn every_workload_runs_on_every_pipeline() {
    let configs = [
        MachineConfig::ideal(),
        MachineConfig::simple2(),
        MachineConfig::simple4(),
        MachineConfig::slice2_full(),
        MachineConfig::slice4_full(),
    ];
    for w in popk::workloads::all() {
        let p = w.program();
        let mut committed = None;
        for cfg in &configs {
            let s = simulate(&p, cfg, LIMIT);
            assert_eq!(s.committed, LIMIT, "{} on {}", w.name, cfg.label());
            assert!(s.cycles > 0);
            assert!(s.ipc() > 0.01 && s.ipc() < 4.0, "{}: {}", w.name, s.ipc());
            // Identical instruction streams commit on every machine.
            match committed {
                None => committed = Some(s.committed),
                Some(c) => assert_eq!(c, s.committed),
            }
        }
    }
}

#[test]
fn timing_stats_agree_with_functional_stats() {
    for name in ["gcc", "li", "vortex"] {
        let w = popk::workloads::by_name(name).unwrap();
        let p = w.program();

        // Functional mix.
        let mut m = Machine::new(&p);
        for rec in m.trace(LIMIT) {
            rec.unwrap();
        }
        let f = *m.stats();

        // Timing mix must match exactly: the trace is the same.
        let s = simulate(&p, &MachineConfig::ideal(), LIMIT);
        assert_eq!(s.committed, f.total, "{name}");
        assert_eq!(s.loads, f.loads, "{name}");
        assert_eq!(s.stores, f.stores, "{name}");
        assert_eq!(s.branches, f.cond_branches, "{name}");
    }
}

#[test]
fn characterization_and_timing_see_the_same_branches() {
    let w = popk::workloads::by_name("parser").unwrap();
    let p = w.program();

    let mut study = BranchStudy::table2();
    drive(&p, LIMIT, &mut [&mut study]).unwrap();
    let r = study.report();

    let s = simulate(&p, &MachineConfig::ideal(), LIMIT);
    assert_eq!(s.branches, r.branches);
    // Both use a 64K gshare trained in program order, so the counts match
    // exactly.
    assert_eq!(s.branch_mispredicts, r.mispredicts);
}

#[test]
fn disambig_categories_partition_loads() {
    let w = popk::workloads::by_name("twolf").unwrap();
    let p = w.program();
    let mut study = DisambigStudy::new(32);
    drive(&p, LIMIT, &mut [&mut study]).unwrap();
    let r = study.report();
    assert!(r.loads > 100);
    for (b, row) in r.counts.iter().enumerate() {
        let sum: u64 = row.iter().sum();
        assert_eq!(sum, r.loads, "bit {}", b + 2);
    }
    // Full-width comparison leaves no partial ambiguity.
    let last = r.counts.last().unwrap();
    assert_eq!(last[DisambigCategory::SingleNonMatch.index()], 0);
    assert_eq!(last[DisambigCategory::MultMatchDiffAddr.index()], 0);
}

#[test]
fn tag_categories_partition_accesses_and_converge() {
    let w = popk::workloads::by_name("gzip").unwrap();
    let p = w.program();
    let cfg = CacheConfig::l1d_table2();
    let mut study = TagMatchStudy::new(cfg);
    drive(&p, LIMIT, &mut [&mut study]).unwrap();
    let r = study.report();
    assert!(r.accesses > 100);
    for row in &r.counts {
        assert_eq!(row.iter().sum::<u64>(), r.accesses);
    }
    // At full tag width: single-hit == hits, misses are zero/single-miss.
    let full = &r.counts[cfg.tag_bits() as usize];
    assert_eq!(full[0], r.hits); // TagCategory::SingleHit
    assert_eq!(full[3], 0); // TagCategory::MultMatch
}

#[test]
fn optimization_levels_monotone_on_average() {
    // Across a basket of workloads, each cumulative level must not lose
    // IPC on geometric mean (individual benchmarks may wiggle within
    // noise; the basket must not).
    let names = ["gcc", "gzip", "twolf", "vortex"];
    for by4 in [false, true] {
        let mut prev = 0.0f64;
        for level in 0..=5 {
            let mut log_sum = 0.0;
            for name in names {
                let p = popk::workloads::by_name(name).unwrap().program();
                let cfg = if by4 {
                    MachineConfig::slice4(Optimizations::level(level))
                } else {
                    MachineConfig::slice2(Optimizations::level(level))
                };
                log_sum += simulate(&p, &cfg, LIMIT).ipc().ln();
            }
            let geo = (log_sum / names.len() as f64).exp();
            assert!(
                geo >= prev * 0.995,
                "level {level} (by4={by4}) regressed: {geo} < {prev}"
            );
            prev = prev.max(geo);
        }
    }
}

#[test]
fn sliced_machines_sit_between_simple_and_ideal() {
    for name in ["gcc", "gzip", "bzip"] {
        let p = popk::workloads::by_name(name).unwrap().program();
        let ideal = simulate(&p, &MachineConfig::ideal(), LIMIT).ipc();
        let simple2 = simulate(&p, &MachineConfig::simple2(), LIMIT).ipc();
        let full2 = simulate(&p, &MachineConfig::slice2_full(), LIMIT).ipc();
        assert!(simple2 < ideal, "{name}: naive pipelining must cost IPC");
        assert!(full2 > simple2, "{name}: techniques must recover IPC");
        // The paper's bzip/gzip/li exceed ideal slightly (the ideal
        // machine lacks the partial memory techniques); at short, cold
        // budgets the excess can reach ~10%.
        assert!(full2 <= ideal * 1.12, "{name}: {full2} vs ideal {ideal}");
    }
}
