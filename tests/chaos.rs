//! Chaos harness for the crash-safe serving and sweep layers.
//!
//! A deterministic, seed-driven fault schedule is thrown at a real
//! `popk serve` daemon — worker panics, induced deadlock, connection
//! drops mid-stream, cache truncation and bit-rot, abandoned (canceled)
//! jobs — and after every storm the daemon must still answer, and
//! recovered artifacts must be **byte-identical** to a clean run's.
//! Separate tests cover the service journal (interrupted jobs finish
//! after a restart), graceful drain shutdown, cache-less degradation,
//! and the headline end-to-end: a sweep killed with SIGKILL mid-run and
//! resumed with `--resume` reproduces the clean artifact byte for byte.

use popk_bench::{
    journal, parse_config, set_poisoned_workload, table1_report_journaled, Client, JobKey,
    ServeConfig, Server, SweepJournal,
};
use popk_core::Json;
use std::path::PathBuf;
use std::time::{Duration, Instant};

// ---- shared plumbing (mirrors tests/serve_e2e.rs) --------------------------

struct TestServer {
    server: Option<Server>,
    cache_dir: PathBuf,
}

impl TestServer {
    fn start(tag: &str, configure: impl FnOnce(&mut ServeConfig)) -> TestServer {
        let cache_dir =
            std::env::temp_dir().join(format!("popk-chaos-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&cache_dir);
        let mut cfg = ServeConfig::new("127.0.0.1:0", &cache_dir);
        cfg.workers = 2;
        configure(&mut cfg);
        let server = Server::start(cfg).expect("server binds an ephemeral port");
        TestServer {
            server: Some(server),
            cache_dir,
        }
    }

    fn connect(&self) -> Client {
        let addr = self.server.as_ref().expect("server running").local_addr();
        Client::connect(&addr.to_string()).expect("client connects")
    }

    fn entry_path(&self, digest: &str) -> PathBuf {
        self.cache_dir
            .join(&digest[..2])
            .join(format!("{digest}.json"))
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        if let Some(server) = self.server.take() {
            server.shutdown();
            server.join();
        }
        let _ = std::fs::remove_dir_all(&self.cache_dir);
    }
}

fn submit_req(workload: &str, config: &str, limit: u64, tag: &str) -> Json {
    let mut req = Json::object();
    req.set("op", "submit".into());
    req.set("workload", workload.into());
    req.set("config", config.into());
    req.set("limit", Json::from(limit));
    req.set("tag", tag.into());
    req
}

fn submit(client: &mut Client, req: &Json) -> (Json, Vec<Json>) {
    client.send(req).expect("send");
    client.recv_until(&["result"]).expect("response stream")
}

fn response_type(j: &Json) -> &str {
    j.get("type").and_then(Json::as_str).unwrap_or("")
}

fn artifact_text(result: &Json) -> String {
    assert_eq!(response_type(result), "result", "not a result: {result}");
    result
        .get("artifact")
        .expect("artifact present")
        .to_string()
}

fn digest_of(result: &Json) -> String {
    result
        .get("digest")
        .and_then(Json::as_str)
        .expect("digest present")
        .to_string()
}

fn stats_of(client: &mut Client) -> Json {
    let mut req = Json::object();
    req.set("op", "stats".into());
    client.request(&req).expect("stats")
}

/// Submit until a `result` arrives, tolerating the transient `canceled`
/// error a just-abandoned inflight job answers with. Any other error is
/// a test failure.
fn submit_until_result(ts: &TestServer, req: &Json) -> Json {
    for _ in 0..100 {
        let mut client = ts.connect();
        let (last, _) = submit(&mut client, req);
        if response_type(&last) == "result" {
            return last;
        }
        assert_eq!(
            last.get("kind").and_then(Json::as_str),
            Some("canceled"),
            "unexpected failure: {last}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    panic!("no result after 100 attempts");
}

// ---- the seeded schedule ----------------------------------------------------

/// SplitMix64: a tiny deterministic PRNG — the whole fault schedule is
/// a pure function of `CHAOS_SEED`.
struct Chaos(u64);

impl Chaos {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A seeded permutation of `0..n` (Fisher–Yates).
    fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut order: Vec<usize> = (0..n).collect();
        for i in (1..n).rev() {
            order.swap(i, (self.next() % (i as u64 + 1)) as usize);
        }
        order
    }
}

const CHAOS_SEED: u64 = 0x00b5_11ce_ca5c_ade5;
const LIMIT: u64 = 20_000;

#[test]
fn chaos_schedule_leaves_daemon_serving_and_artifacts_byte_identical() {
    let ts = TestServer::start("storm", |cfg| {
        cfg.workers = 2;
        cfg.queue_capacity = 8;
    });

    // Clean reference artifact, before any fault is injected.
    let reference_req = submit_req("gzip", "slice2", LIMIT, "ref");
    let reference = {
        let mut client = ts.connect();
        let (res, _) = submit(&mut client, &reference_req);
        assert_eq!(response_type(&res), "result", "{res}");
        (digest_of(&res), artifact_text(&res))
    };

    let faults: [&str; 6] = [
        "worker_panic",
        "deadlock",
        "drop_connection",
        "truncate_cache",
        "bit_rot_cache",
        "abandon_job",
    ];
    let mut rng = Chaos(CHAOS_SEED);
    for round in 0..2 {
        for &f in rng.permutation(faults.len()).iter().map(|&i| &faults[i]) {
            match f {
                "worker_panic" => {
                    set_poisoned_workload(Some("vortex"));
                    let mut client = ts.connect();
                    let (err, _) =
                        submit(&mut client, &submit_req("vortex", "ideal", LIMIT, "poison"));
                    set_poisoned_workload(None);
                    assert_eq!(
                        err.get("kind").and_then(Json::as_str),
                        Some("panic"),
                        "{err}"
                    );
                }
                "deadlock" => {
                    let mut req = submit_req("gzip", "ideal", LIMIT, "dead");
                    req.set("seed", Json::from(1_000 + round as u64));
                    req.set("overrides", {
                        let mut o = Json::object();
                        o.set("mem_ports", Json::from(0u64));
                        o.set("watchdog", Json::from(2_000u64));
                        o
                    });
                    let mut client = ts.connect();
                    let (err, _) = submit(&mut client, &req);
                    assert_eq!(
                        err.get("kind").and_then(Json::as_str),
                        Some("deadlock"),
                        "{err}"
                    );
                }
                "drop_connection" | "abandon_job" => {
                    // Submit under a unique key with the event stream
                    // on, then vanish mid-stream: the daemon cancels
                    // the unobservable job and must keep serving.
                    let seed = rng.next() % 1_000_000;
                    let mut req = submit_req("li", "slice2", LIMIT, "drop");
                    req.set("seed", Json::from(seed));
                    req.set("events", Json::from(true));
                    {
                        let mut doomed = ts.connect();
                        doomed.send(&req).expect("send");
                        let _ = doomed.recv(); // at most the `accepted` line
                    } // connection dropped here
                    req.remove("events");
                    let res = submit_until_result(&ts, &req);
                    assert_eq!(response_type(&res), "result");
                }
                "truncate_cache" => {
                    let path = ts.entry_path(&reference.0);
                    let body = std::fs::read_to_string(&path).expect("entry on disk");
                    std::fs::write(&path, &body[..body.len() / 3]).unwrap();
                    let mut client = ts.connect();
                    let (res, _) = submit(&mut client, &reference_req);
                    assert_eq!(
                        artifact_text(&res),
                        reference.1,
                        "resimulated artifact after truncation must match the clean run"
                    );
                }
                "bit_rot_cache" => {
                    // Damage the entry while keeping it valid JSON: the
                    // integrity seal no longer verifies, so the lookup
                    // must treat the entry as a miss and re-simulate.
                    let path = ts.entry_path(&reference.0);
                    let body = std::fs::read_to_string(&path).expect("entry on disk");
                    let rotted = body.replacen("\"integrity\"", "\"integrity_\"", 1);
                    assert_ne!(rotted, body, "tamper must change the entry");
                    std::fs::write(&path, rotted).unwrap();
                    let mut client = ts.connect();
                    let (res, _) = submit(&mut client, &reference_req);
                    assert_eq!(
                        artifact_text(&res),
                        reference.1,
                        "resimulated artifact after bit-rot must match the clean run"
                    );
                }
                other => unreachable!("unknown fault {other}"),
            }
        }
    }

    // After the storm: the daemon answers, and the reference key serves
    // the byte-identical artifact.
    let mut client = ts.connect();
    let mut ping = Json::object();
    ping.set("op", "ping".into());
    assert_eq!(response_type(&client.request(&ping).expect("pong")), "pong");
    let (res, _) = submit(&mut client, &reference_req);
    assert_eq!(artifact_text(&res), reference.1);
}

// ---- service journal recovery ----------------------------------------------

#[test]
fn serve_journal_replays_interrupted_jobs_on_restart() {
    let cache_dir = std::env::temp_dir().join(format!("popk-chaos-{}-recover", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    std::fs::create_dir_all(&cache_dir).unwrap();

    // Forge the journal a crashed daemon would have left behind: one
    // job accepted and finished (must NOT re-run), one accepted and
    // interrupted (must be re-enqueued and finished into the cache).
    let spec = |seed: u64| {
        let mut s = Json::object();
        s.set("workload", "gzip".into());
        s.set("config", "slice2".into());
        s.set("limit", Json::from(LIMIT));
        s.set("seed", Json::from(seed));
        s
    };
    let digest = |seed: u64| {
        let cfg = parse_config("slice2").expect("config");
        JobKey::new("gzip", "slice2", &cfg, seed, LIMIT).digest()
    };
    let line = |op: &str, seed: u64| {
        let mut j = Json::object();
        j.set("op", op.into());
        j.set("digest", digest(seed).as_str().into());
        if op == "job" {
            j.set("spec", spec(seed));
        }
        journal::seal_line(j)
    };
    let journal_text = format!(
        "{}\n{}\n{}\n",
        line("job", 1),
        line("done", 1),
        line("job", 2)
    );
    std::fs::write(cache_dir.join("serve.journal"), journal_text).unwrap();

    let server = Server::start(ServeConfig::new("127.0.0.1:0", &cache_dir)).expect("starts");
    let addr = server.local_addr().to_string();
    let mut client = Client::connect(&addr).expect("connects");

    // Exactly one job recovered; wait for it to finish into the cache.
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let s = stats_of(&mut client);
        assert_eq!(s.get("recovered").and_then(Json::as_u64), Some(1), "{s}");
        if s.get("simulations").and_then(Json::as_u64) == Some(1)
            && s.get("queue_depth").and_then(Json::as_u64) == Some(0)
        {
            break;
        }
        assert!(Instant::now() < deadline, "recovered job never finished");
        std::thread::sleep(Duration::from_millis(20));
    }

    // The interrupted job's artifact is now served as a cache hit...
    let mut req = submit_req("gzip", "slice2", LIMIT, "after");
    req.set("seed", Json::from(2u64));
    let (res, _) = submit(&mut client, &req);
    assert_eq!(response_type(&res), "result", "{res}");
    assert_eq!(
        res.get("cached").and_then(Json::as_bool),
        Some(true),
        "{res}"
    );
    // ...and equals a fresh simulation of the same key elsewhere.
    let ts = TestServer::start("recover-clean", |_| {});
    let mut clean = ts.connect();
    let (clean_res, _) = submit(&mut clean, &req);
    assert_eq!(artifact_text(&res), artifact_text(&clean_res));

    // The finished job was not re-run (simulations stayed at 1).
    let s = stats_of(&mut client);
    assert_eq!(s.get("simulations").and_then(Json::as_u64), Some(1), "{s}");

    server.shutdown();
    server.join();
    let _ = std::fs::remove_dir_all(&cache_dir);
}

// ---- drain shutdown ---------------------------------------------------------

#[test]
fn drain_shutdown_finishes_inflight_work_then_stops() {
    let ts = TestServer::start("drain", |cfg| {
        cfg.workers = 1;
    });

    // Park one real job on the single worker, and make sure the server
    // has accepted it before asking for the drain.
    let mut submitter = ts.connect();
    let req = submit_req("gcc", "slice2", 2_000_000, "slow");
    submitter.send(&req).expect("send");
    let accepted = submitter.recv().expect("accepted line");
    assert_eq!(response_type(&accepted), "accepted", "{accepted}");

    // Ask for a graceful drain from a second connection.
    let mut admin = ts.connect();
    let mut drain = Json::object();
    drain.set("op", "shutdown".into());
    drain.set("drain", Json::from(true));
    let ack = admin.request(&drain).expect("drain ack");
    assert_eq!(response_type(&ack), "shutdown");
    assert_eq!(ack.get("draining").and_then(Json::as_bool), Some(true));

    // While draining: new work is refused with a typed error...
    let (rejected, _) = submit(&mut admin, &submit_req("li", "ideal", LIMIT, "late"));
    assert_eq!(response_type(&rejected), "error", "{rejected}");
    assert_eq!(
        rejected.get("kind").and_then(Json::as_str),
        Some("shutdown"),
        "{rejected}"
    );

    // ...but the inflight job still completes and answers.
    let (res, _) = submitter
        .recv_until(&["result"])
        .expect("inflight job answers before shutdown");
    assert_eq!(response_type(&res), "result", "{res}");

    // And the daemon then actually stops: new connections are refused
    // once the drain monitor observes the idle queue. (A connect may
    // succeed once to wake the accept loop out of its blocking call.)
    let addr = ts.server.as_ref().expect("server").local_addr().to_string();
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if Client::connect(&addr).is_err() {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "daemon kept accepting connections after the drain finished"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

// ---- cache-less degradation -------------------------------------------------

#[test]
fn unwritable_cache_degrades_to_cache_less_serving() {
    // Occupy the cache path with a FILE so the directory can't exist.
    let cache_path =
        std::env::temp_dir().join(format!("popk-chaos-{}-degraded", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_path);
    let _ = std::fs::remove_file(&cache_path);
    std::fs::write(&cache_path, "not a directory").unwrap();

    let server = Server::start(ServeConfig::new("127.0.0.1:0", &cache_path)).expect("starts");
    let mut client = Client::connect(&server.local_addr().to_string()).expect("connects");

    let s = stats_of(&mut client);
    assert_eq!(
        s.get("cache_degraded").and_then(Json::as_bool),
        Some(true),
        "{s}"
    );

    // Jobs still run; nothing is ever served from cache.
    let req = submit_req("gzip", "ideal", LIMIT, "degraded");
    for _ in 0..2 {
        let (res, _) = submit(&mut client, &req);
        assert_eq!(response_type(&res), "result", "{res}");
        assert_eq!(res.get("cached").and_then(Json::as_bool), Some(false));
    }
    let s = stats_of(&mut client);
    assert_eq!(s.get("cache_hits").and_then(Json::as_u64), Some(0), "{s}");

    server.shutdown();
    server.join();
    let _ = std::fs::remove_file(&cache_path);
}

// ---- kill -9 mid-sweep, then --resume ---------------------------------------

const SWEEP_LIMIT: u64 = 200_000;

/// Child-process helper (self-exec trick: sweep binaries are in the
/// bench crate, so the kill-9 e2e re-runs THIS test binary with
/// `POPK_SWEEP_DIR` set to act as the sweep process). A no-op under a
/// normal `cargo test`.
#[test]
fn helper_run_table1_sweep() {
    let Ok(dir) = std::env::var("POPK_SWEEP_DIR") else {
        return;
    };
    let resume = std::env::var("POPK_SWEEP_RESUME").is_ok();
    let dir = PathBuf::from(dir);
    let journal = SweepJournal::open(
        &dir.join("wal"),
        "table1",
        SWEEP_LIMIT,
        "oracle=false",
        resume,
    );
    let rep = table1_report_journaled(SWEEP_LIMIT, 2, false, Some(&journal));
    assert_eq!(rep.failures, 0);
    rep.artifact.write_in(&dir).expect("artifact written");
    std::fs::write(dir.join("report.txt"), &rep.text).expect("report written");
}

fn spawn_sweep(dir: &std::path::Path, resume: bool) -> std::process::Child {
    let exe = std::env::current_exe().expect("test binary path");
    let mut cmd = std::process::Command::new(exe);
    cmd.args(["helper_run_table1_sweep", "--exact", "--nocapture"])
        .env("POPK_SWEEP_DIR", dir)
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null());
    if resume {
        cmd.env("POPK_SWEEP_RESUME", "1");
    }
    cmd.spawn().expect("spawns sweep child")
}

fn sweep_outputs(dir: &std::path::Path) -> (String, String) {
    (
        std::fs::read_to_string(dir.join("BENCH_table1.json")).expect("artifact"),
        std::fs::read_to_string(dir.join("report.txt")).expect("report"),
    )
}

#[test]
fn kill9_mid_sweep_then_resume_reproduces_the_clean_artifact() {
    let base = std::env::temp_dir().join(format!("popk-chaos-{}-kill9", std::process::id()));
    let clean_dir = base.join("clean");
    let crash_dir = base.join("crash");
    let _ = std::fs::remove_dir_all(&base);
    std::fs::create_dir_all(&clean_dir).unwrap();
    std::fs::create_dir_all(&crash_dir).unwrap();

    // Clean run: the ground truth.
    let status = spawn_sweep(&clean_dir, false).wait().expect("clean run");
    assert!(status.success(), "clean sweep failed");
    let clean = sweep_outputs(&clean_dir);

    // Crash run: SIGKILL the sweep once its journal shows work started.
    let mut child = spawn_sweep(&crash_dir, false);
    let journal_path = crash_dir.join("wal").join("table1.journal");
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        if std::fs::read_to_string(&journal_path).is_ok_and(|t| t.lines().count() > 1) {
            break; // header + at least one row line: mid-sweep
        }
        if child.try_wait().expect("try_wait").is_some() {
            break; // finished before we could kill it — still a valid resume test
        }
        assert!(Instant::now() < deadline, "sweep never started journaling");
        std::thread::sleep(Duration::from_millis(5));
    }
    let _ = child.kill(); // SIGKILL: no destructors, no flushes
    let _ = child.wait();

    // The artifact must not exist from the killed run (if the child won
    // the race and finished cleanly, this degenerates to replay-only).
    let killed_mid_run = !crash_dir.join("BENCH_table1.json").exists();

    // Resume: completed rows replay from the journal, the interrupted
    // row restarts (from its checkpoint when one landed).
    let status = spawn_sweep(&crash_dir, true).wait().expect("resume run");
    assert!(status.success(), "resumed sweep failed");
    let resumed = sweep_outputs(&crash_dir);

    assert_eq!(
        resumed.0, clean.0,
        "resumed artifact differs from the clean run (killed mid-run: {killed_mid_run})"
    );
    assert_eq!(
        resumed.1, clean.1,
        "resumed report text differs from the clean run"
    );
    let _ = std::fs::remove_dir_all(&base);
}
