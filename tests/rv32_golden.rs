//! RV32I through the full timing core: pinned golden stats digests,
//! differential-replay lockstep on every workload, fault-injection
//! cross-checks, and a property test replaying LCG-generated random
//! programs against the reference machine.
//!
//! The PISA equivalents live in `examples/golden_hashes.rs` (table) and
//! `tests/fault_injection.rs` (oracle contract); this file is the proof
//! that the ISA-neutral micro-op boundary carries a second ISA end to
//! end — same pipeline, same policies, same oracle machinery — with
//! nothing ISA-specific leaking into the timing core.

use popk::core::{
    hash, try_simulate_frontend, FaultKinds, FaultPlan, IsaKind, MachineConfig, NullTrace,
    Optimizations, SimError, Simulator,
};
use popk::rv32::{asm, workloads, Rv32Frontend, Rv32Insn, Rv32Machine, Rv32Program};
use std::fmt::Write as _;

const LIMIT: u64 = 20_000;

/// The configurations pinned by the golden table below.
fn golden_configs() -> Vec<(&'static str, MachineConfig)> {
    let mut v = vec![
        ("simple4", MachineConfig::simple4()),
        ("slice2-5", MachineConfig::slice2_full()),
        ("ext4", MachineConfig::slice4(Optimizations::extended())),
    ];
    for (_, cfg) in &mut v {
        cfg.isa = IsaKind::Rv32;
    }
    v
}

/// Golden `SimStats` digests for the RV32 suite: regenerate by running
/// this test and copying the `actual` side of the failure, then eyeball
/// the diff like any golden-hash change (see DESIGN.md).
const GOLDEN_STATS: &str = "\
rv_sum     simple4    2766a42518e9b6e7
rv_sum     slice2-5   8dfc6f0f39a8c98f
rv_sum     ext4       4067984fb93047db
rv_memcpy  simple4    de9aef494fabef77
rv_memcpy  slice2-5   e014cbecffaa80fe
rv_memcpy  ext4       c145fd19cc2e638f
rv_branchy simple4    71afb1ede31fa6b0
rv_branchy slice2-5   e6501904a4e96853
rv_branchy ext4       401b532843ae2597
rv_chase   simple4    b43648580b74a588
rv_chase   slice2-5   e1c9a03618032344
rv_chase   ext4       6af8b6eca0b8f463
";

#[test]
fn golden_stats_digests_are_pinned() {
    let mut table = String::new();
    for w in workloads::all() {
        let p = w.program();
        for (label, cfg) in golden_configs() {
            let stats = try_simulate_frontend(&cfg, Rv32Frontend::new(&p, LIMIT))
                .unwrap_or_else(|e| panic!("{} {label}: {e}", w.name));
            assert!(stats.committed > 0, "{} {label}", w.name);
            let digest = hash::fnv1a_64(format!("{stats:?}").as_bytes());
            let _ = writeln!(table, "{:<10} {:<10} {digest:016x}", w.name, label);
        }
    }
    assert_eq!(table, GOLDEN_STATS, "golden RV32 stats digests moved");
}

#[test]
fn differential_replay_locksteps_every_workload() {
    for w in workloads::all() {
        let p = w.program();
        for mut cfg in [
            MachineConfig::ideal(),
            MachineConfig::simple2(),
            MachineConfig::slice2_full(),
            MachineConfig::slice4_full(),
        ] {
            cfg.isa = IsaKind::Rv32;
            cfg.oracle = true;
            let mut sim: Simulator<NullTrace, Rv32Insn> = Simulator::with_sink(&cfg, NullTrace);
            let stats = sim
                .try_run_frontend(Rv32Frontend::new(&p, LIMIT))
                .unwrap_or_else(|e| panic!("{}: replay diverged: {e}", w.name));
            assert!(stats.committed > 0, "{}", w.name);
            assert_eq!(
                sim.oracle_checks(),
                stats.committed,
                "{}: every commit must be verified",
                w.name
            );
        }
    }
}

#[test]
fn commit_corruption_is_flagged_by_the_rv32_oracle() {
    let p = workloads::by_name("rv_branchy").unwrap().program();
    let mut cfg = MachineConfig::slice2_full();
    cfg.isa = IsaKind::Rv32;
    cfg.oracle = true;
    for seed in [0x11, 0x2222, 0x333333] {
        let kinds = FaultKinds {
            commit_record: true,
            ..FaultKinds::default()
        };
        let mut sim: Simulator<NullTrace, Rv32Insn> = Simulator::with_sink(&cfg, NullTrace);
        sim.set_fault_plan(FaultPlan::new(seed, 25, kinds));
        let err = sim
            .try_run_frontend(Rv32Frontend::new(&p, LIMIT))
            .expect_err("commit corruption must not pass the oracle");
        assert!(
            matches!(err, SimError::OracleDivergence { .. }),
            "seed {seed:#x}: got {err}"
        );
        assert!(sim.fault_log().commit_record > 0, "seed {seed:#x}");
    }
}

#[test]
fn recoverable_faults_stay_architecturally_clean_on_rv32() {
    let p = workloads::by_name("rv_memcpy").unwrap().program();
    let mut cfg = MachineConfig::slice2_full();
    cfg.isa = IsaKind::Rv32;
    cfg.oracle = true;
    let mut sim: Simulator<NullTrace, Rv32Insn> = Simulator::with_sink(&cfg, NullTrace);
    sim.set_fault_plan(FaultPlan::new(0x9e37, 25, FaultKinds::recoverable()));
    let stats = sim
        .try_run_frontend(Rv32Frontend::new(&p, LIMIT))
        .expect("recoverable faults perturb timing only");
    assert!(stats.committed > 0);
    assert!(sim.fault_log().total() > 0, "nothing was injected");
}

// ---------------------------------------------------------------------
// Random-program differential replay.

/// Deterministic 64-bit LCG (no external PRNG crates, no wall clock).
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 11
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

const HEAP: i32 = 0x0002_0000;

/// A random straight-line-plus-skips RV32I program: ALU ops, loads and
/// stores against a fixed heap window, and forward `beq`/`bne` skips —
/// every generated program terminates and exits with a data-dependent
/// code in `a0`.
fn random_program(rng: &mut Lcg) -> Rv32Program {
    // x8 is the heap base; results go to a rotating set that excludes
    // x8 and x17 (the exit service register).
    const DSTS: [u8; 10] = [5, 6, 7, 9, 10, 11, 28, 29, 30, 31];
    const SRCS: [u8; 12] = [0, 5, 6, 7, 8, 9, 10, 11, 28, 29, 30, 31];
    let mut words = asm::li(8, HEAP);
    let len = 40 + rng.below(80) as usize;
    while words.len() < len {
        let rd = DSTS[rng.below(DSTS.len() as u64) as usize];
        let rs1 = SRCS[rng.below(SRCS.len() as u64) as usize];
        let rs2 = SRCS[rng.below(SRCS.len() as u64) as usize];
        let imm = (rng.below(4096) as i32) - 2048;
        let off = (rng.below(64) * 4) as i32;
        let sh = rng.below(32) as u8;
        match rng.below(16) {
            0 => words.push(asm::addi(rd, rs1, imm)),
            1 => words.push(asm::add(rd, rs1, rs2)),
            2 => words.push(asm::sub(rd, rs1, rs2)),
            3 => words.push(asm::xor(rd, rs1, rs2)),
            4 => words.push(asm::or(rd, rs1, rs2)),
            5 => words.push(asm::and(rd, rs1, rs2)),
            6 => words.push(asm::slt(rd, rs1, rs2)),
            7 => words.push(asm::sltu(rd, rs1, rs2)),
            8 => words.push(asm::slli(rd, rs1, sh)),
            9 => words.push(asm::srli(rd, rs1, sh)),
            10 => words.push(asm::srai(rd, rs1, sh)),
            11 => words.push(asm::lui(rd, rng.next() as u32 & 0xf_ffff)),
            12 => words.push(asm::sw(8, rs1, off)),
            13 => words.push(asm::lw(rd, 8, off)),
            14 => {
                // Forward skip over exactly one filler instruction:
                // data-dependent control without loops.
                let branch = if rng.below(2) == 0 {
                    asm::beq(rs1, rs2, 8)
                } else {
                    asm::bne(rs1, rs2, 8)
                };
                words.push(branch);
                words.push(asm::addi(rd, rd, 1));
            }
            _ => words.push(asm::sltiu(rd, rs1, imm)),
        }
    }
    words.extend(asm::li(17, 93));
    words.push(asm::ecall());
    Rv32Program::new(words)
}

#[test]
fn random_programs_replay_differentially() {
    let mut rng = Lcg(0x5eed_cafe);
    let mut cfg = MachineConfig::slice2_full();
    cfg.isa = IsaKind::Rv32;
    cfg.oracle = true;
    let mut alt = MachineConfig::simple2();
    alt.isa = IsaKind::Rv32;
    alt.oracle = true;
    for case in 0..40 {
        let p = random_program(&mut rng);
        // Reference: the functional machine runs it to completion.
        let mut m = Rv32Machine::new(&p);
        let code = m
            .run(10_000)
            .unwrap_or_else(|e| panic!("case {case}: reference faulted: {e}"))
            .unwrap_or_else(|| panic!("case {case}: reference did not exit"));
        let retired = Rv32Frontend::new(&p, 10_000).count() as u64;
        assert!(retired > 0, "case {case}");
        // Timing core + lockstep oracle on two machine shapes: commit
        // stream must match the reference machine instruction for
        // instruction, and everything the reference retired commits.
        for cfg in [&cfg, &alt] {
            let stats = try_simulate_frontend(cfg, Rv32Frontend::new(&p, 10_000))
                .unwrap_or_else(|e| panic!("case {case}: diverged: {e}"));
            assert_eq!(stats.committed, retired, "case {case}");
        }
        // And the exit code is reproducible.
        let mut m2 = Rv32Machine::new(&p);
        assert_eq!(m2.run(10_000).unwrap(), Some(code), "case {case}");
    }
}
