//! End-to-end tests of the `popk serve` daemon: cache-hit byte
//! identity, cache robustness against corrupted entries, single-flight
//! deduplication of concurrent submitters, and structured failure
//! paths (panic, deadlock, backpressure) that leave the daemon serving.
//!
//! Each test boots a real server on an ephemeral port with a private
//! cache directory and talks to it over TCP through the line-JSON
//! [`Client`] — the same path the `serve client` subcommand uses.

use popk_bench::{set_poisoned_workload, Client, ServeConfig, Server};
use popk_core::Json;
use std::path::{Path, PathBuf};

/// A server on an ephemeral port with a fresh temp cache dir, plus the
/// dir (removed on drop).
struct TestServer {
    server: Option<Server>,
    cache_dir: PathBuf,
}

impl TestServer {
    fn start(tag: &str, configure: impl FnOnce(&mut ServeConfig)) -> TestServer {
        let cache_dir =
            std::env::temp_dir().join(format!("popk-serve-e2e-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&cache_dir);
        let mut cfg = ServeConfig::new("127.0.0.1:0", &cache_dir);
        cfg.workers = 2;
        configure(&mut cfg);
        let server = Server::start(cfg).expect("server binds an ephemeral port");
        TestServer {
            server: Some(server),
            cache_dir,
        }
    }

    fn connect(&self) -> Client {
        let addr = self.server.as_ref().expect("server running").local_addr();
        Client::connect(&addr.to_string()).expect("client connects")
    }

    /// The on-disk entry path for a response's digest.
    fn entry_path(&self, digest: &str) -> PathBuf {
        self.cache_dir
            .join(&digest[..2])
            .join(format!("{digest}.json"))
    }
}

impl Drop for TestServer {
    fn drop(&mut self) {
        if let Some(server) = self.server.take() {
            server.shutdown();
            server.join();
        }
        let _ = std::fs::remove_dir_all(&self.cache_dir);
    }
}

fn submit_req(workload: &str, config: &str, limit: u64, tag: &str) -> Json {
    let mut req = Json::object();
    req.set("op", "submit".into());
    req.set("workload", workload.into());
    req.set("config", config.into());
    req.set("limit", Json::from(limit));
    req.set("tag", tag.into());
    req
}

/// Submit and consume the stream to the terminal response, returning
/// (terminal line, lines before it).
fn submit(client: &mut Client, req: &Json) -> (Json, Vec<Json>) {
    client.send(req).expect("send");
    client.recv_until(&["result"]).expect("response stream")
}

fn response_type(j: &Json) -> &str {
    j.get("type").and_then(Json::as_str).unwrap_or("")
}

fn artifact_text(result: &Json) -> String {
    assert_eq!(response_type(result), "result", "not a result: {result}");
    result
        .get("artifact")
        .expect("artifact present")
        .to_string()
}

fn is_cached(result: &Json) -> bool {
    result
        .get("cached")
        .and_then(Json::as_bool)
        .expect("cached flag")
}

fn digest_of(result: &Json) -> String {
    result
        .get("digest")
        .and_then(Json::as_str)
        .expect("digest present")
        .to_string()
}

/// The four committed 200k artifacts whose bodies must survive any
/// serve activity untouched.
fn committed_artifacts() -> Vec<(PathBuf, String)> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    ["ablations", "fig11", "fig12", "table1"]
        .iter()
        .map(|name| {
            let path = root.join(format!("BENCH_{name}.json"));
            let body = std::fs::read_to_string(&path)
                .unwrap_or_else(|e| panic!("committed artifact {}: {e}", path.display()));
            (path, body)
        })
        .collect()
}

#[test]
fn e2e_submit_stream_and_cache_hit_byte_identity() {
    let before = committed_artifacts();
    let ts = TestServer::start("e2e", |_| {});
    let mut client = ts.connect();

    // The server answers pings with its protocol version.
    let mut ping = Json::object();
    ping.set("op", "ping".into());
    let pong = client.request(&ping).expect("pong");
    assert_eq!(response_type(&pong), "pong");
    assert_eq!(pong.get("protocol").and_then(Json::as_u64), Some(1));

    // Fresh 20k-instruction job with the event stream on.
    let mut req = submit_req("gzip", "slice2", 20_000, "job1");
    req.set("events", Json::from(true));
    let (fresh, before_lines) = submit(&mut client, &req);
    assert_eq!(response_type(&fresh), "result", "{fresh}");
    assert!(!is_cached(&fresh), "first run must simulate");
    assert_eq!(fresh.get("tag").and_then(Json::as_str), Some("job1"));
    let accepted = before_lines
        .iter()
        .filter(|l| response_type(l) == "accepted")
        .count();
    let progress = before_lines
        .iter()
        .filter(|l| response_type(l) == "progress")
        .count();
    assert_eq!(accepted, 1, "exactly one accepted line: {before_lines:?}");
    assert!(
        progress >= 2,
        "20k instructions at a 5k interval stream progress: {before_lines:?}"
    );
    let fresh_artifact = artifact_text(&fresh);
    let digest = digest_of(&fresh);

    // The artifact landed on disk, seals verified, matching the wire copy.
    let disk = std::fs::read_to_string(ts.entry_path(&digest)).expect("cached entry on disk");
    let parsed_disk = Json::parse(&disk).expect("disk entry parses");
    assert_eq!(parsed_disk.to_string(), fresh_artifact);

    // Identical resubmission: flagged as a cache hit, byte-identical
    // artifact, and the disk entry untouched.
    let (hit, _) = submit(&mut client, &req);
    assert!(is_cached(&hit), "second run must be served from cache");
    assert_eq!(artifact_text(&hit), fresh_artifact);
    let disk_after = std::fs::read_to_string(ts.entry_path(&digest)).expect("entry still there");
    assert_eq!(disk_after, disk, "cache hit must not rewrite the entry");

    // A fresh connection sees the same cached bytes.
    let mut client2 = ts.connect();
    let (hit2, _) = submit(&mut client2, &req);
    assert!(is_cached(&hit2));
    assert_eq!(artifact_text(&hit2), fresh_artifact);

    // compare over two cached entries works end to end.
    let ideal = submit_req("gzip", "ideal", 20_000, "job2");
    let (ideal_res, _) = submit(&mut client, &ideal);
    assert_eq!(response_type(&ideal_res), "result", "{ideal_res}");
    let mut cmp = Json::object();
    cmp.set("op", "compare".into());
    cmp.set("a", {
        let mut s = Json::object();
        s.set("workload", "gzip".into());
        s.set("config", "slice2".into());
        s.set("limit", Json::from(20_000u64));
        s
    });
    cmp.set("b", {
        let mut s = Json::object();
        s.set("workload", "gzip".into());
        s.set("config", "ideal".into());
        s.set("limit", Json::from(20_000u64));
        s
    });
    let diff = client.request(&cmp).expect("compare");
    assert_eq!(response_type(&diff), "compare", "{diff}");
    let ratio = diff.get("ipc_ratio").and_then(Json::as_f64).expect("ratio");
    assert!(
        ratio > 0.1 && ratio < 1.5,
        "slice2/ideal IPC ratio: {ratio}"
    );
    assert!(
        !diff
            .get("differing_counters")
            .and_then(Json::as_array)
            .expect("diff list")
            .is_empty(),
        "different configs differ in counters"
    );

    drop(ts); // full shutdown before re-reading the committed artifacts

    for (path, body) in before {
        let now = std::fs::read_to_string(&path).expect("artifact readable");
        assert_eq!(now, body, "{} changed", path.display());
    }
}

#[test]
fn cache_robustness_corrupted_entries_resimulate() {
    let ts = TestServer::start("robust", |_| {});
    let mut client = ts.connect();
    let req = submit_req("li", "slice2-1", 10_000, "rob");

    let (fresh, _) = submit(&mut client, &req);
    assert!(!is_cached(&fresh), "{fresh}");
    let artifact = artifact_text(&fresh);
    let digest = digest_of(&fresh);
    let path = ts.entry_path(&digest);
    let good = std::fs::read_to_string(&path).expect("entry written");

    // Truncation (invalid JSON) → detected, re-simulated, identical.
    std::fs::write(&path, &good[..good.len() / 2]).expect("truncate");
    let (r, _) = submit(&mut client, &req);
    assert!(!is_cached(&r), "truncated entry must re-simulate");
    assert_eq!(artifact_text(&r), artifact);

    // Silent bit-rot that stays valid JSON → checksum catches it.
    let rotten = good.replacen("\"cycles\"", "\"cycels\"", 1);
    assert_ne!(rotten, good);
    std::fs::write(&path, &rotten).expect("corrupt");
    let (r, _) = submit(&mut client, &req);
    assert!(!is_cached(&r), "corrupted entry must re-simulate");
    assert_eq!(artifact_text(&r), artifact);

    // Stale schema version, correctly sealed → version check catches it.
    let mut stale = Json::parse(&good).expect("parse good entry");
    stale.remove("integrity");
    stale.set("schema_version", Json::from(999_u64));
    std::fs::write(&path, popk_bench::cache::seal_body(stale)).expect("stale write");
    let (r, _) = submit(&mut client, &req);
    assert!(!is_cached(&r), "stale-schema entry must re-simulate");
    assert_eq!(artifact_text(&r), artifact);

    // After all that re-simulation the entry is healthy again.
    let (r, _) = submit(&mut client, &req);
    assert!(is_cached(&r), "repaired entry serves from cache");
    assert_eq!(artifact_text(&r), artifact);
    assert_eq!(std::fs::read_to_string(&path).expect("entry"), good);
}

#[test]
fn concurrent_same_key_submitters_share_one_simulation() {
    let ts = TestServer::start("concurrent", |_| {});
    // A budget big enough that the second submit lands while the first
    // is still simulating (~100k instructions ≈ tens of ms).
    let req = submit_req("gcc", "slice2", 100_000, "cc");

    let addr = ts.server.as_ref().unwrap().local_addr().to_string();
    let results: Vec<(Json, Json)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let (req, addr) = (req.clone(), addr.clone());
                scope.spawn(move || {
                    let mut c = Client::connect(&addr).expect("connect");
                    submit(&mut c, &req).0
                })
            })
            .collect();
        let mut out: Vec<Json> = handles
            .into_iter()
            .map(|h| h.join().expect("thread"))
            .collect();
        let b = out.pop().expect("two results");
        let a = out.pop().expect("two results");
        vec![(a, b)]
    });
    let (a, b) = &results[0];
    assert_eq!(response_type(a), "result", "{a}");
    assert_eq!(response_type(b), "result", "{b}");
    assert_eq!(artifact_text(a), artifact_text(b), "identical responses");

    // Exactly one simulation ran for the two submissions.
    let mut client = ts.connect();
    let mut stats_req = Json::object();
    stats_req.set("op", "stats".into());
    let stats = client.request(&stats_req).expect("stats");
    assert_eq!(stats.get("submitted").and_then(Json::as_u64), Some(2));
    assert_eq!(
        stats.get("simulations").and_then(Json::as_u64),
        Some(1),
        "single-flight: {stats}"
    );
}

#[test]
fn failure_paths_keep_the_daemon_serving() {
    let ts = TestServer::start("failures", |cfg| {
        cfg.workers = 1;
    });
    let mut client = ts.connect();

    // A panicking job (the poison test seam) returns a structured
    // per-job error...
    set_poisoned_workload(Some("vortex"));
    let (err, _) = submit(
        &mut client,
        &submit_req("vortex", "ideal", 10_000, "poison"),
    );
    set_poisoned_workload(None);
    assert_eq!(response_type(&err), "error", "{err}");
    assert_eq!(err.get("kind").and_then(Json::as_str), Some("panic"));
    assert!(
        err.get("message")
            .and_then(Json::as_str)
            .expect("message")
            .contains("poisoned workload"),
        "{err}"
    );

    // ...and a deadlocked one (zero memory ports starves the watchdog)
    // likewise, with the SimError taxonomy's kind.
    let mut dead = submit_req("gzip", "ideal", 10_000, "dead");
    dead.set("overrides", {
        let mut o = Json::object();
        o.set("mem_ports", Json::from(0u64));
        o.set("watchdog", Json::from(2_000u64));
        o
    });
    let (err, _) = submit(&mut client, &dead);
    assert_eq!(response_type(&err), "error", "{err}");
    assert_eq!(err.get("kind").and_then(Json::as_str), Some("deadlock"));

    // Bad requests get typed errors without wedging the connection.
    let (err, _) = submit(&mut client, &submit_req("nope", "ideal", 10_000, "bad"));
    assert_eq!(
        err.get("kind").and_then(Json::as_str),
        Some("unknown_workload")
    );
    let (err, _) = submit(&mut client, &submit_req("gzip", "nope", 10_000, "bad2"));
    assert_eq!(
        err.get("kind").and_then(Json::as_str),
        Some("unknown_config")
    );

    // The daemon is still healthy after all of the above.
    let (ok, _) = submit(&mut client, &submit_req("gzip", "ideal", 10_000, "healthy"));
    assert_eq!(response_type(&ok), "result", "{ok}");
}

#[test]
fn full_queue_rejects_with_backpressure() {
    let ts = TestServer::start("backpressure", |cfg| {
        cfg.workers = 1;
        cfg.queue_capacity = 1;
    });
    let mut client = ts.connect();

    // Distinct keys (seeds) so nothing attaches or cache-hits: with one
    // worker and a one-slot queue, rapid-fire submits must overflow.
    for i in 0..6u64 {
        let mut req = submit_req("parser", "slice4", 150_000, &format!("bp{i}"));
        req.set("seed", Json::from(i));
        client.send(&req).expect("send");
    }
    // Collect terminal responses for all six tags.
    let mut outcomes = std::collections::HashMap::new();
    while outcomes.len() < 6 {
        let (terminal, _) = client.recv_until(&["result"]).expect("stream");
        let tag = terminal
            .get("tag")
            .and_then(Json::as_str)
            .expect("tagged")
            .to_string();
        outcomes.insert(tag, terminal);
    }
    let rejected = outcomes
        .values()
        .filter(|r| {
            response_type(r) == "error"
                && r.get("kind").and_then(Json::as_str) == Some("backpressure")
        })
        .count();
    let completed = outcomes
        .values()
        .filter(|r| response_type(r) == "result")
        .count();
    // The submits land faster than the single worker can drain, so at
    // least the overflow beyond (1 queued + 1 running) must be rejected
    // immediately — and everything accepted must still finish.
    assert!(rejected >= 4, "full queue must reject: {outcomes:?}");
    assert!(completed >= 1, "accepted jobs still finish: {outcomes:?}");
    assert_eq!(rejected + completed, 6);
}
