//! Determinism golden tests: the simulator must be a pure function of
//! (program, config, budget).
//!
//! Each workload is simulated **twice** at a fixed 40 K-instruction
//! budget under the three headline configurations and the two runs must
//! produce bit-identical [`SimStats`] and identical [`StatsRegistry`]
//! snapshots. This guards the observability hooks (tracing, registry)
//! against accidentally perturbing timing, and the simulator itself
//! against hidden nondeterminism (iteration-order effects, uninitialized
//! state, time- or address-dependent behaviour).

use popk_core::{MachineConfig, SimStats, Simulator, StatsRegistry};
use popk_isa::Program;
use popk_workloads::all;
use std::sync::Mutex;

const BUDGET: u64 = 40_000;

/// One full run: stats plus the complete registry snapshot (which folds
/// in the front-end and cache-hierarchy counters on top of `SimStats`).
fn run_once(program: &Program, cfg: &MachineConfig) -> (SimStats, StatsRegistry) {
    let mut sim = Simulator::new(cfg);
    let stats = sim.run(program, BUDGET);
    (stats, sim.registry())
}

fn check_config(make: fn() -> MachineConfig, label: &str) {
    let workloads = all();
    let failures: Mutex<Vec<String>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for w in &workloads {
            scope.spawn(|| {
                let p = w.program();
                let cfg = make();
                let (s1, r1) = run_once(&p, &cfg);
                let (s2, r2) = run_once(&p, &cfg);
                if s1 != s2 {
                    failures.lock().unwrap().push(format!(
                        "{}/{label}: SimStats differ:\n{s1:#?}\nvs\n{s2:#?}",
                        w.name
                    ));
                }
                if r1 != r2 {
                    failures
                        .lock()
                        .unwrap()
                        .push(format!("{}/{label}: registry snapshots differ", w.name));
                }
                // A run must also do *something* for the comparison to
                // mean anything.
                assert!(
                    s1.committed > 0,
                    "{}/{label}: no instructions committed",
                    w.name
                );
            });
        }
    });
    let failures = failures.into_inner().unwrap();
    assert!(failures.is_empty(), "{}", failures.join("\n\n"));
}

#[test]
fn ideal_is_deterministic() {
    check_config(MachineConfig::ideal, "ideal");
}

#[test]
fn slice2_full_is_deterministic() {
    check_config(MachineConfig::slice2_full, "slice2_full");
}

#[test]
fn slice4_full_is_deterministic() {
    check_config(MachineConfig::slice4_full, "slice4_full");
}
