//! Checkpoint/resume contract, end to end on both ISAs: a run resumed
//! from any checkpoint produces byte-identical statistics to the
//! uninterrupted run (replay-validated resume — see DESIGN.md §10),
//! checkpoint documents round-trip through their sealed on-disk body,
//! and every defect class (truncation, bit-rot, stale schema, wrong
//! identity, diverged state) is rejected with its own typed error.

use popk::core::{
    try_resume, try_resume_frontend, try_simulate, try_simulate_checkpointed,
    try_simulate_frontend, try_simulate_frontend_checkpointed, Checkpoint, CheckpointError,
    CheckpointPlan, IsaKind, Json, MachineConfig, SimError,
};
use popk::rv32::{workloads as rv32_workloads, Rv32Frontend};
use popk::workloads::by_name;
use popk_bench::cache::seal_body;
use std::sync::{Arc, Mutex};

const LIMIT: u64 = 20_000;
const INTERVAL: u64 = 5_000;

/// Run a PISA workload with periodic checkpoints, returning the final
/// stats (as a debug string — `SimStats` is all-u64 counters, so this
/// is an exact comparison) and every checkpoint emitted.
fn pisa_checkpointed(name: &str, cfg: &MachineConfig) -> (String, Vec<Checkpoint>) {
    let p = by_name(name).expect("workload exists").program();
    let sink: Arc<Mutex<Vec<Checkpoint>>> = Arc::new(Mutex::new(Vec::new()));
    let out = sink.clone();
    let plan = CheckpointPlan::periodic(name, cfg.fingerprint(), LIMIT, INTERVAL, move |c| {
        out.lock().unwrap().push(c);
    });
    let stats = try_simulate_checkpointed(&p, cfg, LIMIT, plan).expect("checkpointed run");
    let cks = Arc::try_unwrap(sink)
        .expect("sink released")
        .into_inner()
        .unwrap();
    (format!("{stats:?}"), cks)
}

#[test]
fn pisa_resume_from_any_checkpoint_matches_uninterrupted_run() {
    for name in ["gzip", "gcc"] {
        let p = by_name(name).unwrap().program();
        for cfg in [MachineConfig::slice2_full(), MachineConfig::ideal()] {
            let baseline = format!("{:?}", try_simulate(&p, &cfg, LIMIT).expect("baseline"));
            let (watched, cks) = pisa_checkpointed(name, &cfg);
            assert_eq!(
                watched, baseline,
                "{name}: the checkpoint watch must not perturb timing"
            );
            assert!(
                cks.len() >= 2,
                "{name}: expected several checkpoints, got {}",
                cks.len()
            );
            for c in &cks {
                let committed = c.committed;
                let resumed = try_resume(&p, &cfg, LIMIT, name, c.clone())
                    .unwrap_or_else(|e| panic!("{name} resume@{committed}: {e}"));
                assert_eq!(
                    format!("{resumed:?}"),
                    baseline,
                    "{name}: resume from checkpoint@{committed} diverged"
                );
            }
        }
    }
}

#[test]
fn rv32_resume_from_any_checkpoint_matches_uninterrupted_run() {
    let mut cfg = MachineConfig::slice2_full();
    cfg.isa = IsaKind::Rv32;
    for w in rv32_workloads::all() {
        let p = w.program();
        let baseline = format!(
            "{:?}",
            try_simulate_frontend(&cfg, Rv32Frontend::new(&p, LIMIT)).expect("baseline")
        );
        let sink: Arc<Mutex<Vec<Checkpoint>>> = Arc::new(Mutex::new(Vec::new()));
        let out = sink.clone();
        let plan = CheckpointPlan::periodic(w.name, cfg.fingerprint(), LIMIT, INTERVAL, move |c| {
            out.lock().unwrap().push(c);
        });
        let watched = try_simulate_frontend_checkpointed(&cfg, Rv32Frontend::new(&p, LIMIT), plan)
            .expect("checkpointed run");
        assert_eq!(format!("{watched:?}"), baseline, "{}", w.name);
        let cks = sink.lock().unwrap().clone();
        assert!(!cks.is_empty(), "{}: no checkpoints emitted", w.name);
        for c in &cks {
            assert_eq!(c.isa, "rv32");
            let resumed =
                try_resume_frontend(&cfg, Rv32Frontend::new(&p, LIMIT), LIMIT, w.name, c.clone())
                    .unwrap_or_else(|e| panic!("{} resume@{}: {e}", w.name, c.committed));
            assert_eq!(
                format!("{resumed:?}"),
                baseline,
                "{}: resume from checkpoint@{} diverged",
                w.name,
                c.committed
            );
        }
    }
}

/// A real checkpoint to tamper with, from a PISA run.
fn sample_checkpoint() -> Checkpoint {
    let (_, cks) = pisa_checkpointed("gzip", &MachineConfig::slice2_full());
    cks.into_iter().next().expect("at least one checkpoint")
}

#[test]
fn checkpoint_body_roundtrips_exactly_on_both_isas() {
    // PISA, every periodic snapshot of the run.
    for c in pisa_checkpointed("li", &MachineConfig::slice2_full()).1 {
        let back = Checkpoint::parse(&c.to_body()).expect("parses");
        assert_eq!(back, c, "pisa body round-trip @{}", c.committed);
    }
    // RV32, through the file system (save/load).
    let mut cfg = MachineConfig::slice2_full();
    cfg.isa = IsaKind::Rv32;
    let w = &rv32_workloads::all()[0];
    let p = w.program();
    let sink: Arc<Mutex<Vec<Checkpoint>>> = Arc::new(Mutex::new(Vec::new()));
    let out = sink.clone();
    let plan = CheckpointPlan::periodic(w.name, cfg.fingerprint(), LIMIT, INTERVAL, move |c| {
        out.lock().unwrap().push(c);
    });
    try_simulate_frontend_checkpointed(&cfg, Rv32Frontend::new(&p, LIMIT), plan).expect("run");
    let dir = std::env::temp_dir().join(format!("popk-ckpt-rt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    for (i, c) in sink.lock().unwrap().iter().enumerate() {
        let path = dir.join(format!("rt-{i}.ckpt.json"));
        c.save(&path).expect("saves");
        assert_eq!(&Checkpoint::load(&path).expect("loads"), c);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn defective_checkpoint_bodies_are_rejected_with_typed_errors() {
    let c = sample_checkpoint();
    let body = c.to_body();

    // Truncation → malformed (not valid JSON any more).
    assert!(matches!(
        Checkpoint::parse(&body[..body.len() / 2]),
        Err(CheckpointError::Malformed(_))
    ));
    assert!(matches!(
        Checkpoint::parse(""),
        Err(CheckpointError::Malformed(_))
    ));

    // Bit-rot that stays valid JSON → integrity checksum mismatch.
    let rotted = body.replacen(
        &format!("\"committed\": {}", c.committed),
        &format!("\"committed\": {}", c.committed + 1),
        1,
    );
    assert_ne!(rotted, body, "tamper must change the body");
    assert_eq!(Checkpoint::parse(&rotted), Err(CheckpointError::Corrupt));

    // A correctly sealed body from a different schema version → stale.
    let mut future = Json::parse(&body).unwrap();
    future.remove("integrity");
    future.set("checkpoint_version", Json::from(999u64));
    assert_eq!(
        Checkpoint::parse(&seal_body(future)),
        Err(CheckpointError::StaleVersion { found: 999 })
    );

    // Identity mismatches, field by field.
    let cfg_hash = c.config_hash;
    for (case, err_field) in [
        (c.validate_for("rv32", "gzip", cfg_hash, LIMIT), "isa"),
        (c.validate_for("pisa", "gcc", cfg_hash, LIMIT), "workload"),
        (
            c.validate_for("pisa", "gzip", cfg_hash ^ 1, LIMIT),
            "config",
        ),
        (c.validate_for("pisa", "gzip", cfg_hash, LIMIT + 1), "limit"),
    ] {
        assert_eq!(case, Err(CheckpointError::Mismatch { field: err_field }));
    }
    assert_eq!(c.validate_for("pisa", "gzip", cfg_hash, LIMIT), Ok(()));
}

#[test]
fn resume_from_tampered_state_fails_with_divergence() {
    // Flip one architectural register in the snapshot (and reseal it
    // through a save/load cycle), so the document is well-formed and
    // the identity matches — only the replay cross-check can catch it.
    let mut forged = sample_checkpoint();
    forged.arch.regs[5] ^= 0xdead_beef;
    let forged = Checkpoint::parse(&forged.to_body()).expect("forged body parses and verifies");

    let p = by_name("gzip").unwrap().program();
    let cfg = MachineConfig::slice2_full();
    match try_resume(&p, &cfg, LIMIT, "gzip", forged) {
        Err(SimError::Checkpoint(CheckpointError::Divergence { committed, .. })) => {
            assert!(committed > 0);
        }
        other => panic!("expected divergence, got {other:?}"),
    }
}
