//! `popk` — command-line front end to the whole stack.
//!
//! ```text
//! popk workloads                         list the built-in Table 1 kernels
//! popk asm  <prog.s>                     assemble and disassemble a program
//! popk run  <prog.s|name> [limit]        execute functionally, print output
//! popk sim  <prog.s|name> [cfg] [limit]  timing statistics on one machine
//! popk trace <prog.s|name> [cfg] [n]     pipetrace of the first n commits
//! popk study <prog.s|name> [limit]       the three §5 characterizations
//! ```
//!
//! `cfg` ∈ ideal | simple2 | simple4 | slice2 | slice4 | ext2 | ext4
//! (extN = all techniques + the §5.1/§6 extensions).

use popk::characterize::{drive, BranchStudy, DisambigStudy, TagMatchStudy, WidthStudy};
use popk::core::{render_chart, simulate, MachineConfig, Optimizations, Simulator};
use popk::emu::Machine;
use popk::isa::{asm, Program};
use std::process::ExitCode;

fn main() -> ExitCode {
    // Exit quietly when stdout closes early (`popk … | head`), matching
    // conventional CLI behaviour instead of panicking on EPIPE.
    std::panic::set_hook(Box::new(|info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        if msg.contains("Broken pipe") {
            std::process::exit(0);
        }
        eprintln!("{info}");
        std::process::exit(101);
    }));
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cmd = args.first().map(String::as_str).unwrap_or("help");
    let rest = &args[1.min(args.len())..];
    match cmd {
        "workloads" => workloads(),
        "asm" => with_program(rest, |p, rest| asm_cmd(&p, rest)),
        "run" => with_program(rest, run_cmd),
        "sim" => with_program(rest, sim_cmd),
        "trace" => with_program(rest, trace_cmd),
        "study" => with_program(rest, study_cmd),
        "help" | "--help" | "-h" => {
            usage();
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("unknown command `{other}`\n");
            usage();
            ExitCode::FAILURE
        }
    }
}

fn usage() {
    eprintln!(
        "popk — bit-sliced partial-operand-knowledge simulator\n\n\
         usage:\n\
         \x20 popk workloads\n\
         \x20 popk asm   <prog.s> [-o prog.popk]\n\
         \x20 popk run   <prog.s|workload> [limit]\n\
         \x20 popk sim   <prog.s|workload> [config] [limit]\n\
         \x20 popk trace <prog.s|workload> [config] [count]\n\
         \x20 popk study <prog.s|workload> [limit]\n\n\
         configs: ideal simple2 simple4 slice2 slice4 ext2 ext4"
    );
}

fn workloads() -> ExitCode {
    println!("{:<8} description", "name");
    for w in popk::workloads::all() {
        println!("{:<8} {}", w.name, w.description);
    }
    ExitCode::SUCCESS
}

/// Resolve the first argument as either an assembly file or a workload
/// name, and hand the program plus remaining args to `f`.
fn with_program(rest: &[String], f: impl Fn(Program, &[String]) -> ExitCode) -> ExitCode {
    let Some(target) = rest.first() else {
        eprintln!("missing program argument");
        usage();
        return ExitCode::FAILURE;
    };
    let program = if let Some(w) = popk::workloads::by_name(target) {
        w.program()
    } else {
        let bytes = match std::fs::read(target) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("cannot read `{target}`: {e}");
                return ExitCode::FAILURE;
            }
        };
        if popk::isa::obj::is_object(&bytes) {
            match popk::isa::obj::read_object(&bytes) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("{target}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        } else {
            let src = match String::from_utf8(bytes) {
                Ok(s) => s,
                Err(_) => {
                    eprintln!("{target}: neither a POPK object nor UTF-8 assembly");
                    return ExitCode::FAILURE;
                }
            };
            match asm::assemble(&src) {
                Ok(p) => p,
                Err(e) => {
                    eprintln!("{target}: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };
    f(program, &rest[1..])
}

fn parse_config(s: Option<&String>) -> Option<MachineConfig> {
    Some(match s.map(String::as_str).unwrap_or("slice2") {
        "ideal" => MachineConfig::ideal(),
        "simple2" => MachineConfig::simple2(),
        "simple4" => MachineConfig::simple4(),
        "slice2" => MachineConfig::slice2_full(),
        "slice4" => MachineConfig::slice4_full(),
        "ext2" => MachineConfig::slice2(Optimizations::extended()),
        "ext4" => MachineConfig::slice4(Optimizations::extended()),
        other => {
            eprintln!("unknown config `{other}`");
            return None;
        }
    })
}

fn parse_limit(s: Option<&String>, default: u64) -> u64 {
    s.and_then(|v| v.replace('_', "").parse().ok())
        .unwrap_or(default)
}

fn asm_cmd(p: &Program, rest: &[String]) -> ExitCode {
    // `popk asm prog.s -o prog.popk` writes the binary object instead of
    // printing the listing.
    if let Some(pos) = rest.iter().position(|a| a == "-o") {
        let Some(out) = rest.get(pos + 1) else {
            eprintln!("-o requires an output path");
            return ExitCode::FAILURE;
        };
        let bytes = popk::isa::obj::write_object(p);
        if let Err(e) = std::fs::write(out, &bytes) {
            eprintln!("cannot write `{out}`: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!(
            "wrote {out}: {} instructions, {} data bytes, {} symbols",
            p.text.len(),
            p.data.len(),
            p.symbols.len()
        );
        return ExitCode::SUCCESS;
    }
    println!(
        "; {} instructions, {} data bytes, entry {:#010x}",
        p.text.len(),
        p.data.len(),
        p.entry
    );
    print!("{}", p.disassemble());
    ExitCode::SUCCESS
}

fn run_cmd(p: Program, rest: &[String]) -> ExitCode {
    let limit = parse_limit(rest.first(), 50_000_000);
    let mut m = Machine::new(&p);
    match m.run(limit) {
        Ok(Some(code)) => {
            for v in m.output_ints() {
                println!("{v}");
            }
            if !m.output_bytes().is_empty() {
                println!("{}", String::from_utf8_lossy(m.output_bytes()));
            }
            eprintln!(
                "exit {code} after {} instructions ({} loads, {} stores, {} branches)",
                m.icount(),
                m.stats().loads,
                m.stats().stores,
                m.stats().cond_branches
            );
            ExitCode::SUCCESS
        }
        Ok(None) => {
            eprintln!("did not exit within {limit} instructions");
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("emulation error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn sim_cmd(p: Program, rest: &[String]) -> ExitCode {
    let Some(cfg) = parse_config(rest.first()) else {
        return ExitCode::FAILURE;
    };
    let limit = parse_limit(rest.get(1), 200_000);
    let s = simulate(&p, &cfg, limit);
    println!("config            {}", cfg.label());
    println!("instructions      {}", s.committed);
    println!("cycles            {}", s.cycles);
    println!("IPC               {:.4}", s.ipc());
    println!("branch accuracy   {:.2}%", 100.0 * s.branch_accuracy());
    println!("L1D hit rate      {:.2}%", 100.0 * s.l1d_hit_rate());
    println!("store forwards    {}", s.store_forwards);
    println!("early disambig    {}", s.early_disambig_loads);
    println!("early br resolve  {}", s.early_branch_resolves);
    println!("partial-tag acc.  {}", s.partial_tag_accesses);
    println!("way mispredicts   {}", s.way_mispredicts);
    if s.spec_forwards + s.narrow_wakeups > 0 {
        println!(
            "spec forwards     {} ({} wrong)",
            s.spec_forwards, s.spec_forward_wrong
        );
        println!("narrow publishes  {}", s.narrow_wakeups);
    }
    ExitCode::SUCCESS
}

fn trace_cmd(p: Program, rest: &[String]) -> ExitCode {
    let Some(cfg) = parse_config(rest.first()) else {
        return ExitCode::FAILURE;
    };
    let count = parse_limit(rest.get(1), 32) as usize;
    let mut sim = Simulator::new(&cfg);
    let (stats, timings) = sim.run_timeline(&p, (count as u64) * 40 + 2_000, count);
    println!("{} — IPC {:.3}\n", cfg.label(), stats.ipc());
    print!("{}", render_chart(&timings, 110));
    println!(
        "\nF fetch, D dispatch, 0-3 slice issue, o slice result, m/M memory\n\
         start/data, ! branch resolution, C commit."
    );
    ExitCode::SUCCESS
}

fn study_cmd(p: Program, rest: &[String]) -> ExitCode {
    let limit = parse_limit(rest.first(), 200_000);
    let mut disambig = DisambigStudy::new(32);
    let mut tags = TagMatchStudy::new(popk_cache::CacheConfig::l1d_table2());
    let mut branches = BranchStudy::table2();
    let mut widths = WidthStudy::new();
    let n = match drive(
        &p,
        limit,
        &mut [&mut disambig, &mut tags, &mut branches, &mut widths],
    ) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("emulation error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let d = disambig.report();
    let t = tags.report();
    let b = branches.report();
    println!("instructions        {n}");
    println!("loads               {}", d.loads);
    println!("resolved ≤9 bits    {:.1}%", d.resolved_after_bits(9));
    println!("L1D accesses        {}", t.accesses);
    println!(
        "hit rate            {:.1}%",
        100.0 * t.hits as f64 / t.accesses.max(1) as f64
    );
    println!(
        "2-bit spec accuracy {:.1}%",
        100.0 * t.speculation_accuracy(2.min(t.config.tag_bits()))
    );
    println!("branches            {}", b.branches);
    println!("accuracy            {:.1}%", 100.0 * b.accuracy());
    println!("mispredicts         {}", b.mispredicts);
    if b.mispredicts > 0 {
        println!("detect ≤1 bit       {:.1}%", b.percent_detected_within(1));
        println!("detect ≤8 bits      {:.1}%", b.percent_detected_within(8));
    }
    let wd = widths.report();
    println!("results observed    {}", wd.results);
    println!("narrow ≤8 bits      {:.1}%", 100.0 * wd.fraction_within(8));
    println!("narrow ≤16 bits     {:.1}%", 100.0 * wd.fraction_within(16));
    println!("mean result width   {:.1} bits", wd.mean_width());
    ExitCode::SUCCESS
}
