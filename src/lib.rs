//! # popk — Exploiting Partial Operand Knowledge
//!
//! A from-scratch Rust reproduction of Mestan & Lipasti's ICPP 2003 paper
//! *"Exploiting Partial Operand Knowledge"*: a bit-sliced out-of-order
//! microarchitecture in which register operands are decomposed into 16- or
//! 8-bit slices, dependent instructions wake up on partial results, loads
//! disambiguate and probe the cache with partial addresses, and `beq`/`bne`
//! mispredictions resolve from low-order bits.
//!
//! This facade crate re-exports the workspace's subsystems:
//!
//! * [`isa`] — the PISA-like instruction set, assembler and builder.
//! * [`trace`] — the ISA-neutral micro-op boundary ([`trace::Uop`]).
//! * [`emu`] — functional emulator and dynamic traces (the PISA frontend).
//! * [`rv32`] — the RV32I frontend: decoder, reference machine, workloads.
//! * [`workloads`] — eleven SPECint stand-in kernels (Table 1).
//! * [`bpred`] — gshare/bimodal predictors, BTB, RAS.
//! * [`cache`] — set-associative caches with partial tag matching.
//! * [`slice`](mod@slice) — bit-slice arithmetic primitives (Fig. 8 algebra).
//! * [`characterize`] — trace-driven studies behind Figs. 2, 4 and 6.
//! * [`core`] — the bit-sliced out-of-order timing model (Figs. 7–12).
//!
//! See `README.md` for a quickstart and `DESIGN.md` for the experiment
//! index.

pub use popk_bpred as bpred;
pub use popk_cache as cache;
pub use popk_characterize as characterize;
pub use popk_core as core;
pub use popk_emu as emu;
pub use popk_isa as isa;
pub use popk_rv32 as rv32;
pub use popk_slice as slice;
pub use popk_trace as trace;
pub use popk_workloads as workloads;
