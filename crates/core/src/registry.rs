//! A self-describing statistics registry.
//!
//! [`SimStats`] is the hot-path struct the simulator increments directly;
//! this module provides the *presentation* view over it: every counter
//! gets a stable name and a one-line description, the registry can fold
//! in the front-end and cache-hierarchy counters, and the whole thing
//! serializes to [`Json`] for the `BENCH_*.json` artifacts or renders as
//! an aligned text table. Names are stable identifiers (snake_case,
//! dotted prefixes for subsystems) — downstream tooling keys on them.

use crate::json::Json;
use crate::stats::SimStats;
use popk_bpred::PredStats;
use popk_cache::CacheStats;

/// One named counter: a value plus its self-description.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Counter {
    /// Stable identifier (e.g. `"early_branch_resolves"`).
    pub name: &'static str,
    /// One-line human description.
    pub help: &'static str,
    /// The counter value.
    pub value: u64,
}

/// An ordered collection of named counters snapshotted from one run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct StatsRegistry {
    counters: Vec<Counter>,
}

impl StatsRegistry {
    /// An empty registry.
    pub fn new() -> StatsRegistry {
        StatsRegistry::default()
    }

    /// Snapshot every [`SimStats`] counter under its canonical name.
    pub fn from_sim(s: &SimStats) -> StatsRegistry {
        let mut r = StatsRegistry::new();
        r.add(
            "cycles",
            "Cycles elapsed when the last instruction committed",
            s.cycles,
        );
        r.add("committed", "Instructions committed", s.committed);
        r.add("loads", "Loads committed", s.loads);
        r.add("stores", "Stores committed", s.stores);
        r.add("branches", "Conditional branches committed", s.branches);
        r.add(
            "branch_mispredicts",
            "Conditional-branch direction mispredictions",
            s.branch_mispredicts,
        );
        r.add(
            "indirect_mispredicts",
            "Indirect-jump target mispredictions",
            s.indirect_mispredicts,
        );
        r.add(
            "early_branch_resolves",
            "Mispredicted branches resolved from a partial slice",
            s.early_branch_resolves,
        );
        r.add(
            "early_branch_cycles_saved",
            "Redirect-latency cycles saved by early branch resolution",
            s.early_branch_cycles_saved,
        );
        r.add(
            "early_disambig_loads",
            "Loads issued past older stores via partial-address mismatch",
            s.early_disambig_loads,
        );
        r.add(
            "store_forwards",
            "Loads whose data was forwarded from an in-flight store",
            s.store_forwards,
        );
        r.add(
            "spec_forwards",
            "Loads speculatively forwarded from a unique partial match",
            s.spec_forwards,
        );
        r.add(
            "spec_forward_wrong",
            "Speculative forwards refuted at verification",
            s.spec_forward_wrong,
        );
        r.add(
            "narrow_wakeups",
            "Upper-slice wakeups satisfied by the narrow-operand relaxation",
            s.narrow_wakeups,
        );
        r.add(
            "mem_dep_speculations",
            "Loads issued past unknown store addresses on predictor say-so",
            s.mem_dep_speculations,
        );
        r.add(
            "mem_dep_violations",
            "Dependence speculations that violated",
            s.mem_dep_violations,
        );
        r.add(
            "sam_starts",
            "Loads indexed by sum-addressed decode before their own agen",
            s.sam_starts,
        );
        r.add(
            "partial_tag_accesses",
            "Loads that began their L1D access with a partial address",
            s.partial_tag_accesses,
        );
        r.add(
            "partial_tag_early_miss",
            "Partial-tag probes that ruled out every way (early miss)",
            s.partial_tag_early_miss,
        );
        r.add(
            "way_mispredicts",
            "Partial-tag way speculations refuted at verification",
            s.way_mispredicts,
        );
        r.add("l1d_hits", "L1 data-cache hits", s.l1d_hits);
        r.add("l1d_accesses", "L1 data-cache accesses", s.l1d_accesses);
        r.add(
            "load_replays",
            "Loads replayed on scheduling misspeculation",
            s.load_replays,
        );
        r.add(
            "fetch_redirect_stalls",
            "Cycles fetch stalled awaiting a branch redirect",
            s.fetch_redirect_stalls,
        );
        r.add(
            "ruu_full_stalls",
            "Cycles dispatch blocked on a full RUU",
            s.ruu_full_stalls,
        );
        r.add(
            "lsq_full_stalls",
            "Cycles dispatch blocked on a full LSQ",
            s.lsq_full_stalls,
        );
        r
    }

    /// Fold in the front-end predictor's own counters (`frontend.` prefix).
    pub fn add_frontend(&mut self, p: &PredStats) {
        self.add("frontend.cond", "Conditional branches predicted", p.cond);
        self.add(
            "frontend.cond_wrong",
            "Conditional direction mispredictions",
            p.cond_wrong,
        );
        self.add("frontend.indirect", "Indirect jumps predicted", p.indirect);
        self.add(
            "frontend.indirect_wrong",
            "Indirect target mispredictions",
            p.indirect_wrong,
        );
        self.add("frontend.direct", "Direct jumps seen", p.direct);
    }

    /// Fold in one cache's counters under `prefix` (e.g. `"l1d"`).
    pub fn add_cache(&mut self, prefix: &'static str, c: &CacheStats) {
        // Leak-free static naming: the three hierarchy levels are known.
        let (acc_name, acc_help, hit_name, hit_help) = match prefix {
            "l1i" => (
                "l1i.accesses",
                "L1 I-cache accesses",
                "l1i.hits",
                "L1 I-cache hits",
            ),
            "l2" => ("l2.accesses", "L2 accesses", "l2.hits", "L2 hits"),
            _ => (
                "l1d.accesses",
                "L1 D-cache accesses (hierarchy view)",
                "l1d.hits",
                "L1 D-cache hits (hierarchy view)",
            ),
        };
        self.add(acc_name, acc_help, c.accesses);
        self.add(hit_name, hit_help, c.hits);
    }

    /// Append a counter. Panics on duplicate names — registration is
    /// static, so a duplicate is a programming error, not input.
    pub fn add(&mut self, name: &'static str, help: &'static str, value: u64) {
        assert!(
            self.get(name).is_none(),
            "duplicate counter registered: {name}"
        );
        self.counters.push(Counter { name, help, value });
    }

    /// Look a counter's value up by name.
    pub fn get(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }

    /// The counters, in registration order.
    pub fn counters(&self) -> &[Counter] {
        &self.counters
    }

    /// Serialize as a flat `{name: value}` JSON object, in registration
    /// order.
    pub fn to_json(&self) -> Json {
        Json::Object(
            self.counters
                .iter()
                .map(|c| (c.name.to_string(), Json::from(c.value)))
                .collect(),
        )
    }

    /// Render as an aligned `name value # help` text table.
    pub fn render(&self) -> String {
        let name_w = self
            .counters
            .iter()
            .map(|c| c.name.len())
            .max()
            .unwrap_or(0);
        let val_w = self
            .counters
            .iter()
            .map(|c| c.value.to_string().len())
            .max()
            .unwrap_or(0);
        let mut out = String::new();
        for c in &self.counters {
            out.push_str(&format!(
                "{:<name_w$}  {:>val_w$}  # {}\n",
                c.name, c.value, c.help
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_sim_stats_field() {
        // One registry entry per SimStats field: catches a field added
        // without a registry name.
        let n_fields = 26; // keep in sync with crate::stats::SimStats
        let r = StatsRegistry::from_sim(&SimStats::default());
        assert_eq!(r.counters().len(), n_fields);
    }

    #[test]
    fn values_flow_through() {
        let s = SimStats {
            cycles: 123,
            committed: 456,
            ..Default::default()
        };
        let r = StatsRegistry::from_sim(&s);
        assert_eq!(r.get("cycles"), Some(123));
        assert_eq!(r.get("committed"), Some(456));
        assert_eq!(r.get("no_such"), None);
    }

    #[test]
    fn json_is_flat_and_ordered() {
        let s = SimStats {
            cycles: 9,
            ..Default::default()
        };
        let j = StatsRegistry::from_sim(&s).to_json();
        let text = j.to_string();
        assert!(text.starts_with(r#"{"cycles":9,"committed":0"#), "{text}");
        assert_eq!(j.get("cycles"), Some(&Json::Int(9)));
    }

    #[test]
    fn render_aligns_and_describes() {
        let r = StatsRegistry::from_sim(&SimStats::default());
        let text = r.render();
        assert!(text.lines().count() == r.counters().len());
        assert!(text.contains("# Cycles elapsed"));
    }

    #[test]
    #[should_panic(expected = "duplicate counter")]
    fn duplicate_names_rejected() {
        let mut r = StatsRegistry::new();
        r.add("x", "one", 1);
        r.add("x", "two", 2);
    }

    #[test]
    fn subsystem_prefixes() {
        let mut r = StatsRegistry::new();
        r.add_frontend(&PredStats::default());
        r.add_cache("l1d", &CacheStats::default());
        r.add_cache("l1i", &CacheStats::default());
        r.add_cache("l2", &CacheStats::default());
        assert_eq!(r.get("frontend.cond"), Some(0));
        assert_eq!(r.get("l2.hits"), Some(0));
        assert_eq!(r.counters().len(), 5 + 6);
    }
}
