//! Commit-time oracle lockstep.
//!
//! Every technique the paper's machine deploys is a *speculation* with a
//! verify/recover path — partial tag matches are confirmed the following
//! cycle (Fig. 4), early disambiguation forwards on a probably-unique
//! partial match (Fig. 2), early branch resolution fires before the full
//! compare completes (Fig. 6). The timing model is trace-driven, so a
//! bug in any of those paths would not crash: it would silently retire
//! the wrong architectural values while still printing plausible IPC.
//!
//! The [`Oracle`] closes that hole. When
//! [`MachineConfig::oracle`](crate::MachineConfig::oracle) is set, the
//! simulator asks its frontend for an *independent*
//! [`CommitChecker`] and runs it in lockstep with retirement: each
//! instruction the pipeline commits is re-verified field by field
//! (differential replay). Any divergence aborts the run with a
//! structured [`SimError::OracleDivergence`] naming the sequence
//! number, PC, field, and both values.
//!
//! The check is off by default and zero-cost when disabled: the
//! simulator holds an `Option<Oracle>` that stays `None`, so the
//! per-retire cost is one branch.

use crate::error::SimError;
use popk_emu::PisaChecker;
use popk_isa::{Insn, Program};
use popk_trace::{CommitChecker, Uop};

/// The lockstep reference checker plus its check counter.
pub(crate) struct Oracle<I> {
    checker: Box<dyn CommitChecker<I>>,
    checks: u64,
}

impl<I> Oracle<I> {
    /// Wrap a frontend-provided reference checker (positioned at the
    /// program entry point).
    pub(crate) fn from_checker(checker: Box<dyn CommitChecker<I>>) -> Oracle<I> {
        Oracle { checker, checks: 0 }
    }

    /// Verify one retirement claim (the committing entry's trace
    /// record) against the reference.
    pub(crate) fn check(&mut self, seq: u64, rec: &Uop<I>) -> Result<(), SimError> {
        self.checks += 1;
        self.checker
            .verify(rec)
            .map_err(|m| SimError::OracleDivergence {
                seq,
                pc: m.pc,
                field: m.field,
                expected: m.expected as u64,
                got: m.got as u64,
            })
    }

    /// Retirements verified so far.
    pub(crate) fn checks(&self) -> u64 {
        self.checks
    }
}

impl Oracle<Insn> {
    /// A fresh PISA reference machine at the program entry point.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn new(program: &Program) -> Oracle<Insn> {
        Oracle::from_checker(Box::new(PisaChecker::new(program)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popk_emu::{Machine, StepEvent};
    use popk_isa::asm::assemble;

    const KERNEL: &str = r#"
        .text
        main:
            li r8, 5
            addu r9, r8, r8
            li r2, 0
            syscall
    "#;

    #[test]
    fn clean_lockstep_verifies_every_step() {
        let p = assemble(KERNEL).unwrap();
        let mut reference = Machine::new(&p);
        let mut oracle = Oracle::new(&p);
        let mut seq = 0;
        while let Ok(StepEvent::Retired(rec)) = reference.step_record() {
            oracle.check(seq, &rec).expect("identical streams agree");
            seq += 1;
            if reference.exit_code().is_some() {
                break;
            }
        }
        assert_eq!(oracle.checks(), seq);
        assert!(seq >= 4);
    }

    #[test]
    fn corrupted_result_is_flagged_with_field_and_values() {
        let p = assemble(KERNEL).unwrap();
        let mut reference = Machine::new(&p);
        let mut oracle = Oracle::new(&p);
        let Ok(StepEvent::Retired(mut rec)) = reference.step_record() else {
            panic!("first step retires");
        };
        rec.results[0] ^= 0x10; // bit-flip the li destination
        let err = oracle
            .check(7, &rec)
            .expect_err("corruption must be caught");
        match err {
            SimError::OracleDivergence {
                seq,
                field,
                expected,
                got,
                ..
            } => {
                assert_eq!(seq, 7);
                assert_eq!(field, "dest0");
                assert_eq!(expected ^ 0x10, got);
            }
            other => panic!("wrong error: {other}"),
        }
    }
}
