//! Per-instruction pipeline timelines — a `sim-outorder`-style pipetrace.
//!
//! [`Simulator::run_timeline`](crate::Simulator::run_timeline) records,
//! for the first *N* committed instructions, every interesting cycle in
//! the instruction's life. [`render_table`] prints them as numbers;
//! [`render_chart`] draws the classic one-row-per-instruction ASCII
//! occupancy chart:
//!
//! ```text
//! seq pc        instruction        |012345678901234567890
//!   0 00400000  addiu r8, r0, 3    |F.....D.....0o....C
//!   1 00400004  addu r9, r8, r8    |F.....D......01...C
//! ```
//!
//! `F` fetch, `D` dispatch, digit *k* = issue of slice *k*, `o` result
//! slice complete, `m`/`M` memory access start/data back, `!` branch
//! resolution, `C` commit.
//!
//! The records are reconstructed from the simulator's
//! [`TraceEvent`] stream by [`TimelineBuilder`], a
//! [`TraceSink`] any traced run can use directly.

use crate::events::{TraceEvent, TraceSink};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One committed instruction's recorded cycles.
#[derive(Clone, Debug)]
pub struct InsnTiming {
    /// Dynamic sequence number.
    pub seq: u64,
    /// Program counter.
    pub pc: u32,
    /// Disassembly text.
    pub disasm: String,
    /// Fetch cycle.
    pub fetch: u64,
    /// Dispatch (window entry) cycle.
    pub dispatch: u64,
    /// Issue cycle per slice (atomic ops use slot 0).
    pub slice_issue: [Option<u64>; 4],
    /// Result-ready cycle per slice.
    pub slice_ready: [Option<u64>; 4],
    /// Cycle a load/store's cache access (or forward) started.
    pub mem_start: Option<u64>,
    /// Cycle the load data arrived.
    pub mem_done: Option<u64>,
    /// Branch/jump resolution cycle.
    pub resolved: Option<u64>,
    /// Completion cycle (all obligations met).
    pub completed: u64,
    /// Commit cycle.
    pub committed: u64,
}

impl InsnTiming {
    /// Basic well-formedness of the recorded cycles.
    pub fn is_consistent(&self) -> bool {
        self.fetch <= self.dispatch
            && self.dispatch <= self.completed
            && self.completed <= self.committed
            && self
                .slice_issue
                .iter()
                .flatten()
                .all(|&c| c >= self.dispatch && c <= self.completed)
    }
}

/// Render timings as a fixed-width numeric table.
pub fn render_table(timings: &[InsnTiming]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>4} {:>10}  {:<26} {:>6} {:>6} {:>14} {:>6} {:>6}",
        "seq", "pc", "instruction", "fetch", "disp", "issue(slices)", "done", "commit"
    );
    for t in timings {
        let issues: Vec<String> = t
            .slice_issue
            .iter()
            .flatten()
            .map(|c| c.to_string())
            .collect();
        let _ = writeln!(
            out,
            "{:>4} {:>10}  {:<26} {:>6} {:>6} {:>14} {:>6} {:>6}",
            t.seq,
            format!("{:08x}", t.pc),
            truncate(&t.disasm, 26),
            t.fetch,
            t.dispatch,
            issues.join(","),
            t.completed,
            t.committed
        );
    }
    out
}

/// Render the ASCII occupancy chart, starting at the first instruction's
/// fetch cycle, clipped to `width` columns.
pub fn render_chart(timings: &[InsnTiming], width: usize) -> String {
    let Some(first) = timings.first() else {
        return String::new();
    };
    let base = first.fetch;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>4} {:<10} {:<24} |cycle {base}+",
        "seq", "pc", "instruction"
    );
    for t in timings {
        let mut lane = vec![b'.'; width];
        let mut put = |cycle: u64, ch: u8| {
            if cycle >= base {
                let col = (cycle - base) as usize;
                if col < width && (lane[col] == b'.' || ch == b'C') {
                    lane[col] = ch;
                }
            }
        };
        put(t.fetch, b'F');
        put(t.dispatch, b'D');
        for (k, c) in t.slice_issue.iter().enumerate() {
            if let Some(c) = c {
                put(*c, b'0' + k as u8);
            }
        }
        for c in t.slice_ready.iter().flatten() {
            put(*c, b'o');
        }
        if let Some(c) = t.mem_start {
            put(c, b'm');
        }
        if let Some(c) = t.mem_done {
            put(c, b'M');
        }
        if let Some(c) = t.resolved {
            put(c, b'!');
        }
        put(t.committed, b'C');
        let _ = writeln!(
            out,
            "{:>4} {:<10} {:<24} |{}",
            t.seq,
            format!("{:08x}", t.pc),
            truncate(&t.disasm, 24),
            String::from_utf8(lane)
                .expect("lane bytes are ASCII")
                .trim_end_matches('.')
        );
    }
    out
}

/// A [`TraceSink`] that folds the pipeline event stream back into
/// per-instruction [`InsnTiming`] records for the first `cap` committed
/// instructions (wrong-path phantoms are discarded at their squash).
#[derive(Debug, Default)]
pub struct TimelineBuilder {
    cap: usize,
    /// In-flight (dispatched, not yet committed) records by seq.
    pending: BTreeMap<u64, InsnTiming>,
    /// Committed records, in commit order.
    done: Vec<InsnTiming>,
}

/// Sentinel for "completion not yet observed" (`InsnTiming::completed`
/// is not optional); replaced by the commit cycle if never set.
const UNSET: u64 = u64::MAX;

impl TimelineBuilder {
    /// A builder that keeps the first `cap` committed instructions.
    pub fn new(cap: usize) -> TimelineBuilder {
        TimelineBuilder {
            cap,
            pending: BTreeMap::new(),
            done: Vec::new(),
        }
    }

    /// The committed records collected so far, consuming the builder.
    pub fn finish(self) -> Vec<InsnTiming> {
        self.done
    }

    /// The committed records collected so far.
    pub fn records(&self) -> &[InsnTiming] {
        &self.done
    }
}

impl<I: popk_trace::UopInsn> TraceSink<I> for TimelineBuilder {
    fn event(&mut self, cycle: u64, ev: &TraceEvent<I>) {
        match *ev {
            TraceEvent::Dispatched {
                seq,
                pc,
                insn,
                fetch,
            } => {
                if self.done.len() < self.cap {
                    self.pending.insert(
                        seq,
                        InsnTiming {
                            seq,
                            pc,
                            disasm: insn.to_string(),
                            fetch,
                            dispatch: cycle,
                            slice_issue: [None; 4],
                            slice_ready: [None; 4],
                            mem_start: None,
                            mem_done: None,
                            resolved: None,
                            completed: UNSET,
                            committed: UNSET,
                        },
                    );
                }
            }
            TraceEvent::SliceIssued { seq, slice } => {
                if let Some(t) = self.pending.get_mut(&seq) {
                    t.slice_issue[slice as usize] = Some(cycle);
                }
            }
            TraceEvent::SliceReady { seq, slice, at } => {
                if let Some(t) = self.pending.get_mut(&seq) {
                    t.slice_ready[slice as usize] = Some(at);
                }
            }
            TraceEvent::BranchResolved { seq, at, .. } => {
                if let Some(t) = self.pending.get_mut(&seq) {
                    t.resolved = Some(at);
                }
            }
            TraceEvent::MemStarted { seq } => {
                if let Some(t) = self.pending.get_mut(&seq) {
                    t.mem_start = Some(cycle);
                }
            }
            TraceEvent::MemDone { seq, at } => {
                if let Some(t) = self.pending.get_mut(&seq) {
                    t.mem_done = Some(at);
                }
            }
            TraceEvent::Completed { seq, at } => {
                if let Some(t) = self.pending.get_mut(&seq) {
                    t.completed = at;
                }
            }
            TraceEvent::Committed { seq } => {
                if let Some(mut t) = self.pending.remove(&seq) {
                    t.committed = cycle;
                    if t.completed == UNSET {
                        t.completed = cycle;
                    }
                    if self.done.len() < self.cap {
                        self.done.push(t);
                    }
                }
            }
            TraceEvent::Squashed { seq } => {
                self.pending.remove(&seq);
            }
            // Pure-counter events carry no per-instruction timing.
            TraceEvent::Stall(_)
            | TraceEvent::NarrowWakeup { .. }
            | TraceEvent::PartialTagProbe { .. }
            | TraceEvent::StoreForward { .. }
            | TraceEvent::SpecForward { .. }
            | TraceEvent::MemDepSpeculated { .. }
            | TraceEvent::MemDepViolation { .. }
            | TraceEvent::EarlyDisambig { .. }
            | TraceEvent::SamStart { .. }
            | TraceEvent::Replay { .. } => {}
        }
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        format!("{}…", &s[..n.saturating_sub(1)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> InsnTiming {
        InsnTiming {
            seq: 0,
            pc: 0x0040_0000,
            disasm: "addu r3, r1, r2".into(),
            fetch: 0,
            dispatch: 6,
            slice_issue: [Some(12), Some(13), None, None],
            slice_ready: [Some(13), Some(14), None, None],
            mem_start: None,
            mem_done: None,
            resolved: None,
            completed: 14,
            committed: 14,
        }
    }

    #[test]
    fn consistency() {
        assert!(sample().is_consistent());
        let mut bad = sample();
        bad.committed = 3;
        assert!(!bad.is_consistent());
    }

    #[test]
    fn table_contains_fields() {
        let t = render_table(&[sample()]);
        assert!(t.contains("00400000"));
        assert!(t.contains("addu r3, r1, r2"));
        assert!(t.contains("12,13"));
    }

    #[test]
    fn chart_places_markers() {
        let c = render_chart(&[sample()], 40);
        let line = c.lines().nth(1).unwrap();
        let lane = line.split('|').nth(1).unwrap();
        assert_eq!(lane.as_bytes()[0], b'F');
        assert_eq!(lane.as_bytes()[6], b'D');
        assert_eq!(lane.as_bytes()[12], b'0');
        assert_eq!(lane.as_bytes()[13], b'1');
        assert_eq!(lane.as_bytes()[14], b'C');
    }

    #[test]
    fn chart_clips_to_width() {
        let mut t = sample();
        t.committed = 1000;
        t.completed = 1000;
        let c = render_chart(&[t], 20);
        let lane = c.lines().nth(1).unwrap().split('|').nth(1).unwrap();
        assert!(lane.len() <= 20);
    }
}
