//! Deterministic, seed-driven fault injection.
//!
//! A [`FaultPlan`] perturbs exactly the state the paper's speculative
//! techniques consult, so the verify/recover paths can be exercised on
//! demand (see `tests/fault_injection.rs` at the workspace root):
//!
//! * **operand slices** ([`FaultKinds::operand_slice`]) — bit-flips in
//!   the partial address/operand values the disambiguation and
//!   tag-match policies see. Timing-only: the architectural stream is
//!   untouched, so a correct machine recovers (possibly with extra
//!   replays) and the oracle stays silent.
//! * **disambiguation matches** ([`FaultKinds::disambig_match`]) —
//!   force a wrong partial-disambiguation outcome: a load cleared to
//!   access is held back, or a conservatively-held load is released
//!   past unresolved stores. Also timing-only in this trace-driven
//!   model.
//! * **partial tag bits** ([`FaultKinds::tag_bits`]) — degrade a
//!   correct partial-tag probe to a way mispredict, driving the Fig. 4
//!   "verify the following cycle" replay path.
//! * **commit records** ([`FaultKinds::commit_record`]) — corrupt the
//!   architectural claim an instruction retires with. This is the one
//!   class that *must not* be recoverable: the commit-time oracle
//!   (`core/src/oracle.rs`) is required to flag every such fault as a
//!   structured [`SimError::OracleDivergence`](crate::SimError).
//!
//! Injection sites fire deterministically from `(seed, site, seq,
//! cycle)` via a splitmix64 hash, so a failing run replays exactly.

use popk_cache::PartialOutcome;
use popk_trace::{Uop, UopInsn};

/// Which fault classes a [`FaultPlan`] may inject.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct FaultKinds {
    /// Flip bits in published operand/address slices as seen by the
    /// timing policies (recoverable).
    pub operand_slice: bool,
    /// Force wrong partial-disambiguation matches (recoverable).
    pub disambig_match: bool,
    /// Corrupt partial tag probes into way mispredicts (recoverable).
    pub tag_bits: bool,
    /// Corrupt the architectural record at retirement (must be caught
    /// by the oracle).
    pub commit_record: bool,
}

impl FaultKinds {
    /// Every recoverable (timing-only) class, commit corruption off.
    pub fn recoverable() -> FaultKinds {
        FaultKinds {
            operand_slice: true,
            disambig_match: true,
            tag_bits: true,
            commit_record: false,
        }
    }
}

/// Injection counts per fault class.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct FaultLog {
    /// Operand-slice bit flips injected.
    pub operand_slice: u64,
    /// Disambiguation decisions inverted.
    pub disambig_match: u64,
    /// Partial tag probes degraded.
    pub tag_bits: u64,
    /// Commit records corrupted.
    pub commit_record: u64,
}

impl FaultLog {
    /// Total faults injected.
    pub fn total(&self) -> u64 {
        self.operand_slice + self.disambig_match + self.tag_bits + self.commit_record
    }
}

// Site identifiers keep the per-class hash streams independent.
const SITE_OPERAND: u64 = 0x01;
const SITE_DISAMBIG: u64 = 0x02;
const SITE_TAG: u64 = 0x03;
const SITE_COMMIT: u64 = 0x04;

/// A deterministic fault-injection schedule, attached to a simulator
/// with [`Simulator::set_fault_plan`](crate::Simulator::set_fault_plan).
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    seed: u64,
    period: u64,
    kinds: FaultKinds,
    log: FaultLog,
}

impl FaultPlan {
    /// A plan firing each enabled site roughly once per `period`
    /// opportunities (clamped to at least 1), keyed by `seed`.
    pub fn new(seed: u64, period: u64, kinds: FaultKinds) -> FaultPlan {
        FaultPlan {
            seed,
            period: period.max(1),
            kinds,
            log: FaultLog::default(),
        }
    }

    /// Injection counts so far.
    pub fn log(&self) -> FaultLog {
        self.log
    }

    /// splitmix64 over the site coordinates: deterministic, and
    /// well-mixed enough that `% period` approximates a rate.
    fn hash(&self, site: u64, seq: u64, cycle: u64) -> u64 {
        let mut z = self
            .seed
            .wrapping_add(site.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .wrapping_add(seq.wrapping_mul(0xbf58_476d_1ce4_e5b9))
            .wrapping_add(cycle.wrapping_mul(0x94d0_49bb_1331_11eb));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Does this site fire? Returns the hash for derived choices (which
    /// bit to flip, which field to corrupt).
    fn fires(&self, site: u64, seq: u64, cycle: u64) -> Option<u64> {
        let h = self.hash(site, seq, cycle);
        h.is_multiple_of(self.period).then_some(h / self.period)
    }

    /// Flip one bit of an operand/address value the policies consult.
    pub(crate) fn corrupt_operand(&mut self, seq: u64, cycle: u64, value: u32) -> u32 {
        if !self.kinds.operand_slice {
            return value;
        }
        match self.fires(SITE_OPERAND, seq, cycle) {
            Some(h) => {
                self.log.operand_slice += 1;
                value ^ (1 << (h % 32))
            }
            None => value,
        }
    }

    /// Should this disambiguation decision be inverted?
    pub(crate) fn flip_disambig(&mut self, seq: u64, cycle: u64) -> bool {
        if !self.kinds.disambig_match {
            return false;
        }
        let fired = self.fires(SITE_DISAMBIG, seq, cycle).is_some();
        if fired {
            self.log.disambig_match += 1;
        }
        fired
    }

    /// Degrade a partial-tag probe outcome to a way mispredict
    /// (`SingleMiss`), forcing the verify-next-cycle replay path.
    pub(crate) fn corrupt_tag(
        &mut self,
        seq: u64,
        cycle: u64,
        outcome: PartialOutcome,
    ) -> PartialOutcome {
        if !self.kinds.tag_bits || self.fires(SITE_TAG, seq, cycle).is_none() {
            return outcome;
        }
        match outcome {
            PartialOutcome::SingleHit { .. } | PartialOutcome::MultiMatch { .. } => {
                self.log.tag_bits += 1;
                PartialOutcome::SingleMiss
            }
            other => other,
        }
    }

    /// Corrupt the architectural claim of a retiring instruction —
    /// restricted to fields the oracle cross-checks, so every injection
    /// here is detectable by construction.
    pub(crate) fn corrupt_commit<I: UopInsn>(&mut self, seq: u64, cycle: u64, rec: &mut Uop<I>) {
        if !self.kinds.commit_record {
            return;
        }
        let Some(h) = self.fires(SITE_COMMIT, seq, cycle) else {
            return;
        };
        let meta = rec.insn.meta();
        if !rec.insn.dst_regs().is_empty() {
            rec.results[0] ^= 1 << (h % 32);
        } else if meta.is_store {
            rec.ea ^= 1 << (h % 32);
        } else if meta.ctrl.is_some() {
            rec.taken = !rec.taken;
        } else {
            return; // nothing the oracle checks on this insn; skip
        }
        self.log.commit_record += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plans_are_deterministic() {
        let mut a = FaultPlan::new(42, 8, FaultKinds::recoverable());
        let mut b = FaultPlan::new(42, 8, FaultKinds::recoverable());
        for seq in 0..2000 {
            assert_eq!(
                a.corrupt_operand(seq, seq * 3, 0xdead_beef),
                b.corrupt_operand(seq, seq * 3, 0xdead_beef)
            );
            assert_eq!(a.flip_disambig(seq, seq * 3), b.flip_disambig(seq, seq * 3));
        }
        assert_eq!(a.log(), b.log());
        assert!(
            a.log().operand_slice > 0,
            "period 8 must fire over 2000 sites"
        );
        assert!(a.log().disambig_match > 0);
    }

    #[test]
    fn disabled_kinds_never_fire() {
        let mut p = FaultPlan::new(1, 1, FaultKinds::default());
        for seq in 0..100 {
            assert_eq!(p.corrupt_operand(seq, 0, 7), 7);
            assert!(!p.flip_disambig(seq, 0));
        }
        assert_eq!(p.log().total(), 0);
    }

    #[test]
    fn commit_corruption_touches_only_checked_fields() {
        use popk_emu::TraceRecord;
        use popk_isa::{Insn, Reg};
        let mut p = FaultPlan::new(
            3,
            1,
            FaultKinds {
                commit_record: true,
                ..FaultKinds::default()
            },
        );
        let mut rec = TraceRecord {
            pc: 0x0040_0000,
            insn: Insn::r3(popk_isa::Op::Addu, Reg::gpr(8), Reg::gpr(9), Reg::gpr(10)),
            src_vals: [1, 2],
            results: [3, 0],
            ea: 0,
            taken: false,
            next_pc: 0x0040_0004,
        };
        p.corrupt_commit(0, 0, &mut rec);
        assert_ne!(rec.results[0], 3, "period 1 always fires");
        assert_eq!(p.log().commit_record, 1);
    }
}
