//! The commit stage: in-order retirement from the window head
//! (Fig. 7's RUU retire port), store writeback to the cache, rename
//! cleanup — and the wrong-path squash that recovery after a resolved
//! misprediction performs under `model_wrong_path`.

use super::{emit, Simulator};
use crate::events::{TraceEvent, TraceSink};
use popk_trace::UopInsn;

impl<I: UopInsn, S: TraceSink<I>> Simulator<S, I> {
    /// Retire up to `width` completed instructions from the window head.
    pub(crate) fn commit(&mut self) {
        for _ in 0..self.cfg.width {
            if self.window.is_empty() {
                return;
            }
            if self.window.phantom(0) {
                // Wrong-path work never retires; it waits for the squash.
                return;
            }
            if !self.window.completed_at(0).done_by(self.cycle) {
                return;
            }
            let seq = self.window.seq(0);
            let is_load = self.window.is_load(0);
            let is_store = self.window.is_store(0);
            let is_mem = self.window.is_mem(0);
            let ea = self.window.rec(0).ea;
            let defs = self.window.rec(0).insn.dst_regs();
            // A completed producer has published every result slice, and
            // publishing drains the waiter list.
            debug_assert!(self.window.waiters_empty(0));
            // The architectural claim this retirement makes. A fault plan
            // may corrupt it (modeling in-flight state corruption); the
            // oracle then re-executes it on the reference machine and
            // aborts the run on any divergence. (The full record is only
            // copied out on these slow paths.)
            let claim = (self.oracle.is_some() || self.fault.is_some() || self.ckpt.is_some())
                .then(|| *self.window.rec(0));
            self.window.pop_front();
            if let Some(mut claim) = claim {
                if let Some(f) = self.fault.as_mut() {
                    f.corrupt_commit(seq, self.cycle, &mut claim);
                }
                if let Some(o) = self.oracle.as_mut() {
                    if let Err(e) = o.check(seq, &claim) {
                        self.error = Some(e);
                        return;
                    }
                }
                // The checkpoint watch re-executes the claim on its own
                // reference machine (so stored snapshots are verified)
                // and cross-checks a resumed checkpoint at its boundary.
                if let Some(w) = self.ckpt.as_mut() {
                    if let Err(e) = w.advance(&claim) {
                        self.error = Some(crate::error::SimError::Checkpoint(e));
                        return;
                    }
                }
            }

            emit!(self, TraceEvent::Committed { seq });
            self.stats.committed += 1;
            self.last_commit_cycle = self.cycle;
            if is_mem {
                self.lsq_occupancy -= 1;
            }
            #[cfg(debug_assertions)]
            debug_assert!(!is_load || !self.sched.load_is_pending(seq));
            if is_load {
                self.stats.loads += 1;
            } else if is_store {
                self.sched.commit_store(seq);
                self.stats.stores += 1;
                // The store writes the cache at retirement.
                self.stats.l1d_accesses += 1;
                if self.memory.access_data(ea).l1_hit {
                    self.stats.l1d_hits += 1;
                }
            }
            // Clear producer entries that still point at this instruction.
            for r in defs.iter() {
                self.rename.clear_if(r, seq);
            }
        }
    }

    /// Drop every wrong-path phantom younger than the resolved branch and
    /// rewind the sequence counter (phantoms define no registers, so no
    /// producer cleanup is needed).
    pub(crate) fn squash_wrong_path(&mut self, branch_seq: u64) {
        loop {
            let n = self.window.len();
            if n == 0 {
                break;
            }
            let tail = n - 1;
            let seq = self.window.seq(tail);
            if !(self.window.phantom(tail) && seq > branch_seq) {
                break;
            }
            self.window.pop_back();
            emit!(self, TraceEvent::Squashed { seq });
        }
        self.feed.drop_phantoms();
        let after_tail = match self.window.len() {
            0 => self.next_seq,
            n => self.window.seq(n - 1) + 1,
        };
        self.next_seq = after_tail.max(branch_seq + 1).min(self.next_seq);
    }
}

#[cfg(test)]
mod tests {
    use crate::config::MachineConfig;
    use crate::events::TraceEvent;
    use crate::pipeline::testutil::run_cfg;
    use crate::sim::Simulator;
    use crate::VecTrace;
    use popk_isa::asm::assemble;

    /// A branchy kernel whose mispredictions force squashes under
    /// wrong-path modeling.
    const STORM: &str = r#"
        .text
        main:
            li r8, 300
        loop:
            andi r9, r8, 1
            beq r9, r0, even
            nop
        even:
            addiu r8, r8, -1
            bne r8, r0, loop
            li r2, 0
            syscall
    "#;

    #[test]
    fn squash_drops_phantoms_and_preserves_commits() {
        // Recovery at the new module boundary: every squashed entry is a
        // phantom, every real instruction still commits exactly once, and
        // no squashed seq ever commits.
        let p = assemble(STORM).unwrap();
        let mut cfg = MachineConfig::slice2_full();
        cfg.model_wrong_path = true;
        let mut sim = Simulator::with_sink(&cfg, VecTrace::new());
        let stats = sim.run(&p, 1_000_000);
        let committed = stats.committed;
        let trace = sim.into_sink();
        // Squash rewinds the sequence counter, so real instructions reuse
        // squashed seqs: a seq squashed *after* its commit would be a bug,
        // the other order is the designed reuse.
        let mut committed_seqs = std::collections::HashSet::new();
        let mut squash_events = 0u64;
        let mut commit_events = 0u64;
        for (_, ev) in &trace.events {
            match ev {
                TraceEvent::Squashed { seq } => {
                    squash_events += 1;
                    assert!(
                        !committed_seqs.contains(seq),
                        "seq {seq} committed then squashed"
                    );
                }
                TraceEvent::Committed { seq } => {
                    commit_events += 1;
                    assert!(committed_seqs.insert(*seq), "seq {seq} committed twice");
                }
                _ => {}
            }
        }
        assert!(squash_events > 0, "the storm must squash phantoms");
        assert_eq!(commit_events, committed);

        // And the squash machinery is invisible to architectural progress.
        let base = MachineConfig::slice2_full();
        assert_eq!(committed, run_cfg(STORM, &base).committed);
    }
}
