//! The execute stage: slice-level issue rules (Fig. 8), the atomic
//! functional units of Table 2, branch resolution timing (Fig. 6), and
//! the narrow-operand publication extension.
//!
//! Each operand is decomposed per `SliceWidth`, and slice `k` of an
//! instruction issues when its source slices are available and its
//! class's inter-slice dependences are met — a carry edge for
//! arithmetic, none for logic, full-width for shifts. Without
//! `partial_bypass` the machine degrades to naive EX pipelining: one
//! issue event, result atomic after `slice_count` cycles. Which slice
//! resolves a conditional branch is delegated to the configured
//! [`crate::policies::BranchResolvePolicy`].

use super::entry::{Dep, ExecClass, MAX_SLICES};
use super::issue::{Block, IssueMark};
use super::{emit, Simulator};
use crate::config::PipelineKind;
use crate::events::{TraceEvent, TraceSink};
use popk_isa::{Op, SliceClass};

/// Reservations of the non-pipelined functional units (Table 2: one
/// multiply/divide unit, one FP long-op unit).
#[derive(Default)]
pub(crate) struct FuncUnits {
    /// Cycle the integer multiply/divide unit frees up.
    pub(crate) muldiv_busy_until: u64,
    /// Cycle the FP multiply/divide/sqrt unit frees up.
    pub(crate) fp_long_busy_until: u64,
}

/// A value is "narrow" when it is the sign- or zero-extension of its
/// low slice (so all upper slices are all-zeros or all-ones).
fn value_is_narrow(v: u32, slice_bits: u32) -> bool {
    let shifted = (v as i32) >> (slice_bits - 1);
    shifted == 0 || shifted == -1 || v >> slice_bits == 0
}

impl<S: TraceSink> Simulator<S> {
    /// Issue one of the atomic (unsliced) functional-unit operations:
    /// multiply/divide, FP add, FP long ops.
    pub(crate) fn examine_atomic_unit(&mut self, idx: usize, fp_used: &mut usize) {
        let entry = &self.window[idx];
        let seq = entry.seq;
        let class = entry.class;
        if entry.issued[0].is_some() {
            self.finish_if_done(idx);
            return;
        }
        if !self.all_sources_ready(idx) {
            self.block_on_sources(idx);
            return;
        }
        let op = entry.rec.insn.op();
        let (latency, ok, retry) = match class {
            ExecClass::MulDiv => {
                let lat = match op {
                    Op::Div | Op::Divu => self.cfg.div_latency,
                    Op::Mult | Op::Multu => self.cfg.mult_latency,
                    _ => 1, // mfhi/mflo/mthi/mtlo
                };
                let free = self.units.muldiv_busy_until <= self.cycle
                    || matches!(op, Op::Mfhi | Op::Mflo | Op::Mthi | Op::Mtlo);
                (lat, free, self.units.muldiv_busy_until)
            }
            ExecClass::FpAdd => (
                self.cfg.fp_latency,
                *fp_used < self.cfg.fp_alus as usize,
                self.cycle + 1,
            ),
            ExecClass::FpLong => {
                let lat = match op {
                    Op::MulS => self.cfg.fp_mul_latency,
                    Op::SqrtS => self.cfg.fp_sqrt_latency,
                    _ => self.cfg.fp_div_latency,
                };
                (
                    lat,
                    self.units.fp_long_busy_until <= self.cycle,
                    self.units.fp_long_busy_until,
                )
            }
            _ => unreachable!(),
        };
        if !ok {
            // Unit busy (or FP slots full): the reservation can
            // extend in the meantime, in which case the retry
            // re-blocks and reschedules again.
            self.wake_at(seq, retry.max(self.cycle + 1));
            return;
        }
        match class {
            ExecClass::MulDiv => {
                if matches!(op, Op::Mult | Op::Multu | Op::Div | Op::Divu) {
                    self.units.muldiv_busy_until = self.cycle + latency;
                }
            }
            ExecClass::FpAdd => *fp_used += 1,
            ExecClass::FpLong => self.units.fp_long_busy_until = self.cycle + latency,
            _ => {}
        }
        let done = self.cycle + latency;
        self.publish_all_slices(idx, done, IssueMark::Slot0);
        self.finish_if_done(idx);
    }

    /// The naive-pipelining issue path (no partial bypassing): a single
    /// issue event, result atomic after `nslices` cycles.
    pub(crate) fn examine_unsliced(&mut self, idx: usize, int_used: &mut [usize; MAX_SLICES]) {
        let seq = self.window[idx].seq;
        let nslices = self.nslices;
        if self.window[idx].issued[0].is_none() {
            if int_used[0] >= self.cfg.int_alus.min(self.cfg.width) as usize {
                self.wake_at(seq, self.cycle + 1);
            } else if !self.all_sources_ready(idx) {
                self.block_on_sources(idx);
            } else {
                let done = self.cycle
                    + match self.cfg.kind {
                        PipelineKind::Ideal => 1,
                        _ => nslices as u64,
                    };
                int_used[0] += 1;
                self.publish_all_slices(idx, done, IssueMark::AllSlices);
            }
        }
    }

    /// The bit-sliced issue path: try to issue (at most) one slice this
    /// cycle, exactly as the exhaustive scan would. If nothing issues,
    /// park the entry on its blockers.
    pub(crate) fn examine_sliced(&mut self, idx: usize, int_used: &mut [usize; MAX_SLICES]) {
        let nslices = self.nslices;
        let seq = self.window[idx].seq;
        let mut retry: Option<u64> = None;
        let mut on_publish: [Option<u64>; 2] = [None; 2];
        {
            // Bit-sliced issue: wake slices independently, but
            // at most one slice of an instruction per cycle —
            // the Fig. 10 EX1/EX2 staging (each RUU entry has
            // one select port; slices occupy successive narrow
            // stages).
            #[allow(clippy::needless_range_loop)] // int_used is
            // indexed by slice position, not iterated
            for k in 0..nslices {
                if self.window[idx].issued[k].is_some() {
                    continue;
                }
                if int_used[k] >= self.cfg.int_alus.min(self.cfg.width) as usize {
                    // ALU slot contention: the slots refill next cycle.
                    retry = Some(retry.map_or(self.cycle + 1, |t| t.min(self.cycle + 1)));
                    continue;
                }
                if !self.slice_can_issue(idx, k) {
                    match self.slice_block(idx, k) {
                        Some(Block::Until(t)) => {
                            retry = Some(retry.map_or(t, |r| r.min(t)));
                        }
                        Some(Block::OnPublish(p)) if !on_publish.contains(&Some(p)) => {
                            let slot = usize::from(on_publish[0].is_some());
                            on_publish[slot] = Some(p);
                        }
                        Some(Block::OnPublish(_)) => {}
                        // Blocked on this entry's own earlier slice: its
                        // issue reschedules the entry for the next cycle.
                        None => {}
                    }
                    continue;
                }
                int_used[k] += 1;
                // Snapshot of the result schedule, both for event diffing
                // (the late/narrow special cases below rewrite `ready`
                // slots) and to decide whether anything was published.
                let before_ready = self.window[idx].ready;
                let late = self.window[idx].late_result;
                let narrow_publish = k == 0
                    && !late
                    && self.cfg.opts.narrow_operands
                    && !self.window[idx].is_mem()
                    && !self.window[idx].rec.insn.defs().is_empty()
                    && value_is_narrow(self.window[idx].rec.results[0], self.slice_bits);
                let e = &mut self.window[idx];
                e.issued[k] = Some(self.cycle);
                e.ready[k] = Some(self.cycle + 1);
                if narrow_publish && e.slice_class != SliceClass::Atomic {
                    // Significance compression (§6 extension +
                    // ref [6]): a narrow result's upper slices
                    // are its sign bits — publish them with
                    // slice 0 and skip their execution.
                    self.stats.narrow_wakeups += 1;
                    emit!(self, TraceEvent::NarrowWakeup { seq: e.seq });
                    for j in 1..nslices {
                        e.issued[j] = Some(self.cycle);
                        e.ready[j] = Some(self.cycle + 1);
                    }
                }
                if e.slice_class == SliceClass::Atomic {
                    // Atomic ops (jr/jalr) issue once and
                    // publish every slice together.
                    for j in 0..nslices {
                        e.issued[j] = Some(self.cycle);
                        e.ready[j] = Some(self.cycle + 1);
                    }
                } else if late {
                    // slt-family: every result slice is a
                    // function of the full comparison, so
                    // nothing publishes until the top slice
                    // has evaluated.
                    if e.issued.iter().take(nslices).all(|i| i.is_some()) {
                        for j in 0..nslices {
                            e.ready[j] = Some(self.cycle + 1);
                        }
                    } else {
                        e.ready[k] = None;
                    }
                }
                if S::ENABLED {
                    // Emit exactly what changed: every slice
                    // issued this cycle (the narrow/atomic
                    // paths issue several at once) and every
                    // ready-slot the special cases rewrote.
                    let e = &self.window[idx];
                    for j in 0..nslices {
                        if e.issued[j] == Some(self.cycle) {
                            emit!(
                                self,
                                TraceEvent::SliceIssued {
                                    seq: e.seq,
                                    slice: j as u8
                                }
                            );
                        }
                        if e.ready[j] != before_ready[j] {
                            if let Some(at) = e.ready[j] {
                                emit!(
                                    self,
                                    TraceEvent::SliceReady {
                                        seq: e.seq,
                                        slice: j as u8,
                                        at,
                                    }
                                );
                            }
                        }
                    }
                }
                // One slice per entry per cycle. Publish: every result
                // slot this path schedules is set to `cycle + 1`, so any
                // newly scheduled slot wakes the waiters then. (The late
                // non-final case reverts its slot to `None` — no change,
                // nothing published.)
                let e = &self.window[idx];
                if (0..nslices).any(|j| e.ready[j].is_some() && e.ready[j] != before_ready[j]) {
                    self.wake_waiters(idx, self.cycle + 1);
                }
                return;
            }
        }
        // Nothing issued: park on the recorded blockers.
        for p in on_publish.into_iter().flatten() {
            self.wait_on(seq, p);
        }
        if let Some(t) = retry {
            self.wake_at(seq, t.max(self.cycle + 1));
        }
    }

    /// Why `slice_can_issue(idx, k)` is false — `None` when the blocker
    /// is this entry's own earlier slice, whose eventual issue already
    /// reschedules the entry.
    pub(crate) fn slice_block(&self, idx: usize, k: usize) -> Option<Block> {
        let entry = &self.window[idx];
        let in_order_gate = match entry.slice_class {
            SliceClass::CarryChained | SliceClass::CrossSlice => k > 0,
            SliceClass::Independent => !self.cfg.opts.ooo_slices && k > 0,
            SliceClass::Atomic => false,
        };
        if in_order_gate {
            match entry.issued[k - 1] {
                Some(c) if c < self.cycle => {}
                Some(_) => return Some(Block::Until(self.cycle + 1)),
                None => return None, // cascades off the earlier slice
            }
        }
        match entry.slice_class {
            SliceClass::CarryChained | SliceClass::Independent => self.source_block(idx, k),
            SliceClass::CrossSlice => (0..self.nslices).find_map(|j| self.source_block(idx, j)),
            SliceClass::Atomic => {
                if k != 0 {
                    return None; // only slot 0 ever issues
                }
                (0..self.nslices).find_map(|j| self.source_block(idx, j))
            }
        }
    }

    /// Which dependence slot carries a store's *data* operand (rt).
    pub(crate) fn store_data_dep(&self, idx: usize) -> Dep {
        let entry = &self.window[idx];
        // The store's data register is its second source (rt); base is
        // rs. `uses()` yields [rs, rt] unless they dedup.
        let uses = entry.rec.insn.uses();
        let data_reg = entry.rec.insn.rt();
        let mut which = 0;
        for (i, r) in uses.iter().enumerate() {
            if r == data_reg {
                which = i;
            }
        }
        entry.deps[which]
    }

    pub(crate) fn effective_bypass(&self) -> bool {
        match self.cfg.kind {
            PipelineKind::Ideal => false, // single slice; irrelevant
            PipelineKind::SimplePipelined => false,
            PipelineKind::BitSliced => self.cfg.opts.partial_bypass,
        }
    }

    /// Are all slices of every source available by this cycle?
    pub(crate) fn all_sources_ready(&self, idx: usize) -> bool {
        (0..self.nslices).all(|k| self.sources_ready_at_slice(idx, k))
    }

    /// Is slice `k` of every source of `window[idx]` available? (Narrow
    /// producers publish their upper slices early at their own issue, so
    /// no consumer-side special case is needed.)
    pub(crate) fn sources_ready_at_slice(&self, idx: usize, k: usize) -> bool {
        let entry = &self.window[idx];
        for d in 0..entry.ndeps {
            if let Dep::InFlight(pseq) = entry.deps[d] {
                if let Some(p) = self.find(pseq) {
                    match p.result_ready(k) {
                        Some(r) if r <= self.cycle => {}
                        _ => return false,
                    }
                }
                // Producer committed → ready.
            }
        }
        true
    }

    /// Readiness of slice `k` under the Fig. 8 inter-slice rules.
    pub(crate) fn slice_can_issue(&self, idx: usize, k: usize) -> bool {
        let entry = &self.window[idx];
        debug_assert!(entry.issued[k].is_none());
        match entry.slice_class {
            SliceClass::CarryChained => {
                // Needs the carry from slice k-1 (issued a cycle earlier)
                // and slice k of each source.
                if k > 0 {
                    match entry.issued[k - 1] {
                        Some(c) if c < self.cycle => {}
                        _ => return false,
                    }
                }
                self.sources_ready_at_slice(idx, k)
            }
            SliceClass::Independent => {
                if !self.cfg.opts.ooo_slices && k > 0 {
                    match entry.issued[k - 1] {
                        Some(c) if c < self.cycle => {}
                        _ => return false,
                    }
                }
                self.sources_ready_at_slice(idx, k)
            }
            SliceClass::CrossSlice => {
                // Shifts: all source slices, slices in order.
                if k > 0 {
                    match entry.issued[k - 1] {
                        Some(c) if c < self.cycle => {}
                        _ => return false,
                    }
                }
                (0..self.nslices).all(|j| self.sources_ready_at_slice(idx, j))
            }
            SliceClass::Atomic => {
                // jr/jalr and friends: single issue when fully ready.
                k == 0 && self.all_sources_ready(idx)
            }
        }
    }

    /// Record branch resolution (redirect release) once enough slices have
    /// finished. The resolving slice comes from the configured
    /// [`crate::policies::BranchResolvePolicy`].
    pub(crate) fn resolve_branch_if_possible(&mut self, idx: usize) {
        let entry = &self.window[idx];
        if entry.resolved_at.is_some() {
            return;
        }
        let op = entry.rec.insn.op();
        if !op.is_control() {
            return;
        }
        let nslices = self.nslices;
        if matches!(op, Op::Jr | Op::Jalr) {
            // Atomic: resolved one cycle after issue.
            if let Some(c) = entry.issued[0] {
                let (seq, mispredicted) = (entry.seq, entry.mispredicted);
                self.window[idx].resolved_at = Some(c + 1);
                emit!(
                    self,
                    TraceEvent::BranchResolved {
                        seq,
                        at: c + 1,
                        early: false,
                        mispredicted
                    }
                );
            }
            return;
        }
        let Some(cond) = op.branch_cond() else { return };

        let (seq, mut brec, mispredicted) = (entry.seq, entry.rec, entry.mispredicted);
        // Fault site: flip bits in the operand slices the resolution
        // policy compares (timing-only; the window's architectural
        // record is untouched).
        let cycle = self.cycle;
        if let Some(f) = self.fault.as_mut() {
            brec.src_vals[0] = f.corrupt_operand(seq, cycle, brec.src_vals[0]);
        }
        let resolve_slice =
            self.policies
                .branch
                .resolve_slice(cond, &brec, mispredicted, nslices, self.slice_bits);

        // With independent equality slices, detection needs only the
        // divergent slice; otherwise every slice up to it.
        let needed_done: Option<u64> = if cond.early_resolvable() {
            self.window[idx].ready[resolve_slice]
        } else {
            let e = &self.window[idx];
            (0..=resolve_slice)
                .map(|k| e.ready[k])
                .try_fold(0u64, |acc, r| r.map(|v| acc.max(v)))
        };
        if let Some(done) = needed_done {
            let e = &mut self.window[idx];
            e.resolved_at = Some(done);
            let early = e.mispredicted && resolve_slice < nslices - 1;
            if early {
                self.stats.early_branch_resolves += 1;
                // Savings estimate: remaining slices would each have taken
                // at least one more cycle.
                self.stats.early_branch_cycles_saved += (nslices - 1 - resolve_slice) as u64;
            }
            let (seq, mispredicted) = (e.seq, e.mispredicted);
            emit!(
                self,
                TraceEvent::BranchResolved {
                    seq,
                    at: done,
                    early,
                    mispredicted
                }
            );
        }
    }

    /// Track when a store's data operand becomes fully available.
    pub(crate) fn update_store_data(&mut self, idx: usize) {
        let entry = &self.window[idx];
        if !entry.is_store() {
            return;
        }
        if entry.mem().store_data_ready.is_some() {
            return;
        }
        let ready = match self.store_data_dep(idx) {
            // Register-file values are read by RF2 at the latest.
            Dep::Ready => Some(entry.earliest_ex),
            Dep::InFlight(p) => match self.find(p) {
                Some(prod) => prod.result_ready_full(self.nslices),
                None => Some(self.cycle),
            },
        };
        if let Some(r) = ready {
            if r <= self.cycle {
                self.window[idx].mem_mut().store_data_ready = Some(r.max(1));
            }
        }
    }

    /// Mark the entry complete when every obligation is met.
    pub(crate) fn finish_if_done(&mut self, idx: usize) {
        let nslices = self.nslices;
        let entry = &self.window[idx];
        if entry.completed_at.is_some() {
            return;
        }
        let mut done = 0u64;
        for k in 0..nslices {
            match entry.ready[k] {
                Some(r) => done = done.max(r),
                None => return,
            }
        }
        if entry.is_mem() {
            let m = entry.mem();
            if entry.rec.insn.op().is_load() {
                match m.data_ready {
                    Some(r) => done = done.max(r),
                    None => return,
                }
            } else {
                match m.store_data_ready {
                    Some(r) => done = done.max(r),
                    None => return,
                }
            }
        }
        if entry.rec.insn.op().is_control() {
            match entry.resolved_at {
                Some(r) => done = done.max(r),
                None => return,
            }
        }
        let seq = entry.seq;
        self.window[idx].completed_at = Some(done);
        emit!(self, TraceEvent::Completed { seq, at: done });
    }
}

#[cfg(test)]
mod tests {
    use super::value_is_narrow;
    use crate::config::{MachineConfig, Optimizations};
    use crate::pipeline::testutil::{dependent_chain, run_cfg};
    use crate::sim::Simulator;
    use popk_isa::asm::assemble;

    #[test]
    fn narrowness_is_sign_or_zero_extension() {
        assert!(value_is_narrow(0x0000_1234, 16));
        assert!(value_is_narrow(0xffff_8000, 16)); // sign extension
        assert!(!value_is_narrow(0x0001_0000, 16));
        assert!(value_is_narrow(0x7f, 8));
        assert!(!value_is_narrow(0x180, 8));
    }

    #[test]
    fn partial_bypass_recovers_chain_throughput() {
        let sliced = run_cfg(
            &dependent_chain(),
            &MachineConfig::slice2(Optimizations::level(1)),
        );
        let ideal = run_cfg(&dependent_chain(), &MachineConfig::ideal());
        let ratio = sliced.ipc() / ideal.ipc();
        assert!(
            ratio > 0.9,
            "partial bypassing should restore back-to-back chains, ratio {ratio}"
        );
    }

    #[test]
    fn early_branch_resolution_helps_slice4() {
        let src = r#"
            .text
            main:
                li r8, 2000
            loop:
                andi r9, r8, 1
                beq r9, r0, even    # alternates: mispredicts, detectable at bit 0
                nop
            even:
                addiu r8, r8, -1
                bne r8, r0, loop
                li r2, 0
                syscall
        "#;
        let without = run_cfg(src, &MachineConfig::slice4(Optimizations::level(2)));
        let with = run_cfg(src, &MachineConfig::slice4(Optimizations::level(3)));
        assert!(with.early_branch_resolves > 0);
        assert!(
            with.cycles <= without.cycles,
            "early branch resolution must not slow the machine"
        );
    }

    #[test]
    fn narrow_operands_wake_upper_slices_early() {
        // Small values everywhere: upper slices are implied by slice 0,
        // so branches resolve sooner.
        let src = r#"
            .text
            main:
                li r8, 3000
            loop:
                addiu r9, r8, 0
                andi r10, r9, 3
                bne r10, r0, skip
                addiu r9, r9, 1
            skip:
                addiu r8, r8, -1
                bgtz r8, loop
                li r2, 0
                syscall
        "#;
        let base = MachineConfig::slice4(Optimizations::level(5));
        let mut narrow = base;
        narrow.opts.narrow_operands = true;
        let without = run_cfg(src, &base);
        let with = run_cfg(src, &narrow);
        assert!(
            with.narrow_wakeups > 1000,
            "wakeups: {}",
            with.narrow_wakeups
        );
        assert!(
            with.cycles <= without.cycles,
            "narrow relaxation must not hurt: {} vs {}",
            with.cycles,
            without.cycles
        );
        assert_eq!(with.committed, without.committed);
    }

    #[test]
    fn carry_chain_staggers_slices_in_order() {
        // On the slice-by-4 machine, an add's four slices must issue on
        // strictly increasing cycles (the carry edge of Fig. 8b), and the
        // results must stream out one cycle behind each issue.
        let src = r#"
            .text
            main:
                li r8, 123
                li r9, 77
                addu r10, r8, r9
                addu r11, r10, r9
                li r2, 0
                syscall
        "#;
        let p = assemble(src).unwrap();
        let mut sim = Simulator::new(&MachineConfig::slice4_full());
        let (_, timings) = sim.run_timeline(&p, 1_000, 16);
        let addu = timings
            .iter()
            .find(|t| t.disasm.starts_with("addu r10"))
            .expect("addu recorded");
        let issues: Vec<u64> = addu.slice_issue.iter().flatten().copied().collect();
        assert_eq!(issues.len(), 4);
        for w in issues.windows(2) {
            assert!(w[0] < w[1], "carry chain must stagger: {issues:?}");
        }
        for (k, issue) in issues.iter().enumerate() {
            assert_eq!(addu.slice_ready[k], Some(issue + 1));
        }
        // The dependent addu chains one cycle behind, slice for slice.
        let dep = timings
            .iter()
            .find(|t| t.disasm.starts_with("addu r11"))
            .expect("dependent addu recorded");
        let dep_issues: Vec<u64> = dep.slice_issue.iter().flatten().copied().collect();
        for (k, di) in dep_issues.iter().enumerate() {
            assert!(
                *di > issues[k],
                "slice {k} of the consumer ran before its source: {dep_issues:?} vs {issues:?}"
            );
        }
    }
}
