//! The execute stage: slice-level issue rules (Fig. 8), the atomic
//! functional units of Table 2, branch resolution timing (Fig. 6), and
//! the narrow-operand publication extension.
//!
//! Each operand is decomposed per `SliceWidth`, and slice `k` of an
//! instruction issues when its source slices are available and its
//! class's inter-slice dependences are met — a carry edge for
//! arithmetic, none for logic, full-width for shifts. Without
//! `partial_bypass` the machine degrades to naive EX pipelining: one
//! issue event, result atomic after `slice_count` cycles. Which slice
//! resolves a conditional branch is delegated to the configured
//! [`crate::policies::BranchResolvePolicy`].

use super::entry::{CycleSlot, Dep, ExecClass, MAX_SLICES};
use super::issue::{Block, IssueMark, Progress};
use super::{emit, Simulator};
use crate::config::PipelineKind;
use crate::events::{TraceEvent, TraceSink};
use popk_isa::SliceClass;
use popk_trace::{CtrlKind, LatClass, UopInsn};

/// Reservations of the non-pipelined functional units (Table 2: one
/// multiply/divide unit, one FP long-op unit).
#[derive(Default)]
pub(crate) struct FuncUnits {
    /// Cycle the integer multiply/divide unit frees up.
    pub(crate) muldiv_busy_until: u64,
    /// Cycle the FP multiply/divide/sqrt unit frees up.
    pub(crate) fp_long_busy_until: u64,
}

/// A value is "narrow" when it is the sign- or zero-extension of its
/// low slice (so all upper slices are all-zeros or all-ones).
fn value_is_narrow(v: u32, slice_bits: u32) -> bool {
    let shifted = (v as i32) >> (slice_bits - 1);
    shifted == 0 || shifted == -1 || v >> slice_bits == 0
}

impl<I: UopInsn, S: TraceSink<I>> Simulator<S, I> {
    /// Issue one of the atomic (unsliced) functional-unit operations:
    /// multiply/divide, FP add, FP long ops.
    pub(crate) fn examine_atomic_unit(&mut self, idx: usize, fp_used: &mut usize) {
        let seq = self.window.seq(idx);
        let class = self.window.class(idx);
        if self.window.issued(idx, 0).is_set() {
            self.finish_if_done(idx);
            return;
        }
        if !self.all_sources_ready(idx) {
            self.block_on_sources(idx);
            return;
        }
        let lat_class = self.window.lat(idx);
        let (latency, ok, retry) = match class {
            ExecClass::MulDiv => {
                let lat = match lat_class {
                    LatClass::Div => self.cfg.div_latency,
                    LatClass::Mult => self.cfg.mult_latency,
                    _ => 1, // hi/lo moves
                };
                let free =
                    self.units.muldiv_busy_until <= self.cycle || lat_class == LatClass::HiLoMove;
                (lat, free, self.units.muldiv_busy_until)
            }
            ExecClass::FpAdd => (
                self.cfg.fp_latency,
                *fp_used < self.cfg.fp_alus as usize,
                self.cycle + 1,
            ),
            ExecClass::FpLong => {
                let lat = match lat_class {
                    LatClass::FpMul => self.cfg.fp_mul_latency,
                    LatClass::FpSqrt => self.cfg.fp_sqrt_latency,
                    _ => self.cfg.fp_div_latency,
                };
                (
                    lat,
                    self.units.fp_long_busy_until <= self.cycle,
                    self.units.fp_long_busy_until,
                )
            }
            _ => unreachable!(),
        };
        if !ok {
            // Unit busy (or FP slots full): the reservation can
            // extend in the meantime, in which case the retry
            // re-blocks and reschedules again.
            self.wake_at(seq, retry.max(self.cycle + 1));
            return;
        }
        match class {
            ExecClass::MulDiv => {
                if matches!(lat_class, LatClass::Mult | LatClass::Div) {
                    self.units.muldiv_busy_until = self.cycle + latency;
                }
            }
            ExecClass::FpAdd => *fp_used += 1,
            ExecClass::FpLong => self.units.fp_long_busy_until = self.cycle + latency,
            _ => {}
        }
        let done = self.cycle + latency;
        self.publish_all_slices(idx, done, IssueMark::Slot0);
        self.finish_if_done(idx);
    }

    /// The naive-pipelining issue path (no partial bypassing): a single
    /// issue event, result atomic after `nslices` cycles.
    pub(crate) fn examine_unsliced(
        &mut self,
        idx: usize,
        int_used: &mut [usize; MAX_SLICES],
    ) -> Progress {
        let seq = self.window.seq(idx);
        let nslices = self.nslices;
        if self.window.issued(idx, 0).is_unset() {
            if int_used[0] >= self.cfg.int_alus.min(self.cfg.width) as usize {
                self.wake_at(seq, self.cycle + 1);
            } else if !self.all_sources_ready(idx) {
                self.block_on_sources(idx);
            } else {
                let done = self.cycle
                    + match self.cfg.kind {
                        PipelineKind::Ideal => 1,
                        _ => nslices as u64,
                    };
                int_used[0] += 1;
                self.publish_all_slices(idx, done, IssueMark::AllSlices);
                return Progress::Issued { all: true };
            }
            Progress::NoChange { all: false }
        } else {
            Progress::NoChange { all: true }
        }
    }

    /// The bit-sliced issue path: try to issue (at most) one slice this
    /// cycle, exactly as the exhaustive scan would. If nothing issues,
    /// park the entry on its blockers.
    pub(crate) fn examine_sliced(
        &mut self,
        idx: usize,
        int_used: &mut [usize; MAX_SLICES],
    ) -> Progress {
        let nslices = self.nslices;
        let seq = self.window.seq(idx);
        let alu_cap = self.cfg.int_alus.min(self.cfg.width) as usize;
        let mut retry: Option<u64> = None;
        let mut on_publish: [Option<u64>; 2] = [None; 2];
        let mut all_issued = true;
        {
            // Bit-sliced issue: wake slices independently, but
            // at most one slice of an instruction per cycle —
            // the Fig. 10 EX1/EX2 staging (each RUU entry has
            // one select port; slices occupy successive narrow
            // stages).
            #[allow(clippy::needless_range_loop)] // int_used is
            // indexed by slice position, not iterated
            for k in 0..nslices {
                if self.window.issued(idx, k).is_set() {
                    continue;
                }
                all_issued = false;
                if int_used[k] >= alu_cap {
                    // ALU slot contention: the slots refill next cycle.
                    retry = Some(retry.map_or(self.cycle + 1, |t| t.min(self.cycle + 1)));
                    continue;
                }
                if let Err(block) = self.slice_gate(idx, k) {
                    match block {
                        Some(Block::Until(t)) => {
                            retry = Some(retry.map_or(t, |r| r.min(t)));
                        }
                        Some(Block::OnPublish(p)) if !on_publish.contains(&Some(p)) => {
                            let slot = usize::from(on_publish[0].is_some());
                            on_publish[slot] = Some(p);
                        }
                        Some(Block::OnPublish(_)) => {}
                        // Blocked on this entry's own earlier slice: its
                        // issue reschedules the entry for the next cycle.
                        None => {}
                    }
                    continue;
                }
                int_used[k] += 1;
                // Snapshot of the result schedule for event diffing (the
                // late/narrow special cases below rewrite `ready` slots);
                // only a recording sink needs it.
                let before_ready = S::ENABLED.then(|| self.window.ready_row(idx));
                let late = self.window.late_result(idx);
                let slice_class = self.window.slice_class(idx);
                let narrow_publish = k == 0
                    && !late
                    && self.cfg.opts.narrow_operands
                    && !self.window.is_mem(idx)
                    && self.window.has_def(idx)
                    && value_is_narrow(self.window.rec(idx).results[0], self.slice_bits);
                self.window.set_issued(idx, k, self.cycle);
                self.window.set_ready(idx, k, CycleSlot::at(self.cycle + 1));
                if narrow_publish && slice_class != SliceClass::Atomic {
                    // Significance compression (§6 extension +
                    // ref [6]): a narrow result's upper slices
                    // are its sign bits — publish them with
                    // slice 0 and skip their execution.
                    self.stats.narrow_wakeups += 1;
                    emit!(self, TraceEvent::NarrowWakeup { seq });
                    for j in 1..nslices {
                        self.window.set_issued(idx, j, self.cycle);
                        self.window.set_ready(idx, j, CycleSlot::at(self.cycle + 1));
                    }
                }
                // Whether this issue published any result slice: every
                // slot the paths below touch is scheduled at `cycle + 1`,
                // except the late non-final case, which reverts its slot
                // to unset (nothing published until the top slice).
                let mut published = true;
                if slice_class == SliceClass::Atomic {
                    // Atomic ops (jr/jalr) issue once and
                    // publish every slice together.
                    for j in 0..nslices {
                        self.window.set_issued(idx, j, self.cycle);
                        self.window.set_ready(idx, j, CycleSlot::at(self.cycle + 1));
                    }
                } else if late {
                    // slt-family: every result slice is a
                    // function of the full comparison, so
                    // nothing publishes until the top slice
                    // has evaluated.
                    if (0..nslices).all(|j| self.window.issued(idx, j).is_set()) {
                        for j in 0..nslices {
                            self.window.set_ready(idx, j, CycleSlot::at(self.cycle + 1));
                        }
                    } else {
                        self.window.set_ready(idx, k, CycleSlot::UNSET);
                        published = false;
                    }
                }
                if let Some(before_ready) = before_ready {
                    // Emit exactly what changed: every slice
                    // issued this cycle (the narrow/atomic
                    // paths issue several at once) and every
                    // ready-slot the special cases rewrote.
                    for j in 0..nslices {
                        if self.window.issued(idx, j).get() == Some(self.cycle) {
                            emit!(
                                self,
                                TraceEvent::SliceIssued {
                                    seq,
                                    slice: j as u8
                                }
                            );
                        }
                        let r = self.window.ready(idx, j);
                        if r != before_ready[j] {
                            if let Some(at) = r.get() {
                                emit!(
                                    self,
                                    TraceEvent::SliceReady {
                                        seq,
                                        slice: j as u8,
                                        at,
                                    }
                                );
                            }
                        }
                    }
                }
                // One slice per entry per cycle.
                if published {
                    self.wake_waiters(idx, self.cycle + 1);
                }
                return Progress::Issued {
                    all: (0..nslices).all(|j| self.window.issued(idx, j).is_set()),
                };
            }
        }
        // Nothing issued: park on the recorded blockers.
        for p in on_publish.into_iter().flatten() {
            self.wait_on(seq, p);
        }
        if let Some(t) = retry {
            self.wake_at(seq, t.max(self.cycle + 1));
        }
        Progress::NoChange { all: all_issued }
    }

    /// One-pass issue gate for slice `k`: `Ok(())` when it can issue this
    /// cycle, `Err(why)` otherwise — `Err(None)` when the blocker is this
    /// entry's own earlier slice, whose eventual issue already
    /// reschedules the entry. Equivalent to `slice_can_issue` followed by
    /// `slice_block`, but walks the dependence columns once instead of
    /// twice.
    pub(crate) fn slice_gate(&self, idx: usize, k: usize) -> Result<(), Option<Block>> {
        debug_assert!(self.window.issued(idx, k).is_unset());
        let slice_class = self.window.slice_class(idx);
        let in_order_gate = match slice_class {
            SliceClass::CarryChained | SliceClass::CrossSlice => k > 0,
            SliceClass::Independent => !self.cfg.opts.ooo_slices && k > 0,
            SliceClass::Atomic => false,
        };
        if in_order_gate {
            let prev = self.window.issued(idx, k - 1);
            if prev.before(self.cycle) {
                // The carry/order edge is satisfied.
            } else if prev.is_set() {
                return Err(Some(Block::Until(self.cycle + 1)));
            } else {
                return Err(None); // cascades off the earlier slice
            }
        }
        let block = match slice_class {
            SliceClass::CarryChained | SliceClass::Independent => self.source_block(idx, k),
            SliceClass::CrossSlice => (0..self.nslices).find_map(|j| self.source_block(idx, j)),
            SliceClass::Atomic => {
                if k != 0 {
                    return Err(None); // only slot 0 ever issues
                }
                (0..self.nslices).find_map(|j| self.source_block(idx, j))
            }
        };
        match block {
            None => Ok(()),
            Some(b) => Err(Some(b)),
        }
    }

    /// Which dependence slot carries a store's *data* operand (rt).
    /// The slot is resolved once at dispatch (see
    /// [`super::window::Window::store_data_slot`]).
    pub(crate) fn store_data_dep(&self, idx: usize) -> Dep {
        self.window.dep(idx, self.window.store_data_slot(idx))
    }

    pub(crate) fn effective_bypass(&self) -> bool {
        match self.cfg.kind {
            PipelineKind::Ideal => false, // single slice; irrelevant
            PipelineKind::SimplePipelined => false,
            PipelineKind::BitSliced => self.cfg.opts.partial_bypass,
        }
    }

    /// Are all slices of every source available by this cycle?
    pub(crate) fn all_sources_ready(&self, idx: usize) -> bool {
        (0..self.nslices).all(|k| self.sources_ready_at_slice(idx, k))
    }

    /// Is slice `k` of every source of `window[idx]` available? (Narrow
    /// producers publish their upper slices early at their own issue, so
    /// no consumer-side special case is needed.)
    pub(crate) fn sources_ready_at_slice(&self, idx: usize, k: usize) -> bool {
        for d in 0..self.window.ndeps(idx) {
            if let Dep::InFlight(pseq) = self.window.dep(idx, d) {
                if let Some(pi) = self.window.index_of(pseq) {
                    if !self.window.result_ready(pi, k).done_by(self.cycle) {
                        return false;
                    }
                }
                // Producer committed → ready.
            }
        }
        true
    }

    /// Record branch resolution (redirect release) once enough slices have
    /// finished. The resolving slice comes from the configured
    /// [`crate::policies::BranchResolvePolicy`].
    pub(crate) fn resolve_branch_if_possible(&mut self, idx: usize) {
        if self.window.resolved_at(idx).is_set() {
            return;
        }
        let Some(ctrl) = self.window.ctrl(idx) else {
            return;
        };
        let nslices = self.nslices;
        let seq = self.window.seq(idx);
        let mispredicted = self.window.mispredicted(idx);
        if matches!(ctrl, CtrlKind::IndirectJump { .. }) {
            // Atomic: resolved one cycle after issue.
            if let Some(c) = self.window.issued(idx, 0).get() {
                self.window.set_resolved_at(idx, CycleSlot::at(c + 1));
                emit!(
                    self,
                    TraceEvent::BranchResolved {
                        seq,
                        at: c + 1,
                        early: false,
                        mispredicted
                    }
                );
            }
            return;
        }
        let CtrlKind::CondBranch(cond) = ctrl else {
            return;
        };

        let cycle = self.cycle;
        let (cmp, taken) = match self.fault.as_mut() {
            Some(f) => {
                // Fault site: flip bits in the operand slices the
                // resolution policy compares (timing-only; the window's
                // architectural record is untouched).
                let mut brec = *self.window.rec(idx);
                brec.src_vals[0] = f.corrupt_operand(seq, cycle, brec.src_vals[0]);
                (I::branch_cmp(&brec), brec.taken)
            }
            None => {
                let rec = self.window.rec(idx);
                (I::branch_cmp(rec), rec.taken)
            }
        };
        let resolve_slice = self.policies.branch.resolve_slice(
            cond,
            cmp,
            taken,
            mispredicted,
            nslices,
            self.slice_bits,
        );

        // With independent equality slices, detection needs only the
        // divergent slice; otherwise every slice up to it.
        let needed_done: Option<u64> = if cond.early_resolvable() {
            self.window.ready(idx, resolve_slice).get()
        } else {
            (0..=resolve_slice)
                .map(|k| self.window.ready(idx, k).get())
                .try_fold(0u64, |acc, r| r.map(|v| acc.max(v)))
        };
        if let Some(done) = needed_done {
            self.window.set_resolved_at(idx, CycleSlot::at(done));
            let early = mispredicted && resolve_slice < nslices - 1;
            if early {
                self.stats.early_branch_resolves += 1;
                // Savings estimate: remaining slices would each have taken
                // at least one more cycle.
                self.stats.early_branch_cycles_saved += (nslices - 1 - resolve_slice) as u64;
            }
            emit!(
                self,
                TraceEvent::BranchResolved {
                    seq,
                    at: done,
                    early,
                    mispredicted
                }
            );
        }
    }

    /// Track when a store's data operand becomes fully available.
    pub(crate) fn update_store_data(&mut self, idx: usize) {
        if !self.window.is_store(idx) {
            return;
        }
        if self.window.store_data_ready(idx).is_set() {
            return;
        }
        let ready = match self.store_data_dep(idx) {
            // Register-file values are read by RF2 at the latest.
            Dep::Ready => Some(self.window.earliest_ex(idx)),
            Dep::InFlight(p) => match self.index_of(p) {
                Some(pi) => self.window.result_ready_full(pi, self.nslices).get(),
                None => Some(self.cycle),
            },
        };
        if let Some(r) = ready {
            if r <= self.cycle {
                self.window.set_store_data_ready(idx, r.max(1));
            }
        }
    }

    /// Mark the entry complete when every obligation is met.
    pub(crate) fn finish_if_done(&mut self, idx: usize) {
        let nslices = self.nslices;
        if self.window.completed_at(idx).is_set() {
            return;
        }
        let mut done = 0u64;
        for k in 0..nslices {
            let r = self.window.ready(idx, k);
            if r.is_unset() {
                return;
            }
            done = done.max(r.value());
        }
        if self.window.is_mem(idx) {
            let r = if self.window.is_load(idx) {
                self.window.mem_data_ready(idx)
            } else {
                self.window.store_data_ready(idx)
            };
            if r.is_unset() {
                return;
            }
            done = done.max(r.value());
        }
        if self.window.is_control(idx) {
            let r = self.window.resolved_at(idx);
            if r.is_unset() {
                return;
            }
            done = done.max(r.value());
        }
        let seq = self.window.seq(idx);
        self.window.set_completed_at(idx, CycleSlot::at(done));
        emit!(self, TraceEvent::Completed { seq, at: done });
        // Debug datapath check: queue this op's operands as a batch
        // lane; the cycle's lanes evaluate together in
        // `check_slice_batch`. Skipped under fault injection, whose
        // corrupted operands legitimately diverge from the trace.
        #[cfg(debug_assertions)]
        if self.fault.is_none() {
            if let Some((op, a, b)) = I::alu_lane(self.window.rec(idx)) {
                self.dbg_batch.push(op, a, b);
                self.dbg_batch_expect.push(self.window.rec(idx).results[0]);
            }
        }
    }

    /// Flush the cycle's completed sliced ALU ops through the batched
    /// kernels ([`popk_slice::SliceBatch`]) and check every lane against
    /// the traced result. Debug builds only: the release machine is
    /// timing-only and computes no operand values.
    #[cfg(debug_assertions)]
    pub(crate) fn check_slice_batch(&mut self) {
        if self.dbg_batch.is_empty() {
            return;
        }
        let mut out = std::mem::take(&mut self.dbg_batch_out);
        self.dbg_batch.eval_into(&mut out);
        for (i, (got, want)) in out.iter().zip(&self.dbg_batch_expect).enumerate() {
            assert_eq!(
                got, want,
                "batched slice kernel diverged from the trace at lane {i}, cycle {}",
                self.cycle
            );
        }
        self.dbg_batch_out = out;
        self.dbg_batch.clear();
        self.dbg_batch_expect.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::value_is_narrow;
    use crate::config::{MachineConfig, Optimizations};
    use crate::pipeline::testutil::{dependent_chain, run_cfg};
    use crate::sim::Simulator;
    use popk_isa::asm::assemble;

    #[test]
    fn narrowness_is_sign_or_zero_extension() {
        assert!(value_is_narrow(0x0000_1234, 16));
        assert!(value_is_narrow(0xffff_8000, 16)); // sign extension
        assert!(!value_is_narrow(0x0001_0000, 16));
        assert!(value_is_narrow(0x7f, 8));
        assert!(!value_is_narrow(0x180, 8));
    }

    #[test]
    fn partial_bypass_recovers_chain_throughput() {
        let sliced = run_cfg(
            &dependent_chain(),
            &MachineConfig::slice2(Optimizations::level(1)),
        );
        let ideal = run_cfg(&dependent_chain(), &MachineConfig::ideal());
        let ratio = sliced.ipc() / ideal.ipc();
        assert!(
            ratio > 0.9,
            "partial bypassing should restore back-to-back chains, ratio {ratio}"
        );
    }

    #[test]
    fn early_branch_resolution_helps_slice4() {
        let src = r#"
            .text
            main:
                li r8, 2000
            loop:
                andi r9, r8, 1
                beq r9, r0, even    # alternates: mispredicts, detectable at bit 0
                nop
            even:
                addiu r8, r8, -1
                bne r8, r0, loop
                li r2, 0
                syscall
        "#;
        let without = run_cfg(src, &MachineConfig::slice4(Optimizations::level(2)));
        let with = run_cfg(src, &MachineConfig::slice4(Optimizations::level(3)));
        assert!(with.early_branch_resolves > 0);
        assert!(
            with.cycles <= without.cycles,
            "early branch resolution must not slow the machine"
        );
    }

    #[test]
    fn narrow_operands_wake_upper_slices_early() {
        // Small values everywhere: upper slices are implied by slice 0,
        // so branches resolve sooner.
        let src = r#"
            .text
            main:
                li r8, 3000
            loop:
                addiu r9, r8, 0
                andi r10, r9, 3
                bne r10, r0, skip
                addiu r9, r9, 1
            skip:
                addiu r8, r8, -1
                bgtz r8, loop
                li r2, 0
                syscall
        "#;
        let base = MachineConfig::slice4(Optimizations::level(5));
        let mut narrow = base;
        narrow.opts.narrow_operands = true;
        let without = run_cfg(src, &base);
        let with = run_cfg(src, &narrow);
        assert!(
            with.narrow_wakeups > 1000,
            "wakeups: {}",
            with.narrow_wakeups
        );
        assert!(
            with.cycles <= without.cycles,
            "narrow relaxation must not hurt: {} vs {}",
            with.cycles,
            without.cycles
        );
        assert_eq!(with.committed, without.committed);
    }

    #[test]
    fn carry_chain_staggers_slices_in_order() {
        // On the slice-by-4 machine, an add's four slices must issue on
        // strictly increasing cycles (the carry edge of Fig. 8b), and the
        // results must stream out one cycle behind each issue.
        let src = r#"
            .text
            main:
                li r8, 123
                li r9, 77
                addu r10, r8, r9
                addu r11, r10, r9
                li r2, 0
                syscall
        "#;
        let p = assemble(src).unwrap();
        let mut sim = Simulator::new(&MachineConfig::slice4_full());
        let (_, timings) = sim.run_timeline(&p, 1_000, 16);
        let addu = timings
            .iter()
            .find(|t| t.disasm.starts_with("addu r10"))
            .expect("addu recorded");
        let issues: Vec<u64> = addu.slice_issue.iter().flatten().copied().collect();
        assert_eq!(issues.len(), 4);
        for w in issues.windows(2) {
            assert!(w[0] < w[1], "carry chain must stagger: {issues:?}");
        }
        for (k, issue) in issues.iter().enumerate() {
            assert_eq!(addu.slice_ready[k], Some(issue + 1));
        }
        // The dependent addu chains one cycle behind, slice for slice.
        let dep = timings
            .iter()
            .find(|t| t.disasm.starts_with("addu r11"))
            .expect("dependent addu recorded");
        let dep_issues: Vec<u64> = dep.slice_issue.iter().flatten().copied().collect();
        for (k, di) in dep_issues.iter().enumerate() {
            assert!(
                *di > issues[k],
                "slice {k} of the consumer ran before its source: {dep_issues:?} vs {issues:?}"
            );
        }
    }
}
