//! The issue stage: the event-driven wakeup/select loop over window
//! entries (Fig. 7's RUU select), and the wakeup plumbing every other
//! stage uses to schedule re-examinations.
//!
//! Instead of rescanning the whole window each cycle, only entries with
//! a due calendar wakeup (see [`super::sched`]) are examined. An
//! examination runs exactly the per-entry logic of an exhaustive scan
//! and is side-effect-free unless the entry actually progresses, so
//! behaviour is bit-identical provided the schedule is *sound*: every
//! entry that would progress this cycle under a full rescan must be
//! among the candidates (each blocked examination records a wake no
//! later than its blocker can clear). Candidates are examined in
//! sequence-number — window (age) — order, so ALU-slot contention also
//! resolves identically.

use super::entry::{CycleSlot, Dep, ExecClass, MAX_SLICES};
use super::{emit, Simulator};
use crate::events::{TraceEvent, TraceSink};
use popk_trace::UopInsn;

/// Why a wakeup-driven examination could not make progress, and when
/// (or on what) to try again.
pub(crate) enum Block {
    /// Re-examine at this cycle (a known ready time, or next cycle for
    /// per-cycle resources).
    Until(u64),
    /// Park on the producer with this seq until it publishes a result
    /// slice.
    OnPublish(u64),
}

/// How [`Simulator::publish_all_slices`] marks the issue slots: not at
/// all (front-end-resolved jumps — no issue event), slot 0 only
/// (serialized ops and the atomic functional units), or every slice at
/// once (atomic-operand pipelines), matching each caller's original
/// event order.
#[derive(Clone, Copy, PartialEq)]
pub(crate) enum IssueMark {
    None,
    Slot0,
    AllSlices,
}

/// What a slice-issue examination changed, so the follow-on bookkeeping
/// (branch resolution, completion, rescheduling) runs only when it can
/// matter. `all` is whether every issue slot of the entry is now marked.
#[derive(Clone, Copy)]
pub(crate) enum Progress {
    /// A slice (or the whole operation) issued this examination.
    Issued { all: bool },
    /// Nothing issued (the entry was blocked, or already fully issued).
    NoChange { all: bool },
}

impl<I: UopInsn, S: TraceSink<I>> Simulator<S, I> {
    /// Per-cycle issue of slices (or whole atomic operations).
    pub(crate) fn issue(&mut self) {
        let mut int_used = [0usize; MAX_SLICES];
        let mut fp_used = 0usize;
        let cands = self.sched.due_candidates(self.cycle);
        for &seq in &cands {
            if let Some(idx) = self.index_of(seq) {
                self.examine(idx, &mut int_used, &mut fp_used);
            }
        }
        self.sched.recycle(cands);
        // Everything that finished this cycle ran through the batched
        // slice kernels together (debug builds only).
        #[cfg(debug_assertions)]
        self.check_slice_batch();
    }

    /// Examine one window entry for issue progress — the body of the
    /// old per-entry rescan. On failure to progress, schedules a sound
    /// re-examination point (a future wake or a producer's waiter
    /// list).
    fn examine(&mut self, idx: usize, int_used: &mut [usize; MAX_SLICES], fp_used: &mut usize) {
        if self.window.completed_at(idx).is_set() {
            return;
        }
        let seq = self.window.seq(idx);
        let earliest_ex = self.window.earliest_ex(idx);
        let class = self.window.class(idx);
        if self.cycle < earliest_ex {
            self.wake_at(seq, earliest_ex);
            return;
        }
        match class {
            ExecClass::Front => {}
            ExecClass::Sys => {
                if idx == 0 && self.window.issued(idx, 0).is_unset() {
                    let done = self.cycle + 1;
                    self.publish_all_slices(idx, done, IssueMark::Slot0);
                    self.window.set_completed_at(idx, CycleSlot::at(done));
                    emit!(self, TraceEvent::Completed { seq, at: done });
                } else if self.window.issued(idx, 0).is_unset() {
                    // Not at the window head yet: poll until it is.
                    self.wake_at(seq, self.cycle + 1);
                }
            }
            ExecClass::MulDiv | ExecClass::FpAdd | ExecClass::FpLong => {
                self.examine_atomic_unit(idx, fp_used);
            }
            ExecClass::IntSliced => {
                let progress = if !self.effective_bypass() {
                    self.examine_unsliced(idx, int_used)
                } else {
                    self.examine_sliced(idx, int_used)
                };
                // Follow-on bookkeeping, gated on what the examination
                // can actually have changed (each skipped call is a
                // proven no-op — an unissued slice's ready slot is
                // unset, and only this entry's own issues move its
                // `ready` row between examinations).
                let is_store = self.window.is_store(idx);
                let control = self.window.is_control(idx);
                match progress {
                    Progress::Issued { all } => {
                        if control {
                            self.resolve_branch_if_possible(idx);
                        }
                        if is_store {
                            self.update_store_data(idx);
                        }
                        if all {
                            self.finish_if_done(idx);
                            self.reschedule_pending(idx);
                        } else {
                            // A slice issued: the next one (or an
                            // arbitration loser) is eligible next cycle.
                            self.wake_at(seq, self.cycle + 1);
                            if is_store {
                                self.reschedule_store_data(idx);
                            }
                        }
                    }
                    Progress::NoChange { all } => {
                        // Branch resolution reads only this entry's
                        // `ready` row, which is untouched since the
                        // previous examination — except under fault
                        // injection, where the corrupted operand is
                        // cycle-dependent.
                        if control && self.fault.is_some() {
                            self.resolve_branch_if_possible(idx);
                        }
                        if is_store {
                            self.update_store_data(idx);
                        }
                        if all {
                            self.finish_if_done(idx);
                        }
                        if is_store && self.window.completed_at(idx).is_unset() {
                            self.reschedule_store_data(idx);
                        }
                    }
                }
            }
        }
    }

    /// After an examination of a sliced entry, schedule whatever it is
    /// still waiting on that the issue paths themselves don't cover: the
    /// next slice after one issued this cycle, and a store's pending
    /// data operand.
    fn reschedule_pending(&mut self, idx: usize) {
        if self.window.completed_at(idx).is_set() {
            return;
        }
        let seq = self.window.seq(idx);
        // A slice issued this cycle: the next slice (or a slice that lost
        // ALU arbitration to it) becomes eligible next cycle.
        let issued_now =
            (0..self.nslices).any(|k| self.window.issued(idx, k).get() == Some(self.cycle));
        if issued_now {
            self.wake_at(seq, self.cycle + 1);
        }
        self.reschedule_store_data(idx);
    }

    /// Schedule a store's re-examination for its pending data operand.
    fn reschedule_store_data(&mut self, idx: usize) {
        if !self.window.is_store(idx) || self.window.store_data_ready(idx).is_set() {
            return;
        }
        let seq = self.window.seq(idx);
        match self.store_data_dep(idx) {
            Dep::InFlight(p) => match self.index_of(p) {
                Some(pi) => match self.window.result_ready_full(pi, self.nslices).get() {
                    Some(r) => {
                        let at = r.max(self.cycle + 1);
                        self.wake_at(seq, at);
                    }
                    None => self.wait_on(seq, p),
                },
                // Producer committed: the next examination resolves.
                None => self.wake_at(seq, self.cycle + 1),
            },
            // Register-file data reads by `earliest_ex`, which has
            // passed — `update_store_data` handles it this very
            // examination, so this arm is unreachable; poll if not.
            Dep::Ready => self.wake_at(seq, self.cycle + 1),
        }
    }

    /// Schedule an examination of `seq` at cycle `at` (clamped to the
    /// next issue opportunity — a wake for the past means "as soon as
    /// possible").
    #[inline]
    pub(crate) fn wake_at(&mut self, seq: u64, at: u64) {
        self.sched.schedule(self.cycle, seq, at);
    }

    /// Park `seq` on the waiter list of the in-window producer `pseq`:
    /// it re-enters the calendar when the producer publishes a result
    /// slice.
    pub(crate) fn wait_on(&mut self, seq: u64, pseq: u64) {
        match self.index_of(pseq) {
            Some(pi) => self.window.park_waiter(pi, seq),
            // Producer already committed — its value is ready; retry.
            None => self.wake_at(seq, self.cycle + 1),
        }
    }

    /// Wake everything parked on entry `idx`'s result at cycle `at`.
    pub(crate) fn wake_waiters(&mut self, idx: usize, at: u64) {
        if self.window.waiters_empty(idx) {
            return;
        }
        // Detach the list so the schedule pushes don't fight the window
        // borrow; hand the (cleared) allocation back for reuse.
        let ws = self.window.detach_waiters(idx);
        for &w in &ws {
            self.wake_at(w, at);
        }
        self.window.attach_waiters(idx, ws);
    }

    /// Shared tail of every all-slices-at-once scheduling path
    /// (serialized ops, the atomic functional units, atomic-operand
    /// pipelines, front-end-resolved jumps): mark the issue slots per
    /// `mark`, schedule every result slice at `done`, emit the matching
    /// events in each path's original order, and wake the waiters.
    pub(crate) fn publish_all_slices(&mut self, idx: usize, done: u64, mark: IssueMark) {
        let nslices = self.nslices;
        let seq = self.window.seq(idx);
        match mark {
            IssueMark::None => {}
            IssueMark::Slot0 => self.window.set_issued(idx, 0, self.cycle),
            IssueMark::AllSlices => {
                for k in 0..nslices {
                    self.window.set_issued(idx, k, self.cycle);
                }
            }
        }
        for k in 0..nslices {
            self.window.set_ready(idx, k, CycleSlot::at(done));
        }
        if S::ENABLED {
            if mark == IssueMark::Slot0 {
                emit!(self, TraceEvent::SliceIssued { seq, slice: 0 });
            }
            for k in 0..nslices {
                if mark == IssueMark::AllSlices {
                    emit!(
                        self,
                        TraceEvent::SliceIssued {
                            seq,
                            slice: k as u8
                        }
                    );
                }
                emit!(
                    self,
                    TraceEvent::SliceReady {
                        seq,
                        slice: k as u8,
                        at: done
                    }
                );
            }
        }
        self.wake_waiters(idx, done);
    }

    /// Record why not every source slice of `window[idx]` is ready: the
    /// first busy source slice yields either a known future cycle or a
    /// producer to wait on.
    pub(crate) fn block_on_sources(&mut self, idx: usize) {
        let seq = self.window.seq(idx);
        for k in 0..self.nslices {
            if let Some(b) = self.source_block(idx, k) {
                self.apply_block(seq, b);
                return;
            }
        }
        // Sources ready after all (caller raced a same-cycle state
        // change): just retry.
        self.wake_at(seq, self.cycle + 1);
    }

    /// Why slice `k` of some source of `window[idx]` is unavailable this
    /// cycle, if it is.
    pub(crate) fn source_block(&self, idx: usize, k: usize) -> Option<Block> {
        for d in 0..self.window.ndeps(idx) {
            if let Dep::InFlight(pseq) = self.window.dep(idx, d) {
                if let Some(pi) = self.window.index_of(pseq) {
                    let r = self.window.result_ready(pi, k);
                    if r.is_unset() {
                        return Some(Block::OnPublish(pseq));
                    }
                    if !r.done_by(self.cycle) {
                        return Some(Block::Until(r.value()));
                    }
                }
                // Producer committed → ready.
            }
        }
        None
    }

    pub(crate) fn apply_block(&mut self, seq: u64, b: Block) {
        match b {
            Block::Until(t) => self.wake_at(seq, t.max(self.cycle + 1)),
            Block::OnPublish(p) => self.wait_on(seq, p),
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::config::MachineConfig;
    use crate::pipeline::testutil::{dependent_chain, independent_stream, run_cfg};

    #[test]
    fn independent_work_saturates_width() {
        let stats = run_cfg(&independent_stream(), &MachineConfig::ideal());
        assert!(stats.ipc() > 2.0, "independent stream IPC {}", stats.ipc());
    }

    #[test]
    fn simple_pipelining_halves_chain_throughput() {
        let s2 = run_cfg(&dependent_chain(), &MachineConfig::simple2());
        let ideal = run_cfg(&dependent_chain(), &MachineConfig::ideal());
        let ratio = s2.ipc() / ideal.ipc();
        assert!(
            (0.4..0.65).contains(&ratio),
            "simple-2 should run the chain at about half speed, ratio {ratio}"
        );
        let s4 = run_cfg(&dependent_chain(), &MachineConfig::simple4());
        let ratio4 = s4.ipc() / ideal.ipc();
        assert!(
            (0.2..0.4).contains(&ratio4),
            "simple-4 should run the chain at about quarter speed, ratio {ratio4}"
        );
    }
}
