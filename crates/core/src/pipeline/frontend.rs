//! The fetch stage (Fig. 10 Fetch1–Fetch2): pull up to `width`
//! instructions per cycle from the frontend trace, probing the L1
//! I-cache per line and consulting the front-end predictor for every
//! control instruction.
//!
//! Fetch past a mispredicted control transfer stalls until the branch
//! *resolves*; under `model_wrong_path` the stall cycles instead fetch
//! wrong-path phantoms that occupy real resources until the squash
//! (see [`super::commit`]). The fetched-but-not-dispatched queue and
//! every fetch stall variable live in [`FrontendFeed`], private to this
//! module — later stages read the queue only through its methods.
//!
//! Control transfers are classified by the micro-op's
//! [`popk_trace::CtrlKind`], so fetch never inspects an opcode: any
//! frontend that fills in `meta().ctrl` gets prediction, redirect
//! stalls, and wrong-path modeling for free.

use super::{emit, Simulator};
use crate::events::{StallReason, TraceEvent, TraceSink};
use popk_bpred::BranchKind;
use popk_trace::{CtrlKind, EmuError, Uop, UopInsn};
use std::collections::VecDeque;

/// A fetched instruction awaiting dispatch: fetch cycle, trace record,
/// whether the front end mispredicted it, and whether it is a
/// wrong-path phantom.
pub(crate) type Fetched<I> = (u64, Uop<I>, bool, bool);

/// The fetch stage's state: the fetched-instruction queue and the
/// stall bookkeeping. All fields are private to the frontend module;
/// dispatch consumes the queue through [`FrontendFeed::front`] /
/// [`FrontendFeed::pop`].
pub(crate) struct FrontendFeed<I> {
    frontq: VecDeque<Fetched<I>>,
    /// Sequence number of the in-flight mispredicted control transfer
    /// fetch is stalled behind, if any.
    fetch_block: Option<u64>,
    /// Cycle fetch may next proceed (redirect / icache-miss stalls).
    fetch_ready_cycle: u64,
    /// Last I-cache line fetched.
    last_fetch_line: Option<u32>,
}

impl<I> FrontendFeed<I> {
    /// An empty feed sized for a `width`-wide machine.
    pub(crate) fn new(width: u32) -> FrontendFeed<I> {
        FrontendFeed {
            frontq: VecDeque::with_capacity(2 * width as usize + 8),
            fetch_block: None,
            fetch_ready_cycle: 0,
            last_fetch_line: None,
        }
    }

    /// The oldest fetched-but-not-dispatched instruction.
    pub(crate) fn front(&self) -> Option<&Fetched<I>> {
        self.frontq.front()
    }

    /// Dispatch consumed the front instruction.
    pub(crate) fn pop(&mut self) {
        self.frontq.pop_front();
    }

    /// Nothing fetched awaits dispatch.
    pub(crate) fn is_empty(&self) -> bool {
        self.frontq.is_empty()
    }

    /// Fetched-but-not-dispatched occupancy (watchdog snapshot support).
    pub(crate) fn len(&self) -> usize {
        self.frontq.len()
    }

    /// Sequence numbers not yet assigned to queued instructions: the
    /// just-pushed tail will become `next_seq + len - 1`.
    pub(crate) fn tail_seq(&self, next_seq: u64) -> u64 {
        next_seq + self.frontq.len() as u64 - 1
    }

    /// Drop every queued wrong-path phantom (squash support).
    pub(crate) fn drop_phantoms(&mut self) {
        self.frontq.retain(|(_, _, _, phantom)| !phantom);
    }
}

impl<I: UopInsn, S: TraceSink<I>> Simulator<S, I> {
    /// Returns `Ok(true)` when the trace is exhausted; a functional-
    /// machine fault while producing the trace surfaces as
    /// [`SimError::Emulation`](crate::SimError) instead of a panic.
    pub(crate) fn fetch<F>(
        &mut self,
        trace: &mut std::iter::Peekable<F>,
    ) -> Result<bool, crate::error::SimError>
    where
        F: Iterator<Item = Result<Uop<I>, EmuError>>,
    {
        // Stall behind an unresolved mispredicted control transfer.
        if let Some(block_seq) = self.feed.fetch_block {
            let resolved = if block_seq >= self.next_seq {
                None // the branch has not even dispatched yet
            } else {
                match self.index_of(block_seq) {
                    Some(i) => self
                        .window
                        .resolved_at(i)
                        .get()
                        .filter(|&r| r <= self.cycle),
                    // Committed (hence resolved): treat as resolved now.
                    None => Some(self.cycle),
                }
            };
            match resolved {
                Some(r) => {
                    self.feed.fetch_block = None;
                    self.feed.fetch_ready_cycle = self.feed.fetch_ready_cycle.max(r);
                    if self.cfg.model_wrong_path {
                        self.squash_wrong_path(block_seq);
                    }
                }
                None => {
                    self.stats.fetch_redirect_stalls += 1;
                    emit!(self, TraceEvent::Stall(StallReason::FetchRedirect));
                    if self.cfg.model_wrong_path {
                        self.fetch_phantoms();
                    }
                    return Ok(false);
                }
            }
        }
        if self.cycle < self.feed.fetch_ready_cycle {
            return Ok(false);
        }
        if self.feed.frontq.len() >= self.feed.frontq.capacity().min(32) {
            return Ok(false);
        }

        for _ in 0..self.cfg.width {
            let Some(next) = trace.peek() else {
                return Ok(true);
            };
            let rec = match next {
                Ok(r) => *r,
                Err(e) => return Err(crate::error::SimError::Emulation(*e)),
            };
            // I-cache: probe on line transitions. (Line size is a
            // validated power of two: shift, don't divide, per fetch.)
            let line = rec.pc >> self.cfg.memory.l1i.line_bytes.trailing_zeros();
            if self.feed.last_fetch_line != Some(line) {
                let access = self.memory.access_insn(rec.pc);
                self.feed.last_fetch_line = Some(line);
                if !access.l1_hit {
                    // Fetch stalls for the refill; this instruction fetches
                    // after the line arrives.
                    self.feed.fetch_ready_cycle = self.cycle + access.latency as u64;
                    return Ok(false);
                }
            }
            // `rec` was copied from the peeked Ok above; consume the item.
            trace.next();

            // Predict control transfers at fetch.
            let mut mispredicted = false;
            if let Some(ctrl) = rec.insn.meta().ctrl {
                let (kind, is_cond) = match ctrl {
                    CtrlKind::DirectJump { is_call } => (
                        BranchKind::DirectJump {
                            target: rec.next_pc,
                            is_call,
                        },
                        false,
                    ),
                    CtrlKind::IndirectJump { is_call, is_return } => {
                        (BranchKind::IndirectJump { is_call, is_return }, false)
                    }
                    CtrlKind::CondBranch(_) => (
                        BranchKind::Conditional {
                            target: if rec.taken { rec.next_pc } else { 0 },
                        },
                        true,
                    ),
                };
                let pred = self
                    .frontend
                    .predict_and_update(rec.pc, kind, rec.taken, rec.next_pc);
                mispredicted = !pred.correct;
                if is_cond {
                    self.stats.branches += 1;
                    if mispredicted {
                        self.stats.branch_mispredicts += 1;
                    }
                } else if mispredicted {
                    self.stats.indirect_mispredicts += 1;
                }
            }

            self.feed
                .frontq
                .push_back((self.cycle, rec, mispredicted, false));
            if mispredicted {
                // Correct-path fetch cannot continue until this resolves.
                self.feed.fetch_block = Some(self.feed.tail_seq(self.next_seq));
                break;
            }
            if self.feed.frontq.len() >= 32 {
                break;
            }
        }
        Ok(false)
    }

    /// Fill fetch bandwidth with wrong-path phantoms while awaiting a
    /// redirect (they occupy dispatch slots, RUU entries and ALUs, then
    /// get squashed — the first-order cost of wrong-path execution).
    fn fetch_phantoms(&mut self) {
        for _ in 0..self.cfg.width {
            if self.feed.frontq.len() >= 32 {
                break;
            }
            let nop = Uop {
                pc: 0,
                insn: I::phantom_nop(),
                src_vals: [0; 2],
                results: [0; 2],
                ea: 0,
                taken: false,
                next_pc: 4,
            };
            self.feed.frontq.push_back((self.cycle, nop, false, true));
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::config::MachineConfig;
    use crate::pipeline::testutil::run_cfg;
    use crate::sim::simulate;

    #[test]
    fn mispredicts_are_counted_and_resolved() {
        // A data-dependent alternating branch.
        let src = r#"
            .text
            main:
                li r8, 400
            loop:
                andi r9, r8, 1
                beq r9, r0, even
                nop
            even:
                addiu r8, r8, -1
                bne r8, r0, loop
                li r2, 0
                syscall
        "#;
        let stats = run_cfg(src, &MachineConfig::ideal());
        assert!(stats.branches >= 800);
        assert!(stats.branch_mispredicts > 0);
        assert_eq!(
            stats.committed,
            run_cfg(src, &MachineConfig::slice4_full()).committed
        );
    }

    #[test]
    fn wrong_path_modeling_costs_cycles_but_commits_identically() {
        for name in ["go", "parser"] {
            let p = popk_workloads::by_name(name).unwrap().program();
            let base = MachineConfig::slice2_full();
            let mut wp = base;
            wp.model_wrong_path = true;
            let a = simulate(&p, &base, 30_000);
            let b = simulate(&p, &wp, 30_000);
            assert_eq!(a.committed, b.committed, "{name}");
            assert_eq!(a.branch_mispredicts, b.branch_mispredicts, "{name}");
            // Wrong-path pollution is a second-order effect and is NOT
            // monotone (the paper's own bzip/gzip/li exceed the ideal
            // machine through it): allow a band around the stall model.
            let lo = a.cycles - a.cycles / 10;
            let hi = a.cycles + a.cycles / 4;
            assert!(
                (lo..=hi).contains(&b.cycles),
                "{name}: wrong-path modeling out of band: {} vs {}",
                b.cycles,
                a.cycles
            );
        }
    }
}
