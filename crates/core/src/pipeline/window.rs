//! The RUU window as a struct-of-arrays ring buffer (Fig. 7's register
//! update unit, one logical entry per dynamic instruction).
//!
//! Every cycle-critical stage scans a handful of per-entry fields —
//! issue/ready schedules, dependences, class predicates — thousands of
//! times per simulated instruction. Storing those fields in separate
//! columns (indexed by window position) instead of one ~300-byte struct
//! keeps each examination's working set to the few cache lines it
//! actually reads, and replaces the `[Option<u64>; 4]` schedule arrays
//! with half-size [`CycleSlot`] sentinel rows. Cold per-entry state (the
//! architectural [`Uop`]) lives in its own side column that only
//! dispatch, branch resolution, and commit touch.
//!
//! The window is generic over the frontend's instruction type `I` and
//! never inspects it: every per-opcode predicate arrives pre-decoded as
//! the [`UopMeta`] dispatch passes to [`Window::push_back`].
//!
//! Layout invariants:
//!
//! * Sequence numbers are contiguous in the window (commit pops the
//!   head, dispatch pushes the tail, squash pops the tail and rewinds
//!   the counter), so `seq(idx) = head_seq + idx` and no seq column
//!   exists.
//! * The ring capacity is `ruu_size` rounded to a power of two;
//!   physical slot `(head + idx) & mask` is first touched in strictly
//!   increasing order, so columns grow lazily to capacity and are
//!   reused in place afterwards (allocations survive across runs via
//!   [`WindowBufs`]).
//! * Memory-state columns are meaningful only for loads/stores; the
//!   typed accessors panic with the offending sequence number on any
//!   other entry, like the old `Entry::mem` contract.

use super::entry::{CycleSlot, Dep, ExecClass, MAX_SLICES};
use super::sched::Waiters;
use popk_isa::SliceClass;
use popk_trace::{CtrlKind, LatClass, Uop, UopMeta};

/// Flag bits of the per-entry predicate column (decoded once at
/// dispatch; bits 6–7 hold the dependence count).
const F_LOAD: u16 = 1 << 0;
const F_STORE: u16 = 1 << 1;
const F_PHANTOM: u16 = 1 << 2;
const F_MISPREDICTED: u16 = 1 << 3;
const F_LATE_RESULT: u16 = 1 << 4;
const F_DEP_SPECULATED: u16 = 1 << 5;
const NDEPS_SHIFT: u16 = 6;
/// A store's *data* operand (rt) is dependence slot 1, not slot 0.
const F_STORE_DATA_SLOT1: u16 = 1 << 8;
/// The instruction defines at least one register.
const F_HAS_DEF: u16 = 1 << 9;

/// A dependence encoded as one `u64`: the producer's seq, or
/// `u64::MAX` for "reads the committed register file".
const DEP_READY: u64 = u64::MAX;

#[inline]
fn dep_encode(d: Dep) -> u64 {
    match d {
        Dep::Ready => DEP_READY,
        Dep::InFlight(seq) => {
            debug_assert_ne!(seq, DEP_READY);
            seq
        }
    }
}

/// The column allocations of a [`Window`], detached for reuse across
/// runs (see [`crate::Scratch`]).
pub(crate) struct WindowBufs<I> {
    rec: Vec<Uop<I>>,
    earliest_ex: Vec<u64>,
    meta: Vec<UopMeta>,
    class: Vec<ExecClass>,
    slice_class: Vec<SliceClass>,
    flags: Vec<u16>,
    deps: Vec<[u64; 2]>,
    issued: Vec<[CycleSlot; MAX_SLICES]>,
    ready: Vec<[CycleSlot; MAX_SLICES]>,
    resolved_at: Vec<CycleSlot>,
    completed_at: Vec<CycleSlot>,
    mem_started: Vec<CycleSlot>,
    mem_data_ready: Vec<CycleSlot>,
    mem_store_data: Vec<CycleSlot>,
    waiters: Vec<Waiters>,
}

// Manual impl: a derived one would demand `I: Default` for no reason.
impl<I> Default for WindowBufs<I> {
    fn default() -> WindowBufs<I> {
        WindowBufs {
            rec: Vec::new(),
            earliest_ex: Vec::new(),
            meta: Vec::new(),
            class: Vec::new(),
            slice_class: Vec::new(),
            flags: Vec::new(),
            deps: Vec::new(),
            issued: Vec::new(),
            ready: Vec::new(),
            resolved_at: Vec::new(),
            completed_at: Vec::new(),
            mem_started: Vec::new(),
            mem_data_ready: Vec::new(),
            mem_store_data: Vec::new(),
            waiters: Vec::new(),
        }
    }
}

/// The struct-of-arrays window store. All accessors take the *logical*
/// index (0 = oldest in flight), as produced by
/// [`Simulator::index_of`](super::Simulator::index_of).
pub(crate) struct Window<I> {
    mask: usize,
    head: usize,
    len: usize,
    /// Sequence number of the logical head (valid while `len > 0`).
    head_seq: u64,
    cols: WindowBufs<I>,
}

impl<I> Window<I> {
    /// An empty window for a `ruu_size`-entry RUU, reusing the column
    /// allocations in `bufs`.
    pub(crate) fn new(ruu_size: usize, mut bufs: WindowBufs<I>) -> Window<I> {
        let cap = ruu_size.next_power_of_two().max(1);
        bufs.rec.clear();
        bufs.earliest_ex.clear();
        bufs.meta.clear();
        bufs.class.clear();
        bufs.slice_class.clear();
        bufs.flags.clear();
        bufs.deps.clear();
        bufs.issued.clear();
        bufs.ready.clear();
        bufs.resolved_at.clear();
        bufs.completed_at.clear();
        bufs.mem_started.clear();
        bufs.mem_data_ready.clear();
        bufs.mem_store_data.clear();
        // Waiter lists keep their inner allocations; just empty them
        // (a previous run may have ended mid-flight).
        for w in &mut bufs.waiters {
            w.clear();
        }
        bufs.waiters.truncate(cap);
        Window {
            mask: cap - 1,
            head: 0,
            len: 0,
            head_seq: 0,
            cols: bufs,
        }
    }

    /// Detach the column allocations for reuse by a later run.
    pub(crate) fn into_bufs(self) -> WindowBufs<I> {
        self.cols
    }

    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    #[inline]
    pub(crate) fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Physical slot of logical index `i`.
    #[inline]
    fn phys(&self, i: usize) -> usize {
        debug_assert!(i < self.len, "window index {i} out of {}", self.len);
        (self.head + i) & self.mask
    }

    /// O(1) window position of `seq` (seqs are contiguous).
    #[inline]
    pub(crate) fn index_of(&self, seq: u64) -> Option<usize> {
        if self.len == 0 || seq < self.head_seq {
            return None; // empty, or already committed
        }
        let off = (seq - self.head_seq) as usize;
        (off < self.len).then_some(off)
    }

    /// Sequence number of logical index `i`.
    #[inline]
    pub(crate) fn seq(&self, i: usize) -> u64 {
        debug_assert!(i < self.len);
        self.head_seq + i as u64
    }

    /// Dispatch a new entry at the window tail; returns its index.
    /// `meta` is the frontend's pre-decoded classification of `rec` —
    /// the window copies its predicates into the hot flag/class columns.
    /// `store_data_slot` is the source-list position of a store's data
    /// operand and `has_def` whether the instruction defines a
    /// register — both already in hand at the dispatch rename walk.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn push_back(
        &mut self,
        seq: u64,
        rec: Uop<I>,
        meta: UopMeta,
        earliest_ex: u64,
        deps: [Dep; 2],
        ndeps: usize,
        store_data_slot: u16,
        has_def: bool,
        mispredicted: bool,
        phantom: bool,
    ) -> usize {
        debug_assert!(self.len <= self.mask, "window overfull");
        if self.len == 0 {
            self.head_seq = seq;
        }
        debug_assert_eq!(
            self.head_seq + self.len as u64,
            seq,
            "seqs must stay contiguous"
        );
        let idx = self.len;
        let p = (self.head + idx) & self.mask;
        self.len += 1;

        let mut flags = (ndeps as u16) << NDEPS_SHIFT;
        flags |= F_LOAD * meta.is_load as u16;
        flags |= F_STORE * meta.is_store as u16;
        flags |= F_PHANTOM * phantom as u16;
        flags |= F_MISPREDICTED * mispredicted as u16;
        flags |= F_LATE_RESULT * meta.late_result as u16;
        flags |= F_HAS_DEF * has_def as u16;
        if meta.is_store {
            debug_assert!(store_data_slot < 2);
            flags |= F_STORE_DATA_SLOT1 * store_data_slot;
        }

        // Physical slots are first touched in strictly increasing order
        // (head+len only ever steps by one), so each column either grows
        // by one or rewrites a recycled slot in place.
        set_col(&mut self.cols.rec, p, rec);
        set_col(&mut self.cols.earliest_ex, p, earliest_ex);
        set_col(&mut self.cols.meta, p, meta);
        set_col(&mut self.cols.class, p, meta.class);
        set_col(&mut self.cols.slice_class, p, meta.slice_class);
        set_col(&mut self.cols.flags, p, flags);
        set_col(
            &mut self.cols.deps,
            p,
            [dep_encode(deps[0]), dep_encode(deps[1])],
        );
        set_col(&mut self.cols.issued, p, [CycleSlot::UNSET; MAX_SLICES]);
        set_col(&mut self.cols.ready, p, [CycleSlot::UNSET; MAX_SLICES]);
        set_col(&mut self.cols.resolved_at, p, CycleSlot::UNSET);
        set_col(&mut self.cols.completed_at, p, CycleSlot::UNSET);
        set_col(&mut self.cols.mem_started, p, CycleSlot::UNSET);
        set_col(&mut self.cols.mem_data_ready, p, CycleSlot::UNSET);
        set_col(&mut self.cols.mem_store_data, p, CycleSlot::UNSET);
        if p == self.cols.waiters.len() {
            self.cols.waiters.push(Waiters::new());
        }
        debug_assert!(
            self.cols.waiters[p].is_empty(),
            "recycled slot has parked waiters"
        );
        idx
    }

    /// Retire the head entry (commit). The caller reads whatever head
    /// state it needs *before* popping.
    pub(crate) fn pop_front(&mut self) {
        debug_assert!(self.len > 0);
        self.cols.waiters[self.head].clear();
        self.head = (self.head + 1) & self.mask;
        self.head_seq += 1;
        self.len -= 1;
    }

    /// Squash the tail entry (wrong-path recovery).
    pub(crate) fn pop_back(&mut self) {
        debug_assert!(self.len > 0);
        self.len -= 1;
        let p = (self.head + self.len) & self.mask;
        self.cols.waiters[p].clear();
    }

    // ---- cold column -------------------------------------------------

    /// The architectural trace record (cold: dispatch, branch
    /// resolution, memory disambiguation, and commit only).
    #[inline]
    pub(crate) fn rec(&self, i: usize) -> &Uop<I> {
        &self.cols.rec[self.phys(i)]
    }

    // ---- predicates and classes --------------------------------------

    #[inline]
    pub(crate) fn earliest_ex(&self, i: usize) -> u64 {
        self.cols.earliest_ex[self.phys(i)]
    }

    /// The control kind, if this entry is a control transfer (cached
    /// out of the dispatch-time [`UopMeta`]).
    #[inline]
    pub(crate) fn ctrl(&self, i: usize) -> Option<CtrlKind> {
        self.cols.meta[self.phys(i)].ctrl
    }

    /// Whether this entry is any kind of control transfer.
    #[inline]
    pub(crate) fn is_control(&self, i: usize) -> bool {
        self.cols.meta[self.phys(i)].ctrl.is_some()
    }

    /// The latency class (selects the functional-unit latency knob).
    #[inline]
    pub(crate) fn lat(&self, i: usize) -> LatClass {
        self.cols.meta[self.phys(i)].lat
    }

    /// Access width in bytes (loads/stores; 0 otherwise).
    #[inline]
    pub(crate) fn mem_bytes(&self, i: usize) -> u8 {
        self.cols.meta[self.phys(i)].mem_bytes
    }

    /// Which dependence slot carries a store's *data* operand,
    /// cached at dispatch.
    #[inline]
    pub(crate) fn store_data_slot(&self, i: usize) -> usize {
        debug_assert!(self.is_store(i));
        (self.cols.flags[self.phys(i)] & F_STORE_DATA_SLOT1 != 0) as usize
    }

    #[inline]
    pub(crate) fn class(&self, i: usize) -> ExecClass {
        self.cols.class[self.phys(i)]
    }

    #[inline]
    pub(crate) fn slice_class(&self, i: usize) -> SliceClass {
        self.cols.slice_class[self.phys(i)]
    }

    #[inline]
    pub(crate) fn is_load(&self, i: usize) -> bool {
        self.cols.flags[self.phys(i)] & F_LOAD != 0
    }

    #[inline]
    pub(crate) fn is_store(&self, i: usize) -> bool {
        self.cols.flags[self.phys(i)] & F_STORE != 0
    }

    #[inline]
    pub(crate) fn is_mem(&self, i: usize) -> bool {
        self.cols.flags[self.phys(i)] & (F_LOAD | F_STORE) != 0
    }

    #[inline]
    pub(crate) fn phantom(&self, i: usize) -> bool {
        self.cols.flags[self.phys(i)] & F_PHANTOM != 0
    }

    #[inline]
    pub(crate) fn mispredicted(&self, i: usize) -> bool {
        self.cols.flags[self.phys(i)] & F_MISPREDICTED != 0
    }

    #[inline]
    pub(crate) fn has_def(&self, i: usize) -> bool {
        self.cols.flags[self.phys(i)] & F_HAS_DEF != 0
    }

    #[inline]
    pub(crate) fn late_result(&self, i: usize) -> bool {
        self.cols.flags[self.phys(i)] & F_LATE_RESULT != 0
    }

    #[inline]
    pub(crate) fn dep_speculated(&self, i: usize) -> bool {
        self.cols.flags[self.phys(i)] & F_DEP_SPECULATED != 0
    }

    #[inline]
    pub(crate) fn set_dep_speculated(&mut self, i: usize) {
        let p = self.phys(i);
        self.cols.flags[p] |= F_DEP_SPECULATED;
    }

    // ---- dependences -------------------------------------------------

    #[inline]
    pub(crate) fn ndeps(&self, i: usize) -> usize {
        ((self.cols.flags[self.phys(i)] >> NDEPS_SHIFT) & 0b11) as usize
    }

    #[inline]
    pub(crate) fn dep(&self, i: usize, d: usize) -> Dep {
        match self.cols.deps[self.phys(i)][d] {
            DEP_READY => Dep::Ready,
            seq => Dep::InFlight(seq),
        }
    }

    // ---- issue / ready schedule --------------------------------------

    #[inline]
    pub(crate) fn issued(&self, i: usize, k: usize) -> CycleSlot {
        self.cols.issued[self.phys(i)][k]
    }

    #[inline]
    pub(crate) fn set_issued(&mut self, i: usize, k: usize, cycle: u64) {
        let p = self.phys(i);
        self.cols.issued[p][k] = CycleSlot::at(cycle);
    }

    #[inline]
    pub(crate) fn ready(&self, i: usize, k: usize) -> CycleSlot {
        self.cols.ready[self.phys(i)][k]
    }

    /// Copy of the ready row (event diffing in the sliced-issue path).
    #[inline]
    pub(crate) fn ready_row(&self, i: usize) -> [CycleSlot; MAX_SLICES] {
        self.cols.ready[self.phys(i)]
    }

    #[inline]
    pub(crate) fn set_ready(&mut self, i: usize, k: usize, at: CycleSlot) {
        let p = self.phys(i);
        self.cols.ready[p][k] = at;
    }

    #[inline]
    pub(crate) fn resolved_at(&self, i: usize) -> CycleSlot {
        self.cols.resolved_at[self.phys(i)]
    }

    #[inline]
    pub(crate) fn set_resolved_at(&mut self, i: usize, at: CycleSlot) {
        let p = self.phys(i);
        self.cols.resolved_at[p] = at;
    }

    #[inline]
    pub(crate) fn completed_at(&self, i: usize) -> CycleSlot {
        self.cols.completed_at[self.phys(i)]
    }

    #[inline]
    pub(crate) fn set_completed_at(&mut self, i: usize, at: CycleSlot) {
        let p = self.phys(i);
        self.cols.completed_at[p] = at;
    }

    /// Result slice `k` availability: loads publish every slice when the
    /// data returns; everything else publishes per-slice.
    #[inline]
    pub(crate) fn result_ready(&self, i: usize, k: usize) -> CycleSlot {
        let p = self.phys(i);
        if self.cols.flags[p] & F_LOAD != 0 {
            self.cols.mem_data_ready[p]
        } else {
            self.cols.ready[p][k]
        }
    }

    /// Availability of the *full* result (unset if any slice is). The
    /// sentinel is the maximum, so a plain `max` fold is exact.
    #[inline]
    pub(crate) fn result_ready_full(&self, i: usize, nslices: usize) -> CycleSlot {
        let mut worst = CycleSlot::at(0);
        for k in 0..nslices {
            worst = worst.max(self.result_ready(i, k));
        }
        worst
    }

    // ---- memory state (loads/stores only) ----------------------------

    /// Panic like the old `Entry::mem` contract: memory columns are
    /// typed to loads/stores.
    #[track_caller]
    fn assert_mem(&self, i: usize, p: usize) {
        if self.cols.flags[p] & (F_LOAD | F_STORE) == 0 {
            panic!("seq {}: memory state on a non-memory entry", self.seq(i));
        }
    }

    #[track_caller]
    #[inline]
    pub(crate) fn mem_started(&self, i: usize) -> CycleSlot {
        let p = self.phys(i);
        self.assert_mem(i, p);
        self.cols.mem_started[p]
    }

    #[track_caller]
    #[inline]
    pub(crate) fn set_mem_started(&mut self, i: usize, cycle: u64) {
        let p = self.phys(i);
        self.assert_mem(i, p);
        self.cols.mem_started[p] = CycleSlot::at(cycle);
    }

    #[track_caller]
    #[inline]
    pub(crate) fn mem_data_ready(&self, i: usize) -> CycleSlot {
        let p = self.phys(i);
        self.assert_mem(i, p);
        self.cols.mem_data_ready[p]
    }

    #[track_caller]
    #[inline]
    pub(crate) fn set_mem_data_ready(&mut self, i: usize, at: u64) {
        let p = self.phys(i);
        self.assert_mem(i, p);
        self.cols.mem_data_ready[p] = CycleSlot::at(at);
    }

    #[track_caller]
    #[inline]
    pub(crate) fn store_data_ready(&self, i: usize) -> CycleSlot {
        let p = self.phys(i);
        self.assert_mem(i, p);
        self.cols.mem_store_data[p]
    }

    #[track_caller]
    #[inline]
    pub(crate) fn set_store_data_ready(&mut self, i: usize, at: u64) {
        let p = self.phys(i);
        self.assert_mem(i, p);
        self.cols.mem_store_data[p] = CycleSlot::at(at);
    }

    // ---- waiter lists ------------------------------------------------

    /// Park `seq` on entry `i`'s result (idempotent).
    #[inline]
    pub(crate) fn park_waiter(&mut self, i: usize, seq: u64) {
        let p = self.phys(i);
        self.cols.waiters[p].park(seq);
    }

    #[inline]
    pub(crate) fn waiters_empty(&self, i: usize) -> bool {
        self.cols.waiters[self.phys(i)].is_empty()
    }

    /// Move entry `i`'s waiter list out for draining; hand it back with
    /// [`Window::attach_waiters`] to reuse the allocation.
    #[inline]
    pub(crate) fn detach_waiters(&mut self, i: usize) -> Vec<u64> {
        let p = self.phys(i);
        self.cols.waiters[p].detach()
    }

    #[inline]
    pub(crate) fn attach_waiters(&mut self, i: usize, drained: Vec<u64>) {
        let p = self.phys(i);
        self.cols.waiters[p].attach(drained);
    }
}

/// Write `val` at physical slot `p`, growing the column by one if `p`
/// is its current high-water mark (slots are first touched in order).
#[inline]
fn set_col<T>(v: &mut Vec<T>, p: usize, val: T) {
    if p == v.len() {
        v.push(val);
    } else {
        v[p] = val;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popk_emu::TraceRecord;
    use popk_isa::{Insn, Op, Reg};
    use popk_trace::UopInsn;

    fn rec(insn: Insn) -> TraceRecord {
        TraceRecord {
            pc: 0x400000,
            insn,
            src_vals: [0; 2],
            results: [0; 2],
            ea: 0,
            taken: false,
            next_pc: 0x400004,
        }
    }

    fn add_rec() -> TraceRecord {
        rec(Insn::r3(Op::Addu, Reg::gpr(8), Reg::gpr(9), Reg::gpr(10)))
    }

    fn lw_rec() -> TraceRecord {
        rec(Insn::load(Op::Lw, Reg::gpr(8), 0, Reg::gpr(9)))
    }

    #[allow(clippy::too_many_arguments)]
    fn push(
        w: &mut Window<Insn>,
        seq: u64,
        rec: TraceRecord,
        earliest_ex: u64,
        deps: [Dep; 2],
        ndeps: usize,
        mispredicted: bool,
        phantom: bool,
    ) -> usize {
        let meta = rec.insn.meta();
        w.push_back(
            seq,
            rec,
            meta,
            earliest_ex,
            deps,
            ndeps,
            0,
            true,
            mispredicted,
            phantom,
        )
    }

    fn window() -> Window<Insn> {
        Window::new(64, WindowBufs::default())
    }

    #[test]
    fn push_decodes_classes_and_flags() {
        let mut w = window();
        let i = push(&mut w, 0, add_rec(), 3, [Dep::Ready; 2], 2, false, false);
        assert_eq!(w.class(i), ExecClass::IntSliced);
        assert!(!w.is_mem(i) && !w.phantom(i) && !w.late_result(i));
        assert!(!w.is_control(i) && w.ctrl(i).is_none());
        assert_eq!(w.lat(i), LatClass::Alu);
        assert_eq!(w.ndeps(i), 2);
        assert_eq!(w.earliest_ex(i), 3);
        assert!(w.issued(i, 0).is_unset() && w.completed_at(i).is_unset());

        let j = push(
            &mut w,
            1,
            lw_rec(),
            3,
            [Dep::InFlight(0), Dep::Ready],
            1,
            false,
            false,
        );
        assert!(w.is_load(j) && w.is_mem(j) && !w.is_store(j));
        assert_eq!(w.mem_bytes(j), 4);
        assert!(w.mem_started(j).is_unset());
        assert!(matches!(w.dep(j, 0), Dep::InFlight(0)));
        assert!(matches!(w.dep(j, 1), Dep::Ready));
    }

    #[test]
    #[should_panic(expected = "seq 7: memory state on a non-memory entry")]
    fn mem_accessor_names_the_seq() {
        let mut w = window();
        for s in 0..8 {
            push(&mut w, s, add_rec(), 0, [Dep::Ready; 2], 2, false, false);
        }
        let _ = w.mem_started(7);
    }

    #[test]
    fn loads_publish_slices_with_the_data() {
        let mut w = window();
        let i = push(&mut w, 0, lw_rec(), 0, [Dep::Ready; 2], 1, false, false);
        w.set_ready(i, 0, CycleSlot::at(3));
        w.set_ready(i, 1, CycleSlot::at(4));
        assert!(w.result_ready(i, 0).is_unset(), "load data not back yet");
        w.set_mem_data_ready(i, 9);
        assert_eq!(w.result_ready(i, 0).get(), Some(9));
        assert_eq!(w.result_ready(i, 1).get(), Some(9));
    }

    #[test]
    fn ring_reuses_slots_across_commit_and_squash() {
        // Capacity 4: push/pop cycles wrap the ring and recycle slots.
        let mut w: Window<Insn> = Window::new(4, WindowBufs::default());
        for s in 0..4u64 {
            push(&mut w, s, add_rec(), 0, [Dep::Ready; 2], 0, false, s >= 2);
        }
        assert_eq!(w.index_of(0), Some(0));
        assert_eq!(w.index_of(3), Some(3));
        assert!(w.phantom(3) && !w.phantom(1));
        w.pop_front(); // commit seq 0
        assert_eq!(w.index_of(0), None, "committed");
        assert_eq!(w.index_of(1), Some(0));
        assert_eq!(w.seq(0), 1);
        w.pop_back(); // squash seq 3
        assert_eq!(w.len(), 2);
        assert_eq!(w.index_of(3), None, "squashed");
        // Refill past the physical wrap point.
        for s in 3..5u64 {
            let i = push(&mut w, s, lw_rec(), 9, [Dep::Ready; 2], 1, false, false);
            assert!(w.issued(i, 0).is_unset(), "recycled slot must reset");
            assert!(w.mem_started(i).is_unset());
            assert_eq!(w.earliest_ex(i), 9);
        }
        assert_eq!(w.len(), 4);
        assert_eq!(w.seq(w.len() - 1), 4);
    }

    #[test]
    fn waiter_lists_survive_on_recycled_slots_but_empty() {
        let mut w: Window<Insn> = Window::new(2, WindowBufs::default());
        push(&mut w, 0, add_rec(), 0, [Dep::Ready; 2], 0, false, false);
        w.park_waiter(0, 5);
        w.park_waiter(0, 5); // idempotent
        assert!(!w.waiters_empty(0));
        let ws = w.detach_waiters(0);
        assert_eq!(ws, vec![5]);
        w.attach_waiters(0, ws);
        assert!(w.waiters_empty(0));
        w.pop_front();
        let i = push(&mut w, 1, add_rec(), 0, [Dep::Ready; 2], 0, false, false);
        assert!(w.waiters_empty(i));
    }

    #[test]
    fn bufs_round_trip_preserves_nothing_but_allocations() {
        let mut w = window();
        push(&mut w, 0, add_rec(), 0, [Dep::Ready; 2], 0, false, false);
        w.set_completed_at(0, CycleSlot::at(11));
        let bufs = w.into_bufs();
        let w2: Window<Insn> = Window::new(64, bufs);
        assert!(w2.is_empty());
    }
}
