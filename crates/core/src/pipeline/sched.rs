//! The event-driven wakeup machinery (the PR 3 speedup): a calendar
//! wheel plus far-heap for timed examinations, per-producer waiter
//! lists, and the age-ordered store-queue / pending-load bookkeeping.
//!
//! Every field is private to this module: stages interact with the
//! schedule exclusively through the narrow [`Scheduler`] and [`Waiters`]
//! APIs, so no stage can reach into another's wakeup state. The
//! scheduling discipline (documented on each method) is what makes the
//! event-driven issue loop bit-identical to an exhaustive window rescan:
//! an examination may be scheduled spuriously (examinations are
//! side-effect-free unless the entry progresses), but every entry that
//! *would* progress on a cycle must have a wakeup due on it.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

/// Calendar-wheel size for the issue wakeup schedule. Almost every wake
/// is a handful of cycles out (next-cycle retries, ALU/unit latencies);
/// the rare longer waits (L2 misses) overflow to a heap.
const WHEEL_SLOTS: u64 = 64;

/// The shared wakeup schedule and LSQ-order queues.
pub(crate) struct Scheduler {
    /// Wakeup calendar wheel: slot `c % WHEEL_SLOTS` holds the seqs to
    /// examine at cycle `c`. Issue examines only the entries whose
    /// wakeup is due instead of rescanning the window. An entry may be
    /// scheduled more than once, and a stale seq — squashed, committed,
    /// or reused after a squash — is simply a harmless extra
    /// examination.
    wheel: Vec<Vec<u64>>,
    /// Wakeups further than the wheel horizon: `(cycle, seq)` min-heap.
    far: BinaryHeap<Reverse<(u64, u64)>>,
    /// Scratch buffer for the due candidates, reused across cycles.
    cand_buf: Vec<u64>,
    /// In-window store seqs in age order: the disambiguation scans walk
    /// this instead of the whole window.
    store_q: VecDeque<u64>,
    /// In-window load seqs whose cache access has not started yet.
    pending_loads: Vec<u64>,
}

/// The [`Scheduler`]'s buffer allocations, detached for reuse across
/// runs (see [`crate::Scratch`]): the calendar-wheel slot vectors, the
/// far heap, and the candidate/LSQ scratch lists.
#[derive(Default)]
pub(crate) struct SchedBufs {
    wheel: Vec<Vec<u64>>,
    far: BinaryHeap<Reverse<(u64, u64)>>,
    cand_buf: Vec<u64>,
    store_q: VecDeque<u64>,
    pending_loads: Vec<u64>,
}

impl Scheduler {
    /// An empty schedule sized for a `ruu_size`-entry window and a
    /// `lsq_size`-entry load/store queue.
    #[cfg(test)]
    pub(crate) fn new(ruu_size: usize, lsq_size: usize) -> Scheduler {
        Scheduler::new_in(ruu_size, lsq_size, SchedBufs::default())
    }

    /// Like [`Scheduler::new`], reusing the allocations in `bufs`.
    pub(crate) fn new_in(ruu_size: usize, lsq_size: usize, mut bufs: SchedBufs) -> Scheduler {
        for slot in &mut bufs.wheel {
            slot.clear();
        }
        bufs.wheel.resize_with(WHEEL_SLOTS as usize, Vec::new);
        bufs.far.clear();
        bufs.cand_buf.clear();
        bufs.cand_buf.reserve(ruu_size);
        bufs.store_q.clear();
        bufs.store_q.reserve(lsq_size);
        bufs.pending_loads.clear();
        bufs.pending_loads.reserve(lsq_size);
        Scheduler {
            wheel: bufs.wheel,
            far: bufs.far,
            cand_buf: bufs.cand_buf,
            store_q: bufs.store_q,
            pending_loads: bufs.pending_loads,
        }
    }

    /// Detach the buffer allocations for reuse by a later run.
    pub(crate) fn into_bufs(self) -> SchedBufs {
        SchedBufs {
            wheel: self.wheel,
            far: self.far,
            cand_buf: self.cand_buf,
            store_q: self.store_q,
            pending_loads: self.pending_loads,
        }
    }

    /// Schedule an examination of `seq` at cycle `at` (clamped to the
    /// next issue opportunity — a wake for the past means "as soon as
    /// possible").
    #[inline]
    pub(crate) fn schedule(&mut self, now: u64, seq: u64, at: u64) {
        let at = at.max(now + 1);
        if at - now <= WHEEL_SLOTS {
            self.wheel[(at % WHEEL_SLOTS) as usize].push(seq);
        } else {
            self.far.push(Reverse((at, seq)));
        }
    }

    /// The sequence numbers due for examination at cycle `now`, sorted
    /// ascending (window/age order, so resource arbitration resolves
    /// identically to an in-order window scan) and deduplicated.
    ///
    /// Returns an owned buffer so the caller can walk it while mutating
    /// the schedule; hand it back with [`Scheduler::recycle`] to reuse
    /// the allocation.
    pub(crate) fn due_candidates(&mut self, now: u64) -> Vec<u64> {
        let mut cands = std::mem::take(&mut self.cand_buf);
        cands.clear();
        // Swap this cycle's wheel slot out (the emptied scratch buffer
        // becomes the slot's fresh backing storage).
        let slot = (now % WHEEL_SLOTS) as usize;
        std::mem::swap(&mut cands, &mut self.wheel[slot]);
        while let Some(&Reverse((due, seq))) = self.far.peek() {
            if due > now {
                break;
            }
            self.far.pop();
            cands.push(seq);
        }
        cands.sort_unstable();
        cands.dedup();
        cands
    }

    /// Return the candidate buffer for reuse next cycle.
    pub(crate) fn recycle(&mut self, buf: Vec<u64>) {
        self.cand_buf = buf;
    }

    // ---- store queue (age order) ------------------------------------

    /// A store entered the window.
    pub(crate) fn push_store(&mut self, seq: u64) {
        self.store_q.push_back(seq);
    }

    /// The store at the head of the queue committed. Stores commit in
    /// age order, so `seq` must be the oldest queued store.
    pub(crate) fn commit_store(&mut self, seq: u64) {
        debug_assert_eq!(self.store_q.front(), Some(&seq));
        self.store_q.pop_front();
    }

    /// In-window stores older than `seq`, youngest first (the
    /// forwarding scan order: the youngest covering store wins).
    pub(crate) fn older_stores_young_first(&self, seq: u64) -> impl Iterator<Item = u64> + '_ {
        self.store_q
            .iter()
            .rev()
            .skip_while(move |&&s| s >= seq)
            .copied()
    }

    /// In-window stores older than `seq`, oldest first (the violation /
    /// completeness scan order).
    pub(crate) fn older_stores_old_first(&self, seq: u64) -> impl Iterator<Item = u64> + '_ {
        self.store_q.iter().take_while(move |&&s| s < seq).copied()
    }

    // ---- pending loads ----------------------------------------------

    /// A load entered the window (its access has not started).
    pub(crate) fn push_pending_load(&mut self, seq: u64) {
        self.pending_loads.push(seq);
    }

    /// Detach the pending-load list so the memory stage can walk it
    /// while mutating the window; reattach with
    /// [`Scheduler::put_pending_loads`].
    pub(crate) fn take_pending_loads(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.pending_loads)
    }

    /// Reattach the (possibly filtered) pending-load list.
    pub(crate) fn put_pending_loads(&mut self, loads: Vec<u64>) {
        self.pending_loads = loads;
    }

    /// Is this load still awaiting its access? (Debug-assert support.)
    #[cfg(debug_assertions)]
    pub(crate) fn load_is_pending(&self, seq: u64) -> bool {
        self.pending_loads.contains(&seq)
    }
}

/// A producer's waiter list: consumers parked on a result, re-entering
/// the wakeup calendar when the producer publishes a result slice.
///
/// The inner list is private so parking stays deduplicated; draining
/// goes through [`Waiters::detach`] / [`Waiters::attach`], which reuse
/// the allocation (the drain happens while the owning window entry is
/// mutably borrowed, so the list is moved out first).
#[derive(Default)]
pub(crate) struct Waiters(Vec<u64>);

impl Waiters {
    /// An empty list.
    pub(crate) fn new() -> Waiters {
        Waiters(Vec::new())
    }

    /// Park `seq` on this producer (idempotent).
    pub(crate) fn park(&mut self, seq: u64) {
        if !self.0.contains(&seq) {
            self.0.push(seq);
        }
    }

    /// No one is parked here.
    pub(crate) fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Move the list out for draining (leaves this list empty).
    pub(crate) fn detach(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.0)
    }

    /// Hand a drained list's allocation back for reuse.
    pub(crate) fn attach(&mut self, mut drained: Vec<u64>) {
        drained.clear();
        self.0 = drained;
    }

    /// Drop any parked seqs, keeping the allocation (window slot
    /// recycling at commit/squash).
    pub(crate) fn clear(&mut self) {
        self.0.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn near_wakeups_land_on_their_cycle() {
        let mut s = Scheduler::new(64, 32);
        s.schedule(10, 5, 12);
        s.schedule(10, 3, 12);
        s.schedule(10, 9, 13);
        assert_eq!(s.due_candidates(11), Vec::<u64>::new());
        // Sorted (age order) regardless of scheduling order.
        let due = s.due_candidates(12);
        assert_eq!(due, vec![3, 5]);
        s.recycle(due);
        assert_eq!(s.due_candidates(13), vec![9]);
    }

    #[test]
    fn past_wakeups_clamp_to_next_cycle() {
        let mut s = Scheduler::new(64, 32);
        s.schedule(100, 7, 3); // "as soon as possible"
        assert_eq!(s.due_candidates(101), vec![7]);
    }

    #[test]
    fn far_wakeups_overflow_to_the_heap_and_return() {
        let mut s = Scheduler::new(64, 32);
        let now = 0;
        s.schedule(now, 1, 500); // beyond the 64-slot wheel horizon
        s.schedule(now, 2, 500);
        s.schedule(now, 3, 70);
        // Nothing lands early even though 500 % 64 and 70 % 64 alias
        // wheel slots inside the horizon.
        for c in 1..70 {
            assert!(s.due_candidates(c).is_empty(), "cycle {c}");
        }
        assert_eq!(s.due_candidates(70), vec![3]);
        assert_eq!(s.due_candidates(500), vec![1, 2]);
    }

    #[test]
    fn duplicate_wakeups_dedup() {
        let mut s = Scheduler::new(64, 32);
        s.schedule(0, 4, 2);
        s.schedule(0, 4, 2);
        s.schedule(0, 4, 200);
        assert_eq!(s.due_candidates(2), vec![4]);
        assert_eq!(s.due_candidates(200), vec![4]);
    }

    #[test]
    fn store_queue_iterates_by_age() {
        let mut s = Scheduler::new(64, 32);
        for seq in [2, 5, 9, 11] {
            s.push_store(seq);
        }
        let young: Vec<u64> = s.older_stores_young_first(10).collect();
        assert_eq!(young, vec![9, 5, 2]);
        let old: Vec<u64> = s.older_stores_old_first(10).collect();
        assert_eq!(old, vec![2, 5, 9]);
        s.commit_store(2);
        assert_eq!(s.older_stores_old_first(10).collect::<Vec<_>>(), vec![5, 9]);
    }

    #[test]
    fn waiters_park_once_and_drain() {
        let mut w = Waiters::new();
        assert!(w.is_empty());
        w.park(3);
        w.park(3);
        w.park(8);
        let drained = w.detach();
        assert_eq!(drained, vec![3, 8]);
        assert!(w.is_empty());
        w.attach(drained);
        assert!(w.is_empty(), "reattached allocation must come back clear");
    }
}
