//! RUU window entries: the per-instruction in-flight state every stage
//! reads and advances (one [`Entry`] per dynamic instruction, Fig. 7's
//! register update unit).
//!
//! An entry records the full issue/readiness schedule of an instruction
//! — per-slice issue and result cycles, memory access state, branch
//! resolution — plus the decoded predicates the hot paths consult.
//! Memory state is reachable only through the typed [`Entry::mem`] /
//! [`Entry::mem_mut`] accessors, which panic with the offending sequence
//! number instead of a bare `unwrap`.

use crate::pipeline::sched::Waiters;
use popk_emu::TraceRecord;
use popk_isa::{Op, OpClass, SliceClass};

/// Upper bound on operand slices (slice-by-4 is the deepest machine).
pub(crate) const MAX_SLICES: usize = 4;

/// How an instruction occupies execution resources.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum ExecClass {
    /// Sliced integer execution (ALU ops, agen, branch compares).
    IntSliced,
    /// Atomic on the (single, unpipelined) multiply/divide unit.
    MulDiv,
    /// Atomic on the FP adders (pipelined).
    FpAdd,
    /// Atomic on the (single, unpipelined) FP multiply/divide/sqrt unit.
    FpLong,
    /// No execution: direct jumps resolve in the front end.
    Front,
    /// Serializing (syscall/break).
    Sys,
}

/// Where a source operand's value comes from.
#[derive(Clone, Copy)]
pub(crate) enum Dep {
    /// Value comes from the committed register state: always ready.
    Ready,
    /// Produced by the in-window instruction with this sequence number.
    InFlight(u64),
}

/// The memory half of a load/store entry.
#[derive(Clone, Copy, Default)]
pub(crate) struct MemState {
    /// Cycle the cache access started, if it has.
    pub(crate) started: Option<u64>,
    /// Cycle the loaded data is available to consumers.
    pub(crate) data_ready: Option<u64>,
    /// For stores: cycle the store *data* (rt) is fully available.
    pub(crate) store_data_ready: Option<u64>,
    /// The load issued past unknown older store addresses on the memory
    /// dependence predictor's say-so (pending violation check).
    pub(crate) dep_speculated: bool,
}

/// One in-flight instruction.
pub(crate) struct Entry {
    pub(crate) seq: u64,
    pub(crate) rec: TraceRecord,
    /// Earliest cycle any slice may issue (end of the front end).
    pub(crate) earliest_ex: u64,
    pub(crate) class: ExecClass,
    pub(crate) slice_class: SliceClass,
    pub(crate) deps: [Dep; 2],
    pub(crate) ndeps: usize,
    /// Issue cycle per slice (or the single issue event for atomic /
    /// simple-pipelined execution, stored in slot 0).
    pub(crate) issued: [Option<u64>; MAX_SLICES],
    /// Cycle each *result slice* becomes available to consumers.
    pub(crate) ready: [Option<u64>; MAX_SLICES],
    /// Memory access state (`Some` exactly for loads and stores); go
    /// through [`Entry::mem`] / [`Entry::mem_mut`].
    mem: Option<MemState>,
    /// For control: cycle the redirect (if any) is known.
    pub(crate) resolved_at: Option<u64>,
    pub(crate) mispredicted: bool,
    /// slt-family: results publish only after the top slice evaluates.
    pub(crate) late_result: bool,
    /// Wrong-path phantom (never commits; squashed at redirect).
    pub(crate) phantom: bool,
    /// Set once every slice (and memory) is finished.
    pub(crate) completed_at: Option<u64>,
    /// Sequence numbers parked on this entry's result: they re-enter the
    /// wakeup calendar when a result slice is scheduled (published).
    pub(crate) waiters: Waiters,
    /// Cached opcode predicates (decoded once at dispatch; these are on
    /// per-examination hot paths).
    is_ld: bool,
    is_st: bool,
}

impl Entry {
    /// Decode `rec` into a fresh window entry (nothing issued yet).
    pub(crate) fn new(
        seq: u64,
        rec: TraceRecord,
        earliest_ex: u64,
        deps: [Dep; 2],
        ndeps: usize,
        mispredicted: bool,
        phantom: bool,
    ) -> Entry {
        let op = rec.insn.op();
        let class = match op.class() {
            OpClass::MulDiv => ExecClass::MulDiv,
            OpClass::Fp => match op {
                Op::AddS | Op::SubS | Op::CvtSW | Op::CvtWS => ExecClass::FpAdd,
                _ => ExecClass::FpLong,
            },
            OpClass::Sys => ExecClass::Sys,
            OpClass::Jump => match op {
                Op::J | Op::Jal => ExecClass::Front,
                _ => ExecClass::IntSliced, // jr/jalr read a register
            },
            _ => ExecClass::IntSliced,
        };
        // beq/bne compare slices independently (equality); the
        // sign-testing branches carry-chain (subtract + sign).
        let slice_class = match op {
            Op::Beq | Op::Bne => SliceClass::Independent,
            _ => op.slice_class(),
        };
        // Set-less-than results depend on the *entire* comparison, so
        // no slice of the output exists before the top slice runs.
        let late_result = matches!(op, Op::Slt | Op::Sltu | Op::Slti | Op::Sltiu);
        let is_ld = op.is_load();
        let is_st = op.is_store();
        Entry {
            seq,
            rec,
            earliest_ex,
            class,
            slice_class,
            deps,
            ndeps,
            issued: [None; MAX_SLICES],
            ready: [None; MAX_SLICES],
            mem: (is_ld || is_st).then_some(MemState::default()),
            resolved_at: None,
            mispredicted,
            late_result,
            phantom,
            completed_at: None,
            waiters: Waiters::new(),
            is_ld,
            is_st,
        }
    }

    pub(crate) fn is_load(&self) -> bool {
        self.is_ld
    }
    pub(crate) fn is_store(&self) -> bool {
        self.is_st
    }
    pub(crate) fn is_mem(&self) -> bool {
        self.is_ld || self.is_st
    }

    /// The memory state of a load/store entry.
    ///
    /// Panics (naming the sequence number) when called on a non-memory
    /// instruction — every caller sits on a path that has already
    /// established `is_mem()`.
    #[track_caller]
    pub(crate) fn mem(&self) -> &MemState {
        match &self.mem {
            Some(m) => m,
            None => panic!("seq {}: memory state on a non-memory entry", self.seq),
        }
    }

    /// Mutable [`Entry::mem`].
    #[track_caller]
    pub(crate) fn mem_mut(&mut self) -> &mut MemState {
        match &mut self.mem {
            Some(m) => m,
            None => panic!("seq {}: memory state on a non-memory entry", self.seq),
        }
    }

    /// Result slice `k` availability (`None` = not yet known/scheduled).
    pub(crate) fn result_ready(&self, k: usize) -> Option<u64> {
        if self.is_load() {
            // Loads publish all slices when the data returns.
            self.mem.as_ref().and_then(|m| m.data_ready)
        } else {
            self.ready[k]
        }
    }

    /// Availability of the *full* result.
    pub(crate) fn result_ready_full(&self, nslices: usize) -> Option<u64> {
        let mut worst = 0u64;
        for k in 0..nslices {
            worst = worst.max(self.result_ready(k)?);
        }
        Some(worst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popk_isa::{Insn, Reg};

    fn rec(insn: Insn) -> TraceRecord {
        TraceRecord {
            pc: 0x400000,
            insn,
            src_vals: [0; 2],
            results: [0; 2],
            ea: 0,
            taken: false,
            next_pc: 0x400004,
        }
    }

    #[test]
    fn decode_classes() {
        let add = Entry::new(
            0,
            rec(Insn::r3(Op::Addu, Reg::gpr(8), Reg::gpr(9), Reg::gpr(10))),
            0,
            [Dep::Ready; 2],
            2,
            false,
            false,
        );
        assert_eq!(add.class, ExecClass::IntSliced);
        assert!(!add.is_mem());

        let lw = Entry::new(
            1,
            rec(Insn::load(Op::Lw, Reg::gpr(8), 0, Reg::gpr(9))),
            0,
            [Dep::Ready; 2],
            1,
            false,
            false,
        );
        assert!(lw.is_load() && lw.is_mem() && !lw.is_store());
        assert!(lw.mem().started.is_none());
    }

    #[test]
    #[should_panic(expected = "seq 7: memory state on a non-memory entry")]
    fn mem_accessor_names_the_seq() {
        let add = Entry::new(
            7,
            rec(Insn::r3(Op::Addu, Reg::gpr(8), Reg::gpr(9), Reg::gpr(10))),
            0,
            [Dep::Ready; 2],
            2,
            false,
            false,
        );
        let _ = add.mem();
    }

    #[test]
    fn loads_publish_slices_with_the_data() {
        let mut lw = Entry::new(
            0,
            rec(Insn::load(Op::Lw, Reg::gpr(8), 0, Reg::gpr(9))),
            0,
            [Dep::Ready; 2],
            1,
            false,
            false,
        );
        lw.ready = [Some(3), Some(4), None, None];
        assert_eq!(lw.result_ready(0), None, "load data not back yet");
        lw.mem_mut().data_ready = Some(9);
        assert_eq!(lw.result_ready(0), Some(9));
        assert_eq!(lw.result_ready(1), Some(9));
    }
}
