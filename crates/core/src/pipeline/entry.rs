//! Per-instruction decode products and the [`CycleSlot`] schedule
//! sentinel.
//!
//! The in-flight state itself lives in the struct-of-arrays
//! [`Window`](super::window::Window) store; this module keeps the types
//! the columns are made of: the execution-class decode run once at
//! dispatch, the dependence encoding, and the `u64`-sentinel cycle slot
//! that replaces `Option<u64>` in every hot column.

use popk_isa::{Op, OpClass, SliceClass};

/// Upper bound on operand slices (slice-by-4 is the deepest machine).
pub(crate) const MAX_SLICES: usize = 4;

/// A schedule slot: either a cycle number or unset, encoded in one
/// `u64` with `u64::MAX` as the unset sentinel (half the size of
/// `Option<u64>`, and the common "set and due" test is a single
/// compare).
///
/// Accessors debug-assert the encoding invariants: [`CycleSlot::at`]
/// rejects the sentinel as a cycle value, [`CycleSlot::value`] rejects
/// reading an unset slot.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub(crate) struct CycleSlot(u64);

impl CycleSlot {
    /// The unset slot.
    pub(crate) const UNSET: CycleSlot = CycleSlot(u64::MAX);

    /// A set slot stamped with cycle `c`.
    #[inline]
    pub(crate) fn at(c: u64) -> CycleSlot {
        debug_assert_ne!(c, u64::MAX, "cycle collides with the unset sentinel");
        CycleSlot(c)
    }

    #[inline]
    pub(crate) fn is_set(self) -> bool {
        self.0 != u64::MAX
    }

    #[inline]
    pub(crate) fn is_unset(self) -> bool {
        self.0 == u64::MAX
    }

    /// The slot as an `Option` (for paths that branch on both halves).
    #[inline]
    pub(crate) fn get(self) -> Option<u64> {
        self.is_set().then_some(self.0)
    }

    /// Set *and* due: the slot holds a cycle `<= cycle`. The sentinel
    /// makes this one compare — unset is never due.
    #[inline]
    pub(crate) fn done_by(self, cycle: u64) -> bool {
        self.0 <= cycle
    }

    /// Set *and* strictly earlier than `cycle` (the issued-last-cycle
    /// gate of the carry chain). One compare; unset is never earlier.
    #[inline]
    pub(crate) fn before(self, cycle: u64) -> bool {
        self.0 < cycle
    }

    /// The stamped cycle of a set slot.
    #[inline]
    pub(crate) fn value(self) -> u64 {
        debug_assert!(self.is_set(), "reading an unset CycleSlot");
        self.0
    }
}

/// How an instruction occupies execution resources.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum ExecClass {
    /// Sliced integer execution (ALU ops, agen, branch compares).
    IntSliced,
    /// Atomic on the (single, unpipelined) multiply/divide unit.
    MulDiv,
    /// Atomic on the FP adders (pipelined).
    FpAdd,
    /// Atomic on the (single, unpipelined) FP multiply/divide/sqrt unit.
    FpLong,
    /// No execution: direct jumps resolve in the front end.
    Front,
    /// Serializing (syscall/break).
    Sys,
}

/// Where a source operand's value comes from.
#[derive(Clone, Copy)]
pub(crate) enum Dep {
    /// Value comes from the committed register state: always ready.
    Ready,
    /// Produced by the in-window instruction with this sequence number.
    InFlight(u64),
}

/// The per-opcode predicates every hot path consults, decoded once at
/// dispatch and stored in the window's class/flag columns.
pub(crate) struct Decode {
    pub(crate) class: ExecClass,
    pub(crate) slice_class: SliceClass,
    /// slt-family: results publish only after the top slice evaluates.
    pub(crate) late_result: bool,
    pub(crate) is_load: bool,
    pub(crate) is_store: bool,
}

/// Decode `op` into its execution classes (the body of the old
/// `Entry::new`).
pub(crate) fn decode(op: Op) -> Decode {
    let class = match op.class() {
        OpClass::MulDiv => ExecClass::MulDiv,
        OpClass::Fp => match op {
            Op::AddS | Op::SubS | Op::CvtSW | Op::CvtWS => ExecClass::FpAdd,
            _ => ExecClass::FpLong,
        },
        OpClass::Sys => ExecClass::Sys,
        OpClass::Jump => match op {
            Op::J | Op::Jal => ExecClass::Front,
            _ => ExecClass::IntSliced, // jr/jalr read a register
        },
        _ => ExecClass::IntSliced,
    };
    // beq/bne compare slices independently (equality); the
    // sign-testing branches carry-chain (subtract + sign).
    let slice_class = match op {
        Op::Beq | Op::Bne => SliceClass::Independent,
        _ => op.slice_class(),
    };
    // Set-less-than results depend on the *entire* comparison, so
    // no slice of the output exists before the top slice runs.
    let late_result = matches!(op, Op::Slt | Op::Sltu | Op::Slti | Op::Sltiu);
    Decode {
        class,
        slice_class,
        late_result,
        is_load: op.is_load(),
        is_store: op.is_store(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_classes() {
        let add = decode(Op::Addu);
        assert_eq!(add.class, ExecClass::IntSliced);
        assert!(!add.is_load && !add.is_store);

        let lw = decode(Op::Lw);
        assert!(lw.is_load && !lw.is_store);
        assert_eq!(lw.class, ExecClass::IntSliced, "agen is sliced");

        assert_eq!(decode(Op::J).class, ExecClass::Front);
        assert_eq!(decode(Op::Jr).class, ExecClass::IntSliced);
        assert_eq!(decode(Op::Mult).class, ExecClass::MulDiv);
        assert_eq!(decode(Op::Syscall).class, ExecClass::Sys);
    }

    #[test]
    fn branches_compare_independently() {
        assert_eq!(decode(Op::Beq).slice_class, SliceClass::Independent);
        assert_eq!(decode(Op::Bne).slice_class, SliceClass::Independent);
        assert!(decode(Op::Slt).late_result);
        assert!(!decode(Op::Addu).late_result);
    }

    #[test]
    fn cycle_slot_sentinel_semantics() {
        let unset = CycleSlot::UNSET;
        assert!(unset.is_unset() && !unset.is_set());
        assert_eq!(unset.get(), None);
        assert!(!unset.done_by(u64::MAX - 1), "unset is never due");
        assert!(!unset.before(u64::MAX - 1), "unset is never earlier");

        let s = CycleSlot::at(7);
        assert_eq!(s.get(), Some(7));
        assert_eq!(s.value(), 7);
        assert!(s.done_by(7) && s.done_by(8) && !s.done_by(6));
        assert!(s.before(8) && !s.before(7));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "unset CycleSlot")]
    fn reading_unset_slot_asserts() {
        let _ = CycleSlot::UNSET.value();
    }
}
