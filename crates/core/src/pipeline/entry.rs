//! The [`CycleSlot`] schedule sentinel and dependence encoding.
//!
//! The in-flight state itself lives in the struct-of-arrays
//! [`Window`](super::window::Window) store; this module keeps the types
//! the columns are made of. The per-opcode execution-class decode that
//! used to live here is now the frontend's job: it arrives pre-computed
//! as a [`popk_trace::UopMeta`] via [`popk_trace::UopInsn::meta`], so
//! the timing core never inspects an opcode directly.

pub(crate) use popk_trace::ExecClass;

/// Upper bound on operand slices (slice-by-4 is the deepest machine).
pub(crate) const MAX_SLICES: usize = 4;

/// A schedule slot: either a cycle number or unset, encoded in one
/// `u64` with `u64::MAX` as the unset sentinel (half the size of
/// `Option<u64>`, and the common "set and due" test is a single
/// compare).
///
/// Accessors debug-assert the encoding invariants: [`CycleSlot::at`]
/// rejects the sentinel as a cycle value, [`CycleSlot::value`] rejects
/// reading an unset slot.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub(crate) struct CycleSlot(u64);

impl CycleSlot {
    /// The unset slot.
    pub(crate) const UNSET: CycleSlot = CycleSlot(u64::MAX);

    /// A set slot stamped with cycle `c`.
    #[inline]
    pub(crate) fn at(c: u64) -> CycleSlot {
        debug_assert_ne!(c, u64::MAX, "cycle collides with the unset sentinel");
        CycleSlot(c)
    }

    #[inline]
    pub(crate) fn is_set(self) -> bool {
        self.0 != u64::MAX
    }

    #[inline]
    pub(crate) fn is_unset(self) -> bool {
        self.0 == u64::MAX
    }

    /// The slot as an `Option` (for paths that branch on both halves).
    #[inline]
    pub(crate) fn get(self) -> Option<u64> {
        self.is_set().then_some(self.0)
    }

    /// Set *and* due: the slot holds a cycle `<= cycle`. The sentinel
    /// makes this one compare — unset is never due.
    #[inline]
    pub(crate) fn done_by(self, cycle: u64) -> bool {
        self.0 <= cycle
    }

    /// Set *and* strictly earlier than `cycle` (the issued-last-cycle
    /// gate of the carry chain). One compare; unset is never earlier.
    #[inline]
    pub(crate) fn before(self, cycle: u64) -> bool {
        self.0 < cycle
    }

    /// The stamped cycle of a set slot.
    #[inline]
    pub(crate) fn value(self) -> u64 {
        debug_assert!(self.is_set(), "reading an unset CycleSlot");
        self.0
    }
}

/// Where a source operand's value comes from.
#[derive(Clone, Copy)]
pub(crate) enum Dep {
    /// Value comes from the committed register state: always ready.
    Ready,
    /// Produced by the in-window instruction with this sequence number.
    InFlight(u64),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_slot_sentinel_semantics() {
        let unset = CycleSlot::UNSET;
        assert!(unset.is_unset() && !unset.is_set());
        assert_eq!(unset.get(), None);
        assert!(!unset.done_by(u64::MAX - 1), "unset is never due");
        assert!(!unset.before(u64::MAX - 1), "unset is never earlier");

        let s = CycleSlot::at(7);
        assert_eq!(s.get(), Some(7));
        assert_eq!(s.value(), 7);
        assert!(s.done_by(7) && s.done_by(8) && !s.done_by(6));
        assert!(s.before(8) && !s.before(7));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "unset CycleSlot")]
    fn reading_unset_slot_asserts() {
        let _ = CycleSlot::UNSET.value();
    }
}
