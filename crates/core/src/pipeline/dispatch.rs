//! The dispatch stage (Fig. 10 Decode1–RF2): enter fetched
//! instructions into the RUU window (Fig. 7) and LSQ, rename their
//! source operands against in-flight producers, and schedule the first
//! issue examination at the end of the front end.
//!
//! Dispatch is where an instruction's dependences are fixed: each
//! source register is resolved through the [`RenameTable`] to either
//! the committed register file ([`Dep::Ready`]) or an in-window
//! producer ([`Dep::InFlight`]). Everything opcode-specific comes from
//! the frontend's [`popk_trace::UopMeta`], decoded once here and cached
//! in the window columns. Syscalls serialize (they dispatch only into
//! an empty window); direct jumps resolve entirely in the front end and
//! complete at dispatch.

use super::entry::{CycleSlot, Dep, ExecClass};
use super::issue::IssueMark;
use super::{emit, Simulator};
use crate::events::{StallReason, TraceEvent, TraceSink};
use popk_trace::UopInsn;

/// Per-register producer tracking at dispatch (rename): maps each
/// architectural register to the youngest in-window instruction that
/// writes it, if any. Sized to the frontend ISA's register file.
pub(crate) struct RenameTable(Vec<Option<u64>>);

impl RenameTable {
    /// All `num_regs` registers map to the committed register file.
    pub(crate) fn new(num_regs: usize) -> RenameTable {
        RenameTable(vec![None; num_regs])
    }

    /// The youngest in-window producer of `r`, if any.
    pub(crate) fn producer_of(&self, r: u8) -> Option<u64> {
        self.0[r as usize]
    }

    /// `seq` becomes the youngest producer of `r`.
    pub(crate) fn set_producer(&mut self, r: u8, seq: u64) {
        self.0[r as usize] = Some(seq);
    }

    /// Clear `r`'s mapping if it still points at `seq` (commit: the
    /// value now lives in the register file).
    pub(crate) fn clear_if(&mut self, r: u8, seq: u64) {
        if self.0[r as usize] == Some(seq) {
            self.0[r as usize] = None;
        }
    }
}

impl<I: UopInsn, S: TraceSink<I>> Simulator<S, I> {
    pub(crate) fn dispatch(&mut self) {
        for _ in 0..self.cfg.width {
            let Some(&(fetch, rec, mispredicted, phantom)) = self.feed.front() else {
                return;
            };
            if self.cycle < fetch + self.cfg.dispatch_depth {
                return;
            }
            if self.window.len() >= self.cfg.ruu_size {
                self.stats.ruu_full_stalls += 1;
                emit!(self, TraceEvent::Stall(StallReason::RuuFull));
                return;
            }
            let meta = rec.insn.meta();
            let is_mem = meta.is_load || meta.is_store;
            if is_mem && self.lsq_occupancy >= self.cfg.lsq_size {
                self.stats.lsq_full_stalls += 1;
                emit!(self, TraceEvent::Stall(StallReason::LsqFull));
                return;
            }
            // Serialize syscalls: only dispatch into an empty window.
            if meta.class == ExecClass::Sys && !self.window.is_empty() && !phantom {
                return;
            }
            self.feed.pop();

            let seq = self.next_seq;
            self.next_seq += 1;

            let mut deps = [Dep::Ready; 2];
            let mut ndeps = 0;
            // The rename walk already enumerates the operand registers:
            // resolve the store-data slot (the last source position
            // naming the data register) here too, so the window needn't
            // re-derive it.
            let mut store_data_slot = 0u16;
            let store_data_reg = rec.insn.store_data_reg();
            for r in rec.insn.src_regs().iter() {
                deps[ndeps] = match self.rename.producer_of(r) {
                    Some(p) if r != 0 => Dep::InFlight(p),
                    _ => Dep::Ready,
                };
                if store_data_reg == Some(r) {
                    store_data_slot = ndeps as u16;
                }
                ndeps += 1;
            }
            let defs = rec.insn.dst_regs();
            for r in defs.iter() {
                self.rename.set_producer(r, seq);
            }

            if is_mem {
                self.lsq_occupancy += 1;
                if meta.is_store {
                    self.sched.push_store(seq);
                } else {
                    self.sched.push_pending_load(seq);
                }
            }
            emit!(
                self,
                TraceEvent::Dispatched {
                    seq,
                    pc: rec.pc,
                    insn: rec.insn,
                    fetch
                }
            );
            let earliest_ex = fetch + self.cfg.front_depth;
            let idx = self.window.push_back(
                seq,
                rec,
                meta,
                earliest_ex,
                deps,
                ndeps,
                store_data_slot,
                !defs.is_empty(),
                mispredicted,
                phantom,
            );
            if self.window.class(idx) == ExecClass::Front {
                // Direct jumps: the front end computes the target; the RA
                // result (jal) is available as soon as the entry exists.
                let resolved_at = fetch + self.cfg.dispatch_depth;
                self.window.set_resolved_at(idx, CycleSlot::at(resolved_at));
                self.window
                    .set_completed_at(idx, CycleSlot::at(earliest_ex));
                self.publish_all_slices(idx, resolved_at, IssueMark::None);
                if S::ENABLED {
                    emit!(
                        self,
                        TraceEvent::BranchResolved {
                            seq,
                            at: resolved_at,
                            early: false,
                            mispredicted,
                        }
                    );
                    emit!(
                        self,
                        TraceEvent::Completed {
                            seq,
                            at: earliest_ex
                        }
                    );
                }
            } else {
                // First examination at the end of the front end.
                self.wake_at(seq, earliest_ex);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::config::MachineConfig;
    use crate::pipeline::testutil::{independent_stream, run_cfg};

    #[test]
    fn tiny_window_reports_dispatch_stalls() {
        // A 4-entry RUU cannot hold the independent stream: dispatch
        // must back up and count the stalls, yet commit everything.
        let mut tiny = MachineConfig::ideal();
        tiny.ruu_size = 4;
        let small = run_cfg(&independent_stream(), &tiny);
        let big = run_cfg(&independent_stream(), &MachineConfig::ideal());
        assert!(small.ruu_full_stalls > 0, "no RUU-full stalls recorded");
        assert_eq!(small.committed, big.committed);
        assert!(small.cycles > big.cycles);
    }

    #[test]
    fn syscalls_serialize_against_the_window() {
        // The trailing syscall must wait for the divide to drain, so the
        // run is far longer than the handful of instructions committed.
        let src = r#"
            .text
            main:
                li r8, 99
                li r9, 7
                div r8, r9
                mflo r10
                li r2, 0
                syscall
        "#;
        let s = run_cfg(src, &MachineConfig::ideal());
        assert!(s.committed >= 6);
        assert!(
            s.cycles >= 20,
            "syscall serialization should expose the divide latency, cycles {}",
            s.cycles
        );
    }
}
