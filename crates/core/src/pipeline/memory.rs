//! The memory stage: start load accesses whose constraints have
//! cleared — disambiguation against older stores (Fig. 2), the L1D
//! access with optional partial tag matching (Fig. 4), sum-addressed
//! decode (§5.2), and memory-dependence prediction.
//!
//! Walks only the loads that have not started (in age order) rather
//! than the whole window; loads re-check their constraints every cycle,
//! so no wakeup bookkeeping is needed here. Which loads may pass
//! address-incomplete stores, and how much of the cache probe partial
//! address bits unlock, are decided by the configured
//! [`crate::policies::DisambigPolicy`] and
//! [`crate::policies::TagMatchPolicy`].

use super::{emit, Simulator};
use crate::config::{MachineConfig, PipelineKind};
use crate::events::{ReplayReason, TraceEvent, TraceSink};
use crate::policies::{ranges_overlap, ForwardDecision, MemAcc, StoreProbe};
use popk_cache::PartialOutcome;
use popk_trace::UopInsn;

/// Memory-dependence predictor: 2-bit confidence per load PC hash
/// (3 = confidently conflict-free). Used by `opts.mem_dep_predict`;
/// inert (never predicts) when the option is off.
pub(crate) struct MemDepPredictor {
    enabled: bool,
    table: Vec<u8>,
}

impl MemDepPredictor {
    pub(crate) fn new(cfg: &MachineConfig) -> MemDepPredictor {
        MemDepPredictor {
            enabled: cfg.kind == PipelineKind::BitSliced && cfg.opts.mem_dep_predict,
            // Initialized confident: loads rarely conflict (the MCB
            // assumption); violations train entries down quickly.
            table: vec![3; 1024],
        }
    }

    #[inline]
    fn slot(pc: u32) -> usize {
        (((pc >> 2) ^ (pc >> 12)) as usize) & 1023
    }

    /// May the load at `pc` proceed past address-unknown older stores?
    pub(crate) fn may_speculate(&self, pc: u32) -> bool {
        self.enabled && self.table[Self::slot(pc)] >= 2
    }

    /// A speculation went through cleanly: raise confidence.
    pub(crate) fn train_up(&mut self, pc: u32) {
        let t = &mut self.table[Self::slot(pc)];
        *t = (*t + 1).min(3);
    }

    /// A speculation violated an actual dependence: sticky conflict
    /// (MCB-style), silencing the slot until it re-trains.
    pub(crate) fn violated(&mut self, pc: u32) {
        self.table[Self::slot(pc)] = 0;
    }
}

impl<I: UopInsn, S: TraceSink<I>> Simulator<S, I> {
    /// Start load accesses whose constraints have cleared.
    pub(crate) fn memory_stage(&mut self) {
        let mut ports_used = 0u32;
        let mut any_started = false;
        // Detach the pending-load list so the loop can mutate the window
        // (dispatch refills the list later in the cycle, after this
        // stage runs, so it cannot grow underneath the loop).
        let mut pending = self.sched.take_pending_loads();
        for &seq in &pending {
            if ports_used >= self.cfg.mem_ports {
                break;
            }
            let Some(idx) = self.index_of(seq) else {
                continue;
            };
            debug_assert!(self.window.is_load(idx) && self.window.mem_started(idx).is_unset());
            let bit_sliced = self.cfg.kind == PipelineKind::BitSliced;
            // How many low address bits are known right now? The agen
            // produces them; sum-addressed decode (§5.2 → \[18\]) can read
            // them straight from the base-register slices.
            let agen_known = self.agen_slices_known(idx);
            let mut known_slices = agen_known;
            let mut via_sam = false;
            if bit_sliced
                && self.cfg.opts.sum_addressed
                && self.cycle >= self.window.earliest_ex(idx)
            {
                let sam = self.sam_slices_ready(idx);
                if sam > known_slices {
                    known_slices = sam;
                    via_sam = true;
                }
            }
            if known_slices == 0 {
                continue;
            }
            let known_bits = known_slices as u32 * self.slice_bits;
            // The LSQ compares computed (agen) address bits only.
            let dis_bits = agen_known as u32 * self.slice_bits;

            if !self.policies.tag.index_ready(
                &self.cfg.memory.l1d,
                known_bits,
                known_slices,
                self.nslices,
            ) {
                continue;
            }

            // Disambiguation against older stores; blocked loads may still
            // proceed on the dependence predictor's say-so (MCB-style).
            // The policies see only the access geometry (address bits
            // and width) of each memory op, never the instruction.
            let mut load_acc = MemAcc {
                ea: self.window.rec(idx).ea,
                bytes: self.window.mem_bytes(idx),
            };
            let load_pc = self.window.rec(idx).pc;
            // Fault site: the partial address bits the policies consult
            // (never the architectural record the window retires).
            if let Some(f) = self.fault.as_mut() {
                load_acc.ea = f.corrupt_operand(seq, self.cycle, load_acc.ea);
            }
            let decision = {
                let window = &self.window;
                let mut older = self.sched.older_stores_young_first(seq).map(|sseq| {
                    let si = window.index_of(sseq).expect("queued store is in-window");
                    StoreProbe {
                        seq: sseq,
                        acc: MemAcc {
                            ea: window.rec(si).ea,
                            bytes: window.mem_bytes(si),
                        },
                        known_bits: self.agen_slices_known_of(si) as u32 * self.slice_bits,
                    }
                });
                self.policies
                    .disambig
                    .disambiguate(load_acc, dis_bits, &mut older)
            };
            // Fault site: invert the partial-disambiguation outcome — a
            // cleared load is held back, a held load is released past
            // unresolved stores. (Forwarding decisions have their own
            // verify path and are corrupted via the operand site.)
            let cycle = self.cycle;
            let decision = if matches!(decision, None | Some(ForwardDecision::Access))
                && self
                    .fault
                    .as_mut()
                    .is_some_and(|f| f.flip_disambig(seq, cycle))
            {
                match decision {
                    Some(ForwardDecision::Access) => None,
                    _ => Some(ForwardDecision::Access),
                }
            } else {
                decision
            };
            let forward_from = match decision {
                Some(f) => f,
                None => {
                    let pc = load_pc;
                    if !self.mem_dep.may_speculate(pc) {
                        continue; // wait for the stores
                    }
                    // Oracle violation check: does any older in-window
                    // store actually overlap this load?
                    let conflict = self.sched.older_stores_old_first(seq).any(|s| {
                        let si = self.window.index_of(s).expect("queued store is in-window");
                        ranges_overlap(self.mem_acc_of(si), load_acc)
                    });
                    if conflict {
                        // Violation: squash the speculation, train the
                        // predictor down (sticky conflict, MCB-style),
                        // and wait for the normal path — the replay cost
                        // is charged when the load finally starts.
                        self.stats.mem_dep_violations += 1;
                        self.mem_dep.violated(pc);
                        self.window.set_dep_speculated(idx);
                        self.stats.load_replays += 1;
                        emit!(self, TraceEvent::MemDepViolation { seq });
                        emit!(
                            self,
                            TraceEvent::Replay {
                                seq,
                                reason: ReplayReason::MemDepViolation
                            }
                        );
                        continue;
                    }
                    self.stats.mem_dep_speculations += 1;
                    emit!(self, TraceEvent::MemDepSpeculated { seq });
                    self.mem_dep.train_up(pc);
                    ForwardDecision::Access
                }
            };
            // Did partial knowledge let this load pass older stores whose
            // full addresses (or the load's own) were still incomplete?
            if self.policies.disambig.exploits_partial_addresses()
                && matches!(forward_from, ForwardDecision::Access)
                && self.sched.older_stores_old_first(seq).any(|s| {
                    let si = self.window.index_of(s).expect("queued store is in-window");
                    self.agen_slices_known_of(si) < self.nslices
                })
            {
                self.stats.early_disambig_loads += 1;
                emit!(self, TraceEvent::EarlyDisambig { seq });
            }

            let addr = load_acc.ea;
            match forward_from {
                ForwardDecision::Forward(store_seq) => {
                    // Wait for the store's data, then a 1-cycle bypass.
                    let data_at = self
                        .window
                        .index_of(store_seq)
                        .and_then(|si| self.window.store_data_ready(si).get())
                        .map(|r| r.max(self.cycle) + 1);
                    if let Some(r) = data_at {
                        ports_used += 1;
                        any_started = true;
                        self.stats.store_forwards += 1;
                        self.window.set_mem_started(idx, self.cycle);
                        self.window.set_mem_data_ready(idx, r);
                        emit!(
                            self,
                            TraceEvent::StoreForward {
                                load_seq: seq,
                                store_seq
                            }
                        );
                        emit!(self, TraceEvent::MemStarted { seq });
                        emit!(self, TraceEvent::MemDone { seq, at: r });
                        self.wake_waiters(idx, r);
                        self.finish_if_done(idx);
                    }
                    continue;
                }
                ForwardDecision::SpecForward(store_seq) => {
                    let Some(si) = self.window.index_of(store_seq) else {
                        continue;
                    };
                    let Some(data_at) = self.window.store_data_ready(si).get() else {
                        continue; // store data not ready: keep waiting
                    };
                    ports_used += 1;
                    any_started = true;
                    let correct = crate::policies::store_covers_load(self.mem_acc_of(si), load_acc);
                    let store_full = self.full_agen_time_of(si);
                    if correct {
                        // Verification (when both agens finish) confirms.
                        self.stats.spec_forwards += 1;
                        let r = data_at.max(self.cycle) + 1;
                        self.window.set_mem_started(idx, self.cycle);
                        self.window.set_mem_data_ready(idx, r);
                        emit!(
                            self,
                            TraceEvent::SpecForward {
                                load_seq: seq,
                                store_seq,
                                ok: true
                            }
                        );
                        emit!(self, TraceEvent::MemStarted { seq });
                        emit!(self, TraceEvent::MemDone { seq, at: r });
                        self.wake_waiters(idx, r);
                    } else {
                        // Refuted at verification: replay via the cache
                        // after both full addresses are known.
                        self.stats.spec_forwards += 1;
                        self.stats.spec_forward_wrong += 1;
                        self.stats.load_replays += 1;
                        let verify = self
                            .full_agen_time(idx)
                            .unwrap_or(self.cycle)
                            .max(store_full.unwrap_or(self.cycle));
                        self.stats.l1d_accesses += 1;
                        let access = self.memory.access_data(addr);
                        if access.l1_hit {
                            self.stats.l1d_hits += 1;
                        }
                        let r = verify.max(self.cycle) + 1 + access.latency as u64;
                        self.window.set_mem_started(idx, self.cycle);
                        self.window.set_mem_data_ready(idx, r);
                        emit!(
                            self,
                            TraceEvent::SpecForward {
                                load_seq: seq,
                                store_seq,
                                ok: false
                            }
                        );
                        emit!(
                            self,
                            TraceEvent::Replay {
                                seq,
                                reason: ReplayReason::SpecForwardWrong
                            }
                        );
                        emit!(self, TraceEvent::MemStarted { seq });
                        emit!(self, TraceEvent::MemDone { seq, at: r });
                        self.wake_waiters(idx, r);
                    }
                    self.finish_if_done(idx);
                    continue;
                }
                ForwardDecision::Access => {}
            }
            ports_used += 1;
            any_started = true;
            if via_sam && agen_known < known_slices {
                self.stats.sam_starts += 1;
                emit!(self, TraceEvent::SamStart { seq });
            }

            // Probe (for partial-tag classification) then access. The
            // index may come from the SAM decoder, but *tag* bits exist
            // only once the agen has computed them — with none available
            // the probe degenerates to pure MRU way prediction.
            self.stats.l1d_accesses += 1;
            let probe = self
                .policies
                .tag
                .probe_tag_bits(&self.cfg.memory.l1d, dis_bits, known_bits)
                .map(|tag_bits| self.memory.l1d().partial_probe(addr, tag_bits));
            // Fault site: corrupt the partial tag compare, degrading a
            // correct way speculation into a mispredict the Fig. 4
            // verify-next-cycle path must absorb.
            let probe = match (probe, self.fault.as_mut()) {
                (Some(outcome), Some(f)) => Some(f.corrupt_tag(seq, cycle, outcome)),
                (p, _) => p,
            };
            let access = self.memory.access_data(addr);
            if access.l1_hit {
                self.stats.l1d_hits += 1;
            }
            let full_addr_at = self.full_agen_time(idx);

            let data_ready = if let Some(outcome) = probe {
                self.stats.partial_tag_accesses += 1;
                emit!(self, TraceEvent::PartialTagProbe { seq, outcome });
                match outcome {
                    PartialOutcome::ZeroMatch => {
                        // Early, non-speculative miss: start the L2 access
                        // now.
                        self.stats.partial_tag_early_miss += 1;
                        self.cycle + access.latency as u64
                    }
                    PartialOutcome::SingleHit { .. }
                    | PartialOutcome::MultiMatch {
                        mru_correct: true, ..
                    } => {
                        // Correct way speculation: data after the L1
                        // latency, verified in the background.
                        self.cycle + self.cfg.memory.l1_latency as u64
                    }
                    PartialOutcome::SingleMiss
                    | PartialOutcome::MultiMatch {
                        mru_correct: false, ..
                    } => {
                        // Way mispredict: verification at full-address time
                        // kills the speculation; the access restarts.
                        self.stats.way_mispredicts += 1;
                        self.stats.load_replays += 1;
                        emit!(
                            self,
                            TraceEvent::Replay {
                                seq,
                                reason: ReplayReason::WayMispredict
                            }
                        );
                        let restart = full_addr_at.unwrap_or(self.cycle) + 1;
                        restart.max(self.cycle) + access.latency as u64
                    }
                }
            } else {
                if !access.l1_hit {
                    self.stats.load_replays += 1;
                    emit!(
                        self,
                        TraceEvent::Replay {
                            seq,
                            reason: ReplayReason::CacheMiss
                        }
                    );
                }
                self.cycle + access.latency as u64
            };

            self.window.set_mem_started(idx, self.cycle);
            // A load that earlier mis-speculated past a conflicting store
            // pays a replay bubble on its eventual (correct) attempt.
            let at = data_ready + 2 * self.window.dep_speculated(idx) as u64;
            self.window.set_mem_data_ready(idx, at);
            emit!(self, TraceEvent::MemStarted { seq });
            emit!(self, TraceEvent::MemDone { seq, at });
            self.wake_waiters(idx, at);
            self.finish_if_done(idx);
        }
        if any_started {
            let window = &self.window;
            pending.retain(|&s| {
                window
                    .index_of(s)
                    .is_some_and(|i| window.mem_started(i).is_unset())
            });
        }
        self.sched.put_pending_loads(pending);
    }

    /// The access geometry of memory entry `idx` (for the policies).
    pub(crate) fn mem_acc_of(&self, idx: usize) -> MemAcc {
        MemAcc {
            ea: self.window.rec(idx).ea,
            bytes: self.window.mem_bytes(idx),
        }
    }

    /// Number of contiguous low source slices available for sum-addressed
    /// decode (loads have a single base-register source).
    fn sam_slices_ready(&self, idx: usize) -> usize {
        let mut n = 0;
        for k in 0..self.nslices {
            if self.sources_ready_at_slice(idx, k) {
                n += 1;
            } else {
                break;
            }
        }
        n
    }

    /// Number of contiguous low agen slices of entry `idx` whose results
    /// are available this cycle.
    fn agen_slices_known(&self, idx: usize) -> usize {
        self.agen_slices_known_of(idx)
    }

    pub(crate) fn agen_slices_known_of(&self, idx: usize) -> usize {
        let mut n = 0;
        for k in 0..self.nslices {
            if self.window.ready(idx, k).done_by(self.cycle) {
                n += 1;
            } else {
                break;
            }
        }
        n
    }

    /// Cycle the full address is known.
    fn full_agen_time(&self, idx: usize) -> Option<u64> {
        self.full_agen_time_of(idx)
    }

    fn full_agen_time_of(&self, idx: usize) -> Option<u64> {
        let mut t = 0u64;
        for k in 0..self.nslices {
            t = t.max(self.window.ready(idx, k).get()?);
        }
        Some(t)
    }
}

#[cfg(test)]
mod tests {
    use crate::config::{MachineConfig, Optimizations};
    use crate::pipeline::testutil::run_cfg;
    use crate::sim::Simulator;
    use popk_isa::asm::assemble;

    #[test]
    fn loads_wait_for_older_store_addresses() {
        // A store whose address depends on a long op, followed by an
        // unrelated load: conventionally the load waits; with early
        // disambiguation it can pass once low slices mismatch.
        let src = r#"
            .text
            main:
                li r16, 0x10000000
                li r17, 0x10008000
                li r8, 300
            loop:
                mult r8, r8
                mflo r9
                andi r9, r9, 0xffc
                addu r9, r9, r16
                sw r8, 0(r9)         # store: address slow (behind mult)
                lw r10, 0(r17)       # load at a clearly different address
                addiu r8, r8, -1
                bne r8, r0, loop
                li r2, 0
                syscall
        "#;
        let conv = run_cfg(src, &MachineConfig::slice2(Optimizations::level(3)));
        let early = run_cfg(src, &MachineConfig::slice2(Optimizations::level(4)));
        assert!(
            early.cycles < conv.cycles,
            "early disambiguation should shorten load wait: {} vs {}",
            early.cycles,
            conv.cycles
        );
    }

    #[test]
    fn store_forwarding_works() {
        // The divide keeps commit blocked, so the store must sit in the
        // window while the load needs its data: only forwarding can
        // satisfy the load.
        let src = r#"
            .text
            main:
                li r16, 0x10000000
                li r17, 3
                li r8, 200
            loop:
                div r8, r17          # 20-cycle commit blocker
                sw r8, 0(r16)
                lw r9, 0(r16)        # must forward from the store
                addiu r8, r8, -1
                bne r8, r0, loop
                li r2, 0
                syscall
        "#;
        let stats = run_cfg(src, &MachineConfig::ideal());
        assert!(
            stats.store_forwards >= 100,
            "forwards: {}",
            stats.store_forwards
        );
    }

    #[test]
    fn partial_tag_speculation_counts() {
        let src = r#"
            .text
            main:
                li r16, 0x10000000
                li r8, 500
            loop:
                andi r9, r8, 255
                sll r9, r9, 2
                addu r9, r9, r16
                lw r10, 0(r9)
                addiu r8, r8, -1
                bne r8, r0, loop
                li r2, 0
                syscall
        "#;
        let stats = run_cfg(src, &MachineConfig::slice2_full());
        assert!(stats.partial_tag_accesses > 0);
        let base = run_cfg(src, &MachineConfig::slice2(Optimizations::level(4)));
        assert!(
            stats.cycles <= base.cycles,
            "partial tagging should not slow down: {} vs {}",
            stats.cycles,
            base.cycles
        );
    }

    #[test]
    fn spec_forward_speculates_on_unique_partial_match() {
        // The store's address resolves slowly (behind a divide) but always
        // matches the load: with spec_forward the load's data arrives from
        // the store before the addresses are provably equal.
        let src = r#"
            .text
            main:
                li r16, 0x10000000
                li r17, 7
                li r8, 300
            loop:
                div r8, r17
                mflo r9
                andi r9, r9, 0
                addu r9, r9, r16     # always r16, but slow to compute
                sw r8, 0(r9)
                lw r10, 0(r16)       # same address every iteration
                addiu r8, r8, -1
                bgtz r8, loop
                li r2, 0
                syscall
        "#;
        let base = MachineConfig::slice2(Optimizations::level(5));
        let mut spec_cfg = base;
        spec_cfg.opts.spec_forward = true;
        let without = run_cfg(src, &base);
        let with = run_cfg(src, &spec_cfg);
        assert!(
            with.spec_forwards > 100,
            "spec forwards: {}",
            with.spec_forwards
        );
        assert_eq!(with.spec_forward_wrong, 0, "addresses always match here");
        assert!(
            with.cycles < without.cycles,
            "speculative forwarding should cut the wait: {} vs {}",
            with.cycles,
            without.cycles
        );
    }

    #[test]
    fn spec_forward_wrong_paths_replay() {
        // The store alternates between two addresses sharing low bits but
        // differing at bit 16; the load always reads the first. Unique
        // partial matches sometimes verify wrong.
        let src = r#"
            .text
            main:
                li r16, 0x10000000
                li r17, 0x10010000   # same low 16 bits as r16
                li r18, 0x100
                li r8, 300
            loop:
                div r8, r18          # slow down the select
                mflo r9
                andi r9, r8, 1
                move r10, r16
                beq r9, r0, even
                move r10, r17
            even:
                sw r8, 0(r10)        # alternating store address
                lw r11, 0(r16)
                addiu r8, r8, -1
                bgtz r8, loop
                li r2, 0
                syscall
        "#;
        let mut cfg = MachineConfig::slice2(Optimizations::level(5));
        cfg.opts.spec_forward = true;
        let s = run_cfg(src, &cfg);
        assert!(s.spec_forwards > 0);
        assert!(s.spec_forward_wrong > 0, "some speculations must fail");
        assert!(s.spec_forward_wrong < s.spec_forwards);
    }

    #[test]
    fn mem_dep_prediction_passes_unknown_stores() {
        // The store address computes slowly (behind a divide); the load
        // never conflicts. Conventionally the load waits every iteration;
        // the dependence predictor lets it go immediately.
        let src = r#"
            .text
            main:
                li r16, 0x10000000
                li r17, 0x10008000
                li r8, 300
            loop:
                # Slow store address: a 10-op dependent chain.
                addu r9, r8, r16
                xor  r9, r9, r8
                addu r9, r9, r8
                xor  r9, r9, r8
                addu r9, r9, r8
                xor  r9, r9, r8
                addu r9, r9, r8
                xor  r9, r9, r8
                andi r9, r9, 0xfc
                addu r9, r9, r16
                sw r8, 0(r9)         # slow, never-conflicting store
                lw r10, 0(r17)       # independent load, conventionally blocked
                # Long dependent work fed by the load.
                addu r11, r10, r8
                xor  r11, r11, r10
                addu r11, r11, r10
                xor  r11, r11, r10
                addu r11, r11, r10
                xor  r11, r11, r10
                addu r11, r11, r10
                xor  r11, r11, r10
                addu r11, r11, r10
                xor  r11, r11, r10
                sw r11, 4(r17)
                addiu r8, r8, -1
                bgtz r8, loop
                li r2, 0
                syscall
        "#;
        let base = MachineConfig::slice2(Optimizations::all());
        let mut md = base;
        md.opts.mem_dep_predict = true;
        let without = run_cfg(src, &base);
        let with = run_cfg(src, &md);
        assert!(
            with.mem_dep_speculations > 100,
            "specs: {}",
            with.mem_dep_speculations
        );
        assert_eq!(with.mem_dep_violations, 0);
        assert!(
            with.cycles < without.cycles,
            "prediction should unblock the load: {} vs {}",
            with.cycles,
            without.cycles
        );
    }

    #[test]
    fn mem_dep_violations_train_the_predictor_down() {
        // The load always conflicts with the slow store: the predictor
        // speculates once, violates, and goes quiet.
        let src = r#"
            .text
            main:
                li r16, 0x10000000
                li r18, 5
                li r8, 300
            loop:
                div r8, r18
                mflo r9
                andi r9, r9, 0
                addu r9, r9, r16
                sw r8, 0(r9)         # always 0x10000000, slowly
                lw r10, 0(r16)       # always conflicts
                addiu r8, r8, -1
                bgtz r8, loop
                li r2, 0
                syscall
        "#;
        let mut md = MachineConfig::slice2(Optimizations::all());
        md.opts.mem_dep_predict = true;
        let s = run_cfg(src, &md);
        assert!(s.mem_dep_violations >= 1);
        assert!(
            s.mem_dep_violations <= 2,
            "sticky training must silence the slot: {}",
            s.mem_dep_violations
        );
        assert_eq!(s.committed, run_cfg(src, &MachineConfig::ideal()).committed);
    }

    #[test]
    fn sum_addressed_shortens_load_to_load_chains() {
        // The classic SAM win \[18\]: in a pointer chase, the next access's
        // index is ready the moment the previous load's data arrives — no
        // agen add on the critical path.
        let src = r#"
            .data
            ptr: .word 0x10000000    # self-loop: mem[p] == p
            .text
            main:
                li r17, 0x10000000
                li r8, 400
            loop:
                lw r17, 0(r17)
                lw r17, 0(r17)
                lw r17, 0(r17)
                lw r17, 0(r17)
                addiu r8, r8, -1
                bgtz r8, loop
                li r2, 0
                syscall
        "#;
        let base = MachineConfig::slice4(Optimizations::all());
        let mut sam = base;
        sam.opts.sum_addressed = true;
        let without = run_cfg(src, &base);
        let with = run_cfg(src, &sam);
        assert!(with.sam_starts > 1000, "sam starts: {}", with.sam_starts);
        assert!(
            with.cycles < without.cycles,
            "SAM should shorten the chase: {} vs {}",
            with.cycles,
            without.cycles
        );
        assert_eq!(with.committed, without.committed);
    }

    #[test]
    fn loads_timeline_records_memory_events() {
        let src = r#"
            .text
            main:
                li r8, 0x10000000
                lw r9, 0(r8)
                addu r10, r9, r9
                li r2, 0
                syscall
        "#;
        let p = assemble(src).unwrap();
        let mut sim = Simulator::new(&MachineConfig::slice2_full());
        let (_, timings) = sim.run_timeline(&p, 1_000, 16);
        let lw = timings.iter().find(|t| t.disasm.starts_with("lw")).unwrap();
        let (start, done) = (lw.mem_start.unwrap(), lw.mem_done.unwrap());
        assert!(start < done);
        // Cold L1+L2 miss: the data takes the full memory round trip.
        assert!(done - start >= 100, "cold miss latency {start}..{done}");
        // The consumer cannot complete before the data arrives.
        let dep = timings
            .iter()
            .find(|t| t.disasm.starts_with("addu r10"))
            .unwrap();
        assert!(dep.completed > done);
    }
}
