//! The staged pipeline: one module per stage of the Fig. 10 machine,
//! plus the shared window/scheduling state they communicate through.
//!
//! Module map (each stage documents its paper figure in detail):
//!
//! * [`frontend`] — fetch, I-cache probing, branch prediction, redirect
//!   stalls (Fig. 10 Fetch1–Fetch2).
//! * [`dispatch`] — rename, window/LSQ allocation, serialization
//!   (Fig. 10 Decode1–RF2; Fig. 7's RUU).
//! * [`issue`] — the event-driven wakeup/select loop over window
//!   entries (Fig. 7).
//! * [`execute`] — slice-level issue rules (Fig. 8), the atomic
//!   functional units, branch resolution (Fig. 6), narrow-operand
//!   publication.
//! * [`memory`] — load/store disambiguation (Fig. 2), the L1D access
//!   with optional partial tag matching (Fig. 4), sum-addressed decode,
//!   memory-dependence prediction.
//! * [`commit`] — in-order retirement and wrong-path squash/recovery.
//! * [`entry`] — per-opcode decode products and the [`entry::CycleSlot`]
//!   schedule sentinel.
//! * [`window`] — the struct-of-arrays window store the stages advance
//!   (hot columns per field, cold trace records in a side column).
//! * [`sched`] — the calendar-wheel wakeup schedule and age-ordered
//!   LSQ bookkeeping (private to its narrow API).
//!
//! The three paper techniques the stages *vary on* live in
//! [`crate::policies`] and are selected once at construction; the
//! stages hold the mechanism only. The driver loop itself is in
//! [`crate::sim`].

pub(crate) mod commit;
pub(crate) mod dispatch;
pub(crate) mod entry;
pub(crate) mod execute;
pub(crate) mod frontend;
pub(crate) mod issue;
pub(crate) mod memory;
pub(crate) mod sched;
pub(crate) mod window;

use crate::config::MachineConfig;
use crate::events::{NullTrace, TraceSink};
use crate::policies::PolicySet;
use crate::stats::SimStats;
use dispatch::RenameTable;
use execute::FuncUnits;
use frontend::FrontendFeed;
use memory::MemDepPredictor;
use popk_bpred::FrontEnd;
use popk_cache::Hierarchy;
use popk_isa::Insn;
use popk_trace::UopInsn;
use sched::{SchedBufs, Scheduler};
use window::{Window, WindowBufs};

/// Reusable simulator allocations: the window's struct-of-arrays
/// columns (waiter lists included) and the scheduler's calendar-wheel /
/// LSQ buffers.
///
/// A simulator built through [`Simulator::with_sink_in`] (or the
/// [`crate::sim::try_simulate_in`] entry point) takes these allocations
/// instead of making fresh ones, and hands them back through
/// [`Simulator::reclaim`] when the run finishes — so a sweep driver
/// running thousands of rows on one thread allocates the hot state
/// once. A `Scratch` carries no simulation state across runs: every
/// column is reset on reuse.
pub struct Scratch<I = Insn> {
    pub(crate) window: WindowBufs<I>,
    pub(crate) sched: SchedBufs,
}

// Manual impl: a derived one would demand `I: Default` for no reason.
impl<I> Default for Scratch<I> {
    fn default() -> Scratch<I> {
        Scratch {
            window: WindowBufs::default(),
            sched: SchedBufs::default(),
        }
    }
}

impl<I> Scratch<I> {
    /// Empty scratch (allocations grow on first use).
    pub fn new() -> Scratch<I> {
        Scratch::default()
    }
}

/// Emit a trace event, stamped with the current cycle. A macro rather
/// than a method so it can run while a window entry is mutably borrowed:
/// `self.sink` and `self.cycle` are fields disjoint from `self.window`,
/// and the whole emission folds away when `S::ENABLED` is false.
macro_rules! emit {
    ($self:ident, $ev:expr) => {
        if S::ENABLED {
            let cycle = $self.cycle;
            $self.sink.event(cycle, &$ev);
        }
    };
}
pub(crate) use emit;

/// The timing simulator. Use [`crate::sim::simulate`] for the one-call
/// entry point.
///
/// Generic over a [`TraceSink`] that observes every pipeline event; the
/// default [`NullTrace`] compiles all emission out, so `Simulator::new`
/// is exactly the untraced machine. Use [`Simulator::with_sink`] to
/// attach a recorder (e.g. [`crate::VecTrace`] or a
/// [`crate::timeline::TimelineBuilder`]).
///
/// Also generic over the frontend's instruction type `I` (default: the
/// native PISA [`Insn`]): the stages consume only the ISA-neutral
/// [`popk_trace::Uop`] boundary, so any [`popk_trace::Frontend`] can
/// drive the same timing core.
pub struct Simulator<S = NullTrace, I = Insn> {
    pub(crate) cfg: MachineConfig,
    pub(crate) nslices: usize,
    pub(crate) slice_bits: u32,
    pub(crate) frontend: FrontEnd,
    pub(crate) memory: Hierarchy,
    pub(crate) stats: SimStats,

    pub(crate) cycle: u64,
    pub(crate) next_seq: u64,
    pub(crate) window: Window<I>,
    pub(crate) lsq_occupancy: usize,
    /// Fetched-but-not-dispatched instructions and the fetch stall state
    /// (owned by the [`frontend`] stage).
    pub(crate) feed: FrontendFeed<I>,
    /// Per-register producer tracking at dispatch (rename).
    pub(crate) rename: RenameTable,
    /// Non-pipelined functional-unit reservations.
    pub(crate) units: FuncUnits,
    /// Memory-dependence predictor (used by `opts.mem_dep_predict`).
    pub(crate) mem_dep: MemDepPredictor,
    /// The wakeup calendar and age-ordered store/load bookkeeping.
    pub(crate) sched: Scheduler,
    /// The partial-operand technique implementations this configuration
    /// selected (see [`crate::policies`]).
    pub(crate) policies: PolicySet,
    /// The trace-event consumer (zero-sized and inert by default).
    pub(crate) sink: S,
    /// Commit-time lockstep checker (built by `try_run` when
    /// `cfg.oracle` is set; `None` costs one branch per retire).
    pub(crate) oracle: Option<crate::oracle::Oracle<I>>,
    /// Commit-time checkpoint watch (attached via
    /// [`Simulator::set_checkpoints`]; `None` in normal runs).
    pub(crate) ckpt: Option<crate::checkpoint::CommitWatch<I>>,
    /// Deterministic fault injector (attached via
    /// [`Simulator::set_fault_plan`]; `None` in normal runs).
    pub(crate) fault: Option<crate::fault::FaultPlan>,
    /// Error raised inside a stage this cycle (the run loop surfaces it;
    /// stages have `()` signatures).
    pub(crate) error: Option<crate::error::SimError>,
    /// Cycle of the most recent retirement, for the no-progress watchdog.
    pub(crate) last_commit_cycle: u64,
    /// Cooperative cancellation flag (attached via
    /// [`Simulator::set_cancel`]; `None` in normal runs). The run loop
    /// polls it every 1024 cycles and returns
    /// [`SimError::Canceled`](crate::SimError) when set.
    pub(crate) cancel: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
    /// Debug-build datapath check: sliced ALU ops completing in a cycle
    /// are collected as lanes and cross-checked through the batched
    /// slice kernels against the traced results (release builds carry
    /// no values — the fields and the check compile out).
    #[cfg(debug_assertions)]
    pub(crate) dbg_batch: popk_slice::SliceBatch,
    /// Expected (traced) result per collected lane.
    #[cfg(debug_assertions)]
    pub(crate) dbg_batch_expect: Vec<u32>,
    /// Reused output buffer for the batch check.
    #[cfg(debug_assertions)]
    pub(crate) dbg_batch_out: Vec<u32>,
}

impl<I: UopInsn, S: TraceSink<I>> Simulator<S, I> {
    /// Build a simulator that reports pipeline events to `sink`.
    pub fn with_sink(cfg: &MachineConfig, sink: S) -> Simulator<S, I> {
        Simulator::with_sink_in(cfg, sink, &mut Scratch::new())
    }

    /// Like [`Simulator::with_sink`], taking the window and scheduler
    /// allocations from `scratch` (left empty) instead of allocating
    /// fresh ones. Pair with [`Simulator::reclaim`] to hand them back
    /// after the run.
    pub fn with_sink_in(cfg: &MachineConfig, sink: S, scratch: &mut Scratch<I>) -> Simulator<S, I> {
        let nslices = cfg.slice_count();
        Simulator {
            cfg: *cfg,
            nslices,
            slice_bits: 32 / nslices as u32,
            frontend: FrontEnd::new(&cfg.frontend),
            memory: Hierarchy::new(cfg.memory),
            stats: SimStats::default(),
            cycle: 0,
            next_seq: 0,
            window: Window::new(cfg.ruu_size, std::mem::take(&mut scratch.window)),
            lsq_occupancy: 0,
            feed: FrontendFeed::new(cfg.width),
            rename: RenameTable::new(I::NUM_REGS),
            units: FuncUnits::default(),
            mem_dep: MemDepPredictor::new(cfg),
            sched: Scheduler::new_in(
                cfg.ruu_size,
                cfg.lsq_size,
                std::mem::take(&mut scratch.sched),
            ),
            policies: PolicySet::from_config(cfg),
            sink,
            oracle: None,
            ckpt: None,
            fault: None,
            error: None,
            last_commit_cycle: 0,
            cancel: None,
            #[cfg(debug_assertions)]
            dbg_batch: popk_slice::SliceBatch::new(cfg.slicing),
            #[cfg(debug_assertions)]
            dbg_batch_expect: Vec::new(),
            #[cfg(debug_assertions)]
            dbg_batch_out: Vec::new(),
        }
    }

    /// Consume the simulator, returning its reusable allocations to
    /// `scratch` for the next run.
    pub fn reclaim(self, scratch: &mut Scratch<I>) {
        scratch.window = self.window.into_bufs();
        scratch.sched = self.sched.into_bufs();
    }

    /// Attach a deterministic [`FaultPlan`](crate::FaultPlan): subsequent
    /// cycles inject faults at its sites. Used by the fault-injection
    /// suite; never set in normal runs.
    pub fn set_fault_plan(&mut self, plan: crate::fault::FaultPlan) {
        self.fault = Some(plan);
    }

    /// Attach a cooperative cancellation flag. Setting `flag` from
    /// another thread makes [`try_run`](Simulator::try_run) stop within
    /// ~1024 cycles and return
    /// [`SimError::Canceled`](crate::SimError::Canceled). Has no effect
    /// on results when the flag is never raised: the poll touches no
    /// architectural or timing state.
    pub fn set_cancel(&mut self, flag: std::sync::Arc<std::sync::atomic::AtomicBool>) {
        self.cancel = Some(flag);
    }

    /// Attach checkpointed execution per `plan`, sourcing snapshots
    /// from `frontend`'s [`popk_trace::CheckpointSource`]. Fails before
    /// any cycle is simulated if the frontend cannot checkpoint or the
    /// plan resumes from a checkpoint of a different run identity.
    pub fn set_checkpoints<F>(
        &mut self,
        frontend: &F,
        plan: crate::checkpoint::CheckpointPlan,
    ) -> Result<(), crate::checkpoint::CheckpointError>
    where
        F: popk_trace::Frontend<I>,
    {
        self.ckpt = Some(crate::checkpoint::CommitWatch::from_plan(frontend, plan)?);
        Ok(())
    }

    /// Injection counts of the attached fault plan (all-zero when none).
    pub fn fault_log(&self) -> crate::fault::FaultLog {
        self.fault.map(|p| p.log()).unwrap_or_default()
    }

    /// Retirements the commit-time oracle has verified (0 unless
    /// `cfg.oracle` was set).
    pub fn oracle_checks(&self) -> u64 {
        self.oracle.as_ref().map_or(0, |o| o.checks())
    }

    /// The [`DeadlockSnapshot`](crate::DeadlockSnapshot) the watchdog
    /// attaches to [`SimError::Deadlock`](crate::SimError).
    pub(crate) fn deadlock_snapshot(&self) -> crate::error::DeadlockSnapshot {
        crate::error::DeadlockSnapshot {
            cycle: self.cycle,
            last_commit_cycle: self.last_commit_cycle,
            committed: self.stats.committed,
            window_len: self.window.len(),
            lsq_occupancy: self.lsq_occupancy,
            feed_len: self.feed.len(),
            head: (0..self.window.len().min(4))
                .map(|i| {
                    format!(
                        "seq {} pc {:#010x} {}{}",
                        self.window.seq(i),
                        self.window.rec(i).pc,
                        self.window.rec(i).insn,
                        if self.window.phantom(i) {
                            " (phantom)"
                        } else {
                            ""
                        }
                    )
                })
                .collect(),
        }
    }

    /// Immutable access to the attached sink.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Consume the simulator and return the sink (with whatever it
    /// recorded).
    pub fn into_sink(self) -> S {
        self.sink
    }

    /// The statistics accumulated so far (final after
    /// [`Simulator::run`](crate::sim)).
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Snapshot every counter — simulator, front end, and cache
    /// hierarchy — into a named [`crate::StatsRegistry`].
    pub fn registry(&self) -> crate::StatsRegistry {
        let mut r = crate::StatsRegistry::from_sim(&self.stats);
        r.add_frontend(self.frontend.stats());
        r.add_cache("l1i", self.memory.l1i().stats());
        r.add_cache("l1d", self.memory.l1d().stats());
        r.add_cache("l2", self.memory.l2().stats());
        r
    }

    /// O(1) window position of `seq` (seqs are contiguous in the window).
    #[inline]
    pub(crate) fn index_of(&self, seq: u64) -> Option<usize> {
        self.window.index_of(seq)
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared assembly kernels and runners for the per-stage tests.

    use crate::config::MachineConfig;
    use crate::sim::simulate;
    use crate::stats::SimStats;
    use popk_isa::asm::assemble;

    pub(crate) fn run_cfg(src: &str, cfg: &MachineConfig) -> SimStats {
        let p = assemble(src).unwrap();
        simulate(&p, cfg, 1_000_000)
    }

    /// A loop of dependent adds isolates dependency-edge latency (looped
    /// so the I-cache warms up and the branch trains).
    pub(crate) fn dependent_chain() -> String {
        let mut s = String::from(".text\nmain:\n  li r8, 1\n  li r20, 300\nloop:\n");
        for _ in 0..32 {
            s.push_str("  addu r8, r8, r8\n");
        }
        s.push_str("  addiu r20, r20, -1\n  bne r20, r0, loop\n  li r2, 0\n  syscall\n");
        s
    }

    /// Independent adds isolate issue bandwidth.
    pub(crate) fn independent_stream() -> String {
        let mut s = String::from(".text\nmain:\n  li r20, 300\nloop:\n");
        for i in 0..32 {
            let r = 8 + (i % 8);
            s.push_str(&format!("  addu r{r}, r0, r0\n"));
        }
        s.push_str("  addiu r20, r20, -1\n  bne r20, r0, loop\n  li r2, 0\n  syscall\n");
        s
    }
}

#[cfg(test)]
mod tests {
    use super::testutil::*;
    use crate::config::{MachineConfig, Optimizations};
    use crate::sim::simulate;

    #[test]
    fn ideal_runs_dependent_chain_at_ipc_1() {
        let stats = run_cfg(&dependent_chain(), &MachineConfig::ideal());
        let ipc = stats.ipc();
        assert!(ipc > 0.85 && ipc <= 1.1, "ideal chain IPC {ipc}");
    }

    #[test]
    fn all_configs_commit_every_instruction() {
        let src = r#"
            .text
            main:
                li r16, 0x10000000
                li r8, 50
            loop:
                sw r8, 0(r16)
                lw r9, 0(r16)
                mult r9, r8
                mflo r10
                sra r10, r10, 2
                bne r8, r0, cont
            cont:
                addiu r8, r8, -1
                bgtz r8, loop
                li r2, 0
                syscall
        "#;
        let configs = [
            MachineConfig::ideal(),
            MachineConfig::simple2(),
            MachineConfig::simple4(),
            MachineConfig::slice2_full(),
            MachineConfig::slice4_full(),
            MachineConfig::slice2(Optimizations::level(2)),
            MachineConfig::slice4(Optimizations::level(3)),
        ];
        let expect = run_cfg(src, &configs[0]).committed;
        assert!(expect > 300);
        for cfg in &configs {
            let s = run_cfg(src, cfg);
            assert_eq!(s.committed, expect, "{}", cfg.label());
            assert!(s.cycles > 0);
        }
    }

    #[test]
    fn extended_config_is_at_least_as_fast_on_kernels() {
        for name in ["gcc", "bzip"] {
            let p = popk_workloads::by_name(name).unwrap().program();
            let full = simulate(&p, &MachineConfig::slice2(Optimizations::all()), 40_000);
            let ext = simulate(
                &p,
                &MachineConfig::slice2(Optimizations::extended()),
                40_000,
            );
            assert_eq!(full.committed, ext.committed);
            assert!(
                ext.cycles <= full.cycles + full.cycles / 50,
                "{name}: extended {} vs full {}",
                ext.cycles,
                full.cycles
            );
        }
    }

    #[test]
    fn cumulative_levels_never_hurt_much_on_real_kernel() {
        let w = popk_workloads::by_name("parser").unwrap();
        let p = w.program();
        let mut prev = f64::MAX;
        for level in 0..=5 {
            let s = simulate(
                &p,
                &MachineConfig::slice2(Optimizations::level(level)),
                60_000,
            );
            let cycles = s.cycles as f64;
            assert!(
                cycles <= prev * 1.02,
                "level {level} slower than level {}: {cycles} vs {prev}",
                level - 1
            );
            prev = cycles.min(prev);
        }
    }

    #[test]
    fn sliced_full_approaches_ideal() {
        let w = popk_workloads::by_name("gcc").unwrap();
        let p = w.program();
        let ideal = simulate(&p, &MachineConfig::ideal(), 60_000);
        let full = simulate(&p, &MachineConfig::slice2_full(), 60_000);
        let simple = simulate(&p, &MachineConfig::simple2(), 60_000);
        assert!(simple.ipc() < ideal.ipc());
        assert!(full.ipc() > simple.ipc(), "techniques must help");
        let gap = (ideal.ipc() - full.ipc()) / ideal.ipc();
        assert!(gap < 0.15, "slice-2 full should be near ideal, gap {gap}");
    }
}
