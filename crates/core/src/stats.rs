//! Simulation statistics.

use crate::json::Json;

/// Applies a macro to every counter field of [`SimStats`], keeping the
/// JSON round-trip (journal rows embed completed stats) mechanically in
/// sync with the struct.
macro_rules! for_each_counter {
    ($m:ident!($($args:tt)*)) => {
        $m!(
            $($args)*
            cycles committed loads stores branches branch_mispredicts indirect_mispredicts
            early_branch_resolves early_branch_cycles_saved early_disambig_loads
            store_forwards spec_forwards spec_forward_wrong narrow_wakeups
            mem_dep_speculations mem_dep_violations sam_starts partial_tag_accesses
            partial_tag_early_miss way_mispredicts l1d_hits l1d_accesses load_replays
            fetch_redirect_stalls ruu_full_stalls lsq_full_stalls
        )
    };
}

/// Counters accumulated by one timing run.
///
/// Equality is bitwise over every counter — the determinism tests compare
/// whole snapshots of two runs. [`crate::StatsRegistry::from_sim`] gives
/// each field a stable name and description.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct SimStats {
    /// Cycles elapsed when the last instruction committed.
    pub cycles: u64,
    /// Instructions committed.
    pub committed: u64,
    /// Loads committed.
    pub loads: u64,
    /// Stores committed.
    pub stores: u64,
    /// Conditional branches committed.
    pub branches: u64,
    /// Conditional-branch direction mispredictions.
    pub branch_mispredicts: u64,
    /// Indirect-jump target mispredictions.
    pub indirect_mispredicts: u64,
    /// Mispredicted branches resolved from a partial (non-final) slice.
    pub early_branch_resolves: u64,
    /// Cycles of redirect latency saved by early branch resolution.
    pub early_branch_cycles_saved: u64,
    /// Loads that issued past older stores via partial-address mismatch
    /// before every older store address was fully known.
    pub early_disambig_loads: u64,
    /// Loads whose data was forwarded from an older in-flight store.
    pub store_forwards: u64,
    /// Loads speculatively forwarded from a *unique partial* address match
    /// before the full addresses resolved (the §5.1 extension).
    pub spec_forwards: u64,
    /// Speculative partial-match forwards refuted at verification.
    pub spec_forward_wrong: u64,
    /// Upper-slice wakeups satisfied by the narrow-operand relaxation
    /// (the §6 extension).
    pub narrow_wakeups: u64,
    /// Loads that issued past an unknown older store address on the
    /// strength of the memory-dependence predictor.
    pub mem_dep_speculations: u64,
    /// Those speculations that violated (an older store did overlap).
    pub mem_dep_violations: u64,
    /// Loads whose cache index came from sum-addressed decode before
    /// their own agen produced it.
    pub sam_starts: u64,
    /// Loads that began their L1D access with a partial (sliced) address.
    pub partial_tag_accesses: u64,
    /// Partial-tag probes that ruled out every way (early non-speculative
    /// miss detection).
    pub partial_tag_early_miss: u64,
    /// Partial-tag way speculations that verification refuted (replays).
    pub way_mispredicts: u64,
    /// L1 data-cache hits.
    pub l1d_hits: u64,
    /// L1 data-cache accesses.
    pub l1d_accesses: u64,
    /// Loads that replayed due to scheduling speculation (miss in the load
    /// shadow or failed way prediction).
    pub load_replays: u64,
    /// Cycles fetch was stalled awaiting a branch redirect.
    pub fetch_redirect_stalls: u64,
    /// Cycles dispatch was blocked on a full RUU.
    pub ruu_full_stalls: u64,
    /// Cycles dispatch was blocked on a full LSQ.
    pub lsq_full_stalls: u64,
}

impl SimStats {
    /// Committed instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.committed as f64 / self.cycles as f64
    }

    /// Conditional-branch direction accuracy.
    pub fn branch_accuracy(&self) -> f64 {
        if self.branches == 0 {
            return 1.0;
        }
        1.0 - self.branch_mispredicts as f64 / self.branches as f64
    }

    /// L1 D-cache hit rate.
    pub fn l1d_hit_rate(&self) -> f64 {
        if self.l1d_accesses == 0 {
            return 1.0;
        }
        self.l1d_hits as f64 / self.l1d_accesses as f64
    }

    /// Way-prediction miss rate among partial-tag accesses (the §7.1
    /// "2% / 1%" statistic).
    pub fn way_mispredict_rate(&self) -> f64 {
        if self.partial_tag_accesses == 0 {
            return 0.0;
        }
        self.way_mispredicts as f64 / self.partial_tag_accesses as f64
    }

    /// Fraction of load instructions among committed instructions
    /// (Table 1's "% Loads").
    pub fn load_fraction(&self) -> f64 {
        if self.committed == 0 {
            return 0.0;
        }
        self.loads as f64 / self.committed as f64
    }

    /// Every counter as a JSON object (field order = declaration order).
    /// All counters are `u64`, so [`SimStats::from_json`] round-trips
    /// exactly — the sweep journal relies on this to replay completed
    /// rows without re-simulating.
    pub fn to_json(&self) -> Json {
        macro_rules! emit {
            ($self:ident $j:ident $($field:ident)*) => {
                $( $j.set(stringify!($field), Json::from($self.$field)); )*
            };
        }
        let mut j = Json::object();
        for_each_counter!(emit!(self j));
        j
    }

    /// Rebuild from [`SimStats::to_json`] output. `None` if any counter
    /// is missing or mistyped — a defective journal line must read as
    /// "row not done", never as zeroed stats.
    pub fn from_json(j: &Json) -> Option<SimStats> {
        let mut s = SimStats::default();
        macro_rules! read {
            ($s:ident $j:ident $($field:ident)*) => {
                $( $s.$field = $j.get(stringify!($field))?.as_u64()?; )*
            };
        }
        for_each_counter!(read!(s j));
        Some(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_metrics() {
        let s = SimStats {
            cycles: 100,
            committed: 150,
            branches: 10,
            branch_mispredicts: 1,
            l1d_accesses: 50,
            l1d_hits: 45,
            partial_tag_accesses: 40,
            way_mispredicts: 2,
            loads: 30,
            ..Default::default()
        };
        assert!((s.ipc() - 1.5).abs() < 1e-12);
        assert!((s.branch_accuracy() - 0.9).abs() < 1e-12);
        assert!((s.l1d_hit_rate() - 0.9).abs() < 1e-12);
        assert!((s.way_mispredict_rate() - 0.05).abs() < 1e-12);
        assert!((s.load_fraction() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn json_roundtrip_is_exact() {
        let s = SimStats {
            cycles: i64::MAX as u64, // Json integers are i64
            committed: 123_456_789_012,
            lsq_full_stalls: 7,
            ..Default::default()
        };
        let back = SimStats::from_json(&s.to_json()).expect("roundtrip");
        assert_eq!(back, s);
        // A missing counter is a defect, not a zero.
        let mut j = s.to_json();
        j.remove("cycles");
        assert_eq!(SimStats::from_json(&j), None);
    }

    #[test]
    fn idle_defaults() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.branch_accuracy(), 1.0);
        assert_eq!(s.l1d_hit_rate(), 1.0);
        assert_eq!(s.way_mispredict_rate(), 0.0);
    }
}
