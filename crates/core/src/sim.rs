//! The cycle-level trace-driven pipeline model.
//!
//! # Model overview
//!
//! The simulator replays a dynamic trace (oracle operand values, the
//! standard SimpleScalar practice) through a structural model of the
//! Fig. 10 pipelines:
//!
//! * **Fetch** pulls up to `width` instructions per cycle from the trace,
//!   probing the L1 I-cache per line and consulting the front-end
//!   predictor for every control instruction. Fetch past a mispredicted
//!   branch stalls until that branch *resolves* (wrong-path instructions
//!   are not simulated; their cost is the refill bubble, see DESIGN.md).
//! * **Dispatch** enters instructions into the RUU window (and LSQ for
//!   memory ops) `dispatch_depth` cycles after fetch; the earliest issue
//!   is `front_depth` cycles after fetch (Fetch1 … RF2 of Fig. 10).
//! * **Issue** wakes *slices*: each operand is decomposed per
//!   [`SliceWidth`](popk_slice::SliceWidth), and slice `k` of an
//!   instruction issues when its source slices are available and its
//!   class's inter-slice dependences (Fig. 8) are met — a carry edge for
//!   arithmetic, none for logic, full-width for shifts. Without
//!   `partial_bypass` the machine degrades to naive EX pipelining: one
//!   issue event, result atomic after `slice_count` cycles.
//! * **Memory**: loads wait on older-store disambiguation (bit-serial
//!   with `early_disambig`), access the hierarchy (optionally with a
//!   partial-tag index + MRU way prediction under `partial_tag`), and
//!   replay on way mispredicts. Stores write at commit.
//! * **Commit** retires up to `width` completed instructions in order.
//!
//! Each stage lives in its own module under the (private) `pipeline`
//! directory; the
//! three paper techniques are pluggable policies in [`crate::policies`],
//! selected by the [`MachineConfig`]. This module keeps the public
//! entry points — [`simulate`], [`Simulator::new`], [`Simulator::run`],
//! [`Simulator::run_timeline`] — at their historical paths.
//!
//! # The ISA-neutral boundary
//!
//! The run loop itself is ISA-agnostic: [`Simulator::try_run_frontend`]
//! drives the pipeline from any [`popk_trace::Frontend`] (an iterator of
//! [`popk_trace::Uop`] records plus an optional commit-lockstep
//! checker). The PISA-specific entry points ([`simulate`],
//! [`Simulator::run`], …) wrap it with a
//! [`PisaFrontend`] built from the program.

use crate::checkpoint::{Checkpoint, CheckpointPlan};
use crate::config::MachineConfig;
use crate::error::SimError;
use crate::events::{NullTrace, TraceSink};
use crate::stats::SimStats;
use crate::timeline::{InsnTiming, TimelineBuilder};
use popk_emu::PisaFrontend;
use popk_isa::{Insn, Program};
use popk_trace::{Frontend, UopInsn};

pub use crate::pipeline::{Scratch, Simulator};

std::thread_local! {
    /// Per-thread scratch arena reused by [`simulate`]/[`try_simulate`]
    /// across runs (sweeps run thousands of short simulations; the
    /// window columns and scheduler buffers dominate their setup cost).
    static SCRATCH: std::cell::RefCell<Scratch> = std::cell::RefCell::new(Scratch::new());
}

/// Run `program` under `cfg` for up to `limit` dynamic instructions and
/// return the statistics.
///
/// # Panics
/// Panics on any [`SimError`] (invalid configuration, emulation fault,
/// watchdog deadlock, oracle divergence); use [`try_simulate`] for a
/// typed result.
pub fn simulate(program: &Program, cfg: &MachineConfig, limit: u64) -> SimStats {
    match try_simulate(program, cfg, limit) {
        Ok(stats) => stats,
        Err(e) => panic!("simulation failed: {e}"),
    }
}

/// Fallible variant of [`simulate`]: validates `cfg`, then runs,
/// surfacing every failure mode as a structured [`SimError`].
///
/// Reuses a per-thread [`Scratch`] arena; pass your own to
/// [`try_simulate_in`] to control its lifetime explicitly.
pub fn try_simulate(
    program: &Program,
    cfg: &MachineConfig,
    limit: u64,
) -> Result<SimStats, SimError> {
    SCRATCH.with(|s| match s.try_borrow_mut() {
        Ok(mut scratch) => try_simulate_in(program, cfg, limit, &mut scratch),
        // Re-entrant call (a sink callback simulating): run unpooled.
        Err(_) => try_simulate_in(program, cfg, limit, &mut Scratch::new()),
    })
}

/// Like [`try_simulate`], reusing the buffer allocations in `scratch`
/// (they are returned to it when the run finishes, however it ends).
pub fn try_simulate_in(
    program: &Program,
    cfg: &MachineConfig,
    limit: u64,
    scratch: &mut Scratch,
) -> Result<SimStats, SimError> {
    cfg.validate()?;
    let mut sim = Simulator::with_sink_in(cfg, NullTrace, scratch);
    let result = sim.try_run(program, limit);
    sim.reclaim(scratch);
    result
}

/// Run an arbitrary [`Frontend`] under `cfg` through the ISA-neutral
/// boundary (the non-PISA analogue of [`try_simulate`]). The frontend
/// carries its own instruction budget.
pub fn try_simulate_frontend<I, F>(cfg: &MachineConfig, frontend: F) -> Result<SimStats, SimError>
where
    I: UopInsn,
    F: Frontend<I>,
{
    try_simulate_frontend_in(cfg, frontend, &mut Scratch::new())
}

/// Like [`try_simulate_frontend`], reusing the buffer allocations in
/// `scratch`.
pub fn try_simulate_frontend_in<I, F>(
    cfg: &MachineConfig,
    frontend: F,
    scratch: &mut Scratch<I>,
) -> Result<SimStats, SimError>
where
    I: UopInsn,
    F: Frontend<I>,
{
    cfg.validate()?;
    let mut sim = Simulator::with_sink_in(cfg, NullTrace, scratch);
    let result = sim.try_run_frontend(frontend);
    sim.reclaim(scratch);
    result
}

/// Like [`try_simulate`], additionally producing (and, when
/// `plan.resume_from` is set, verifying) checkpoints per `plan`. The
/// presence of the watch never perturbs timing: it observes the commit
/// stream the way the oracle does, touching no pipeline state.
pub fn try_simulate_checkpointed(
    program: &Program,
    cfg: &MachineConfig,
    limit: u64,
    plan: CheckpointPlan,
) -> Result<SimStats, SimError> {
    try_simulate_frontend_checkpointed(cfg, PisaFrontend::new(program, limit), plan)
}

/// Resume a PISA run from `checkpoint`: deterministically replay from
/// instruction 0 to the budget (so stats and event digests are
/// byte-identical to an uninterrupted run by construction) while
/// cross-verifying the live architectural state at the checkpoint's
/// commit count against its stored snapshot. `workload` is the caller's
/// name for the program, checked against the checkpoint's identity.
pub fn try_resume(
    program: &Program,
    cfg: &MachineConfig,
    limit: u64,
    workload: &str,
    checkpoint: Checkpoint,
) -> Result<SimStats, SimError> {
    let plan = CheckpointPlan::resume(workload, cfg.fingerprint(), limit, checkpoint);
    try_simulate_checkpointed(program, cfg, limit, plan)
}

/// The ISA-neutral analogue of [`try_simulate_checkpointed`]: run any
/// [`Frontend`] with checkpointing per `plan`. Fails with
/// [`SimError::Checkpoint`] before simulating a cycle if the frontend
/// has no [`popk_trace::CheckpointSource`] or the resumed checkpoint
/// belongs to a different run identity.
pub fn try_simulate_frontend_checkpointed<I, F>(
    cfg: &MachineConfig,
    frontend: F,
    plan: CheckpointPlan,
) -> Result<SimStats, SimError>
where
    I: UopInsn,
    F: Frontend<I>,
{
    cfg.validate()?;
    let mut scratch = Scratch::new();
    let mut sim = Simulator::with_sink_in(cfg, NullTrace, &mut scratch);
    sim.set_checkpoints(&frontend, plan)?;
    let result = sim.try_run_frontend(frontend);
    sim.reclaim(&mut scratch);
    result
}

/// The ISA-neutral analogue of [`try_resume`].
pub fn try_resume_frontend<I, F>(
    cfg: &MachineConfig,
    frontend: F,
    limit: u64,
    workload: &str,
    checkpoint: Checkpoint,
) -> Result<SimStats, SimError>
where
    I: UopInsn,
    F: Frontend<I>,
{
    let plan = CheckpointPlan::resume(workload, cfg.fingerprint(), limit, checkpoint);
    try_simulate_frontend_checkpointed(cfg, frontend, plan)
}

impl Simulator {
    /// Build an untraced simulator for one run.
    pub fn new(cfg: &MachineConfig) -> Simulator {
        Simulator::with_sink(cfg, NullTrace)
    }

    /// Like [`Simulator::run`], additionally recording an [`InsnTiming`]
    /// pipetrace for the first `max_records` committed instructions.
    ///
    /// Runs a fresh simulator with this one's configuration, with a
    /// [`TimelineBuilder`] sink folding the event stream back into
    /// per-instruction records.
    pub fn run_timeline(
        &mut self,
        program: &Program,
        limit: u64,
        max_records: usize,
    ) -> (SimStats, Vec<InsnTiming>) {
        let mut sim = Simulator::with_sink(&self.cfg, TimelineBuilder::new(max_records));
        let stats = sim.run(program, limit);
        (stats, sim.into_sink().finish())
    }
}

impl<S: TraceSink<Insn>> Simulator<S, Insn> {
    /// Execute the run loop over `program` on the native PISA frontend.
    ///
    /// # Panics
    /// Panics on any [`SimError`]; use [`Simulator::try_run`] for a
    /// typed result.
    pub fn run(&mut self, program: &Program, limit: u64) -> SimStats {
        match self.try_run(program, limit) {
            Ok(stats) => stats,
            Err(e) => panic!("simulation failed: {e}"),
        }
    }

    /// Fallible run loop over the native PISA frontend (see
    /// [`Simulator::try_run_frontend`] for the failure modes).
    pub fn try_run(&mut self, program: &Program, limit: u64) -> Result<SimStats, SimError> {
        self.try_run_frontend(PisaFrontend::new(program, limit))
    }
}

impl<I: UopInsn, S: TraceSink<I>> Simulator<S, I> {
    /// Execute the run loop from any [`Frontend`]: one call per pipeline
    /// stage per cycle, in commit-to-fetch order so a value produced
    /// this cycle is consumed no earlier than the next.
    ///
    /// Surfaces three runtime failure modes as structured errors:
    ///
    /// * a functional-machine fault while producing the trace
    ///   ([`SimError::Emulation`]);
    /// * no retirement for `cfg.watchdog` consecutive cycles
    ///   ([`SimError::Deadlock`], with a snapshot of the stuck window);
    /// * with `cfg.oracle` set, a commit-time lockstep divergence
    ///   ([`SimError::OracleDivergence`]) — every retirement is
    ///   re-verified against the frontend's independent checker.
    pub fn try_run_frontend<F>(&mut self, frontend: F) -> Result<SimStats, SimError>
    where
        F: Frontend<I>,
    {
        if self.cfg.oracle {
            self.oracle = frontend.checker().map(crate::oracle::Oracle::from_checker);
        }
        let mut trace = frontend.peekable();
        let mut drained = false;

        while !drained || !self.window.is_empty() || !self.feed.is_empty() {
            self.commit();
            if let Some(e) = self.error.take() {
                return Err(e);
            }
            self.issue();
            self.memory_stage();
            self.dispatch();
            if !drained {
                drained = self.fetch(&mut trace)?;
            }
            self.cycle += 1;
            // Watchdog: a machine that stops retiring is stuck (the
            // worst legitimate stall is orders of magnitude shorter).
            if self.cycle - self.last_commit_cycle > self.cfg.watchdog {
                return Err(SimError::Deadlock(self.deadlock_snapshot()));
            }
            // Cooperative cancellation: polled sparsely so the common
            // (no-flag or flag-unset) case costs one predictable branch.
            if self.cycle & 1023 == 0 {
                if let Some(c) = &self.cancel {
                    if c.load(std::sync::atomic::Ordering::Relaxed) {
                        return Err(SimError::Canceled);
                    }
                }
            }
        }
        // A resumed checkpoint whose commit count was never reached
        // claims more retirements than this run produces: the stored
        // state cannot belong to this run. Surface it, don't ignore it.
        if let Some(k) = self.ckpt.as_ref().and_then(|w| w.pending_verification()) {
            return Err(SimError::Checkpoint(
                crate::checkpoint::CheckpointError::Divergence {
                    committed: k,
                    field: "committed",
                },
            ));
        }
        self.stats.cycles = self.cycle;
        Ok(self.stats)
    }
}
