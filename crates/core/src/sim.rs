//! The cycle-level trace-driven pipeline model.
//!
//! # Model overview
//!
//! The simulator replays a dynamic trace (oracle operand values, the
//! standard SimpleScalar practice) through a structural model of the
//! Fig. 10 pipelines:
//!
//! * **Fetch** pulls up to `width` instructions per cycle from the trace,
//!   probing the L1 I-cache per line and consulting the front-end
//!   predictor for every control instruction. Fetch past a mispredicted
//!   branch stalls until that branch *resolves* (wrong-path instructions
//!   are not simulated; their cost is the refill bubble, see DESIGN.md).
//! * **Dispatch** enters instructions into the RUU window (and LSQ for
//!   memory ops) `dispatch_depth` cycles after fetch; the earliest issue
//!   is `front_depth` cycles after fetch (Fetch1 … RF2 of Fig. 10).
//! * **Issue** wakes *slices*: each operand is decomposed per
//!   [`SliceWidth`], and slice `k` of an instruction issues when its
//!   source slices are available and its class's inter-slice dependences
//!   (Fig. 8) are met — a carry edge for arithmetic, none for logic,
//!   full-width for shifts. Without `partial_bypass` the machine degrades
//!   to naive EX pipelining: one issue event, result atomic after
//!   `slice_count` cycles.
//! * **Memory**: loads wait on older-store disambiguation (bit-serial
//!   with `early_disambig`), access the hierarchy (optionally with a
//!   partial-tag index + MRU way prediction under `partial_tag`), and
//!   replay on way mispredicts. Stores write at commit.
//! * **Commit** retires up to `width` completed instructions in order.

use crate::config::{MachineConfig, PipelineKind};
use crate::events::{NullTrace, ReplayReason, StallReason, TraceEvent, TraceSink};
use crate::stats::SimStats;
use crate::timeline::{InsnTiming, TimelineBuilder};
use popk_bpred::{BranchKind, FrontEnd};
use popk_cache::{Hierarchy, PartialOutcome};
use popk_emu::{Machine, TraceRecord};
use popk_isa::{Op, OpClass, Program, Reg, SliceClass};
use popk_slice::mispredict_detection_bit;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};

const MAX_SLICES: usize = 4;

/// Calendar-wheel size for the issue wakeup schedule. Almost every wake
/// is a handful of cycles out (next-cycle retries, ALU/unit latencies);
/// the rare longer waits (L2 misses) overflow to a heap.
const WHEEL_SLOTS: u64 = 64;

/// Emit a trace event, stamped with the current cycle. A macro rather
/// than a method so it can run while a window entry is mutably borrowed:
/// `self.sink` and `self.cycle` are fields disjoint from `self.window`,
/// and the whole emission folds away when `S::ENABLED` is false.
macro_rules! emit {
    ($self:ident, $ev:expr) => {
        if S::ENABLED {
            let cycle = $self.cycle;
            $self.sink.event(cycle, &$ev);
        }
    };
}

/// How an instruction occupies execution resources.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ExecClass {
    /// Sliced integer execution (ALU ops, agen, branch compares).
    IntSliced,
    /// Atomic on the (single, unpipelined) multiply/divide unit.
    MulDiv,
    /// Atomic on the FP adders (pipelined).
    FpAdd,
    /// Atomic on the (single, unpipelined) FP multiply/divide/sqrt unit.
    FpLong,
    /// No execution: direct jumps resolve in the front end.
    Front,
    /// Serializing (syscall/break).
    Sys,
}

#[derive(Clone, Copy)]
enum Dep {
    /// Value comes from the committed register state: always ready.
    Ready,
    /// Produced by the in-window instruction with this sequence number.
    InFlight(u64),
}

#[derive(Clone, Copy)]
struct MemState {
    /// Cycle the cache access started, if it has.
    started: Option<u64>,
    /// Cycle the loaded data is available to consumers.
    data_ready: Option<u64>,
    /// For stores: cycle the store *data* (rt) is fully available.
    store_data_ready: Option<u64>,
    /// The load issued past unknown older store addresses on the memory
    /// dependence predictor's say-so (pending violation check).
    dep_speculated: bool,
}

struct Entry {
    seq: u64,
    rec: TraceRecord,
    /// Earliest cycle any slice may issue (end of the front end).
    earliest_ex: u64,
    class: ExecClass,
    slice_class: SliceClass,
    deps: [Dep; 2],
    ndeps: usize,
    /// Issue cycle per slice (or the single issue event for atomic /
    /// simple-pipelined execution, stored in slot 0).
    issued: [Option<u64>; MAX_SLICES],
    /// Cycle each *result slice* becomes available to consumers.
    ready: [Option<u64>; MAX_SLICES],
    mem: Option<MemState>,
    /// For control: cycle the redirect (if any) is known.
    resolved_at: Option<u64>,
    mispredicted: bool,
    /// slt-family: results publish only after the top slice evaluates.
    late_result: bool,
    /// Wrong-path phantom (never commits; squashed at redirect).
    phantom: bool,
    /// Set once every slice (and memory) is finished.
    completed_at: Option<u64>,
    /// Sequence numbers parked on this entry's result: they re-enter the
    /// wakeup calendar when a result slice is scheduled (published).
    waiters: Vec<u64>,
    /// Cached opcode predicates (decoded once at dispatch; these are on
    /// per-examination hot paths).
    is_ld: bool,
    is_st: bool,
}

/// Byte range `[ea, ea + width)` of a memory reference.
fn byte_range(rec: &TraceRecord) -> (u32, u32) {
    let w = rec.insn.op().mem_width().map_or(4, |m| m.bytes());
    (rec.ea, rec.ea.wrapping_add(w))
}

/// Do two references touch any common byte?
fn ranges_overlap(a: &TraceRecord, b: &TraceRecord) -> bool {
    let (a0, a1) = byte_range(a);
    let (b0, b1) = byte_range(b);
    a0 < b1 && b0 < a1
}

/// Does the store's write cover every byte the load reads (so its data
/// can be forwarded whole)?
fn store_covers_load(store: &TraceRecord, load: &TraceRecord) -> bool {
    let (s0, s1) = byte_range(store);
    let (l0, l1) = byte_range(load);
    s0 <= l0 && l1 <= s1
}

impl Entry {
    fn is_load(&self) -> bool {
        self.is_ld
    }
    fn is_store(&self) -> bool {
        self.is_st
    }
    fn is_mem(&self) -> bool {
        self.is_ld || self.is_st
    }

    /// Result slice `k` availability (`None` = not yet known/scheduled).
    fn result_ready(&self, k: usize) -> Option<u64> {
        if self.is_load() {
            // Loads publish all slices when the data returns.
            self.mem.as_ref().and_then(|m| m.data_ready)
        } else {
            self.ready[k]
        }
    }

    /// Availability of the *full* result.
    fn result_ready_full(&self, nslices: usize) -> Option<u64> {
        let mut worst = 0u64;
        for k in 0..nslices {
            worst = worst.max(self.result_ready(k)?);
        }
        Some(worst)
    }
}

/// The timing simulator. Use [`simulate`] for the one-call entry point.
///
/// Generic over a [`TraceSink`] that observes every pipeline event; the
/// default [`NullTrace`] compiles all emission out, so `Simulator::new`
/// is exactly the untraced machine. Use [`Simulator::with_sink`] to
/// attach a recorder (e.g. [`crate::VecTrace`] or a
/// [`TimelineBuilder`]).
pub struct Simulator<S: TraceSink = NullTrace> {
    cfg: MachineConfig,
    nslices: usize,
    slice_bits: u32,
    frontend: FrontEnd,
    memory: Hierarchy,
    stats: SimStats,

    cycle: u64,
    next_seq: u64,
    window: VecDeque<Entry>,
    lsq_occupancy: usize,
    frontq: VecDeque<(
        u64,
        TraceRecord,
        bool, /*mispredicted*/
        bool, /*phantom*/
    )>,
    /// Sequence number of the in-flight mispredicted control transfer
    /// fetch is stalled behind, if any.
    fetch_block: Option<u64>,
    /// Cycle fetch may next proceed (redirect / icache-miss stalls).
    fetch_ready_cycle: u64,
    /// Last I-cache line fetched.
    last_fetch_line: Option<u32>,
    /// Per-register producer tracking at dispatch (rename).
    producer: [Option<u64>; Reg::COUNT],
    /// Non-pipelined unit reservations.
    muldiv_busy_until: u64,
    fp_long_busy_until: u64,
    /// Memory-dependence predictor: 2-bit confidence per load PC hash
    /// (3 = confidently conflict-free). Used by `opts.mem_dep_predict`.
    mem_dep_table: Vec<u8>,
    /// Wakeup calendar wheel: slot `c % WHEEL_SLOTS` holds the seqs to
    /// examine at cycle `c`. Issue examines only the entries whose
    /// wakeup is due instead of rescanning the window. An entry may be
    /// scheduled more than once (examinations are side-effect-free
    /// unless the entry actually progresses), and a stale seq —
    /// squashed, committed, or reused after a squash — is simply a
    /// harmless extra examination.
    wheel: Vec<Vec<u64>>,
    /// Wakeups further than the wheel horizon: `(cycle, seq)` min-heap.
    far_wakeups: BinaryHeap<Reverse<(u64, u64)>>,
    /// Scratch buffer for the due candidates, reused across cycles.
    cand_buf: Vec<u64>,
    /// In-window store seqs in age order: the disambiguation scans walk
    /// this instead of the whole window.
    store_q: VecDeque<u64>,
    /// In-window load seqs whose cache access has not started yet.
    pending_loads: Vec<u64>,
    /// The trace-event consumer (zero-sized and inert by default).
    sink: S,
}

/// Run `program` under `cfg` for up to `limit` dynamic instructions and
/// return the statistics.
pub fn simulate(program: &Program, cfg: &MachineConfig, limit: u64) -> SimStats {
    Simulator::new(cfg).run(program, limit)
}

impl Simulator {
    /// Build an untraced simulator for one run.
    pub fn new(cfg: &MachineConfig) -> Simulator {
        Simulator::with_sink(cfg, NullTrace)
    }

    /// Like [`Simulator::run`], additionally recording an [`InsnTiming`]
    /// pipetrace for the first `max_records` committed instructions.
    ///
    /// Runs a fresh simulator with this one's configuration, with a
    /// [`TimelineBuilder`] sink folding the event stream back into
    /// per-instruction records.
    pub fn run_timeline(
        &mut self,
        program: &Program,
        limit: u64,
        max_records: usize,
    ) -> (SimStats, Vec<InsnTiming>) {
        let mut sim = Simulator::with_sink(&self.cfg, TimelineBuilder::new(max_records));
        let stats = sim.run(program, limit);
        (stats, sim.into_sink().finish())
    }
}

impl<S: TraceSink> Simulator<S> {
    /// Build a simulator that reports pipeline events to `sink`.
    pub fn with_sink(cfg: &MachineConfig, sink: S) -> Simulator<S> {
        let nslices = cfg.slice_count();
        Simulator {
            cfg: *cfg,
            nslices,
            slice_bits: 32 / nslices as u32,
            frontend: FrontEnd::new(&cfg.frontend),
            memory: Hierarchy::new(cfg.memory),
            stats: SimStats::default(),
            cycle: 0,
            next_seq: 0,
            window: VecDeque::with_capacity(cfg.ruu_size),
            lsq_occupancy: 0,
            frontq: VecDeque::with_capacity(2 * cfg.width as usize + 8),
            fetch_block: None,
            fetch_ready_cycle: 0,
            last_fetch_line: None,
            producer: [None; Reg::COUNT],
            muldiv_busy_until: 0,
            fp_long_busy_until: 0,
            // Initialized confident: loads rarely conflict (the MCB
            // assumption); violations train entries down quickly.
            mem_dep_table: vec![3; 1024],
            wheel: (0..WHEEL_SLOTS).map(|_| Vec::new()).collect(),
            far_wakeups: BinaryHeap::new(),
            cand_buf: Vec::with_capacity(cfg.ruu_size),
            store_q: VecDeque::with_capacity(cfg.lsq_size),
            pending_loads: Vec::with_capacity(cfg.lsq_size),
            sink,
        }
    }

    /// Immutable access to the attached sink.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// Consume the simulator and return the sink (with whatever it
    /// recorded).
    pub fn into_sink(self) -> S {
        self.sink
    }

    /// The statistics accumulated so far (final after [`Simulator::run`]).
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Snapshot every counter — simulator, front end, and cache
    /// hierarchy — into a named [`crate::StatsRegistry`].
    pub fn registry(&self) -> crate::StatsRegistry {
        let mut r = crate::StatsRegistry::from_sim(&self.stats);
        r.add_frontend(self.frontend.stats());
        r.add_cache("l1i", self.memory.l1i().stats());
        r.add_cache("l1d", self.memory.l1d().stats());
        r.add_cache("l2", self.memory.l2().stats());
        r
    }

    #[inline]
    fn mem_dep_slot(pc: u32) -> usize {
        (((pc >> 2) ^ (pc >> 12)) as usize) & 1023
    }

    /// Execute the run loop.
    pub fn run(&mut self, program: &Program, limit: u64) -> SimStats {
        let mut machine = Machine::new(program);
        let mut trace = machine.trace(limit).peekable();
        let mut drained = false;

        while !drained || !self.window.is_empty() || !self.frontq.is_empty() {
            self.commit();
            self.issue();
            self.memory_stage();
            self.dispatch();
            if !drained {
                drained = self.fetch(&mut trace);
            }
            self.cycle += 1;
            // Safety valve: a deadlock would otherwise loop forever.
            debug_assert!(
                self.cycle < limit.saturating_mul(100) + 1_000_000,
                "simulator deadlock at cycle {}",
                self.cycle
            );
        }
        self.stats.cycles = self.cycle;
        self.stats
    }

    // ---- fetch -----------------------------------------------------------

    /// Returns true when the trace is exhausted.
    fn fetch(&mut self, trace: &mut std::iter::Peekable<popk_emu::Tracer<'_>>) -> bool {
        // Stall behind an unresolved mispredicted control transfer.
        if let Some(block_seq) = self.fetch_block {
            let resolved = if block_seq >= self.next_seq {
                None // the branch has not even dispatched yet
            } else {
                match self.find(block_seq) {
                    Some(e) => e.resolved_at.filter(|&r| r <= self.cycle),
                    // Committed (hence resolved): treat as resolved now.
                    None => Some(self.cycle),
                }
            };
            match resolved {
                Some(r) => {
                    self.fetch_block = None;
                    self.fetch_ready_cycle = self.fetch_ready_cycle.max(r);
                    if self.cfg.model_wrong_path {
                        self.squash_wrong_path(block_seq);
                    }
                }
                None => {
                    self.stats.fetch_redirect_stalls += 1;
                    emit!(self, TraceEvent::Stall(StallReason::FetchRedirect));
                    if self.cfg.model_wrong_path {
                        self.fetch_phantoms();
                    }
                    return false;
                }
            }
        }
        if self.cycle < self.fetch_ready_cycle {
            return false;
        }
        if self.frontq.len() >= self.frontq.capacity().min(32) {
            return false;
        }

        for _ in 0..self.cfg.width {
            let Some(next) = trace.peek() else {
                return true;
            };
            let rec = match next {
                Ok(r) => *r,
                Err(e) => panic!("emulation error during timing run: {e}"),
            };
            // I-cache: probe on line transitions.
            let line = rec.pc / self.cfg.memory.l1i.line_bytes;
            if self.last_fetch_line != Some(line) {
                let access = self.memory.access_insn(rec.pc);
                self.last_fetch_line = Some(line);
                if !access.l1_hit {
                    // Fetch stalls for the refill; this instruction fetches
                    // after the line arrives.
                    self.fetch_ready_cycle = self.cycle + access.latency as u64;
                    return false;
                }
            }
            let rec = *trace.next().unwrap().as_ref().unwrap();

            // Predict control transfers at fetch.
            let mut mispredicted = false;
            let op = rec.insn.op();
            if op.is_control() {
                let kind = match op {
                    Op::J | Op::Jal => BranchKind::DirectJump {
                        target: rec.next_pc,
                        is_call: op == Op::Jal,
                    },
                    Op::Jr | Op::Jalr => BranchKind::IndirectJump {
                        is_call: op == Op::Jalr,
                        is_return: op == Op::Jr && rec.insn.rs() == Reg::RA,
                    },
                    _ => BranchKind::Conditional {
                        target: if rec.taken { rec.next_pc } else { 0 },
                    },
                };
                let pred = self
                    .frontend
                    .predict_and_update(rec.pc, kind, rec.taken, rec.next_pc);
                mispredicted = !pred.correct;
                if op.is_cond_branch() {
                    self.stats.branches += 1;
                    if mispredicted {
                        self.stats.branch_mispredicts += 1;
                    }
                } else if mispredicted {
                    self.stats.indirect_mispredicts += 1;
                }
            }

            self.frontq
                .push_back((self.cycle, rec, mispredicted, false));
            if mispredicted {
                // Correct-path fetch cannot continue until this resolves.
                self.fetch_block = Some(self.seq_of_frontq_tail());
                break;
            }
            if self.frontq.len() >= 32 {
                break;
            }
        }
        false
    }

    /// The sequence number the just-pushed front-queue tail will get.
    fn seq_of_frontq_tail(&self) -> u64 {
        self.next_seq + self.frontq.len() as u64 - 1
    }

    /// Fill fetch bandwidth with wrong-path phantoms while awaiting a
    /// redirect (they occupy dispatch slots, RUU entries and ALUs, then
    /// get squashed — the first-order cost of wrong-path execution).
    fn fetch_phantoms(&mut self) {
        for _ in 0..self.cfg.width {
            if self.frontq.len() >= 32 {
                break;
            }
            let nop = TraceRecord {
                pc: 0,
                insn: popk_isa::Insn::r3(Op::Addu, Reg::ZERO, Reg::ZERO, Reg::ZERO),
                src_vals: [0; 2],
                results: [0; 2],
                ea: 0,
                taken: false,
                next_pc: 4,
            };
            self.frontq.push_back((self.cycle, nop, false, true));
        }
    }

    /// Drop every wrong-path phantom younger than the resolved branch and
    /// rewind the sequence counter (phantoms define no registers, so no
    /// producer cleanup is needed).
    fn squash_wrong_path(&mut self, branch_seq: u64) {
        while self
            .window
            .back()
            .is_some_and(|e| e.phantom && e.seq > branch_seq)
        {
            let squashed = self.window.pop_back().unwrap();
            emit!(self, TraceEvent::Squashed { seq: squashed.seq });
        }
        self.frontq.retain(|(_, _, _, phantom)| !phantom);
        self.next_seq = self
            .window
            .back()
            .map(|e| e.seq + 1)
            .unwrap_or(self.next_seq)
            .max(branch_seq + 1)
            .min(self.next_seq);
    }

    // ---- dispatch --------------------------------------------------------

    fn dispatch(&mut self) {
        for _ in 0..self.cfg.width {
            let Some(&(fetch, rec, mispredicted, phantom)) = self.frontq.front() else {
                return;
            };
            if self.cycle < fetch + self.cfg.dispatch_depth {
                return;
            }
            if self.window.len() >= self.cfg.ruu_size {
                self.stats.ruu_full_stalls += 1;
                emit!(self, TraceEvent::Stall(StallReason::RuuFull));
                return;
            }
            let op = rec.insn.op();
            let is_mem = op.is_load() || op.is_store();
            if is_mem && self.lsq_occupancy >= self.cfg.lsq_size {
                self.stats.lsq_full_stalls += 1;
                emit!(self, TraceEvent::Stall(StallReason::LsqFull));
                return;
            }
            // Serialize syscalls: only dispatch into an empty window.
            if matches!(op.class(), OpClass::Sys) && !self.window.is_empty() && !phantom {
                return;
            }
            self.frontq.pop_front();

            let seq = self.next_seq;
            self.next_seq += 1;

            let mut deps = [Dep::Ready; 2];
            let mut ndeps = 0;
            for r in rec.insn.uses().iter() {
                deps[ndeps] = match self.producer[r.index()] {
                    Some(p) if !r.is_zero() => Dep::InFlight(p),
                    _ => Dep::Ready,
                };
                ndeps += 1;
            }
            for r in rec.insn.defs().iter() {
                self.producer[r.index()] = Some(seq);
            }

            let class = match op.class() {
                OpClass::MulDiv => ExecClass::MulDiv,
                OpClass::Fp => match op {
                    Op::AddS | Op::SubS | Op::CvtSW | Op::CvtWS => ExecClass::FpAdd,
                    _ => ExecClass::FpLong,
                },
                OpClass::Sys => ExecClass::Sys,
                OpClass::Jump => match op {
                    Op::J | Op::Jal => ExecClass::Front,
                    _ => ExecClass::IntSliced, // jr/jalr read a register
                },
                _ => ExecClass::IntSliced,
            };
            // beq/bne compare slices independently (equality); the
            // sign-testing branches carry-chain (subtract + sign).
            let slice_class = match op {
                Op::Beq | Op::Bne => SliceClass::Independent,
                _ => op.slice_class(),
            };
            // Set-less-than results depend on the *entire* comparison, so
            // no slice of the output exists before the top slice runs.
            let late_result = matches!(op, Op::Slt | Op::Sltu | Op::Slti | Op::Sltiu);

            let mut entry = Entry {
                seq,
                rec,
                earliest_ex: fetch + self.cfg.front_depth,
                class,
                slice_class,
                deps,
                ndeps,
                issued: [None; MAX_SLICES],
                ready: [None; MAX_SLICES],
                mem: is_mem.then_some(MemState {
                    started: None,
                    data_ready: None,
                    store_data_ready: None,
                    dep_speculated: false,
                }),
                resolved_at: None,
                mispredicted,
                late_result,
                phantom,
                completed_at: None,
                waiters: Vec::new(),
                is_ld: op.is_load(),
                is_st: op.is_store(),
            };
            if class == ExecClass::Front {
                // Direct jumps: the front end computes the target; the RA
                // result (jal) is available as soon as the entry exists.
                entry.resolved_at = Some(fetch + self.cfg.dispatch_depth);
                entry.completed_at = Some(entry.earliest_ex);
            }
            if is_mem {
                self.lsq_occupancy += 1;
                if op.is_store() {
                    self.store_q.push_back(seq);
                } else {
                    self.pending_loads.push(seq);
                }
            }
            emit!(
                self,
                TraceEvent::Dispatched {
                    seq,
                    pc: rec.pc,
                    insn: rec.insn,
                    fetch
                }
            );
            self.window.push_back(entry);
            if class == ExecClass::Front {
                let idx = self.window.len() - 1;
                self.publish_all_slices(idx, fetch + self.cfg.dispatch_depth, IssueMark::None);
                if S::ENABLED {
                    let e = &self.window[idx];
                    let (resolved_at, completed_at) =
                        (e.resolved_at.unwrap(), e.completed_at.unwrap());
                    emit!(
                        self,
                        TraceEvent::BranchResolved {
                            seq,
                            at: resolved_at,
                            early: false,
                            mispredicted,
                        }
                    );
                    emit!(
                        self,
                        TraceEvent::Completed {
                            seq,
                            at: completed_at
                        }
                    );
                }
            } else {
                // First examination at the end of the front end.
                self.wake_at(seq, fetch + self.cfg.front_depth);
            }
        }
    }

    // ---- issue -----------------------------------------------------------

    /// Per-cycle issue of slices (or whole atomic operations).
    ///
    /// Event-driven: instead of rescanning the whole window, only
    /// entries with a due calendar wakeup are examined. An examination
    /// runs exactly the per-entry logic of an exhaustive scan and is
    /// side-effect-free unless the entry actually progresses, so
    /// behaviour is bit-identical provided the schedule is *sound*:
    /// every entry that would progress this cycle under a full rescan
    /// must be among the candidates (each blocked examination records a
    /// wake no later than its blocker can clear). Candidates are sorted
    /// by sequence number — window (age) order — so ALU-slot contention
    /// also resolves identically.
    fn issue(&mut self) {
        let mut int_used = [0usize; MAX_SLICES];
        let mut fp_used = 0usize;
        let mut cands = std::mem::take(&mut self.cand_buf);
        cands.clear();
        // Swap this cycle's wheel slot out (the emptied scratch buffer
        // becomes the slot's fresh backing storage).
        let slot = (self.cycle % WHEEL_SLOTS) as usize;
        std::mem::swap(&mut cands, &mut self.wheel[slot]);
        while let Some(&Reverse((due, seq))) = self.far_wakeups.peek() {
            if due > self.cycle {
                break;
            }
            self.far_wakeups.pop();
            cands.push(seq);
        }
        cands.sort_unstable();
        cands.dedup();
        for &seq in &cands {
            if let Some(idx) = self.index_of(seq) {
                self.examine(idx, &mut int_used, &mut fp_used);
            }
        }
        self.cand_buf = cands;
    }

    /// Examine one window entry for issue progress — the body of the
    /// old per-entry rescan. On failure to progress, schedules a sound
    /// re-examination point (a future wake or a producer's waiter
    /// list).
    fn examine(&mut self, idx: usize, int_used: &mut [usize; MAX_SLICES], fp_used: &mut usize) {
        let entry = &self.window[idx];
        if entry.completed_at.is_some() {
            return;
        }
        let seq = entry.seq;
        let earliest_ex = entry.earliest_ex;
        let class = entry.class;
        if self.cycle < earliest_ex {
            self.wake_at(seq, earliest_ex);
            return;
        }
        let nslices = self.nslices;
        match class {
            ExecClass::Front => {}
            ExecClass::Sys => {
                if idx == 0 && entry.issued[0].is_none() {
                    let done = self.cycle + 1;
                    self.publish_all_slices(idx, done, IssueMark::Slot0);
                    self.window[idx].completed_at = Some(done);
                    emit!(self, TraceEvent::Completed { seq, at: done });
                } else if entry.issued[0].is_none() {
                    // Not at the window head yet: poll until it is.
                    self.wake_at(seq, self.cycle + 1);
                }
            }
            ExecClass::MulDiv | ExecClass::FpAdd | ExecClass::FpLong => {
                if entry.issued[0].is_some() {
                    self.finish_if_done(idx);
                    return;
                }
                if !self.all_sources_ready(idx) {
                    self.block_on_sources(idx);
                    return;
                }
                let op = entry.rec.insn.op();
                let (latency, ok, retry) = match class {
                    ExecClass::MulDiv => {
                        let lat = match op {
                            Op::Div | Op::Divu => self.cfg.div_latency,
                            Op::Mult | Op::Multu => self.cfg.mult_latency,
                            _ => 1, // mfhi/mflo/mthi/mtlo
                        };
                        let free = self.muldiv_busy_until <= self.cycle
                            || matches!(op, Op::Mfhi | Op::Mflo | Op::Mthi | Op::Mtlo);
                        (lat, free, self.muldiv_busy_until)
                    }
                    ExecClass::FpAdd => (
                        self.cfg.fp_latency,
                        *fp_used < self.cfg.fp_alus as usize,
                        self.cycle + 1,
                    ),
                    ExecClass::FpLong => {
                        let lat = match op {
                            Op::MulS => self.cfg.fp_mul_latency,
                            Op::SqrtS => self.cfg.fp_sqrt_latency,
                            _ => self.cfg.fp_div_latency,
                        };
                        (
                            lat,
                            self.fp_long_busy_until <= self.cycle,
                            self.fp_long_busy_until,
                        )
                    }
                    _ => unreachable!(),
                };
                if !ok {
                    // Unit busy (or FP slots full): the reservation can
                    // extend in the meantime, in which case the retry
                    // re-blocks and reschedules again.
                    self.wake_at(seq, retry.max(self.cycle + 1));
                    return;
                }
                match class {
                    ExecClass::MulDiv => {
                        if matches!(op, Op::Mult | Op::Multu | Op::Div | Op::Divu) {
                            self.muldiv_busy_until = self.cycle + latency;
                        }
                    }
                    ExecClass::FpAdd => *fp_used += 1,
                    ExecClass::FpLong => self.fp_long_busy_until = self.cycle + latency,
                    _ => {}
                }
                let done = self.cycle + latency;
                self.publish_all_slices(idx, done, IssueMark::Slot0);
                self.finish_if_done(idx);
            }
            ExecClass::IntSliced => {
                if !self.effective_bypass() {
                    // Naive pipelining: single issue event, result
                    // atomic after `nslices` cycles.
                    if self.window[idx].issued[0].is_none() {
                        if int_used[0] >= self.cfg.int_alus.min(self.cfg.width) as usize {
                            self.wake_at(seq, self.cycle + 1);
                        } else if !self.all_sources_ready(idx) {
                            self.block_on_sources(idx);
                        } else {
                            let done = self.cycle
                                + match self.cfg.kind {
                                    PipelineKind::Ideal => 1,
                                    _ => nslices as u64,
                                };
                            int_used[0] += 1;
                            self.publish_all_slices(idx, done, IssueMark::AllSlices);
                        }
                    }
                } else {
                    self.examine_sliced(idx, int_used);
                }
                self.resolve_branch_if_possible(idx);
                self.update_store_data(idx);
                self.finish_if_done(idx);
                self.reschedule_pending(idx);
            }
        }
    }

    /// The bit-sliced issue path: try to issue (at most) one slice this
    /// cycle, exactly as the exhaustive scan would. If nothing issues,
    /// park the entry on its blockers.
    fn examine_sliced(&mut self, idx: usize, int_used: &mut [usize; MAX_SLICES]) {
        let nslices = self.nslices;
        let seq = self.window[idx].seq;
        let mut retry: Option<u64> = None;
        let mut on_publish: [Option<u64>; 2] = [None; 2];
        {
            // Bit-sliced issue: wake slices independently, but
            // at most one slice of an instruction per cycle —
            // the Fig. 10 EX1/EX2 staging (each RUU entry has
            // one select port; slices occupy successive narrow
            // stages).
            #[allow(clippy::needless_range_loop)] // int_used is
            // indexed by slice position, not iterated
            for k in 0..nslices {
                if self.window[idx].issued[k].is_some() {
                    continue;
                }
                if int_used[k] >= self.cfg.int_alus.min(self.cfg.width) as usize {
                    // ALU slot contention: the slots refill next cycle.
                    retry = Some(retry.map_or(self.cycle + 1, |t| t.min(self.cycle + 1)));
                    continue;
                }
                if !self.slice_can_issue(idx, k) {
                    match self.slice_block(idx, k) {
                        Some(Block::Until(t)) => {
                            retry = Some(retry.map_or(t, |r| r.min(t)));
                        }
                        Some(Block::OnPublish(p)) if !on_publish.contains(&Some(p)) => {
                            let slot = usize::from(on_publish[0].is_some());
                            on_publish[slot] = Some(p);
                        }
                        Some(Block::OnPublish(_)) => {}
                        // Blocked on this entry's own earlier slice: its
                        // issue reschedules the entry for the next cycle.
                        None => {}
                    }
                    continue;
                }
                int_used[k] += 1;
                // Snapshot of the result schedule, both for event diffing
                // (the late/narrow special cases below rewrite `ready`
                // slots) and to decide whether anything was published.
                let before_ready = self.window[idx].ready;
                let late = self.window[idx].late_result;
                let narrow_publish = k == 0
                    && !late
                    && self.cfg.opts.narrow_operands
                    && !self.window[idx].is_mem()
                    && !self.window[idx].rec.insn.defs().is_empty()
                    && Self::value_is_narrow(self.window[idx].rec.results[0], self.slice_bits);
                let e = &mut self.window[idx];
                e.issued[k] = Some(self.cycle);
                e.ready[k] = Some(self.cycle + 1);
                if narrow_publish && e.slice_class != SliceClass::Atomic {
                    // Significance compression (§6 extension +
                    // ref [6]): a narrow result's upper slices
                    // are its sign bits — publish them with
                    // slice 0 and skip their execution.
                    self.stats.narrow_wakeups += 1;
                    emit!(self, TraceEvent::NarrowWakeup { seq: e.seq });
                    for j in 1..nslices {
                        e.issued[j] = Some(self.cycle);
                        e.ready[j] = Some(self.cycle + 1);
                    }
                }
                if e.slice_class == SliceClass::Atomic {
                    // Atomic ops (jr/jalr) issue once and
                    // publish every slice together.
                    for j in 0..nslices {
                        e.issued[j] = Some(self.cycle);
                        e.ready[j] = Some(self.cycle + 1);
                    }
                } else if late {
                    // slt-family: every result slice is a
                    // function of the full comparison, so
                    // nothing publishes until the top slice
                    // has evaluated.
                    if e.issued.iter().take(nslices).all(|i| i.is_some()) {
                        for j in 0..nslices {
                            e.ready[j] = Some(self.cycle + 1);
                        }
                    } else {
                        e.ready[k] = None;
                    }
                }
                if S::ENABLED {
                    // Emit exactly what changed: every slice
                    // issued this cycle (the narrow/atomic
                    // paths issue several at once) and every
                    // ready-slot the special cases rewrote.
                    let e = &self.window[idx];
                    for j in 0..nslices {
                        if e.issued[j] == Some(self.cycle) {
                            emit!(
                                self,
                                TraceEvent::SliceIssued {
                                    seq: e.seq,
                                    slice: j as u8
                                }
                            );
                        }
                        if e.ready[j] != before_ready[j] {
                            if let Some(at) = e.ready[j] {
                                emit!(
                                    self,
                                    TraceEvent::SliceReady {
                                        seq: e.seq,
                                        slice: j as u8,
                                        at,
                                    }
                                );
                            }
                        }
                    }
                }
                // One slice per entry per cycle. Publish: every result
                // slot this path schedules is set to `cycle + 1`, so any
                // newly scheduled slot wakes the waiters then. (The late
                // non-final case reverts its slot to `None` — no change,
                // nothing published.)
                let e = &self.window[idx];
                if (0..nslices).any(|j| e.ready[j].is_some() && e.ready[j] != before_ready[j]) {
                    self.wake_waiters(idx, self.cycle + 1);
                }
                return;
            }
        }
        // Nothing issued: park on the recorded blockers.
        for p in on_publish.into_iter().flatten() {
            self.wait_on(seq, p);
        }
        if let Some(t) = retry {
            self.wake_at(seq, t.max(self.cycle + 1));
        }
    }

    /// After an examination of a sliced entry, schedule whatever it is
    /// still waiting on that the issue paths themselves don't cover: the
    /// next slice after one issued this cycle, and a store's pending
    /// data operand.
    fn reschedule_pending(&mut self, idx: usize) {
        let entry = &self.window[idx];
        if entry.completed_at.is_some() {
            return;
        }
        let seq = entry.seq;
        // A slice issued this cycle: the next slice (or a slice that lost
        // ALU arbitration to it) becomes eligible next cycle.
        let issued_now = entry
            .issued
            .iter()
            .take(self.nslices)
            .any(|c| *c == Some(self.cycle));
        let store_data_pending =
            entry.is_store() && entry.mem.as_ref().unwrap().store_data_ready.is_none();
        if issued_now {
            self.wake_at(seq, self.cycle + 1);
        }
        if store_data_pending {
            match self.store_data_dep(idx) {
                Dep::InFlight(p) => match self.find(p) {
                    Some(prod) => match prod.result_ready_full(self.nslices) {
                        Some(r) => {
                            let at = r.max(self.cycle + 1);
                            self.wake_at(seq, at);
                        }
                        None => self.wait_on(seq, p),
                    },
                    // Producer committed: the next examination resolves.
                    None => self.wake_at(seq, self.cycle + 1),
                },
                // Register-file data reads by `earliest_ex`, which has
                // passed — `update_store_data` handles it this very
                // examination, so this arm is unreachable; poll if not.
                Dep::Ready => self.wake_at(seq, self.cycle + 1),
            }
        }
    }

    /// O(1) window position of `seq` (seqs are contiguous in the window).
    fn index_of(&self, seq: u64) -> Option<usize> {
        let head = self.window.front()?.seq;
        if seq < head {
            return None; // committed
        }
        let off = (seq - head) as usize;
        (off < self.window.len()).then_some(off)
    }

    /// Schedule an examination of `seq` at cycle `at` (clamped to the
    /// next issue opportunity — a wake for the past means "as soon as
    /// possible").
    #[inline]
    fn wake_at(&mut self, seq: u64, at: u64) {
        let at = at.max(self.cycle + 1);
        if at - self.cycle <= WHEEL_SLOTS {
            self.wheel[(at % WHEEL_SLOTS) as usize].push(seq);
        } else {
            self.far_wakeups.push(Reverse((at, seq)));
        }
    }

    /// Park `seq` on the waiter list of the in-window producer `pseq`:
    /// it re-enters the calendar when the producer publishes a result
    /// slice.
    fn wait_on(&mut self, seq: u64, pseq: u64) {
        match self.index_of(pseq) {
            Some(pi) => {
                let w = &mut self.window[pi].waiters;
                if !w.contains(&seq) {
                    w.push(seq);
                }
            }
            // Producer already committed — its value is ready; retry.
            None => self.wake_at(seq, self.cycle + 1),
        }
    }

    /// Wake everything parked on `window[idx]`'s result at cycle `at`.
    fn wake_waiters(&mut self, idx: usize, at: u64) {
        // Swap the list out so the heap pushes don't fight the window
        // borrow; hand the (cleared) allocation back for reuse.
        let mut ws = std::mem::take(&mut self.window[idx].waiters);
        for &w in &ws {
            self.wake_at(w, at);
        }
        ws.clear();
        self.window[idx].waiters = ws;
    }

    /// Shared tail of every all-slices-at-once scheduling path
    /// (serialized ops, the atomic functional units, atomic-operand
    /// pipelines, front-end-resolved jumps): mark the issue slots per
    /// `mark`, schedule every result slice at `done`, emit the matching
    /// events in each path's original order, and wake the waiters.
    fn publish_all_slices(&mut self, idx: usize, done: u64, mark: IssueMark) {
        let nslices = self.nslices;
        let e = &mut self.window[idx];
        let seq = e.seq;
        match mark {
            IssueMark::None => {}
            IssueMark::Slot0 => e.issued[0] = Some(self.cycle),
            IssueMark::AllSlices => {
                for k in 0..nslices {
                    e.issued[k] = Some(self.cycle);
                }
            }
        }
        for k in 0..nslices {
            e.ready[k] = Some(done);
        }
        if S::ENABLED {
            if mark == IssueMark::Slot0 {
                emit!(self, TraceEvent::SliceIssued { seq, slice: 0 });
            }
            for k in 0..nslices {
                if mark == IssueMark::AllSlices {
                    emit!(
                        self,
                        TraceEvent::SliceIssued {
                            seq,
                            slice: k as u8
                        }
                    );
                }
                emit!(
                    self,
                    TraceEvent::SliceReady {
                        seq,
                        slice: k as u8,
                        at: done
                    }
                );
            }
        }
        self.wake_waiters(idx, done);
    }

    /// Record why not every source slice of `window[idx]` is ready: the
    /// first busy source slice yields either a known future cycle or a
    /// producer to wait on.
    fn block_on_sources(&mut self, idx: usize) {
        let seq = self.window[idx].seq;
        for k in 0..self.nslices {
            if let Some(b) = self.source_block(idx, k) {
                self.apply_block(seq, b);
                return;
            }
        }
        // Sources ready after all (caller raced a same-cycle state
        // change): just retry.
        self.wake_at(seq, self.cycle + 1);
    }

    /// Why slice `k` of some source of `window[idx]` is unavailable this
    /// cycle, if it is.
    fn source_block(&self, idx: usize, k: usize) -> Option<Block> {
        let entry = &self.window[idx];
        for d in 0..entry.ndeps {
            if let Dep::InFlight(pseq) = entry.deps[d] {
                if let Some(p) = self.find(pseq) {
                    match p.result_ready(k) {
                        Some(r) if r <= self.cycle => {}
                        Some(r) => return Some(Block::Until(r)),
                        None => return Some(Block::OnPublish(pseq)),
                    }
                }
                // Producer committed → ready.
            }
        }
        None
    }

    fn apply_block(&mut self, seq: u64, b: Block) {
        match b {
            Block::Until(t) => self.wake_at(seq, t.max(self.cycle + 1)),
            Block::OnPublish(p) => self.wait_on(seq, p),
        }
    }

    /// Why `slice_can_issue(idx, k)` is false — `None` when the blocker
    /// is this entry's own earlier slice, whose eventual issue already
    /// reschedules the entry.
    fn slice_block(&self, idx: usize, k: usize) -> Option<Block> {
        let entry = &self.window[idx];
        let in_order_gate = match entry.slice_class {
            SliceClass::CarryChained | SliceClass::CrossSlice => k > 0,
            SliceClass::Independent => !self.cfg.opts.ooo_slices && k > 0,
            SliceClass::Atomic => false,
        };
        if in_order_gate {
            match entry.issued[k - 1] {
                Some(c) if c < self.cycle => {}
                Some(_) => return Some(Block::Until(self.cycle + 1)),
                None => return None, // cascades off the earlier slice
            }
        }
        match entry.slice_class {
            SliceClass::CarryChained | SliceClass::Independent => self.source_block(idx, k),
            SliceClass::CrossSlice => (0..self.nslices).find_map(|j| self.source_block(idx, j)),
            SliceClass::Atomic => {
                if k != 0 {
                    return None; // only slot 0 ever issues
                }
                (0..self.nslices).find_map(|j| self.source_block(idx, j))
            }
        }
    }

    /// Which dependence slot carries a store's *data* operand (rt).
    fn store_data_dep(&self, idx: usize) -> Dep {
        let entry = &self.window[idx];
        // The store's data register is its second source (rt); base is
        // rs. `uses()` yields [rs, rt] unless they dedup.
        let uses = entry.rec.insn.uses();
        let data_reg = entry.rec.insn.rt();
        let mut which = 0;
        for (i, r) in uses.iter().enumerate() {
            if r == data_reg {
                which = i;
            }
        }
        entry.deps[which]
    }

    fn effective_bypass(&self) -> bool {
        match self.cfg.kind {
            PipelineKind::Ideal => false, // single slice; irrelevant
            PipelineKind::SimplePipelined => false,
            PipelineKind::BitSliced => self.cfg.opts.partial_bypass,
        }
    }

    /// Are all slices of every source available by this cycle?
    fn all_sources_ready(&self, idx: usize) -> bool {
        (0..self.nslices).all(|k| self.sources_ready_at_slice(idx, k))
    }

    /// Is slice `k` of every source of `window[idx]` available? (Narrow
    /// producers publish their upper slices early at their own issue, so
    /// no consumer-side special case is needed.)
    fn sources_ready_at_slice(&self, idx: usize, k: usize) -> bool {
        let entry = &self.window[idx];
        for d in 0..entry.ndeps {
            if let Dep::InFlight(pseq) = entry.deps[d] {
                if let Some(p) = self.find(pseq) {
                    match p.result_ready(k) {
                        Some(r) if r <= self.cycle => {}
                        _ => return false,
                    }
                }
                // Producer committed → ready.
            }
        }
        true
    }

    /// A value is "narrow" when it is the sign- or zero-extension of its
    /// low slice (so all upper slices are all-zeros or all-ones).
    fn value_is_narrow(v: u32, slice_bits: u32) -> bool {
        let shifted = (v as i32) >> (slice_bits - 1);
        shifted == 0 || shifted == -1 || v >> slice_bits == 0
    }

    /// Readiness of slice `k` under the Fig. 8 inter-slice rules.
    fn slice_can_issue(&self, idx: usize, k: usize) -> bool {
        let entry = &self.window[idx];
        debug_assert!(entry.issued[k].is_none());
        match entry.slice_class {
            SliceClass::CarryChained => {
                // Needs the carry from slice k-1 (issued a cycle earlier)
                // and slice k of each source.
                if k > 0 {
                    match entry.issued[k - 1] {
                        Some(c) if c < self.cycle => {}
                        _ => return false,
                    }
                }
                self.sources_ready_at_slice(idx, k)
            }
            SliceClass::Independent => {
                if !self.cfg.opts.ooo_slices && k > 0 {
                    match entry.issued[k - 1] {
                        Some(c) if c < self.cycle => {}
                        _ => return false,
                    }
                }
                self.sources_ready_at_slice(idx, k)
            }
            SliceClass::CrossSlice => {
                // Shifts: all source slices, slices in order.
                if k > 0 {
                    match entry.issued[k - 1] {
                        Some(c) if c < self.cycle => {}
                        _ => return false,
                    }
                }
                (0..self.nslices).all(|j| self.sources_ready_at_slice(idx, j))
            }
            SliceClass::Atomic => {
                // jr/jalr and friends: single issue when fully ready.
                k == 0 && self.all_sources_ready(idx)
            }
        }
    }

    fn find(&self, seq: u64) -> Option<&Entry> {
        let head = self.window.front()?.seq;
        if seq < head {
            return None; // committed
        }
        self.window.get((seq - head) as usize)
    }

    /// Record branch resolution (redirect release) once enough slices have
    /// finished.
    fn resolve_branch_if_possible(&mut self, idx: usize) {
        let entry = &self.window[idx];
        if entry.resolved_at.is_some() {
            return;
        }
        let op = entry.rec.insn.op();
        if !op.is_control() {
            return;
        }
        let nslices = self.nslices;
        if matches!(op, Op::Jr | Op::Jalr) {
            // Atomic: resolved one cycle after issue.
            if let Some(c) = entry.issued[0] {
                let (seq, mispredicted) = (entry.seq, entry.mispredicted);
                self.window[idx].resolved_at = Some(c + 1);
                emit!(
                    self,
                    TraceEvent::BranchResolved {
                        seq,
                        at: c + 1,
                        early: false,
                        mispredicted
                    }
                );
            }
            return;
        }
        let Some(cond) = op.branch_cond() else { return };

        let resolve_slice = if entry.mispredicted
            && self.cfg.kind == PipelineKind::BitSliced
            && self.cfg.opts.early_branch
            && cond.early_resolvable()
        {
            // Resolve operand values by register so `beq rX, rX` (whose
            // use set dedups) still sees both sides correctly.
            let rs = entry.rec.src_vals[0];
            let rt = entry.rec.src_val(entry.rec.insn.rt()).unwrap_or(0);
            // predicted = !actual since mispredicted.
            let bits = mispredict_detection_bit(cond, rs, rt, !entry.rec.taken)
                .expect("mispredicted branch must be detectable");
            (((bits.max(1) - 1) / self.slice_bits) as usize).min(nslices - 1)
        } else {
            nslices - 1
        };

        // With independent equality slices, detection needs only the
        // divergent slice; otherwise every slice up to it.
        let needed_done: Option<u64> = if cond.early_resolvable() {
            self.window[idx].ready[resolve_slice]
        } else {
            let e = &self.window[idx];
            (0..=resolve_slice)
                .map(|k| e.ready[k])
                .try_fold(0u64, |acc, r| r.map(|v| acc.max(v)))
        };
        if let Some(done) = needed_done {
            let e = &mut self.window[idx];
            e.resolved_at = Some(done);
            let early = e.mispredicted && resolve_slice < nslices - 1;
            if early {
                self.stats.early_branch_resolves += 1;
                // Savings estimate: remaining slices would each have taken
                // at least one more cycle.
                self.stats.early_branch_cycles_saved += (nslices - 1 - resolve_slice) as u64;
            }
            let (seq, mispredicted) = (e.seq, e.mispredicted);
            emit!(
                self,
                TraceEvent::BranchResolved {
                    seq,
                    at: done,
                    early,
                    mispredicted
                }
            );
        }
    }

    /// Track when a store's data operand becomes fully available.
    fn update_store_data(&mut self, idx: usize) {
        let entry = &self.window[idx];
        if !entry.is_store() {
            return;
        }
        if entry.mem.as_ref().unwrap().store_data_ready.is_some() {
            return;
        }
        let ready = match self.store_data_dep(idx) {
            // Register-file values are read by RF2 at the latest.
            Dep::Ready => Some(entry.earliest_ex),
            Dep::InFlight(p) => match self.find(p) {
                Some(prod) => prod.result_ready_full(self.nslices),
                None => Some(self.cycle),
            },
        };
        if let Some(r) = ready {
            if r <= self.cycle {
                self.window[idx].mem.as_mut().unwrap().store_data_ready = Some(r.max(1));
            }
        }
    }

    /// Mark the entry complete when every obligation is met.
    fn finish_if_done(&mut self, idx: usize) {
        let nslices = self.nslices;
        let entry = &self.window[idx];
        if entry.completed_at.is_some() {
            return;
        }
        let mut done = 0u64;
        for k in 0..nslices {
            match entry.ready[k] {
                Some(r) => done = done.max(r),
                None => return,
            }
        }
        if let Some(m) = &entry.mem {
            if entry.rec.insn.op().is_load() {
                match m.data_ready {
                    Some(r) => done = done.max(r),
                    None => return,
                }
            } else {
                match m.store_data_ready {
                    Some(r) => done = done.max(r),
                    None => return,
                }
            }
        }
        if entry.rec.insn.op().is_control() {
            match entry.resolved_at {
                Some(r) => done = done.max(r),
                None => return,
            }
        }
        let seq = entry.seq;
        self.window[idx].completed_at = Some(done);
        emit!(self, TraceEvent::Completed { seq, at: done });
    }

    // ---- memory ----------------------------------------------------------

    /// Start load accesses whose constraints have cleared.
    ///
    /// Walks only the loads that have not started (in age order) rather
    /// than the whole window; loads re-check their constraints every
    /// cycle, so no wakeup bookkeeping is needed here.
    fn memory_stage(&mut self) {
        let mut ports_used = 0u32;
        let mut any_started = false;
        // Detach the pending-load list so the loop can mutate the window
        // (dispatch refills the list later in the cycle, after this
        // stage runs, so it cannot grow underneath the loop).
        let mut pending = std::mem::take(&mut self.pending_loads);
        for &seq in &pending {
            if ports_used >= self.cfg.mem_ports {
                break;
            }
            let Some(idx) = self.index_of(seq) else {
                continue;
            };
            let entry = &self.window[idx];
            debug_assert!(entry.is_load() && entry.mem.as_ref().unwrap().started.is_none());
            let bit_sliced = self.cfg.kind == PipelineKind::BitSliced;
            // How many low address bits are known right now? The agen
            // produces them; sum-addressed decode (§5.2 → \[18\]) can read
            // them straight from the base-register slices.
            let agen_known = self.agen_slices_known(idx);
            let mut known_slices = agen_known;
            let mut via_sam = false;
            if bit_sliced && self.cfg.opts.sum_addressed && self.cycle >= entry.earliest_ex {
                let sam = self.sam_slices_ready(idx);
                if sam > known_slices {
                    known_slices = sam;
                    via_sam = true;
                }
            }
            if known_slices == 0 {
                continue;
            }
            let known_bits = known_slices as u32 * self.slice_bits;
            // The LSQ compares computed (agen) address bits only.
            let dis_bits = agen_known as u32 * self.slice_bits;

            let partial_tag_on = bit_sliced && self.cfg.opts.partial_tag;
            let index_ok = if partial_tag_on {
                self.cfg.memory.l1d.partial_tag_bits(known_bits).is_some()
            } else {
                known_slices == self.nslices
            };
            if !index_ok {
                continue;
            }

            // Disambiguation against older stores; blocked loads may still
            // proceed on the dependence predictor's say-so (MCB-style).
            let mut dep_speculating = false;
            let forward_from = match self.disambiguate(idx, dis_bits) {
                Some(f) => f,
                None => {
                    let pc = self.window[idx].rec.pc;
                    let slot = Self::mem_dep_slot(pc);
                    if !(bit_sliced
                        && self.cfg.opts.mem_dep_predict
                        && self.mem_dep_table[slot] >= 2)
                    {
                        continue; // wait for the stores
                    }
                    // Oracle violation check: does any older in-window
                    // store actually overlap this load?
                    let load_rec = self.window[idx].rec;
                    let conflict = self
                        .store_q
                        .iter()
                        .take_while(|&&s| s < seq)
                        .any(|&s| ranges_overlap(&self.find(s).unwrap().rec, &load_rec));
                    if conflict {
                        // Violation: squash the speculation, train the
                        // predictor down (sticky conflict, MCB-style),
                        // and wait for the normal path — the replay cost
                        // is charged when the load finally starts.
                        self.stats.mem_dep_violations += 1;
                        self.mem_dep_table[slot] = 0;
                        let e = &mut self.window[idx];
                        e.mem.as_mut().unwrap().dep_speculated = true;
                        self.stats.load_replays += 1;
                        emit!(self, TraceEvent::MemDepViolation { seq });
                        emit!(
                            self,
                            TraceEvent::Replay {
                                seq,
                                reason: ReplayReason::MemDepViolation
                            }
                        );
                        continue;
                    }
                    self.stats.mem_dep_speculations += 1;
                    emit!(self, TraceEvent::MemDepSpeculated { seq });
                    let t = &mut self.mem_dep_table[slot];
                    *t = (*t + 1).min(3);
                    dep_speculating = true;
                    ForwardDecision::Access
                }
            };
            let _ = dep_speculating;
            // Did partial knowledge let this load pass older stores whose
            // full addresses (or the load's own) were still incomplete?
            let early_on = self.cfg.kind == PipelineKind::BitSliced && self.cfg.opts.early_disambig;
            if early_on
                && matches!(forward_from, ForwardDecision::Access)
                && self
                    .store_q
                    .iter()
                    .take_while(|&&s| s < seq)
                    .any(|&s| self.agen_slices_known_of(self.find(s).unwrap()) < self.nslices)
            {
                self.stats.early_disambig_loads += 1;
                emit!(self, TraceEvent::EarlyDisambig { seq });
            }

            let addr = self.window[idx].rec.ea;
            match forward_from {
                ForwardDecision::Forward(store_seq) => {
                    // Wait for the store's data, then a 1-cycle bypass.
                    let data_at = self
                        .find(store_seq)
                        .and_then(|s| s.mem.as_ref().unwrap().store_data_ready)
                        .map(|r| r.max(self.cycle) + 1);
                    if let Some(r) = data_at {
                        ports_used += 1;
                        any_started = true;
                        self.stats.store_forwards += 1;
                        let e = &mut self.window[idx];
                        let m = e.mem.as_mut().unwrap();
                        m.started = Some(self.cycle);
                        m.data_ready = Some(r);
                        emit!(
                            self,
                            TraceEvent::StoreForward {
                                load_seq: seq,
                                store_seq
                            }
                        );
                        emit!(self, TraceEvent::MemStarted { seq });
                        emit!(self, TraceEvent::MemDone { seq, at: r });
                        self.wake_waiters(idx, r);
                        self.finish_if_done(idx);
                    }
                    continue;
                }
                ForwardDecision::SpecForward(store_seq) => {
                    let Some(store) = self.find(store_seq) else {
                        continue;
                    };
                    let Some(data_at) = store.mem.as_ref().unwrap().store_data_ready else {
                        continue; // store data not ready: keep waiting
                    };
                    ports_used += 1;
                    any_started = true;
                    let load_rec = self.window[idx].rec;
                    let correct = store_covers_load(&store.rec, &load_rec);
                    let store_full = self.full_agen_time_of(store);
                    if correct {
                        // Verification (when both agens finish) confirms.
                        self.stats.spec_forwards += 1;
                        let r = data_at.max(self.cycle) + 1;
                        let e = &mut self.window[idx];
                        let m = e.mem.as_mut().unwrap();
                        m.started = Some(self.cycle);
                        m.data_ready = Some(r);
                        emit!(
                            self,
                            TraceEvent::SpecForward {
                                load_seq: seq,
                                store_seq,
                                ok: true
                            }
                        );
                        emit!(self, TraceEvent::MemStarted { seq });
                        emit!(self, TraceEvent::MemDone { seq, at: r });
                        self.wake_waiters(idx, r);
                    } else {
                        // Refuted at verification: replay via the cache
                        // after both full addresses are known.
                        self.stats.spec_forwards += 1;
                        self.stats.spec_forward_wrong += 1;
                        self.stats.load_replays += 1;
                        let verify = self
                            .full_agen_time(idx)
                            .unwrap_or(self.cycle)
                            .max(store_full.unwrap_or(self.cycle));
                        self.stats.l1d_accesses += 1;
                        let access = self.memory.access_data(addr);
                        if access.l1_hit {
                            self.stats.l1d_hits += 1;
                        }
                        let r = verify.max(self.cycle) + 1 + access.latency as u64;
                        let e = &mut self.window[idx];
                        let m = e.mem.as_mut().unwrap();
                        m.started = Some(self.cycle);
                        m.data_ready = Some(r);
                        emit!(
                            self,
                            TraceEvent::SpecForward {
                                load_seq: seq,
                                store_seq,
                                ok: false
                            }
                        );
                        emit!(
                            self,
                            TraceEvent::Replay {
                                seq,
                                reason: ReplayReason::SpecForwardWrong
                            }
                        );
                        emit!(self, TraceEvent::MemStarted { seq });
                        emit!(self, TraceEvent::MemDone { seq, at: r });
                        self.wake_waiters(idx, r);
                    }
                    self.finish_if_done(idx);
                    continue;
                }
                ForwardDecision::Access => {}
            }
            ports_used += 1;
            any_started = true;
            if via_sam && agen_known < known_slices {
                self.stats.sam_starts += 1;
                emit!(self, TraceEvent::SamStart { seq });
            }

            // Probe (for partial-tag classification) then access. The
            // index may come from the SAM decoder, but *tag* bits exist
            // only once the agen has computed them — with none available
            // the probe degenerates to pure MRU way prediction.
            self.stats.l1d_accesses += 1;
            let speculative = partial_tag_on && (dis_bits < 32 || known_bits < 32);
            let probe = if speculative {
                let tag_bits = self.cfg.memory.l1d.partial_tag_bits(dis_bits).unwrap_or(0);
                Some(self.memory.l1d().partial_probe(addr, tag_bits))
            } else {
                None
            };
            let access = self.memory.access_data(addr);
            if access.l1_hit {
                self.stats.l1d_hits += 1;
            }
            let full_addr_at = self.full_agen_time(idx);

            let data_ready = if let Some(outcome) = probe {
                self.stats.partial_tag_accesses += 1;
                emit!(self, TraceEvent::PartialTagProbe { seq, outcome });
                match outcome {
                    PartialOutcome::ZeroMatch => {
                        // Early, non-speculative miss: start the L2 access
                        // now.
                        self.stats.partial_tag_early_miss += 1;
                        self.cycle + access.latency as u64
                    }
                    PartialOutcome::SingleHit { .. }
                    | PartialOutcome::MultiMatch {
                        mru_correct: true, ..
                    } => {
                        // Correct way speculation: data after the L1
                        // latency, verified in the background.
                        self.cycle + self.cfg.memory.l1_latency as u64
                    }
                    PartialOutcome::SingleMiss
                    | PartialOutcome::MultiMatch {
                        mru_correct: false, ..
                    } => {
                        // Way mispredict: verification at full-address time
                        // kills the speculation; the access restarts.
                        self.stats.way_mispredicts += 1;
                        self.stats.load_replays += 1;
                        emit!(
                            self,
                            TraceEvent::Replay {
                                seq,
                                reason: ReplayReason::WayMispredict
                            }
                        );
                        let restart = full_addr_at.unwrap_or(self.cycle) + 1;
                        restart.max(self.cycle) + access.latency as u64
                    }
                }
            } else {
                if !access.l1_hit {
                    self.stats.load_replays += 1;
                    emit!(
                        self,
                        TraceEvent::Replay {
                            seq,
                            reason: ReplayReason::CacheMiss
                        }
                    );
                }
                self.cycle + access.latency as u64
            };

            let e = &mut self.window[idx];
            let m = e.mem.as_mut().unwrap();
            m.started = Some(self.cycle);
            // A load that earlier mis-speculated past a conflicting store
            // pays a replay bubble on its eventual (correct) attempt.
            let at = data_ready + 2 * m.dep_speculated as u64;
            m.data_ready = Some(at);
            emit!(self, TraceEvent::MemStarted { seq });
            emit!(self, TraceEvent::MemDone { seq, at });
            self.wake_waiters(idx, at);
            self.finish_if_done(idx);
        }
        if any_started {
            pending.retain(|&s| {
                self.index_of(s)
                    .is_some_and(|i| self.window[i].mem.as_ref().unwrap().started.is_none())
            });
        }
        self.pending_loads = pending;
    }

    /// Number of contiguous low source slices available for sum-addressed
    /// decode (loads have a single base-register source).
    fn sam_slices_ready(&self, idx: usize) -> usize {
        let mut n = 0;
        for k in 0..self.nslices {
            if self.sources_ready_at_slice(idx, k) {
                n += 1;
            } else {
                break;
            }
        }
        n
    }

    /// Number of contiguous low agen slices of `window[idx]` whose results
    /// are available this cycle.
    fn agen_slices_known(&self, idx: usize) -> usize {
        self.agen_slices_known_of(&self.window[idx])
    }

    fn agen_slices_known_of(&self, entry: &Entry) -> usize {
        let mut n = 0;
        for k in 0..self.nslices {
            match entry.ready[k] {
                Some(r) if r <= self.cycle => n += 1,
                _ => break,
            }
        }
        n
    }

    /// Cycle the full address is known.
    fn full_agen_time(&self, idx: usize) -> Option<u64> {
        self.full_agen_time_of(&self.window[idx])
    }

    fn full_agen_time_of(&self, entry: &Entry) -> Option<u64> {
        let mut t = 0u64;
        for k in 0..self.nslices {
            t = t.max(entry.ready[k]?);
        }
        Some(t)
    }

    /// Can the load at `window[idx]` (with `known_bits` of its own address)
    /// proceed past every older store this cycle?
    fn disambiguate(&self, idx: usize, known_bits: u32) -> Option<ForwardDecision> {
        let load = &self.window[idx];
        let load_seq = load.seq;
        let load_word = load.rec.ea & !3;
        let early = self.cfg.kind == PipelineKind::BitSliced && self.cfg.opts.early_disambig;
        let spec = early && self.cfg.opts.spec_forward;
        let mut forward: Option<u64> = None;
        let mut partial_matcher: Option<u64> = None;
        let mut partial_matches = 0u32;

        // Older stores, youngest first (the store queue is age-ordered).
        for &sseq in self.store_q.iter().rev().skip_while(|&&s| s >= load_seq) {
            let store = self.find(sseq).expect("queued store is in-window");
            let store_known = self.agen_slices_known_of(store) as u32 * self.slice_bits;
            let store_word = store.rec.ea & !3;

            if early {
                // Compare the low bits both sides know.
                let common = known_bits.min(store_known);
                if common == 0 {
                    return None; // store address totally unknown
                }
                let mask = if common >= 32 {
                    u32::MAX
                } else {
                    (1 << common) - 1
                } & !3;
                if (load_word ^ store_word) & mask != 0 {
                    continue; // ruled out by partial mismatch
                }
                if known_bits >= 32 && store_known >= 32 {
                    // Both full addresses known: decide at byte accuracy.
                    if ranges_overlap(&store.rec, &load.rec) {
                        if store_covers_load(&store.rec, &load.rec) {
                            forward = forward.or(Some(store.seq));
                            break; // youngest covering store wins
                        }
                        // Partial overlap: wait until the store retires
                        // and the bytes land in the cache.
                        return None;
                    }
                    continue; // same word, disjoint bytes: no dependence
                }
                // A partial match with incomplete addresses: §5.1's
                // extension may speculate on a *unique* matcher —
                // restricted to word/word pairs, where a partial address
                // match implies a forwardable full match.
                if !spec || load.rec.insn.op() != Op::Lw || store.rec.insn.op() != Op::Sw {
                    return None;
                }
                partial_matches += 1;
                if partial_matches == 1 {
                    partial_matcher = Some(store.seq);
                }
                continue;
            }

            // Conventional: every older store's full address must be known.
            if store_known < 32 {
                return None;
            }
            if known_bits < 32 {
                return None; // and the load's own full address
            }
            if ranges_overlap(&store.rec, &load.rec) {
                if store_covers_load(&store.rec, &load.rec) {
                    forward = Some(store.seq);
                    break;
                }
                return None; // partial overlap: wait for the store
            }
            let _ = store_word;
        }

        if forward.is_none() && partial_matches > 0 {
            debug_assert!(spec);
            return if partial_matches == 1 {
                // Speculatively treat the unique partial matcher as the
                // forwarding store; verified when the addresses complete.
                Some(ForwardDecision::SpecForward(partial_matcher.unwrap()))
            } else {
                None // several candidates: wait for full addresses
            };
        }
        Some(match forward {
            Some(seq) => ForwardDecision::Forward(seq),
            None => ForwardDecision::Access,
        })
    }

    // ---- commit ----------------------------------------------------------

    fn commit(&mut self) {
        for _ in 0..self.cfg.width {
            let Some(head) = self.window.front() else {
                return;
            };
            if head.phantom {
                // Wrong-path work never retires; it waits for the squash.
                return;
            }
            match head.completed_at {
                Some(c) if c <= self.cycle => {}
                _ => return,
            }
            let head = self.window.pop_front().unwrap();
            // A completed producer has published every result slice, and
            // publishing drains the waiter list.
            debug_assert!(head.waiters.is_empty());
            emit!(self, TraceEvent::Committed { seq: head.seq });
            self.stats.committed += 1;
            let op = head.rec.insn.op();
            if head.is_mem() {
                self.lsq_occupancy -= 1;
            }
            if op.is_store() {
                debug_assert_eq!(self.store_q.front(), Some(&head.seq));
                self.store_q.pop_front();
            }
            debug_assert!(!op.is_load() || !self.pending_loads.contains(&head.seq));
            if op.is_load() {
                self.stats.loads += 1;
            }
            if op.is_store() {
                self.stats.stores += 1;
                // The store writes the cache at retirement.
                self.stats.l1d_accesses += 1;
                if self.memory.access_data(head.rec.ea).l1_hit {
                    self.stats.l1d_hits += 1;
                }
            }
            // Clear producer entries that still point at this instruction.
            for r in head.rec.insn.defs().iter() {
                if self.producer[r.index()] == Some(head.seq) {
                    self.producer[r.index()] = None;
                }
            }
        }
    }
}

enum ForwardDecision {
    /// Forward from the store with this sequence number.
    Forward(u64),
    /// Speculatively forward from the unique partial-address matcher
    /// before the full addresses resolve (§5.1 extension).
    SpecForward(u64),
    /// No older store conflicts: access the cache.
    Access,
}

/// Why a wakeup-driven examination could not make progress, and when
/// (or on what) to try again.
enum Block {
    /// Re-examine at this cycle (a known ready time, or next cycle for
    /// per-cycle resources).
    Until(u64),
    /// Park on the producer with this seq until it publishes a result
    /// slice.
    OnPublish(u64),
}

/// How [`publish_all_slices`](Simulator::publish_all_slices) marks the
/// issue slots: not at all (front-end-resolved jumps — no issue event),
/// slot 0 only (serialized ops and the atomic functional units), or
/// every slice at once (atomic-operand pipelines), matching each
/// caller's original event order.
#[derive(Clone, Copy, PartialEq)]
enum IssueMark {
    None,
    Slot0,
    AllSlices,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Optimizations;
    use popk_isa::asm::assemble;

    fn run_cfg(src: &str, cfg: &MachineConfig) -> SimStats {
        let p = assemble(src).unwrap();
        simulate(&p, cfg, 1_000_000)
    }

    /// A loop of dependent adds isolates dependency-edge latency (looped
    /// so the I-cache warms up and the branch trains).
    fn dependent_chain() -> String {
        let mut s = String::from(".text\nmain:\n  li r8, 1\n  li r20, 300\nloop:\n");
        for _ in 0..32 {
            s.push_str("  addu r8, r8, r8\n");
        }
        s.push_str("  addiu r20, r20, -1\n  bne r20, r0, loop\n  li r2, 0\n  syscall\n");
        s
    }

    /// Independent adds isolate issue bandwidth.
    fn independent_stream() -> String {
        let mut s = String::from(".text\nmain:\n  li r20, 300\nloop:\n");
        for i in 0..32 {
            let r = 8 + (i % 8);
            s.push_str(&format!("  addu r{r}, r0, r0\n"));
        }
        s.push_str("  addiu r20, r20, -1\n  bne r20, r0, loop\n  li r2, 0\n  syscall\n");
        s
    }

    #[test]
    fn ideal_runs_dependent_chain_at_ipc_1() {
        let stats = run_cfg(&dependent_chain(), &MachineConfig::ideal());
        let ipc = stats.ipc();
        assert!(ipc > 0.85 && ipc <= 1.1, "ideal chain IPC {ipc}");
    }

    #[test]
    fn simple_pipelining_halves_chain_throughput() {
        let s2 = run_cfg(&dependent_chain(), &MachineConfig::simple2());
        let ideal = run_cfg(&dependent_chain(), &MachineConfig::ideal());
        let ratio = s2.ipc() / ideal.ipc();
        assert!(
            (0.4..0.65).contains(&ratio),
            "simple-2 should run the chain at about half speed, ratio {ratio}"
        );
        let s4 = run_cfg(&dependent_chain(), &MachineConfig::simple4());
        let ratio4 = s4.ipc() / ideal.ipc();
        assert!(
            (0.2..0.4).contains(&ratio4),
            "simple-4 should run the chain at about quarter speed, ratio {ratio4}"
        );
    }

    #[test]
    fn partial_bypass_recovers_chain_throughput() {
        let sliced = run_cfg(
            &dependent_chain(),
            &MachineConfig::slice2(Optimizations::level(1)),
        );
        let ideal = run_cfg(&dependent_chain(), &MachineConfig::ideal());
        let ratio = sliced.ipc() / ideal.ipc();
        assert!(
            ratio > 0.9,
            "partial bypassing should restore back-to-back chains, ratio {ratio}"
        );
    }

    #[test]
    fn independent_work_saturates_width() {
        let stats = run_cfg(&independent_stream(), &MachineConfig::ideal());
        assert!(stats.ipc() > 2.0, "independent stream IPC {}", stats.ipc());
    }

    #[test]
    fn mispredicts_are_counted_and_resolved() {
        // A data-dependent alternating branch.
        let src = r#"
            .text
            main:
                li r8, 400
            loop:
                andi r9, r8, 1
                beq r9, r0, even
                nop
            even:
                addiu r8, r8, -1
                bne r8, r0, loop
                li r2, 0
                syscall
        "#;
        let stats = run_cfg(src, &MachineConfig::ideal());
        assert!(stats.branches >= 800);
        assert!(stats.branch_mispredicts > 0);
        assert_eq!(
            stats.committed,
            run_cfg(src, &MachineConfig::slice4_full()).committed
        );
    }

    #[test]
    fn early_branch_resolution_helps_slice4() {
        let src = r#"
            .text
            main:
                li r8, 2000
            loop:
                andi r9, r8, 1
                beq r9, r0, even    # alternates: mispredicts, detectable at bit 0
                nop
            even:
                addiu r8, r8, -1
                bne r8, r0, loop
                li r2, 0
                syscall
        "#;
        let without = run_cfg(src, &MachineConfig::slice4(Optimizations::level(2)));
        let with = run_cfg(src, &MachineConfig::slice4(Optimizations::level(3)));
        assert!(with.early_branch_resolves > 0);
        assert!(
            with.cycles <= without.cycles,
            "early branch resolution must not slow the machine"
        );
    }

    #[test]
    fn loads_wait_for_older_store_addresses() {
        // A store whose address depends on a long op, followed by an
        // unrelated load: conventionally the load waits; with early
        // disambiguation it can pass once low slices mismatch.
        let src = r#"
            .text
            main:
                li r16, 0x10000000
                li r17, 0x10008000
                li r8, 300
            loop:
                mult r8, r8
                mflo r9
                andi r9, r9, 0xffc
                addu r9, r9, r16
                sw r8, 0(r9)         # store: address slow (behind mult)
                lw r10, 0(r17)       # load at a clearly different address
                addiu r8, r8, -1
                bne r8, r0, loop
                li r2, 0
                syscall
        "#;
        let conv = run_cfg(src, &MachineConfig::slice2(Optimizations::level(3)));
        let early = run_cfg(src, &MachineConfig::slice2(Optimizations::level(4)));
        assert!(
            early.cycles < conv.cycles,
            "early disambiguation should shorten load wait: {} vs {}",
            early.cycles,
            conv.cycles
        );
    }

    #[test]
    fn store_forwarding_works() {
        // The divide keeps commit blocked, so the store must sit in the
        // window while the load needs its data: only forwarding can
        // satisfy the load.
        let src = r#"
            .text
            main:
                li r16, 0x10000000
                li r17, 3
                li r8, 200
            loop:
                div r8, r17          # 20-cycle commit blocker
                sw r8, 0(r16)
                lw r9, 0(r16)        # must forward from the store
                addiu r8, r8, -1
                bne r8, r0, loop
                li r2, 0
                syscall
        "#;
        let stats = run_cfg(src, &MachineConfig::ideal());
        assert!(
            stats.store_forwards >= 100,
            "forwards: {}",
            stats.store_forwards
        );
    }

    #[test]
    fn partial_tag_speculation_counts() {
        let src = r#"
            .text
            main:
                li r16, 0x10000000
                li r8, 500
            loop:
                andi r9, r8, 255
                sll r9, r9, 2
                addu r9, r9, r16
                lw r10, 0(r9)
                addiu r8, r8, -1
                bne r8, r0, loop
                li r2, 0
                syscall
        "#;
        let stats = run_cfg(src, &MachineConfig::slice2_full());
        assert!(stats.partial_tag_accesses > 0);
        let base = run_cfg(src, &MachineConfig::slice2(Optimizations::level(4)));
        assert!(
            stats.cycles <= base.cycles,
            "partial tagging should not slow down: {} vs {}",
            stats.cycles,
            base.cycles
        );
    }

    #[test]
    fn all_configs_commit_every_instruction() {
        let src = r#"
            .text
            main:
                li r16, 0x10000000
                li r8, 50
            loop:
                sw r8, 0(r16)
                lw r9, 0(r16)
                mult r9, r8
                mflo r10
                sra r10, r10, 2
                bne r8, r0, cont
            cont:
                addiu r8, r8, -1
                bgtz r8, loop
                li r2, 0
                syscall
        "#;
        let configs = [
            MachineConfig::ideal(),
            MachineConfig::simple2(),
            MachineConfig::simple4(),
            MachineConfig::slice2_full(),
            MachineConfig::slice4_full(),
            MachineConfig::slice2(Optimizations::level(2)),
            MachineConfig::slice4(Optimizations::level(3)),
        ];
        let expect = run_cfg(src, &configs[0]).committed;
        assert!(expect > 300);
        for cfg in &configs {
            let s = run_cfg(src, cfg);
            assert_eq!(s.committed, expect, "{}", cfg.label());
            assert!(s.cycles > 0);
        }
    }

    #[test]
    fn spec_forward_speculates_on_unique_partial_match() {
        // The store's address resolves slowly (behind a divide) but always
        // matches the load: with spec_forward the load's data arrives from
        // the store before the addresses are provably equal.
        let src = r#"
            .text
            main:
                li r16, 0x10000000
                li r17, 7
                li r8, 300
            loop:
                div r8, r17
                mflo r9
                andi r9, r9, 0
                addu r9, r9, r16     # always r16, but slow to compute
                sw r8, 0(r9)
                lw r10, 0(r16)       # same address every iteration
                addiu r8, r8, -1
                bgtz r8, loop
                li r2, 0
                syscall
        "#;
        let base = MachineConfig::slice2(Optimizations::level(5));
        let mut spec_cfg = base;
        spec_cfg.opts.spec_forward = true;
        let without = run_cfg(src, &base);
        let with = run_cfg(src, &spec_cfg);
        assert!(
            with.spec_forwards > 100,
            "spec forwards: {}",
            with.spec_forwards
        );
        assert_eq!(with.spec_forward_wrong, 0, "addresses always match here");
        assert!(
            with.cycles < without.cycles,
            "speculative forwarding should cut the wait: {} vs {}",
            with.cycles,
            without.cycles
        );
    }

    #[test]
    fn spec_forward_wrong_paths_replay() {
        // The store alternates between two addresses sharing low bits but
        // differing at bit 16; the load always reads the first. Unique
        // partial matches sometimes verify wrong.
        let src = r#"
            .text
            main:
                li r16, 0x10000000
                li r17, 0x10010000   # same low 16 bits as r16
                li r18, 0x100
                li r8, 300
            loop:
                div r8, r18          # slow down the select
                mflo r9
                andi r9, r8, 1
                move r10, r16
                beq r9, r0, even
                move r10, r17
            even:
                sw r8, 0(r10)        # alternating store address
                lw r11, 0(r16)
                addiu r8, r8, -1
                bgtz r8, loop
                li r2, 0
                syscall
        "#;
        let mut cfg = MachineConfig::slice2(Optimizations::level(5));
        cfg.opts.spec_forward = true;
        let s = run_cfg(src, &cfg);
        assert!(s.spec_forwards > 0);
        assert!(s.spec_forward_wrong > 0, "some speculations must fail");
        assert!(s.spec_forward_wrong < s.spec_forwards);
    }

    #[test]
    fn narrow_operands_wake_upper_slices_early() {
        // Small values everywhere: upper slices are implied by slice 0,
        // so branches resolve sooner.
        let src = r#"
            .text
            main:
                li r8, 3000
            loop:
                addiu r9, r8, 0
                andi r10, r9, 3
                bne r10, r0, skip
                addiu r9, r9, 1
            skip:
                addiu r8, r8, -1
                bgtz r8, loop
                li r2, 0
                syscall
        "#;
        let base = MachineConfig::slice4(Optimizations::level(5));
        let mut narrow = base;
        narrow.opts.narrow_operands = true;
        let without = run_cfg(src, &base);
        let with = run_cfg(src, &narrow);
        assert!(
            with.narrow_wakeups > 1000,
            "wakeups: {}",
            with.narrow_wakeups
        );
        assert!(
            with.cycles <= without.cycles,
            "narrow relaxation must not hurt: {} vs {}",
            with.cycles,
            without.cycles
        );
        assert_eq!(with.committed, without.committed);
    }

    #[test]
    fn mem_dep_prediction_passes_unknown_stores() {
        // The store address computes slowly (behind a divide); the load
        // never conflicts. Conventionally the load waits every iteration;
        // the dependence predictor lets it go immediately.
        let src = r#"
            .text
            main:
                li r16, 0x10000000
                li r17, 0x10008000
                li r8, 300
            loop:
                # Slow store address: a 10-op dependent chain.
                addu r9, r8, r16
                xor  r9, r9, r8
                addu r9, r9, r8
                xor  r9, r9, r8
                addu r9, r9, r8
                xor  r9, r9, r8
                addu r9, r9, r8
                xor  r9, r9, r8
                andi r9, r9, 0xfc
                addu r9, r9, r16
                sw r8, 0(r9)         # slow, never-conflicting store
                lw r10, 0(r17)       # independent load, conventionally blocked
                # Long dependent work fed by the load.
                addu r11, r10, r8
                xor  r11, r11, r10
                addu r11, r11, r10
                xor  r11, r11, r10
                addu r11, r11, r10
                xor  r11, r11, r10
                addu r11, r11, r10
                xor  r11, r11, r10
                addu r11, r11, r10
                xor  r11, r11, r10
                sw r11, 4(r17)
                addiu r8, r8, -1
                bgtz r8, loop
                li r2, 0
                syscall
        "#;
        let base = MachineConfig::slice2(Optimizations::all());
        let mut md = base;
        md.opts.mem_dep_predict = true;
        let without = run_cfg(src, &base);
        let with = run_cfg(src, &md);
        assert!(
            with.mem_dep_speculations > 100,
            "specs: {}",
            with.mem_dep_speculations
        );
        assert_eq!(with.mem_dep_violations, 0);
        assert!(
            with.cycles < without.cycles,
            "prediction should unblock the load: {} vs {}",
            with.cycles,
            without.cycles
        );
    }

    #[test]
    fn mem_dep_violations_train_the_predictor_down() {
        // The load always conflicts with the slow store: the predictor
        // speculates once, violates, and goes quiet.
        let src = r#"
            .text
            main:
                li r16, 0x10000000
                li r18, 5
                li r8, 300
            loop:
                div r8, r18
                mflo r9
                andi r9, r9, 0
                addu r9, r9, r16
                sw r8, 0(r9)         # always 0x10000000, slowly
                lw r10, 0(r16)       # always conflicts
                addiu r8, r8, -1
                bgtz r8, loop
                li r2, 0
                syscall
        "#;
        let mut md = MachineConfig::slice2(Optimizations::all());
        md.opts.mem_dep_predict = true;
        let s = run_cfg(src, &md);
        assert!(s.mem_dep_violations >= 1);
        assert!(
            s.mem_dep_violations <= 2,
            "sticky training must silence the slot: {}",
            s.mem_dep_violations
        );
        assert_eq!(s.committed, run_cfg(src, &MachineConfig::ideal()).committed);
    }

    #[test]
    fn sum_addressed_shortens_load_to_load_chains() {
        // The classic SAM win \[18\]: in a pointer chase, the next access's
        // index is ready the moment the previous load's data arrives — no
        // agen add on the critical path.
        let src = r#"
            .data
            ptr: .word 0x10000000    # self-loop: mem[p] == p
            .text
            main:
                li r17, 0x10000000
                li r8, 400
            loop:
                lw r17, 0(r17)
                lw r17, 0(r17)
                lw r17, 0(r17)
                lw r17, 0(r17)
                addiu r8, r8, -1
                bgtz r8, loop
                li r2, 0
                syscall
        "#;
        let base = MachineConfig::slice4(Optimizations::all());
        let mut sam = base;
        sam.opts.sum_addressed = true;
        let without = run_cfg(src, &base);
        let with = run_cfg(src, &sam);
        assert!(with.sam_starts > 1000, "sam starts: {}", with.sam_starts);
        assert!(
            with.cycles < without.cycles,
            "SAM should shorten the chase: {} vs {}",
            with.cycles,
            without.cycles
        );
        assert_eq!(with.committed, without.committed);
    }

    #[test]
    fn carry_chain_staggers_slices_in_order() {
        // On the slice-by-4 machine, an add's four slices must issue on
        // strictly increasing cycles (the carry edge of Fig. 8b), and the
        // results must stream out one cycle behind each issue.
        let src = r#"
            .text
            main:
                li r8, 123
                li r9, 77
                addu r10, r8, r9
                addu r11, r10, r9
                li r2, 0
                syscall
        "#;
        let p = assemble(src).unwrap();
        let mut sim = Simulator::new(&MachineConfig::slice4_full());
        let (_, timings) = sim.run_timeline(&p, 1_000, 16);
        let addu = timings
            .iter()
            .find(|t| t.disasm.starts_with("addu r10"))
            .expect("addu recorded");
        let issues: Vec<u64> = addu.slice_issue.iter().flatten().copied().collect();
        assert_eq!(issues.len(), 4);
        for w in issues.windows(2) {
            assert!(w[0] < w[1], "carry chain must stagger: {issues:?}");
        }
        for (k, issue) in issues.iter().enumerate() {
            assert_eq!(addu.slice_ready[k], Some(issue + 1));
        }
        // The dependent addu chains one cycle behind, slice for slice.
        let dep = timings
            .iter()
            .find(|t| t.disasm.starts_with("addu r11"))
            .expect("dependent addu recorded");
        let dep_issues: Vec<u64> = dep.slice_issue.iter().flatten().copied().collect();
        for (k, di) in dep_issues.iter().enumerate() {
            assert!(
                *di > issues[k],
                "slice {k} of the consumer ran before its source: {dep_issues:?} vs {issues:?}"
            );
        }
    }

    #[test]
    fn loads_timeline_records_memory_events() {
        let src = r#"
            .text
            main:
                li r8, 0x10000000
                lw r9, 0(r8)
                addu r10, r9, r9
                li r2, 0
                syscall
        "#;
        let p = assemble(src).unwrap();
        let mut sim = Simulator::new(&MachineConfig::slice2_full());
        let (_, timings) = sim.run_timeline(&p, 1_000, 16);
        let lw = timings.iter().find(|t| t.disasm.starts_with("lw")).unwrap();
        let (start, done) = (lw.mem_start.unwrap(), lw.mem_done.unwrap());
        assert!(start < done);
        // Cold L1+L2 miss: the data takes the full memory round trip.
        assert!(done - start >= 100, "cold miss latency {start}..{done}");
        // The consumer cannot complete before the data arrives.
        let dep = timings
            .iter()
            .find(|t| t.disasm.starts_with("addu r10"))
            .unwrap();
        assert!(dep.completed > done);
    }

    #[test]
    fn wrong_path_modeling_costs_cycles_but_commits_identically() {
        for name in ["go", "parser"] {
            let p = popk_workloads::by_name(name).unwrap().program();
            let base = MachineConfig::slice2_full();
            let mut wp = base;
            wp.model_wrong_path = true;
            let a = simulate(&p, &base, 30_000);
            let b = simulate(&p, &wp, 30_000);
            assert_eq!(a.committed, b.committed, "{name}");
            assert_eq!(a.branch_mispredicts, b.branch_mispredicts, "{name}");
            // Wrong-path pollution is a second-order effect and is NOT
            // monotone (the paper's own bzip/gzip/li exceed the ideal
            // machine through it): allow a band around the stall model.
            let lo = a.cycles - a.cycles / 10;
            let hi = a.cycles + a.cycles / 4;
            assert!(
                (lo..=hi).contains(&b.cycles),
                "{name}: wrong-path modeling out of band: {} vs {}",
                b.cycles,
                a.cycles
            );
        }
    }

    #[test]
    fn extended_config_is_at_least_as_fast_on_kernels() {
        for name in ["gcc", "bzip"] {
            let p = popk_workloads::by_name(name).unwrap().program();
            let full = simulate(&p, &MachineConfig::slice2(Optimizations::all()), 40_000);
            let ext = simulate(
                &p,
                &MachineConfig::slice2(Optimizations::extended()),
                40_000,
            );
            assert_eq!(full.committed, ext.committed);
            assert!(
                ext.cycles <= full.cycles + full.cycles / 50,
                "{name}: extended {} vs full {}",
                ext.cycles,
                full.cycles
            );
        }
    }

    #[test]
    fn cumulative_levels_never_hurt_much_on_real_kernel() {
        let w = popk_workloads::by_name("parser").unwrap();
        let p = w.program();
        let mut prev = f64::MAX;
        for level in 0..=5 {
            let s = simulate(
                &p,
                &MachineConfig::slice2(Optimizations::level(level)),
                60_000,
            );
            let cycles = s.cycles as f64;
            assert!(
                cycles <= prev * 1.02,
                "level {level} slower than level {}: {cycles} vs {prev}",
                level - 1
            );
            prev = cycles.min(prev);
        }
    }

    #[test]
    fn sliced_full_approaches_ideal() {
        let w = popk_workloads::by_name("gcc").unwrap();
        let p = w.program();
        let ideal = simulate(&p, &MachineConfig::ideal(), 60_000);
        let full = simulate(&p, &MachineConfig::slice2_full(), 60_000);
        let simple = simulate(&p, &MachineConfig::simple2(), 60_000);
        assert!(simple.ipc() < ideal.ipc());
        assert!(full.ipc() > simple.ipc(), "techniques must help");
        let gap = (ideal.ipc() - full.ipc()) / ideal.ipc();
        assert!(gap < 0.15, "slice-2 full should be near ideal, gap {gap}");
    }
}
