//! Cycle-stamped pipeline event tracing.
//!
//! The simulator is generic over a [`TraceSink`]; every microarchitectural
//! event of interest — dispatch, per-slice issue/wakeup, early branch
//! resolution, partial-tag probes, disambiguation and forwarding
//! decisions, replays, commit — is emitted to the sink with the cycle it
//! happened on. The default sink is [`NullTrace`], whose
//! [`TraceSink::ENABLED`] constant is `false`: every emission site is
//! guarded by `if S::ENABLED`, so the no-trace configuration monomorphizes
//! to the exact pre-observability code and costs nothing.
//!
//! Both the event and the sink are generic over the frontend's
//! instruction type `I` (defaulting to the native PISA [`Insn`]), since
//! [`TraceEvent::Dispatched`] carries the instruction itself.
//!
//! [`crate::timeline::TimelineBuilder`] is a sink that folds the event
//! stream back into per-instruction [`crate::InsnTiming`] records;
//! [`VecTrace`] records the raw stream for tests and ad-hoc analysis.

use popk_cache::PartialOutcome;
use popk_isa::Insn;

/// Why dispatch (or fetch) could not make progress this cycle.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StallReason {
    /// Fetch is stalled behind an unresolved mispredicted transfer.
    FetchRedirect,
    /// Dispatch blocked: the RUU window is full.
    RuuFull,
    /// Dispatch blocked: the load/store queue is full.
    LsqFull,
}

/// Why a load replayed (re-executed its access).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ReplayReason {
    /// A speculative partial-match forward was refuted at verification.
    SpecForwardWrong,
    /// The MRU way prediction of a partial-tag access failed.
    WayMispredict,
    /// A scheduling-speculated load missed in the L1.
    CacheMiss,
    /// The load passed a store it actually conflicted with (memory
    /// dependence misspeculation).
    MemDepViolation,
}

/// One microarchitectural event. Each carries the sequence number of the
/// dynamic instruction it concerns (where one exists); cycle stamps that
/// differ from the emission cycle (results scheduled for the future) are
/// carried explicitly as `at`.
#[derive(Clone, Copy, Debug)]
pub enum TraceEvent<I = Insn> {
    /// An instruction entered the RUU window.
    Dispatched {
        /// Dynamic sequence number.
        seq: u64,
        /// Its PC.
        pc: u32,
        /// The instruction itself.
        insn: I,
        /// The cycle it was fetched.
        fetch: u64,
    },
    /// Fetch or dispatch lost a cycle.
    Stall(StallReason),
    /// Slice `slice` of instruction `seq` issued this cycle.
    SliceIssued {
        /// Dynamic sequence number.
        seq: u64,
        /// Slice position (0 = least significant).
        slice: u8,
    },
    /// The result of slice `slice` becomes available at cycle `at`.
    SliceReady {
        /// Dynamic sequence number.
        seq: u64,
        /// Slice position (0 = least significant).
        slice: u8,
        /// Cycle the slice value is readable by consumers.
        at: u64,
    },
    /// A narrow result published its upper slices with slice 0 (§6
    /// significance-compression extension).
    NarrowWakeup {
        /// Dynamic sequence number.
        seq: u64,
    },
    /// A control transfer resolved (its redirect, if any, is released).
    BranchResolved {
        /// Dynamic sequence number.
        seq: u64,
        /// Cycle the resolution takes effect.
        at: u64,
        /// Resolved from a partial (non-final) slice.
        early: bool,
        /// The transfer had been mispredicted.
        mispredicted: bool,
    },
    /// A load probed the L1D with a partial tag (way prediction).
    PartialTagProbe {
        /// Dynamic sequence number.
        seq: u64,
        /// What the partial-tag comparison saw.
        outcome: PartialOutcome,
    },
    /// A load's cache access (or forward) started.
    MemStarted {
        /// Dynamic sequence number.
        seq: u64,
    },
    /// A load's data becomes available at cycle `at`.
    MemDone {
        /// Dynamic sequence number.
        seq: u64,
        /// Cycle the loaded value is readable.
        at: u64,
    },
    /// A load's data was forwarded from an older in-flight store.
    StoreForward {
        /// The load.
        load_seq: u64,
        /// The covering store it forwarded from.
        store_seq: u64,
    },
    /// A load speculatively forwarded from the unique partial-address
    /// matcher (§5.1 extension); `ok` is the verification verdict.
    SpecForward {
        /// The load.
        load_seq: u64,
        /// The store speculated on.
        store_seq: u64,
        /// Whether verification (at full-address time) confirmed it.
        ok: bool,
    },
    /// A load issued past unknown older store addresses on the memory
    /// dependence predictor's say-so.
    MemDepSpeculated {
        /// Dynamic sequence number.
        seq: u64,
    },
    /// A dependence speculation was refuted (an older store overlapped).
    MemDepViolation {
        /// Dynamic sequence number.
        seq: u64,
    },
    /// Partial address knowledge let this load pass older stores whose
    /// full addresses were still unknown.
    EarlyDisambig {
        /// Dynamic sequence number.
        seq: u64,
    },
    /// The load's cache index came from sum-addressed decode before its
    /// own agen produced it.
    SamStart {
        /// Dynamic sequence number.
        seq: u64,
    },
    /// A load replayed.
    Replay {
        /// Dynamic sequence number.
        seq: u64,
        /// Why it replayed.
        reason: ReplayReason,
    },
    /// Every obligation of the instruction is met at cycle `at`.
    Completed {
        /// Dynamic sequence number.
        seq: u64,
        /// Cycle the instruction is eligible to commit.
        at: u64,
    },
    /// The instruction retired this cycle.
    Committed {
        /// Dynamic sequence number.
        seq: u64,
    },
    /// The (wrong-path) instruction was squashed this cycle.
    Squashed {
        /// Dynamic sequence number.
        seq: u64,
    },
}

impl<I> TraceEvent<I> {
    /// The sequence number this event concerns, if any.
    pub fn seq(&self) -> Option<u64> {
        use TraceEvent::*;
        match self {
            Dispatched { seq, .. }
            | SliceIssued { seq, .. }
            | SliceReady { seq, .. }
            | NarrowWakeup { seq }
            | BranchResolved { seq, .. }
            | PartialTagProbe { seq, .. }
            | MemStarted { seq }
            | MemDone { seq, .. }
            | MemDepSpeculated { seq }
            | MemDepViolation { seq }
            | EarlyDisambig { seq }
            | SamStart { seq }
            | Replay { seq, .. }
            | Completed { seq, .. }
            | Committed { seq }
            | Squashed { seq } => Some(*seq),
            StoreForward { load_seq, .. } | SpecForward { load_seq, .. } => Some(*load_seq),
            Stall(_) => None,
        }
    }
}

/// A consumer of the simulator's event stream over instruction type `I`.
///
/// Implementors with `ENABLED = false` cost nothing: the simulator guards
/// every emission with `if S::ENABLED`, which the compiler folds away.
pub trait TraceSink<I = Insn> {
    /// Whether the simulator should emit events to this sink at all.
    const ENABLED: bool = true;

    /// Observe one event, stamped with the cycle it was emitted on.
    fn event(&mut self, cycle: u64, ev: &TraceEvent<I>);
}

/// The default no-op sink: tracing compiled out.
#[derive(Clone, Copy, Default, Debug)]
pub struct NullTrace;

impl<I> TraceSink<I> for NullTrace {
    const ENABLED: bool = false;

    #[inline(always)]
    fn event(&mut self, _cycle: u64, _ev: &TraceEvent<I>) {}
}

/// A sink that records the raw `(cycle, event)` stream.
#[derive(Default, Debug)]
pub struct VecTrace<I = Insn> {
    /// The recorded stream, in emission order.
    pub events: Vec<(u64, TraceEvent<I>)>,
}

impl<I> VecTrace<I> {
    /// An empty recorder.
    pub fn new() -> VecTrace<I> {
        VecTrace { events: Vec::new() }
    }

    /// Events concerning sequence number `seq`, in order.
    pub fn for_seq(&self, seq: u64) -> impl Iterator<Item = &(u64, TraceEvent<I>)> {
        self.events
            .iter()
            .filter(move |(_, e)| e.seq() == Some(seq))
    }
}

impl<I: Copy> TraceSink<I> for VecTrace<I> {
    fn event(&mut self, cycle: u64, ev: &TraceEvent<I>) {
        self.events.push((cycle, *ev));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_trace_is_disabled() {
        const { assert!(!<NullTrace as TraceSink>::ENABLED) }
        const { assert!(<VecTrace as TraceSink>::ENABLED) }
    }

    #[test]
    fn vec_trace_records_and_filters() {
        let mut t: VecTrace = VecTrace::new();
        t.event(3, &TraceEvent::MemStarted { seq: 7 });
        t.event(4, &TraceEvent::Stall(StallReason::RuuFull));
        t.event(5, &TraceEvent::MemDone { seq: 7, at: 9 });
        assert_eq!(t.events.len(), 3);
        assert_eq!(t.for_seq(7).count(), 2);
        assert_eq!(t.events[1].1.seq(), None);
    }
}
