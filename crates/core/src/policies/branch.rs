//! Conditional-branch resolution policies (Fig. 6): which result slice
//! of the compare proves a misprediction?
//!
//! The conventional machine compares full-width operands, so a branch
//! resolves only when the top slice finishes. The early-resolution
//! machine exploits the paper's observation that for equality branches a
//! single divergent slice is *proof* of the outcome: the redirect fires
//! as soon as the first slice that detects the misprediction completes.

use popk_emu::TraceRecord;
use popk_isa::BranchCond;
use popk_slice::mispredict_detection_bit;

/// Decides which result slice a conditional branch resolves at.
pub trait BranchResolvePolicy: Send + Sync {
    /// Index of the slice whose completion resolves this branch
    /// (always in `0..nslices`).
    fn resolve_slice(
        &self,
        cond: BranchCond,
        rec: &TraceRecord,
        mispredicted: bool,
        nslices: usize,
        slice_bits: u32,
    ) -> usize;

    /// Whether this policy can resolve before the top slice (used for
    /// stats and tests; the conventional policy answers `false`).
    fn is_early(&self) -> bool {
        false
    }
}

/// Conventional full-width resolution: wait for the top slice.
pub struct FullWidthResolve;

impl BranchResolvePolicy for FullWidthResolve {
    fn resolve_slice(
        &self,
        _cond: BranchCond,
        _rec: &TraceRecord,
        _mispredicted: bool,
        nslices: usize,
        _slice_bits: u32,
    ) -> usize {
        nslices - 1
    }
}

/// Early resolution at the first provably-divergent slice (Fig. 6).
///
/// Only *mispredicted* equality branches benefit: a correctly predicted
/// branch redirects nothing (resolution timing is the top slice either
/// way), and the sign-testing conditions need the full subtraction.
pub struct EarlySliceResolve;

impl BranchResolvePolicy for EarlySliceResolve {
    fn resolve_slice(
        &self,
        cond: BranchCond,
        rec: &TraceRecord,
        mispredicted: bool,
        nslices: usize,
        slice_bits: u32,
    ) -> usize {
        if !(mispredicted && cond.early_resolvable()) {
            return nslices - 1;
        }
        // Resolve operand values by register so `beq rX, rX` (whose
        // use set dedups) still sees both sides correctly.
        let rs = rec.src_vals[0];
        let rt = rec.src_val(rec.insn.rt()).unwrap_or(0);
        // predicted = !actual since mispredicted. Operand bits that fail
        // to prove the recorded outcome (only possible when fault
        // injection corrupts the published slices) degrade to the
        // conventional full-width resolution instead of panicking.
        let Some(bits) = mispredict_detection_bit(cond, rs, rt, !rec.taken) else {
            return nslices - 1;
        };
        (((bits.max(1) - 1) / slice_bits) as usize).min(nslices - 1)
    }

    fn is_early(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popk_isa::{Insn, Op, Reg};

    fn branch_rec(op: Op, rs_val: u32, rt_val: u32, taken: bool) -> TraceRecord {
        TraceRecord {
            pc: 0x400000,
            insn: Insn::branch(op, Reg::gpr(8), Reg::gpr(9), 16),
            src_vals: [rs_val, rt_val],
            results: [0; 2],
            ea: 0,
            taken,
            next_pc: 0x400004,
        }
    }

    #[test]
    fn full_width_always_waits_for_the_top_slice() {
        let p = FullWidthResolve;
        let rec = branch_rec(Op::Beq, 1, 0x0001_0000, false);
        assert_eq!(p.resolve_slice(BranchCond::Eq, &rec, true, 2, 16), 1);
        assert_eq!(p.resolve_slice(BranchCond::Eq, &rec, true, 4, 8), 3);
        assert!(!p.is_early());
    }

    #[test]
    fn early_resolves_at_the_divergent_slice() {
        let p = EarlySliceResolve;
        // beq taken-predicted, operands differ in bit 0: a mispredict is
        // proven by the lowest slice.
        let rec = branch_rec(Op::Beq, 1, 0, false);
        assert_eq!(p.resolve_slice(BranchCond::Eq, &rec, true, 4, 8), 0);
        // Divergence only in the upper half: slice 2 of 4 (bits 16..24).
        let rec = branch_rec(Op::Beq, 0, 0x0001_0000, false);
        assert_eq!(p.resolve_slice(BranchCond::Eq, &rec, true, 4, 8), 2);
        assert_eq!(p.resolve_slice(BranchCond::Eq, &rec, true, 2, 16), 1);
        assert!(p.is_early());
    }

    #[test]
    fn early_falls_back_when_it_cannot_help() {
        let p = EarlySliceResolve;
        let rec = branch_rec(Op::Beq, 1, 0, false);
        // Correct prediction: nothing to detect early.
        assert_eq!(p.resolve_slice(BranchCond::Eq, &rec, false, 4, 8), 3);
        // Sign tests need the full subtraction.
        let rec = branch_rec(Op::Blez, 5, 0, false);
        assert_eq!(p.resolve_slice(BranchCond::Lez, &rec, true, 4, 8), 3);
    }
}
