//! Conditional-branch resolution policies (Fig. 6): which result slice
//! of the compare proves a misprediction?
//!
//! The conventional machine compares full-width operands, so a branch
//! resolves only when the top slice finishes. The early-resolution
//! machine exploits the paper's observation that for equality branches a
//! single divergent slice is *proof* of the outcome: the redirect fires
//! as soon as the first slice that detects the misprediction completes.
//!
//! Policies see only the compare operand pair and the recorded outcome
//! — resolved by the frontend via
//! [`popk_trace::UopInsn::branch_cmp`] — never an instruction.

use popk_isa::BranchCond;
use popk_slice::mispredict_detection_bit;

/// Decides which result slice a conditional branch resolves at.
pub trait BranchResolvePolicy: Send + Sync {
    /// Index of the slice whose completion resolves this branch
    /// (always in `0..nslices`). `cmp` is the `(lhs, rhs)` operand pair
    /// of the compare; `taken` its recorded architectural outcome.
    fn resolve_slice(
        &self,
        cond: BranchCond,
        cmp: (u32, u32),
        taken: bool,
        mispredicted: bool,
        nslices: usize,
        slice_bits: u32,
    ) -> usize;

    /// Whether this policy can resolve before the top slice (used for
    /// stats and tests; the conventional policy answers `false`).
    fn is_early(&self) -> bool {
        false
    }
}

/// Conventional full-width resolution: wait for the top slice.
pub struct FullWidthResolve;

impl BranchResolvePolicy for FullWidthResolve {
    fn resolve_slice(
        &self,
        _cond: BranchCond,
        _cmp: (u32, u32),
        _taken: bool,
        _mispredicted: bool,
        nslices: usize,
        _slice_bits: u32,
    ) -> usize {
        nslices - 1
    }
}

/// Early resolution at the first provably-divergent slice (Fig. 6).
///
/// Only *mispredicted* equality branches benefit: a correctly predicted
/// branch redirects nothing (resolution timing is the top slice either
/// way), and the sign-testing conditions need the full subtraction.
pub struct EarlySliceResolve;

impl BranchResolvePolicy for EarlySliceResolve {
    fn resolve_slice(
        &self,
        cond: BranchCond,
        cmp: (u32, u32),
        taken: bool,
        mispredicted: bool,
        nslices: usize,
        slice_bits: u32,
    ) -> usize {
        if !(mispredicted && cond.early_resolvable()) {
            return nslices - 1;
        }
        let (rs, rt) = cmp;
        // predicted = !actual since mispredicted. Operand bits that fail
        // to prove the recorded outcome (only possible when fault
        // injection corrupts the published slices) degrade to the
        // conventional full-width resolution instead of panicking.
        let Some(bits) = mispredict_detection_bit(cond, rs, rt, !taken) else {
            return nslices - 1;
        };
        (((bits.max(1) - 1) / slice_bits) as usize).min(nslices - 1)
    }

    fn is_early(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_width_always_waits_for_the_top_slice() {
        let p = FullWidthResolve;
        assert_eq!(
            p.resolve_slice(BranchCond::Eq, (1, 0x0001_0000), false, true, 2, 16),
            1
        );
        assert_eq!(
            p.resolve_slice(BranchCond::Eq, (1, 0x0001_0000), false, true, 4, 8),
            3
        );
        assert!(!p.is_early());
    }

    #[test]
    fn early_resolves_at_the_divergent_slice() {
        let p = EarlySliceResolve;
        // beq taken-predicted, operands differ in bit 0: a mispredict is
        // proven by the lowest slice.
        assert_eq!(
            p.resolve_slice(BranchCond::Eq, (1, 0), false, true, 4, 8),
            0
        );
        // Divergence only in the upper half: slice 2 of 4 (bits 16..24).
        assert_eq!(
            p.resolve_slice(BranchCond::Eq, (0, 0x0001_0000), false, true, 4, 8),
            2
        );
        assert_eq!(
            p.resolve_slice(BranchCond::Eq, (0, 0x0001_0000), false, true, 2, 16),
            1
        );
        assert!(p.is_early());
    }

    #[test]
    fn early_falls_back_when_it_cannot_help() {
        let p = EarlySliceResolve;
        // Correct prediction: nothing to detect early.
        assert_eq!(
            p.resolve_slice(BranchCond::Eq, (1, 0), false, false, 4, 8),
            3
        );
        // Sign tests need the full subtraction.
        assert_eq!(
            p.resolve_slice(BranchCond::Lez, (5, 0), false, true, 4, 8),
            3
        );
    }
}
