//! Load/store disambiguation policies (Fig. 2 and the §5.1
//! speculative-forwarding extension).
//!
//! The memory stage hands the policy a load access (with however many
//! low address bits its agen has produced) and a youngest-first walk of
//! the older in-window stores; the policy answers whether the load may
//! proceed this cycle, and from where its data comes. The conventional
//! machine needs every address fully known; the early (bit-serial)
//! machine rules stores out slice-by-slice as the paper's Fig. 2
//! comparator chain does.
//!
//! Policies see only [`MemAcc`] — effective address plus access width —
//! never an instruction, so they work unchanged across frontends.

/// One memory reference as the disambiguation logic sees it: effective
/// address and access width in bytes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemAcc {
    /// Effective (byte) address.
    pub ea: u32,
    /// Access width in bytes.
    pub bytes: u8,
}

/// Byte range `[ea, ea + width)` of a memory reference.
fn byte_range(acc: MemAcc) -> (u32, u32) {
    (acc.ea, acc.ea.wrapping_add(acc.bytes as u32))
}

/// Do two references touch any common byte?
pub fn ranges_overlap(a: MemAcc, b: MemAcc) -> bool {
    let (a0, a1) = byte_range(a);
    let (b0, b1) = byte_range(b);
    a0 < b1 && b0 < a1
}

/// Does the store's write cover every byte the load reads (so its data
/// can be forwarded whole)?
pub fn store_covers_load(store: MemAcc, load: MemAcc) -> bool {
    let (s0, s1) = byte_range(store);
    let (l0, l1) = byte_range(load);
    s0 <= l0 && l1 <= s1
}

/// What the disambiguation scan decided for a load that may proceed.
pub enum ForwardDecision {
    /// Forward from the store with this sequence number.
    Forward(u64),
    /// Speculatively forward from the unique partial-address matcher
    /// before the full addresses resolve (§5.1 extension).
    SpecForward(u64),
    /// No older store conflicts: access the cache.
    Access,
}

/// One older in-window store, as the disambiguation scan sees it.
pub struct StoreProbe {
    /// The store's dynamic sequence number.
    pub seq: u64,
    /// Its effective address and width.
    pub acc: MemAcc,
    /// Low address bits its agen has produced so far.
    pub known_bits: u32,
}

/// Decides whether a load may pass the older stores this cycle.
pub trait DisambigPolicy: Send + Sync {
    /// Scan the older stores (youngest first) and decide. `None` means
    /// the load is blocked this cycle and must retry.
    ///
    /// `load_known_bits` counts the low address bits the load's own
    /// agen has produced (the LSQ comparators only see computed bits).
    fn disambiguate(
        &self,
        load: MemAcc,
        load_known_bits: u32,
        older_stores: &mut dyn Iterator<Item = StoreProbe>,
    ) -> Option<ForwardDecision>;

    /// Whether this policy can pass stores on *partial* address
    /// knowledge (used to attribute the `early_disambig_loads` stat).
    fn exploits_partial_addresses(&self) -> bool {
        false
    }
}

/// The conventional LSQ: a load waits until its own full address and
/// every older store's full address are known.
pub struct ConventionalDisambig;

impl DisambigPolicy for ConventionalDisambig {
    fn disambiguate(
        &self,
        load: MemAcc,
        load_known_bits: u32,
        older_stores: &mut dyn Iterator<Item = StoreProbe>,
    ) -> Option<ForwardDecision> {
        let mut forward: Option<u64> = None;
        for store in older_stores {
            // Every older store's full address must be known.
            if store.known_bits < 32 {
                return None;
            }
            if load_known_bits < 32 {
                return None; // and the load's own
            }
            if ranges_overlap(store.acc, load) {
                if store_covers_load(store.acc, load) {
                    forward = Some(store.seq);
                    break;
                }
                return None; // partial overlap: wait for the store
            }
        }
        Some(match forward {
            Some(seq) => ForwardDecision::Forward(seq),
            None => ForwardDecision::Access,
        })
    }
}

/// Early bit-serial disambiguation (Fig. 2): compare the low address
/// bits both sides know; a mismatch in any common slice rules the store
/// out before the full addresses exist. With `spec_forward`, a
/// *unique* partial matcher (word/word only) forwards speculatively and
/// verifies when the addresses complete (§5.1 extension).
pub struct EarlyPartialDisambig {
    /// Enable the §5.1 speculative partial-match forwarding extension.
    pub spec_forward: bool,
}

impl DisambigPolicy for EarlyPartialDisambig {
    fn disambiguate(
        &self,
        load: MemAcc,
        load_known_bits: u32,
        older_stores: &mut dyn Iterator<Item = StoreProbe>,
    ) -> Option<ForwardDecision> {
        let load_word = load.ea & !3;
        let mut forward: Option<u64> = None;
        let mut partial_matcher: Option<u64> = None;
        let mut partial_matches = 0u32;

        for store in older_stores {
            let store_word = store.acc.ea & !3;
            // Compare the low bits both sides know.
            let common = load_known_bits.min(store.known_bits);
            if common == 0 {
                return None; // store address totally unknown
            }
            let mask = if common >= 32 {
                u32::MAX
            } else {
                (1 << common) - 1
            } & !3;
            if (load_word ^ store_word) & mask != 0 {
                continue; // ruled out by partial mismatch
            }
            if load_known_bits >= 32 && store.known_bits >= 32 {
                // Both full addresses known: decide at byte accuracy.
                if ranges_overlap(store.acc, load) {
                    if store_covers_load(store.acc, load) {
                        forward = forward.or(Some(store.seq));
                        break; // youngest covering store wins
                    }
                    // Partial overlap: wait until the store retires
                    // and the bytes land in the cache.
                    return None;
                }
                continue; // same word, disjoint bytes: no dependence
            }
            // A partial match with incomplete addresses: §5.1's
            // extension may speculate on a *unique* matcher —
            // restricted to word/word pairs, where a partial address
            // match implies a forwardable full match.
            if !self.spec_forward || load.bytes != 4 || store.acc.bytes != 4 {
                return None;
            }
            partial_matches += 1;
            if partial_matches == 1 {
                partial_matcher = Some(store.seq);
            }
        }

        if forward.is_none() && partial_matches > 0 {
            debug_assert!(self.spec_forward);
            return if partial_matches == 1 {
                // Speculatively treat the unique partial matcher as the
                // forwarding store; verified when the addresses complete.
                Some(ForwardDecision::SpecForward(
                    partial_matcher.expect("partial_matches > 0 recorded a matcher"),
                ))
            } else {
                None // several candidates: wait for full addresses
            };
        }
        Some(match forward {
            Some(seq) => ForwardDecision::Forward(seq),
            None => ForwardDecision::Access,
        })
    }

    fn exploits_partial_addresses(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn acc(ea: u32, bytes: u8) -> MemAcc {
        MemAcc { ea, bytes }
    }

    fn probe(seq: u64, ea: u32, bytes: u8, known_bits: u32) -> StoreProbe {
        StoreProbe {
            seq,
            acc: acc(ea, bytes),
            known_bits,
        }
    }

    #[test]
    fn conventional_blocks_on_any_unknown_address() {
        let p = ConventionalDisambig;
        let load = acc(0x1000_0000, 4);
        // A store at a wildly different address, but only half known.
        let mut stores = vec![probe(1, 0x2000_0000, 4, 16)].into_iter();
        assert!(p.disambiguate(load, 32, &mut stores).is_none());
        // Fully known and disjoint: the load may access the cache.
        let mut stores = vec![probe(1, 0x2000_0000, 4, 32)].into_iter();
        assert!(matches!(
            p.disambiguate(load, 32, &mut stores),
            Some(ForwardDecision::Access)
        ));
    }

    #[test]
    fn early_passes_on_low_slice_mismatch() {
        let p = EarlyPartialDisambig {
            spec_forward: false,
        };
        let load = acc(0x1000_0000, 4);
        // Low 16 bits differ: ruled out with only one slice known.
        let mut stores = vec![probe(1, 0x1000_8000, 4, 16)].into_iter();
        assert!(matches!(
            p.disambiguate(load, 16, &mut stores),
            Some(ForwardDecision::Access)
        ));
        // Low 16 bits equal, upper unknown: blocked without speculation.
        let mut stores = vec![probe(1, 0x2000_0000, 4, 16)].into_iter();
        assert!(p.disambiguate(load, 16, &mut stores).is_none());
    }

    #[test]
    fn unique_partial_match_speculates_when_enabled() {
        let p = EarlyPartialDisambig { spec_forward: true };
        let load = acc(0x1000_0000, 4);
        let mut stores = vec![probe(5, 0x2000_0000, 4, 16)].into_iter();
        assert!(matches!(
            p.disambiguate(load, 16, &mut stores),
            Some(ForwardDecision::SpecForward(5))
        ));
        // Two candidates: ambiguous, wait.
        let mut stores =
            vec![probe(5, 0x2000_0000, 4, 16), probe(3, 0x3000_0000, 4, 16)].into_iter();
        assert!(p.disambiguate(load, 16, &mut stores).is_none());
        // Sub-word stores never speculate.
        let mut stores = vec![probe(5, 0x2000_0000, 1, 16)].into_iter();
        assert!(p.disambiguate(load, 16, &mut stores).is_none());
    }

    #[test]
    fn youngest_covering_store_forwards() {
        let load = acc(0x1000_0000, 4);
        for policy in [
            Box::new(ConventionalDisambig) as Box<dyn DisambigPolicy>,
            Box::new(EarlyPartialDisambig {
                spec_forward: false,
            }),
        ] {
            // Youngest-first scan: seq 9 is seen before seq 4.
            let mut stores =
                vec![probe(9, 0x1000_0000, 4, 32), probe(4, 0x1000_0000, 4, 32)].into_iter();
            assert!(matches!(
                policy.disambiguate(load, 32, &mut stores),
                Some(ForwardDecision::Forward(9))
            ));
            // A partially overlapping store (sub-word) blocks instead.
            let mut stores = vec![probe(9, 0x1000_0001, 1, 32)].into_iter();
            assert!(policy.disambiguate(load, 32, &mut stores).is_none());
        }
    }
}
