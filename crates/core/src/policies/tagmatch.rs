//! L1D tag-match policies (Fig. 4): when may a load's cache access
//! start, and with how many tag bits in hand?
//!
//! The conventional cache needs the complete effective address before it
//! can index a set, let alone match tags. The partial-tag machine starts
//! the access as soon as the *set index* is complete, matching whatever
//! low-order tag bits exist and predicting the way (MRU) among the
//! remaining candidates; the full tags verify in the background.

use popk_cache::CacheConfig;

/// Decides when a load may index the L1D and how its tags are matched.
pub trait TagMatchPolicy: Send + Sync {
    /// May the access start with `known_bits` low address bits
    /// (`known_slices` of `nslices` operand slices) available?
    fn index_ready(
        &self,
        l1d: &CacheConfig,
        known_bits: u32,
        known_slices: usize,
        nslices: usize,
    ) -> bool;

    /// Tag bits to probe with, or `None` for an ordinary full-tag
    /// access. `dis_bits` counts the *computed* (agen) address bits —
    /// tag bits exist only once the agen produces them, even when a
    /// sum-addressed decoder supplied the index — while `known_bits`
    /// counts everything known including the SAM index.
    fn probe_tag_bits(&self, l1d: &CacheConfig, dis_bits: u32, known_bits: u32) -> Option<u32>;

    /// Whether this policy matches on partial tags (used for stats and
    /// tests; the conventional policy answers `false`).
    fn is_partial(&self) -> bool {
        false
    }
}

/// The conventional cache: full address, full tag compare.
pub struct FullTagMatch;

impl TagMatchPolicy for FullTagMatch {
    fn index_ready(
        &self,
        _l1d: &CacheConfig,
        _known_bits: u32,
        known_slices: usize,
        nslices: usize,
    ) -> bool {
        known_slices == nslices
    }

    fn probe_tag_bits(&self, _l1d: &CacheConfig, _dis_bits: u32, _known_bits: u32) -> Option<u32> {
        None
    }
}

/// Partial tag matching with MRU way prediction (Fig. 4): index as soon
/// as the set bits are complete, match the tag bits available so far.
pub struct PartialTagMatch;

impl TagMatchPolicy for PartialTagMatch {
    fn index_ready(
        &self,
        l1d: &CacheConfig,
        known_bits: u32,
        _known_slices: usize,
        _nslices: usize,
    ) -> bool {
        l1d.partial_tag_bits(known_bits).is_some()
    }

    fn probe_tag_bits(&self, l1d: &CacheConfig, dis_bits: u32, known_bits: u32) -> Option<u32> {
        // With every bit computed there is nothing speculative left; a
        // partial probe happens only while some tag bits are missing.
        // The tag bits may lag the index (SAM-supplied index with no
        // agen output yet): the probe then degenerates to pure MRU way
        // prediction with zero tag bits.
        (dis_bits < 32 || known_bits < 32).then(|| l1d.partial_tag_bits(dis_bits).unwrap_or(0))
    }

    fn is_partial(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_tags_need_every_slice() {
        let l1d = CacheConfig::l1d_table2();
        let p = FullTagMatch;
        assert!(!p.index_ready(&l1d, 16, 1, 2));
        assert!(p.index_ready(&l1d, 32, 2, 2));
        assert_eq!(p.probe_tag_bits(&l1d, 16, 16), None);
        assert!(!p.is_partial());
    }

    #[test]
    fn partial_tags_start_once_the_index_is_complete() {
        let l1d = CacheConfig::l1d_table2(); // index complete at bit 14
        let p = PartialTagMatch;
        assert!(!p.index_ready(&l1d, 8, 1, 4));
        assert!(p.index_ready(&l1d, 16, 1, 2));
        // Table 2 L1D with 16 bits known: 2 tag bits beyond the index.
        assert_eq!(p.probe_tag_bits(&l1d, 16, 16), Some(2));
        // SAM supplied the index but the agen has produced nothing: the
        // probe is pure MRU way prediction.
        assert_eq!(p.probe_tag_bits(&l1d, 0, 16), Some(0));
        // Everything known: no probe, ordinary access.
        assert_eq!(p.probe_tag_bits(&l1d, 32, 32), None);
        assert!(p.is_partial());
    }
}
