//! Pluggable partial-operand policies: the paper's three memory/control
//! techniques as small strategy traits, selected from [`MachineConfig`]
//! at simulator construction instead of inline `if` chains in the
//! pipeline stages.
//!
//! Each trait captures one *decision* the paper varies, and nothing
//! else — the pipeline keeps the mechanism (queues, latencies, events,
//! statistics) and asks the policy only the question the technique
//! answers differently:
//!
//! * [`DisambigPolicy`] — may this load pass the older stores, and
//!   should it forward? (Fig. 2: conventional full-address vs. early
//!   bit-serial disambiguation, plus the §5.1 speculative-forwarding
//!   extension.)
//! * [`TagMatchPolicy`] — when may the L1D access start, and with how
//!   many tag bits? (Fig. 4: full tags vs. partial tag matching with
//!   MRU way prediction.)
//! * [`BranchResolvePolicy`] — which result slice resolves a
//!   conditional branch? (Fig. 6: full-width compare vs. early
//!   resolution at the first provably-divergent slice.)
//!
//! Policies are stateless and consulted per event (per load, per
//! branch), so a virtual call costs nothing measurable next to the
//! simulation work it gates.

mod branch;
mod disambig;
mod tagmatch;

pub use branch::{BranchResolvePolicy, EarlySliceResolve, FullWidthResolve};
pub use disambig::{
    ranges_overlap, store_covers_load, ConventionalDisambig, DisambigPolicy, EarlyPartialDisambig,
    ForwardDecision, MemAcc, StoreProbe,
};
pub use tagmatch::{FullTagMatch, PartialTagMatch, TagMatchPolicy};

use crate::config::{MachineConfig, PipelineKind};

/// The three policy slots of one simulator instance.
pub(crate) struct PolicySet {
    /// Load/store disambiguation (Fig. 2).
    pub(crate) disambig: Box<dyn DisambigPolicy>,
    /// L1D tag matching (Fig. 4).
    pub(crate) tag: Box<dyn TagMatchPolicy>,
    /// Conditional-branch resolution (Fig. 6).
    pub(crate) branch: Box<dyn BranchResolvePolicy>,
}

impl PolicySet {
    /// Select the policy implementations a configuration calls for.
    ///
    /// The partial-knowledge policies exist only on the bit-sliced
    /// machine; `Ideal` and `SimplePipelined` always get the
    /// conventional set, whatever the toggles say (they have no slices
    /// to exploit).
    ///
    /// # Panics
    /// Panics if `cfg` fails [`MachineConfig::validate`] — simulator
    /// construction is infallible by signature, so a degenerate config
    /// must not get as far as a pipeline stage. Callers wanting a typed
    /// error validate first (as [`crate::try_simulate`] does).
    pub(crate) fn from_config(cfg: &MachineConfig) -> PolicySet {
        if let Err(e) = cfg.validate() {
            panic!("invalid MachineConfig: {e}");
        }
        let sliced = cfg.kind == PipelineKind::BitSliced;
        PolicySet {
            disambig: if sliced && cfg.opts.early_disambig {
                Box::new(EarlyPartialDisambig {
                    spec_forward: cfg.opts.spec_forward,
                })
            } else {
                Box::new(ConventionalDisambig)
            },
            tag: if sliced && cfg.opts.partial_tag {
                Box::new(PartialTagMatch)
            } else {
                Box::new(FullTagMatch)
            },
            branch: if sliced && cfg.opts.early_branch {
                Box::new(EarlySliceResolve)
            } else {
                Box::new(FullWidthResolve)
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Optimizations;

    #[test]
    fn selection_follows_config() {
        let full = PolicySet::from_config(&MachineConfig::slice2_full());
        assert!(full.disambig.exploits_partial_addresses());
        assert!(full.tag.is_partial());
        assert!(full.branch.is_early());

        let conv = PolicySet::from_config(&MachineConfig::slice2(Optimizations::level(1)));
        assert!(!conv.disambig.exploits_partial_addresses());
        assert!(!conv.tag.is_partial());
        assert!(!conv.branch.is_early());

        // The ideal machine ignores the toggles: no slices to exploit.
        let mut ideal = MachineConfig::ideal();
        ideal.opts = Optimizations::all();
        let p = PolicySet::from_config(&ideal);
        assert!(!p.disambig.exploits_partial_addresses());
        assert!(!p.tag.is_partial());
        assert!(!p.branch.is_early());
    }
}
