//! Tiny stable hashing for fingerprints and content addresses.
//!
//! The workspace builds offline with no external crates, and
//! `std::hash` deliberately refuses to promise cross-run stability — so
//! anything persisted (artifact-cache keys, integrity checksums) or
//! sent over the wire hashes through this FNV-1a implementation
//! instead. FNV-1a is not collision-resistant against adversaries; the
//! cache guards against corruption and accidents, not attacks, and
//! every read is additionally verified field-by-field against the
//! request key (see `popk-bench`'s cache module).

/// The FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// An alternative offset basis for deriving a second independent
/// stream from the same bytes (used to widen digests to 128 bits).
pub const FNV_OFFSET_ALT: u64 = 0x6c62_272e_07bb_0142;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a over `bytes` from an explicit starting state. Feeding the
/// result back in as `state` continues the stream, so multi-field
/// hashes can be built incrementally.
#[must_use]
pub fn fnv1a_64_from(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(FNV_PRIME);
    }
    state
}

/// FNV-1a 64-bit hash of `bytes` from the standard offset basis.
#[must_use]
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    fnv1a_64_from(FNV_OFFSET, bytes)
}

/// The multiplier of the golden-hash tables (`examples/golden_hashes.rs`
/// and the committed golden test expectations): an FNV-1a-shaped prime
/// with its middle term at 2⁴⁴ instead of 2⁴⁰. Kept verbatim — the
/// pinned digests were produced with it — and centralized here so no
/// ad-hoc hashing survives outside this module. New digests should use
/// [`fnv1a_64`].
pub const GOLDEN_PRIME: u64 = 0x0000_1000_0000_01b3;

/// The golden-table byte stream: like [`fnv1a_64_from`] but with
/// [`GOLDEN_PRIME`]. Feeding the result back in as `state` continues
/// the stream.
#[must_use]
pub fn golden64_from(mut state: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        state ^= u64::from(b);
        state = state.wrapping_mul(GOLDEN_PRIME);
    }
    state
}

/// A 128-bit hex digest of `bytes`: two independent FNV-1a streams
/// (standard and alternative offset basis) concatenated. Used as the
/// content address of cached artifacts, where 64 bits would leave
/// birthday-collision odds uncomfortably close for a long-lived cache.
#[must_use]
pub fn digest128_hex(bytes: &[u8]) -> String {
    format!(
        "{:016x}{:016x}",
        fnv1a_64(bytes),
        fnv1a_64_from(FNV_OFFSET_ALT, bytes)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn golden_stream_is_pinned() {
        // The golden tables depend on this exact sequence; these vectors
        // pin it independently of any caller.
        assert_eq!(golden64_from(FNV_OFFSET, b""), FNV_OFFSET);
        assert_eq!(golden64_from(FNV_OFFSET, b"a"), 0xaf74_d84c_8601_ec8c);
        assert_ne!(golden64_from(FNV_OFFSET, b"a"), fnv1a_64(b"a"));
        let split = golden64_from(golden64_from(FNV_OFFSET, b"po"), b"pk");
        assert_eq!(split, golden64_from(FNV_OFFSET, b"popk"));
    }

    #[test]
    fn incremental_matches_one_shot() {
        let whole = fnv1a_64(b"hello world");
        let split = fnv1a_64_from(fnv1a_64(b"hello "), b"world");
        assert_eq!(whole, split);
    }

    #[test]
    fn digest_is_stable_and_wide() {
        let d = digest128_hex(b"popk");
        assert_eq!(d.len(), 32);
        assert_eq!(d, digest128_hex(b"popk"));
        assert_ne!(d, digest128_hex(b"popl"));
        // The two halves are independent streams, not repeats.
        assert_ne!(&d[..16], &d[16..]);
    }
}
