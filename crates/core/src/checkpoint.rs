//! Crash-safe checkpoints: versioned, checksummed snapshots of the
//! *architectural* state at commit boundaries, and the commit-time
//! watch that captures and verifies them.
//!
//! # What a checkpoint is (and is not)
//!
//! The simulator is a pure function of (program, config, budget) — the
//! determinism suite pins this bit-for-bit. A checkpoint therefore does
//! not need to freeze the microarchitectural state (window columns,
//! calendar wheel, predictor tables, cache LRU …); it records the
//! *verified functional* state at instruction `k`: registers, PC,
//! resident memory pages, output channels, and the retirement count.
//! Resume re-runs the deterministic simulation from instruction 0 —
//! guaranteeing byte-identical stats and event digests by construction —
//! and cross-checks the live architectural state at commit `k` against
//! the stored snapshot, so a stale, corrupted, or mismatched checkpoint
//! is a typed error ([`CheckpointError`]), never silent bad data.
//!
//! The snapshot is captured by a [`CommitWatch`]: a second reference
//! machine (the frontend's [`CheckpointSource`]) advanced in lockstep
//! with the timing core's commit stream, exactly like the PR 5 oracle.
//! Every claim the pipeline retires is re-executed on it, so the state
//! a checkpoint stores is *verified* — a divergent pipeline can never
//! seal its corruption into a checkpoint file.
//!
//! # On-disk format
//!
//! One pretty-printed JSON body per file, sealed with the same FNV
//! integrity-checksum idiom as the bench artifact cache: the
//! `integrity` field is the FNV-1a hash of the body without it.
//! Writes go through a temp file + atomic rename, so a reader sees
//! either the old checkpoint or the complete new one. Page bytes and
//! the 64-bit config fingerprint are hex strings; everything else is
//! plain JSON integers.

use crate::hash::fnv1a_64;
use crate::json::Json;
use popk_trace::{ArchSnapshot, CheckpointSource, SnapshotPage, Uop, UopInsn};
use std::path::Path;

/// Version stamp of the checkpoint body shape. Bump on any incompatible
/// change: older files are rejected with
/// [`CheckpointError::StaleVersion`] and the run restarts from zero.
pub const CHECKPOINT_VERSION: u64 = 1;

/// A typed checkpoint failure. Load-time defects (truncation,
/// corruption, stale version, wrong identity) and resume-time
/// divergence are distinct variants so callers can decide between
/// "restart from zero" and "refuse: state disagrees".
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CheckpointError {
    /// The checkpoint file could not be read or written.
    Io(String),
    /// The body is not a well-formed checkpoint document (truncated
    /// file, invalid JSON, missing or mistyped field).
    Malformed(String),
    /// The body parses but its integrity checksum does not match
    /// (bit-rot, torn write).
    Corrupt,
    /// The body was written by a different checkpoint schema.
    StaleVersion {
        /// The version the file claims.
        found: u64,
    },
    /// The checkpoint belongs to a different run identity (other ISA,
    /// workload, configuration, or budget).
    Mismatch {
        /// Which identity field disagreed (`"isa"`, `"workload"`,
        /// `"config"`, or `"limit"`).
        field: &'static str,
    },
    /// The live replay's architectural state at the checkpoint's commit
    /// count disagrees with the stored snapshot, or the commit stream
    /// itself diverged from the watch's reference machine.
    Divergence {
        /// Retirement count at which the divergence was detected.
        committed: u64,
        /// Which snapshot or lockstep field disagreed.
        field: &'static str,
    },
    /// The frontend provides no [`CheckpointSource`], so checkpointed
    /// execution is unavailable for it.
    Unsupported,
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint i/o failed: {e}"),
            CheckpointError::Malformed(why) => write!(f, "malformed checkpoint: {why}"),
            CheckpointError::Corrupt => write!(f, "checkpoint integrity checksum mismatch"),
            CheckpointError::StaleVersion { found } => {
                write!(
                    f,
                    "checkpoint schema v{found} (this build reads v{CHECKPOINT_VERSION})"
                )
            }
            CheckpointError::Mismatch { field } => {
                write!(
                    f,
                    "checkpoint belongs to a different run: `{field}` differs"
                )
            }
            CheckpointError::Divergence { committed, field } => write!(
                f,
                "resume divergence at commit {committed}: field `{field}` disagrees \
                 with the checkpointed state"
            ),
            CheckpointError::Unsupported => {
                write!(f, "frontend does not support checkpointed execution")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// One checkpoint: the run identity plus the verified architectural
/// snapshot at `committed` retired instructions.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Checkpoint {
    /// The frontend's ISA tag (`"pisa"`, `"rv32"`).
    pub isa: String,
    /// Workload name, as the bench layer knows it.
    pub workload: String,
    /// [`MachineConfig::fingerprint`](crate::MachineConfig::fingerprint)
    /// of the configuration the run executes under.
    pub config_hash: u64,
    /// The run's dynamic-instruction budget.
    pub limit: u64,
    /// Instructions committed when this snapshot was taken.
    pub committed: u64,
    /// The verified architectural state at that boundary.
    pub arch: ArchSnapshot,
}

fn hex_encode(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

fn hex_decode(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(s.get(i..i + 2)?, 16).ok())
        .collect()
}

/// Serialize `j` with its FNV integrity checksum appended (the bench
/// cache idiom: the checksum covers the pretty body without the
/// `integrity` field).
fn seal(mut j: Json) -> String {
    j.remove("integrity");
    let unsealed = j.to_pretty(2);
    j.set(
        "integrity",
        format!("{:016x}", fnv1a_64(unsealed.as_bytes())).into(),
    );
    let mut body = j.to_pretty(2);
    body.push('\n');
    body
}

impl Checkpoint {
    /// The document body, sealed and ready to write.
    pub fn to_body(&self) -> String {
        let mut arch = Json::object();
        arch.set("icount", Json::from(self.arch.icount));
        arch.set("pc", Json::from(u64::from(self.arch.pc)));
        arch.set(
            "regs",
            Json::Array(
                self.arch
                    .regs
                    .iter()
                    .map(|&r| Json::from(u64::from(r)))
                    .collect(),
            ),
        );
        arch.set(
            "pages",
            Json::Array(
                self.arch
                    .pages
                    .iter()
                    .map(|p| {
                        let mut page = Json::object();
                        page.set("base", Json::from(u64::from(p.base)));
                        page.set("data", hex_encode(&p.data).into());
                        page
                    })
                    .collect(),
            ),
        );
        arch.set(
            "out_ints",
            Json::Array(
                self.arch
                    .out_ints
                    .iter()
                    .map(|&v| Json::Int(i64::from(v)))
                    .collect(),
            ),
        );
        arch.set("out_bytes", hex_encode(&self.arch.out_bytes).into());
        arch.set(
            "exited",
            match self.arch.exited {
                Some(code) => Json::from(u64::from(code)),
                None => Json::Null,
            },
        );

        let mut j = Json::object();
        j.set("checkpoint_version", Json::from(CHECKPOINT_VERSION));
        j.set("kind", "checkpoint".into());
        j.set("isa", self.isa.as_str().into());
        j.set("workload", self.workload.as_str().into());
        j.set("config_hash", format!("{:016x}", self.config_hash).into());
        j.set("instruction_limit", Json::from(self.limit));
        j.set("committed", Json::from(self.committed));
        j.set("arch", arch);
        seal(j)
    }

    /// Parse and fully validate a checkpoint body: integrity checksum
    /// first ([`CheckpointError::Corrupt`]), then schema version
    /// ([`CheckpointError::StaleVersion`]), then field extraction
    /// ([`CheckpointError::Malformed`]).
    pub fn parse(body: &str) -> Result<Checkpoint, CheckpointError> {
        let mut j = Json::parse(body)
            .map_err(|e| CheckpointError::Malformed(format!("invalid JSON: {e}")))?;
        let stated = j
            .remove("integrity")
            .and_then(|v| v.as_str().map(str::to_string))
            .ok_or_else(|| CheckpointError::Malformed("missing integrity field".into()))?;
        let actual = format!("{:016x}", fnv1a_64(j.to_pretty(2).as_bytes()));
        if stated != actual {
            return Err(CheckpointError::Corrupt);
        }
        let version = j
            .get("checkpoint_version")
            .and_then(Json::as_u64)
            .ok_or_else(|| CheckpointError::Malformed("missing checkpoint_version".into()))?;
        if version != CHECKPOINT_VERSION {
            return Err(CheckpointError::StaleVersion { found: version });
        }

        let missing = |field: &str| CheckpointError::Malformed(format!("missing field {field}"));
        let str_field = |k: &str| {
            j.get(k)
                .and_then(Json::as_str)
                .map(str::to_string)
                .ok_or_else(|| missing(k))
        };
        let u64_field =
            |o: &Json, k: &str| o.get(k).and_then(Json::as_u64).ok_or_else(|| missing(k));

        let config_hash = u64::from_str_radix(&str_field("config_hash")?, 16)
            .map_err(|_| CheckpointError::Malformed("config_hash is not hex".into()))?;
        let arch = j.get("arch").ok_or_else(|| missing("arch"))?;
        let u32_field = |k: &str| {
            u64_field(arch, k).and_then(|v| {
                u32::try_from(v)
                    .map_err(|_| CheckpointError::Malformed(format!("{k} out of range")))
            })
        };
        let regs = arch
            .get("regs")
            .and_then(Json::as_array)
            .ok_or_else(|| missing("arch.regs"))?
            .iter()
            .map(|v| {
                v.as_u64()
                    .and_then(|v| u32::try_from(v).ok())
                    .ok_or_else(|| CheckpointError::Malformed("bad register value".into()))
            })
            .collect::<Result<Vec<u32>, _>>()?;
        let pages = arch
            .get("pages")
            .and_then(Json::as_array)
            .ok_or_else(|| missing("arch.pages"))?
            .iter()
            .map(|p| {
                let base = p
                    .get("base")
                    .and_then(Json::as_u64)
                    .and_then(|v| u32::try_from(v).ok())
                    .ok_or_else(|| CheckpointError::Malformed("bad page base".into()))?;
                let data = p
                    .get("data")
                    .and_then(Json::as_str)
                    .and_then(hex_decode)
                    .ok_or_else(|| CheckpointError::Malformed("bad page data".into()))?;
                Ok(SnapshotPage { base, data })
            })
            .collect::<Result<Vec<SnapshotPage>, CheckpointError>>()?;
        let out_ints = arch
            .get("out_ints")
            .and_then(Json::as_array)
            .ok_or_else(|| missing("arch.out_ints"))?
            .iter()
            .map(|v| {
                v.as_i64()
                    .and_then(|v| i32::try_from(v).ok())
                    .ok_or_else(|| CheckpointError::Malformed("bad out_ints value".into()))
            })
            .collect::<Result<Vec<i32>, _>>()?;
        let out_bytes = arch
            .get("out_bytes")
            .and_then(Json::as_str)
            .and_then(hex_decode)
            .ok_or_else(|| missing("arch.out_bytes"))?;
        let exited = match arch.get("exited") {
            Some(Json::Null) | None => None,
            Some(v) => Some(
                v.as_u64()
                    .and_then(|v| u32::try_from(v).ok())
                    .ok_or_else(|| CheckpointError::Malformed("bad exited value".into()))?,
            ),
        };

        Ok(Checkpoint {
            isa: str_field("isa")?,
            workload: str_field("workload")?,
            config_hash,
            limit: u64_field(&j, "instruction_limit")?,
            committed: u64_field(&j, "committed")?,
            arch: ArchSnapshot {
                icount: u64_field(arch, "icount")?,
                pc: u32_field("pc")?,
                regs,
                pages,
                out_ints,
                out_bytes,
                exited,
            },
        })
    }

    /// Write the sealed body to `path` atomically (temp file + rename in
    /// the destination directory, the cache idiom), so a crash mid-write
    /// leaves either the previous checkpoint or the complete new one.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let io = |e: std::io::Error| CheckpointError::Io(e.to_string());
        let dir = path
            .parent()
            .filter(|d| !d.as_os_str().is_empty())
            .map(Path::to_path_buf)
            .unwrap_or_else(|| ".".into());
        std::fs::create_dir_all(&dir).map_err(io)?;
        let tmp = dir.join(format!(".ckpt.tmp.{}", std::process::id()));
        std::fs::write(&tmp, self.to_body()).map_err(io)?;
        std::fs::rename(&tmp, path).map_err(io)
    }

    /// Load and validate the checkpoint at `path`. A missing file is
    /// [`CheckpointError::Io`]; every content defect is one of the
    /// typed parse errors.
    pub fn load(path: &Path) -> Result<Checkpoint, CheckpointError> {
        let body = std::fs::read_to_string(path).map_err(|e| CheckpointError::Io(e.to_string()))?;
        Checkpoint::parse(&body)
    }

    /// Check that this checkpoint belongs to the run identified by
    /// (`isa`, `workload`, `config_hash`, `limit`). A checkpoint from a
    /// different identity is [`CheckpointError::Mismatch`] — resuming a
    /// run from another run's state would silently produce wrong
    /// artifacts, the exact failure this layer exists to prevent.
    pub fn validate_for(
        &self,
        isa: &str,
        workload: &str,
        config_hash: u64,
        limit: u64,
    ) -> Result<(), CheckpointError> {
        let mismatch = |field| Err(CheckpointError::Mismatch { field });
        if self.isa != isa {
            return mismatch("isa");
        }
        if self.workload != workload {
            return mismatch("workload");
        }
        if self.config_hash != config_hash {
            return mismatch("config");
        }
        if self.limit != limit {
            return mismatch("limit");
        }
        Ok(())
    }
}

/// How a run should produce (and, on resume, verify) checkpoints. Built
/// by the caller, attached through
/// [`Simulator::set_checkpoints`](crate::Simulator::set_checkpoints) or
/// the `*_checkpointed` entry points in [`crate::sim`].
pub struct CheckpointPlan {
    /// Workload name stamped into emitted checkpoints.
    pub workload: String,
    /// Configuration fingerprint stamped into emitted checkpoints.
    pub config_hash: u64,
    /// Instruction budget stamped into emitted checkpoints.
    pub limit: u64,
    /// Emit a checkpoint every `interval` committed instructions
    /// (0 = never; useful for verify-only resume runs).
    pub interval: u64,
    /// Receives each emitted checkpoint. The sink owns persistence —
    /// typically [`Checkpoint::save`] to a journal-owned path.
    pub sink: Option<Box<dyn FnMut(Checkpoint) + Send>>,
    /// A previously saved checkpoint to resume from: the run replays
    /// deterministically from instruction 0 and, at this checkpoint's
    /// commit count, cross-verifies the live architectural state against
    /// it — any disagreement aborts with
    /// [`CheckpointError::Divergence`].
    pub resume_from: Option<Checkpoint>,
}

impl CheckpointPlan {
    /// A plan that emits a checkpoint every `interval` commits to `sink`.
    pub fn periodic(
        workload: &str,
        config_hash: u64,
        limit: u64,
        interval: u64,
        sink: impl FnMut(Checkpoint) + Send + 'static,
    ) -> CheckpointPlan {
        CheckpointPlan {
            workload: workload.to_string(),
            config_hash,
            limit,
            interval,
            sink: Some(Box::new(sink)),
            resume_from: None,
        }
    }

    /// A verify-only plan: resume from `checkpoint`, emit nothing.
    pub fn resume(
        workload: &str,
        config_hash: u64,
        limit: u64,
        checkpoint: Checkpoint,
    ) -> CheckpointPlan {
        CheckpointPlan {
            workload: workload.to_string(),
            config_hash,
            limit,
            interval: 0,
            sink: None,
            resume_from: Some(checkpoint),
        }
    }
}

/// The commit-time checkpoint machinery: a reference machine advanced
/// per retirement (verifying every claim, like the oracle), snapshotted
/// every `interval` commits, and optionally cross-checked against a
/// resumed checkpoint at its commit count.
pub struct CommitWatch<I> {
    source: Box<dyn CheckpointSource<I>>,
    isa: &'static str,
    workload: String,
    config_hash: u64,
    limit: u64,
    interval: u64,
    committed: u64,
    sink: Option<Box<dyn FnMut(Checkpoint) + Send>>,
    verify_at: Option<(u64, ArchSnapshot)>,
}

impl<I: UopInsn> CommitWatch<I> {
    /// Build the watch for `frontend`'s checkpoint source, or
    /// [`CheckpointError::Unsupported`] if it has none. Validates
    /// `plan.resume_from` against the run identity up front, so a
    /// mismatched checkpoint fails before any cycle is simulated.
    pub fn from_plan<F>(
        frontend: &F,
        plan: CheckpointPlan,
    ) -> Result<CommitWatch<I>, CheckpointError>
    where
        F: popk_trace::Frontend<I>,
    {
        let source = frontend
            .checkpoint_source()
            .ok_or(CheckpointError::Unsupported)?;
        let verify_at = match plan.resume_from {
            Some(c) => {
                c.validate_for(frontend.isa(), &plan.workload, plan.config_hash, plan.limit)?;
                Some((c.committed, c.arch))
            }
            None => None,
        };
        Ok(CommitWatch {
            source,
            isa: frontend.isa(),
            workload: plan.workload,
            config_hash: plan.config_hash,
            limit: plan.limit,
            interval: plan.interval,
            committed: 0,
            sink: plan.sink,
            verify_at,
        })
    }

    /// Observe one retirement: re-execute `claim` on the reference
    /// machine (lockstep verification), cross-check a resumed
    /// checkpoint's snapshot when its commit count is reached, and emit
    /// a periodic checkpoint when due.
    pub fn advance(&mut self, claim: &Uop<I>) -> Result<(), CheckpointError> {
        if let Err(m) = self.source.verify(claim) {
            return Err(CheckpointError::Divergence {
                committed: self.committed,
                field: m.field,
            });
        }
        self.committed += 1;
        if let Some((k, _)) = self.verify_at {
            if self.committed == k {
                let (_, expected) = self.verify_at.take().expect("checked above");
                if let Some(field) = self.source.snapshot().first_difference(&expected) {
                    return Err(CheckpointError::Divergence {
                        committed: self.committed,
                        field,
                    });
                }
            }
        }
        if self.interval > 0 && self.committed.is_multiple_of(self.interval) {
            if let Some(sink) = self.sink.as_mut() {
                sink(Checkpoint {
                    isa: self.isa.to_string(),
                    workload: self.workload.clone(),
                    config_hash: self.config_hash,
                    limit: self.limit,
                    committed: self.committed,
                    arch: self.source.snapshot(),
                });
            }
        }
        Ok(())
    }

    /// Whether a resumed checkpoint is still awaiting verification (its
    /// commit count has not been reached). The run loop surfaces this as
    /// a divergence if the run ends first — a checkpoint claiming more
    /// commits than the run produces is inconsistent state.
    pub fn pending_verification(&self) -> Option<u64> {
        self.verify_at.as_ref().map(|&(k, _)| k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            isa: "pisa".into(),
            workload: "gzip".into(),
            config_hash: 0xdead_beef_0123_4567,
            limit: 200_000,
            committed: 5_000,
            arch: ArchSnapshot {
                icount: 5_000,
                pc: 0x0040_0010,
                regs: (0..67).collect(),
                pages: vec![SnapshotPage {
                    base: 0x1000_0000,
                    data: (0..=255u8).cycle().take(4096).collect(),
                }],
                out_ints: vec![-3, 17],
                out_bytes: b"ok\n".to_vec(),
                exited: None,
            },
        }
    }

    #[test]
    fn body_roundtrips_exactly() {
        let c = sample();
        let body = c.to_body();
        let back = Checkpoint::parse(&body).expect("parses");
        assert_eq!(back, c);
        // Serialization is deterministic.
        assert_eq!(back.to_body(), body);
    }

    #[test]
    fn truncated_corrupted_and_stale_bodies_are_typed_errors() {
        let body = sample().to_body();

        // Truncation → malformed JSON.
        assert!(matches!(
            Checkpoint::parse(&body[..body.len() / 2]),
            Err(CheckpointError::Malformed(_))
        ));

        // Bit-rot that stays valid JSON → integrity mismatch.
        let flipped = body.replacen("\"committed\": 5000", "\"committed\": 5001", 1);
        assert_ne!(flipped, body);
        assert_eq!(Checkpoint::parse(&flipped), Err(CheckpointError::Corrupt));

        // A resealed body from another schema version → stale.
        let mut j = Json::parse(&body).unwrap();
        j.set("checkpoint_version", Json::from(CHECKPOINT_VERSION + 3));
        let stale = seal(j);
        assert_eq!(
            Checkpoint::parse(&stale),
            Err(CheckpointError::StaleVersion {
                found: CHECKPOINT_VERSION + 3
            })
        );

        // A resealed body missing a required field → malformed.
        let mut j = Json::parse(&body).unwrap();
        j.remove("workload");
        assert!(matches!(
            Checkpoint::parse(&seal(j)),
            Err(CheckpointError::Malformed(_))
        ));
    }

    #[test]
    fn identity_validation_names_the_field() {
        let c = sample();
        c.validate_for("pisa", "gzip", c.config_hash, c.limit)
            .expect("matching identity");
        let field = |r: Result<(), CheckpointError>| match r {
            Err(CheckpointError::Mismatch { field }) => field,
            other => panic!("expected mismatch, got {other:?}"),
        };
        assert_eq!(
            field(c.validate_for("rv32", "gzip", c.config_hash, c.limit)),
            "isa"
        );
        assert_eq!(
            field(c.validate_for("pisa", "gcc", c.config_hash, c.limit)),
            "workload"
        );
        assert_eq!(field(c.validate_for("pisa", "gzip", 1, c.limit)), "config");
        assert_eq!(
            field(c.validate_for("pisa", "gzip", c.config_hash, 7)),
            "limit"
        );
    }

    #[test]
    fn save_load_roundtrips_atomically() {
        let dir = std::env::temp_dir().join(format!("popk-ckpt-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("row.ckpt.json");
        let c = sample();
        c.save(&path).expect("save");
        assert_eq!(Checkpoint::load(&path).expect("load"), c);
        // No temp litter after a completed save.
        let litter: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with(".ckpt.tmp"))
            .collect();
        assert!(litter.is_empty());
        assert!(matches!(
            Checkpoint::load(&dir.join("absent.json")),
            Err(CheckpointError::Io(_))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hex_roundtrip() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(hex_decode(&hex_encode(&data)).unwrap(), data);
        assert_eq!(hex_decode("0g"), None);
        assert_eq!(hex_decode("abc"), None);
        assert_eq!(hex_decode(""), Some(Vec::new()));
    }
}
