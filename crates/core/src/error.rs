//! Typed simulation errors: the `SimError` taxonomy.
//!
//! The timing model's failure modes fall into four classes, each with a
//! structured variant so callers (and the bench sweep executor) can react
//! without parsing panic strings:
//!
//! * [`SimError::InvalidConfig`] — the [`MachineConfig`](crate::MachineConfig)
//!   is degenerate ([`MachineConfig::validate`](crate::MachineConfig::validate)
//!   rejected it before any cycle was simulated).
//! * [`SimError::Emulation`] — the functional machine faulted while
//!   producing the dynamic trace (unmapped PC, misaligned access, …).
//! * [`SimError::Deadlock`] — the watchdog saw no retirement for
//!   `cfg.watchdog` consecutive cycles; carries a [`DeadlockSnapshot`]
//!   of the stuck pipeline.
//! * [`SimError::OracleDivergence`] — commit-time lockstep verification
//!   (see `core/src/oracle.rs`) caught the pipeline retiring an
//!   architectural value the reference machine disagrees with.

use crate::checkpoint::CheckpointError;
use crate::config::ConfigError;
use crate::json::Json;
use popk_emu::EmuError;
use std::fmt;

/// A typed simulation failure, returned by
/// [`try_simulate`](crate::try_simulate) and
/// [`Simulator::try_run`](crate::Simulator::try_run).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The configuration failed [`validate`](crate::MachineConfig::validate).
    InvalidConfig(ConfigError),
    /// The functional emulator faulted while generating the trace.
    Emulation(EmuError),
    /// No instruction retired for the configured watchdog interval.
    Deadlock(DeadlockSnapshot),
    /// Commit-time lockstep verification diverged from the reference
    /// machine: the pipeline retired a value the oracle disagrees with.
    OracleDivergence {
        /// Dynamic sequence number of the diverging instruction.
        seq: u64,
        /// Its program counter.
        pc: u32,
        /// Which architectural field diverged (`"pc"`, `"insn"`,
        /// `"dest0"`, `"dest1"`, `"ea"`, `"store_data"`, `"taken"`,
        /// `"next_pc"`, `"exited"`, or `"emulation"`).
        field: &'static str,
        /// The reference machine's value for that field.
        expected: u64,
        /// The value the pipeline retired.
        got: u64,
    },
    /// The run was canceled through the cooperative cancellation flag
    /// ([`Simulator::set_cancel`](crate::Simulator::set_cancel)) before
    /// reaching its instruction budget. Used by long-running hosts
    /// (the `popk serve` daemon) to abandon jobs whose clients are gone.
    Canceled,
    /// Checkpointed execution failed: an unreadable/corrupt/stale
    /// checkpoint file, a checkpoint from a different run identity, or a
    /// resume whose replayed state diverges from the stored snapshot.
    Checkpoint(CheckpointError),
}

impl SimError {
    /// A stable, lowercase machine-readable identifier for this error
    /// class. These are wire-protocol constants (see `popk-bench`'s
    /// serve module and EXPERIMENTS.md): renaming one is a protocol
    /// break, not a refactor.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            SimError::InvalidConfig(_) => "invalid_config",
            SimError::Emulation(_) => "emulation",
            SimError::Deadlock(_) => "deadlock",
            SimError::OracleDivergence { .. } => "oracle_divergence",
            SimError::Canceled => "canceled",
            SimError::Checkpoint(_) => "checkpoint",
        }
    }

    /// The wire representation of this error: an object carrying the
    /// stable [`kind`](SimError::kind) plus the human-readable
    /// `Display` rendering.
    #[must_use]
    pub fn to_wire_json(&self) -> Json {
        let mut j = Json::object();
        j.set("kind", self.kind().into());
        j.set("message", self.to_string().into());
        j
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::InvalidConfig(e) => write!(f, "invalid machine configuration: {e}"),
            SimError::Emulation(e) => write!(f, "emulation error during timing run: {e}"),
            SimError::Deadlock(s) => write!(f, "pipeline deadlock: {s}"),
            SimError::OracleDivergence {
                seq,
                pc,
                field,
                expected,
                got,
            } => write!(
                f,
                "oracle divergence at seq {seq} pc {pc:#010x}: \
                 field `{field}` expected {expected:#x}, pipeline retired {got:#x}"
            ),
            SimError::Canceled => write!(f, "simulation canceled"),
            SimError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<ConfigError> for SimError {
    fn from(e: ConfigError) -> SimError {
        SimError::InvalidConfig(e)
    }
}

impl From<EmuError> for SimError {
    fn from(e: EmuError) -> SimError {
        SimError::Emulation(e)
    }
}

impl From<CheckpointError> for SimError {
    fn from(e: CheckpointError) -> SimError {
        SimError::Checkpoint(e)
    }
}

/// The pipeline state captured when the watchdog fires: enough to see
/// *what* is stuck (the oldest window entries and the occupancy numbers)
/// without replaying the run under a trace sink.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeadlockSnapshot {
    /// Cycle at which the watchdog fired.
    pub cycle: u64,
    /// Cycle of the last successful retirement (0 if none ever).
    pub last_commit_cycle: u64,
    /// Instructions committed before the stall.
    pub committed: u64,
    /// Window occupancy at the stall.
    pub window_len: usize,
    /// Load/store-queue occupancy at the stall.
    pub lsq_occupancy: usize,
    /// Fetched-but-undispatched instructions at the stall.
    pub feed_len: usize,
    /// Disassembly of the oldest window entries (up to four), oldest
    /// first — the head is the instruction refusing to retire.
    pub head: Vec<String>,
}

impl fmt::Display for DeadlockSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "no retirement since cycle {} (now {}); {} committed, \
             window {} entries, lsq {}, feed {}",
            self.last_commit_cycle,
            self.cycle,
            self.committed,
            self.window_len,
            self.lsq_occupancy,
            self.feed_len,
        )?;
        if let Some(h) = self.head.first() {
            write!(f, "; head: {h}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divergence_display_names_the_field() {
        let e = SimError::OracleDivergence {
            seq: 42,
            pc: 0x0040_0010,
            field: "dest0",
            expected: 7,
            got: 9,
        };
        let s = e.to_string();
        assert!(s.contains("seq 42"), "{s}");
        assert!(s.contains("dest0"), "{s}");
        assert!(s.contains("0x7") && s.contains("0x9"), "{s}");
    }

    #[test]
    fn deadlock_display_summarizes_the_stall() {
        let e = SimError::Deadlock(DeadlockSnapshot {
            cycle: 5000,
            last_commit_cycle: 100,
            committed: 12,
            window_len: 3,
            lsq_occupancy: 1,
            feed_len: 4,
            head: vec!["lw r9, 0(r16)".into()],
        });
        let s = e.to_string();
        assert!(s.contains("deadlock"), "{s}");
        assert!(s.contains("lw r9"), "{s}");
        assert!(s.contains("cycle 100"), "{s}");
    }

    #[test]
    fn kinds_are_stable_wire_identifiers() {
        let canceled = SimError::Canceled;
        assert_eq!(canceled.kind(), "canceled");
        assert_eq!(canceled.to_string(), "simulation canceled");
        let wire = canceled.to_wire_json().to_string();
        assert_eq!(
            wire,
            r#"{"kind":"canceled","message":"simulation canceled"}"#
        );
        let emu: SimError = popk_emu::EmuError::UnmappedPc { pc: 0x10 }.into();
        assert_eq!(emu.kind(), "emulation");
        assert!(emu
            .to_wire_json()
            .to_string()
            .contains("\"kind\":\"emulation\""));
    }

    #[test]
    fn emulation_errors_convert() {
        let e: SimError = popk_emu::EmuError::UnmappedPc { pc: 0x10 }.into();
        assert!(matches!(e, SimError::Emulation(_)));
        assert!(e.to_string().contains("emulation error"));
    }
}
