//! # popk-core — the bit-sliced out-of-order timing model
//!
//! A cycle-level, trace-driven model of the paper's machine (Table 2,
//! Fig. 7, Fig. 10): a 4-wide, 15-stage out-of-order core with a 64-entry
//! RUU and 32-entry load/store queue, whose execute stage is either
//! unpipelined (the *ideal* baseline), naively pipelined (operands stay
//! atomic), or **bit-sliced**: operands decompose into 16- or 8-bit slices
//! tracked and scheduled independently.
//!
//! The five techniques of the paper are independent toggles
//! ([`Optimizations`]), applied cumulatively in Fig. 11's order:
//!
//! 1. *partial operand bypassing* — consumers wake slice-by-slice;
//! 2. *out-of-order slices* — logic-op slices may issue high-before-low;
//! 3. *early branch resolution* — `beq`/`bne` mispredicts redirect as soon
//!    as a differing slice is seen;
//! 4. *early load-store disambiguation* — loads pass older stores once
//!    low-order address slices prove a mismatch;
//! 5. *partial tag matching* — the L1D access starts after the first agen
//!    slice, with MRU way prediction verified a cycle later.
//!
//! ```no_run
//! use popk_core::{simulate, MachineConfig};
//! let w = popk_workloads::by_name("gzip").unwrap();
//! let program = w.program();
//! let ideal = simulate(&program, &MachineConfig::ideal(), 1_000_000);
//! let sliced = simulate(&program, &MachineConfig::slice2_full(), 1_000_000);
//! println!("IPC {:.3} vs {:.3}", ideal.ipc(), sliced.ipc());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checkpoint;
mod config;
pub mod error;
pub mod events;
pub mod fault;
pub mod hash;
pub mod json;
mod oracle;
mod pipeline;
pub mod policies;
pub mod registry;
pub mod sim;
mod stats;
pub mod timeline;

pub use checkpoint::{Checkpoint, CheckpointError, CheckpointPlan, CHECKPOINT_VERSION};
pub use config::{ConfigError, IsaKind, MachineConfig, Optimizations, PipelineKind};
pub use error::{DeadlockSnapshot, SimError};
pub use events::{NullTrace, ReplayReason, StallReason, TraceEvent, TraceSink, VecTrace};
pub use fault::{FaultKinds, FaultLog, FaultPlan};
pub use json::{Json, JsonParseError};
pub use registry::{Counter, StatsRegistry};
pub use sim::{
    simulate, try_resume, try_resume_frontend, try_simulate, try_simulate_checkpointed,
    try_simulate_frontend, try_simulate_frontend_checkpointed, try_simulate_frontend_in,
    try_simulate_in, Scratch, Simulator,
};
pub use stats::SimStats;
pub use timeline::{render_chart, render_table, InsnTiming, TimelineBuilder};
