//! A minimal hand-rolled JSON value + parser + serializer.
//!
//! The workspace builds offline with no external crates, so the bench
//! artifacts ([`crate::StatsRegistry::to_json`], `BENCH_*.json`) are
//! emitted through this tiny tree builder instead of serde. Construction,
//! ordered objects, and spec-compliant serialization (string escaping,
//! non-finite floats as `null`) came first; the serve wire protocol and
//! the artifact cache's integrity verification added [`Json::parse`], a
//! strict recursive-descent reader with a nesting-depth bound (the
//! parser faces untrusted network input). Parse → serialize round-trips
//! byte-identically for anything this serializer produced: integers stay
//! integers, floats re-print in the same shortest round-trippable form,
//! and object order is preserved.

use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order so serialized
/// artifacts are stable and diffable run-to-run.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (covers every counter in the workspace).
    Int(i64),
    /// A float; non-finite values serialize as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// An empty object, ready for [`Json::set`].
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Insert (or replace) `key` in an object. Panics on non-objects —
    /// artifact-building code constructs the value shapes statically.
    pub fn set(&mut self, key: &str, value: Json) -> &mut Json {
        let Json::Object(pairs) = self else {
            panic!("Json::set on a non-object");
        };
        match pairs.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value,
            None => pairs.push((key.to_string(), value)),
        }
        self
    }

    /// Look up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Remove `key` from an object, returning its value if present.
    /// Comparing artifacts modulo a volatile block (e.g. host timing)
    /// removes it from both sides first.
    pub fn remove(&mut self, key: &str) -> Option<Json> {
        match self {
            Json::Object(pairs) => pairs
                .iter()
                .position(|(k, _)| k == key)
                .map(|i| pairs.remove(i).1),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer value as a `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Int(i) => u64::try_from(*i).ok(),
            _ => None,
        }
    }

    /// The integer value, if this is an integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The numeric value as an `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Float(f) => Some(*f),
            _ => None,
        }
    }

    /// The boolean value, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Parse a complete JSON document (trailing whitespace allowed,
    /// trailing content rejected).
    ///
    /// Strict by design — the serve wire protocol feeds this untrusted
    /// bytes: no comments, no trailing commas, no bare `NaN`/`Infinity`,
    /// lone surrogates rejected, and nesting is bounded at
    /// [`MAX_PARSE_DEPTH`] so a hostile line cannot overflow the stack.
    /// Duplicate object keys keep the last value (matching
    /// [`Json::set`] semantics).
    pub fn parse(text: &str) -> Result<Json, JsonParseError> {
        let mut p = Parser {
            text,
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing content after document"));
        }
        Ok(v)
    }

    /// Serialize with `indent`-space indentation per nesting level.
    pub fn to_pretty(&self, indent: usize) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(indent), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(n) => ("\n", " ".repeat(n * depth), " ".repeat(n * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    // Display for f64 is the shortest round-trippable
                    // decimal form, which is valid JSON. Integral floats
                    // print bare ("3"); keep them floats in the artifact
                    // for schema stability.
                    let s = format!("{f}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

/// Compact (whitespace-free) serialization.
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        f.write_str(&out)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Maximum container nesting [`Json::parse`] accepts. Deep enough for
/// any artifact or wire message this workspace produces, shallow enough
/// that recursive descent cannot overflow the stack on hostile input.
pub const MAX_PARSE_DEPTH: usize = 64;

/// A [`Json::parse`] failure: what went wrong and the byte offset at
/// which the parser gave up.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JsonParseError {
    /// Byte offset into the input where the error was detected.
    pub offset: usize,
    /// What the parser expected or rejected.
    pub message: String,
}

impl std::fmt::Display for JsonParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonParseError {}

struct Parser<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonParseError {
        JsonParseError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("expected a JSON value")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, JsonParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn number(&mut self) -> Result<Json, JsonParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_from = |p: &mut Parser| {
            let d0 = p.pos;
            while matches!(p.peek(), Some(b'0'..=b'9')) {
                p.pos += 1;
            }
            p.pos > d0
        };
        let int_start = self.pos;
        if !digits_from(self) {
            return Err(self.err("expected digits"));
        }
        if self.bytes[int_start] == b'0' && self.pos - int_start > 1 {
            return Err(self.err("leading zero"));
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            if !digits_from(self) {
                return Err(self.err("expected fraction digits"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !digits_from(self) {
                return Err(self.err("expected exponent digits"));
            }
        }
        let s = &self.text[start..self.pos];
        if !float {
            if let Ok(i) = s.parse::<i64>() {
                return Ok(Json::Int(i));
            }
            // Magnitude beyond i64: degrade to float rather than error.
        }
        match s.parse::<f64>() {
            Ok(f) if f.is_finite() => Ok(Json::Float(f)),
            _ => Err(self.err("number out of range")),
        }
    }

    fn string(&mut self) -> Result<String, JsonParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        let mut run = self.pos; // start of the current escape-free run
        loop {
            match self.peek() {
                Some(b'"') => {
                    out.push_str(&self.text[run..self.pos]);
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    out.push_str(&self.text[run..self.pos]);
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => out.push(self.unicode_escape()?),
                        _ => return Err(self.err("unknown escape")),
                    }
                    run = self.pos;
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => self.pos += 1, // UTF-8 passthrough (input is &str)
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonParseError> {
        let s = self
            .text
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn unicode_escape(&mut self) -> Result<char, JsonParseError> {
        let hi = self.hex4()?;
        let code = match hi {
            0xD800..=0xDBFF => {
                // High surrogate: a low surrogate must follow.
                if self.peek() == Some(b'\\') && self.bytes.get(self.pos + 1) == Some(&b'u') {
                    self.pos += 2;
                    let lo = self.hex4()?;
                    if !(0xDC00..=0xDFFF).contains(&lo) {
                        return Err(self.err("expected low surrogate"));
                    }
                    0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                } else {
                    return Err(self.err("lone high surrogate"));
                }
            }
            0xDC00..=0xDFFF => return Err(self.err("lone low surrogate")),
            c => c,
        };
        char::from_u32(code).ok_or_else(|| self.err("invalid code point"))
    }

    fn array(&mut self) -> Result<Json, JsonParseError> {
        self.enter()?;
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(Json::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                    self.skip_ws();
                }
                Some(b']') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonParseError> {
        self.enter()?;
        self.expect(b'{')?;
        let mut obj = Json::object();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.depth -= 1;
            return Ok(obj);
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            obj.set(&key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.depth -= 1;
                    return Ok(obj);
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn enter(&mut self) -> Result<(), JsonParseError> {
        self.depth += 1;
        if self.depth > MAX_PARSE_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        Ok(())
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        // Counters stay well under 2^63 in practice; saturate if not.
        Json::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}
impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl<T: Into<Json>> FromIterator<T> for Json {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Json {
        Json::Array(iter.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::Bool(true).to_string(), "true");
        assert_eq!(Json::Int(-7).to_string(), "-7");
        assert_eq!(Json::from(1.5).to_string(), "1.5");
        assert_eq!(Json::from(3.0).to_string(), "3.0");
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
        assert_eq!(Json::from("a\"b\n").to_string(), r#""a\"b\n""#);
    }

    #[test]
    fn containers_preserve_order() {
        let mut o = Json::object();
        o.set("z", Json::from(1u64));
        o.set("a", Json::from("x"));
        o.set("z", Json::from(2u64)); // replace, not duplicate
        assert_eq!(o.to_string(), r#"{"z":2,"a":"x"}"#);
        assert_eq!(o.remove("z"), Some(Json::Int(2)));
        assert_eq!(o.remove("z"), None);
        assert_eq!(o.to_string(), r#"{"a":"x"}"#);
        let arr: Json = [1u64, 2, 3].into_iter().collect();
        assert_eq!(arr.to_string(), "[1,2,3]");
    }

    #[test]
    fn pretty_round_trips_structure() {
        let mut o = Json::object();
        o.set("xs", [1u64, 2].into_iter().collect());
        o.set("empty", Json::object());
        let pretty = o.to_pretty(2);
        assert!(pretty.contains("\"xs\": [\n    1,\n    2\n  ]"));
        assert!(pretty.contains("\"empty\": {}"));
    }

    #[test]
    fn control_chars_escape() {
        assert_eq!(Json::from("\u{1}").to_string(), "\"\\u0001\"");
    }

    #[test]
    fn parse_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-42").unwrap(), Json::Int(-42));
        assert_eq!(Json::parse("0").unwrap(), Json::Int(0));
        assert_eq!(Json::parse("1.5").unwrap(), Json::Float(1.5));
        assert_eq!(Json::parse("3.0").unwrap(), Json::Float(3.0));
        assert_eq!(Json::parse("2e3").unwrap(), Json::Float(2000.0));
        assert_eq!(Json::parse("-1.25e-2").unwrap(), Json::Float(-0.0125));
        assert_eq!(Json::parse(r#""hi""#).unwrap(), Json::from("hi"));
    }

    #[test]
    fn parse_large_integers() {
        assert_eq!(
            Json::parse("9223372036854775807").unwrap(),
            Json::Int(i64::MAX)
        );
        // Beyond i64 degrades to float rather than erroring.
        assert_eq!(
            Json::parse("18446744073709551615").unwrap(),
            Json::Float(1.8446744073709552e19)
        );
    }

    #[test]
    fn parse_strings_and_escapes() {
        assert_eq!(
            Json::parse(r#""a\"b\\c\/d\n\t\r\b\f""#).unwrap(),
            Json::from("a\"b\\c/d\n\t\r\u{8}\u{c}")
        );
        assert_eq!(Json::parse(r#""\u0041\u00e9""#).unwrap(), Json::from("Aé"));
        // Surrogate pair → one astral code point.
        assert_eq!(Json::parse(r#""\ud83d\ude00""#).unwrap(), Json::from("😀"));
        // Raw (non-escaped) multibyte UTF-8 passes through.
        assert_eq!(Json::parse("\"héllo\"").unwrap(), Json::from("héllo"));
    }

    #[test]
    fn parse_containers() {
        assert_eq!(Json::parse("[]").unwrap(), Json::Array(vec![]));
        assert_eq!(Json::parse("{}").unwrap(), Json::object());
        let v = Json::parse(r#" { "a" : [ 1 , null , { "b" : false } ] } "#).unwrap();
        assert_eq!(v.to_string(), r#"{"a":[1,null,{"b":false}]}"#);
        // Duplicate keys: last value wins, first position kept.
        let v = Json::parse(r#"{"k":1,"x":2,"k":3}"#).unwrap();
        assert_eq!(v.to_string(), r#"{"k":3,"x":2}"#);
    }

    #[test]
    fn parse_round_trips_serializer_output() {
        let mut o = Json::object();
        o.set("name", Json::from("gzip \"fast\"\n"));
        o.set("ipc", Json::from(1.5));
        o.set("whole", Json::from(3.0));
        o.set("n", Json::from(200_000u64));
        o.set("neg", Json::from(-9i64));
        o.set("ok", Json::from(true));
        o.set("none", Json::Null);
        o.set("xs", [1u64, 2, 3].into_iter().collect());
        let mut inner = Json::object();
        inner.set("ctrl", Json::from("\u{1}\u{1f}"));
        o.set("inner", inner);
        for text in [o.to_string(), o.to_pretty(2)] {
            let back = Json::parse(&text).expect("round trip");
            assert_eq!(back, o);
            assert_eq!(back.to_string(), o.to_string());
        }
    }

    #[test]
    fn parse_rejects_malformed() {
        for bad in [
            "",
            "  ",
            "nul",
            "tru",
            "{",
            "[1,",
            "[1 2]",
            "{\"a\":}",
            "{\"a\" 1}",
            "{a:1}",
            "1 2",
            "[] []",
            "01",
            "-",
            "1.",
            ".5",
            "1e",
            "+1",
            "NaN",
            "Infinity",
            "'single'",
            "\"unterminated",
            "\"bad \\x escape\"",
            "\"lone \\ud800 surrogate\"",
            "\"low first \\udc00\"",
            "\"\u{1}\"", // raw control character
            "[1,]",
            "{\"a\":1,}",
            "// comment\n1",
        ] {
            let e = Json::parse(bad).expect_err(bad);
            // The error formats with an offset and a message.
            assert!(e.to_string().contains("invalid JSON at byte"), "{bad}");
        }
    }

    #[test]
    fn parse_bounds_nesting_depth() {
        let deep_ok = format!(
            "{}1{}",
            "[".repeat(MAX_PARSE_DEPTH),
            "]".repeat(MAX_PARSE_DEPTH)
        );
        assert!(Json::parse(&deep_ok).is_ok());
        let too_deep = format!(
            "{}1{}",
            "[".repeat(MAX_PARSE_DEPTH + 1),
            "]".repeat(MAX_PARSE_DEPTH + 1)
        );
        let e = Json::parse(&too_deep).expect_err("depth bound");
        assert!(e.message.contains("nesting"), "{e}");
    }

    #[test]
    fn accessors() {
        let v = Json::parse(r#"{"s":"x","u":7,"i":-7,"f":1.5,"b":true,"a":[1]}"#).unwrap();
        assert_eq!(v.get("s").and_then(Json::as_str), Some("x"));
        assert_eq!(v.get("u").and_then(Json::as_u64), Some(7));
        assert_eq!(v.get("i").and_then(Json::as_u64), None);
        assert_eq!(v.get("i").and_then(Json::as_i64), Some(-7));
        assert_eq!(v.get("f").and_then(Json::as_f64), Some(1.5));
        assert_eq!(v.get("u").and_then(Json::as_f64), Some(7.0));
        assert_eq!(v.get("b").and_then(Json::as_bool), Some(true));
        assert_eq!(
            v.get("a").and_then(Json::as_array).map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(v.get("s").and_then(Json::as_bool), None);
    }
}
