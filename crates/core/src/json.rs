//! A minimal hand-rolled JSON value + serializer.
//!
//! The workspace builds offline with no external crates, so the bench
//! artifacts ([`crate::StatsRegistry::to_json`], `BENCH_*.json`) are
//! emitted through this tiny tree builder instead of serde. Only what
//! the observability layer needs is implemented: construction, ordered
//! objects, and spec-compliant serialization (string escaping, non-finite
//! floats as `null`).

use std::fmt::Write as _;

/// A JSON value. Object keys keep insertion order so serialized
/// artifacts are stable and diffable run-to-run.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (covers every counter in the workspace).
    Int(i64),
    /// A float; non-finite values serialize as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Json>),
    /// An object, as ordered key/value pairs.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// An empty object, ready for [`Json::set`].
    pub fn object() -> Json {
        Json::Object(Vec::new())
    }

    /// Insert (or replace) `key` in an object. Panics on non-objects —
    /// artifact-building code constructs the value shapes statically.
    pub fn set(&mut self, key: &str, value: Json) -> &mut Json {
        let Json::Object(pairs) = self else {
            panic!("Json::set on a non-object");
        };
        match pairs.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = value,
            None => pairs.push((key.to_string(), value)),
        }
        self
    }

    /// Look up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Remove `key` from an object, returning its value if present.
    /// Comparing artifacts modulo a volatile block (e.g. host timing)
    /// removes it from both sides first.
    pub fn remove(&mut self, key: &str) -> Option<Json> {
        match self {
            Json::Object(pairs) => pairs
                .iter()
                .position(|(k, _)| k == key)
                .map(|i| pairs.remove(i).1),
            _ => None,
        }
    }

    /// Serialize with `indent`-space indentation per nesting level.
    pub fn to_pretty(&self, indent: usize) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(indent), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(n) => ("\n", " ".repeat(n * depth), " ".repeat(n * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Float(f) => {
                if f.is_finite() {
                    // Display for f64 is the shortest round-trippable
                    // decimal form, which is valid JSON. Integral floats
                    // print bare ("3"); keep them floats in the artifact
                    // for schema stability.
                    let s = format!("{f}");
                    out.push_str(&s);
                    if !s.contains(['.', 'e', 'E']) {
                        out.push_str(".0");
                    }
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Object(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

/// Compact (whitespace-free) serialization.
impl std::fmt::Display for Json {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        f.write_str(&out)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        // Counters stay well under 2^63 in practice; saturate if not.
        Json::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::Int(i64::try_from(v).unwrap_or(i64::MAX))
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}
impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl<T: Into<Json>> FromIterator<T> for Json {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Json {
        Json::Array(iter.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars() {
        assert_eq!(Json::Null.to_string(), "null");
        assert_eq!(Json::Bool(true).to_string(), "true");
        assert_eq!(Json::Int(-7).to_string(), "-7");
        assert_eq!(Json::from(1.5).to_string(), "1.5");
        assert_eq!(Json::from(3.0).to_string(), "3.0");
        assert_eq!(Json::Float(f64::NAN).to_string(), "null");
        assert_eq!(Json::from("a\"b\n").to_string(), r#""a\"b\n""#);
    }

    #[test]
    fn containers_preserve_order() {
        let mut o = Json::object();
        o.set("z", Json::from(1u64));
        o.set("a", Json::from("x"));
        o.set("z", Json::from(2u64)); // replace, not duplicate
        assert_eq!(o.to_string(), r#"{"z":2,"a":"x"}"#);
        assert_eq!(o.remove("z"), Some(Json::Int(2)));
        assert_eq!(o.remove("z"), None);
        assert_eq!(o.to_string(), r#"{"a":"x"}"#);
        let arr: Json = [1u64, 2, 3].into_iter().collect();
        assert_eq!(arr.to_string(), "[1,2,3]");
    }

    #[test]
    fn pretty_round_trips_structure() {
        let mut o = Json::object();
        o.set("xs", [1u64, 2].into_iter().collect());
        o.set("empty", Json::object());
        let pretty = o.to_pretty(2);
        assert!(pretty.contains("\"xs\": [\n    1,\n    2\n  ]"));
        assert!(pretty.contains("\"empty\": {}"));
    }

    #[test]
    fn control_chars_escape() {
        assert_eq!(Json::from("\u{1}").to_string(), "\"\\u0001\"");
    }
}
