//! Machine configuration (Table 2 and the Fig. 10 pipeline variants).

use popk_bpred::FrontEndConfig;
use popk_cache::{CacheConfig, HierarchyConfig};
use popk_slice::SliceWidth;
use std::fmt;

/// A degenerate [`MachineConfig`], rejected by
/// [`MachineConfig::validate`] before any cycle is simulated.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ConfigError {
    /// The offending configuration field (e.g. `"width"`,
    /// `"memory.l1d"`).
    pub field: &'static str,
    /// Why the value is degenerate.
    pub message: String,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.field, self.message)
    }
}

impl std::error::Error for ConfigError {}

/// Which execute-stage organization is simulated (Fig. 10).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PipelineKind {
    /// Single-cycle, unpipelined EX: the best-case machine the paper's
    /// thin bars mark (frequency held equal by fiat).
    Ideal,
    /// EX pipelined over the slice count with operands kept atomic: the
    /// "simple pipelining" bottom bar of Fig. 11.
    SimplePipelined,
    /// The bit-sliced machine: slices tracked and scheduled independently,
    /// techniques enabled per [`Optimizations`].
    BitSliced,
}

/// The paper's five techniques as independent toggles.
///
/// For [`PipelineKind::BitSliced`] these are applied in Fig. 11's
/// cumulative order via [`Optimizations::level`]; for other pipeline kinds
/// they are ignored.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct Optimizations {
    /// Dependent slices wake as producer slices complete.
    pub partial_bypass: bool,
    /// Independent-class (logic) slices may issue out of order.
    pub ooo_slices: bool,
    /// `beq`/`bne` mispredictions redirect at the first differing slice.
    pub early_branch: bool,
    /// Loads pass older stores once low address slices prove mismatch.
    pub early_disambig: bool,
    /// L1D access overlaps agen: index after the first 16 address bits,
    /// MRU way prediction among partial-tag matchers.
    pub partial_tag: bool,
    /// Extension (§5.1's "could speculatively forward ... with very high
    /// accuracy"): when exactly one older store partially matches, forward
    /// its data before the full addresses resolve, verifying later.
    pub spec_forward: bool,
    /// Extension (§6's narrow-width note): when a producer's value is a
    /// sign/zero-extension of its low slice, consumers' upper-slice
    /// dependences are satisfied by the low slice alone (models a perfect
    /// narrowness detector à la Brooks & Martonosi).
    pub narrow_operands: bool,
    /// Extension (§5.1's pointer to the Memory Conflict Buffer \[7\]):
    /// a per-load-PC dependence predictor lets predicted-safe loads issue
    /// past *unknown* older store addresses, replaying on violation.
    pub mem_dep_predict: bool,
    /// Extension (§5.2's pointer to sum-addressed memory \[18\]): the cache
    /// decoder folds `base + offset`, so the index is available as soon as
    /// the *base register* slices are — no separate agen wait.
    pub sum_addressed: bool,
}

impl Optimizations {
    /// No techniques.
    pub fn none() -> Optimizations {
        Optimizations::default()
    }

    /// The cumulative stacks of Fig. 11/12: level 0 = none (simple
    /// pipelining), 1 = +partial bypassing, 2 = +out-of-order slices,
    /// 3 = +early branch resolution, 4 = +early disambiguation,
    /// 5 = +partial tag matching (all).
    pub fn level(n: usize) -> Optimizations {
        Optimizations {
            partial_bypass: n >= 1,
            ooo_slices: n >= 2,
            early_branch: n >= 3,
            early_disambig: n >= 4,
            partial_tag: n >= 5,
            spec_forward: false,
            narrow_operands: false,
            mem_dep_predict: false,
            sum_addressed: false,
        }
    }

    /// Display name of cumulative level `n`.
    pub fn level_name(n: usize) -> &'static str {
        match n {
            0 => "simple pipelining",
            1 => "+ partial operand bypassing",
            2 => "+ out-of-order slices",
            3 => "+ early branch resolution",
            4 => "+ early l/s disambiguation",
            5 => "+ partial tag matching",
            _ => "all techniques",
        }
    }

    /// All five techniques.
    pub fn all() -> Optimizations {
        Optimizations::level(5)
    }

    /// All five techniques plus the uniformly-beneficial extensions the
    /// paper sketches: speculative partial-match forwarding (§5.1),
    /// narrow-operand relaxation (§6), and sum-addressed indexing
    /// (§5.2 → \[18\]).
    ///
    /// `mem_dep_predict` (§5.1 → \[7\]) is deliberately *not* included: with
    /// this simple per-PC predictor it helps chain-walking codes (gcc −7%
    /// cycles) but can hurt byte-granular ones (bzip +9%, by racing the
    /// MTF search loop into still-in-flight shift stores) — see the
    /// `ablations` binary and EXPERIMENTS.md.
    pub fn extended() -> Optimizations {
        Optimizations {
            spec_forward: true,
            narrow_operands: true,
            sum_addressed: true,
            ..Optimizations::all()
        }
    }
}

/// Which ISA/frontend feeds the timing core. Purely an identity: the
/// pipeline consumes ISA-neutral micro-ops either way, but results are
/// not comparable across ISAs, so the frontend is part of the
/// configuration [`fingerprint`](MachineConfig::fingerprint) (and thus
/// of every artifact cache key).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum IsaKind {
    /// The native PISA-like ISA (`popk_isa::Insn`, `popk-emu` frontend).
    #[default]
    Pisa,
    /// RV32I (`popk-rv32` frontend).
    Rv32,
}

impl IsaKind {
    /// Short lowercase name, as reports and cache keys spell it.
    pub fn name(self) -> &'static str {
        match self {
            IsaKind::Pisa => "pisa",
            IsaKind::Rv32 => "rv32",
        }
    }
}

/// Full machine configuration. Defaults reproduce Table 2.
#[derive(Clone, Copy, Debug)]
pub struct MachineConfig {
    /// ISA/frontend identity (default: the native PISA-like ISA).
    pub isa: IsaKind,
    /// Pipeline organization of the execute stage.
    pub kind: PipelineKind,
    /// Operand slicing (ignored for `Ideal`, which is `W32`).
    pub slicing: SliceWidth,
    /// Technique toggles for the bit-sliced machine.
    pub opts: Optimizations,

    /// Fetch/issue/commit width (Table 2: 4).
    pub width: u32,
    /// Register update unit (window) entries (Table 2: 64).
    pub ruu_size: usize,
    /// Unified load/store queue entries (Table 2: 32).
    pub lsq_size: usize,
    /// Front-end stages from Fetch1 through RF2 (Fig. 10: 12), i.e. the
    /// earliest EX cycle is `fetch + front_depth`.
    pub front_depth: u64,
    /// Stage at which the instruction enters the RUU (after DP2: 6).
    pub dispatch_depth: u64,

    /// Integer ALUs per slice datapath (Table 2: 4, 1-cycle).
    pub int_alus: u32,
    /// Integer multiply latency (Table 2: 3).
    pub mult_latency: u64,
    /// Integer divide latency (Table 2: 20).
    pub div_latency: u64,
    /// FP ALUs (Table 2: 4, 2-cycle).
    pub fp_alus: u32,
    /// FP add latency (Table 2: 2).
    pub fp_latency: u64,
    /// FP multiply / divide / sqrt latencies (Table 2: 4/12/24).
    pub fp_mul_latency: u64,
    /// FP divide latency.
    pub fp_div_latency: u64,
    /// FP square-root latency.
    pub fp_sqrt_latency: u64,
    /// Cache ports (simultaneous data accesses per cycle).
    pub mem_ports: u32,
    /// Model wrong-path fetch: after a misprediction, fetch keeps issuing
    /// phantom instructions that occupy fetch/dispatch bandwidth, window
    /// entries and ALU slots until the redirect, then squash (default:
    /// fetch simply stalls, the common trace-driven approximation).
    pub model_wrong_path: bool,
    /// Run the commit-time oracle (a second functional machine in
    /// lockstep with retirement, see [`crate::SimError::OracleDivergence`]).
    /// Off by default; when off, the per-retire cost is one branch.
    pub oracle: bool,
    /// Watchdog: cycles without a retirement before
    /// [`Simulator::try_run`](crate::Simulator::try_run) aborts with
    /// [`SimError::Deadlock`](crate::SimError). The default (100 000) is
    /// orders of magnitude beyond any legitimate stall in this model
    /// (the worst — a full window behind an L2 miss chain — is a few
    /// hundred cycles).
    pub watchdog: u64,

    /// Memory hierarchy (Table 2 geometries and latencies). The slice-by-4
    /// presets raise `l1_latency` to 2, per §7's note.
    pub memory: HierarchyConfig,
    /// Front-end predictor configuration (64K gshare, 4-way 512-entry BTB,
    /// 8-entry RAS).
    pub frontend: FrontEndConfig,
}

impl MachineConfig {
    fn table2_base(kind: PipelineKind, slicing: SliceWidth, opts: Optimizations) -> MachineConfig {
        MachineConfig {
            isa: IsaKind::default(),
            kind,
            slicing,
            opts,
            width: 4,
            ruu_size: 64,
            lsq_size: 32,
            front_depth: 12,
            dispatch_depth: 6,
            int_alus: 4,
            mult_latency: 3,
            div_latency: 20,
            fp_alus: 4,
            fp_latency: 2,
            fp_mul_latency: 4,
            fp_div_latency: 12,
            fp_sqrt_latency: 24,
            mem_ports: 2,
            model_wrong_path: false,
            oracle: false,
            watchdog: 100_000,
            memory: HierarchyConfig::default(),
            frontend: FrontEndConfig::default(),
        }
    }

    /// The ideal machine: unpipelined single-cycle EX at the same clock
    /// (the thin reference bars of Fig. 11).
    pub fn ideal() -> MachineConfig {
        Self::table2_base(PipelineKind::Ideal, SliceWidth::W32, Optimizations::none())
    }

    /// Naive 2-deep EX pipelining, atomic operands (Fig. 11 bottom bar,
    /// slice-by-2 column).
    pub fn simple2() -> MachineConfig {
        Self::table2_base(
            PipelineKind::SimplePipelined,
            SliceWidth::W16,
            Optimizations::none(),
        )
    }

    /// Naive 4-deep EX pipelining, atomic operands. L1D latency rises to 2
    /// cycles, as the paper does for its slice-by-4 experiments.
    pub fn simple4() -> MachineConfig {
        let mut c = Self::table2_base(
            PipelineKind::SimplePipelined,
            SliceWidth::W8,
            Optimizations::none(),
        );
        c.memory.l1_latency = 2;
        c
    }

    /// Bit-sliced, two 16-bit slices, with the given techniques.
    pub fn slice2(opts: Optimizations) -> MachineConfig {
        Self::table2_base(PipelineKind::BitSliced, SliceWidth::W16, opts)
    }

    /// Bit-sliced, four 8-bit slices, with the given techniques (L1D
    /// latency 2, per §7).
    pub fn slice4(opts: Optimizations) -> MachineConfig {
        let mut c = Self::table2_base(PipelineKind::BitSliced, SliceWidth::W8, opts);
        c.memory.l1_latency = 2;
        c
    }

    /// Slice-by-2 with every technique (the paper's headline
    /// configuration).
    pub fn slice2_full() -> MachineConfig {
        Self::slice2(Optimizations::all())
    }

    /// Slice-by-4 with every technique.
    pub fn slice4_full() -> MachineConfig {
        Self::slice4(Optimizations::all())
    }

    /// A stable 64-bit fingerprint of every configuration field.
    ///
    /// Hashes the canonical `Debug` rendering through
    /// [`crate::hash::fnv1a_64`], so two configs fingerprint equal iff
    /// they are field-for-field identical — nested cache/frontend
    /// settings included, and new fields are covered by construction.
    /// This is the single source of config identity for the bench
    /// layer: compare reports, sweep dedup, and the artifact cache all
    /// key on it (stable across runs and hosts, unlike `std::hash`).
    pub fn fingerprint(&self) -> u64 {
        crate::hash::fnv1a_64(format!("{self:?}").as_bytes())
    }

    /// Number of operand slices in this configuration.
    pub fn slice_count(&self) -> usize {
        match self.kind {
            PipelineKind::Ideal => 1,
            _ => self.slicing.count(),
        }
    }

    /// Bits per slice.
    pub fn slice_bits(&self) -> u32 {
        32 / self.slice_count() as u32
    }

    /// Reject degenerate configurations before simulation.
    ///
    /// Checks the structural invariants the pipeline assumes — nonzero
    /// fetch width and window/LSQ capacity, a slice width that divides
    /// 32, and power-of-two cache geometries. Resource *scarcity*
    /// (`mem_ports: 0`, `int_alus: 0`) is deliberately legal: such
    /// machines construct fine and simply never make progress, which is
    /// the watchdog's job to report (see
    /// [`SimError::Deadlock`](crate::SimError)).
    pub fn validate(&self) -> Result<(), ConfigError> {
        let err = |field, message: String| Err(ConfigError { field, message });
        if self.width == 0 {
            return err(
                "width",
                "fetch/issue/commit width must be at least 1".into(),
            );
        }
        if self.ruu_size == 0 {
            return err(
                "ruu_size",
                "instruction window needs at least one entry".into(),
            );
        }
        if self.lsq_size == 0 {
            return err(
                "lsq_size",
                "load/store queue needs at least one entry".into(),
            );
        }
        let slices = self.slice_count();
        if slices == 0 || 32 % slices != 0 {
            return err(
                "slicing",
                format!("slice count {slices} must divide the 32-bit operand width"),
            );
        }
        for (field, c) in [
            ("memory.l1i", &self.memory.l1i),
            ("memory.l1d", &self.memory.l1d),
            ("memory.l2", &self.memory.l2),
        ] {
            Self::validate_cache(field, c)?;
        }
        Ok(())
    }

    fn validate_cache(field: &'static str, c: &CacheConfig) -> Result<(), ConfigError> {
        let err = |message: String| Err(ConfigError { field, message });
        if c.line_bytes == 0 || !c.line_bytes.is_power_of_two() {
            return err(format!("line size {} must be a power of two", c.line_bytes));
        }
        if c.ways == 0 || !c.ways.is_power_of_two() {
            return err(format!("associativity {} must be a power of two", c.ways));
        }
        // u64 arithmetic so absurd geometries error instead of
        // overflowing the intermediate products.
        let set_bytes = c.line_bytes as u64 * c.ways as u64;
        if (c.size_bytes as u64) < set_bytes {
            return err(format!(
                "capacity {} below one set ({set_bytes} bytes)",
                c.size_bytes
            ));
        }
        let sets = c.sets();
        if !sets.is_power_of_two() || sets as u64 * set_bytes != c.size_bytes as u64 {
            return err(format!(
                "geometry {}B/{}B/{}-way yields {} sets (want a power of two)",
                c.size_bytes, c.line_bytes, c.ways, sets
            ));
        }
        Ok(())
    }

    /// Short label for reports.
    pub fn label(&self) -> String {
        match self.kind {
            PipelineKind::Ideal => "ideal".into(),
            PipelineKind::SimplePipelined => format!("simple-{}", self.slice_count()),
            PipelineKind::BitSliced => format!("slice-{}", self.slice_count()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_covers_every_field() {
        let base = MachineConfig::slice2_full();
        assert_eq!(
            base.fingerprint(),
            MachineConfig::slice2_full().fingerprint()
        );
        assert_ne!(base.fingerprint(), MachineConfig::ideal().fingerprint());
        // Perturbations of top-level and nested fields all register.
        let mut c = base;
        c.watchdog += 1;
        assert_ne!(c.fingerprint(), base.fingerprint());
        let mut c = base;
        c.isa = IsaKind::Rv32;
        assert_ne!(c.fingerprint(), base.fingerprint());
        assert_eq!(base.isa.name(), "pisa");
        assert_eq!(c.isa.name(), "rv32");
        let mut c = base;
        c.memory.l1_latency += 1;
        assert_ne!(c.fingerprint(), base.fingerprint());
        let mut c = base;
        c.opts.partial_tag = false;
        assert_ne!(c.fingerprint(), base.fingerprint());
    }

    #[test]
    fn presets_match_table2() {
        let c = MachineConfig::ideal();
        assert_eq!(c.width, 4);
        assert_eq!(c.ruu_size, 64);
        assert_eq!(c.lsq_size, 32);
        assert_eq!(c.front_depth, 12);
        assert_eq!(c.memory.l2_latency, 6);
        assert_eq!(c.memory.mem_latency, 100);
        assert_eq!(c.slice_count(), 1);

        assert_eq!(MachineConfig::slice2_full().slice_count(), 2);
        assert_eq!(MachineConfig::slice2_full().slice_bits(), 16);
        assert_eq!(MachineConfig::slice4_full().slice_count(), 4);
        assert_eq!(MachineConfig::slice4_full().memory.l1_latency, 2);
        assert_eq!(MachineConfig::simple4().memory.l1_latency, 2);
        assert_eq!(MachineConfig::simple2().memory.l1_latency, 1);
    }

    #[test]
    fn cumulative_levels() {
        let l0 = Optimizations::level(0);
        assert_eq!(l0, Optimizations::none());
        let l3 = Optimizations::level(3);
        assert!(l3.partial_bypass && l3.ooo_slices && l3.early_branch);
        assert!(!l3.early_disambig && !l3.partial_tag);
        assert_eq!(Optimizations::level(5), Optimizations::all());
    }

    #[test]
    fn validate_accepts_every_preset() {
        for cfg in [
            MachineConfig::ideal(),
            MachineConfig::simple2(),
            MachineConfig::simple4(),
            MachineConfig::slice2_full(),
            MachineConfig::slice4_full(),
        ] {
            cfg.validate().expect("presets are well-formed");
            assert!(!cfg.oracle, "oracle lockstep must default off");
        }
    }

    #[test]
    fn validate_rejects_degenerate_configs() {
        let mut c = MachineConfig::ideal();
        c.width = 0;
        assert_eq!(c.validate().unwrap_err().field, "width");

        let mut c = MachineConfig::ideal();
        c.ruu_size = 0;
        assert_eq!(c.validate().unwrap_err().field, "ruu_size");

        let mut c = MachineConfig::ideal();
        c.lsq_size = 0;
        assert_eq!(c.validate().unwrap_err().field, "lsq_size");

        // Non-power-of-two set count: 48 KiB direct-mapped with 32 B lines.
        let mut c = MachineConfig::ideal();
        c.memory.l1d.size_bytes = 48 * 1024;
        let e = c.validate().unwrap_err();
        assert_eq!(e.field, "memory.l1d");
        assert!(e.to_string().contains("sets"), "{e}");

        // Zero-byte lines.
        let mut c = MachineConfig::ideal();
        c.memory.l2.line_bytes = 0;
        assert_eq!(c.validate().unwrap_err().field, "memory.l2");

        // Absurd geometry must error, not overflow.
        let mut c = MachineConfig::ideal();
        c.memory.l1i.line_bytes = 1 << 31;
        c.memory.l1i.ways = 1 << 31;
        assert!(c.validate().is_err());
    }

    #[test]
    fn validate_permits_starved_resources() {
        // Scarcity is the watchdog's domain, not validation's: a
        // zero-port machine is legal to build and deadlocks at runtime.
        let mut c = MachineConfig::ideal();
        c.mem_ports = 0;
        c.int_alus = 0;
        c.validate()
            .expect("resource starvation is not a config error");
    }

    #[test]
    fn labels() {
        assert_eq!(MachineConfig::ideal().label(), "ideal");
        assert_eq!(MachineConfig::simple2().label(), "simple-2");
        assert_eq!(MachineConfig::slice4_full().label(), "slice-4");
    }
}
