//! RV32I workload kernels: the Table 1-style suite for the RV32
//! frontend.
//!
//! Four kernels exercise the behaviours the paper's techniques are
//! sensitive to, each with a pure-Rust reference model validated
//! against the emulator (exit code = checksum):
//!
//! | name       | character |
//! |------------|-----------|
//! | rv_sum     | carry-chained arithmetic reduction, tight predictable loop |
//! | rv_memcpy  | word copy + read-back: store→load disambiguation pressure |
//! | rv_branchy | xorshift PRNG with data-dependent branches and set-less-than |
//! | rv_chase   | linked-list pointer chasing through `jal`/`jalr` call/return |
//!
//! Like the PISA suite, every kernel takes an outer-iteration count;
//! `full_iters` is sized so a multi-hundred-thousand-instruction budget
//! never runs off the end of the program.

use crate::asm;
use crate::machine::Rv32Program;
use std::collections::HashMap;

/// A registered RV32 workload (mirrors `popk_workloads::Workload`).
#[derive(Clone, Copy)]
pub struct Rv32Workload {
    /// Short name.
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// Build the program with a given outer-iteration count.
    pub build: fn(u32) -> Rv32Program,
    /// Outer iterations that comfortably exceed a multi-hundred-thousand
    /// instruction simulation budget.
    pub full_iters: u32,
    /// Outer iterations suitable for fast functional tests.
    pub test_iters: u32,
}

impl Rv32Workload {
    /// The program sized for timing runs.
    pub fn program(&self) -> Rv32Program {
        (self.build)(self.full_iters)
    }

    /// The program sized for quick functional tests.
    pub fn test_program(&self) -> Rv32Program {
        (self.build)(self.test_iters)
    }
}

/// All RV32 workloads, in suite order.
pub fn all() -> Vec<Rv32Workload> {
    vec![
        Rv32Workload {
            name: "rv_sum",
            description: "carry-chained arithmetic reduction",
            build: sum,
            full_iters: 40_000,
            test_iters: 50,
        },
        Rv32Workload {
            name: "rv_memcpy",
            description: "word copy + read-back checksum",
            build: memcpy,
            full_iters: 400,
            test_iters: 2,
        },
        Rv32Workload {
            name: "rv_branchy",
            description: "xorshift PRNG, data-dependent branches",
            build: branchy,
            full_iters: 16_000,
            test_iters: 200,
        },
        Rv32Workload {
            name: "rv_chase",
            description: "pointer chase through call/return",
            build: chase,
            full_iters: 32_000,
            test_iters: 300,
        },
    ]
}

/// Look up a workload by name.
pub fn by_name(name: &str) -> Option<Rv32Workload> {
    all().into_iter().find(|w| w.name == name)
}

// ---------------------------------------------------------------------
// A tiny label-fixup assembler over the `asm` word encoders.

type Fixup = (usize, &'static str, Box<dyn Fn(i32) -> u32>);

#[derive(Default)]
struct Asm {
    words: Vec<u32>,
    labels: HashMap<&'static str, usize>,
    fixups: Vec<Fixup>,
}

impl Asm {
    fn new() -> Asm {
        Asm::default()
    }

    fn label(&mut self, name: &'static str) {
        let prev = self.labels.insert(name, self.words.len());
        assert!(prev.is_none(), "duplicate label {name}");
    }

    fn put(&mut self, w: u32) {
        self.words.push(w);
    }

    fn put_all(&mut self, ws: Vec<u32>) {
        self.words.extend(ws);
    }

    /// Emit one branch/jump whose byte offset to `name` is resolved at
    /// `finish` (forward or backward) through `enc`.
    fn patch(&mut self, name: &'static str, enc: impl Fn(i32) -> u32 + 'static) {
        self.fixups.push((self.words.len(), name, Box::new(enc)));
        self.words.push(0);
    }

    fn finish(mut self) -> Rv32Program {
        for (idx, name, enc) in self.fixups {
            let target = *self
                .labels
                .get(name)
                .unwrap_or_else(|| panic!("undefined label {name}"));
            let off = (target as i64 - idx as i64) * 4;
            self.words[idx] = enc(off as i32);
        }
        Rv32Program::new(self.words)
    }
}

fn epilogue(a: &mut Asm) {
    a.put_all(asm::li(17, crate::machine::SYS_EXIT as i32));
    a.put(asm::ecall());
}

// Register conventions used below:
//   a0=x10 checksum, t0=x5 counter, t1=x6 limit, t2=x7 scratch,
//   t3=x28 t4=x29 t5=x30 t6=x31 scratch, s0=x8 s1=x9 s2=x18 s3=x19 bases.
const A0: u8 = 10;
const A1: u8 = 11;
const RA: u8 = 1;
const T0: u8 = 5;
const T1: u8 = 6;
const T2: u8 = 7;
const T3: u8 = 28;
const T4: u8 = 29;
const T5: u8 = 30;
const S0: u8 = 8;
const S1: u8 = 9;
const S2: u8 = 18;
const S3: u8 = 19;

const SRC_BASE: i32 = 0x0002_0000;
const DST_BASE: i32 = 0x0003_0000;
const HEAP: i32 = 0x0004_0000;

/// `rv_sum`: sum += 3i with explicit carry propagation — every add in
/// the hot loop is a full-width carry chain.
fn sum(iters: u32) -> Rv32Program {
    let mut a = Asm::new();
    a.put_all(asm::li(A0, 0));
    a.put_all(asm::li(T0, 0));
    a.put_all(asm::li(T1, iters as i32));
    a.label("loop");
    a.put(asm::addi(T0, T0, 1));
    a.put(asm::add(A1, T0, T0));
    a.put(asm::add(A1, A1, T0));
    a.put(asm::add(A0, A0, A1));
    a.put(asm::sltu(T2, A0, A1)); // carry-out of the accumulate
    a.put(asm::add(A0, A0, T2));
    a.patch("loop", |off| asm::bne(T0, T1, off));
    epilogue(&mut a);
    a.finish()
}

/// Reference model for the `sum` kernel.
pub fn sum_ref(iters: u32) -> u32 {
    let mut acc = 0u32;
    for i in 1..=iters {
        let add = i.wrapping_mul(3);
        acc = acc.wrapping_add(add);
        acc = acc.wrapping_add((acc < add) as u32);
    }
    acc
}

/// `rv_memcpy`: initialize a 64-word source, then repeatedly copy it and
/// checksum the destination — the read-back loads land close behind the
/// copy stores, stressing store→load disambiguation.
fn memcpy(iters: u32) -> Rv32Program {
    const N: i32 = 64;
    let mut a = Asm::new();
    a.put_all(asm::li(S0, SRC_BASE));
    a.put_all(asm::li(S1, DST_BASE));
    a.put_all(asm::li(T1, N));
    a.put_all(asm::li(T0, 0));
    a.label("init"); // src[i] = ((i << 7) + i) ^ 0x2af
    a.put(asm::slli(T3, T0, 7));
    a.put(asm::add(T3, T3, T0));
    a.put(asm::xori(T3, T3, 0x2af));
    a.put(asm::slli(T2, T0, 2));
    a.put(asm::add(T2, S0, T2));
    a.put(asm::sw(T2, T3, 0));
    a.put(asm::addi(T0, T0, 1));
    a.patch("init", |off| asm::bne(T0, T1, off));
    a.put_all(asm::li(A0, 0));
    a.put_all(asm::li(S2, 0));
    a.put_all(asm::li(S3, iters as i32));
    a.label("outer");
    a.put_all(asm::li(T0, 0));
    a.label("copy");
    a.put(asm::slli(T2, T0, 2));
    a.put(asm::add(T4, S0, T2));
    a.put(asm::lw(T3, T4, 0));
    a.put(asm::add(T4, S1, T2));
    a.put(asm::sw(T4, T3, 0));
    a.put(asm::addi(T0, T0, 1));
    a.patch("copy", |off| asm::bne(T0, T1, off));
    a.put_all(asm::li(T0, 0));
    a.label("sum");
    a.put(asm::slli(T2, T0, 2));
    a.put(asm::add(T4, S1, T2));
    a.put(asm::lw(T3, T4, 0));
    a.put(asm::add(A0, A0, T3));
    a.put(asm::addi(T0, T0, 1));
    a.patch("sum", |off| asm::bne(T0, T1, off));
    a.put(asm::lw(T3, S0, 0)); // perturb src[0] so iterations differ
    a.put(asm::addi(T3, T3, 1));
    a.put(asm::sw(S0, T3, 0));
    a.put(asm::addi(S2, S2, 1));
    a.patch("outer", |off| asm::bne(S2, S3, off));
    epilogue(&mut a);
    a.finish()
}

/// Reference model for the `memcpy` kernel.
pub fn memcpy_ref(iters: u32) -> u32 {
    let mut src: Vec<u32> = (0..64u32)
        .map(|i| ((i << 7).wrapping_add(i)) ^ 0x2af)
        .collect();
    let mut acc = 0u32;
    for _ in 0..iters {
        let dst = src.clone();
        for w in &dst {
            acc = acc.wrapping_add(*w);
        }
        src[0] = src[0].wrapping_add(1);
    }
    acc
}

/// `rv_branchy`: xorshift32 with a data-dependent branch on bit 0 and a
/// `slti` on the low three bits — unpredictable control plus
/// late-result set-less-than.
fn branchy(iters: u32) -> Rv32Program {
    let mut a = Asm::new();
    a.put_all(asm::li(S0, 0x1234_5678));
    a.put_all(asm::li(A0, 0));
    a.put_all(asm::li(T0, 0));
    a.put_all(asm::li(T1, iters as i32));
    a.label("loop");
    a.put(asm::slli(T2, S0, 13));
    a.put(asm::xor(S0, S0, T2));
    a.put(asm::srli(T2, S0, 17));
    a.put(asm::xor(S0, S0, T2));
    a.put(asm::slli(T2, S0, 5));
    a.put(asm::xor(S0, S0, T2));
    a.put(asm::andi(T3, S0, 1));
    a.patch("skip", |off| asm::beq(T3, 0, off));
    a.put(asm::addi(A0, A0, 1));
    a.label("skip");
    a.put(asm::andi(T3, S0, 7));
    a.put(asm::slti(T4, T3, 3));
    a.put(asm::add(A0, A0, T4));
    a.put(asm::addi(T0, T0, 1));
    a.patch("loop", |off| asm::bne(T0, T1, off));
    epilogue(&mut a);
    a.finish()
}

/// Reference model for the `branchy` kernel.
pub fn branchy_ref(iters: u32) -> u32 {
    let mut s = 0x1234_5678u32;
    let mut acc = 0u32;
    for _ in 0..iters {
        s ^= s << 13;
        s ^= s >> 17;
        s ^= s << 5;
        acc = acc.wrapping_add(s & 1);
        acc = acc.wrapping_add(((s & 7) < 3) as u32);
    }
    acc
}

/// `rv_chase`: build a stride-permuted 64-node linked list, then chase
/// it through a leaf call per node (`jal`/`jalr` exercise the RAS, the
/// `lw` of `next` is a pointer-dependent load).
fn chase(iters: u32) -> Rv32Program {
    const N: i32 = 64;
    const STRIDE: i32 = 23; // coprime with N: a full-cycle permutation
    let mut a = Asm::new();
    a.put_all(asm::li(S0, HEAP));
    a.put_all(asm::li(T1, N));
    a.put_all(asm::li(T0, 0));
    a.label("build"); // node[i] = { next: &node[(i+23)%64], val: i^0x55 }
    a.put(asm::addi(T4, T0, STRIDE));
    a.patch("nomod", |off| asm::blt(T4, T1, off));
    a.put(asm::sub(T4, T4, T1));
    a.label("nomod");
    a.put(asm::slli(T5, T4, 3));
    a.put(asm::add(T5, S0, T5));
    a.put(asm::slli(T2, T0, 3));
    a.put(asm::add(T3, S0, T2));
    a.put(asm::sw(T3, T5, 0));
    a.put(asm::xori(T2, T0, 0x55));
    a.put(asm::sw(T3, T2, 4));
    a.put(asm::addi(T0, T0, 1));
    a.patch("build", |off| asm::bne(T0, T1, off));
    a.put_all(asm::li(A0, 0));
    a.put(asm::addi(S1, S0, 0));
    a.put_all(asm::li(T0, 0));
    a.put_all(asm::li(S3, iters as i32));
    a.label("chase");
    a.patch("visit", |off| asm::jal(RA, off));
    a.put(asm::addi(T0, T0, 1));
    a.patch("chase", |off| asm::bne(T0, S3, off));
    a.patch("exit", |off| asm::jal(0, off));
    a.label("visit");
    a.put(asm::lw(T2, S1, 4));
    a.put(asm::add(A0, A0, T2));
    a.put(asm::lw(S1, S1, 0));
    a.put(asm::jalr(0, RA, 0));
    a.label("exit");
    epilogue(&mut a);
    a.finish()
}

/// Reference model for the `chase` kernel.
pub fn chase_ref(iters: u32) -> u32 {
    let mut acc = 0u32;
    let mut node = 0u32;
    for _ in 0..iters {
        acc = acc.wrapping_add(node ^ 0x55);
        node = (node + 23) % 64;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Rv32Machine;

    fn run(p: &Rv32Program) -> u32 {
        let mut m = Rv32Machine::new(p);
        m.run(50_000_000)
            .expect("workload must not fault")
            .expect("workload must exit")
    }

    #[test]
    fn kernels_match_their_reference_models() {
        for w in all() {
            let reference = match w.name {
                "rv_sum" => sum_ref(w.test_iters),
                "rv_memcpy" => memcpy_ref(w.test_iters),
                "rv_branchy" => branchy_ref(w.test_iters),
                "rv_chase" => chase_ref(w.test_iters),
                other => panic!("unknown workload {other}"),
            };
            assert_eq!(run(&w.test_program()), reference, "{}", w.name);
        }
    }

    #[test]
    fn full_programs_exceed_a_200k_budget() {
        for w in all() {
            let mut m = Rv32Machine::new(&w.program());
            let mut steps = 0u64;
            while steps <= 200_000 {
                match m.step_record().expect("no fault") {
                    crate::machine::Rv32Step::Retired(_) => steps += 1,
                    crate::machine::Rv32Step::Exited(_) => break,
                }
            }
            assert!(steps > 200_000, "{} retired only {steps}", w.name);
        }
    }

    #[test]
    fn by_name_round_trips() {
        assert_eq!(all().len(), 4);
        assert!(by_name("rv_chase").is_some());
        assert!(by_name("nope").is_none());
    }
}
