//! Minimal RV32I instruction encoders: each function returns one
//! instruction word. Stores take `(base, src, imm)` — base register
//! first, matching the operand order the micro-op boundary reports.
//!
//! These are deliberately plain `u32` builders (no labels); the
//! [`crate::workloads`] module layers a tiny label-fixup assembler on
//! top for loops and calls.

#![allow(clippy::too_many_arguments)]

fn r_type(f7: u32, rs2: u8, rs1: u8, f3: u32, rd: u8) -> u32 {
    (f7 << 25)
        | ((rs2 as u32) << 20)
        | ((rs1 as u32) << 15)
        | (f3 << 12)
        | ((rd as u32) << 7)
        | 0x33
}

fn i_type(imm: i32, rs1: u8, f3: u32, rd: u8, opcode: u32) -> u32 {
    (((imm as u32) & 0xfff) << 20) | ((rs1 as u32) << 15) | (f3 << 12) | ((rd as u32) << 7) | opcode
}

fn s_type(imm: i32, rs2: u8, rs1: u8, f3: u32) -> u32 {
    let imm = imm as u32;
    (((imm >> 5) & 0x7f) << 25)
        | ((rs2 as u32) << 20)
        | ((rs1 as u32) << 15)
        | (f3 << 12)
        | ((imm & 0x1f) << 7)
        | 0x23
}

fn b_type(imm: i32, rs2: u8, rs1: u8, f3: u32) -> u32 {
    let imm = imm as u32;
    (((imm >> 12) & 1) << 31)
        | (((imm >> 5) & 0x3f) << 25)
        | ((rs2 as u32) << 20)
        | ((rs1 as u32) << 15)
        | (f3 << 12)
        | (((imm >> 1) & 0xf) << 8)
        | (((imm >> 11) & 1) << 7)
        | 0x63
}

fn u_type(imm20: u32, rd: u8, opcode: u32) -> u32 {
    ((imm20 & 0xf_ffff) << 12) | ((rd as u32) << 7) | opcode
}

fn j_type(imm: i32, rd: u8) -> u32 {
    let imm = imm as u32;
    (((imm >> 20) & 1) << 31)
        | (((imm >> 1) & 0x3ff) << 21)
        | (((imm >> 11) & 1) << 20)
        | (((imm >> 12) & 0xff) << 12)
        | ((rd as u32) << 7)
        | 0x6f
}

/// `lui rd, imm20`
pub fn lui(rd: u8, imm20: u32) -> u32 {
    u_type(imm20, rd, 0x37)
}

/// `auipc rd, imm20`
pub fn auipc(rd: u8, imm20: u32) -> u32 {
    u_type(imm20, rd, 0x17)
}

/// `jal rd, offset` (byte offset from this instruction)
pub fn jal(rd: u8, off: i32) -> u32 {
    j_type(off, rd)
}

/// `jalr rd, imm(rs1)`
pub fn jalr(rd: u8, rs1: u8, imm: i32) -> u32 {
    i_type(imm, rs1, 0, rd, 0x67)
}

macro_rules! branch {
    ($($(#[$doc:meta])* $name:ident => $f3:expr;)*) => {$(
        $(#[$doc])*
        pub fn $name(rs1: u8, rs2: u8, off: i32) -> u32 {
            b_type(off, rs2, rs1, $f3)
        }
    )*};
}
branch! {
    /// `beq rs1, rs2, offset`
    beq => 0;
    /// `bne rs1, rs2, offset`
    bne => 1;
    /// `blt rs1, rs2, offset`
    blt => 4;
    /// `bge rs1, rs2, offset`
    bge => 5;
    /// `bltu rs1, rs2, offset`
    bltu => 6;
    /// `bgeu rs1, rs2, offset`
    bgeu => 7;
}

macro_rules! load {
    ($($(#[$doc:meta])* $name:ident => $f3:expr;)*) => {$(
        $(#[$doc])*
        pub fn $name(rd: u8, base: u8, imm: i32) -> u32 {
            i_type(imm, base, $f3, rd, 0x03)
        }
    )*};
}
load! {
    /// `lb rd, imm(base)`
    lb => 0;
    /// `lh rd, imm(base)`
    lh => 1;
    /// `lw rd, imm(base)`
    lw => 2;
    /// `lbu rd, imm(base)`
    lbu => 4;
    /// `lhu rd, imm(base)`
    lhu => 5;
}

macro_rules! store {
    ($($(#[$doc:meta])* $name:ident => $f3:expr;)*) => {$(
        $(#[$doc])*
        pub fn $name(base: u8, src: u8, imm: i32) -> u32 {
            s_type(imm, src, base, $f3)
        }
    )*};
}
store! {
    /// `sb src, imm(base)`
    sb => 0;
    /// `sh src, imm(base)`
    sh => 1;
    /// `sw src, imm(base)`
    sw => 2;
}

macro_rules! op_imm {
    ($($(#[$doc:meta])* $name:ident => $f3:expr;)*) => {$(
        $(#[$doc])*
        pub fn $name(rd: u8, rs1: u8, imm: i32) -> u32 {
            i_type(imm, rs1, $f3, rd, 0x13)
        }
    )*};
}
op_imm! {
    /// `addi rd, rs1, imm`
    addi => 0;
    /// `slti rd, rs1, imm`
    slti => 2;
    /// `sltiu rd, rs1, imm`
    sltiu => 3;
    /// `xori rd, rs1, imm`
    xori => 4;
    /// `ori rd, rs1, imm`
    ori => 6;
    /// `andi rd, rs1, imm`
    andi => 7;
}

/// `slli rd, rs1, shamt`
pub fn slli(rd: u8, rs1: u8, shamt: u8) -> u32 {
    i_type((shamt & 31) as i32, rs1, 1, rd, 0x13)
}

/// `srli rd, rs1, shamt`
pub fn srli(rd: u8, rs1: u8, shamt: u8) -> u32 {
    i_type((shamt & 31) as i32, rs1, 5, rd, 0x13)
}

/// `srai rd, rs1, shamt`
pub fn srai(rd: u8, rs1: u8, shamt: u8) -> u32 {
    i_type(0x400 | (shamt & 31) as i32, rs1, 5, rd, 0x13)
}

macro_rules! op_reg {
    ($($(#[$doc:meta])* $name:ident => ($f3:expr, $f7:expr);)*) => {$(
        $(#[$doc])*
        pub fn $name(rd: u8, rs1: u8, rs2: u8) -> u32 {
            r_type($f7, rs2, rs1, $f3, rd)
        }
    )*};
}
op_reg! {
    /// `add rd, rs1, rs2`
    add => (0, 0);
    /// `sub rd, rs1, rs2`
    sub => (0, 0x20);
    /// `sll rd, rs1, rs2`
    sll => (1, 0);
    /// `slt rd, rs1, rs2`
    slt => (2, 0);
    /// `sltu rd, rs1, rs2`
    sltu => (3, 0);
    /// `xor rd, rs1, rs2`
    xor => (4, 0);
    /// `srl rd, rs1, rs2`
    srl => (5, 0);
    /// `sra rd, rs1, rs2`
    sra => (5, 0x20);
    /// `or rd, rs1, rs2`
    or => (6, 0);
    /// `and rd, rs1, rs2`
    and => (7, 0);
}

/// `fence`
pub fn fence() -> u32 {
    0x0000_000f
}

/// `ecall`
pub fn ecall() -> u32 {
    0x0000_0073
}

/// `ebreak`
pub fn ebreak() -> u32 {
    0x0010_0073
}

/// `nop` (`addi x0, x0, 0`)
pub fn nop() -> u32 {
    addi(0, 0, 0)
}

/// Load a full 32-bit constant: one or two instructions
/// (`lui` + `addi`), the standard `li` expansion.
pub fn li(rd: u8, val: i32) -> Vec<u32> {
    let v = val as u32;
    let hi = v.wrapping_add(0x800) >> 12;
    let lo = (v.wrapping_sub(hi << 12)) as i32;
    if hi == 0 {
        vec![addi(rd, 0, lo)]
    } else if lo == 0 {
        vec![lui(rd, hi)]
    } else {
        vec![lui(rd, hi), addi(rd, rd, (lo << 20) >> 20)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{Rv32Machine, Rv32Program, SYS_EXIT};

    #[test]
    fn li_materializes_any_constant() {
        for &val in &[
            0i32,
            1,
            -1,
            0x7ff,
            0x800,
            -0x800,
            -0x801,
            0x1234_5678,
            i32::MIN,
            i32::MAX,
            -559038737, // 0xdeadbeef
        ] {
            let mut words = li(10, val);
            words.extend(li(17, SYS_EXIT as i32));
            words.push(ecall());
            let p = Rv32Program::new(words);
            let mut m = Rv32Machine::new(&p);
            let code = m.run(10).unwrap();
            assert_eq!(code, Some(val as u32), "li {val:#x}");
        }
    }
}
