//! The RV32I [`Frontend`]: functional emulation behind the ISA-neutral
//! micro-op boundary, with a lockstep checker for differential replay.
//!
//! Structurally identical to the PISA frontend in `popk-emu`: the
//! iterator yields at most `limit` retired [`Uop`]s, stops at program
//! exit, surfaces a machine fault as one final `Err`, and
//! [`checker`](Frontend::checker) hands the timing core a second,
//! independent [`Rv32Machine`] to verify every commit claim against.

use crate::insn::Rv32Insn;
use crate::machine::{Rv32Machine, Rv32Program, Rv32Step};
use popk_trace::{
    ArchSnapshot, CheckpointSource, CommitChecker, EmuError, Frontend, LockstepMismatch, Uop,
};

/// A self-contained RV32I trace producer.
pub struct Rv32Frontend {
    machine: Rv32Machine,
    program: Rv32Program,
    remaining: u64,
    done: bool,
}

impl Rv32Frontend {
    /// A frontend executing `program` for up to `limit` instructions.
    pub fn new(program: &Rv32Program, limit: u64) -> Rv32Frontend {
        Rv32Frontend {
            machine: Rv32Machine::new(program),
            program: program.clone(),
            remaining: limit,
            done: false,
        }
    }
}

impl Iterator for Rv32Frontend {
    type Item = Result<Uop<Rv32Insn>, EmuError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done || self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        match self.machine.step_record() {
            Ok(Rv32Step::Retired(rec)) => Some(Ok(rec)),
            Ok(Rv32Step::Exited(_)) => {
                self.done = true;
                None
            }
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

impl Frontend<Rv32Insn> for Rv32Frontend {
    fn isa(&self) -> &'static str {
        "rv32"
    }

    fn checker(&self) -> Option<Box<dyn CommitChecker<Rv32Insn>>> {
        Some(Box::new(Rv32Checker::new(&self.program)))
    }

    fn checkpoint_source(&self) -> Option<Box<dyn CheckpointSource<Rv32Insn>>> {
        Some(Box::new(Rv32Checker::new(&self.program)))
    }
}

/// An independent reference machine verifying a commit stream via
/// [`Rv32Machine::verify_step`].
pub struct Rv32Checker {
    machine: Rv32Machine,
}

impl Rv32Checker {
    /// A checker replaying `program` from its entry point.
    pub fn new(program: &Rv32Program) -> Rv32Checker {
        Rv32Checker {
            machine: Rv32Machine::new(program),
        }
    }
}

impl CommitChecker<Rv32Insn> for Rv32Checker {
    fn verify(&mut self, claim: &Uop<Rv32Insn>) -> Result<(), LockstepMismatch> {
        self.machine.verify_step(claim)
    }
}

impl CheckpointSource<Rv32Insn> for Rv32Checker {
    fn snapshot(&self) -> ArchSnapshot {
        self.machine.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm;
    use crate::machine::SYS_EXIT;

    fn prog() -> Rv32Program {
        let mut words = vec![
            asm::addi(10, 0, 5),
            asm::addi(11, 0, 7),
            asm::add(10, 10, 11),
            asm::lui(5, 0x20),
            asm::sw(5, 10, 0),
            asm::lw(12, 5, 0),
        ];
        words.extend(asm::li(17, SYS_EXIT as i32));
        words.push(asm::ecall());
        Rv32Program::new(words)
    }

    #[test]
    fn frontend_ends_at_exit_and_respects_limit() {
        let recs: Vec<_> = Rv32Frontend::new(&prog(), 1_000)
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(recs.len(), 7, "ecall itself does not retire");
        assert_eq!(Rv32Frontend::new(&prog(), 3).count(), 3);
    }

    #[test]
    fn checker_locksteps_and_flags_corruption() {
        let p = prog();
        let fe = Rv32Frontend::new(&p, 1_000);
        assert_eq!(fe.isa(), "rv32");
        let mut checker = fe.checker().expect("rv32 always has a checker");
        let recs: Vec<_> = fe.map(|r| r.unwrap()).collect();
        for rec in &recs {
            checker.verify(rec).unwrap();
        }
        let mut checker = Rv32Frontend::new(&p, 1_000).checker().unwrap();
        let mut bad = recs[0];
        bad.results[0] ^= 1;
        assert_eq!(checker.verify(&bad).unwrap_err().field, "dest0");
    }

    #[test]
    fn faults_surface_as_one_final_err() {
        let p = Rv32Program::new(vec![asm::addi(10, 0, 1), asm::ebreak()]);
        let mut fe = Rv32Frontend::new(&p, 1_000);
        assert!(fe.next().unwrap().is_ok());
        assert!(matches!(fe.next(), Some(Err(EmuError::Break { .. }))));
        assert!(fe.next().is_none());
    }
}
