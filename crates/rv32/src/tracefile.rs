//! External trace-file ingestion: replay an RV32I instruction trace
//! captured elsewhere (a real core, another simulator) through the
//! timing model without any functional emulation.
//!
//! The format is deliberately trivial — one line per retired
//! instruction, whitespace-separated lowercase hex:
//!
//! ```text
//! # popk-rv32-trace v1
//! # pc raw src0 src1 res0 res1 ea taken next_pc
//! 00010000 00500513 00000000 00000000 00000005 00000000 00000000 0 00010004
//! ```
//!
//! `#` lines are comments; the first non-comment content must follow a
//! `# popk-rv32-trace v1` header line. [`TraceFileFrontend`] parses the
//! whole text up front (so syntax errors are reported with line
//! numbers, not mid-simulation) and then streams the records as any
//! other [`Frontend`]. It has no [`CommitChecker`]: an external trace
//! carries no replayable reference machine.

use crate::insn::{decode, Rv32Insn};
use popk_trace::{CommitChecker, EmuError, Frontend, Uop};
use std::fmt;

/// Header line every trace file must start with.
pub const HEADER: &str = "# popk-rv32-trace v1";

/// A syntax or decode error while parsing a trace file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceParseError {
    /// The `# popk-rv32-trace v1` header line is missing.
    MissingHeader,
    /// A record line does not have exactly nine fields.
    FieldCount {
        /// 1-based line number.
        line: usize,
        /// Fields found.
        found: usize,
    },
    /// A field is not valid hex (or, for `taken`, not `0`/`1`).
    BadField {
        /// 1-based line number.
        line: usize,
        /// Field name.
        field: &'static str,
    },
    /// The `raw` field does not decode as RV32I.
    Illegal {
        /// 1-based line number.
        line: usize,
        /// The undecodable word.
        raw: u32,
    },
}

impl fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceParseError::MissingHeader => {
                write!(f, "missing `{HEADER}` header line")
            }
            TraceParseError::FieldCount { line, found } => {
                write!(f, "line {line}: expected 9 fields, found {found}")
            }
            TraceParseError::BadField { line, field } => {
                write!(f, "line {line}: bad `{field}` field")
            }
            TraceParseError::Illegal { line, raw } => {
                write!(f, "line {line}: {raw:#010x} does not decode as RV32I")
            }
        }
    }
}

impl std::error::Error for TraceParseError {}

/// A [`Frontend`] replaying a parsed trace file.
#[derive(Debug)]
pub struct TraceFileFrontend {
    uops: std::vec::IntoIter<Uop<Rv32Insn>>,
}

impl TraceFileFrontend {
    /// Parse `text` (the whole trace file) into a replayable frontend.
    pub fn parse(text: &str) -> Result<TraceFileFrontend, TraceParseError> {
        let mut saw_header = false;
        let mut uops = Vec::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line == HEADER {
                saw_header = true;
                continue;
            }
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if !saw_header {
                return Err(TraceParseError::MissingHeader);
            }
            uops.push(parse_line(i + 1, line)?);
        }
        if !saw_header {
            return Err(TraceParseError::MissingHeader);
        }
        Ok(TraceFileFrontend {
            uops: uops.into_iter(),
        })
    }

    /// Number of records not yet yielded.
    pub fn remaining(&self) -> usize {
        self.uops.len()
    }
}

fn parse_line(line: usize, text: &str) -> Result<Uop<Rv32Insn>, TraceParseError> {
    const FIELDS: [&str; 9] = [
        "pc", "raw", "src0", "src1", "res0", "res1", "ea", "taken", "next_pc",
    ];
    let parts: Vec<&str> = text.split_whitespace().collect();
    if parts.len() != FIELDS.len() {
        return Err(TraceParseError::FieldCount {
            line,
            found: parts.len(),
        });
    }
    let mut vals = [0u32; 9];
    for (i, (part, field)) in parts.iter().zip(FIELDS).enumerate() {
        vals[i] =
            u32::from_str_radix(part, 16).map_err(|_| TraceParseError::BadField { line, field })?;
    }
    if vals[7] > 1 {
        return Err(TraceParseError::BadField {
            line,
            field: "taken",
        });
    }
    let insn = decode(vals[1]).ok_or(TraceParseError::Illegal { line, raw: vals[1] })?;
    Ok(Uop {
        pc: vals[0],
        insn,
        src_vals: [vals[2], vals[3]],
        results: [vals[4], vals[5]],
        ea: vals[6],
        taken: vals[7] == 1,
        next_pc: vals[8],
    })
}

/// Render records in the trace-file format (inverse of
/// [`TraceFileFrontend::parse`]).
pub fn render<'a>(uops: impl IntoIterator<Item = &'a Uop<Rv32Insn>>) -> String {
    let mut out = String::from(HEADER);
    out.push('\n');
    out.push_str("# pc raw src0 src1 res0 res1 ea taken next_pc\n");
    for u in uops {
        out.push_str(&format!(
            "{:08x} {:08x} {:08x} {:08x} {:08x} {:08x} {:08x} {} {:08x}\n",
            u.pc,
            u.insn.raw,
            u.src_vals[0],
            u.src_vals[1],
            u.results[0],
            u.results[1],
            u.ea,
            u.taken as u32,
            u.next_pc
        ));
    }
    out
}

impl Iterator for TraceFileFrontend {
    type Item = Result<Uop<Rv32Insn>, EmuError>;

    fn next(&mut self) -> Option<Self::Item> {
        self.uops.next().map(Ok)
    }
}

impl Frontend<Rv32Insn> for TraceFileFrontend {
    fn isa(&self) -> &'static str {
        "rv32"
    }

    /// External traces carry no reference machine to replay.
    fn checker(&self) -> Option<Box<dyn CommitChecker<Rv32Insn>>> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frontend::Rv32Frontend;
    use crate::workloads;

    #[test]
    fn round_trips_an_emulated_trace() {
        let w = workloads::by_name("rv_sum").unwrap();
        let prog = (w.build)(w.test_iters);
        let recs: Vec<_> = Rv32Frontend::new(&prog, 5_000)
            .map(|r| r.unwrap())
            .collect();
        assert!(!recs.is_empty());
        let text = render(&recs);
        let fe = TraceFileFrontend::parse(&text).unwrap();
        assert_eq!(fe.remaining(), recs.len());
        assert!(fe.checker().is_none());
        let replayed: Vec<_> = fe.map(|r| r.unwrap()).collect();
        for (a, b) in recs.iter().zip(&replayed) {
            assert_eq!(a.pc, b.pc);
            assert_eq!(a.insn, b.insn);
            assert_eq!(a.src_vals, b.src_vals);
            assert_eq!(a.results, b.results);
            assert_eq!(a.ea, b.ea);
            assert_eq!(a.taken, b.taken);
            assert_eq!(a.next_pc, b.next_pc);
        }
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        assert_eq!(
            TraceFileFrontend::parse("00010000 00000013\n").unwrap_err(),
            TraceParseError::MissingHeader
        );
        assert_eq!(
            TraceFileFrontend::parse("").unwrap_err(),
            TraceParseError::MissingHeader
        );
        let short = format!("{HEADER}\n00010000 00000013\n");
        assert_eq!(
            TraceFileFrontend::parse(&short).unwrap_err(),
            TraceParseError::FieldCount { line: 2, found: 2 }
        );
        let bad = format!("{HEADER}\nzz 0 0 0 0 0 0 0 0\n");
        assert_eq!(
            TraceFileFrontend::parse(&bad).unwrap_err(),
            TraceParseError::BadField {
                line: 2,
                field: "pc"
            }
        );
        let taken = format!("{HEADER}\n0 00000013 0 0 0 0 0 5 0\n");
        assert_eq!(
            TraceFileFrontend::parse(&taken).unwrap_err(),
            TraceParseError::BadField {
                line: 2,
                field: "taken"
            }
        );
        let illegal = format!("{HEADER}\n0 ffffffff 0 0 0 0 0 0 0\n");
        assert_eq!(
            TraceFileFrontend::parse(&illegal).unwrap_err(),
            TraceParseError::Illegal {
                line: 2,
                raw: 0xffff_ffff
            }
        );
    }
}
