//! The decoded RV32I instruction and its binding to the micro-op
//! boundary ([`popk_trace::UopInsn`]).
//!
//! [`Rv32Insn`] keeps both the raw 32-bit encoding (lockstep identity,
//! trace-file round-trips) and the decoded fields the timing core asks
//! about. The [`UopInsn`] implementation is the single source of truth
//! for how RV32I opcodes map onto the scheduling vocabulary — execution
//! class, Fig. 8 slice class, latency class, control kind — exactly as
//! `popk_trace::pisa` is for the native ISA.

use popk_isa::{BranchCond, SliceClass};
use popk_slice::AluSliceOp;
use popk_trace::{CtrlKind, ExecClass, LatClass, RegList, Uop, UopInsn, UopMeta};
use std::fmt;

/// RV32I opcode, post-decode.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(missing_docs)]
pub enum Rv32Op {
    Lui,
    Auipc,
    Jal,
    Jalr,
    Beq,
    Bne,
    Blt,
    Bge,
    Bltu,
    Bgeu,
    Lb,
    Lh,
    Lw,
    Lbu,
    Lhu,
    Sb,
    Sh,
    Sw,
    Addi,
    Slti,
    Sltiu,
    Xori,
    Ori,
    Andi,
    Slli,
    Srli,
    Srai,
    Add,
    Sub,
    Sll,
    Slt,
    Sltu,
    Xor,
    Srl,
    Sra,
    Or,
    And,
    Fence,
    Ecall,
    Ebreak,
}

impl Rv32Op {
    /// Lower-case mnemonic.
    pub fn mnemonic(self) -> &'static str {
        use Rv32Op::*;
        match self {
            Lui => "lui",
            Auipc => "auipc",
            Jal => "jal",
            Jalr => "jalr",
            Beq => "beq",
            Bne => "bne",
            Blt => "blt",
            Bge => "bge",
            Bltu => "bltu",
            Bgeu => "bgeu",
            Lb => "lb",
            Lh => "lh",
            Lw => "lw",
            Lbu => "lbu",
            Lhu => "lhu",
            Sb => "sb",
            Sh => "sh",
            Sw => "sw",
            Addi => "addi",
            Slti => "slti",
            Sltiu => "sltiu",
            Xori => "xori",
            Ori => "ori",
            Andi => "andi",
            Slli => "slli",
            Srli => "srli",
            Srai => "srai",
            Add => "add",
            Sub => "sub",
            Sll => "sll",
            Slt => "slt",
            Sltu => "sltu",
            Xor => "xor",
            Srl => "srl",
            Sra => "sra",
            Or => "or",
            And => "and",
            Fence => "fence",
            Ecall => "ecall",
            Ebreak => "ebreak",
        }
    }

    /// Memory access width in bytes (0 for non-memory instructions).
    pub fn mem_bytes(self) -> u8 {
        use Rv32Op::*;
        match self {
            Lb | Lbu | Sb => 1,
            Lh | Lhu | Sh => 2,
            Lw | Sw => 4,
            _ => 0,
        }
    }

    /// Is this a load?
    pub fn is_load(self) -> bool {
        matches!(
            self,
            Rv32Op::Lb | Rv32Op::Lh | Rv32Op::Lw | Rv32Op::Lbu | Rv32Op::Lhu
        )
    }

    /// Is this a store?
    pub fn is_store(self) -> bool {
        matches!(self, Rv32Op::Sb | Rv32Op::Sh | Rv32Op::Sw)
    }

    /// Condition tested, if a conditional branch.
    pub fn branch_cond(self) -> Option<BranchCond> {
        use Rv32Op::*;
        Some(match self {
            Beq => BranchCond::Eq,
            Bne => BranchCond::Ne,
            Blt => BranchCond::Lt,
            Bge => BranchCond::Ge,
            Bltu => BranchCond::Ltu,
            Bgeu => BranchCond::Geu,
            _ => return None,
        })
    }
}

/// One decoded RV32I instruction: the raw word plus its fields.
/// Equality is on the raw encoding (two decodes of the same word are
/// the same instruction).
#[derive(Clone, Copy, Debug)]
pub struct Rv32Insn {
    /// The original 32-bit encoding.
    pub raw: u32,
    /// Decoded opcode.
    pub op: Rv32Op,
    /// Destination register (x0–x31; x0 writes are discarded).
    pub rd: u8,
    /// First source register.
    pub rs1: u8,
    /// Second source register.
    pub rs2: u8,
    /// Decoded immediate, sign-extended where the format calls for it.
    /// U-format immediates are stored pre-shifted (`imm << 12`).
    pub imm: i32,
}

impl PartialEq for Rv32Insn {
    fn eq(&self, other: &Rv32Insn) -> bool {
        self.raw == other.raw
    }
}

impl Eq for Rv32Insn {}

/// Does `rd`/`rs1` name a RISC-V link register (`ra` = x1, `t0` = x5)?
/// The standard calling convention drives the return-address stack off
/// these two.
fn is_link(r: u8) -> bool {
    r == 1 || r == 5
}

impl Rv32Insn {
    /// Does this instruction write `rd`?
    fn writes_rd(&self) -> bool {
        use Rv32Op::*;
        !matches!(
            self.op,
            Beq | Bne | Blt | Bge | Bltu | Bgeu | Sb | Sh | Sw | Fence | Ecall | Ebreak
        ) && self.rd != 0
    }

    /// The source registers this instruction actually reads, in
    /// `src_vals` order (base before store data, `rs1` before `rs2`).
    fn reads(&self) -> RegList {
        use Rv32Op::*;
        let mut l = RegList::new();
        match self.op {
            Lui | Auipc | Jal | Fence | Ecall | Ebreak => {}
            Jalr | Lb | Lh | Lw | Lbu | Lhu | Addi | Slti | Sltiu | Xori | Ori | Andi | Slli
            | Srli | Srai => {
                if self.rs1 != 0 {
                    l.push(self.rs1);
                }
            }
            _ => {
                // R-type, branches, stores: rs1 then rs2.
                if self.rs1 != 0 {
                    l.push(self.rs1);
                }
                if self.rs2 != 0 {
                    l.push(self.rs2);
                }
            }
        }
        l
    }
}

impl fmt::Display for Rv32Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Rv32Op::*;
        let m = self.op.mnemonic();
        let (rd, rs1, rs2, imm) = (self.rd, self.rs1, self.rs2, self.imm);
        match self.op {
            Lui | Auipc => write!(f, "{m} x{rd}, {:#x}", (imm as u32) >> 12),
            Jal => write!(f, "{m} x{rd}, {imm}"),
            Jalr => write!(f, "{m} x{rd}, {imm}(x{rs1})"),
            Beq | Bne | Blt | Bge | Bltu | Bgeu => write!(f, "{m} x{rs1}, x{rs2}, {imm}"),
            Lb | Lh | Lw | Lbu | Lhu => write!(f, "{m} x{rd}, {imm}(x{rs1})"),
            Sb | Sh | Sw => write!(f, "{m} x{rs2}, {imm}(x{rs1})"),
            Slli | Srli | Srai => write!(f, "{m} x{rd}, x{rs1}, {}", imm & 31),
            Addi | Slti | Sltiu | Xori | Ori | Andi => write!(f, "{m} x{rd}, x{rs1}, {imm}"),
            Fence | Ecall | Ebreak => write!(f, "{m}"),
            _ => write!(f, "{m} x{rd}, x{rs1}, x{rs2}"),
        }
    }
}

/// Extension methods on RV32 micro-ops (`Uop` lives in `popk-trace`, so
/// an inherent impl is not possible here).
pub trait Rv32UopExt {
    /// The value of source register `r`, if this instruction reads it.
    fn src_val(&self, r: u8) -> Option<u32>;
}

impl Rv32UopExt for Uop<Rv32Insn> {
    fn src_val(&self, r: u8) -> Option<u32> {
        self.insn
            .reads()
            .iter()
            .position(|u| u == r)
            .map(|i| self.src_vals[i])
    }
}

impl UopInsn for Rv32Insn {
    const NUM_REGS: usize = 32;

    fn meta(&self) -> UopMeta {
        use Rv32Op::*;
        let op = self.op;
        let class = match op {
            Jal => ExecClass::Front,
            Ecall | Ebreak | Fence => ExecClass::Sys,
            _ => ExecClass::IntSliced,
        };
        // Equality branches and bitwise logic compare/combine slices
        // independently; adds, set-less-thans, agen and the magnitude
        // branches carry-chain; shifts need cross-slice communication.
        let slice_class = match op {
            And | Or | Xor | Andi | Ori | Xori | Lui | Beq | Bne => SliceClass::Independent,
            Sll | Srl | Sra | Slli | Srli | Srai => SliceClass::CrossSlice,
            Fence | Ecall | Ebreak | Jal => SliceClass::Atomic,
            _ => SliceClass::CarryChained,
        };
        let ctrl = match op {
            Jal => Some(CtrlKind::DirectJump {
                is_call: is_link(self.rd),
            }),
            Jalr => Some(CtrlKind::IndirectJump {
                is_call: is_link(self.rd),
                is_return: self.rd == 0 && is_link(self.rs1),
            }),
            _ => op.branch_cond().map(CtrlKind::CondBranch),
        };
        UopMeta {
            class,
            slice_class,
            lat: LatClass::Alu, // RV32I base: every op is single-cycle ALU work
            ctrl,
            late_result: matches!(op, Slt | Sltu | Slti | Sltiu),
            is_load: op.is_load(),
            is_store: op.is_store(),
            mem_bytes: op.mem_bytes(),
        }
    }

    fn src_regs(&self) -> RegList {
        self.reads()
    }

    fn dst_regs(&self) -> RegList {
        let mut l = RegList::new();
        if self.writes_rd() {
            l.push(self.rd);
        }
        l
    }

    fn store_data_reg(&self) -> Option<u8> {
        self.op.is_store().then_some(self.rs2)
    }

    fn phantom_nop() -> Rv32Insn {
        // addi x0, x0, 0 — the canonical RISC-V nop.
        Rv32Insn {
            raw: 0x0000_0013,
            op: Rv32Op::Addi,
            rd: 0,
            rs1: 0,
            rs2: 0,
            imm: 0,
        }
    }

    fn branch_cmp(rec: &Uop<Rv32Insn>) -> (u32, u32) {
        (
            rec.src_val(rec.insn.rs1).unwrap_or(0),
            rec.src_val(rec.insn.rs2).unwrap_or(0),
        )
    }

    fn alu_lane(rec: &Uop<Rv32Insn>) -> Option<(AluSliceOp, u32, u32)> {
        use AluSliceOp as A;
        use Rv32Op::*;
        let insn = rec.insn;
        if !insn.writes_rd() {
            return None;
        }
        let imm = insn.imm as u32;
        let rs1 = || rec.src_val(insn.rs1).unwrap_or(0);
        let rs2 = || rec.src_val(insn.rs2).unwrap_or(0);
        Some(match insn.op {
            Add => (A::Add, rs1(), rs2()),
            Sub => (A::Sub, rs1(), rs2()),
            Slt => (A::Slt, rs1(), rs2()),
            Sltu => (A::Sltu, rs1(), rs2()),
            And => (A::And, rs1(), rs2()),
            Or => (A::Or, rs1(), rs2()),
            Xor => (A::Xor, rs1(), rs2()),
            Addi => (A::Add, rs1(), imm),
            Slti => (A::Slt, rs1(), imm),
            Sltiu => (A::Sltu, rs1(), imm),
            Andi => (A::And, rs1(), imm),
            Ori => (A::Or, rs1(), imm),
            Xori => (A::Xor, rs1(), imm),
            // U-format immediates are stored pre-shifted; OR-with-zero
            // routes lui through the logic slices, and auipc is a plain
            // add of the (architecturally visible) fetch PC.
            Lui => (A::Or, 0, imm),
            Auipc => (A::Add, rec.pc, imm),
            Sll => (A::Sll, rs1(), rs2()),
            Srl => (A::Srl, rs1(), rs2()),
            Sra => (A::Sra, rs1(), rs2()),
            Slli => (A::Sll, rs1(), imm),
            Srli => (A::Srl, rs1(), imm),
            Srai => (A::Sra, rs1(), imm),
            _ => return None,
        })
    }
}

/// Decode one RV32I instruction word. Returns `None` for encodings
/// outside the supported RV32I subset (including the compressed
/// extension — all popk programs are 4-byte aligned).
pub fn decode(raw: u32) -> Option<Rv32Insn> {
    let opcode = raw & 0x7f;
    let rd = ((raw >> 7) & 31) as u8;
    let f3 = (raw >> 12) & 7;
    let rs1 = ((raw >> 15) & 31) as u8;
    let rs2 = ((raw >> 20) & 31) as u8;
    let f7 = raw >> 25;

    let i_imm = (raw as i32) >> 20;
    let s_imm = (((raw & 0xfe00_0000) as i32) >> 20) | (((raw >> 7) & 31) as i32);
    let b_imm = (((raw & 0x8000_0000) as i32) >> 19)
        | ((((raw >> 7) & 1) as i32) << 11)
        | ((((raw >> 25) & 0x3f) as i32) << 5)
        | ((((raw >> 8) & 0xf) as i32) << 1);
    let u_imm = (raw & 0xffff_f000) as i32;
    let j_imm = (((raw & 0x8000_0000) as i32) >> 11)
        | ((raw & 0x000f_f000) as i32)
        | ((((raw >> 20) & 1) as i32) << 11)
        | ((((raw >> 21) & 0x3ff) as i32) << 1);

    let mk = |op, rd, rs1, rs2, imm| {
        Some(Rv32Insn {
            raw,
            op,
            rd,
            rs1,
            rs2,
            imm,
        })
    };
    use Rv32Op::*;
    match opcode {
        0x37 => mk(Lui, rd, 0, 0, u_imm),
        0x17 => mk(Auipc, rd, 0, 0, u_imm),
        0x6f => mk(Jal, rd, 0, 0, j_imm),
        0x67 if f3 == 0 => mk(Jalr, rd, rs1, 0, i_imm),
        0x63 => {
            let op = match f3 {
                0 => Beq,
                1 => Bne,
                4 => Blt,
                5 => Bge,
                6 => Bltu,
                7 => Bgeu,
                _ => return None,
            };
            mk(op, 0, rs1, rs2, b_imm)
        }
        0x03 => {
            let op = match f3 {
                0 => Lb,
                1 => Lh,
                2 => Lw,
                4 => Lbu,
                5 => Lhu,
                _ => return None,
            };
            mk(op, rd, rs1, 0, i_imm)
        }
        0x23 => {
            let op = match f3 {
                0 => Sb,
                1 => Sh,
                2 => Sw,
                _ => return None,
            };
            mk(op, 0, rs1, rs2, s_imm)
        }
        0x13 => {
            let op = match f3 {
                0 => Addi,
                2 => Slti,
                3 => Sltiu,
                4 => Xori,
                6 => Ori,
                7 => Andi,
                1 if f7 == 0 => Slli,
                5 if f7 == 0 => Srli,
                5 if f7 == 0x20 => Srai,
                _ => return None,
            };
            // Shift immediates keep only the 5-bit shamt.
            let imm = if matches!(op, Slli | Srli | Srai) {
                i_imm & 31
            } else {
                i_imm
            };
            mk(op, rd, rs1, 0, imm)
        }
        0x33 => {
            let op = match (f3, f7) {
                (0, 0) => Add,
                (0, 0x20) => Sub,
                (1, 0) => Sll,
                (2, 0) => Slt,
                (3, 0) => Sltu,
                (4, 0) => Xor,
                (5, 0) => Srl,
                (5, 0x20) => Sra,
                (6, 0) => Or,
                (7, 0) => And,
                _ => return None,
            };
            mk(op, rd, rs1, rs2, 0)
        }
        0x0f if f3 == 0 => mk(Fence, 0, 0, 0, 0),
        0x73 if raw == 0x0000_0073 => mk(Ecall, 0, 0, 0, 0),
        0x73 if raw == 0x0010_0073 => mk(Ebreak, 0, 0, 0, 0),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm;

    #[test]
    fn decode_round_trips_the_assembler() {
        let words = [
            asm::addi(5, 0, -7),
            asm::lui(6, 0x12345),
            asm::auipc(7, 1),
            asm::add(8, 5, 6),
            asm::sub(9, 6, 5),
            asm::sltu(10, 5, 6),
            asm::beq(5, 6, -8),
            asm::bge(5, 6, 12),
            asm::jal(1, 2048),
            asm::jalr(0, 1, 0),
            asm::lw(11, 5, 4),
            asm::sw(5, 11, -4),
            asm::sb(5, 11, 3),
            asm::slli(12, 5, 31),
            asm::srai(13, 5, 1),
            asm::ecall(),
        ];
        for raw in words {
            let insn = decode(raw).expect("assembler output decodes");
            assert_eq!(insn.raw, raw, "{insn}");
        }
        assert_eq!(decode(asm::addi(5, 3, -7)).unwrap().imm, -7);
        assert_eq!(decode(asm::jal(1, -2048)).unwrap().imm, -2048);
        assert_eq!(decode(asm::beq(5, 6, -8)).unwrap().imm, -8);
        assert_eq!(decode(asm::sw(5, 11, -4)).unwrap().imm, -4);
        assert_eq!(decode(asm::lui(6, 0x12345)).unwrap().imm, 0x1234_5000);
        assert!(decode(0xffff_ffff).is_none(), "garbage must not decode");
    }

    #[test]
    fn meta_maps_the_scheduling_vocabulary() {
        let m = |raw: u32| decode(raw).unwrap().meta();
        assert_eq!(m(asm::add(8, 5, 6)).slice_class, SliceClass::CarryChained);
        assert_eq!(m(asm::xor(8, 5, 6)).slice_class, SliceClass::Independent);
        assert_eq!(m(asm::sll(8, 5, 6)).slice_class, SliceClass::CrossSlice);
        assert_eq!(m(asm::beq(5, 6, 8)).slice_class, SliceClass::Independent);
        assert_eq!(m(asm::blt(5, 6, 8)).slice_class, SliceClass::CarryChained);
        assert!(m(asm::slt(8, 5, 6)).late_result);
        assert_eq!(m(asm::jal(1, 8)).class, ExecClass::Front);
        assert_eq!(m(asm::ecall()).class, ExecClass::Sys);
        let lw = m(asm::lw(8, 5, 0));
        assert!(lw.is_load && lw.mem_bytes == 4);
        assert_eq!(m(asm::lbu(8, 5, 0)).mem_bytes, 1);
        assert_eq!(m(asm::sh(5, 8, 0)).mem_bytes, 2);
    }

    #[test]
    fn control_kinds_follow_the_link_convention() {
        let ctrl = |raw: u32| decode(raw).unwrap().meta().ctrl;
        assert_eq!(
            ctrl(asm::jal(1, 8)),
            Some(CtrlKind::DirectJump { is_call: true })
        );
        assert_eq!(
            ctrl(asm::jal(0, 8)),
            Some(CtrlKind::DirectJump { is_call: false })
        );
        assert_eq!(
            ctrl(asm::jalr(0, 1, 0)),
            Some(CtrlKind::IndirectJump {
                is_call: false,
                is_return: true
            })
        );
        assert_eq!(
            ctrl(asm::jalr(1, 6, 0)),
            Some(CtrlKind::IndirectJump {
                is_call: true,
                is_return: false
            })
        );
        assert_eq!(
            ctrl(asm::bne(5, 6, 8)),
            Some(CtrlKind::CondBranch(BranchCond::Ne))
        );
    }

    #[test]
    fn reg_lists_and_store_data() {
        let sw = decode(asm::sw(5, 11, 0)).unwrap();
        assert_eq!(sw.src_regs().iter().collect::<Vec<_>>(), vec![5, 11]);
        assert_eq!(sw.store_data_reg(), Some(11));
        assert!(sw.dst_regs().is_empty());

        let add = decode(asm::add(8, 5, 5)).unwrap();
        assert_eq!(add.src_regs().len(), 1, "dedup like the PISA binding");
        assert_eq!(add.dst_regs().iter().collect::<Vec<_>>(), vec![8]);

        // x0 writes are not reported.
        let nop = Rv32Insn::phantom_nop();
        assert!(nop.dst_regs().is_empty());
        assert!(nop.src_regs().is_empty());
        assert_eq!(decode(nop.raw).unwrap(), nop);
    }
}
