//! # popk-rv32 — an RV32I frontend for the popk timing core
//!
//! The timing core consumes ISA-neutral [`popk_trace::Uop`] streams, so
//! adding an ISA means exactly three things, all in this crate:
//!
//! 1. **A decoded instruction type** implementing
//!    [`popk_trace::UopInsn`] — [`insn::Rv32Insn`] maps RV32I onto the
//!    paper's scheduling vocabulary (carry-chained adds, independent
//!    logic/equality slices, cross-slice shifts, late-result
//!    set-less-than).
//! 2. **A functional reference machine** — [`machine::Rv32Machine`]
//!    executes programs, produces retired micro-ops, and replays
//!    independently as the lockstep half of differential replay.
//! 3. **Frontends** — [`frontend::Rv32Frontend`] (emulation) and
//!    [`tracefile::TraceFileFrontend`] (external trace ingestion)
//!    implement [`popk_trace::Frontend`], so
//!    `popk_core::try_simulate_frontend` drives the full bit-sliced
//!    pipeline over RV32I without the timing core knowing the ISA
//!    changed.
//!
//! The [`workloads`] module provides the RV32 kernel suite used by the
//! golden-hash and bench coverage; [`asm`] has the word encoders the
//! kernels (and tests) are written in.
//!
//! ```
//! use popk_rv32::{frontend::Rv32Frontend, workloads};
//!
//! let w = workloads::by_name("rv_sum").unwrap();
//! let uops: Vec<_> = Rv32Frontend::new(&w.test_program(), 100)
//!     .map(|r| r.unwrap())
//!     .collect();
//! assert_eq!(uops.len(), 100);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod frontend;
pub mod insn;
pub mod machine;
pub mod tracefile;
pub mod workloads;

pub use frontend::{Rv32Checker, Rv32Frontend};
pub use insn::{decode, Rv32Insn, Rv32Op, Rv32UopExt};
pub use machine::{Rv32Machine, Rv32Program, Rv32Step};
