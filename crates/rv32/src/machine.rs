//! The RV32I functional machine: reference executor, trace producer and
//! lockstep verifier.
//!
//! [`Rv32Machine`] mirrors the PISA emulator's contract exactly — one
//! [`step_record`](Rv32Machine::step_record) per retired instruction
//! producing a [`Uop`], program exit via the Linux-style `exit` ecall
//! (a7 = 93), and a [`verify_step`](Rv32Machine::verify_step) that
//! replays an independent copy against a timing core's commit claims
//! field by field.
//!
//! Memory is a sparse word-granular map, so workloads address heap and
//! stack freely without a sized backing store; unwritten words read 0.

use crate::insn::Rv32UopExt;
use crate::insn::{decode, Rv32Insn, Rv32Op};
use popk_trace::{ArchSnapshot, EmuError, LockstepMismatch, SnapshotPage, Uop, UopInsn};
use std::collections::HashMap;

/// Where workload text is loaded (and the reset PC).
pub const TEXT_BASE: u32 = 0x0001_0000;

/// Initial stack pointer (x2), 16-byte aligned.
pub const STACK_TOP: u32 = 0x7fff_fff0;

/// The Linux-style `exit` service number checked on `ecall` (a7).
pub const SYS_EXIT: u32 = 93;

/// An RV32I program image: a flat word array at [`Rv32Program::base`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Rv32Program {
    /// Load address of `words[0]` (also the entry point).
    pub base: u32,
    /// The instruction words, contiguous from `base`.
    pub words: Vec<u32>,
}

impl Rv32Program {
    /// A program loaded at [`TEXT_BASE`].
    pub fn new(words: Vec<u32>) -> Rv32Program {
        Rv32Program {
            base: TEXT_BASE,
            words,
        }
    }

    /// The entry PC.
    pub fn entry(&self) -> u32 {
        self.base
    }

    /// The instruction word at `pc`, if inside the text image.
    pub fn fetch(&self, pc: u32) -> Option<u32> {
        let off = pc.wrapping_sub(self.base);
        if !off.is_multiple_of(4) {
            return None;
        }
        self.words.get((off / 4) as usize).copied()
    }
}

/// Outcome of one [`Rv32Machine::step_record`].
#[derive(Clone, Copy, Debug)]
pub enum Rv32Step {
    /// One instruction retired.
    Retired(Uop<Rv32Insn>),
    /// The program has exited with this code (sticky).
    Exited(u32),
}

/// The RV32I functional reference machine.
pub struct Rv32Machine {
    regs: [u32; 32],
    pc: u32,
    program: Rv32Program,
    /// Sparse memory, keyed by word address (`addr >> 2`).
    mem: HashMap<u32, u32>,
    exited: Option<u32>,
    /// Instructions retired so far.
    icount: u64,
}

impl Rv32Machine {
    /// A machine reset at `program`'s entry, sp = [`STACK_TOP`].
    pub fn new(program: &Rv32Program) -> Rv32Machine {
        let mut regs = [0u32; 32];
        regs[2] = STACK_TOP;
        Rv32Machine {
            regs,
            pc: program.entry(),
            program: program.clone(),
            mem: HashMap::new(),
            exited: None,
            icount: 0,
        }
    }

    /// Instructions retired so far.
    pub fn icount(&self) -> u64 {
        self.icount
    }

    /// Capture the architectural state as an ISA-neutral
    /// [`ArchSnapshot`]. The sparse word map is coalesced into sorted
    /// 4 KiB [`SnapshotPage`]s (a page is resident if any word in it
    /// has a map entry), so equal memory states yield equal snapshots
    /// regardless of write order. RV32 has no output channels, so
    /// `out_ints`/`out_bytes` are always empty.
    pub fn snapshot(&self) -> ArchSnapshot {
        let mut bases: Vec<u32> = self.mem.keys().map(|&w| (w << 2) & !0xfff).collect();
        bases.sort_unstable();
        bases.dedup();
        let pages = bases
            .into_iter()
            .map(|base| {
                let mut data = vec![0u8; 4096];
                for off in (0..4096u32).step_by(4) {
                    if let Some(&w) = self.mem.get(&((base + off) >> 2)) {
                        data[off as usize..off as usize + 4].copy_from_slice(&w.to_le_bytes());
                    }
                }
                SnapshotPage { base, data }
            })
            .collect();
        ArchSnapshot {
            icount: self.icount,
            pc: self.pc,
            regs: self.regs.to_vec(),
            pages,
            out_ints: Vec::new(),
            out_bytes: Vec::new(),
            exited: self.exited,
        }
    }

    /// Overwrite this machine's architectural state from a snapshot (the
    /// inverse of [`Rv32Machine::snapshot`]); the loaded program is
    /// untouched. Every word of every resident page is materialized in
    /// the map — zeros included — so a snapshot of the restored machine
    /// reproduces the original page list exactly.
    pub fn restore(&mut self, s: &ArchSnapshot) {
        self.regs = [0u32; 32];
        for (slot, &v) in self.regs.iter_mut().zip(&s.regs) {
            *slot = v;
        }
        self.pc = s.pc;
        self.icount = s.icount;
        self.exited = s.exited;
        self.mem.clear();
        for page in &s.pages {
            for (off, chunk) in page.data.chunks_exact(4).enumerate() {
                let addr = page.base + (off as u32) * 4;
                self.mem.insert(
                    addr >> 2,
                    u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]),
                );
            }
        }
    }

    /// Current architectural value of register `r` (x0 reads 0).
    pub fn reg(&self, r: u8) -> u32 {
        self.regs[r as usize & 31]
    }

    /// Current PC.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// The exit code, once the program has exited.
    pub fn exit_code(&self) -> Option<u32> {
        self.exited
    }

    fn load_word(&self, addr: u32) -> u32 {
        self.mem.get(&(addr >> 2)).copied().unwrap_or(0)
    }

    fn store_word(&mut self, addr: u32, val: u32) {
        self.mem.insert(addr >> 2, val);
    }

    fn load(&self, addr: u32, bytes: u8) -> u32 {
        let word = self.load_word(addr);
        let shift = (addr & 3) * 8;
        match bytes {
            1 => (word >> shift) & 0xff,
            2 => (word >> shift) & 0xffff,
            _ => word,
        }
    }

    fn store(&mut self, addr: u32, bytes: u8, val: u32) {
        let shift = (addr & 3) * 8;
        let word = self.load_word(addr);
        let new = match bytes {
            1 => (word & !(0xff << shift)) | ((val & 0xff) << shift),
            2 => (word & !(0xffff << shift)) | ((val & 0xffff) << shift),
            _ => val,
        };
        self.store_word(addr, new);
    }

    /// Execute one instruction, producing its [`Uop`].
    pub fn step_record(&mut self) -> Result<Rv32Step, EmuError> {
        if let Some(code) = self.exited {
            return Ok(Rv32Step::Exited(code));
        }
        let pc = self.pc;
        if !pc.is_multiple_of(4) {
            return Err(EmuError::Misaligned { pc, addr: pc });
        }
        let raw = self.program.fetch(pc).ok_or(EmuError::UnmappedPc { pc })?;
        let insn = decode(raw).ok_or(EmuError::Illegal { pc, raw })?;

        let mut src_vals = [0u32; 2];
        for (i, r) in insn.src_regs().iter().enumerate() {
            src_vals[i] = self.reg(r);
        }

        let rs1 = self.reg(insn.rs1);
        let rs2 = self.reg(insn.rs2);
        let imm = insn.imm as u32;
        let mut ea = 0u32;
        let mut taken = false;
        let mut next_pc = pc.wrapping_add(4);
        let mut rd_val = 0u32;

        use Rv32Op::*;
        match insn.op {
            Lui => rd_val = imm,
            Auipc => rd_val = pc.wrapping_add(imm),
            Jal => {
                rd_val = pc.wrapping_add(4);
                next_pc = pc.wrapping_add(imm);
                taken = true;
            }
            Jalr => {
                rd_val = pc.wrapping_add(4);
                next_pc = rs1.wrapping_add(imm) & !1;
                taken = true;
            }
            Beq | Bne | Blt | Bge | Bltu | Bgeu => {
                taken = match insn.op {
                    Beq => rs1 == rs2,
                    Bne => rs1 != rs2,
                    Blt => (rs1 as i32) < (rs2 as i32),
                    Bge => (rs1 as i32) >= (rs2 as i32),
                    Bltu => rs1 < rs2,
                    _ => rs1 >= rs2,
                };
                if taken {
                    next_pc = pc.wrapping_add(imm);
                }
            }
            Lb | Lh | Lw | Lbu | Lhu => {
                ea = rs1.wrapping_add(imm);
                let bytes = insn.op.mem_bytes();
                if !ea.is_multiple_of(bytes as u32) {
                    return Err(EmuError::Misaligned { pc, addr: ea });
                }
                let v = self.load(ea, bytes);
                rd_val = match insn.op {
                    Lb => v as u8 as i8 as i32 as u32,
                    Lh => v as u16 as i16 as i32 as u32,
                    _ => v,
                };
            }
            Sb | Sh | Sw => {
                ea = rs1.wrapping_add(imm);
                let bytes = insn.op.mem_bytes();
                if !ea.is_multiple_of(bytes as u32) {
                    return Err(EmuError::Misaligned { pc, addr: ea });
                }
                self.store(ea, bytes, rs2);
            }
            Addi => rd_val = rs1.wrapping_add(imm),
            Slti => rd_val = ((rs1 as i32) < insn.imm) as u32,
            Sltiu => rd_val = (rs1 < imm) as u32,
            Xori => rd_val = rs1 ^ imm,
            Ori => rd_val = rs1 | imm,
            Andi => rd_val = rs1 & imm,
            Slli => rd_val = rs1 << (imm & 31),
            Srli => rd_val = rs1 >> (imm & 31),
            Srai => rd_val = ((rs1 as i32) >> (imm & 31)) as u32,
            Add => rd_val = rs1.wrapping_add(rs2),
            Sub => rd_val = rs1.wrapping_sub(rs2),
            Sll => rd_val = rs1 << (rs2 & 31),
            Slt => rd_val = ((rs1 as i32) < (rs2 as i32)) as u32,
            Sltu => rd_val = (rs1 < rs2) as u32,
            Xor => rd_val = rs1 ^ rs2,
            Srl => rd_val = rs1 >> (rs2 & 31),
            Sra => rd_val = ((rs1 as i32) >> (rs2 & 31)) as u32,
            Or => rd_val = rs1 | rs2,
            And => rd_val = rs1 & rs2,
            Fence => {}
            Ecall => {
                let service = self.reg(17);
                if service != SYS_EXIT {
                    return Err(EmuError::BadSyscall { pc, service });
                }
                let code = self.reg(10);
                self.exited = Some(code);
                return Ok(Rv32Step::Exited(code));
            }
            Ebreak => return Err(EmuError::Break { pc }),
        }

        let mut results = [0u32; 2];
        if !insn.dst_regs().is_empty() {
            self.regs[insn.rd as usize] = rd_val;
            results[0] = rd_val;
        }
        self.pc = next_pc;
        self.icount += 1;
        Ok(Rv32Step::Retired(Uop {
            pc,
            insn,
            src_vals,
            results,
            ea,
            taken,
            next_pc,
        }))
    }

    /// Verify one retirement claim against this machine, advancing it by
    /// one instruction — the RV32 half of differential replay, mirroring
    /// the PISA emulator's `verify_step` field for field.
    pub fn verify_step(&mut self, claim: &Uop<Rv32Insn>) -> Result<(), LockstepMismatch> {
        let mm = |field, expected, got| {
            Err(LockstepMismatch {
                pc: claim.pc,
                field,
                expected,
                got,
            })
        };
        let rec = match self.step_record() {
            Ok(Rv32Step::Retired(r)) => r,
            Ok(Rv32Step::Exited(code)) => return mm("exited", code, claim.pc),
            Err(e) => return mm("emulation", e.pc(), claim.pc),
        };
        if rec.pc != claim.pc {
            return mm("pc", rec.pc, claim.pc);
        }
        if rec.insn != claim.insn {
            return mm("insn", rec.insn.raw, claim.insn.raw);
        }
        if !rec.insn.dst_regs().is_empty() && rec.results[0] != claim.results[0] {
            return mm("dest0", rec.results[0], claim.results[0]);
        }
        if rec.is_mem() && rec.ea != claim.ea {
            return mm("ea", rec.ea, claim.ea);
        }
        if rec.insn.meta().is_store {
            let data = rec.src_val(rec.insn.rs2);
            if data != claim.src_val(claim.insn.rs2) {
                return mm(
                    "store_data",
                    data.unwrap_or(0),
                    claim.src_val(claim.insn.rs2).unwrap_or(0),
                );
            }
        }
        if rec.insn.meta().ctrl.is_some() {
            if rec.taken != claim.taken {
                return mm("taken", rec.taken as u32, claim.taken as u32);
            }
            if rec.next_pc != claim.next_pc {
                return mm("next_pc", rec.next_pc, claim.next_pc);
            }
        }
        Ok(())
    }

    /// Run to exit (or `limit` instructions), returning the exit code if
    /// the program finished.
    pub fn run(&mut self, limit: u64) -> Result<Option<u32>, EmuError> {
        for _ in 0..limit {
            match self.step_record()? {
                Rv32Step::Retired(_) => {}
                Rv32Step::Exited(code) => return Ok(Some(code)),
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm;

    fn run_words(words: Vec<u32>, limit: u64) -> (Rv32Machine, Option<u32>) {
        let p = Rv32Program::new(words);
        let mut m = Rv32Machine::new(&p);
        let code = m.run(limit).expect("no fault");
        (m, code)
    }

    fn exit_with_a0() -> Vec<u32> {
        vec![asm::addi(17, 0, SYS_EXIT as i32), asm::ecall()]
    }

    #[test]
    fn arithmetic_and_exit() {
        let mut words = vec![
            asm::addi(10, 0, 40),
            asm::addi(11, 0, 2),
            asm::add(10, 10, 11),
        ];
        words.extend(exit_with_a0());
        let (_, code) = run_words(words, 100);
        assert_eq!(code, Some(42));
    }

    #[test]
    fn memory_subword_and_sign_extension() {
        let mut words = vec![
            asm::lui(5, 0x20),     // t0 = 0x20000 (heap)
            asm::addi(6, 0, -2),   // t1 = 0xfffffffe
            asm::sw(5, 6, 0),      // [heap] = fffffffe
            asm::addi(7, 0, 0x7f), //
            asm::sb(5, 7, 1),      // byte 1 := 7f -> ffff7ffe
            asm::lw(10, 5, 0),     // a0 = ffff7ffe
            asm::lh(11, 5, 0),     // a1 = sext(7ffe)
            asm::lbu(12, 5, 3),    // a2 = ff
            asm::lb(13, 5, 3),     // a3 = sext(ff)
        ];
        words.extend(exit_with_a0());
        let (m, code) = run_words(words, 100);
        assert_eq!(code, Some(0xffff_7ffe));
        assert_eq!(m.reg(11), 0x7ffe);
        assert_eq!(m.reg(12), 0xff);
        assert_eq!(m.reg(13), 0xffff_ffff);
    }

    #[test]
    fn branches_and_calls() {
        // Loop 5 times via bne; call a leaf that doubles a0.
        let words = vec![
            asm::addi(10, 0, 0),  // a0 = 0
            asm::addi(5, 0, 0),   // t0 = 0
            asm::addi(6, 0, 5),   // t1 = 5
            asm::addi(10, 10, 3), // loop: a0 += 3
            asm::addi(5, 5, 1),
            asm::bne(5, 6, -8), // -> loop
            asm::jal(1, 16),    // call double (4 words ahead)
            asm::addi(17, 0, SYS_EXIT as i32),
            asm::ecall(),
            0,                    // padding (never executed)
            asm::add(10, 10, 10), // double: a0 *= 2
            asm::jalr(0, 1, 0),   // ret
        ];
        let (_, code) = run_words(words, 100);
        assert_eq!(code, Some(30));
    }

    #[test]
    fn faults_are_typed() {
        let p = Rv32Program::new(vec![0xffff_ffff]);
        let mut m = Rv32Machine::new(&p);
        assert!(matches!(
            m.step_record(),
            Err(EmuError::Illegal {
                raw: 0xffff_ffff,
                ..
            })
        ));

        let p = Rv32Program::new(vec![asm::lw(10, 0, 2)]);
        let mut m = Rv32Machine::new(&p);
        assert!(matches!(
            m.step_record(),
            Err(EmuError::Misaligned { addr: 2, .. })
        ));

        let p = Rv32Program::new(vec![asm::ecall()]);
        let mut m = Rv32Machine::new(&p);
        assert!(matches!(
            m.step_record(),
            Err(EmuError::BadSyscall { service: 0, .. })
        ));

        let p = Rv32Program::new(vec![asm::ebreak()]);
        let mut m = Rv32Machine::new(&p);
        assert!(matches!(m.step_record(), Err(EmuError::Break { .. })));

        let p = Rv32Program::new(vec![asm::jalr(0, 0, 0x100)]);
        let mut m = Rv32Machine::new(&p);
        m.step_record().expect("jalr itself retires");
        assert!(matches!(m.step_record(), Err(EmuError::UnmappedPc { .. })));
    }

    #[test]
    fn verify_step_locksteps_and_flags_corruption() {
        let mut words = vec![
            asm::addi(10, 0, 1),
            asm::addi(11, 0, 2),
            asm::add(10, 10, 11),
            asm::lui(5, 0x20),
            asm::sw(5, 10, 0),
            asm::lw(12, 5, 0),
        ];
        words.extend(exit_with_a0());
        let p = Rv32Program::new(words);
        let mut m = Rv32Machine::new(&p);
        let mut recs = Vec::new();
        while let Rv32Step::Retired(r) = m.step_record().unwrap() {
            recs.push(r);
        }
        let mut checker = Rv32Machine::new(&p);
        for r in &recs {
            checker.verify_step(r).unwrap();
        }
        let mut checker = Rv32Machine::new(&p);
        let mut bad = recs[0];
        bad.results[0] ^= 4;
        assert_eq!(checker.verify_step(&bad).unwrap_err().field, "dest0");
        let mut checker = Rv32Machine::new(&p);
        checker.verify_step(&recs[0]).unwrap();
        let mut bad = recs[1];
        bad.pc ^= 4;
        assert_eq!(checker.verify_step(&bad).unwrap_err().field, "pc");
    }

    #[test]
    fn snapshot_restore_locksteps_with_uninterrupted_run() {
        // Loop with stores/loads across two pages: run k instructions,
        // snapshot, restore into a fresh machine, then both must retire
        // identical uops to exit.
        let mut words = vec![
            asm::addi(5, 0, 0),  // t0 = i
            asm::addi(6, 0, 50), // t1 = n
            asm::lui(7, 0x20),   // t2 = heap
            asm::lui(28, 0x21),  // t3 = heap+4K
            asm::sw(7, 5, 0),    // loop: [heap] = i
            asm::lw(29, 7, 0),
            asm::sw(28, 29, 0),
            asm::lw(10, 28, 0),
            asm::addi(5, 5, 1),
            asm::bne(5, 6, -20), // -> loop
        ];
        words.extend(exit_with_a0());
        let p = Rv32Program::new(words);

        let mut live = Rv32Machine::new(&p);
        for _ in 0..23 {
            live.step_record().unwrap();
        }
        let snap = live.snapshot();
        assert_eq!(snap.icount, 23);
        assert_eq!(snap.pages.len(), 2, "two heap pages resident");

        let mut resumed = Rv32Machine::new(&p);
        resumed.restore(&snap);
        assert_eq!(resumed.snapshot().first_difference(&snap), None);

        loop {
            match (live.step_record().unwrap(), resumed.step_record().unwrap()) {
                (Rv32Step::Retired(ra), Rv32Step::Retired(rb)) => {
                    assert_eq!(ra.pc, rb.pc);
                    assert_eq!(ra.insn, rb.insn);
                    assert_eq!(ra.src_vals, rb.src_vals);
                    assert_eq!(ra.results, rb.results);
                    assert_eq!((ra.ea, ra.taken, ra.next_pc), (rb.ea, rb.taken, rb.next_pc));
                }
                (Rv32Step::Exited(ca), Rv32Step::Exited(cb)) => {
                    assert_eq!(ca, cb);
                    break;
                }
                other => panic!("machines diverged: {other:?}"),
            }
        }
        assert_eq!(live.snapshot().first_difference(&resumed.snapshot()), None);
    }
}
