//! Differential testing: random straight-line ALU programs executed by
//! the emulator must match an independently written mini-interpreter.

use popk_emu::Machine;
use popk_isa::{Insn, Op, Program, Reg, TEXT_BASE};
use proptest::prelude::*;

/// The ops covered by the differential interpreter.
const OPS: [Op; 16] = [
    Op::Addu,
    Op::Subu,
    Op::And,
    Op::Or,
    Op::Xor,
    Op::Nor,
    Op::Slt,
    Op::Sltu,
    Op::Sll,
    Op::Srl,
    Op::Sra,
    Op::Sllv,
    Op::Srlv,
    Op::Srav,
    Op::Mult,
    Op::Multu,
];

#[derive(Clone, Debug)]
struct Step {
    op: Op,
    rd: u8,
    rs: u8,
    rt: u8,
    shamt: u8,
}

fn arb_step() -> impl Strategy<Value = Step> {
    (
        0usize..OPS.len(),
        1u8..16, // destinations r1..r15
        0u8..16,
        0u8..16,
        0u8..32,
    )
        .prop_map(|(i, rd, rs, rt, shamt)| Step { op: OPS[i], rd, rs, rt, shamt })
}

/// Independent semantics (written against the MIPS manual, not the
/// emulator source).
fn interpret(steps: &[Step], init: &[u32; 16]) -> [u32; 16] {
    let mut r = *init;
    r[0] = 0;
    let mut hi = 0u32;
    let mut lo = 0u32;
    for s in steps {
        let (a, b) = (r[s.rs as usize], r[s.rt as usize]);
        let v = match s.op {
            Op::Addu => a.wrapping_add(b),
            Op::Subu => a.wrapping_sub(b),
            Op::And => a & b,
            Op::Or => a | b,
            Op::Xor => a ^ b,
            Op::Nor => !(a | b),
            Op::Slt => ((a as i32) < (b as i32)) as u32,
            Op::Sltu => (a < b) as u32,
            Op::Sll => b << s.shamt,
            Op::Srl => b >> s.shamt,
            Op::Sra => ((b as i32) >> s.shamt) as u32,
            Op::Sllv => b << (a & 31),
            Op::Srlv => b >> (a & 31),
            Op::Srav => ((b as i32) >> (a & 31)) as u32,
            Op::Mult => {
                let p = (a as i32 as i64).wrapping_mul(b as i32 as i64) as u64;
                hi = (p >> 32) as u32;
                lo = p as u32;
                continue;
            }
            Op::Multu => {
                let p = (a as u64) * (b as u64);
                hi = (p >> 32) as u32;
                lo = p as u32;
                continue;
            }
            _ => unreachable!(),
        };
        if s.rd != 0 {
            r[s.rd as usize] = v;
        }
    }
    let _ = (hi, lo);
    r
}

fn build_program(steps: &[Step], init: &[u32; 16]) -> Program {
    let mut text = Vec::new();
    // Materialize the initial register file.
    for (i, &v) in init.iter().enumerate().skip(1) {
        let r = Reg::gpr(i as u8);
        text.push(Insn::lui(r, (v >> 16) as u16));
        text.push(Insn::imm_op(Op::Ori, r, r, (v & 0xffff) as i32));
    }
    for s in steps {
        let insn = match s.op {
            Op::Sll | Op::Srl | Op::Sra => {
                Insn::shift_imm(s.op, Reg::gpr(s.rd), Reg::gpr(s.rt), s.shamt)
            }
            Op::Mult | Op::Multu => Insn::muldiv(s.op, Reg::gpr(s.rs), Reg::gpr(s.rt)),
            _ => Insn::r3(s.op, Reg::gpr(s.rd), Reg::gpr(s.rs), Reg::gpr(s.rt)),
        };
        text.push(insn);
    }
    // Print every register, then exit.
    for i in 1..16u8 {
        text.push(Insn::r3(Op::Addu, Reg::A0, Reg::gpr(i), Reg::ZERO));
        text.push(Insn::imm_op(Op::Addiu, Reg::V0, Reg::ZERO, 1));
        text.push(Insn::sys(Op::Syscall));
    }
    text.push(Insn::imm_op(Op::Addiu, Reg::V0, Reg::ZERO, 0));
    text.push(Insn::sys(Op::Syscall));
    Program { text, data: Vec::new(), entry: TEXT_BASE, symbols: Default::default() }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn emulator_matches_independent_interpreter(
        steps in prop::collection::vec(arb_step(), 1..40),
        init in prop::array::uniform16(any::<u32>()),
    ) {
        // r2 (v0) and r4 (a0) are clobbered by the print convention; keep
        // them out of the program's data flow to keep the oracle simple.
        let steps: Vec<Step> = steps
            .into_iter()
            .map(|mut s| {
                if s.rd == 2 || s.rd == 4 { s.rd = 5; }
                if s.rs == 2 || s.rs == 4 { s.rs = 6; }
                if s.rt == 2 || s.rt == 4 { s.rt = 7; }
                s
            })
            .collect();
        let mut init = init;
        init[0] = 0;
        init[2] = 0;
        init[4] = 0;

        let program = build_program(&steps, &init);
        let mut m = Machine::new(&program);
        let code = m.run(10_000).unwrap();
        prop_assert_eq!(code, Some(0));

        let expect = interpret(&steps, &init);
        let out = m.output_ints();
        prop_assert_eq!(out.len(), 15);
        for i in 1..16usize {
            let got = out[i - 1] as u32;
            // r2/r4 hold syscall leftovers by the time they print.
            if i == 2 || i == 4 {
                continue;
            }
            prop_assert_eq!(got, expect[i], "r{} after {:?}", i, steps);
        }
    }
}
