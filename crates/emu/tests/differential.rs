//! Differential testing: random straight-line ALU/mul-div programs
//! executed by the emulator must match an independently written
//! mini-interpreter, plus directed coverage of the semantic edges the
//! random stream rarely lands on (shift amounts 0/31, division overflow
//! and divide-by-zero, sub-word load sign extension).

use popk_emu::Machine;
use popk_isa::rng::SplitMix64;
use popk_isa::{Insn, Op, Program, Reg, DATA_BASE, TEXT_BASE};

/// The ops covered by the differential interpreter. Mfhi/Mflo make the
/// HI/LO side effects of the mul-div group observable.
const OPS: [Op; 20] = [
    Op::Addu,
    Op::Subu,
    Op::And,
    Op::Or,
    Op::Xor,
    Op::Nor,
    Op::Slt,
    Op::Sltu,
    Op::Sll,
    Op::Srl,
    Op::Sra,
    Op::Sllv,
    Op::Srlv,
    Op::Srav,
    Op::Mult,
    Op::Multu,
    Op::Div,
    Op::Divu,
    Op::Mfhi,
    Op::Mflo,
];

#[derive(Clone, Copy, Debug)]
struct Step {
    op: Op,
    rd: u8,
    rs: u8,
    rt: u8,
    shamt: u8,
}

/// Independent semantics (written against the MIPS manual, not the
/// emulator source).
fn interpret(steps: &[Step], init: &[u32; 16]) -> [u32; 16] {
    let mut r = *init;
    r[0] = 0;
    let mut hi = 0u32;
    let mut lo = 0u32;
    for s in steps {
        let (a, b) = (r[s.rs as usize], r[s.rt as usize]);
        let v = match s.op {
            Op::Addu => a.wrapping_add(b),
            Op::Subu => a.wrapping_sub(b),
            Op::And => a & b,
            Op::Or => a | b,
            Op::Xor => a ^ b,
            Op::Nor => !(a | b),
            Op::Slt => ((a as i32) < (b as i32)) as u32,
            Op::Sltu => (a < b) as u32,
            Op::Sll => b << s.shamt,
            Op::Srl => b >> s.shamt,
            Op::Sra => ((b as i32) >> s.shamt) as u32,
            Op::Sllv => b << (a & 31),
            Op::Srlv => b >> (a & 31),
            Op::Srav => ((b as i32) >> (a & 31)) as u32,
            Op::Mult => {
                let p = (a as i32 as i64).wrapping_mul(b as i32 as i64) as u64;
                hi = (p >> 32) as u32;
                lo = p as u32;
                continue;
            }
            Op::Multu => {
                let p = (a as u64) * (b as u64);
                hi = (p >> 32) as u32;
                lo = p as u32;
                continue;
            }
            Op::Div => {
                // MIPS "boundedly undefined" convention for t == 0 and
                // MIN / -1, matching real R-series cores.
                let (s_, t) = (a as i32, b as i32);
                let (q, rem) = if t == 0 {
                    (-1i32, s_)
                } else if s_ == i32::MIN && t == -1 {
                    (i32::MIN, 0)
                } else {
                    (s_ / t, s_ % t)
                };
                lo = q as u32;
                hi = rem as u32;
                continue;
            }
            Op::Divu => {
                let (q, rem) = match (a.checked_div(b), a.checked_rem(b)) {
                    (Some(q), Some(rem)) => (q, rem),
                    _ => (u32::MAX, a),
                };
                lo = q;
                hi = rem;
                continue;
            }
            Op::Mfhi => hi,
            Op::Mflo => lo,
            _ => unreachable!(),
        };
        if s.rd != 0 {
            r[s.rd as usize] = v;
        }
    }
    r
}

fn build_program(steps: &[Step], init: &[u32; 16]) -> Program {
    let mut text = Vec::new();
    // Materialize the initial register file.
    for (i, &v) in init.iter().enumerate().skip(1) {
        let r = Reg::gpr(i as u8);
        text.push(Insn::lui(r, (v >> 16) as u16));
        text.push(Insn::imm_op(Op::Ori, r, r, (v & 0xffff) as i32));
    }
    for s in steps {
        let insn = match s.op {
            Op::Sll | Op::Srl | Op::Sra => {
                Insn::shift_imm(s.op, Reg::gpr(s.rd), Reg::gpr(s.rt), s.shamt)
            }
            Op::Mult | Op::Multu | Op::Div | Op::Divu => {
                Insn::muldiv(s.op, Reg::gpr(s.rs), Reg::gpr(s.rt))
            }
            Op::Mfhi | Op::Mflo => Insn::mfhilo(s.op, Reg::gpr(s.rd)),
            _ => Insn::r3(s.op, Reg::gpr(s.rd), Reg::gpr(s.rs), Reg::gpr(s.rt)),
        };
        text.push(insn);
    }
    // Print every register, then exit.
    for i in 1..16u8 {
        text.push(Insn::r3(Op::Addu, Reg::A0, Reg::gpr(i), Reg::ZERO));
        text.push(Insn::imm_op(Op::Addiu, Reg::V0, Reg::ZERO, 1));
        text.push(Insn::sys(Op::Syscall));
    }
    text.push(Insn::imm_op(Op::Addiu, Reg::V0, Reg::ZERO, 0));
    text.push(Insn::sys(Op::Syscall));
    Program {
        text,
        data: Vec::new(),
        entry: TEXT_BASE,
        symbols: Default::default(),
    }
}

/// Run one random program on the emulator and compare every printed
/// register against the independent interpreter.
fn check_case(steps: &[Step], init: &[u32; 16]) {
    // r2 (v0) and r4 (a0) are clobbered by the print convention; the
    // generator keeps them out of the data flow, and the oracle skips them.
    let program = build_program(steps, init);
    let mut m = Machine::new(&program);
    let code = m.run(10_000).unwrap();
    assert_eq!(code, Some(0));

    let expect = interpret(steps, init);
    let out = m.output_ints();
    assert_eq!(out.len(), 15);
    for i in 1..16usize {
        if i == 2 || i == 4 {
            continue; // syscall leftovers by print time
        }
        assert_eq!(
            out[i - 1] as u32,
            expect[i],
            "r{i} after {steps:?} init {init:x?}"
        );
    }
}

/// Remap a raw register index away from the print-convention registers.
fn safe_reg(raw: u32) -> u8 {
    match (raw % 15 + 1) as u8 {
        2 => 5,
        4 => 7,
        r => r,
    }
}

#[test]
fn emulator_matches_independent_interpreter() {
    const EDGES: [u32; 8] = [
        0,
        1,
        0xff,
        0xffff,
        0x8000_0000,
        u32::MAX,
        0x7fff_ffff,
        0x0001_0000,
    ];
    let mut rng = SplitMix64::new(0xd1ff_e2e4);
    for case in 0..256 {
        let mut init = [0u32; 16];
        for (i, v) in init.iter_mut().enumerate().skip(1) {
            *v = if (case + i) % 3 == 0 {
                *rng.pick(&EDGES)
            } else {
                rng.next_u32()
            };
        }
        init[2] = 0;
        init[4] = 0;
        let nsteps = rng.range(1, 40) as usize;
        let steps: Vec<Step> = (0..nsteps)
            .map(|_| Step {
                op: *rng.pick(&OPS),
                rd: safe_reg(rng.next_u32()),
                rs: safe_reg(rng.next_u32()),
                rt: safe_reg(rng.next_u32()),
                shamt: rng.below(32) as u8,
            })
            .collect();
        check_case(&steps, &init);
    }
}

/// Directed shift coverage: amounts 0 and 31 for the immediate forms, and
/// register amounts that exercise the `& 31` masking (32, 33, 63, ...)
/// for the variable forms, over sign-boundary operand values.
#[test]
fn shift_edges() {
    let values: [u32; 5] = [0x8000_0001, u32::MAX, 1, 0x7fff_ffff, 0];
    let amounts_imm: [u8; 3] = [0, 1, 31];
    // r8 holds the value (rt), r9 the variable amount (rs).
    for &v in &values {
        let mut init = [0u32; 16];
        init[8] = v;
        for &sh in &amounts_imm {
            let steps = [
                Step {
                    op: Op::Sll,
                    rd: 10,
                    rs: 0,
                    rt: 8,
                    shamt: sh,
                },
                Step {
                    op: Op::Srl,
                    rd: 11,
                    rs: 0,
                    rt: 8,
                    shamt: sh,
                },
                Step {
                    op: Op::Sra,
                    rd: 12,
                    rs: 0,
                    rt: 8,
                    shamt: sh,
                },
            ];
            check_case(&steps, &init);
        }
        for amt in [0u32, 31, 32, 33, 63, 0xffff_ffe0] {
            let mut init = init;
            init[9] = amt;
            let steps = [
                Step {
                    op: Op::Sllv,
                    rd: 10,
                    rs: 9,
                    rt: 8,
                    shamt: 0,
                },
                Step {
                    op: Op::Srlv,
                    rd: 11,
                    rs: 9,
                    rt: 8,
                    shamt: 0,
                },
                Step {
                    op: Op::Srav,
                    rd: 12,
                    rs: 9,
                    rt: 8,
                    shamt: 0,
                },
            ];
            check_case(&steps, &init);
        }
    }
}

/// Directed mul-div coverage: `i32::MIN / -1` (quotient overflow),
/// signed and unsigned divide-by-zero, and the surrounding remainder
/// conventions, observed through Mfhi/Mflo.
#[test]
fn muldiv_overflow_and_divide_by_zero() {
    let cases: [(Op, u32, u32); 8] = [
        (Op::Div, i32::MIN as u32, -1i32 as u32), // overflow: q = MIN, r = 0
        (Op::Div, i32::MIN as u32, 0),            // div by zero: q = -1, r = rs
        (Op::Div, 7, 0),
        (Op::Div, -7i32 as u32, 3), // C-style truncation: q = -2, r = -1
        (Op::Divu, u32::MAX, 0),    // q = MAX, r = rs
        (Op::Divu, 0, 0),
        (Op::Divu, u32::MAX, 2),
        (Op::Mult, i32::MIN as u32, i32::MIN as u32), // p = 2^62: hi/lo split
    ];
    for &(op, a, b) in &cases {
        let mut init = [0u32; 16];
        init[8] = a;
        init[9] = b;
        let steps = [
            Step {
                op,
                rd: 0,
                rs: 8,
                rt: 9,
                shamt: 0,
            },
            Step {
                op: Op::Mflo,
                rd: 10,
                rs: 0,
                rt: 0,
                shamt: 0,
            },
            Step {
                op: Op::Mfhi,
                rd: 11,
                rs: 0,
                rt: 0,
                shamt: 0,
            },
        ];
        check_case(&steps, &init);
    }
    // Spot-check the convention itself (not just emulator/oracle agreement).
    let expect = interpret(
        &[
            Step {
                op: Op::Div,
                rd: 0,
                rs: 8,
                rt: 9,
                shamt: 0,
            },
            Step {
                op: Op::Mflo,
                rd: 10,
                rs: 0,
                rt: 0,
                shamt: 0,
            },
            Step {
                op: Op::Mfhi,
                rd: 11,
                rs: 0,
                rt: 0,
                shamt: 0,
            },
        ],
        &{
            let mut i = [0u32; 16];
            i[8] = i32::MIN as u32;
            i[9] = -1i32 as u32;
            i
        },
    );
    assert_eq!(
        expect[10],
        i32::MIN as u32,
        "MIN / -1 quotient wraps to MIN"
    );
    assert_eq!(expect[11], 0, "MIN / -1 remainder is 0");
}

/// Sub-word loads must sign-extend (`lb`/`lh`) or zero-extend
/// (`lbu`/`lhu`) exactly at the sign boundaries.
#[test]
fn subword_load_sign_extension() {
    // Data layout (little-endian):
    //   bytes  at +0: 0x80, 0x7f, 0xff, 0x00
    //   halves at +4: 0x8000, +6: 0x7fff, +8: 0xffff, +10: 0x0001
    let data: Vec<u8> = vec![
        0x80, 0x7f, 0xff, 0x00, 0x00, 0x80, 0xff, 0x7f, 0xff, 0xff, 0x01, 0x00,
    ];
    let mut text = vec![Insn::lui(Reg::gpr(24), (DATA_BASE >> 16) as u16)];
    let base = Reg::gpr(24);
    let loads: [(Op, i16); 12] = [
        (Op::Lb, 0),
        (Op::Lbu, 0),
        (Op::Lb, 1),
        (Op::Lbu, 1),
        (Op::Lb, 2),
        (Op::Lbu, 2),
        (Op::Lh, 4),
        (Op::Lhu, 4),
        (Op::Lh, 6),
        (Op::Lh, 8),
        (Op::Lhu, 8),
        (Op::Lh, 10),
    ];
    for &(op, off) in &loads {
        text.push(Insn::load(op, Reg::A0, off, base));
        text.push(Insn::imm_op(Op::Addiu, Reg::V0, Reg::ZERO, 1));
        text.push(Insn::sys(Op::Syscall));
    }
    text.push(Insn::imm_op(Op::Addiu, Reg::V0, Reg::ZERO, 0));
    text.push(Insn::sys(Op::Syscall));
    let program = Program {
        text,
        data,
        entry: TEXT_BASE,
        symbols: Default::default(),
    };

    let mut m = Machine::new(&program);
    let code = m.run(1_000).unwrap();
    assert_eq!(code, Some(0));
    let expect: [i32; 12] = [
        -128, 0x80, 0x7f, 0x7f, -1, 0xff, // bytes
        -32768, 0x8000, 0x7fff, -1, 0xffff, 1, // halfwords
    ];
    assert_eq!(m.output_ints(), &expect[..]);
}
