//! # popk-emu — functional emulator and dynamic traces
//!
//! Executes [`popk_isa`] programs at architectural level and produces the
//! *dynamic traces* that drive both the characterization studies
//! (`popk-characterize`) and the timing model (`popk-core`). This plays the
//! role SimpleScalar's functional core plays for the paper: the timing
//! model replays a trace with oracle operand values.
//!
//! * [`Memory`] — sparse, paged, little-endian flat memory.
//! * [`Machine`] — architectural state plus the instruction interpreter.
//! * [`TraceRecord`] — one executed instruction: PC, source values, results,
//!   effective address, branch outcome and next PC.
//! * [`Machine::run`] / [`Machine::trace`] — batch or streaming execution.
//!
//! ```
//! use popk_emu::Machine;
//! use popk_isa::asm;
//!
//! let p = asm::assemble(
//!     r#"
//!     .text
//!     main:
//!         li  r4, 5          # a0 = 5
//!         li  r2, 1          # v0 = print_int
//!         syscall
//!         li  r2, 0          # v0 = exit
//!         syscall
//!     "#,
//! )
//! .unwrap();
//! let mut m = Machine::new(&p);
//! let exit = m.run(1_000_000).unwrap();
//! assert_eq!(exit, Some(0));
//! assert_eq!(m.output_ints(), &[5]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod frontend;
mod machine;
mod mem;
mod trace;

pub use frontend::{PisaChecker, PisaFrontend};
pub use machine::{EmuError, LockstepMismatch, Machine, StepEvent, Syscall};
pub use mem::Memory;
pub use trace::{ExecStats, TraceRecord, Tracer};
