//! Dynamic-trace records and execution statistics.

use crate::machine::{EmuError, Machine, StepEvent};
use popk_isa::{Insn, OpClass};

/// One dynamically executed instruction, with oracle operand values.
///
/// `src_vals` and `results` are parallel to the iteration order of
/// [`Insn::uses`] and [`Insn::defs`] respectively; unused slots are zero.
/// This record carries everything the trace-driven timing model and the
/// characterization passes need: actual operand *bit patterns* (for
/// partial-operand decisions), effective addresses, and branch outcomes.
///
/// Since the micro-op boundary refactor this is the PISA instantiation
/// of the ISA-neutral [`popk_trace::Uop`]; the PISA-specific helpers
/// (`src_val`, `is_mem`) live in [`popk_trace::pisa`].
pub type TraceRecord = popk_trace::Uop<Insn>;

/// Aggregate statistics over an execution (feeds Table 1's instruction-mix
/// columns).
#[derive(Clone, Copy, Default, Debug)]
pub struct ExecStats {
    /// Total instructions retired.
    pub total: u64,
    /// Loads retired.
    pub loads: u64,
    /// Stores retired.
    pub stores: u64,
    /// Conditional branches retired.
    pub cond_branches: u64,
    /// Conditional branches taken.
    pub taken_branches: u64,
    /// `beq`/`bne` retired (the early-resolvable types of §5.3).
    pub eq_ne_branches: u64,
    /// Unconditional jumps retired.
    pub jumps: u64,
    /// Integer multiply/divide retired.
    pub muldiv: u64,
    /// Floating-point ops retired.
    pub fp: u64,
}

impl ExecStats {
    /// Record one retired instruction.
    pub fn record(&mut self, rec: &TraceRecord) {
        self.total += 1;
        match rec.insn.op().class() {
            OpClass::Load => self.loads += 1,
            OpClass::Store => self.stores += 1,
            OpClass::Branch => {
                self.cond_branches += 1;
                if rec.taken {
                    self.taken_branches += 1;
                }
                if rec
                    .insn
                    .op()
                    .branch_cond()
                    .is_some_and(|c| c.early_resolvable())
                {
                    self.eq_ne_branches += 1;
                }
            }
            OpClass::Jump => self.jumps += 1,
            OpClass::MulDiv => self.muldiv += 1,
            OpClass::Fp => self.fp += 1,
            _ => {}
        }
    }

    /// Fraction of retired instructions that are loads.
    pub fn load_fraction(&self) -> f64 {
        self.loads as f64 / self.total.max(1) as f64
    }

    /// Fraction of retired instructions that are stores.
    pub fn store_fraction(&self) -> f64 {
        self.stores as f64 / self.total.max(1) as f64
    }

    /// Fraction of retired instructions that are conditional branches.
    pub fn branch_fraction(&self) -> f64 {
        self.cond_branches as f64 / self.total.max(1) as f64
    }
}

/// Streaming trace iterator over a [`Machine`].
///
/// Yields at most `limit` records, stopping early at program exit. Errors
/// (unmapped PC, misaligned access) surface as a final `Err` item.
pub struct Tracer<'m> {
    machine: &'m mut Machine,
    remaining: u64,
    done: bool,
}

impl<'m> Tracer<'m> {
    pub(crate) fn new(machine: &'m mut Machine, limit: u64) -> Self {
        Tracer {
            machine,
            remaining: limit,
            done: false,
        }
    }
}

impl Iterator for Tracer<'_> {
    type Item = Result<TraceRecord, EmuError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done || self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        match self.machine.step_record() {
            Ok(StepEvent::Retired(rec)) => Some(Ok(rec)),
            Ok(StepEvent::Exited(_)) => {
                self.done = true;
                None
            }
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}
