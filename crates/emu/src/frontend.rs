//! The PISA [`Frontend`]: the functional emulator behind the
//! ISA-neutral micro-op boundary.
//!
//! [`PisaFrontend`] is an owning twin of [`crate::Tracer`] (identical
//! iteration semantics) that additionally provides a [`PisaChecker`] —
//! a second, independent [`Machine`] replaying the same program in
//! lockstep with the timing core's commit stream, exactly as the
//! commit-time oracle has always worked for PISA.

use crate::machine::{Machine, StepEvent};
use crate::trace::TraceRecord;
use popk_isa::{Insn, Program};
use popk_trace::{
    ArchSnapshot, CheckpointSource, CommitChecker, EmuError, Frontend, LockstepMismatch,
};

/// A self-contained PISA trace producer: owns its [`Machine`], yields at
/// most `limit` retired records, stops at program exit, and surfaces a
/// machine fault as one final `Err`.
pub struct PisaFrontend {
    machine: Machine,
    program: Program,
    remaining: u64,
    done: bool,
}

impl PisaFrontend {
    /// A frontend executing `program` for up to `limit` instructions.
    pub fn new(program: &Program, limit: u64) -> PisaFrontend {
        PisaFrontend {
            machine: Machine::new(program),
            program: program.clone(),
            remaining: limit,
            done: false,
        }
    }
}

impl Iterator for PisaFrontend {
    type Item = Result<TraceRecord, EmuError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done || self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        match self.machine.step_record() {
            Ok(StepEvent::Retired(rec)) => Some(Ok(rec)),
            Ok(StepEvent::Exited(_)) => {
                self.done = true;
                None
            }
            Err(e) => {
                self.done = true;
                Some(Err(e))
            }
        }
    }
}

impl Frontend<Insn> for PisaFrontend {
    fn isa(&self) -> &'static str {
        "pisa"
    }

    fn checker(&self) -> Option<Box<dyn CommitChecker<Insn>>> {
        Some(Box::new(PisaChecker::new(&self.program)))
    }

    fn checkpoint_source(&self) -> Option<Box<dyn CheckpointSource<Insn>>> {
        Some(Box::new(PisaChecker::new(&self.program)))
    }
}

/// An independent reference machine verifying a commit stream via
/// [`Machine::verify_step`].
pub struct PisaChecker {
    machine: Machine,
}

impl PisaChecker {
    /// A checker replaying `program` from its entry point.
    pub fn new(program: &Program) -> PisaChecker {
        PisaChecker {
            machine: Machine::new(program),
        }
    }
}

impl CommitChecker<Insn> for PisaChecker {
    fn verify(&mut self, claim: &TraceRecord) -> Result<(), LockstepMismatch> {
        self.machine.verify_step(claim)
    }
}

impl CheckpointSource<Insn> for PisaChecker {
    fn snapshot(&self) -> ArchSnapshot {
        self.machine.snapshot()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popk_isa::asm::assemble;

    const PROG: &str = r#"
        .text
        main:
            li r8, 3
            addu r9, r8, r8
            li r2, 0
            syscall
    "#;

    #[test]
    fn frontend_matches_tracer() {
        let p = assemble(PROG).unwrap();
        let fe: Vec<TraceRecord> = PisaFrontend::new(&p, 1_000).map(|r| r.unwrap()).collect();
        let mut m = Machine::new(&p);
        let tr: Vec<TraceRecord> = m.trace(1_000).map(|r| r.unwrap()).collect();
        assert_eq!(fe.len(), tr.len());
        for (a, b) in fe.iter().zip(&tr) {
            assert_eq!(a.pc, b.pc);
            assert_eq!(a.insn, b.insn);
            assert_eq!(a.results, b.results);
            assert_eq!(a.next_pc, b.next_pc);
        }
    }

    #[test]
    fn checker_locksteps_and_flags_corruption() {
        let p = assemble(PROG).unwrap();
        let fe = PisaFrontend::new(&p, 1_000);
        let mut checker = fe.checker().expect("pisa always has a checker");
        let recs: Vec<TraceRecord> = fe.map(|r| r.unwrap()).collect();
        for rec in &recs {
            checker.verify(rec).unwrap();
        }
        let mut checker = PisaFrontend::new(&p, 1_000).checker().unwrap();
        let mut bad = recs[1];
        bad.results[0] ^= 1;
        checker.verify(&recs[0]).unwrap();
        let err = checker.verify(&bad).unwrap_err();
        assert_eq!(err.field, "dest0");
    }
}
