//! Sparse paged memory.

use std::cell::Cell;
use std::collections::HashMap;
use std::hash::BuildHasherDefault;

const PAGE_SHIFT: u32 = 12;
const PAGE_SIZE: usize = 1 << PAGE_SHIFT;
const PAGE_MASK: u32 = (PAGE_SIZE as u32) - 1;

/// Page-number sentinel for an empty translation cache: no valid page
/// number reaches it (32-bit addresses leave only 20 page bits).
const NO_PAGE: u32 = u32::MAX;

/// Multiplicative hasher for page numbers. Page-number keys are single
/// `u32`s with well-distributed low bits, so one Fibonacci multiply
/// replaces SipHash on the emulator's per-access path.
#[derive(Default)]
struct PageHasher(u64);

impl std::hash::Hasher for PageHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.0 = (n as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

/// A sparse, little-endian, byte-addressable 32-bit memory.
///
/// Pages are allocated on first touch (reads of untouched memory return
/// zero without allocating), so a 2 GiB address space costs only what the
/// program actually uses. All multi-byte accesses require natural
/// alignment, matching the ISA's load/store semantics.
///
/// Page frames live in a flat vector; the page-number → frame index map
/// is consulted only on a translation-cache miss (accesses cluster on
/// one page, so the common case is a single compare).
#[derive(Clone)]
pub struct Memory {
    frames: Vec<Box<[u8; PAGE_SIZE]>>,
    index: HashMap<u32, u32, BuildHasherDefault<PageHasher>>,
    /// Last translation: (page number, frame index).
    last: Cell<(u32, u32)>,
}

impl Default for Memory {
    fn default() -> Memory {
        Memory {
            frames: Vec::new(),
            index: HashMap::default(),
            last: Cell::new((NO_PAGE, 0)),
        }
    }
}

impl Memory {
    /// Empty memory.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Number of resident (touched-by-write) pages.
    pub fn resident_pages(&self) -> usize {
        self.frames.len()
    }

    /// Frame index of page `pn`, if resident (refreshes the cache).
    #[inline]
    fn frame_of(&self, pn: u32) -> Option<u32> {
        let (cached_pn, cached_fi) = self.last.get();
        if cached_pn == pn {
            return Some(cached_fi);
        }
        let fi = *self.index.get(&pn)?;
        self.last.set((pn, fi));
        Some(fi)
    }

    #[inline]
    fn page(&self, addr: u32) -> Option<&[u8; PAGE_SIZE]> {
        let fi = self.frame_of(addr >> PAGE_SHIFT)?;
        Some(&self.frames[fi as usize])
    }

    #[inline]
    fn page_mut(&mut self, addr: u32) -> &mut [u8; PAGE_SIZE] {
        let pn = addr >> PAGE_SHIFT;
        let fi = match self.frame_of(pn) {
            Some(fi) => fi,
            None => {
                let fi = self.frames.len() as u32;
                self.frames.push(Box::new([0; PAGE_SIZE]));
                self.index.insert(pn, fi);
                self.last.set((pn, fi));
                fi
            }
        };
        &mut self.frames[fi as usize]
    }

    /// Read one byte.
    #[inline]
    pub fn read_u8(&self, addr: u32) -> u8 {
        self.page(addr)
            .map_or(0, |p| p[(addr & PAGE_MASK) as usize])
    }

    /// Write one byte.
    #[inline]
    pub fn write_u8(&mut self, addr: u32, value: u8) {
        self.page_mut(addr)[(addr & PAGE_MASK) as usize] = value;
    }

    /// Read a little-endian halfword. The address must be 2-aligned (the
    /// machine validates before calling; this is a debug assertion here).
    #[inline]
    pub fn read_u16(&self, addr: u32) -> u16 {
        debug_assert_eq!(addr % 2, 0);
        u16::from_le_bytes([self.read_u8(addr), self.read_u8(addr + 1)])
    }

    /// Write a little-endian halfword.
    #[inline]
    pub fn write_u16(&mut self, addr: u32, value: u16) {
        debug_assert_eq!(addr % 2, 0);
        let [a, b] = value.to_le_bytes();
        self.write_u8(addr, a);
        self.write_u8(addr + 1, b);
    }

    /// Read a little-endian word. A word never straddles a page (pages are
    /// 4 KiB and the address is 4-aligned), so this is a single page probe.
    #[inline]
    pub fn read_u32(&self, addr: u32) -> u32 {
        debug_assert_eq!(addr % 4, 0);
        match self.page(addr) {
            Some(p) => {
                let off = (addr & PAGE_MASK) as usize;
                u32::from_le_bytes([p[off], p[off + 1], p[off + 2], p[off + 3]])
            }
            None => 0,
        }
    }

    /// Write a little-endian word.
    #[inline]
    pub fn write_u32(&mut self, addr: u32, value: u32) {
        debug_assert_eq!(addr % 4, 0);
        let off = (addr & PAGE_MASK) as usize;
        self.page_mut(addr)[off..off + 4].copy_from_slice(&value.to_le_bytes());
    }

    /// Bulk-load `bytes` at `addr` (used for program images).
    pub fn load(&mut self, addr: u32, bytes: &[u8]) {
        for (i, &b) in bytes.iter().enumerate() {
            self.write_u8(addr + i as u32, b);
        }
    }

    /// Copy `len` bytes starting at `addr` into a fresh vector.
    pub fn dump(&self, addr: u32, len: usize) -> Vec<u8> {
        (0..len).map(|i| self.read_u8(addr + i as u32)).collect()
    }

    /// Every resident page as `(base address, bytes)`, sorted by base.
    ///
    /// The frame vector's order reflects first-touch history, which two
    /// equal memory states need not share, so snapshot serialization
    /// sorts by page number: equal states yield equal page lists.
    pub fn pages(&self) -> Vec<(u32, &[u8; PAGE_SIZE])> {
        let mut out: Vec<(u32, &[u8; PAGE_SIZE])> = self
            .index
            .iter()
            .map(|(&pn, &fi)| (pn << PAGE_SHIFT, &*self.frames[fi as usize]))
            .collect();
        out.sort_unstable_by_key(|&(base, _)| base);
        out
    }

    /// Drop every resident page, returning the memory to its empty
    /// (all-zero) state.
    pub fn clear(&mut self) {
        self.frames.clear();
        self.index.clear();
        self.last.set((NO_PAGE, 0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_fill_and_roundtrip() {
        let mut m = Memory::new();
        assert_eq!(m.read_u32(0x1000_0000), 0);
        assert_eq!(m.resident_pages(), 0); // reads don't allocate
        m.write_u32(0x1000_0000, 0xdead_beef);
        assert_eq!(m.read_u32(0x1000_0000), 0xdead_beef);
        assert_eq!(m.read_u8(0x1000_0000), 0xef); // little-endian
        assert_eq!(m.read_u8(0x1000_0003), 0xde);
        assert_eq!(m.resident_pages(), 1);
    }

    #[test]
    fn page_boundaries() {
        let mut m = Memory::new();
        m.write_u16(0x0fff_fffe, 0xabcd); // crosses into next page via bytes
        assert_eq!(m.read_u8(0x0fff_fffe), 0xcd);
        assert_eq!(m.read_u8(0x0fff_ffff), 0xab);
        assert_eq!(m.read_u16(0x0fff_fffe), 0xabcd);
        assert_eq!(m.resident_pages(), 1);
    }

    #[test]
    fn bulk_load_dump() {
        let mut m = Memory::new();
        let data: Vec<u8> = (0..=255).collect();
        m.load(0x2000_0ff0, &data); // spans a page boundary
        assert_eq!(m.dump(0x2000_0ff0, 256), data);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn pages_sorted_regardless_of_touch_order() {
        // Two memories with the same contents but opposite touch order
        // must serialize to the same page list.
        let mut a = Memory::new();
        a.write_u32(0x7000_0000, 7);
        a.write_u32(0x0040_0000, 4);
        let mut b = Memory::new();
        b.write_u32(0x0040_0000, 4);
        b.write_u32(0x7000_0000, 7);
        let pa: Vec<(u32, Vec<u8>)> = a.pages().iter().map(|&(p, d)| (p, d.to_vec())).collect();
        let pb: Vec<(u32, Vec<u8>)> = b.pages().iter().map(|&(p, d)| (p, d.to_vec())).collect();
        assert_eq!(pa, pb);
        assert_eq!(pa[0].0, 0x0040_0000);
        assert_eq!(pa[1].0, 0x7000_0000);

        a.clear();
        assert_eq!(a.resident_pages(), 0);
        assert_eq!(a.read_u32(0x0040_0000), 0);
    }

    #[test]
    fn distant_addresses_are_independent() {
        let mut m = Memory::new();
        m.write_u32(0x0040_0000, 1);
        m.write_u32(0x7fff_fff0, 2);
        assert_eq!(m.read_u32(0x0040_0000), 1);
        assert_eq!(m.read_u32(0x7fff_fff0), 2);
    }
}
