//! The architectural interpreter.

use crate::mem::Memory;
use crate::trace::{ExecStats, TraceRecord, Tracer};
use popk_isa::{Insn, MemWidth, Op, Program, Reg, DATA_BASE, STACK_TOP};

pub use popk_trace::{EmuError, LockstepMismatch};

/// Result of a single [`Machine::step_record`].
#[derive(Clone, Copy, Debug)]
pub enum StepEvent {
    /// An instruction retired (this includes the final exit `syscall`).
    Retired(TraceRecord),
    /// The machine has already exited with this code.
    Exited(u32),
}

/// Syscall services, selected by `v0`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Syscall {
    /// `v0 = 0`: terminate with exit code 0.
    Exit,
    /// `v0 = 1`: append `a0` (as `i32`) to the integer output channel.
    PrintInt,
    /// `v0 = 2`: append the low byte of `a0` to the byte output channel.
    PrintChar,
    /// `v0 = 3`: terminate with the exit code in `a0`.
    ExitCode,
}

impl Syscall {
    fn from_v0(v: u32) -> Option<Syscall> {
        match v {
            0 => Some(Syscall::Exit),
            1 => Some(Syscall::PrintInt),
            2 => Some(Syscall::PrintChar),
            3 => Some(Syscall::ExitCode),
            _ => None,
        }
    }
}

/// Architectural machine state and interpreter.
pub struct Machine {
    regs: [u32; Reg::COUNT],
    pc: u32,
    /// The flat memory image (data segment pre-loaded, stack on demand).
    pub mem: Memory,
    program: Program,
    exited: Option<u32>,
    icount: u64,
    out_ints: Vec<i32>,
    out_bytes: Vec<u8>,
    stats: ExecStats,
}

impl Machine {
    /// Build a machine with `program` loaded: data segment at `DATA_BASE`,
    /// `sp` at [`STACK_TOP`], PC at the entry point.
    pub fn new(program: &Program) -> Machine {
        let mut mem = Memory::new();
        mem.load(DATA_BASE, &program.data);
        let mut regs = [0u32; Reg::COUNT];
        regs[Reg::SP.index()] = STACK_TOP;
        Machine {
            regs,
            pc: program.entry,
            mem,
            program: program.clone(),
            exited: None,
            icount: 0,
            out_ints: Vec::new(),
            out_bytes: Vec::new(),
            stats: ExecStats::default(),
        }
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Read an architectural register.
    #[inline]
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.index()]
    }

    /// Write an architectural register (`r0` writes are discarded).
    #[inline]
    pub fn set_reg(&mut self, r: Reg, v: u32) {
        if !r.is_zero() {
            self.regs[r.index()] = v;
        }
    }

    /// Instructions retired so far.
    pub fn icount(&self) -> u64 {
        self.icount
    }

    /// Exit code, if the program has exited.
    pub fn exit_code(&self) -> Option<u32> {
        self.exited
    }

    /// Integers written via the `PrintInt` syscall.
    pub fn output_ints(&self) -> &[i32] {
        &self.out_ints
    }

    /// Bytes written via the `PrintChar` syscall.
    pub fn output_bytes(&self) -> &[u8] {
        &self.out_bytes
    }

    /// Execution statistics accumulated so far.
    pub fn stats(&self) -> &ExecStats {
        &self.stats
    }

    /// Capture the architectural state — registers, PC, retirement
    /// count, resident memory (sorted pages), output channels, exit
    /// status — as an ISA-neutral [`popk_trace::ArchSnapshot`].
    ///
    /// [`ExecStats`] is *not* captured: it is a derived summary of the
    /// retired stream, not architectural state, and a restored machine
    /// restarts it from zero.
    pub fn snapshot(&self) -> popk_trace::ArchSnapshot {
        popk_trace::ArchSnapshot {
            icount: self.icount,
            pc: self.pc,
            regs: self.regs.to_vec(),
            pages: self
                .mem
                .pages()
                .into_iter()
                .map(|(base, data)| popk_trace::SnapshotPage {
                    base,
                    data: data.to_vec(),
                })
                .collect(),
            out_ints: self.out_ints.clone(),
            out_bytes: self.out_bytes.clone(),
            exited: self.exited,
        }
    }

    /// Overwrite this machine's architectural state from a snapshot
    /// (the inverse of [`Machine::snapshot`]): registers, PC, icount,
    /// memory, output channels, and exit status are replaced; the
    /// loaded program and [`ExecStats`] are untouched.
    ///
    /// The snapshot must come from a machine running the same program —
    /// nothing here can validate that; [`Machine::verify_step`] lockstep
    /// after restore is the proof (see the checkpoint tests).
    pub fn restore(&mut self, s: &popk_trace::ArchSnapshot) {
        self.regs = [0u32; Reg::COUNT];
        for (slot, &v) in self.regs.iter_mut().zip(&s.regs) {
            *slot = v;
        }
        self.pc = s.pc;
        self.icount = s.icount;
        self.exited = s.exited;
        self.mem.clear();
        for page in &s.pages {
            self.mem.load(page.base, &page.data);
        }
        self.out_ints = s.out_ints.clone();
        self.out_bytes = s.out_bytes.clone();
    }

    /// Run up to `limit` instructions; returns the exit code if the program
    /// exited within the budget.
    pub fn run(&mut self, limit: u64) -> Result<Option<u32>, EmuError> {
        for _ in 0..limit {
            match self.step_record()? {
                StepEvent::Retired(_) => {}
                StepEvent::Exited(code) => return Ok(Some(code)),
            }
        }
        Ok(self.exited)
    }

    /// A streaming trace iterator retiring up to `limit` instructions.
    pub fn trace(&mut self, limit: u64) -> Tracer<'_> {
        Tracer::new(self, limit)
    }

    /// Step-level lockstep verification: execute one instruction on
    /// *this* machine and cross-check the claimed record `claim` —
    /// instruction identity, destination register values, effective
    /// address, store data, and branch outcome — returning the first
    /// diverging field.
    ///
    /// This is the primitive behind the timing model's commit-time
    /// oracle: retire-order claims from a pipeline are fed to a second,
    /// independent machine, so any corruption of architectural state in
    /// flight surfaces as a [`LockstepMismatch`] instead of silently
    /// wrong statistics. If this machine itself faults or has exited,
    /// that too is a mismatch (fields `"emulation"` / `"exited"`).
    pub fn verify_step(&mut self, claim: &TraceRecord) -> Result<(), LockstepMismatch> {
        let mm = |field, expected, got| {
            Err(LockstepMismatch {
                pc: claim.pc,
                field,
                expected,
                got,
            })
        };
        let rec = match self.step_record() {
            Ok(StepEvent::Retired(r)) => r,
            Ok(StepEvent::Exited(code)) => return mm("exited", code, claim.pc),
            Err(e) => return mm("emulation", e.pc(), claim.pc),
        };
        if rec.pc != claim.pc {
            return mm("pc", rec.pc, claim.pc);
        }
        if rec.insn != claim.insn {
            return mm(
                "insn",
                popk_isa::encode(&rec.insn),
                popk_isa::encode(&claim.insn),
            );
        }
        for (i, field) in ["dest0", "dest1"].into_iter().enumerate() {
            if i < rec.insn.defs().len() && rec.results[i] != claim.results[i] {
                return mm(field, rec.results[i], claim.results[i]);
            }
        }
        if rec.is_mem() && rec.ea != claim.ea {
            return mm("ea", rec.ea, claim.ea);
        }
        if rec.insn.op().is_store() {
            let data = rec.src_val(rec.insn.rt());
            if data != claim.src_val(claim.insn.rt()) {
                return mm(
                    "store_data",
                    data.unwrap_or(0),
                    claim.src_val(claim.insn.rt()).unwrap_or(0),
                );
            }
        }
        if rec.insn.op().is_control() {
            if rec.taken != claim.taken {
                return mm("taken", rec.taken as u32, claim.taken as u32);
            }
            if rec.next_pc != claim.next_pc {
                return mm("next_pc", rec.next_pc, claim.next_pc);
            }
        }
        Ok(())
    }

    /// Execute one instruction, producing its trace record.
    pub fn step_record(&mut self) -> Result<StepEvent, EmuError> {
        if let Some(code) = self.exited {
            return Ok(StepEvent::Exited(code));
        }
        let pc = self.pc;
        let insn = *self.program.fetch(pc).ok_or(EmuError::UnmappedPc { pc })?;

        let mut src_vals = [0u32; 2];
        for (i, r) in insn.uses().iter().enumerate() {
            src_vals[i] = self.reg(r);
        }

        let mut ea = 0u32;
        let mut taken = false;
        let mut next_pc = pc.wrapping_add(4);

        let op = insn.op();
        let rs_v = self.reg(insn.rs());
        let rt_v = self.reg(insn.rt());

        match op {
            // ---- integer ALU (wrapping; PISA has no overflow traps) -----
            Op::Add | Op::Addu => self.set_reg(insn.rd(), rs_v.wrapping_add(rt_v)),
            Op::Sub | Op::Subu => self.set_reg(insn.rd(), rs_v.wrapping_sub(rt_v)),
            Op::Slt => self.set_reg(insn.rd(), ((rs_v as i32) < (rt_v as i32)) as u32),
            Op::Sltu => self.set_reg(insn.rd(), (rs_v < rt_v) as u32),
            Op::And => self.set_reg(insn.rd(), rs_v & rt_v),
            Op::Or => self.set_reg(insn.rd(), rs_v | rt_v),
            Op::Xor => self.set_reg(insn.rd(), rs_v ^ rt_v),
            Op::Nor => self.set_reg(insn.rd(), !(rs_v | rt_v)),
            Op::Addi | Op::Addiu => self.set_reg(insn.rd(), rs_v.wrapping_add(insn.imm() as u32)),
            Op::Slti => self.set_reg(insn.rd(), ((rs_v as i32) < insn.imm()) as u32),
            Op::Sltiu => self.set_reg(insn.rd(), (rs_v < insn.imm() as u32) as u32),
            Op::Andi => self.set_reg(insn.rd(), rs_v & insn.imm() as u32),
            Op::Ori => self.set_reg(insn.rd(), rs_v | insn.imm() as u32),
            Op::Xori => self.set_reg(insn.rd(), rs_v ^ insn.imm() as u32),
            Op::Lui => self.set_reg(insn.rd(), insn.imm() as u32),

            // ---- shifts -------------------------------------------------
            Op::Sll => self.set_reg(insn.rd(), rt_v << (insn.imm() as u32 & 31)),
            Op::Srl => self.set_reg(insn.rd(), rt_v >> (insn.imm() as u32 & 31)),
            Op::Sra => self.set_reg(
                insn.rd(),
                ((rt_v as i32) >> (insn.imm() as u32 & 31)) as u32,
            ),
            Op::Sllv => self.set_reg(insn.rd(), rt_v << (rs_v & 31)),
            Op::Srlv => self.set_reg(insn.rd(), rt_v >> (rs_v & 31)),
            Op::Srav => self.set_reg(insn.rd(), ((rt_v as i32) >> (rs_v & 31)) as u32),

            // ---- multiply / divide --------------------------------------
            Op::Mult => {
                let p = (rs_v as i32 as i64).wrapping_mul(rt_v as i32 as i64) as u64;
                self.set_reg(Reg::HI, (p >> 32) as u32);
                self.set_reg(Reg::LO, p as u32);
            }
            Op::Multu => {
                let p = (rs_v as u64) * (rt_v as u64);
                self.set_reg(Reg::HI, (p >> 32) as u32);
                self.set_reg(Reg::LO, p as u32);
            }
            Op::Div => {
                // Divide-by-zero and i32::MIN / -1 produce the MIPS
                // "boundedly undefined" convention: LO = all-ones / MIN.
                let (s, t) = (rs_v as i32, rt_v as i32);
                let (q, r) = if t == 0 {
                    (-1i32, s)
                } else if s == i32::MIN && t == -1 {
                    (i32::MIN, 0)
                } else {
                    (s / t, s % t)
                };
                self.set_reg(Reg::LO, q as u32);
                self.set_reg(Reg::HI, r as u32);
            }
            Op::Divu => {
                let (q, r) = match (rs_v.checked_div(rt_v), rs_v.checked_rem(rt_v)) {
                    (Some(q), Some(r)) => (q, r),
                    _ => (u32::MAX, rs_v),
                };
                self.set_reg(Reg::LO, q);
                self.set_reg(Reg::HI, r);
            }
            Op::Mfhi => self.set_reg(insn.rd(), self.reg(Reg::HI)),
            Op::Mflo => self.set_reg(insn.rd(), self.reg(Reg::LO)),
            Op::Mthi => self.set_reg(Reg::HI, rs_v),
            Op::Mtlo => self.set_reg(Reg::LO, rs_v),

            // ---- floating point (GPR bit patterns as f32) ---------------
            Op::AddS => self.fp2(insn, |a, b| a + b),
            Op::SubS => self.fp2(insn, |a, b| a - b),
            Op::MulS => self.fp2(insn, |a, b| a * b),
            Op::DivS => self.fp2(insn, |a, b| a / b),
            Op::SqrtS => {
                let v = f32::from_bits(rs_v).sqrt();
                self.set_reg(insn.rd(), v.to_bits());
            }
            Op::CvtSW => self.set_reg(insn.rd(), (rs_v as i32 as f32).to_bits()),
            Op::CvtWS => {
                let v = f32::from_bits(rs_v);
                let clamped = if v.is_nan() { 0 } else { v as i32 };
                self.set_reg(insn.rd(), clamped as u32);
            }

            // ---- memory -------------------------------------------------
            Op::Lb | Op::Lbu | Op::Lh | Op::Lhu | Op::Lw => {
                ea = rs_v.wrapping_add(insn.imm() as u32);
                let width = op
                    .mem_width()
                    .unwrap_or_else(|| unreachable!("load {insn} at PC {pc:#010x} has no width"));
                self.check_align(pc, ea, width)?;
                let v = match width {
                    MemWidth::B => self.mem.read_u8(ea) as i8 as i32 as u32,
                    MemWidth::Bu => self.mem.read_u8(ea) as u32,
                    MemWidth::H => self.mem.read_u16(ea) as i16 as i32 as u32,
                    MemWidth::Hu => self.mem.read_u16(ea) as u32,
                    MemWidth::W => self.mem.read_u32(ea),
                };
                self.set_reg(insn.rd(), v);
            }
            Op::Sb | Op::Sh | Op::Sw => {
                ea = rs_v.wrapping_add(insn.imm() as u32);
                let width = op
                    .mem_width()
                    .unwrap_or_else(|| unreachable!("store {insn} at PC {pc:#010x} has no width"));
                self.check_align(pc, ea, width)?;
                match width {
                    MemWidth::B | MemWidth::Bu => self.mem.write_u8(ea, rt_v as u8),
                    MemWidth::H | MemWidth::Hu => self.mem.write_u16(ea, rt_v as u16),
                    MemWidth::W => self.mem.write_u32(ea, rt_v),
                }
            }

            // ---- control ------------------------------------------------
            Op::Beq | Op::Bne | Op::Blez | Op::Bgtz | Op::Bltz | Op::Bgez => {
                let cond = op.branch_cond().unwrap_or_else(|| {
                    unreachable!("branch {insn} at PC {pc:#010x} has no condition")
                });
                taken = cond.eval(rs_v, rt_v);
                if taken {
                    next_pc = pc
                        .wrapping_add(4)
                        .wrapping_add((insn.imm() as u32).wrapping_mul(4));
                }
            }
            Op::J => {
                taken = true;
                next_pc = (insn.imm() as u32) << 2;
            }
            Op::Jal => {
                taken = true;
                self.set_reg(Reg::RA, pc.wrapping_add(4));
                next_pc = (insn.imm() as u32) << 2;
            }
            Op::Jr => {
                taken = true;
                next_pc = rs_v;
            }
            Op::Jalr => {
                taken = true;
                self.set_reg(insn.rd(), pc.wrapping_add(4));
                next_pc = rs_v;
            }

            // ---- system -------------------------------------------------
            Op::Syscall => {
                let service = self.reg(Reg::V0);
                let a0 = self.reg(Reg::A0);
                match Syscall::from_v0(service) {
                    Some(Syscall::Exit) => self.exited = Some(0),
                    Some(Syscall::PrintInt) => self.out_ints.push(a0 as i32),
                    Some(Syscall::PrintChar) => self.out_bytes.push(a0 as u8),
                    Some(Syscall::ExitCode) => self.exited = Some(a0),
                    None => return Err(EmuError::BadSyscall { pc, service }),
                }
            }
            Op::Break => return Err(EmuError::Break { pc }),
        }

        let mut results = [0u32; 2];
        for (i, r) in insn.defs().iter().enumerate() {
            results[i] = self.reg(r);
        }

        self.pc = next_pc;
        self.icount += 1;
        let rec = TraceRecord {
            pc,
            insn,
            src_vals,
            results,
            ea,
            taken,
            next_pc,
        };
        self.stats.record(&rec);
        Ok(StepEvent::Retired(rec))
    }

    fn fp2(&mut self, insn: Insn, f: impl Fn(f32, f32) -> f32) {
        let a = f32::from_bits(self.reg(insn.rs()));
        let b = f32::from_bits(self.reg(insn.rt()));
        self.set_reg(insn.rd(), f(a, b).to_bits());
    }

    fn check_align(&self, pc: u32, addr: u32, width: MemWidth) -> Result<(), EmuError> {
        if !addr.is_multiple_of(width.bytes()) {
            Err(EmuError::Misaligned { pc, addr })
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popk_isa::asm::assemble;

    fn run_asm(src: &str) -> Machine {
        let p = assemble(src).unwrap();
        let mut m = Machine::new(&p);
        let code = m.run(10_000_000).unwrap();
        assert_eq!(code, Some(0), "program did not exit cleanly");
        m
    }

    #[test]
    fn sum_loop() {
        let m = run_asm(
            r#"
            .text
            main:
                li r8, 0        # sum
                li r9, 10       # i
            loop:
                addu r8, r8, r9
                addiu r9, r9, -1
                bne r9, r0, loop
                move r4, r8
                li r2, 1
                syscall         # print sum
                li r2, 0
                syscall
            "#,
        );
        assert_eq!(m.output_ints(), &[55]);
    }

    #[test]
    fn memory_widths_and_sign_extension() {
        let m = run_asm(
            r#"
            .data
            b:  .byte 0xff, 0x7f
            h:  .half 0x8000
            w:  .word 0x12345678
            .text
            main:
                la r8, b
                lb  r4, 0(r8)      # -1
                li r2, 1
                syscall
                lbu r4, 0(r8)      # 255
                syscall
                lb  r4, 1(r8)      # 127
                syscall
                la r8, h
                lh  r4, 0(r8)      # -32768
                syscall
                lhu r4, 0(r8)      # 32768
                syscall
                la r8, w
                lw  r4, 0(r8)
                syscall
                sb r4, 0(r8)
                lbu r4, 0(r8)      # 0x78
                syscall
                li r2, 0
                syscall
            "#,
        );
        assert_eq!(
            m.output_ints(),
            &[-1, 255, 127, -32768, 32768, 0x12345678, 0x78]
        );
    }

    #[test]
    fn mult_div_hi_lo() {
        let m = run_asm(
            r#"
            .text
            main:
                li r8, 100000
                li r9, 100000
                multu r8, r9       # 10^10 = 0x2_540B_E400
                mfhi r4
                li r2, 1
                syscall            # 2
                mflo r4
                syscall            # 0x540BE400
                li r8, -7
                li r9, 2
                div r8, r9
                mflo r4
                syscall            # -3 (trunc toward zero)
                mfhi r4
                syscall            # -1
                li r2, 0
                syscall
            "#,
        );
        assert_eq!(m.output_ints(), &[2, 0x540B_E400u32 as i32, -3, -1]);
    }

    #[test]
    fn div_by_zero_convention() {
        let m = run_asm(
            r#"
            .text
            main:
                li r8, 5
                div r8, r0
                mflo r4
                li r2, 1
                syscall       # -1
                divu r8, r0
                mflo r4
                syscall       # u32::MAX as i32 = -1
                li r2, 0
                syscall
            "#,
        );
        assert_eq!(m.output_ints(), &[-1, -1]);
    }

    #[test]
    fn branch_taxonomy() {
        let m = run_asm(
            r#"
            .text
            main:
                li r8, -5
                li r4, 0
                bltz r8, a      # taken
                li r4, 99
            a:  li r2, 1
                syscall         # 0
                bgez r8, b      # not taken
                li r4, 1
            b:  syscall         # 1
                li r4, 2
                blez r0, c      # taken (0 <= 0)
                li r4, 98
            c:  syscall         # 2
                li r2, 0
                syscall
            "#,
        );
        assert_eq!(m.output_ints(), &[0, 1, 2]);
    }

    #[test]
    fn calls_and_returns() {
        let m = run_asm(
            r#"
            .text
            main:
                li r4, 7
                jal double
                li r2, 1
                syscall          # 14
                li r2, 0
                syscall
            double:
                addu r4, r4, r4
                jr ra
            "#,
        );
        assert_eq!(m.output_ints(), &[14]);
    }

    #[test]
    fn fp_ops() {
        let m = run_asm(
            r#"
            .text
            main:
                li r8, 3
                li r9, 4
                cvt.s.w r8, r8
                cvt.s.w r9, r9
                mul.s r10, r8, r9     # 12.0
                add.s r10, r10, r8    # 15.0
                sqrt.s r11, r9        # 2.0
                div.s r10, r10, r11   # 7.5
                mul.s r10, r10, r11   # back to 15.0
                cvt.w.s r4, r10
                li r2, 1
                syscall
                li r2, 0
                syscall
            "#,
        );
        assert_eq!(m.output_ints(), &[15]);
    }

    #[test]
    fn misaligned_access_errors() {
        let p = assemble(
            r#"
            .text
            main:
                li r8, 0x10000001
                lw r9, 0(r8)
            "#,
        )
        .unwrap();
        let mut m = Machine::new(&p);
        let err = m.run(100).unwrap_err();
        assert!(matches!(
            err,
            EmuError::Misaligned {
                addr: 0x1000_0001,
                ..
            }
        ));
    }

    #[test]
    fn runaway_pc_errors() {
        let p = assemble(".text\nmain:\n  nop\n").unwrap();
        let mut m = Machine::new(&p);
        let err = m.run(100).unwrap_err();
        assert!(matches!(err, EmuError::UnmappedPc { .. }));
    }

    #[test]
    fn trace_records_carry_values() {
        let p = assemble(
            r#"
            .text
            main:
                li r8, 6
                li r9, 7
                addu r10, r8, r9
                sw r10, -4(sp)
                beq r10, r0, main
                li r2, 0
                syscall
            "#,
        )
        .unwrap();
        let mut m = Machine::new(&p);
        let recs: Vec<_> = m.trace(100).map(|r| r.unwrap()).collect();
        // li expands to lui+ori: addu is at index 4.
        let addu = recs
            .iter()
            .find(|r| r.insn.op() == Op::Addu && r.insn.rd() == Reg::gpr(10))
            .unwrap();
        assert_eq!(addu.src_vals, [6, 7]);
        assert_eq!(addu.results[0], 13);
        let sw = recs.iter().find(|r| r.insn.op() == Op::Sw).unwrap();
        assert_eq!(sw.ea, STACK_TOP - 4);
        assert_eq!(sw.src_val(Reg::gpr(10)), Some(13));
        let beq = recs.iter().find(|r| r.insn.op() == Op::Beq).unwrap();
        assert!(!beq.taken);
        // Trace ends at exit; stats know the mix.
        assert_eq!(m.stats().stores, 1);
        assert_eq!(m.stats().cond_branches, 1);
    }

    #[test]
    fn stats_fractions() {
        let m = run_asm(
            r#"
            .text
            main:
                lw r8, 0(sp)
                lw r9, 4(sp)
                sw r8, 8(sp)
                bne r8, r9, skip
            skip:
                li r2, 0
                syscall
            "#,
        );
        let s = m.stats();
        assert_eq!(s.loads, 2);
        assert_eq!(s.stores, 1);
        assert_eq!(s.cond_branches, 1);
        assert_eq!(s.eq_ne_branches, 1);
        assert!(s.load_fraction() > 0.0 && s.load_fraction() < 1.0);
    }

    #[test]
    fn snapshot_restore_locksteps_with_uninterrupted_run() {
        // A loop with memory traffic: run k steps, snapshot, restore into
        // a fresh machine, then both machines must retire identical
        // records forever after.
        let p = assemble(
            r#"
            .text
            main:
                li r8, 0          # i
                li r9, 40         # n
            loop:
                sw r8, -64(sp)
                lw r10, -64(sp)
                addu r11, r11, r10
                addiu r8, r8, 1
                bne r8, r9, loop
                addu r4, r0, r11
                li r2, 3
                syscall
            "#,
        )
        .unwrap();
        let mut live = Machine::new(&p);
        for _ in 0..37 {
            live.step_record().unwrap();
        }
        let snap = live.snapshot();
        assert_eq!(snap.icount, 37);
        assert!(snap.resident_bytes() > 0);

        let mut resumed = Machine::new(&p);
        resumed.restore(&snap);
        assert_eq!(resumed.snapshot().first_difference(&snap), None);

        loop {
            let a = live.step_record().unwrap();
            let b = resumed.step_record().unwrap();
            match (a, b) {
                (StepEvent::Retired(ra), StepEvent::Retired(rb)) => {
                    assert_eq!(ra.pc, rb.pc);
                    assert_eq!(ra.insn, rb.insn);
                    assert_eq!(ra.src_vals, rb.src_vals);
                    assert_eq!(ra.results, rb.results);
                    assert_eq!(ra.ea, rb.ea);
                    assert_eq!((ra.taken, ra.next_pc), (rb.taken, rb.next_pc));
                }
                (StepEvent::Exited(ca), StepEvent::Exited(cb)) => {
                    assert_eq!(ca, cb);
                    break;
                }
                other => panic!("machines diverged: {other:?}"),
            }
        }
        assert_eq!(live.snapshot().first_difference(&resumed.snapshot()), None);
    }
}
