//! A bit-sliced ALU: operations evaluated one slice at a time with
//! explicit inter-slice state.
//!
//! This mirrors the datapath of the paper's Figure 7/8: a slice-by-*n*
//! machine has *n* narrow ALUs, each computing one slice of the result per
//! stage. Arithmetic threads a carry bit between slices (Fig. 8b), logic
//! slices are fully independent (Fig. 8c), and shifts need cross-slice
//! communication, so they are evaluated against the full operands.

use crate::sliced::{SliceWidth, Sliced};

/// Operations the sliced ALU understands, grouped by inter-slice
/// dependence shape.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AluSliceOp {
    /// `a + b` (carry-chained).
    Add,
    /// `a - b` (carry-chained, implemented as `a + !b + 1`).
    Sub,
    /// `a & b` (independent).
    And,
    /// `a | b` (independent).
    Or,
    /// `a ^ b` (independent).
    Xor,
    /// `!(a | b)` (independent).
    Nor,
    /// Logical left shift by `b & 31` (cross-slice).
    Sll,
    /// Logical right shift by `b & 31` (cross-slice).
    Srl,
    /// Arithmetic right shift by `b & 31` (cross-slice).
    Sra,
    /// Signed set-less-than: carry-chained subtract, result determined by
    /// the final slice's sign/overflow.
    Slt,
    /// Unsigned set-less-than.
    Sltu,
}

impl AluSliceOp {
    /// Whether slices of this op can execute out of order with respect to
    /// each other (no inter-slice communication) — Fig. 8c.
    pub const fn slices_independent(self) -> bool {
        matches!(
            self,
            AluSliceOp::And | AluSliceOp::Or | AluSliceOp::Xor | AluSliceOp::Nor
        )
    }

    /// The full-width reference semantics.
    pub fn eval_full(self, a: u32, b: u32) -> u32 {
        match self {
            AluSliceOp::Add => a.wrapping_add(b),
            AluSliceOp::Sub => a.wrapping_sub(b),
            AluSliceOp::And => a & b,
            AluSliceOp::Or => a | b,
            AluSliceOp::Xor => a ^ b,
            AluSliceOp::Nor => !(a | b),
            AluSliceOp::Sll => a << (b & 31),
            AluSliceOp::Srl => a >> (b & 31),
            AluSliceOp::Sra => ((a as i32) >> (b & 31)) as u32,
            AluSliceOp::Slt => ((a as i32) < (b as i32)) as u32,
            AluSliceOp::Sltu => (a < b) as u32,
        }
    }
}

/// A bit-sliced ALU for a fixed [`SliceWidth`].
///
/// The [`SliceAlu::eval`] entry point produces the complete [`Sliced`]
/// result by invoking the per-slice circuit in dependence order, exactly as
/// the pipeline would. Per-slice pieces are also exposed
/// ([`SliceAlu::add_slice`], [`SliceAlu::logic_slice`]) so the timing model
/// can compute individual slices as they issue.
#[derive(Clone, Copy, Debug)]
pub struct SliceAlu {
    width: SliceWidth,
}

impl SliceAlu {
    /// An ALU sliced at `width`.
    pub fn new(width: SliceWidth) -> SliceAlu {
        SliceAlu { width }
    }

    /// The slicing in effect.
    pub fn width(&self) -> SliceWidth {
        self.width
    }

    /// One adder slice: `a_k + b_k + carry_in`, returning the slice result
    /// and the carry out of the slice (the Fig. 8b inter-slice edge).
    #[inline]
    pub fn add_slice(&self, a_k: u32, b_k: u32, carry_in: u32) -> (u32, u32) {
        debug_assert!(carry_in <= 1);
        let mask = self.width.mask();
        debug_assert_eq!(a_k & !mask, 0);
        debug_assert_eq!(b_k & !mask, 0);
        // Widen so the degenerate 32-bit slice doesn't overflow.
        let sum = a_k as u64 + b_k as u64 + carry_in as u64;
        ((sum as u32) & mask, ((sum >> self.width.bits()) & 1) as u32)
    }

    /// One logic slice (no inter-slice state).
    #[inline]
    pub fn logic_slice(&self, op: AluSliceOp, a_k: u32, b_k: u32) -> u32 {
        let mask = self.width.mask();
        match op {
            AluSliceOp::And => a_k & b_k,
            AluSliceOp::Or => a_k | b_k,
            AluSliceOp::Xor => a_k ^ b_k,
            AluSliceOp::Nor => !(a_k | b_k) & mask,
            _ => panic!("logic_slice called with non-logic op {op:?}"),
        }
    }

    /// Evaluate `op` slice by slice.
    ///
    /// Carry-chained ops walk slices low→high threading a carry; logic ops
    /// evaluate each slice independently (here in arbitrary order —
    /// hardware may reorder them); shifts and `slt`/`sltu` consume full
    /// operands (`slt` needs the final carry/sign, shifts cross slices).
    pub fn eval(&self, op: AluSliceOp, a: u32, b: u32) -> Sliced {
        let w = self.width;
        let sa = Sliced::split(a, w);
        let sb = Sliced::split(b, w);
        let mut out = Sliced::zero(w);
        match op {
            AluSliceOp::Add => {
                let mut carry = 0;
                for k in 0..w.count() {
                    let (s, c) = self.add_slice(sa.get(k), sb.get(k), carry);
                    out.set(k, s);
                    carry = c;
                }
            }
            AluSliceOp::Sub => {
                // a - b = a + !b + 1: invert the subtrahend slice-locally
                // and inject the +1 as the initial carry.
                let mut carry = 1;
                for k in 0..w.count() {
                    let nb = !sb.get(k) & w.mask();
                    let (s, c) = self.add_slice(sa.get(k), nb, carry);
                    out.set(k, s);
                    carry = c;
                }
            }
            AluSliceOp::And | AluSliceOp::Or | AluSliceOp::Xor | AluSliceOp::Nor => {
                // Independent: evaluate high-to-low to demonstrate order
                // freedom (Fig. 8c).
                for k in (0..w.count()).rev() {
                    out.set(k, self.logic_slice(op, sa.get(k), sb.get(k)));
                }
            }
            AluSliceOp::Sll
            | AluSliceOp::Srl
            | AluSliceOp::Sra
            | AluSliceOp::Slt
            | AluSliceOp::Sltu => {
                // Cross-slice / sign-dependent: needs the full operands.
                out = Sliced::split(op.eval_full(a, b), w);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popk_isa::rng::SplitMix64;

    const WIDTHS: [SliceWidth; 3] = [SliceWidth::W32, SliceWidth::W16, SliceWidth::W8];
    const OPS: [AluSliceOp; 11] = [
        AluSliceOp::Add,
        AluSliceOp::Sub,
        AluSliceOp::And,
        AluSliceOp::Or,
        AluSliceOp::Xor,
        AluSliceOp::Nor,
        AluSliceOp::Sll,
        AluSliceOp::Srl,
        AluSliceOp::Sra,
        AluSliceOp::Slt,
        AluSliceOp::Sltu,
    ];

    #[test]
    fn add_slice_carry_propagation() {
        let alu = SliceAlu::new(SliceWidth::W8);
        // 0xff + 0x01 = 0x00 carry 1.
        assert_eq!(alu.add_slice(0xff, 0x01, 0), (0x00, 1));
        assert_eq!(alu.add_slice(0xff, 0xff, 1), (0xff, 1));
        assert_eq!(alu.add_slice(0x10, 0x20, 0), (0x30, 0));
    }

    #[test]
    fn sub_via_complement() {
        let alu = SliceAlu::new(SliceWidth::W16);
        assert_eq!(alu.eval(AluSliceOp::Sub, 5, 7).join(), 5u32.wrapping_sub(7));
        assert_eq!(alu.eval(AluSliceOp::Sub, 0x0001_0000, 1).join(), 0xffff);
    }

    #[test]
    fn independence_of_logic_slices() {
        // Logic evaluated high-to-low must still match the reference.
        let alu = SliceAlu::new(SliceWidth::W8);
        assert_eq!(
            alu.eval(AluSliceOp::Nor, 0x0f0f_0f0f, 0x3030_3030).join(),
            !(0x0f0f_0f0fu32 | 0x3030_3030)
        );
    }

    /// An edge-biased operand stream: raw random words mixed with
    /// carry/shift corner values.
    fn operand_pairs(seed: u64, n: usize) -> impl Iterator<Item = (u32, u32)> {
        let mut rng = SplitMix64::new(seed);
        const EDGES: [u32; 8] = [
            0,
            1,
            0xff,
            0xffff,
            0x8000_0000,
            u32::MAX,
            0x7fff_ffff,
            0x0001_0000,
        ];
        (0..n).map(move |i| {
            let a = if i % 4 == 0 {
                *rng.pick(&EDGES)
            } else {
                rng.next_u32()
            };
            let b = if i % 5 == 0 {
                *rng.pick(&EDGES)
            } else {
                rng.next_u32()
            };
            (a, b)
        })
    }

    #[test]
    fn sliced_matches_full() {
        for (a, b) in operand_pairs(0xa1, 2048) {
            for w in WIDTHS {
                let alu = SliceAlu::new(w);
                for op in OPS {
                    assert_eq!(
                        alu.eval(op, a, b).join(),
                        op.eval_full(a, b),
                        "op {op:?} width {w:?} a {a:#x} b {b:#x}"
                    );
                }
            }
        }
    }

    #[test]
    fn carry_chain_is_the_only_coupling() {
        // Computing slice k of a+b from only slices 0..=k plus the
        // incoming carry must equal the corresponding bits of the full
        // sum — i.e. partial operand knowledge of an add is exact.
        for (a, b) in operand_pairs(0xca44, 4096) {
            let w = SliceWidth::W8;
            let alu = SliceAlu::new(w);
            let full = a.wrapping_add(b);
            let (sa, sb) = (Sliced::split(a, w), Sliced::split(b, w));
            let mut carry = 0;
            for k in 0..w.count() {
                let (s, c) = alu.add_slice(sa.get(k), sb.get(k), carry);
                assert_eq!(
                    s,
                    (full >> (8 * k as u32)) & 0xff,
                    "a {a:#x} b {b:#x} k {k}"
                );
                carry = c;
            }
        }
    }
}
