//! Batched slice kernels: many `(op, a, b)` lanes evaluated together,
//! one slice *position* at a time.
//!
//! [`SliceAlu::eval`] walks one operation's slices in dependence order —
//! the right shape for reasoning about a single instruction, the wrong
//! shape for throughput: each step is a handful of ALU ops behind a
//! `match`. A bit-sliced machine issues *many* slice micro-ops per cycle,
//! so the natural batch axis is the lane: hold N operations' operands in
//! structure-of-arrays form and sweep slice position `k = 0, 1, …` across
//! all lanes, threading each lane's carry from `k−1` to `k` exactly as
//! Fig. 8b's inter-slice edge does in hardware.
//!
//! The inner loops are flat passes over parallel `u32` arrays with no
//! per-lane branching, which autovectorizes on stable; the optional
//! `simd` feature (nightly `portable_simd`) writes the same kernel with
//! explicit 8-lane vectors. Both paths are bit-exact against
//! [`SliceAlu::eval`] — property-tested in this module.
//!
//! The kernel is *uniform*: every lane runs the carry-chained add sweep
//! (subtract-family lanes feed `!b` and an injected carry, per a − b =
//! a + !b + 1), then a cheap fixup pass overwrites the lanes whose ops
//! are not add-shaped (logic, shifts, `slt`-family). Logic lanes pay for
//! an add they discard; that redundancy is what keeps the hot loop
//! branch-free.

use crate::alu::AluSliceOp;
use crate::sliced::SliceWidth;

/// Does `op` ride the carry-chained subtract datapath (`a + !b + 1`)?
#[inline]
const fn is_sub_family(op: AluSliceOp) -> bool {
    matches!(op, AluSliceOp::Sub | AluSliceOp::Slt | AluSliceOp::Sltu)
}

/// A batch of ALU operations stored structure-of-arrays, plus the reused
/// kernel scratch (effective addends and per-lane carries).
///
/// Push lanes with [`push`](SliceBatch::push), evaluate them all with
/// [`eval_into`](SliceBatch::eval_into), then [`clear`](SliceBatch::clear)
/// for the next batch. The internal vectors are retained across batches,
/// so a long-lived `SliceBatch` allocates only while growing to the
/// high-water lane count.
pub struct SliceBatch {
    width: SliceWidth,
    op: Vec<AluSliceOp>,
    a: Vec<u32>,
    b: Vec<u32>,
    /// Effective second addend per lane: `b` for adds, `!b` for the
    /// subtract family. Filled by the setup pass of `eval_into`.
    bx: Vec<u32>,
    /// Per-lane carry threaded across slice positions; starts at the
    /// injected `+1` for subtract-family lanes and ends as the carry out
    /// of the top slice (which decides `sltu`).
    carry: Vec<u32>,
}

impl SliceBatch {
    /// An empty batch slicing operands at `width`.
    pub fn new(width: SliceWidth) -> SliceBatch {
        SliceBatch {
            width,
            op: Vec::new(),
            a: Vec::new(),
            b: Vec::new(),
            bx: Vec::new(),
            carry: Vec::new(),
        }
    }

    /// The slicing in effect.
    pub fn width(&self) -> SliceWidth {
        self.width
    }

    /// Number of lanes currently queued.
    pub fn len(&self) -> usize {
        self.op.len()
    }

    /// Whether the batch has no lanes.
    pub fn is_empty(&self) -> bool {
        self.op.is_empty()
    }

    /// Drop all lanes, keeping capacity.
    pub fn clear(&mut self) {
        self.op.clear();
        self.a.clear();
        self.b.clear();
    }

    /// Append one `(op, a, b)` lane.
    pub fn push(&mut self, op: AluSliceOp, a: u32, b: u32) {
        self.op.push(op);
        self.a.push(a);
        self.b.push(b);
    }

    /// Evaluate every lane and write the joined 32-bit results into
    /// `out` (cleared first, then one result per lane in push order).
    ///
    /// Equivalent to `SliceAlu::eval(op, a, b).join()` per lane; uses the
    /// explicit-SIMD kernel when the `simd` feature is enabled, the
    /// autovectorizable scalar kernel otherwise.
    pub fn eval_into(&mut self, out: &mut Vec<u32>) {
        #[cfg(feature = "simd")]
        self.eval_into_simd(out);
        #[cfg(not(feature = "simd"))]
        self.eval_into_scalar(out);
    }

    /// The scalar batched kernel (always available, autovectorization
    /// friendly). Semantics identical to [`eval_into`](Self::eval_into).
    pub fn eval_into_scalar(&mut self, out: &mut Vec<u32>) {
        self.setup(out);
        let bits = self.width.bits();
        let mask = self.width.mask();
        for k in 0..self.width.count() {
            let shift = bits * k as u32;
            // Flat full-adder sweep at slice position k: no branches, no
            // cross-lane dependence — only lane-local carry reuse.
            let lanes = self.a.iter().zip(&self.bx).zip(&mut self.carry);
            for (((&a, &bx), carry), o) in lanes.zip(out.iter_mut()) {
                let ak = (a >> shift) & mask;
                let bk = (bx >> shift) & mask;
                let s = ak.wrapping_add(bk).wrapping_add(*carry) & mask;
                // Carry out of the slice via the majority form on the top
                // bit (avoids widening, so W32 lanes need no u64).
                *carry = ((ak & bk) | ((ak | bk) & !s)) >> (bits - 1);
                *o |= s << shift;
            }
        }
        self.fixup(out);
    }

    /// The explicit-SIMD batched kernel: the same sweep with 8-lane
    /// `u32x8` vectors (nightly `portable_simd`), scalar remainder.
    #[cfg(feature = "simd")]
    pub fn eval_into_simd(&mut self, out: &mut Vec<u32>) {
        use std::simd::u32x8;
        const L: usize = 8;
        self.setup(out);
        let bits = self.width.bits();
        let mask = self.width.mask();
        let n = self.op.len();
        let vmask = u32x8::splat(mask);
        for k in 0..self.width.count() {
            let shift = bits * k as u32;
            let vshift = u32x8::splat(shift);
            let mut i = 0;
            while i + L <= n {
                let a = u32x8::from_slice(&self.a[i..i + L]);
                let bx = u32x8::from_slice(&self.bx[i..i + L]);
                let c = u32x8::from_slice(&self.carry[i..i + L]);
                let ak = (a >> vshift) & vmask;
                let bk = (bx >> vshift) & vmask;
                let s = (ak + bk + c) & vmask;
                let cout = ((ak & bk) | ((ak | bk) & !s)) >> u32x8::splat(bits - 1);
                cout.copy_to_slice(&mut self.carry[i..i + L]);
                let acc = u32x8::from_slice(&out[i..i + L]) | (s << vshift);
                acc.copy_to_slice(&mut out[i..i + L]);
                i += L;
            }
            for i in i..n {
                let ak = (self.a[i] >> shift) & mask;
                let bk = (self.bx[i] >> shift) & mask;
                let s = ak.wrapping_add(bk).wrapping_add(self.carry[i]) & mask;
                self.carry[i] = ((ak & bk) | ((ak | bk) & !s)) >> (bits - 1);
                out[i] |= s << shift;
            }
        }
        self.fixup(out);
    }

    /// Setup pass: size `out`, derive each lane's effective addend and
    /// injected carry.
    fn setup(&mut self, out: &mut Vec<u32>) {
        let n = self.op.len();
        out.clear();
        out.resize(n, 0);
        self.bx.clear();
        self.carry.clear();
        for i in 0..n {
            let sub = is_sub_family(self.op[i]);
            self.bx.push(self.b[i] ^ (sub as u32).wrapping_neg());
            self.carry.push(sub as u32);
        }
    }

    /// Fixup pass: lanes whose result is not the carry-chained sum.
    ///
    /// `slt` derives from the sweep's difference via sign xor overflow;
    /// `sltu` from the final carry out (no borrow ⇔ carry 1); logic ops
    /// are recomputed slice-independently (their sweep result is
    /// discarded); shifts are inherently cross-slice and use the
    /// full-width reference.
    fn fixup(&mut self, out: &mut [u32]) {
        for (i, (&op, o)) in self.op.iter().zip(out.iter_mut()).enumerate() {
            let (a, b) = (self.a[i], self.b[i]);
            match op {
                AluSliceOp::Add | AluSliceOp::Sub => {}
                AluSliceOp::Slt => {
                    let d = *o; // a - b from the sweep
                    *o = (d ^ ((a ^ b) & (a ^ d))) >> 31;
                }
                AluSliceOp::Sltu => *o = 1 - self.carry[i],
                AluSliceOp::And => *o = a & b,
                AluSliceOp::Or => *o = a | b,
                AluSliceOp::Xor => *o = a ^ b,
                AluSliceOp::Nor => *o = !(a | b),
                AluSliceOp::Sll | AluSliceOp::Srl | AluSliceOp::Sra => {
                    *o = op.eval_full(a, b);
                }
            }
        }
    }
}

/// One-shot convenience: evaluate `lanes` under `width`, returning the
/// joined results in lane order. Allocates per call — the simulator and
/// benchmarks hold a [`SliceBatch`] instead.
pub fn eval_batch(width: SliceWidth, lanes: &[(AluSliceOp, u32, u32)]) -> Vec<u32> {
    let mut batch = SliceBatch::new(width);
    for &(op, a, b) in lanes {
        batch.push(op, a, b);
    }
    let mut out = Vec::new();
    batch.eval_into(&mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alu::SliceAlu;
    use crate::sliced::Sliced;
    use popk_isa::rng::SplitMix64;

    const WIDTHS: [SliceWidth; 3] = [SliceWidth::W32, SliceWidth::W16, SliceWidth::W8];
    const OPS: [AluSliceOp; 11] = [
        AluSliceOp::Add,
        AluSliceOp::Sub,
        AluSliceOp::And,
        AluSliceOp::Or,
        AluSliceOp::Xor,
        AluSliceOp::Nor,
        AluSliceOp::Sll,
        AluSliceOp::Srl,
        AluSliceOp::Sra,
        AluSliceOp::Slt,
        AluSliceOp::Sltu,
    ];

    /// Carry- and compare-hostile operand pairs: long carry chains,
    /// equal values, off-by-one around sign and slice boundaries.
    fn edge_pairs() -> Vec<(u32, u32)> {
        let vals = [
            0u32,
            1,
            0xff,
            0x100,
            0xffff,
            0x0001_0000,
            0x7fff_ffff,
            0x8000_0000,
            0x8000_0001,
            0xffff_ffff,
            0xfffe_ffff,
            0x00ff_ff00,
        ];
        let mut pairs = Vec::new();
        for &a in &vals {
            for &b in &vals {
                pairs.push((a, b));
            }
        }
        pairs
    }

    /// A named kernel variant under test.
    type Kernel = (&'static str, fn(&mut SliceBatch, &mut Vec<u32>));

    /// Every kernel variant available in this build, by name.
    fn kernels() -> Vec<Kernel> {
        #[cfg_attr(not(feature = "simd"), allow(unused_mut))]
        let mut v: Vec<Kernel> = vec![("scalar", SliceBatch::eval_into_scalar)];
        #[cfg(feature = "simd")]
        v.push(("simd", SliceBatch::eval_into_simd));
        v
    }

    #[test]
    fn batch_matches_per_entry_eval_on_edges() {
        // Mixed-op batch over the full edge-pair cross product: each lane
        // must equal SliceAlu::eval joined AND slice-by-slice.
        for w in WIDTHS {
            for (kname, kernel) in kernels() {
                let mut batch = SliceBatch::new(w);
                let mut expect = Vec::new();
                for (i, (a, b)) in edge_pairs().into_iter().enumerate() {
                    let op = OPS[i % OPS.len()];
                    batch.push(op, a, b);
                    expect.push((op, a, b, SliceAlu::new(w).eval(op, a, b)));
                }
                let mut out = Vec::new();
                kernel(&mut batch, &mut out);
                assert_eq!(out.len(), expect.len());
                for (got, (op, a, b, want)) in out.iter().zip(&expect) {
                    assert_eq!(*got, want.join(), "{kname} {w:?} {op:?} a {a:#x} b {b:#x}");
                    // Slice-exact too, not just joined-value-equal.
                    assert_eq!(Sliced::split(*got, w), *want);
                }
            }
        }
    }

    #[test]
    fn batch_matches_per_entry_eval_random() {
        let mut rng = SplitMix64::new(0xbb17c4);
        for w in WIDTHS {
            for (kname, kernel) in kernels() {
                // Odd batch length exercises the simd remainder loop.
                let mut batch = SliceBatch::new(w);
                let mut expect = Vec::new();
                for _ in 0..1027 {
                    let op = OPS[rng.below(OPS.len() as u32) as usize];
                    let (a, b) = (rng.next_u32(), rng.next_u32());
                    batch.push(op, a, b);
                    expect.push(op.eval_full(a, b));
                }
                let mut out = Vec::new();
                kernel(&mut batch, &mut out);
                assert_eq!(out, expect, "{kname} {w:?}");
            }
        }
    }

    #[test]
    fn slt_family_edge_cases() {
        // The slt/sltu lanes derive from the sweep's carry state; pin the
        // classic traps: equality, sign straddles, overflow cases.
        let cases = [
            (0u32, 0u32),
            (5, 5),
            (4, 5),
            (5, 4),
            (0x7fff_ffff, 0x8000_0000), // signed: MAX vs MIN
            (0x8000_0000, 0x7fff_ffff),
            (0xffff_ffff, 0), // signed -1 vs 0
            (0, 0xffff_ffff),
            (0x8000_0000, 0x8000_0000),
            (1, 0xffff_ffff),
        ];
        for w in WIDTHS {
            for (_, kernel) in kernels() {
                for op in [AluSliceOp::Slt, AluSliceOp::Sltu] {
                    let mut batch = SliceBatch::new(w);
                    for &(a, b) in &cases {
                        batch.push(op, a, b);
                    }
                    let mut out = Vec::new();
                    kernel(&mut batch, &mut out);
                    for (got, (a, b)) in out.iter().zip(&cases) {
                        assert_eq!(*got, op.eval_full(*a, *b), "{op:?} {a:#x} {b:#x} {w:?}");
                    }
                }
            }
        }
    }

    #[test]
    fn carry_chain_threads_per_lane() {
        // Lanes with maximal carry propagation (0xffff_ffff + 1) adjacent
        // to carry-free lanes: each lane's chain must stay private.
        for (_, kernel) in kernels() {
            let mut batch = SliceBatch::new(SliceWidth::W8);
            batch.push(AluSliceOp::Add, 0xffff_ffff, 1);
            batch.push(AluSliceOp::Add, 0x0101_0101, 0x0101_0101);
            batch.push(AluSliceOp::Sub, 0, 1);
            batch.push(AluSliceOp::Add, 0x00ff_00ff, 0x0001_0001);
            let mut out = Vec::new();
            kernel(&mut batch, &mut out);
            assert_eq!(out, vec![0, 0x0202_0202, 0xffff_ffff, 0x0100_0100]);
        }
    }

    #[test]
    fn clear_reuses_the_batch() {
        let mut batch = SliceBatch::new(SliceWidth::W16);
        let mut out = Vec::new();
        batch.push(AluSliceOp::Add, 2, 3);
        batch.eval_into(&mut out);
        assert_eq!(out, vec![5]);
        batch.clear();
        assert!(batch.is_empty());
        batch.push(AluSliceOp::Xor, 0xf0, 0x0f);
        batch.eval_into(&mut out);
        assert_eq!(out, vec![0xff]);
    }

    #[test]
    fn eval_batch_convenience() {
        let out = eval_batch(
            SliceWidth::W16,
            &[
                (AluSliceOp::Add, 0xffff, 1),
                (AluSliceOp::Sltu, 3, 4),
                (AluSliceOp::Nor, 0, 0),
            ],
        );
        assert_eq!(out, vec![0x0001_0000, 1, 0xffff_ffff]);
    }
}
