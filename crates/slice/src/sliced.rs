//! Slice decomposition of 32-bit operands.

use std::fmt;

/// How a 32-bit operand is divided into slices.
///
/// The paper studies *slice-by-2* (two 16-bit slices) and *slice-by-4*
/// (four 8-bit slices); `W32` is the degenerate unsliced case used by the
/// baseline machine.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SliceWidth {
    /// One 32-bit slice (conventional atomic operands).
    W32,
    /// Two 16-bit slices (the paper's "slice by 2").
    W16,
    /// Four 8-bit slices (the paper's "slice by 4").
    W8,
}

impl SliceWidth {
    /// Number of slices per operand.
    #[inline]
    pub const fn count(self) -> usize {
        match self {
            SliceWidth::W32 => 1,
            SliceWidth::W16 => 2,
            SliceWidth::W8 => 4,
        }
    }

    /// Bits per slice.
    #[inline]
    pub const fn bits(self) -> u32 {
        32 / self.count() as u32
    }

    /// Mask selecting one slice's bits (at slice position 0).
    #[inline]
    pub const fn mask(self) -> u32 {
        match self {
            SliceWidth::W32 => u32::MAX,
            SliceWidth::W16 => 0xffff,
            SliceWidth::W8 => 0xff,
        }
    }

    /// The slice index that contains bit position `bit` (0–31).
    #[inline]
    pub const fn slice_of_bit(self, bit: u32) -> usize {
        (bit / self.bits()) as usize
    }

    /// The slicing factor for a given slice count (1, 2 or 4).
    pub const fn from_count(count: usize) -> Option<SliceWidth> {
        match count {
            1 => Some(SliceWidth::W32),
            2 => Some(SliceWidth::W16),
            4 => Some(SliceWidth::W8),
            _ => None,
        }
    }
}

impl fmt::Display for SliceWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "slice-by-{}", self.count())
    }
}

/// A 32-bit value decomposed into slices (slice 0 is the least
/// significant).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Sliced {
    width: SliceWidth,
    vals: [u32; 4],
}

impl Sliced {
    /// Decompose `value` under `width`.
    #[inline]
    pub fn split(value: u32, width: SliceWidth) -> Sliced {
        let mut vals = [0u32; 4];
        let bits = width.bits();
        let mask = width.mask();
        for (k, v) in vals.iter_mut().enumerate().take(width.count()) {
            *v = (value >> (bits * k as u32)) & mask;
        }
        Sliced { width, vals }
    }

    /// An all-zero sliced value.
    #[inline]
    pub fn zero(width: SliceWidth) -> Sliced {
        Sliced {
            width,
            vals: [0; 4],
        }
    }

    /// Recompose the full 32-bit value.
    #[inline]
    pub fn join(&self) -> u32 {
        let bits = self.width.bits();
        let mut out = 0u32;
        for k in 0..self.width.count() {
            out |= self.vals[k] << (bits * k as u32);
        }
        out
    }

    /// The slicing in effect.
    #[inline]
    pub fn width(&self) -> SliceWidth {
        self.width
    }

    /// Slice `k` (masked to slice width).
    ///
    /// # Panics
    /// Panics if `k` is out of range for the slicing.
    #[inline]
    pub fn get(&self, k: usize) -> u32 {
        assert!(k < self.width.count());
        self.vals[k]
    }

    /// Overwrite slice `k`.
    ///
    /// # Panics
    /// Panics if `k` is out of range or `v` has bits above the slice width.
    #[inline]
    pub fn set(&mut self, k: usize, v: u32) {
        assert!(k < self.width.count());
        assert_eq!(v & !self.width.mask(), 0, "value exceeds slice width");
        self.vals[k] = v;
    }

    /// The low-order `upto + 1` slices joined into a value (the partial
    /// knowledge available once slices `0..=upto` have been produced).
    pub fn low_bits(&self, upto: usize) -> u32 {
        let bits = self.width.bits();
        let mut out = 0u32;
        for k in 0..=upto.min(self.width.count() - 1) {
            out |= self.vals[k] << (bits * k as u32);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popk_isa::rng::SplitMix64;

    #[test]
    fn widths() {
        assert_eq!(SliceWidth::W32.count(), 1);
        assert_eq!(SliceWidth::W16.count(), 2);
        assert_eq!(SliceWidth::W8.count(), 4);
        assert_eq!(SliceWidth::W16.bits(), 16);
        assert_eq!(SliceWidth::W8.mask(), 0xff);
        assert_eq!(SliceWidth::W16.slice_of_bit(15), 0);
        assert_eq!(SliceWidth::W16.slice_of_bit(16), 1);
        assert_eq!(SliceWidth::W8.slice_of_bit(31), 3);
        assert_eq!(SliceWidth::from_count(2), Some(SliceWidth::W16));
        assert_eq!(SliceWidth::from_count(3), None);
    }

    #[test]
    fn split_examples() {
        let s = Sliced::split(0x1234_5678, SliceWidth::W16);
        assert_eq!(s.get(0), 0x5678);
        assert_eq!(s.get(1), 0x1234);
        let s = Sliced::split(0x1234_5678, SliceWidth::W8);
        assert_eq!(s.get(0), 0x78);
        assert_eq!(s.get(3), 0x12);
        assert_eq!(s.low_bits(1), 0x5678);
    }

    #[test]
    #[should_panic(expected = "exceeds slice width")]
    fn set_overflow_panics() {
        let mut s = Sliced::zero(SliceWidth::W8);
        s.set(0, 0x100);
    }

    #[test]
    fn split_join_roundtrip() {
        let mut rng = SplitMix64::new(0x51ce);
        for i in 0..4096u32 {
            // Mix raw randomness with edge-heavy values.
            let v = match i % 8 {
                0 => 0,
                1 => u32::MAX,
                2 => rng.next_u32() & 0xff,
                3 => rng.next_u32() | 0xff00_0000,
                _ => rng.next_u32(),
            };
            for w in [SliceWidth::W32, SliceWidth::W16, SliceWidth::W8] {
                assert_eq!(Sliced::split(v, w).join(), v, "{v:#x} {w:?}");
            }
        }
    }

    #[test]
    fn low_bits_is_prefix() {
        let mut rng = SplitMix64::new(0x10b1);
        for _ in 0..4096 {
            let v = rng.next_u32();
            let upto = rng.below(4) as usize;
            let s = Sliced::split(v, SliceWidth::W8);
            let nbits = 8 * (upto as u32 + 1);
            let mask = if nbits == 32 {
                u32::MAX
            } else {
                (1 << nbits) - 1
            };
            assert_eq!(s.low_bits(upto), v & mask, "{v:#x} upto {upto}");
        }
    }
}
