//! # popk-slice — bit-slice arithmetic primitives
//!
//! The algebra behind the paper's Figure 8: 32-bit operands are decomposed
//! into 1, 2 or 4 slices and operations are evaluated *slice by slice* with
//! explicit inter-slice state (the carry chain for arithmetic, nothing for
//! logic, full cross-slice communication for shifts).
//!
//! The timing model in `popk-core` uses this crate two ways:
//!
//! * the [`SliceAlu`] actually computes per-slice results in the same order
//!   a bit-sliced datapath would produce them (property-tested here against
//!   the full-width operations), and
//! * the partial-knowledge predicates ([`first_divergent_bit`],
//!   [`diverges_within`], [`mispredict_detection_bit`]) decide how many
//!   low-order bits suffice to resolve a branch or disambiguate a load —
//!   the quantities characterized in the paper's Figures 2 and 6.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alu;
mod partial;
mod sliced;

pub use alu::{AluSliceOp, SliceAlu};
pub use partial::{
    diverges_within, first_divergent_bit, mispredict_detection_bit, slices_to_detect,
    FULL_WIDTH_BITS,
};
pub use sliced::{SliceWidth, Sliced};
