//! # popk-slice — bit-slice arithmetic primitives
//!
//! The algebra behind the paper's Figure 8: 32-bit operands are decomposed
//! into 1, 2 or 4 slices and operations are evaluated *slice by slice* with
//! explicit inter-slice state (the carry chain for arithmetic, nothing for
//! logic, full cross-slice communication for shifts).
//!
//! The timing model in `popk-core` uses this crate two ways:
//!
//! * the [`SliceAlu`] actually computes per-slice results in the same order
//!   a bit-sliced datapath would produce them (property-tested here against
//!   the full-width operations), and
//! * the batched kernels ([`SliceBatch`], [`eval_batch`]) evaluate many
//!   `(op, a, b)` lanes one slice position at a time with flat
//!   structure-of-arrays loops (optionally `std::simd` under the
//!   non-default `simd` feature), and
//! * the partial-knowledge predicates ([`first_divergent_bit`],
//!   [`diverges_within`], [`mispredict_detection_bit`]) decide how many
//!   low-order bits suffice to resolve a branch or disambiguate a load —
//!   the quantities characterized in the paper's Figures 2 and 6.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(feature = "simd", feature(portable_simd))]

mod alu;
mod batch;
mod partial;
mod sliced;

pub use alu::{AluSliceOp, SliceAlu};
pub use batch::{eval_batch, SliceBatch};
pub use partial::{
    diverges_within, first_divergent_bit, mispredict_detection_bit, slices_to_detect,
    FULL_WIDTH_BITS,
};
pub use sliced::{SliceWidth, Sliced};
