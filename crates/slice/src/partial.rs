//! Partial-knowledge predicates: how many low-order bits decide a
//! comparison.
//!
//! These functions formalize the two questions the paper's characterization
//! sections ask of every dynamic event:
//!
//! * *Load-store disambiguation (Fig. 2)* — after how many low-order
//!   address bits do two addresses provably differ?
//! * *Early branch resolution (Fig. 6)* — after how many low-order operand
//!   bits is a branch misprediction provable?

use popk_isa::BranchCond;

/// Number of bits in a full operand.
pub const FULL_WIDTH_BITS: u32 = 32;

/// The lowest bit position at which `a` and `b` differ, or `None` if they
/// are equal.
#[inline]
pub fn first_divergent_bit(a: u32, b: u32) -> Option<u32> {
    let x = a ^ b;
    (x != 0).then(|| x.trailing_zeros())
}

/// True if `a` and `b` differ somewhere in their low `nbits` bits
/// (`nbits == 0` is vacuously false; `nbits >= 32` compares fully).
#[inline]
pub fn diverges_within(a: u32, b: u32, nbits: u32) -> bool {
    if nbits == 0 {
        return false;
    }
    let mask = if nbits >= 32 {
        u32::MAX
    } else {
        (1u32 << nbits) - 1
    };
    (a ^ b) & mask != 0
}

/// For a *mispredicted* conditional branch, the number of low-order bits of
/// the comparison that must be examined before the misprediction is
/// provable (§5.4 semantics):
///
/// * `beq`/`bne` where the misprediction claim is "the operands differ":
///   provable at the first divergent bit, so the answer is
///   `first_divergent_bit + 1`.
/// * `beq`/`bne` where the claim is "the operands are equal": every bit
///   must be examined → 32.
/// * Sign-testing branches (`blez`/`bgtz`/`bltz`/`bgez`): the sign bit is
///   required → 32. (`blez`/`bgtz` additionally need the zero test, which
///   also completes only with the last bit.)
///
/// Returns `None` when the branch was *correctly* predicted (there is no
/// misprediction to detect).
pub fn mispredict_detection_bit(
    cond: BranchCond,
    rs: u32,
    rt: u32,
    predicted_taken: bool,
) -> Option<u32> {
    let actual_taken = cond.eval(rs, rt);
    if actual_taken == predicted_taken {
        return None;
    }
    // The misprediction is real; how early can it be proven?
    let bits = match cond {
        BranchCond::Eq | BranchCond::Ne => {
            // Which way was the guess wrong? If the prediction implied
            // rs == rt but they differ, the first divergent bit refutes it.
            // If the prediction implied rs != rt but they are equal, only
            // the full comparison proves equality.
            let predicted_equal = match cond {
                BranchCond::Eq => predicted_taken,
                BranchCond::Ne => !predicted_taken,
                _ => unreachable!(),
            };
            if predicted_equal {
                match first_divergent_bit(rs, rt) {
                    Some(bit) => bit + 1,
                    // Equal operands can't contradict a predicted-equal
                    // outcome; unreachable given actual != predicted.
                    None => unreachable!("equal operands cannot mispredict an equality guess"),
                }
            } else {
                FULL_WIDTH_BITS
            }
        }
        // Sign-dependent types wait for the top bit.
        _ => FULL_WIDTH_BITS,
    };
    Some(bits)
}

/// Convert a detection-bit count into the number of slices (of `slice_bits`
/// bits each) that must have completed: `ceil(bits / slice_bits)`, at least
/// one.
#[inline]
pub fn slices_to_detect(bits: u32, slice_bits: u32) -> u32 {
    bits.max(1).div_ceil(slice_bits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use popk_isa::rng::SplitMix64;

    #[test]
    fn divergence_basics() {
        assert_eq!(first_divergent_bit(0, 0), None);
        assert_eq!(first_divergent_bit(0b1000, 0b0000), Some(3));
        assert_eq!(first_divergent_bit(1, 0), Some(0));
        assert_eq!(first_divergent_bit(0x8000_0000, 0), Some(31));
        assert!(!diverges_within(0xff00, 0xfe00, 8));
        assert!(diverges_within(0xff00, 0xfe00, 9));
        assert!(!diverges_within(5, 7, 0));
        assert!(diverges_within(5, 7, 32));
    }

    #[test]
    fn fig5_example() {
        // The paper's Fig. 5: `andi r2, r3, 1; bne r2, r0, L` predicted
        // not-taken (i.e. predicted r2 == 0), but r2 == 1. The mispredict
        // is provable from bit 0 alone → 1 bit.
        let bits = mispredict_detection_bit(BranchCond::Ne, 1, 0, false);
        assert_eq!(bits, Some(1));
    }

    #[test]
    fn equality_guess_needs_full_width() {
        // beq predicted NOT-taken (guess: rs != rt) but they are equal:
        // all 32 bits needed.
        let bits = mispredict_detection_bit(BranchCond::Eq, 42, 42, false);
        assert_eq!(bits, Some(FULL_WIDTH_BITS));
        // bne predicted taken (guess: rs != rt) but equal: all 32 bits.
        let bits = mispredict_detection_bit(BranchCond::Ne, 7, 7, true);
        assert_eq!(bits, Some(FULL_WIDTH_BITS));
    }

    #[test]
    fn sign_branches_need_full_width() {
        for cond in [
            BranchCond::Lez,
            BranchCond::Gtz,
            BranchCond::Ltz,
            BranchCond::Gez,
        ] {
            let taken = cond.eval(5, 0);
            let bits = mispredict_detection_bit(cond, 5, 0, !taken);
            assert_eq!(bits, Some(FULL_WIDTH_BITS), "{cond:?}");
        }
    }

    #[test]
    fn correct_predictions_yield_none() {
        assert_eq!(mispredict_detection_bit(BranchCond::Eq, 1, 1, true), None);
        assert_eq!(mispredict_detection_bit(BranchCond::Ne, 1, 2, true), None);
        assert_eq!(mispredict_detection_bit(BranchCond::Ltz, 5, 0, false), None);
    }

    #[test]
    fn slice_counts() {
        assert_eq!(slices_to_detect(1, 16), 1);
        assert_eq!(slices_to_detect(16, 16), 1);
        assert_eq!(slices_to_detect(17, 16), 2);
        assert_eq!(slices_to_detect(32, 16), 2);
        assert_eq!(slices_to_detect(32, 8), 4);
        assert_eq!(slices_to_detect(9, 8), 2);
        // Detection "after 0 bits" still requires one slice to issue.
        assert_eq!(slices_to_detect(0, 8), 1);
    }

    /// Pairs biased toward shared low bits (the interesting regime for
    /// divergence detection), plus plain random words.
    fn value_pairs(seed: u64, n: usize) -> impl Iterator<Item = (u32, u32)> {
        let mut rng = SplitMix64::new(seed);
        (0..n).map(move |i| {
            let a = rng.next_u32();
            let b = match i % 4 {
                0 => a,                                     // equal
                1 => a ^ (1 << rng.below(32)),              // one-bit divergence
                2 => (a & 0xffff) | (rng.next_u32() << 16), // shared low half
                _ => rng.next_u32(),
            };
            (a, b)
        })
    }

    #[test]
    fn detection_bit_is_sound() {
        // Whenever a detection bit b < 32 is reported, the low b bits
        // must indeed prove the divergence.
        for (rs, rt) in value_pairs(0xdeb1, 4096) {
            for pt in [false, true] {
                for cond in [BranchCond::Eq, BranchCond::Ne] {
                    if let Some(bits) = mispredict_detection_bit(cond, rs, rt, pt) {
                        if bits < FULL_WIDTH_BITS {
                            assert!(diverges_within(rs, rt, bits), "{rs:#x} {rt:#x} {bits}");
                            assert!(!diverges_within(rs, rt, bits - 1), "{rs:#x} {rt:#x} {bits}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn divergence_consistency() {
        for (a, b) in value_pairs(0xd1ff, 4096) {
            match first_divergent_bit(a, b) {
                None => assert_eq!(a, b),
                Some(bit) => {
                    assert!(diverges_within(a, b, bit + 1), "{a:#x} {b:#x} {bit}");
                    assert!(!diverges_within(a, b, bit), "{a:#x} {b:#x} {bit}");
                }
            }
        }
    }
}
