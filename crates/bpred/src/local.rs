//! Local-history and tournament direction predictors (ablation
//! alternatives to the paper's gshare).

use crate::counters::SatCounter;
use crate::direction::{DirectionPredictor, Gshare};

/// A two-level local-history predictor (PAg): a table of per-branch
/// history registers indexing a shared table of 2-bit counters.
pub struct Local {
    histories: Vec<u16>,
    counters: Vec<SatCounter>,
    hist_bits: u32,
}

impl Local {
    /// `hist_entries_log2` history registers of `hist_bits` bits each;
    /// the counter table has `2^hist_bits` entries.
    ///
    /// # Panics
    /// Panics unless `1 <= hist_bits <= 16` and
    /// `1 <= hist_entries_log2 <= 20`.
    pub fn new(hist_entries_log2: u32, hist_bits: u32) -> Local {
        assert!((1..=16).contains(&hist_bits));
        assert!((1..=20).contains(&hist_entries_log2));
        Local {
            histories: vec![0; 1 << hist_entries_log2],
            counters: vec![SatCounter::default(); 1 << hist_bits],
            hist_bits,
        }
    }

    #[inline]
    fn slot(&self, pc: u32) -> usize {
        ((pc >> 2) as usize) & (self.histories.len() - 1)
    }
}

impl DirectionPredictor for Local {
    fn predict(&self, pc: u32) -> bool {
        let h = self.histories[self.slot(pc)] as usize;
        self.counters[h].predict()
    }

    fn update(&mut self, pc: u32, taken: bool) {
        let slot = self.slot(pc);
        let h = self.histories[slot] as usize;
        self.counters[h].update(taken);
        let mask = (1u16 << self.hist_bits) - 1;
        self.histories[slot] = ((self.histories[slot] << 1) | taken as u16) & mask;
    }

    fn name(&self) -> &'static str {
        "local"
    }
}

/// An Alpha-21264-style tournament predictor: gshare and local components
/// arbitrated by a PC-indexed chooser trained toward whichever component
/// was right.
pub struct Tournament {
    global: Gshare,
    local: Local,
    chooser: Vec<SatCounter>,
}

impl Tournament {
    /// Component sizes: `global_bits` for the gshare, `(local_entries_log2,
    /// local_hist_bits)` for the local predictor, `chooser_bits` for the
    /// chooser table.
    pub fn new(
        global_bits: u32,
        local_entries_log2: u32,
        local_hist_bits: u32,
        chooser_bits: u32,
    ) -> Tournament {
        assert!((1..=30).contains(&chooser_bits));
        Tournament {
            global: Gshare::new(global_bits),
            local: Local::new(local_entries_log2, local_hist_bits),
            chooser: vec![SatCounter::default(); 1 << chooser_bits],
        }
    }

    /// A balanced default sized like the Table 2 budget (64K total-ish).
    pub fn default_sized() -> Tournament {
        Tournament::new(14, 10, 10, 12)
    }

    #[inline]
    fn choose_slot(&self, pc: u32) -> usize {
        ((pc >> 2) as usize) & (self.chooser.len() - 1)
    }
}

impl DirectionPredictor for Tournament {
    fn predict(&self, pc: u32) -> bool {
        // Chooser taken-state means "trust global".
        if self.chooser[self.choose_slot(pc)].predict() {
            self.global.predict(pc)
        } else {
            self.local.predict(pc)
        }
    }

    fn update(&mut self, pc: u32, taken: bool) {
        let g = self.global.predict(pc);
        let l = self.local.predict(pc);
        // Train the chooser only when the components disagree.
        if g != l {
            let slot = self.choose_slot(pc);
            self.chooser[slot].update(g == taken);
        }
        self.global.update(pc, taken);
        self.local.update(pc, taken);
    }

    fn name(&self) -> &'static str {
        "tournament"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Accuracy of a predictor on a repeated pattern after warmup.
    fn accuracy(pred: &mut dyn DirectionPredictor, pc: u32, pattern: &[bool], trips: usize) -> f64 {
        let (mut right, mut total) = (0u32, 0u32);
        for trip in 0..trips {
            for &taken in pattern {
                let p = pred.predict(pc);
                if trip >= trips / 2 {
                    total += 1;
                    right += (p == taken) as u32;
                }
                pred.update(pc, taken);
            }
        }
        right as f64 / total as f64
    }

    #[test]
    fn local_learns_short_periodic_patterns() {
        let mut l = Local::new(10, 10);
        // Period-4 pattern: T T T N — a local history of 10 bits nails it.
        let acc = accuracy(&mut l, 0x40_0000, &[true, true, true, false], 100);
        assert!(acc > 0.95, "local accuracy {acc}");
    }

    #[test]
    fn tournament_at_least_matches_components_on_pattern() {
        let pattern = [true, true, false, true, false, false, true, true];
        let mut g = Gshare::new(14);
        let mut t = Tournament::default_sized();
        let ga = accuracy(&mut g, 0x40_0000, &pattern, 100);
        let ta = accuracy(&mut t, 0x40_0000, &pattern, 100);
        assert!(ta >= ga - 0.05, "tournament {ta} vs gshare {ga}");
    }

    #[test]
    fn tournament_chooser_picks_the_right_component() {
        // A strongly-biased branch is easy for both; a periodic one favors
        // local after aliasing pressure on global. Just sanity-check the
        // prediction path runs and stays deterministic.
        let mut t = Tournament::default_sized();
        for i in 0..1000u32 {
            let pc = 0x40_0000 + (i % 64) * 4;
            let taken = (i % 3) != 0;
            let _ = t.predict(pc);
            t.update(pc, taken);
        }
        let a = t.predict(0x40_0000);
        let b = t.predict(0x40_0000);
        assert_eq!(a, b);
    }

    #[test]
    fn names() {
        assert_eq!(Local::new(4, 4).name(), "local");
        assert_eq!(Tournament::default_sized().name(), "tournament");
    }
}
