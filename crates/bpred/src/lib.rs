//! # popk-bpred — branch prediction substrate
//!
//! The front-end prediction machinery of the paper's Table 2 machine:
//!
//! * [`Gshare`] — global-history XOR-indexed 2-bit counter table (the
//!   paper's 64K-entry default),
//! * [`Bimodal`] — PC-indexed 2-bit counter table (used by ablations),
//! * [`Btb`] — set-associative branch target buffer (4-way, 512 entries),
//! * [`Ras`] — return address stack (8 entries),
//! * [`FrontEnd`] — the composite predictor the timing model queries once
//!   per fetched control instruction, with accuracy statistics.
//!
//! ```
//! use popk_bpred::{Gshare, DirectionPredictor};
//!
//! let mut g = Gshare::new(16); // 64K entries
//! // A strongly-biased branch trains quickly.
//! for _ in 0..4 { g.update(0x40_0000, true); }
//! assert!(g.predict(0x40_0000));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod btb;
mod counters;
mod direction;
mod frontend;
mod local;
mod ras;

pub use btb::Btb;
pub use counters::SatCounter;
pub use direction::{Bimodal, DirectionPredictor, Gshare};
pub use frontend::{BranchKind, DirKind, FrontEnd, FrontEndConfig, PredStats, Prediction};
pub use local::{Local, Tournament};
pub use ras::Ras;
