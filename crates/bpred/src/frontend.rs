//! The composite front-end predictor.

use crate::btb::Btb;
use crate::direction::{Bimodal, DirectionPredictor, Gshare};
use crate::local::{Local, Tournament};
use crate::ras::Ras;

/// Which direction predictor the front end instantiates.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum DirKind {
    /// Global-history gshare (the paper's Table 2 predictor).
    #[default]
    Gshare,
    /// PC-indexed bimodal.
    Bimodal,
    /// Two-level local-history (PAg).
    Local,
    /// Alpha-21264-style gshare/local tournament.
    Tournament,
}

/// What kind of control transfer the front end is predicting. The ISA
/// layer (`popk-core`) maps instructions to this; `popk-bpred` stays
/// ISA-independent.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BranchKind {
    /// A conditional branch whose (direct) target is known at decode.
    Conditional {
        /// The taken-path target.
        target: u32,
    },
    /// `j`/`jal`: target known at decode, never mispredicted.
    DirectJump {
        /// Jump target.
        target: u32,
        /// True for `jal` (pushes a return address).
        is_call: bool,
    },
    /// `jr`/`jalr`: target comes from a register.
    IndirectJump {
        /// True for `jalr` (pushes a return address).
        is_call: bool,
        /// True for `jr ra` (predicted via the RAS).
        is_return: bool,
    },
}

/// The front end's prediction for one control instruction.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Prediction {
    /// Predicted direction (always true for jumps).
    pub taken: bool,
    /// Predicted next fetch PC.
    pub next_pc: u32,
    /// Whether the prediction turned out correct (filled by
    /// [`FrontEnd::predict_and_update`], which sees the actual outcome).
    pub correct: bool,
}

/// Configuration for [`FrontEnd`], defaulting to the paper's Table 2:
/// 64K-entry gshare, 4-way 512-entry BTB, 8-entry RAS.
#[derive(Clone, Copy, Debug)]
pub struct FrontEndConfig {
    /// log2 of the gshare/bimodal table size.
    pub dir_index_bits: u32,
    /// Direction predictor organization.
    pub dir_kind: DirKind,
    /// BTB set count (power of two).
    pub btb_sets: usize,
    /// BTB associativity.
    pub btb_ways: usize,
    /// RAS depth.
    pub ras_depth: usize,
}

impl Default for FrontEndConfig {
    fn default() -> Self {
        FrontEndConfig {
            dir_index_bits: 16,
            dir_kind: DirKind::Gshare,
            btb_sets: 128,
            btb_ways: 4,
            ras_depth: 8,
        }
    }
}

/// Accuracy statistics, split by transfer kind.
#[derive(Clone, Copy, Default, Debug)]
pub struct PredStats {
    /// Conditional branches seen.
    pub cond: u64,
    /// Conditional direction mispredictions.
    pub cond_wrong: u64,
    /// Indirect jumps seen.
    pub indirect: u64,
    /// Indirect target mispredictions.
    pub indirect_wrong: u64,
    /// Direct jumps seen (never wrong).
    pub direct: u64,
}

impl PredStats {
    /// Conditional-branch direction accuracy in `[0, 1]`.
    pub fn cond_accuracy(&self) -> f64 {
        if self.cond == 0 {
            return 1.0;
        }
        1.0 - self.cond_wrong as f64 / self.cond as f64
    }

    /// Total control-transfer mispredictions.
    pub fn total_wrong(&self) -> u64 {
        self.cond_wrong + self.indirect_wrong
    }
}

/// The composite front-end predictor: direction predictor + BTB + RAS.
pub struct FrontEnd {
    dir: Box<dyn DirectionPredictor + Send>,
    btb: Btb,
    ras: Ras,
    stats: PredStats,
}

impl FrontEnd {
    /// Build from a configuration.
    pub fn new(cfg: &FrontEndConfig) -> FrontEnd {
        let dir: Box<dyn DirectionPredictor + Send> = match cfg.dir_kind {
            DirKind::Gshare => Box::new(Gshare::new(cfg.dir_index_bits)),
            DirKind::Bimodal => Box::new(Bimodal::new(cfg.dir_index_bits)),
            DirKind::Local => Box::new(Local::new(
                (cfg.dir_index_bits / 2).max(4),
                (cfg.dir_index_bits / 2).clamp(4, 16),
            )),
            DirKind::Tournament => Box::new(Tournament::default_sized()),
        };
        FrontEnd {
            dir,
            btb: Btb::new(cfg.btb_sets, cfg.btb_ways),
            ras: Ras::new(cfg.ras_depth),
            stats: PredStats::default(),
        }
    }

    /// The Table 2 default configuration.
    pub fn table2() -> FrontEnd {
        FrontEnd::new(&FrontEndConfig::default())
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> &PredStats {
        &self.stats
    }

    /// Peek the direction prediction for a conditional branch at `pc`
    /// without training (used by characterization passes that manage
    /// training separately).
    pub fn peek_direction(&self, pc: u32) -> bool {
        self.dir.predict(pc)
    }

    /// Predict the control instruction at `pc`, then immediately train
    /// with the actual outcome (`actual_taken`, `actual_target`).
    ///
    /// This in-order predict-then-train discipline is the standard
    /// trace-driven approximation: the returned [`Prediction::correct`]
    /// flag is what the timing model charges misprediction penalties from.
    pub fn predict_and_update(
        &mut self,
        pc: u32,
        kind: BranchKind,
        actual_taken: bool,
        actual_target: u32,
    ) -> Prediction {
        let fallthrough = pc.wrapping_add(4);
        match kind {
            BranchKind::Conditional { target } => {
                let taken = self.dir.predict(pc);
                let next_pc = if taken { target } else { fallthrough };
                self.dir.update(pc, actual_taken);
                self.stats.cond += 1;
                let correct = taken == actual_taken;
                if !correct {
                    self.stats.cond_wrong += 1;
                }
                Prediction {
                    taken,
                    next_pc,
                    correct,
                }
            }
            BranchKind::DirectJump { target, is_call } => {
                if is_call {
                    self.ras.push(fallthrough);
                }
                self.stats.direct += 1;
                Prediction {
                    taken: true,
                    next_pc: target,
                    correct: true,
                }
            }
            BranchKind::IndirectJump { is_call, is_return } => {
                let predicted = if is_return {
                    self.ras.pop()
                } else {
                    self.btb.predict(pc)
                };
                if is_call {
                    self.ras.push(fallthrough);
                }
                if !is_return {
                    self.btb.update(pc, actual_target);
                }
                self.stats.indirect += 1;
                let correct = predicted == Some(actual_target);
                if !correct {
                    self.stats.indirect_wrong += 1;
                }
                Prediction {
                    taken: true,
                    next_pc: predicted.unwrap_or(fallthrough),
                    correct,
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conditional_flow() {
        let mut fe = FrontEnd::table2();
        let pc = 0x0040_0000;
        let target = 0x0040_0100;
        // Train taken a few times, then the prediction should be correct.
        for _ in 0..4 {
            fe.predict_and_update(pc, BranchKind::Conditional { target }, true, target);
        }
        let p = fe.predict_and_update(pc, BranchKind::Conditional { target }, true, target);
        assert!(p.taken && p.correct);
        assert_eq!(p.next_pc, target);
        assert!(fe.stats().cond >= 5);
    }

    #[test]
    fn call_return_pairs_use_ras() {
        let mut fe = FrontEnd::table2();
        let call_pc = 0x0040_0000;
        let callee = 0x0040_1000;
        let ret_pc = callee + 8;
        fe.predict_and_update(
            call_pc,
            BranchKind::DirectJump {
                target: callee,
                is_call: true,
            },
            true,
            callee,
        );
        let p = fe.predict_and_update(
            ret_pc,
            BranchKind::IndirectJump {
                is_call: false,
                is_return: true,
            },
            true,
            call_pc + 4,
        );
        assert!(p.correct, "RAS should predict the return");
        assert_eq!(p.next_pc, call_pc + 4);
    }

    #[test]
    fn indirect_jumps_train_btb() {
        let mut fe = FrontEnd::table2();
        let pc = 0x0040_0040;
        let tgt = 0x0040_2000;
        let first = fe.predict_and_update(
            pc,
            BranchKind::IndirectJump {
                is_call: false,
                is_return: false,
            },
            true,
            tgt,
        );
        assert!(!first.correct, "cold BTB misses");
        let second = fe.predict_and_update(
            pc,
            BranchKind::IndirectJump {
                is_call: false,
                is_return: false,
            },
            true,
            tgt,
        );
        assert!(second.correct);
    }

    #[test]
    fn accuracy_accounting() {
        let mut fe = FrontEnd::table2();
        let pc = 0x0040_0000;
        let t = 0x0040_0100;
        // Alternate outcomes: gshare will be wrong some of the time.
        for i in 0..100 {
            fe.predict_and_update(pc, BranchKind::Conditional { target: t }, i % 2 == 0, t);
        }
        let s = fe.stats();
        assert_eq!(s.cond, 100);
        assert!(s.cond_accuracy() <= 1.0 && s.cond_accuracy() >= 0.0);
    }

    #[test]
    fn bimodal_config() {
        let mut fe = FrontEnd::new(&FrontEndConfig {
            dir_kind: DirKind::Bimodal,
            dir_index_bits: 10,
            ..Default::default()
        });
        let pc = 0x0040_0000;
        for _ in 0..4 {
            fe.predict_and_update(pc, BranchKind::Conditional { target: 0x100 }, false, 0x100);
        }
        let p = fe.predict_and_update(pc, BranchKind::Conditional { target: 0x100 }, false, 0x100);
        assert!(!p.taken && p.correct);
    }
}
