//! Direction predictors: gshare and bimodal.

use crate::counters::SatCounter;

/// A conditional-branch direction predictor.
///
/// `update` both trains the counters and (for history-based predictors)
/// shifts the outcome into the global history register. The trace-driven
/// harness calls `predict` then `update` for each dynamic branch in program
/// order, which models a machine with in-order history repair on
/// mispredicts.
pub trait DirectionPredictor {
    /// Predict the direction of the branch at `pc`.
    fn predict(&self, pc: u32) -> bool;
    /// Train with the resolved outcome.
    fn update(&mut self, pc: u32, taken: bool);
    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// Gshare: a table of 2-bit counters indexed by
/// `(pc >> 2) XOR global_history`.
///
/// The paper's Table 2 machine uses a 64K-entry instance
/// (`Gshare::new(16)`).
pub struct Gshare {
    table: Vec<SatCounter>,
    history: u32,
    index_bits: u32,
}

impl Gshare {
    /// A gshare with `2^index_bits` counters and `index_bits` of global
    /// history.
    ///
    /// # Panics
    /// Panics unless `1 <= index_bits <= 30`.
    pub fn new(index_bits: u32) -> Gshare {
        assert!((1..=30).contains(&index_bits));
        Gshare {
            table: vec![SatCounter::default(); 1 << index_bits],
            history: 0,
            index_bits,
        }
    }

    #[inline]
    fn index(&self, pc: u32) -> usize {
        let mask = (1u32 << self.index_bits) - 1;
        (((pc >> 2) ^ self.history) & mask) as usize
    }

    /// Number of counters in the table.
    pub fn entries(&self) -> usize {
        self.table.len()
    }

    /// Current global history register contents.
    pub fn history(&self) -> u32 {
        self.history
    }
}

impl DirectionPredictor for Gshare {
    fn predict(&self, pc: u32) -> bool {
        self.table[self.index(pc)].predict()
    }

    fn update(&mut self, pc: u32, taken: bool) {
        let idx = self.index(pc);
        self.table[idx].update(taken);
        let mask = (1u32 << self.index_bits) - 1;
        self.history = ((self.history << 1) | taken as u32) & mask;
    }

    fn name(&self) -> &'static str {
        "gshare"
    }
}

/// Bimodal: a table of 2-bit counters indexed by the PC alone.
pub struct Bimodal {
    table: Vec<SatCounter>,
    index_bits: u32,
}

impl Bimodal {
    /// A bimodal predictor with `2^index_bits` counters.
    ///
    /// # Panics
    /// Panics unless `1 <= index_bits <= 30`.
    pub fn new(index_bits: u32) -> Bimodal {
        assert!((1..=30).contains(&index_bits));
        Bimodal {
            table: vec![SatCounter::default(); 1 << index_bits],
            index_bits,
        }
    }

    #[inline]
    fn index(&self, pc: u32) -> usize {
        (((pc >> 2) & ((1u32 << self.index_bits) - 1)) as usize) % self.table.len()
    }
}

impl DirectionPredictor for Bimodal {
    fn predict(&self, pc: u32) -> bool {
        self.table[self.index(pc)].predict()
    }

    fn update(&mut self, pc: u32, taken: bool) {
        let idx = self.index(pc);
        self.table[idx].update(taken);
    }

    fn name(&self) -> &'static str {
        "bimodal"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gshare_learns_loop_branch() {
        let mut g = Gshare::new(12);
        let pc = 0x0040_0100;
        // 9-iterations-taken, 1-not-taken loop pattern; after warmup the
        // history disambiguates the exit iteration.
        let mut correct = 0;
        let mut total = 0;
        for _trip in 0..200 {
            for i in 0..10 {
                let taken = i != 9;
                let p = g.predict(pc);
                if _trip >= 50 {
                    total += 1;
                    if p == taken {
                        correct += 1;
                    }
                }
                g.update(pc, taken);
            }
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.95, "gshare should learn the pattern, got {acc}");
    }

    #[test]
    fn bimodal_tracks_bias_only() {
        let mut b = Bimodal::new(10);
        let pc = 0x0040_0200;
        for _ in 0..100 {
            b.update(pc, true);
        }
        assert!(b.predict(pc));
        // One not-taken doesn't flip a saturated counter.
        b.update(pc, false);
        assert!(b.predict(pc));
    }

    #[test]
    fn gshare_history_advances() {
        let mut g = Gshare::new(8);
        assert_eq!(g.history(), 0);
        g.update(0x400000, true);
        g.update(0x400000, false);
        g.update(0x400000, true);
        assert_eq!(g.history(), 0b101);
    }

    #[test]
    fn distinct_pcs_use_distinct_counters() {
        let mut g = Bimodal::new(10);
        for _ in 0..4 {
            g.update(0x0040_0000, true);
            g.update(0x0040_0004, false);
        }
        assert!(g.predict(0x0040_0000));
        assert!(!g.predict(0x0040_0004));
    }
}
