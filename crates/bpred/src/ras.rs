//! Return address stack.

/// A fixed-depth return address stack (Table 2: 8 entries).
///
/// Overflow wraps (oldest entry is overwritten), underflow returns `None`;
/// both match common hardware behaviour.
pub struct Ras {
    buf: Vec<u32>,
    top: usize,
    live: usize,
}

impl Ras {
    /// A RAS with `depth` entries.
    ///
    /// # Panics
    /// Panics if `depth == 0`.
    pub fn new(depth: usize) -> Ras {
        assert!(depth > 0);
        Ras {
            buf: vec![0; depth],
            top: 0,
            live: 0,
        }
    }

    /// Push a return address (on `jal`/`jalr`).
    pub fn push(&mut self, addr: u32) {
        self.top = (self.top + 1) % self.buf.len();
        self.buf[self.top] = addr;
        self.live = (self.live + 1).min(self.buf.len());
    }

    /// Pop the predicted return address (on `jr ra`).
    pub fn pop(&mut self) -> Option<u32> {
        if self.live == 0 {
            return None;
        }
        let v = self.buf[self.top];
        self.top = (self.top + self.buf.len() - 1) % self.buf.len();
        self.live -= 1;
        Some(v)
    }

    /// Peek without popping.
    pub fn peek(&self) -> Option<u32> {
        (self.live > 0).then(|| self.buf[self.top])
    }

    /// Number of live entries.
    pub fn depth(&self) -> usize {
        self.live
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut r = Ras::new(8);
        r.push(0x100);
        r.push(0x200);
        assert_eq!(r.pop(), Some(0x200));
        assert_eq!(r.pop(), Some(0x100));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn overflow_wraps() {
        let mut r = Ras::new(2);
        r.push(1);
        r.push(2);
        r.push(3); // overwrites 1
        assert_eq!(r.pop(), Some(3));
        assert_eq!(r.pop(), Some(2));
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn peek_nondestructive() {
        let mut r = Ras::new(4);
        r.push(9);
        assert_eq!(r.peek(), Some(9));
        assert_eq!(r.depth(), 1);
        assert_eq!(r.pop(), Some(9));
        assert_eq!(r.peek(), None);
    }
}
