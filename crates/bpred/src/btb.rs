//! Branch target buffer.

/// A set-associative branch target buffer with true-LRU replacement.
///
/// The Table 2 machine uses a 4-way, 512-entry BTB
/// (`Btb::new(128, 4)` — 128 sets × 4 ways).
pub struct Btb {
    sets: usize,
    ways: usize,
    /// `entries[set * ways + way]`.
    entries: Vec<Option<BtbEntry>>,
    /// LRU ranks, same layout; lower = more recently used.
    lru: Vec<u8>,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
struct BtbEntry {
    tag: u32,
    target: u32,
}

impl Btb {
    /// A BTB with `sets` sets of `ways` ways.
    ///
    /// # Panics
    /// Panics unless `sets` is a power of two and `1 <= ways <= 255`.
    pub fn new(sets: usize, ways: usize) -> Btb {
        assert!(sets.is_power_of_two() && sets > 0);
        assert!((1..=255).contains(&ways));
        // Distinct initial ranks per set so recency is well-defined from
        // the first touch.
        let lru = (0..sets * ways).map(|i| (i % ways) as u8).collect();
        Btb {
            sets,
            ways,
            entries: vec![None; sets * ways],
            lru,
        }
    }

    /// Total entry capacity.
    pub fn capacity(&self) -> usize {
        self.sets * self.ways
    }

    #[inline]
    fn set_of(&self, pc: u32) -> usize {
        ((pc >> 2) as usize) & (self.sets - 1)
    }

    #[inline]
    fn tag_of(&self, pc: u32) -> u32 {
        (pc >> 2) / self.sets as u32
    }

    /// Look up the predicted target for the control instruction at `pc`.
    pub fn predict(&self, pc: u32) -> Option<u32> {
        let set = self.set_of(pc);
        let tag = self.tag_of(pc);
        let base = set * self.ways;
        self.entries[base..base + self.ways]
            .iter()
            .flatten()
            .find(|e| e.tag == tag)
            .map(|e| e.target)
    }

    /// Install/update the target for `pc`, touching LRU state.
    pub fn update(&mut self, pc: u32, target: u32) {
        let set = self.set_of(pc);
        let tag = self.tag_of(pc);
        let base = set * self.ways;

        // Hit: refresh target and recency.
        for w in 0..self.ways {
            if let Some(ref mut e) = self.entries[base + w] {
                if e.tag == tag {
                    e.target = target;
                    self.touch(base, w);
                    return;
                }
            }
        }
        // Miss: fill an invalid way if any, else evict the LRU way
        // (highest rank).
        let victim = (0..self.ways)
            .find(|&w| self.entries[base + w].is_none())
            .unwrap_or_else(|| {
                (0..self.ways)
                    .max_by_key(|&w| self.lru[base + w])
                    .expect("the BTB has at least one way")
            });
        self.entries[base + victim] = Some(BtbEntry { tag, target });
        self.touch(base, victim);
    }

    fn touch(&mut self, base: usize, way: usize) {
        let old = self.lru[base + way];
        for w in 0..self.ways {
            if self.lru[base + w] < old {
                self.lru[base + w] += 1;
            }
        }
        self.lru[base + way] = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut b = Btb::new(8, 2);
        assert_eq!(b.predict(0x0040_0000), None);
        b.update(0x0040_0000, 0x0040_1000);
        assert_eq!(b.predict(0x0040_0000), Some(0x0040_1000));
    }

    #[test]
    fn target_update_on_hit() {
        let mut b = Btb::new(8, 2);
        b.update(0x0040_0000, 0x1);
        b.update(0x0040_0000, 0x2);
        assert_eq!(b.predict(0x0040_0000), Some(0x2));
    }

    #[test]
    fn lru_eviction() {
        let mut b = Btb::new(1, 2);
        // Three PCs mapping to the single set.
        b.update(0x0040_0000, 0xa);
        b.update(0x0040_0004, 0xb);
        b.update(0x0040_0000, 0xa); // refresh A
        b.update(0x0040_0008, 0xc); // evicts B (LRU)
        assert_eq!(b.predict(0x0040_0000), Some(0xa));
        assert_eq!(b.predict(0x0040_0004), None);
        assert_eq!(b.predict(0x0040_0008), Some(0xc));
    }

    #[test]
    fn capacity_and_aliasing() {
        let mut b = Btb::new(128, 4);
        assert_eq!(b.capacity(), 512);
        // Distinct tags in the same set coexist up to associativity.
        let set_stride = 128 * 4; // pc stride that keeps the same set
        for i in 0..4u32 {
            b.update(0x0040_0000 + i * set_stride, i);
        }
        for i in 0..4u32 {
            assert_eq!(b.predict(0x0040_0000 + i * set_stride), Some(i));
        }
    }
}
