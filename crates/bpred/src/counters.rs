//! Saturating counters.

/// A 2-bit saturating counter, the storage cell of every direction
/// predictor here. States 0–1 predict not-taken, 2–3 predict taken;
/// initialized to 2 (weakly taken), the SimpleScalar convention.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SatCounter(u8);

impl Default for SatCounter {
    fn default() -> Self {
        SatCounter(2)
    }
}

impl SatCounter {
    /// A counter in an explicit state (0–3).
    ///
    /// # Panics
    /// Panics if `state > 3`.
    pub fn new(state: u8) -> SatCounter {
        assert!(state <= 3);
        SatCounter(state)
    }

    /// The prediction this counter encodes.
    #[inline]
    pub fn predict(self) -> bool {
        self.0 >= 2
    }

    /// Train toward the actual outcome.
    #[inline]
    pub fn update(&mut self, taken: bool) {
        if taken {
            self.0 = (self.0 + 1).min(3);
        } else {
            self.0 = self.0.saturating_sub(1);
        }
    }

    /// The raw state (0–3).
    pub fn state(self) -> u8 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturation() {
        let mut c = SatCounter::new(0);
        c.update(false);
        assert_eq!(c.state(), 0);
        for _ in 0..5 {
            c.update(true);
        }
        assert_eq!(c.state(), 3);
        assert!(c.predict());
    }

    #[test]
    fn hysteresis() {
        // From strongly-taken, one not-taken outcome must not flip the
        // prediction.
        let mut c = SatCounter::new(3);
        c.update(false);
        assert!(c.predict());
        c.update(false);
        assert!(!c.predict());
    }

    #[test]
    fn default_weakly_taken() {
        assert!(SatCounter::default().predict());
        assert_eq!(SatCounter::default().state(), 2);
    }

    #[test]
    #[should_panic]
    fn bad_state() {
        let _ = SatCounter::new(4);
    }
}
