//! # popk-trace — the ISA-neutral micro-op boundary
//!
//! The timing core ([`popk-core`]'s pipeline) models *partial operand
//! knowledge*, which is an ISA-agnostic idea: slices of values wake
//! consumers, partial addresses disambiguate loads, low-order bits
//! refute branch predictions. This crate defines the neutral record the
//! timing core consumes — a [`Uop`]: one retired dynamic instruction
//! with its operand values, memory effect, and control outcome — and
//! the [`UopInsn`] trait an ISA's static instruction type implements to
//! describe everything the pipeline needs to schedule it (execution
//! class, slice decomposition, operand registers, latency class,
//! control kind).
//!
//! A [`Frontend`] is any producer of `Uop` streams (a functional
//! emulator, a captured trace file); its optional [`CommitChecker`]
//! locksteps an independent reference against the timing core's commit
//! stream, turning any model corruption into a structured
//! [`LockstepMismatch`] instead of silently wrong statistics.
//!
//! The [`pisa`] module binds the repo's native PISA-like ISA
//! ([`popk_isa::Insn`]) to this boundary; `popk-rv32` binds RV32I.
//!
//! [`popk-core`]: ../popk_core/index.html

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod pisa;

use popk_isa::{BranchCond, SliceClass};
use popk_slice::AluSliceOp;
use std::fmt;

/// One retired dynamic instruction, ISA-neutral: the unit of exchange
/// between a [`Frontend`] and the timing core.
///
/// `I` is the ISA's static instruction type (a [`UopInsn`]); the
/// remaining fields are the *dynamic* facts the paper's techniques
/// consult — operand values (for slice-wise branch refutation and the
/// debug-mode sliced-ALU cross-check), results (for narrow-operand
/// detection and oracle lockstep), the effective address (partial
/// disambiguation and tag match), and the control outcome.
#[derive(Clone, Copy, Debug)]
pub struct Uop<I> {
    /// Program counter.
    pub pc: u32,
    /// The decoded instruction.
    pub insn: I,
    /// Source operand values, in `src_regs()` order.
    pub src_vals: [u32; 2],
    /// Destination values written, in `dst_regs()` order.
    pub results: [u32; 2],
    /// Effective address, if a memory access.
    pub ea: u32,
    /// Whether a control transfer was taken.
    pub taken: bool,
    /// The next PC actually executed.
    pub next_pc: u32,
}

impl<I: UopInsn> Uop<I> {
    /// Whether this instruction accesses memory.
    pub fn is_mem(&self) -> bool {
        let m = self.insn.meta();
        m.is_load || m.is_store
    }
}

/// Functional-unit binding of an instruction (which execution resource
/// examines it each cycle).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ExecClass {
    /// Integer/logic/shift work on the sliced datapath.
    IntSliced,
    /// The unpipelined multiply/divide unit.
    MulDiv,
    /// The pipelined FP adder.
    FpAdd,
    /// The unpipelined FP multiply/divide/sqrt unit.
    FpLong,
    /// Resolved entirely in the front end (direct jumps).
    Front,
    /// Serializing system operation.
    Sys,
}

/// Latency class within an [`ExecClass`]: which configured latency
/// applies. The mapping to cycle counts lives in the machine
/// configuration; the ISA only names the class.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LatClass {
    /// Single-cycle (per slice) ALU work.
    Alu,
    /// Integer multiply.
    Mult,
    /// Integer divide.
    Div,
    /// A `HI`/`LO`-style move through the muldiv unit: single-cycle and
    /// exempt from the unit's busy reservation.
    HiLoMove,
    /// FP add/convert.
    FpAdd,
    /// FP multiply.
    FpMul,
    /// FP divide.
    FpDiv,
    /// FP square root.
    FpSqrt,
}

/// Control-transfer kind, as the front end and branch-resolution logic
/// need it.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CtrlKind {
    /// Target known at decode (`j`/`jal`-like).
    DirectJump {
        /// Pushes a return address (drives the RAS).
        is_call: bool,
    },
    /// Target comes from a register (`jr`/`jalr`-like).
    IndirectJump {
        /// Pushes a return address.
        is_call: bool,
        /// Pops the return-address stack.
        is_return: bool,
    },
    /// Conditional branch testing `cond` on the source operands.
    CondBranch(BranchCond),
}

/// Everything the pipeline stages need to know about an instruction
/// statically, derived once from [`UopInsn::meta`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct UopMeta {
    /// Functional-unit binding.
    pub class: ExecClass,
    /// Bit-slice decomposition (Fig. 8 taxonomy).
    pub slice_class: SliceClass,
    /// Which configured latency applies.
    pub lat: LatClass,
    /// Control-transfer kind, if any.
    pub ctrl: Option<CtrlKind>,
    /// The low result slice is not valid until all slices complete
    /// (set-less-than style ops whose bit 0 depends on the top carry).
    pub late_result: bool,
    /// Memory load.
    pub is_load: bool,
    /// Memory store.
    pub is_store: bool,
    /// Access width in bytes (0 for non-memory instructions).
    pub mem_bytes: u8,
}

impl UopMeta {
    /// Whether this instruction accesses memory.
    pub fn is_mem(&self) -> bool {
        self.is_load || self.is_store
    }
}

/// Up to two operand registers, as small ISA-neutral ids (the ISA's
/// architectural index; id 0 is the hardwired zero in both PISA and
/// RV32). Mirrors `popk_isa`'s `ArgSet` semantics: pushes deduplicate
/// against the first slot only, preserving insertion order.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct RegList {
    regs: [Option<u8>; 2],
}

impl RegList {
    /// The empty list.
    pub fn new() -> RegList {
        RegList::default()
    }

    /// Append `r`, deduplicating against the first slot.
    pub fn push(&mut self, r: u8) {
        if self.regs[0].is_none() {
            self.regs[0] = Some(r);
        } else if self.regs[0] != Some(r) && self.regs[1].is_none() {
            self.regs[1] = Some(r);
        }
    }

    /// The registers, in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = u8> + '_ {
        self.regs.iter().filter_map(|r| *r)
    }

    /// Number of registers present.
    pub fn len(&self) -> usize {
        self.regs.iter().filter(|r| r.is_some()).count()
    }

    /// True if no registers are present.
    pub fn is_empty(&self) -> bool {
        self.regs[0].is_none()
    }

    /// Whether `r` is present.
    pub fn contains(&self, r: u8) -> bool {
        self.regs.contains(&Some(r))
    }
}

/// The static-instruction side of the micro-op boundary: what an ISA
/// must describe about each decoded instruction for the timing core to
/// schedule it. Implementations are cheap `Copy` types; `Display` is
/// the disassembly used in timelines and deadlock snapshots.
pub trait UopInsn: Copy + fmt::Debug + fmt::Display + 'static {
    /// Number of architectural registers (rename-table size). Index 0
    /// must be the hardwired zero register.
    const NUM_REGS: usize;

    /// Static scheduling metadata.
    fn meta(&self) -> UopMeta;

    /// Source registers, in the order `Uop::src_vals` reports values.
    fn src_regs(&self) -> RegList;

    /// Destination registers, in the order `Uop::results` reports
    /// values. Writes to the zero register are not reported.
    fn dst_regs(&self) -> RegList;

    /// The register whose value a store writes to memory, if this is a
    /// store (it is also listed in [`UopInsn::src_regs`]).
    fn store_data_reg(&self) -> Option<u8>;

    /// A no-op instruction used for wrong-path phantoms.
    fn phantom_nop() -> Self;

    /// The two comparison operands of a conditional branch (`(0, 0)`
    /// for anything else): what slice-wise misprediction detection
    /// inspects.
    fn branch_cmp(rec: &Uop<Self>) -> (u32, u32);

    /// If this instruction maps onto one sliced-ALU lane, the op and
    /// full-width operands to cross-check `results[0]` against (the
    /// debug-build sliced-datapath validation).
    fn alu_lane(rec: &Uop<Self>) -> Option<(AluSliceOp, u32, u32)>;
}

/// A functional-emulation fault while producing a trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EmuError {
    /// PC left the text segment.
    UnmappedPc {
        /// The offending PC.
        pc: u32,
    },
    /// A load/store violated natural alignment.
    Misaligned {
        /// PC of the access.
        pc: u32,
        /// The misaligned effective address.
        addr: u32,
    },
    /// `syscall`/`ecall` with an unknown service number.
    BadSyscall {
        /// PC of the call.
        pc: u32,
        /// The unknown service number.
        service: u32,
    },
    /// A breakpoint instruction.
    Break {
        /// PC of the breakpoint.
        pc: u32,
    },
    /// An instruction word that does not decode in the frontend's ISA.
    Illegal {
        /// PC of the undecodable word.
        pc: u32,
        /// The raw instruction encoding.
        raw: u32,
    },
}

impl fmt::Display for EmuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EmuError::UnmappedPc { pc } => write!(f, "PC {pc:#010x} outside text segment"),
            EmuError::Misaligned { pc, addr } => {
                write!(f, "misaligned access to {addr:#010x} at PC {pc:#010x}")
            }
            EmuError::BadSyscall { pc, service } => {
                write!(f, "unknown syscall {service} at PC {pc:#010x}")
            }
            EmuError::Break { pc } => write!(f, "break at PC {pc:#010x}"),
            EmuError::Illegal { pc, raw } => {
                write!(f, "illegal instruction {raw:#010x} at PC {pc:#010x}")
            }
        }
    }
}

impl EmuError {
    /// The PC at which the error occurred (every variant carries one).
    pub fn pc(&self) -> u32 {
        match *self {
            EmuError::UnmappedPc { pc }
            | EmuError::Misaligned { pc, .. }
            | EmuError::BadSyscall { pc, .. }
            | EmuError::Break { pc }
            | EmuError::Illegal { pc, .. } => pc,
        }
    }
}

impl std::error::Error for EmuError {}

/// One architectural field on which lockstep verification diverged.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LockstepMismatch {
    /// PC of the instruction under verification (the claimed record's).
    pub pc: u32,
    /// The diverging field: `"pc"`, `"insn"`, `"dest0"`, `"dest1"`,
    /// `"ea"`, `"store_data"`, `"taken"`, `"next_pc"`, `"exited"`, or
    /// `"emulation"` (the reference machine itself faulted).
    pub field: &'static str,
    /// The reference machine's value.
    pub expected: u32,
    /// The claimed record's value.
    pub got: u32,
}

impl fmt::Display for LockstepMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lockstep mismatch at PC {:#010x}: field `{}` expected {:#x}, got {:#x}",
            self.pc, self.field, self.expected, self.got
        )
    }
}

/// A producer of [`Uop`] streams: the decoupling point between an ISA's
/// functional side and the timing core. Iteration yields retired
/// records in program order and ends at program exit (or the
/// frontend's instruction limit); a fault surfaces as one final
/// `Err`.
pub trait Frontend<I>: Iterator<Item = Result<Uop<I>, EmuError>> {
    /// Short identity of the ISA/frontend (e.g. `"pisa"`, `"rv32"`),
    /// for reports and cache keys.
    fn isa(&self) -> &'static str;

    /// An independent reference checker for differential replay of the
    /// commit stream, if this frontend can provide one. Call before
    /// iterating: the checker replays from the beginning.
    fn checker(&self) -> Option<Box<dyn CommitChecker<I>>>;

    /// A snapshot-capable reference for checkpoint capture, if this
    /// frontend supports it (emulation frontends do; captured trace
    /// files cannot reconstruct architectural state). Call before
    /// iterating: the source replays from the beginning.
    fn checkpoint_source(&self) -> Option<Box<dyn CheckpointSource<I>>> {
        None
    }
}

/// Lockstep verification of a timing core's commit stream against an
/// independent reference (differential replay).
pub trait CommitChecker<I> {
    /// Verify one retirement claim against the reference, advancing it
    /// by one instruction.
    fn verify(&mut self, claim: &Uop<I>) -> Result<(), LockstepMismatch>;
}

/// One contiguous run of resident memory bytes in an [`ArchSnapshot`].
///
/// PISA snapshots emit one page per resident 4 KiB frame; RV32 snapshots
/// coalesce adjacent resident words. Pages are sorted by `base` and
/// non-overlapping, so two snapshots of the same state compare equal.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SnapshotPage {
    /// First byte address covered by this page.
    pub base: u32,
    /// The bytes, in address order.
    pub data: Vec<u8>,
}

/// A complete architectural snapshot of a functional machine at an
/// instruction boundary: everything needed to re-seed the machine at
/// that position, in a deterministic (sorted, canonical) layout so that
/// snapshot equality is state equality.
///
/// The snapshot is ISA-neutral by construction — registers as an
/// indexed array, memory as sorted byte runs — with the PISA output
/// channels (`out_ints`/`out_bytes`) carried along because they are
/// architectural state a resumed run must reproduce. Microarchitectural
/// state (caches, predictors, window) is deliberately absent: see
/// `popk-core`'s checkpoint module for how resume recovers timing state
/// deterministically.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct ArchSnapshot {
    /// Instructions retired when the snapshot was taken.
    pub icount: u64,
    /// Next PC to execute.
    pub pc: u32,
    /// Architectural register file, index order (32 entries for RV32,
    /// `Reg::COUNT` for PISA).
    pub regs: Vec<u32>,
    /// Resident memory, as sorted non-overlapping byte runs.
    pub pages: Vec<SnapshotPage>,
    /// PISA `print_int` output channel (empty for ISAs without one).
    pub out_ints: Vec<i32>,
    /// PISA `print_string` output channel (empty for ISAs without one).
    pub out_bytes: Vec<u8>,
    /// Exit code, if the program has exited.
    pub exited: Option<u32>,
}

impl ArchSnapshot {
    /// Total resident memory bytes captured.
    pub fn resident_bytes(&self) -> usize {
        self.pages.iter().map(|p| p.data.len()).sum()
    }

    /// Compare against another snapshot, naming the first differing
    /// component (`"icount"`, `"pc"`, `"regs"`, `"pages"`, `"out_ints"`,
    /// `"out_bytes"`, `"exited"`) or `None` if identical.
    pub fn first_difference(&self, other: &ArchSnapshot) -> Option<&'static str> {
        if self.icount != other.icount {
            return Some("icount");
        }
        if self.pc != other.pc {
            return Some("pc");
        }
        if self.regs != other.regs {
            return Some("regs");
        }
        if self.pages != other.pages {
            return Some("pages");
        }
        if self.out_ints != other.out_ints {
            return Some("out_ints");
        }
        if self.out_bytes != other.out_bytes {
            return Some("out_bytes");
        }
        if self.exited != other.exited {
            return Some("exited");
        }
        None
    }
}

/// A [`CommitChecker`] that can additionally capture the reference
/// machine's architectural state — the capture side of checkpointing.
///
/// The timing core advances the source one instruction per retirement
/// (through [`CommitChecker::verify`], which cross-checks for free) and
/// snapshots it at checkpoint boundaries, so a checkpoint is a *verified*
/// functional snapshot at an exact commit count.
pub trait CheckpointSource<I>: CommitChecker<I> {
    /// Capture the reference machine's current architectural state.
    fn snapshot(&self) -> ArchSnapshot;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reglist_mirrors_argset_dedup() {
        let mut l = RegList::new();
        assert!(l.is_empty());
        l.push(8);
        l.push(8); // dup of slot 0: dropped
        assert_eq!(l.len(), 1);
        l.push(9);
        assert_eq!(l.len(), 2);
        l.push(10); // full: dropped
        assert_eq!(l.iter().collect::<Vec<_>>(), vec![8, 9]);
        assert!(l.contains(9));
        assert!(!l.contains(10));

        // ArgSet's quirk, preserved on purpose: a duplicate of slot 1
        // (not slot 0) is admitted. PISA never produces that pattern
        // (uses()/defs() never emit x,y,y), and mirroring exactly keeps
        // the rename walk byte-identical.
        let mut q = RegList::new();
        q.push(1);
        q.push(2);
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn emu_error_text_is_stable() {
        let e = EmuError::Misaligned {
            pc: 0x0040_0000,
            addr: 0x1000_0001,
        };
        assert_eq!(
            e.to_string(),
            "misaligned access to 0x10000001 at PC 0x00400000"
        );
        assert_eq!(e.pc(), 0x0040_0000);
    }
}
