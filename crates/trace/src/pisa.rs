//! Binding of the repo's native PISA-like ISA ([`popk_isa::Insn`]) to
//! the micro-op boundary.
//!
//! This module is the single source of truth for how PISA opcodes map
//! onto the timing core's scheduling vocabulary (execution class,
//! Fig. 8 slice class, latency class, control kind) — the mapping the
//! pipeline's per-stage `match op` arms used to embed.

use crate::{CtrlKind, ExecClass, LatClass, RegList, Uop, UopInsn, UopMeta};
use popk_isa::{Insn, Op, OpClass, Reg, SliceClass};
use popk_slice::AluSliceOp;

impl Uop<Insn> {
    /// The value of source register `r`, if this instruction reads it.
    pub fn src_val(&self, r: Reg) -> Option<u32> {
        self.insn
            .uses()
            .iter()
            .position(|u| u == r)
            .map(|i| self.src_vals[i])
    }
}

fn reglist(args: popk_isa::ArgSet) -> RegList {
    let mut l = RegList::new();
    for r in args.iter() {
        l.push(r.index() as u8);
    }
    l
}

impl UopInsn for Insn {
    const NUM_REGS: usize = Reg::COUNT;

    fn meta(&self) -> UopMeta {
        let op = self.op();
        let class = match op.class() {
            OpClass::MulDiv => ExecClass::MulDiv,
            OpClass::Fp => match op {
                Op::AddS | Op::SubS | Op::CvtSW | Op::CvtWS => ExecClass::FpAdd,
                _ => ExecClass::FpLong,
            },
            OpClass::Sys => ExecClass::Sys,
            OpClass::Jump => match op {
                Op::J | Op::Jal => ExecClass::Front,
                _ => ExecClass::IntSliced, // jr/jalr read a register
            },
            _ => ExecClass::IntSliced,
        };
        // beq/bne compare slices independently (equality); the
        // sign-testing branches carry-chain (subtract + sign).
        let slice_class = match op {
            Op::Beq | Op::Bne => SliceClass::Independent,
            _ => op.slice_class(),
        };
        let lat = match op {
            Op::Mult | Op::Multu => LatClass::Mult,
            Op::Div | Op::Divu => LatClass::Div,
            Op::Mfhi | Op::Mflo | Op::Mthi | Op::Mtlo => LatClass::HiLoMove,
            Op::AddS | Op::SubS | Op::CvtSW | Op::CvtWS => LatClass::FpAdd,
            Op::MulS => LatClass::FpMul,
            Op::DivS => LatClass::FpDiv,
            Op::SqrtS => LatClass::FpSqrt,
            _ => LatClass::Alu,
        };
        let ctrl = match op {
            Op::J => Some(CtrlKind::DirectJump { is_call: false }),
            Op::Jal => Some(CtrlKind::DirectJump { is_call: true }),
            Op::Jr => Some(CtrlKind::IndirectJump {
                is_call: false,
                is_return: self.rs() == Reg::RA,
            }),
            Op::Jalr => Some(CtrlKind::IndirectJump {
                is_call: true,
                is_return: false,
            }),
            _ => op.branch_cond().map(CtrlKind::CondBranch),
        };
        UopMeta {
            class,
            slice_class,
            lat,
            ctrl,
            // Set-less-than results depend on the *entire* comparison,
            // so no slice of the output exists before the top slice.
            late_result: matches!(op, Op::Slt | Op::Sltu | Op::Slti | Op::Sltiu),
            is_load: op.is_load(),
            is_store: op.is_store(),
            mem_bytes: op.mem_width().map_or(0, |m| m.bytes() as u8),
        }
    }

    fn src_regs(&self) -> RegList {
        reglist(self.uses())
    }

    fn dst_regs(&self) -> RegList {
        reglist(self.defs())
    }

    fn store_data_reg(&self) -> Option<u8> {
        self.op().is_store().then(|| self.rt().index() as u8)
    }

    fn phantom_nop() -> Insn {
        Insn::r3(Op::Addu, Reg::ZERO, Reg::ZERO, Reg::ZERO)
    }

    fn branch_cmp(rec: &Uop<Insn>) -> (u32, u32) {
        (rec.src_vals[0], rec.src_val(rec.insn.rt()).unwrap_or(0))
    }

    fn alu_lane(rec: &Uop<Insn>) -> Option<(AluSliceOp, u32, u32)> {
        use AluSliceOp as A;
        let insn = rec.insn;
        let def = insn.defs().iter().next()?;
        if def.is_zero() {
            return None;
        }
        let imm = insn.imm() as u32;
        let rs = || rec.src_val(insn.rs()).unwrap_or(0);
        let rt = || rec.src_val(insn.rt()).unwrap_or(0);
        Some(match insn.op() {
            Op::Add | Op::Addu => (A::Add, rs(), rt()),
            Op::Sub | Op::Subu => (A::Sub, rs(), rt()),
            Op::Slt => (A::Slt, rs(), rt()),
            Op::Sltu => (A::Sltu, rs(), rt()),
            Op::And => (A::And, rs(), rt()),
            Op::Or => (A::Or, rs(), rt()),
            Op::Xor => (A::Xor, rs(), rt()),
            Op::Nor => (A::Nor, rs(), rt()),
            Op::Addi | Op::Addiu => (A::Add, rs(), imm),
            Op::Slti => (A::Slt, rs(), imm),
            Op::Sltiu => (A::Sltu, rs(), imm),
            Op::Andi => (A::And, rs(), imm),
            Op::Ori => (A::Or, rs(), imm),
            Op::Xori => (A::Xor, rs(), imm),
            // lui's immediate is pre-shifted by the assembler; OR-with-zero
            // routes it through the logic slices.
            Op::Lui => (A::Or, 0, imm),
            Op::Sll => (A::Sll, rt(), imm),
            Op::Srl => (A::Srl, rt(), imm),
            Op::Sra => (A::Sra, rt(), imm),
            Op::Sllv => (A::Sll, rt(), rs()),
            Op::Srlv => (A::Srl, rt(), rs()),
            Op::Srav => (A::Sra, rt(), rs()),
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_classes() {
        let m = |op: Op| Insn::r3(op, Reg::gpr(8), Reg::gpr(9), Reg::gpr(10)).meta();
        assert_eq!(m(Op::Addu).class, ExecClass::IntSliced);
        assert!(!m(Op::Addu).is_load && !m(Op::Addu).is_store);
        let lw = Insn::load(Op::Lw, Reg::gpr(8), 0, Reg::gpr(9)).meta();
        assert!(lw.is_load && !lw.is_store);
        assert_eq!(lw.class, ExecClass::IntSliced, "agen is sliced");
        assert_eq!(lw.mem_bytes, 4);
        assert_eq!(Insn::jump(Op::J, 0x1000).meta().class, ExecClass::Front);
        assert_eq!(
            Insn::jump_reg(Op::Jr, Reg::ZERO, Reg::RA).meta().class,
            ExecClass::IntSliced
        );
        assert_eq!(
            Insn::muldiv(Op::Mult, Reg::gpr(8), Reg::gpr(9)).meta().lat,
            LatClass::Mult
        );
        assert_eq!(Insn::sys(Op::Syscall).meta().class, ExecClass::Sys);
    }

    #[test]
    fn branches_compare_independently() {
        let b = |op: Op| Insn::branch(op, Reg::gpr(8), Reg::gpr(9), 4).meta();
        assert_eq!(b(Op::Beq).slice_class, SliceClass::Independent);
        assert_eq!(b(Op::Bne).slice_class, SliceClass::Independent);
        assert_eq!(b(Op::Bgez).slice_class, SliceClass::CarryChained);
        assert!(
            Insn::r3(Op::Slt, Reg::gpr(8), Reg::gpr(9), Reg::gpr(10))
                .meta()
                .late_result
        );
    }

    #[test]
    fn control_kinds_and_returns() {
        use CtrlKind::*;
        assert_eq!(
            Insn::jump(Op::Jal, 0x1000).meta().ctrl,
            Some(DirectJump { is_call: true })
        );
        assert_eq!(
            Insn::jump_reg(Op::Jr, Reg::ZERO, Reg::RA).meta().ctrl,
            Some(IndirectJump {
                is_call: false,
                is_return: true
            })
        );
        assert_eq!(
            Insn::jump_reg(Op::Jr, Reg::ZERO, Reg::gpr(8)).meta().ctrl,
            Some(IndirectJump {
                is_call: false,
                is_return: false
            })
        );
    }

    #[test]
    fn reg_lists_mirror_uses_and_defs() {
        let store = Insn::store(Op::Sw, Reg::gpr(8), 4, Reg::gpr(9));
        let srcs: Vec<u8> = store.src_regs().iter().collect();
        assert_eq!(srcs, vec![9, 8], "base then data, like uses()");
        assert_eq!(store.store_data_reg(), Some(8));
        assert!(store.dst_regs().is_empty());

        let add = Insn::r3(Op::Addu, Reg::gpr(8), Reg::gpr(9), Reg::gpr(9));
        assert_eq!(add.src_regs().len(), 1, "dedup like ArgSet");
        assert_eq!(add.dst_regs().iter().collect::<Vec<_>>(), vec![8]);
    }
}
