//! # popk-isa — a PISA-like 32-bit RISC instruction set
//!
//! This crate defines the instruction set used throughout the `popk`
//! workspace: a MIPS-I-flavoured, 32-bit, load/store ISA closely modelled on
//! the SimpleScalar *PISA* instruction set that the paper
//! "Exploiting Partial Operand Knowledge" (Mestan & Lipasti, ICPP 2003)
//! evaluates on.
//!
//! It provides:
//!
//! * [`Reg`] — architectural register names (32 GPRs plus `HI`/`LO`),
//! * [`Op`] — the opcode enumeration with static metadata
//!   ([`Op::class`], [`Op::slice_class`], …),
//! * [`Insn`] — a decoded instruction with typed operand accessors,
//! * [`encode`]/[`decode`] — a fixed 32-bit binary encoding,
//! * [`asm`] — a two-pass textual assembler ([`asm::assemble`]),
//! * [`obj`] — a binary object format for assembled images,
//! * [`builder`] — a programmatic assembler used by the workload kernels,
//! * [`Program`] — an assembled image (text + data + entry point).
//!
//! The six conditional branch types (`beq`, `bne`, `blez`, `bgtz`, `bltz`,
//! `bgez`) match the paper's §5.3 taxonomy: only `beq`/`bne` can resolve a
//! misprediction from partial (low-order) operand bits, because the other
//! four require the sign bit.
//!
//! ```
//! use popk_isa::{asm, Op};
//!
//! let program = asm::assemble(
//!     r#"
//!     .text
//!     main:
//!         addiu r2, r0, 10
//!     loop:
//!         addiu r2, r2, -1
//!         bne   r2, r0, loop
//!         syscall            # exit
//!     "#,
//! )
//! .unwrap();
//! assert_eq!(program.text.len(), 4);
//! assert_eq!(program.text[1].op(), Op::Addiu);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asm;
pub mod builder;
mod encode;
mod insn;
pub mod obj;
mod op;
mod program;
mod reg;
pub mod rng;

pub use encode::{decode, encode, DecodeError};
pub use insn::{ArgSet, Insn};
pub use op::{BranchCond, MemWidth, Op, OpClass, SliceClass};
pub use program::{Program, DATA_BASE, STACK_TOP, TEXT_BASE};
pub use reg::Reg;
