//! Binary encoding and decoding.
//!
//! The layout follows the classic MIPS-I formats:
//!
//! ```text
//! R-type: | op:6 | rs:5 | rt:5 | rd:5 | shamt:5 | funct:6 |
//! I-type: | op:6 | rs:5 | rt:5 |        imm16            |
//! J-type: | op:6 |            target:26                  |
//! ```
//!
//! Primary opcode 0 selects the SPECIAL (funct-dispatched) group, opcode 1
//! the REGIMM group (`bltz`/`bgez` via the `rt` field), and opcode 0x11 the
//! floating-point group (funct-dispatched, operating on GPR bit patterns in
//! this synthetic ISA).

use crate::insn::Insn;
use crate::op::Op;
use crate::reg::Reg;

/// Error returned by [`decode`] for bit patterns that are not valid
/// instructions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DecodeError {
    /// The offending instruction word.
    pub word: u32,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid instruction word {:#010x}", self.word)
    }
}

impl std::error::Error for DecodeError {}

const SPECIAL: u32 = 0;
const REGIMM: u32 = 1;
const FP: u32 = 0x11;

fn funct_of(op: Op) -> Option<u32> {
    Some(match op {
        Op::Sll => 0,
        Op::Srl => 2,
        Op::Sra => 3,
        Op::Sllv => 4,
        Op::Srlv => 6,
        Op::Srav => 7,
        Op::Jr => 8,
        Op::Jalr => 9,
        Op::Syscall => 12,
        Op::Break => 13,
        Op::Mfhi => 16,
        Op::Mthi => 17,
        Op::Mflo => 18,
        Op::Mtlo => 19,
        Op::Mult => 24,
        Op::Multu => 25,
        Op::Div => 26,
        Op::Divu => 27,
        Op::Add => 32,
        Op::Addu => 33,
        Op::Sub => 34,
        Op::Subu => 35,
        Op::And => 36,
        Op::Or => 37,
        Op::Xor => 38,
        Op::Nor => 39,
        Op::Slt => 42,
        Op::Sltu => 43,
        _ => return None,
    })
}

fn special_op(funct: u32) -> Option<Op> {
    Some(match funct {
        0 => Op::Sll,
        2 => Op::Srl,
        3 => Op::Sra,
        4 => Op::Sllv,
        6 => Op::Srlv,
        7 => Op::Srav,
        8 => Op::Jr,
        9 => Op::Jalr,
        12 => Op::Syscall,
        13 => Op::Break,
        16 => Op::Mfhi,
        17 => Op::Mthi,
        18 => Op::Mflo,
        19 => Op::Mtlo,
        24 => Op::Mult,
        25 => Op::Multu,
        26 => Op::Div,
        27 => Op::Divu,
        32 => Op::Add,
        33 => Op::Addu,
        34 => Op::Sub,
        35 => Op::Subu,
        36 => Op::And,
        37 => Op::Or,
        38 => Op::Xor,
        39 => Op::Nor,
        42 => Op::Slt,
        43 => Op::Sltu,
        _ => return None,
    })
}

fn fp_funct_of(op: Op) -> Option<u32> {
    Some(match op {
        Op::AddS => 0,
        Op::SubS => 1,
        Op::MulS => 2,
        Op::DivS => 3,
        Op::SqrtS => 4,
        Op::CvtWS => 36,
        Op::CvtSW => 32,
        _ => return None,
    })
}

fn fp_op(funct: u32) -> Option<Op> {
    Some(match funct {
        0 => Op::AddS,
        1 => Op::SubS,
        2 => Op::MulS,
        3 => Op::DivS,
        4 => Op::SqrtS,
        36 => Op::CvtWS,
        32 => Op::CvtSW,
        _ => return None,
    })
}

fn primary_of(op: Op) -> Option<u32> {
    Some(match op {
        Op::J => 2,
        Op::Jal => 3,
        Op::Beq => 4,
        Op::Bne => 5,
        Op::Blez => 6,
        Op::Bgtz => 7,
        Op::Addi => 8,
        Op::Addiu => 9,
        Op::Slti => 10,
        Op::Sltiu => 11,
        Op::Andi => 12,
        Op::Ori => 13,
        Op::Xori => 14,
        Op::Lui => 15,
        Op::Lb => 32,
        Op::Lh => 33,
        Op::Lw => 35,
        Op::Lbu => 36,
        Op::Lhu => 37,
        Op::Sb => 40,
        Op::Sh => 41,
        Op::Sw => 43,
        _ => return None,
    })
}

fn primary_op(primary: u32) -> Option<Op> {
    Some(match primary {
        2 => Op::J,
        3 => Op::Jal,
        4 => Op::Beq,
        5 => Op::Bne,
        6 => Op::Blez,
        7 => Op::Bgtz,
        8 => Op::Addi,
        9 => Op::Addiu,
        10 => Op::Slti,
        11 => Op::Sltiu,
        12 => Op::Andi,
        13 => Op::Ori,
        14 => Op::Xori,
        15 => Op::Lui,
        32 => Op::Lb,
        33 => Op::Lh,
        35 => Op::Lw,
        36 => Op::Lbu,
        37 => Op::Lhu,
        40 => Op::Sb,
        41 => Op::Sh,
        43 => Op::Sw,
        _ => return None,
    })
}

#[inline]
fn r(op: u32, rs: u32, rt: u32, rd: u32, shamt: u32, funct: u32) -> u32 {
    (op << 26) | (rs << 21) | (rt << 16) | (rd << 11) | (shamt << 6) | funct
}

#[inline]
fn i_fmt(op: u32, rs: u32, rt: u32, imm16: u32) -> u32 {
    (op << 26) | (rs << 21) | (rt << 16) | (imm16 & 0xffff)
}

/// Encode an instruction to its 32-bit binary form.
///
/// # Panics
/// Panics if an immediate or displacement does not fit in its field; the
/// assembler and builder validate ranges before constructing [`Insn`]s.
pub fn encode(insn: &Insn) -> u32 {
    let op = insn.op();
    let rd = |x: Reg| x.encoding();
    // Every op reaching the I-format arms below has a primary opcode by
    // construction of the match.
    let primary =
        |op: Op| primary_of(op).unwrap_or_else(|| unreachable!("{op:?} has no primary opcode"));
    if let Some(f) = funct_of(op) {
        return match op {
            Op::Sll | Op::Srl | Op::Sra => r(
                SPECIAL,
                0,
                rd(insn.rt()),
                rd(insn.rd()),
                insn.imm() as u32 & 31,
                f,
            ),
            Op::Sllv | Op::Srlv | Op::Srav => {
                r(SPECIAL, rd(insn.rs()), rd(insn.rt()), rd(insn.rd()), 0, f)
            }
            Op::Jr => r(SPECIAL, rd(insn.rs()), 0, 0, 0, f),
            Op::Jalr => r(SPECIAL, rd(insn.rs()), 0, rd(insn.rd()), 0, f),
            Op::Syscall | Op::Break => r(SPECIAL, 0, 0, 0, 0, f),
            Op::Mfhi | Op::Mflo => r(SPECIAL, 0, 0, rd(insn.rd()), 0, f),
            Op::Mthi | Op::Mtlo => r(SPECIAL, rd(insn.rs()), 0, 0, 0, f),
            Op::Mult | Op::Multu | Op::Div | Op::Divu => {
                r(SPECIAL, rd(insn.rs()), rd(insn.rt()), 0, 0, f)
            }
            _ => r(SPECIAL, rd(insn.rs()), rd(insn.rt()), rd(insn.rd()), 0, f),
        };
    }
    if let Some(f) = fp_funct_of(op) {
        return match op {
            Op::SqrtS | Op::CvtWS | Op::CvtSW => r(FP, rd(insn.rs()), 0, rd(insn.rd()), 0, f),
            _ => r(FP, rd(insn.rs()), rd(insn.rt()), rd(insn.rd()), 0, f),
        };
    }
    match op {
        Op::Bltz => i_fmt(REGIMM, insn.rs().encoding(), 0, imm16_disp(insn.imm())),
        Op::Bgez => i_fmt(REGIMM, insn.rs().encoding(), 1, imm16_disp(insn.imm())),
        Op::J | Op::Jal => {
            let target = insn.imm() as u32;
            assert!(target < (1 << 26), "jump target out of range");
            (primary(op) << 26) | target
        }
        Op::Beq | Op::Bne => i_fmt(
            primary(op),
            insn.rs().encoding(),
            insn.rt().encoding(),
            imm16_disp(insn.imm()),
        ),
        Op::Blez | Op::Bgtz => i_fmt(primary(op), insn.rs().encoding(), 0, imm16_disp(insn.imm())),
        Op::Lui => i_fmt(15, 0, insn.rd().encoding(), (insn.imm() as u32) >> 16),
        Op::Andi | Op::Ori | Op::Xori => {
            let imm = insn.imm() as u32;
            assert!(imm <= 0xffff, "logical immediate out of range");
            i_fmt(primary(op), insn.rs().encoding(), insn.rd().encoding(), imm)
        }
        Op::Addi | Op::Addiu | Op::Slti | Op::Sltiu => i_fmt(
            primary(op),
            insn.rs().encoding(),
            insn.rd().encoding(),
            imm16_disp(insn.imm()),
        ),
        op if op.is_load() => i_fmt(
            primary(op),
            insn.rs().encoding(),
            insn.rd().encoding(),
            imm16_disp(insn.imm()),
        ),
        op if op.is_store() => i_fmt(
            primary(op),
            insn.rs().encoding(),
            insn.rt().encoding(),
            imm16_disp(insn.imm()),
        ),
        _ => unreachable!("unhandled opcode {op:?}"),
    }
}

fn imm16_disp(v: i32) -> u32 {
    assert!(
        (-32768..=32767).contains(&v),
        "immediate {v} out of i16 range"
    );
    (v as u32) & 0xffff
}

/// Decode a 32-bit instruction word.
pub fn decode(word: u32) -> Result<Insn, DecodeError> {
    let primary = word >> 26;
    let rs = Reg::gpr(((word >> 21) & 31) as u8);
    let rt = Reg::gpr(((word >> 16) & 31) as u8);
    let rd_f = Reg::gpr(((word >> 11) & 31) as u8);
    let shamt = (word >> 6) & 31;
    let funct = word & 63;
    let simm = (word & 0xffff) as u16 as i16;
    let uimm = (word & 0xffff) as i32;
    let err = || DecodeError { word };

    match primary {
        SPECIAL => {
            let op = special_op(funct).ok_or_else(err)?;
            Ok(match op {
                Op::Sll | Op::Srl | Op::Sra => Insn::shift_imm(op, rd_f, rt, shamt as u8),
                Op::Sllv | Op::Srlv | Op::Srav => Insn::r3(op, rd_f, rs, rt),
                Op::Jr => Insn::jump_reg(op, Reg::ZERO, rs),
                Op::Jalr => Insn::jump_reg(op, rd_f, rs),
                Op::Syscall | Op::Break => Insn::sys(op),
                Op::Mfhi | Op::Mflo => Insn::mfhilo(op, rd_f),
                Op::Mthi | Op::Mtlo => Insn::mthilo(op, rs),
                Op::Mult | Op::Multu | Op::Div | Op::Divu => Insn::muldiv(op, rs, rt),
                _ => Insn::r3(op, rd_f, rs, rt),
            })
        }
        REGIMM => match (word >> 16) & 31 {
            0 => Ok(Insn::branch(Op::Bltz, rs, Reg::ZERO, simm as i32)),
            1 => Ok(Insn::branch(Op::Bgez, rs, Reg::ZERO, simm as i32)),
            _ => Err(err()),
        },
        FP => {
            let op = fp_op(funct).ok_or_else(err)?;
            Ok(Insn::r3(op, rd_f, rs, rt))
        }
        _ => {
            let op = primary_op(primary).ok_or_else(err)?;
            Ok(match op {
                Op::J | Op::Jal => Insn::jump(op, word & 0x03ff_ffff),
                Op::Beq | Op::Bne => Insn::branch(op, rs, rt, simm as i32),
                Op::Blez | Op::Bgtz => Insn::branch(op, rs, Reg::ZERO, simm as i32),
                Op::Lui => Insn::lui(rt, uimm as u16),
                Op::Andi | Op::Ori | Op::Xori => Insn::imm_op(op, rt, rs, uimm),
                Op::Addi | Op::Addiu | Op::Slti | Op::Sltiu => {
                    Insn::imm_op(op, rt, rs, simm as i32)
                }
                op if op.is_load() => Insn::load(op, rt, simm, rs),
                op if op.is_store() => Insn::store(op, rt, simm, rs),
                _ => return Err(err()),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::OpClass;

    fn sample_insns() -> Vec<Insn> {
        let g = Reg::gpr;
        vec![
            Insn::r3(Op::Add, g(3), g(1), g(2)),
            Insn::r3(Op::Subu, g(9), g(10), g(11)),
            Insn::r3(Op::Nor, g(5), g(6), g(7)),
            Insn::r3(Op::Sltu, g(1), g(2), g(3)),
            Insn::shift_imm(Op::Sll, g(4), g(5), 13),
            Insn::shift_imm(Op::Sra, g(4), g(5), 31),
            Insn::r3(Op::Srlv, g(4), g(5), g(6)),
            Insn::imm_op(Op::Addiu, g(8), g(9), -1),
            Insn::imm_op(Op::Slti, g(8), g(9), 1000),
            Insn::imm_op(Op::Andi, g(2), g(3), 0x0001),
            Insn::imm_op(Op::Ori, g(2), g(3), 0xffff),
            Insn::lui(g(2), 0x1002),
            Insn::load(Op::Lw, g(4), -32768, g(29)),
            Insn::load(Op::Lbu, g(3), 1, g(16)),
            Insn::store(Op::Sw, g(4), 32767, g(29)),
            Insn::store(Op::Sb, g(4), 0, g(8)),
            Insn::branch(Op::Beq, g(5), g(4), -100),
            Insn::branch(Op::Bne, g(2), Reg::ZERO, 12),
            Insn::branch(Op::Blez, g(2), Reg::ZERO, 3),
            Insn::branch(Op::Bgtz, g(2), Reg::ZERO, 3),
            Insn::branch(Op::Bltz, g(2), Reg::ZERO, -3),
            Insn::branch(Op::Bgez, g(2), Reg::ZERO, 0),
            Insn::jump(Op::J, 0x12345),
            Insn::jump(Op::Jal, 0x3ff_ffff),
            Insn::jump_reg(Op::Jr, Reg::ZERO, Reg::RA),
            Insn::jump_reg(Op::Jalr, Reg::RA, g(25)),
            Insn::muldiv(Op::Mult, g(4), g(5)),
            Insn::muldiv(Op::Divu, g(4), g(5)),
            Insn::mfhilo(Op::Mfhi, g(2)),
            Insn::mfhilo(Op::Mflo, g(3)),
            Insn::mthilo(Op::Mthi, g(2)),
            Insn::mthilo(Op::Mtlo, g(3)),
            Insn::sys(Op::Syscall),
            Insn::sys(Op::Break),
            Insn::r3(Op::AddS, g(1), g(2), g(3)),
            Insn::r3(Op::DivS, g(1), g(2), g(3)),
            Insn::nop(),
        ]
    }

    #[test]
    fn roundtrip_samples() {
        for insn in sample_insns() {
            let word = encode(&insn);
            let back = decode(word).unwrap_or_else(|e| panic!("{insn}: {e}"));
            assert_eq!(back, insn, "word {word:#010x} for {insn}");
        }
    }

    #[test]
    fn every_opcode_is_encodable() {
        // Ensure no opcode falls through all encoder arms.
        for &op in Op::ALL {
            let g = Reg::gpr;
            let insn = match op.class() {
                OpClass::IntAlu | OpClass::Logic if primary_of(op).is_some() && op != Op::Lui => {
                    Insn::imm_op(op, g(1), g(2), 1)
                }
                OpClass::Logic if op == Op::Lui => Insn::lui(g(1), 7),
                OpClass::Fp if matches!(op, Op::SqrtS | Op::CvtWS | Op::CvtSW) => {
                    // Unary FP ops encode no rt field.
                    Insn::r3(op, g(1), g(2), Reg::ZERO)
                }
                OpClass::IntAlu | OpClass::Logic | OpClass::Fp => Insn::r3(op, g(1), g(2), g(3)),
                OpClass::Shift => match op {
                    Op::Sll | Op::Srl | Op::Sra => Insn::shift_imm(op, g(1), g(2), 3),
                    _ => Insn::r3(op, g(1), g(2), g(3)),
                },
                OpClass::MulDiv => match op {
                    Op::Mfhi | Op::Mflo => Insn::mfhilo(op, g(1)),
                    Op::Mthi | Op::Mtlo => Insn::mthilo(op, g(1)),
                    _ => Insn::muldiv(op, g(1), g(2)),
                },
                OpClass::Load => Insn::load(op, g(1), 4, g(2)),
                OpClass::Store => Insn::store(op, g(1), 4, g(2)),
                OpClass::Branch => match op {
                    // Single-source branches encode no rt field.
                    Op::Beq | Op::Bne => Insn::branch(op, g(1), g(2), 1),
                    _ => Insn::branch(op, g(1), Reg::ZERO, 1),
                },
                OpClass::Jump => match op {
                    Op::J | Op::Jal => Insn::jump(op, 16),
                    // `jr` encodes no rd field.
                    Op::Jr => Insn::jump_reg(op, Reg::ZERO, g(2)),
                    _ => Insn::jump_reg(op, g(31), g(2)),
                },
                OpClass::Sys => Insn::sys(op),
            };
            let back = decode(encode(&insn)).unwrap();
            assert_eq!(back, insn, "{op:?}");
        }
    }

    #[test]
    fn invalid_words_rejected() {
        assert!(decode(0x0000_003f).is_err()); // SPECIAL funct 63
        assert!(decode(0x0409_0000).is_err()); // REGIMM rt=9
        assert!(decode(0xfc00_0000).is_err()); // primary 63
    }

    #[test]
    fn nop_is_all_zeros() {
        assert_eq!(encode(&Insn::nop()), 0);
        assert_eq!(decode(0).unwrap(), Insn::nop());
    }
}
