//! Architectural register names.

use std::fmt;

/// An architectural register.
///
/// The ISA exposes 32 general-purpose registers `r0`–`r31` (with `r0`
/// hardwired to zero, as in MIPS/PISA) and the two multiply/divide result
/// registers `HI` and `LO`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Reg(u8);

impl Reg {
    /// The hardwired-zero register `r0`.
    pub const ZERO: Reg = Reg(0);
    /// Conventional assembler temporary `r1`.
    pub const AT: Reg = Reg(1);
    /// Conventional return-value register `r2`.
    pub const V0: Reg = Reg(2);
    /// Second return-value register `r3`.
    pub const V1: Reg = Reg(3);
    /// First argument register `r4`.
    pub const A0: Reg = Reg(4);
    /// Second argument register `r5`.
    pub const A1: Reg = Reg(5);
    /// Third argument register `r6`.
    pub const A2: Reg = Reg(6);
    /// Fourth argument register `r7`.
    pub const A3: Reg = Reg(7);
    /// Stack pointer `r29`.
    pub const SP: Reg = Reg(29);
    /// Frame pointer `r30`.
    pub const FP: Reg = Reg(30);
    /// Return-address register `r31`.
    pub const RA: Reg = Reg(31);
    /// The multiply/divide high-half result register.
    pub const HI: Reg = Reg(32);
    /// The multiply/divide low-half result register.
    pub const LO: Reg = Reg(33);

    /// Total number of architectural registers (32 GPRs + HI + LO).
    pub const COUNT: usize = 34;

    /// Construct a general-purpose register `r<n>`.
    ///
    /// # Panics
    /// Panics if `n >= 32`.
    #[inline]
    pub const fn gpr(n: u8) -> Reg {
        assert!(n < 32, "GPR index out of range");
        Reg(n)
    }

    /// Construct from a raw architectural index (GPRs, then HI=32, LO=33).
    ///
    /// # Panics
    /// Panics if `n >= Reg::COUNT`.
    #[inline]
    pub const fn from_index(n: usize) -> Reg {
        assert!(n < Reg::COUNT, "register index out of range");
        Reg(n as u8)
    }

    /// The architectural index: GPRs map to `0..32`, `HI` to 32, `LO` to 33.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// The 5-bit GPR field used in instruction encodings.
    ///
    /// # Panics
    /// Panics if this is `HI` or `LO`, which are never encoded in a register
    /// field (they are implicit operands of `mult`/`div`/`mfhi`/`mflo`).
    #[inline]
    pub const fn encoding(self) -> u32 {
        assert!(self.0 < 32, "HI/LO are not encodable register fields");
        self.0 as u32
    }

    /// True for the hardwired-zero register.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// True for a general-purpose register (`r0`–`r31`).
    #[inline]
    pub const fn is_gpr(self) -> bool {
        self.0 < 32
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.0 {
            32 => write!(f, "hi"),
            33 => write!(f, "lo"),
            n => write!(f, "r{n}"),
        }
    }
}

/// Parse a register name: `r0`..`r31`, `$0`..`$31`, `hi`, `lo`, or the
/// conventional aliases (`zero`, `at`, `v0`, `v1`, `a0`–`a3`, `sp`, `fp`,
/// `ra`).
pub(crate) fn parse_reg(s: &str) -> Option<Reg> {
    let s = s.trim();
    match s {
        "hi" => return Some(Reg::HI),
        "lo" => return Some(Reg::LO),
        "zero" => return Some(Reg::ZERO),
        "at" => return Some(Reg::AT),
        "v0" => return Some(Reg::V0),
        "v1" => return Some(Reg::V1),
        "a0" => return Some(Reg::A0),
        "a1" => return Some(Reg::A1),
        "a2" => return Some(Reg::A2),
        "a3" => return Some(Reg::A3),
        "sp" => return Some(Reg::SP),
        "fp" => return Some(Reg::FP),
        "ra" => return Some(Reg::RA),
        _ => {}
    }
    let digits = s.strip_prefix('r').or_else(|| s.strip_prefix('$'))?;
    let n: u8 = digits.parse().ok()?;
    (n < 32).then(|| Reg::gpr(n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_roundtrip() {
        for i in 0..32 {
            let r = Reg::gpr(i);
            assert_eq!(parse_reg(&r.to_string()), Some(r));
        }
        assert_eq!(parse_reg("hi"), Some(Reg::HI));
        assert_eq!(parse_reg("lo"), Some(Reg::LO));
    }

    #[test]
    fn aliases() {
        assert_eq!(parse_reg("sp"), Some(Reg::gpr(29)));
        assert_eq!(parse_reg("ra"), Some(Reg::gpr(31)));
        assert_eq!(parse_reg("$4"), Some(Reg::A0));
        assert_eq!(parse_reg("zero"), Some(Reg::ZERO));
    }

    #[test]
    fn rejects_out_of_range() {
        assert_eq!(parse_reg("r32"), None);
        assert_eq!(parse_reg("x5"), None);
        assert_eq!(parse_reg(""), None);
    }

    #[test]
    fn indices() {
        assert_eq!(Reg::HI.index(), 32);
        assert_eq!(Reg::LO.index(), 33);
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::HI.is_gpr());
    }

    #[test]
    #[should_panic]
    fn hi_not_encodable() {
        let _ = Reg::HI.encoding();
    }
}
