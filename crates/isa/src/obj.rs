//! A tiny binary object format for assembled programs.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic   b"POPK"            4 bytes
//! version u16 = 1            2
//! flags   u16 = 0            2
//! entry   u32                4
//! n_text  u32                4     instruction count
//! n_data  u32                4     data bytes
//! n_syms  u32                4     symbol count
//! text    n_text × u32             encoded instructions
//! data    n_data bytes
//! syms    n_syms × (u32 addr, u16 len, len bytes of UTF-8 name)
//! ```
//!
//! The format exists so the `popk` CLI can assemble once and reuse the
//! image (`popk asm prog.s -o prog.popk; popk sim prog.popk`), and it
//! doubles as an end-to-end exercise of the binary encoder: every
//! instruction round-trips through [`encode`]/[`decode`].

use crate::encode::{decode, encode};
use crate::program::Program;
use std::collections::BTreeMap;
use std::fmt;

const MAGIC: &[u8; 4] = b"POPK";
const VERSION: u16 = 1;

/// Errors from [`read_object`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ObjError {
    /// Missing or wrong magic/version.
    BadHeader(String),
    /// The file ended before the declared contents.
    Truncated,
    /// An instruction word failed to decode.
    BadInsn(u32),
    /// A symbol name was not valid UTF-8.
    BadSymbol,
}

impl fmt::Display for ObjError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjError::BadHeader(m) => write!(f, "bad object header: {m}"),
            ObjError::Truncated => f.write_str("truncated object file"),
            ObjError::BadInsn(w) => write!(f, "undecodable instruction {w:#010x}"),
            ObjError::BadSymbol => f.write_str("symbol name is not UTF-8"),
        }
    }
}

impl std::error::Error for ObjError {}

/// Serialize a program to the object format.
pub fn write_object(program: &Program) -> Vec<u8> {
    let mut out = Vec::with_capacity(24 + program.text.len() * 4 + program.data.len());
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    out.extend_from_slice(&0u16.to_le_bytes());
    out.extend_from_slice(&program.entry.to_le_bytes());
    out.extend_from_slice(&(program.text.len() as u32).to_le_bytes());
    out.extend_from_slice(&(program.data.len() as u32).to_le_bytes());
    out.extend_from_slice(&(program.symbols.len() as u32).to_le_bytes());
    for insn in &program.text {
        out.extend_from_slice(&encode(insn).to_le_bytes());
    }
    out.extend_from_slice(&program.data);
    for (name, &addr) in &program.symbols {
        out.extend_from_slice(&addr.to_le_bytes());
        out.extend_from_slice(&(name.len() as u16).to_le_bytes());
        out.extend_from_slice(name.as_bytes());
    }
    out
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], ObjError> {
        let end = self.pos.checked_add(n).ok_or(ObjError::Truncated)?;
        if end > self.buf.len() {
            return Err(ObjError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }
    fn u16(&mut self) -> Result<u16, ObjError> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }
    fn u32(&mut self) -> Result<u32, ObjError> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    /// Bytes left after the cursor — an upper bound on any count a
    /// well-formed remainder can declare.
    fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.pos)
    }
}

/// Parse an object file back into a [`Program`].
pub fn read_object(bytes: &[u8]) -> Result<Program, ObjError> {
    let mut r = Reader { buf: bytes, pos: 0 };
    if r.take(4)? != MAGIC {
        return Err(ObjError::BadHeader("magic mismatch".into()));
    }
    let version = r.u16()?;
    if version != VERSION {
        return Err(ObjError::BadHeader(format!(
            "unsupported version {version}"
        )));
    }
    let _flags = r.u16()?;
    let entry = r.u32()?;
    let n_text = r.u32()? as usize;
    let n_data = r.u32()? as usize;
    let n_syms = r.u32()? as usize;
    // Sanity-bound the declared counts against the bytes actually
    // present before allocating: a corrupt header must yield
    // `Truncated`, not a multi-gigabyte `Vec::with_capacity`.
    if n_text.checked_mul(4).is_none_or(|b| b > r.remaining())
        || n_data > r.remaining()
        || n_syms.checked_mul(6).is_none_or(|b| b > r.remaining())
    {
        return Err(ObjError::Truncated);
    }

    let mut text = Vec::with_capacity(n_text);
    for _ in 0..n_text {
        let word = r.u32()?;
        text.push(decode(word).map_err(|_| ObjError::BadInsn(word))?);
    }
    let data = r.take(n_data)?.to_vec();
    let mut symbols = BTreeMap::new();
    for _ in 0..n_syms {
        let addr = r.u32()?;
        let len = r.u16()? as usize;
        let name = std::str::from_utf8(r.take(len)?).map_err(|_| ObjError::BadSymbol)?;
        symbols.insert(name.to_owned(), addr);
    }
    Ok(Program {
        text,
        data,
        entry,
        symbols,
    })
}

/// True if `bytes` begins with the object magic (used by tools to decide
/// between assembling text and loading a binary).
pub fn is_object(bytes: &[u8]) -> bool {
    bytes.starts_with(MAGIC)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn sample() -> Program {
        assemble(
            r#"
            .data
            tab: .word 1, 2, 3
            msg: .asciiz "hey"
            .text
            main:
                la r8, tab
                lw r9, 0(r8)
                addiu r9, r9, 5
                bne r9, r0, main
                li r2, 0
                syscall
            "#,
        )
        .unwrap()
    }

    #[test]
    fn roundtrip() {
        let p = sample();
        let bytes = write_object(&p);
        assert!(is_object(&bytes));
        let q = read_object(&bytes).unwrap();
        assert_eq!(q.text, p.text);
        assert_eq!(q.data, p.data);
        assert_eq!(q.entry, p.entry);
        assert_eq!(q.symbols, p.symbols);
    }

    #[test]
    fn rejects_garbage() {
        assert!(matches!(
            read_object(b"ELF!rest"),
            Err(ObjError::BadHeader(_))
        ));
        assert!(!is_object(b"#text"));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let bytes = write_object(&sample());
        for cut in [3usize, 6, 10, 20, bytes.len() - 1] {
            let err = read_object(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, ObjError::Truncated | ObjError::BadHeader(_)),
                "cut {cut}: {err:?}"
            );
        }
    }

    #[test]
    fn rejects_absurd_counts_without_allocating() {
        // Declare ~4 billion text words in a 40-byte file: the reader
        // must fail fast instead of reserving gigabytes.
        let mut bytes = write_object(&sample());
        for count_offset in [12usize, 16, 20] {
            let mut b = bytes.clone();
            b[count_offset..count_offset + 4].copy_from_slice(&u32::MAX.to_le_bytes());
            assert!(matches!(read_object(&b), Err(ObjError::Truncated)));
        }
        // Oversized-but-plausible count on a short file: same answer.
        bytes.truncate(28);
        bytes[12..16].copy_from_slice(&1000u32.to_le_bytes());
        assert!(matches!(read_object(&bytes), Err(ObjError::Truncated)));
    }

    #[test]
    fn rejects_wrong_version() {
        let mut bytes = write_object(&sample());
        bytes[4] = 9;
        assert!(matches!(read_object(&bytes), Err(ObjError::BadHeader(_))));
    }

    #[test]
    fn rejects_bad_instruction_words() {
        let mut bytes = write_object(&sample());
        // Corrupt the first text word (offset 24) to an invalid encoding.
        bytes[24..28].copy_from_slice(&0xfc00_0000u32.to_le_bytes());
        assert!(matches!(read_object(&bytes), Err(ObjError::BadInsn(_))));
    }
}
