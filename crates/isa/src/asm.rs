//! Two-pass textual assembler.
//!
//! Syntax is classic MIPS-style:
//!
//! ```text
//! # comment           ; also a comment
//! .text
//! main:
//!     li    r8, 0x10000000     # pseudo: lui+ori (always two words)
//!     lw    r9, 4(r8)
//!     addiu r9, r9, 1
//!     beq   r9, r0, done
//!     j     main
//! done:
//!     syscall
//! .data
//! table:  .word 1, 2, 3, 4
//! msg:    .asciiz "hello"
//! buf:    .space 64
//!         .align 4
//! ```
//!
//! Supported pseudo-instructions: `nop`, `li`, `la`, `move`, `b`.
//! `li`/`la` always assemble to two words (`lui`+`ori`) so that label
//! addresses are stable across passes.

use crate::insn::Insn;
use crate::op::Op;
use crate::program::{Program, DATA_BASE, TEXT_BASE};
use crate::reg::{parse_reg, Reg};
use std::collections::BTreeMap;
use std::fmt;

/// An assembly error with its 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number in the source text.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

type Result<T> = std::result::Result<T, AsmError>;

fn err<T>(line: usize, message: impl Into<String>) -> Result<T> {
    Err(AsmError {
        line,
        message: message.into(),
    })
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Section {
    Text,
    Data,
}

/// Assemble a complete source file into a [`Program`].
pub fn assemble(source: &str) -> Result<Program> {
    // ---- pass 1: compute label addresses --------------------------------
    let mut symbols: BTreeMap<String, u32> = BTreeMap::new();
    let mut section = Section::Text;
    let mut text_words: u32 = 0;
    let mut data_bytes: u32 = 0;

    for (lineno, raw) in source.lines().enumerate() {
        let lineno = lineno + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        let mut rest = line;
        while let Some((label, tail)) = split_label(rest) {
            let addr = match section {
                Section::Text => TEXT_BASE + text_words * 4,
                Section::Data => DATA_BASE + data_bytes,
            };
            if symbols.insert(label.to_owned(), addr).is_some() {
                return err(lineno, format!("duplicate label `{label}`"));
            }
            rest = tail.trim();
        }
        if rest.is_empty() {
            continue;
        }
        if let Some(directive) = rest.strip_prefix('.') {
            match directive_size(directive, lineno)? {
                DirectiveEffect::SetSection(s) => section = s,
                DirectiveEffect::Data { bytes, align } => {
                    if section != Section::Data {
                        return err(lineno, "data directive outside .data");
                    }
                    data_bytes = align_up(data_bytes, align) + bytes;
                }
            }
        } else {
            if section != Section::Text {
                return err(lineno, "instruction outside .text");
            }
            text_words += insn_words(rest, lineno)?;
        }
    }

    // ---- pass 2: emit ----------------------------------------------------
    let mut text: Vec<Insn> = Vec::with_capacity(text_words as usize);
    let mut data: Vec<u8> = Vec::with_capacity(data_bytes as usize);
    section = Section::Text;

    for (lineno, raw) in source.lines().enumerate() {
        let lineno = lineno + 1;
        let mut rest = strip_comment(raw).trim();
        while let Some((_, tail)) = split_label(rest) {
            rest = tail.trim();
        }
        if rest.is_empty() {
            continue;
        }
        if let Some(directive) = rest.strip_prefix('.') {
            match directive_size(directive, lineno)? {
                DirectiveEffect::SetSection(s) => section = s,
                DirectiveEffect::Data { align, .. } => {
                    while !(data.len() as u32).is_multiple_of(align) {
                        data.push(0);
                    }
                    emit_data(directive, &mut data, lineno)?;
                }
            }
        } else if section == Section::Text {
            emit_insn(rest, &mut text, &symbols, lineno)?;
        }
    }

    let entry = symbols.get("main").copied().unwrap_or(TEXT_BASE);
    Ok(Program {
        text,
        data,
        entry,
        symbols,
    })
}

fn strip_comment(line: &str) -> &str {
    // `#` and `;` start comments, except inside string literals.
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' | ';' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn split_label(line: &str) -> Option<(&str, &str)> {
    let colon = line.find(':')?;
    let (head, tail) = line.split_at(colon);
    let head = head.trim();
    if !head.is_empty()
        && head
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
        && !head.starts_with('.')
    {
        Some((head, &tail[1..]))
    } else {
        None
    }
}

fn align_up(x: u32, a: u32) -> u32 {
    x.div_ceil(a) * a
}

enum DirectiveEffect {
    SetSection(Section),
    Data { bytes: u32, align: u32 },
}

fn directive_size(directive: &str, lineno: usize) -> Result<DirectiveEffect> {
    let (name, args) = directive
        .split_once(char::is_whitespace)
        .unwrap_or((directive, ""));
    let count_items = || args.split(',').filter(|s| !s.trim().is_empty()).count() as u32;
    Ok(match name {
        "text" => DirectiveEffect::SetSection(Section::Text),
        "data" => DirectiveEffect::SetSection(Section::Data),
        "word" => DirectiveEffect::Data {
            bytes: 4 * count_items(),
            align: 4,
        },
        "half" => DirectiveEffect::Data {
            bytes: 2 * count_items(),
            align: 2,
        },
        "byte" => DirectiveEffect::Data {
            bytes: count_items(),
            align: 1,
        },
        "asciiz" => {
            let s = parse_string(args, lineno)?;
            DirectiveEffect::Data {
                bytes: s.len() as u32 + 1,
                align: 1,
            }
        }
        "space" => {
            let n = parse_imm(args.trim(), lineno)? as u32;
            DirectiveEffect::Data { bytes: n, align: 1 }
        }
        "align" => {
            let n = parse_imm(args.trim(), lineno)? as u32;
            if !n.is_power_of_two() {
                return err(lineno, ".align argument must be a power of two");
            }
            DirectiveEffect::Data { bytes: 0, align: n }
        }
        other => return err(lineno, format!("unknown directive `.{other}`")),
    })
}

fn emit_data(directive: &str, data: &mut Vec<u8>, lineno: usize) -> Result<()> {
    let (name, args) = directive
        .split_once(char::is_whitespace)
        .unwrap_or((directive, ""));
    match name {
        "word" => {
            for item in args.split(',').filter(|s| !s.trim().is_empty()) {
                let v = parse_imm(item.trim(), lineno)?;
                data.extend_from_slice(&(v as u32).to_le_bytes());
            }
        }
        "half" => {
            for item in args.split(',').filter(|s| !s.trim().is_empty()) {
                let v = parse_imm(item.trim(), lineno)?;
                data.extend_from_slice(&(v as u16).to_le_bytes());
            }
        }
        "byte" => {
            for item in args.split(',').filter(|s| !s.trim().is_empty()) {
                data.push(parse_imm(item.trim(), lineno)? as u8);
            }
        }
        "asciiz" => {
            let s = parse_string(args, lineno)?;
            data.extend_from_slice(s.as_bytes());
            data.push(0);
        }
        "space" => {
            let n = parse_imm(args.trim(), lineno)? as usize;
            data.resize(data.len() + n, 0);
        }
        "align" => {}
        _ => unreachable!("validated in pass 1"),
    }
    Ok(())
}

fn parse_string(args: &str, lineno: usize) -> Result<String> {
    let args = args.trim();
    let inner = args
        .strip_prefix('"')
        .and_then(|s| s.strip_suffix('"'))
        .ok_or_else(|| AsmError {
            line: lineno,
            message: "expected quoted string".into(),
        })?;
    let mut out = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('0') => out.push('\0'),
                Some('\\') => out.push('\\'),
                Some('"') => out.push('"'),
                other => return err(lineno, format!("bad escape {other:?}")),
            }
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

fn parse_imm(s: &str, lineno: usize) -> Result<i64> {
    let s = s.trim();
    let (neg, body) = match s.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, s),
    };
    let value = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16)
    } else if let Some(c) = body
        .strip_prefix('\'')
        .and_then(|b| b.strip_suffix('\''))
        .filter(|c| c.len() == 1)
    {
        Ok(i64::from(c.as_bytes()[0]))
    } else {
        body.parse::<i64>()
    };
    match value {
        Ok(v) => Ok(if neg { -v } else { v }),
        Err(_) => err(lineno, format!("bad immediate `{s}`")),
    }
}

/// Number of machine words an instruction line occupies (pseudo-ops may
/// expand to more than one).
fn insn_words(line: &str, lineno: usize) -> Result<u32> {
    let mnemonic = line.split_whitespace().next().unwrap_or("");
    Ok(match mnemonic {
        "li" | "la" => 2,
        "" => return err(lineno, "empty instruction"),
        _ => 1,
    })
}

struct Ctx<'a> {
    symbols: &'a BTreeMap<String, u32>,
    lineno: usize,
    cur_word: u32,
}

impl Ctx<'_> {
    fn reg(&self, s: &str) -> Result<Reg> {
        parse_reg(s).ok_or_else(|| AsmError {
            line: self.lineno,
            message: format!("bad register `{s}`"),
        })
    }

    fn imm16s(&self, s: &str) -> Result<i16> {
        let v = parse_imm(s, self.lineno)?;
        i16::try_from(v).map_err(|_| AsmError {
            line: self.lineno,
            message: format!("immediate {v} out of signed 16-bit range"),
        })
    }

    fn imm16u(&self, s: &str) -> Result<u16> {
        let v = parse_imm(s, self.lineno)?;
        u16::try_from(v).map_err(|_| AsmError {
            line: self.lineno,
            message: format!("immediate {v} out of unsigned 16-bit range"),
        })
    }

    fn symbol(&self, s: &str) -> Result<u32> {
        self.symbols.get(s.trim()).copied().ok_or_else(|| AsmError {
            line: self.lineno,
            message: format!("undefined label `{}`", s.trim()),
        })
    }

    fn branch_disp(&self, label: &str) -> Result<i32> {
        let target = self.symbol(label)?;
        // A branch must target the text section; a `.data` label here
        // would underflow the word arithmetic below.
        if target < TEXT_BASE {
            return err(
                self.lineno,
                format!("branch to `{label}` targets outside the text section"),
            );
        }
        let target_word = (target - TEXT_BASE) / 4;
        let disp = i64::from(target_word) - (i64::from(self.cur_word) + 1);
        if !(-32768..=32767).contains(&disp) {
            return err(self.lineno, format!("branch to `{label}` out of range"));
        }
        Ok(disp as i32)
    }
}

fn emit_insn(
    line: &str,
    text: &mut Vec<Insn>,
    symbols: &BTreeMap<String, u32>,
    lineno: usize,
) -> Result<()> {
    let (mnemonic, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
    let ops: Vec<&str> = rest
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .collect();
    let ctx = Ctx {
        symbols,
        lineno,
        cur_word: text.len() as u32,
    };
    let need = |n: usize| -> Result<()> {
        if ops.len() == n {
            Ok(())
        } else {
            err(
                lineno,
                format!("`{mnemonic}` expects {n} operands, got {}", ops.len()),
            )
        }
    };

    // Pseudo-instructions first.
    match mnemonic {
        "nop" => {
            text.push(Insn::nop());
            return Ok(());
        }
        "move" => {
            need(2)?;
            text.push(Insn::r3(
                Op::Addu,
                ctx.reg(ops[0])?,
                ctx.reg(ops[1])?,
                Reg::ZERO,
            ));
            return Ok(());
        }
        "li" | "la" => {
            need(2)?;
            let rt = ctx.reg(ops[0])?;
            let v = if mnemonic == "la" {
                ctx.symbol(ops[1])?
            } else {
                parse_imm(ops[1], lineno)? as u32
            };
            text.push(Insn::lui(rt, (v >> 16) as u16));
            text.push(Insn::imm_op(Op::Ori, rt, rt, (v & 0xffff) as i32));
            return Ok(());
        }
        "b" => {
            need(1)?;
            let disp = ctx.branch_disp(ops[0])?;
            text.push(Insn::branch(Op::Beq, Reg::ZERO, Reg::ZERO, disp));
            return Ok(());
        }
        _ => {}
    }

    let op = Op::from_mnemonic(mnemonic).ok_or_else(|| AsmError {
        line: lineno,
        message: format!("unknown mnemonic `{mnemonic}`"),
    })?;

    let insn = match op {
        Op::Sll | Op::Srl | Op::Sra => {
            need(3)?;
            let shamt = parse_imm(ops[2], lineno)?;
            if !(0..32).contains(&shamt) {
                return err(lineno, "shift amount out of range");
            }
            Insn::shift_imm(op, ctx.reg(ops[0])?, ctx.reg(ops[1])?, shamt as u8)
        }
        Op::Sllv | Op::Srlv | Op::Srav => {
            need(3)?;
            Insn::r3(op, ctx.reg(ops[0])?, ctx.reg(ops[2])?, ctx.reg(ops[1])?)
        }
        Op::Addi | Op::Addiu | Op::Slti | Op::Sltiu => {
            need(3)?;
            Insn::imm_op(
                op,
                ctx.reg(ops[0])?,
                ctx.reg(ops[1])?,
                ctx.imm16s(ops[2])? as i32,
            )
        }
        Op::Andi | Op::Ori | Op::Xori => {
            need(3)?;
            Insn::imm_op(
                op,
                ctx.reg(ops[0])?,
                ctx.reg(ops[1])?,
                ctx.imm16u(ops[2])? as i32,
            )
        }
        Op::Lui => {
            need(2)?;
            Insn::lui(ctx.reg(ops[0])?, ctx.imm16u(ops[1])?)
        }
        Op::Lb | Op::Lbu | Op::Lh | Op::Lhu | Op::Lw | Op::Sb | Op::Sh | Op::Sw => {
            need(2)?;
            let (off, base) = parse_mem_operand(ops[1], &ctx)?;
            if op.is_load() {
                Insn::load(op, ctx.reg(ops[0])?, off, base)
            } else {
                Insn::store(op, ctx.reg(ops[0])?, off, base)
            }
        }
        Op::Beq | Op::Bne => {
            need(3)?;
            Insn::branch(
                op,
                ctx.reg(ops[0])?,
                ctx.reg(ops[1])?,
                ctx.branch_disp(ops[2])?,
            )
        }
        Op::Blez | Op::Bgtz | Op::Bltz | Op::Bgez => {
            need(2)?;
            Insn::branch(op, ctx.reg(ops[0])?, Reg::ZERO, ctx.branch_disp(ops[1])?)
        }
        Op::J | Op::Jal => {
            need(1)?;
            let addr = ctx.symbol(ops[0])?;
            Insn::jump(op, addr >> 2)
        }
        Op::Jr => {
            need(1)?;
            Insn::jump_reg(op, Reg::ZERO, ctx.reg(ops[0])?)
        }
        Op::Jalr => match ops.len() {
            1 => Insn::jump_reg(op, Reg::RA, ctx.reg(ops[0])?),
            2 => Insn::jump_reg(op, ctx.reg(ops[0])?, ctx.reg(ops[1])?),
            n => return err(lineno, format!("`jalr` expects 1 or 2 operands, got {n}")),
        },
        Op::Mult | Op::Multu | Op::Div | Op::Divu => {
            need(2)?;
            Insn::muldiv(op, ctx.reg(ops[0])?, ctx.reg(ops[1])?)
        }
        Op::Mfhi | Op::Mflo => {
            need(1)?;
            Insn::mfhilo(op, ctx.reg(ops[0])?)
        }
        Op::Mthi | Op::Mtlo => {
            need(1)?;
            Insn::mthilo(op, ctx.reg(ops[0])?)
        }
        Op::Syscall | Op::Break => {
            need(0)?;
            Insn::sys(op)
        }
        Op::SqrtS | Op::CvtWS | Op::CvtSW => {
            need(2)?;
            Insn::r3(op, ctx.reg(ops[0])?, ctx.reg(ops[1])?, Reg::ZERO)
        }
        _ => {
            // Generic three-register form.
            need(3)?;
            Insn::r3(op, ctx.reg(ops[0])?, ctx.reg(ops[1])?, ctx.reg(ops[2])?)
        }
    };
    text.push(insn);
    Ok(())
}

fn parse_mem_operand(s: &str, ctx: &Ctx<'_>) -> Result<(i16, Reg)> {
    let s = s.trim();
    if let Some(open) = s.find('(') {
        let close = s.rfind(')').ok_or_else(|| AsmError {
            line: ctx.lineno,
            message: "missing `)`".into(),
        })?;
        let off_str = s[..open].trim();
        let off = if off_str.is_empty() {
            0
        } else {
            ctx.imm16s(off_str)?
        };
        let base = ctx.reg(&s[open + 1..close])?;
        Ok((off, base))
    } else {
        err(
            ctx.lineno,
            format!("bad memory operand `{s}` (expected off(base))"),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_basic_program() {
        let p = assemble(
            r#"
            .text
            main:
                li    r8, 0x10000000
                lw    r9, 4(r8)
                addiu r9, r9, 1
                beq   r9, r0, done
                j     main
            done:
                syscall
            .data
                .word 7, 8, 9
            "#,
        )
        .unwrap();
        assert_eq!(p.text.len(), 7); // li expands to 2
        assert_eq!(p.data.len(), 12);
        assert_eq!(p.entry, TEXT_BASE);
        // beq at word 4 targets `done` at word 6: disp 1.
        assert_eq!(p.text[4].imm(), 1);
        assert_eq!(&p.data[0..4], &7u32.to_le_bytes());
    }

    #[test]
    fn data_labels_and_la() {
        let p = assemble(
            r#"
            .data
            x:  .word 42
            y:  .asciiz "hi"
            .text
            main:
                la r4, y
                lbu r5, 0(r4)
                syscall
            "#,
        )
        .unwrap();
        assert_eq!(p.symbol("x"), Some(DATA_BASE));
        assert_eq!(p.symbol("y"), Some(DATA_BASE + 4));
        // la expands to lui 0x1000 / ori 0x0004.
        assert_eq!(p.text[0].imm() as u32, 0x1000_0000);
        assert_eq!(p.text[1].imm() as u32, 0x0004);
        assert_eq!(&p.data[4..7], b"hi\0");
    }

    #[test]
    fn comments_and_aliases() {
        let p = assemble(
            "
            .text
            start: addu v0, zero, a0   # tail comment
                   move v1, v0         ; alt comment
                   jr ra
            ",
        )
        .unwrap();
        assert_eq!(p.text.len(), 3);
        assert_eq!(p.symbol("start"), Some(TEXT_BASE));
    }

    #[test]
    fn error_reporting() {
        let e = assemble(".text\n  bogus r1, r2\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("bogus"));

        let e = assemble(".text\n  addiu r1, r2, 40000\n").unwrap_err();
        assert!(e.message.contains("16-bit"));

        let e = assemble(".text\n  beq r1, r2, nowhere\n").unwrap_err();
        assert!(e.message.contains("undefined label"));

        let e = assemble(".text\nx: nop\nx: nop\n").unwrap_err();
        assert!(e.message.contains("duplicate"));
    }

    #[test]
    fn alignment_directives() {
        let p = assemble(
            r#"
            .data
            a: .byte 1
               .align 4
            b: .word 2
            "#,
        )
        .unwrap();
        assert_eq!(p.symbol("b"), Some(DATA_BASE + 4));
    }

    #[test]
    fn branch_to_data_label_is_an_error() {
        // A `.data` label is far outside the text section; the
        // displacement arithmetic must produce a typed error, not a
        // panic or a silently wrapped displacement.
        let e = assemble(
            r#"
            .data
            x: .word 1
            .text
            main: beq r0, r0, x
            "#,
        )
        .unwrap_err();
        assert!(e.message.contains("`x`"), "{e}");
    }

    #[test]
    fn regimm_branches() {
        let p = assemble(
            r#"
            .text
            top: bltz r5, top
                 bgez r5, top
                 blez r5, top
                 bgtz r5, top
            "#,
        )
        .unwrap();
        assert_eq!(p.text[0].imm(), -1);
        assert_eq!(p.text[3].imm(), -4);
    }

    #[test]
    fn roundtrips_through_encoder() {
        let p = assemble(
            r#"
            .text
            main:
                lui   r2, 0x1002
                sll   r16, r17, 3
                addu  r2, r2, r16
                lw    r2, -3136(r2)
                mult  r2, r16
                mflo  r3
                bne   r2, r0, main
                syscall
            "#,
        )
        .unwrap();
        for insn in &p.text {
            let back = crate::decode(crate::encode(insn)).unwrap();
            assert_eq!(&back, insn);
        }
    }
}
