//! The decoded-instruction representation.

use crate::op::{Op, OpClass};
use crate::reg::Reg;
use std::fmt;

/// A decoded instruction.
///
/// One uniform record covers all three encoding formats. Field use by
/// format:
///
/// * **R-type** (`add rd, rs, rt`): `rd`, `rs`, `rt`; shifts by immediate
///   keep the shift amount in `imm`.
/// * **I-type** (`addiu rt, rs, imm`): destination in `rd` (aliased to the
///   encoding's `rt` field), source in `rs`, 16-bit immediate sign- or
///   zero-extended into `imm` according to the opcode.
/// * **Branches**: `rs`/`rt` sources and the *word* displacement of the
///   target relative to the next sequential instruction in `imm`.
/// * **J-type**: absolute target word index in `imm`.
///
/// Use the typed constructors ([`Insn::r3`], [`Insn::imm_op`], [`Insn::load`],
/// [`Insn::store`], [`Insn::branch`], …) rather than building fields by hand.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Insn {
    op: Op,
    rd: Reg,
    rs: Reg,
    rt: Reg,
    imm: i32,
}

impl Insn {
    /// Three-register instruction `op rd, rs, rt`.
    pub fn r3(op: Op, rd: Reg, rs: Reg, rt: Reg) -> Insn {
        debug_assert!(matches!(
            op.class(),
            OpClass::IntAlu | OpClass::Logic | OpClass::Shift | OpClass::Fp
        ));
        Insn {
            op,
            rd,
            rs,
            rt,
            imm: 0,
        }
    }

    /// Shift-by-immediate `op rd, rt, shamt` (`sll`/`srl`/`sra`).
    pub fn shift_imm(op: Op, rd: Reg, rt: Reg, shamt: u8) -> Insn {
        debug_assert!(matches!(op, Op::Sll | Op::Srl | Op::Sra));
        debug_assert!(shamt < 32);
        Insn {
            op,
            rd,
            rs: Reg::ZERO,
            rt,
            imm: shamt as i32,
        }
    }

    /// Immediate-form ALU instruction `op rt, rs, imm`. The immediate is
    /// stored fully extended (sign-extended for `addi*`/`slti*`,
    /// zero-extended for `andi`/`ori`/`xori`, shifted for `lui`).
    pub fn imm_op(op: Op, rt: Reg, rs: Reg, imm: i32) -> Insn {
        debug_assert!(matches!(op.class(), OpClass::IntAlu | OpClass::Logic));
        Insn {
            op,
            rd: rt,
            rs,
            rt: Reg::ZERO,
            imm,
        }
    }

    /// `lui rt, imm16` — stores the already-shifted value in `imm`.
    pub fn lui(rt: Reg, imm16: u16) -> Insn {
        Insn {
            op: Op::Lui,
            rd: rt,
            rs: Reg::ZERO,
            rt: Reg::ZERO,
            imm: ((imm16 as u32) << 16) as i32,
        }
    }

    /// Load `op rt, offset(base)`.
    pub fn load(op: Op, rt: Reg, offset: i16, base: Reg) -> Insn {
        debug_assert!(op.is_load());
        Insn {
            op,
            rd: rt,
            rs: base,
            rt: Reg::ZERO,
            imm: offset as i32,
        }
    }

    /// Store `op rt, offset(base)`; `rt` is the data source.
    pub fn store(op: Op, rt: Reg, offset: i16, base: Reg) -> Insn {
        debug_assert!(op.is_store());
        Insn {
            op,
            rd: Reg::ZERO,
            rs: base,
            rt,
            imm: offset as i32,
        }
    }

    /// Conditional branch; `disp_words` is the displacement in instruction
    /// words from the *next* instruction (MIPS convention, no delay slot in
    /// this ISA).
    pub fn branch(op: Op, rs: Reg, rt: Reg, disp_words: i32) -> Insn {
        debug_assert!(op.is_cond_branch());
        Insn {
            op,
            rd: Reg::ZERO,
            rs,
            rt,
            imm: disp_words,
        }
    }

    /// Absolute jump (`j`/`jal`) to a text-segment word index.
    pub fn jump(op: Op, target_word: u32) -> Insn {
        debug_assert!(matches!(op, Op::J | Op::Jal));
        Insn {
            op,
            rd: Reg::ZERO,
            rs: Reg::ZERO,
            rt: Reg::ZERO,
            imm: target_word as i32,
        }
    }

    /// Register jump `jr rs` or `jalr rd, rs`.
    pub fn jump_reg(op: Op, rd: Reg, rs: Reg) -> Insn {
        debug_assert!(matches!(op, Op::Jr | Op::Jalr));
        Insn {
            op,
            rd,
            rs,
            rt: Reg::ZERO,
            imm: 0,
        }
    }

    /// `mult`/`multu`/`div`/`divu rs, rt` (write HI/LO implicitly).
    pub fn muldiv(op: Op, rs: Reg, rt: Reg) -> Insn {
        debug_assert!(matches!(op, Op::Mult | Op::Multu | Op::Div | Op::Divu));
        Insn {
            op,
            rd: Reg::ZERO,
            rs,
            rt,
            imm: 0,
        }
    }

    /// `mfhi rd` / `mflo rd`.
    pub fn mfhilo(op: Op, rd: Reg) -> Insn {
        debug_assert!(matches!(op, Op::Mfhi | Op::Mflo));
        Insn {
            op,
            rd,
            rs: Reg::ZERO,
            rt: Reg::ZERO,
            imm: 0,
        }
    }

    /// `mthi rs` / `mtlo rs`.
    pub fn mthilo(op: Op, rs: Reg) -> Insn {
        debug_assert!(matches!(op, Op::Mthi | Op::Mtlo));
        Insn {
            op,
            rd: Reg::ZERO,
            rs,
            rt: Reg::ZERO,
            imm: 0,
        }
    }

    /// `syscall` / `break`.
    pub fn sys(op: Op) -> Insn {
        debug_assert!(matches!(op, Op::Syscall | Op::Break));
        Insn {
            op,
            rd: Reg::ZERO,
            rs: Reg::ZERO,
            rt: Reg::ZERO,
            imm: 0,
        }
    }

    /// The canonical no-op (`sll r0, r0, 0`).
    pub fn nop() -> Insn {
        Insn::shift_imm(Op::Sll, Reg::ZERO, Reg::ZERO, 0)
    }

    /// The opcode.
    #[inline]
    pub fn op(&self) -> Op {
        self.op
    }
    /// The `rd` field (destination for R-type and I-type ALU/loads).
    #[inline]
    pub fn rd(&self) -> Reg {
        self.rd
    }
    /// The `rs` field (first source / base register).
    #[inline]
    pub fn rs(&self) -> Reg {
        self.rs
    }
    /// The `rt` field (second source / store data).
    #[inline]
    pub fn rt(&self) -> Reg {
        self.rt
    }
    /// The extended immediate / displacement / shift amount / jump target.
    #[inline]
    pub fn imm(&self) -> i32 {
        self.imm
    }

    /// Architectural registers read by this instruction (up to two).
    /// `r0` sources are reported (readers may filter them; they are always
    /// ready). `syscall` reads `v0`/`a0` for its ABI.
    pub fn uses(&self) -> ArgSet {
        let mut set = ArgSet::default();
        match self.op {
            Op::Sll | Op::Srl | Op::Sra => set.push(self.rt),
            Op::Sllv | Op::Srlv | Op::Srav => {
                set.push(self.rt);
                set.push(self.rs);
            }
            Op::Lui => {}
            Op::Mfhi => set.push(Reg::HI),
            Op::Mflo => set.push(Reg::LO),
            Op::Mthi | Op::Mtlo => set.push(self.rs),
            Op::J | Op::Jal => {}
            Op::Jr | Op::Jalr => set.push(self.rs),
            Op::Syscall => {
                set.push(Reg::V0);
                set.push(Reg::A0);
            }
            Op::Break => {}
            op if op.is_load() => set.push(self.rs),
            op if op.is_store() => {
                set.push(self.rs);
                set.push(self.rt);
            }
            op if op.is_cond_branch() => {
                set.push(self.rs);
                match op {
                    Op::Beq | Op::Bne => set.push(self.rt),
                    _ => {}
                }
            }
            Op::Mult | Op::Multu | Op::Div | Op::Divu => {
                set.push(self.rs);
                set.push(self.rt);
            }
            _ => {
                // Generic R-type / I-type ALU.
                set.push(self.rs);
                if self.is_rtype_alu() {
                    set.push(self.rt);
                }
            }
        }
        set
    }

    /// Architectural registers written by this instruction (up to two:
    /// `mult`/`div` write both `HI` and `LO`).
    pub fn defs(&self) -> ArgSet {
        let mut set = ArgSet::default();
        match self.op {
            Op::Mult | Op::Multu | Op::Div | Op::Divu => {
                set.push(Reg::HI);
                set.push(Reg::LO);
            }
            Op::Mthi => set.push(Reg::HI),
            Op::Mtlo => set.push(Reg::LO),
            Op::Jal => set.push(Reg::RA),
            Op::Jalr => set.push(self.rd),
            Op::J | Op::Jr | Op::Syscall | Op::Break => {}
            op if op.is_store() || op.is_cond_branch() => {}
            _ => set.push(self.rd),
        }
        // Writes to r0 are architecturally discarded.
        if set.regs[0] == Some(Reg::ZERO) {
            set.regs[0] = set.regs[1].take();
        }
        if set.regs[1] == Some(Reg::ZERO) {
            set.regs[1] = None;
        }
        set
    }

    fn is_rtype_alu(&self) -> bool {
        matches!(
            self.op,
            Op::Add
                | Op::Addu
                | Op::Sub
                | Op::Subu
                | Op::Slt
                | Op::Sltu
                | Op::And
                | Op::Or
                | Op::Xor
                | Op::Nor
                | Op::AddS
                | Op::SubS
                | Op::MulS
                | Op::DivS
        )
    }
}

/// A tiny fixed-capacity set of up to two registers, returned by
/// [`Insn::uses`] / [`Insn::defs`]. Avoids heap allocation on the
/// simulator's hottest path.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct ArgSet {
    regs: [Option<Reg>; 2],
}

impl ArgSet {
    fn push(&mut self, r: Reg) {
        if self.regs[0].is_none() {
            self.regs[0] = Some(r);
        } else if self.regs[0] != Some(r) && self.regs[1].is_none() {
            self.regs[1] = Some(r);
        }
    }

    /// Iterate the registers in the set.
    pub fn iter(&self) -> impl Iterator<Item = Reg> + '_ {
        self.regs.iter().flatten().copied()
    }

    /// Number of registers in the set (0–2).
    pub fn len(&self) -> usize {
        self.regs.iter().flatten().count()
    }

    /// True if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.regs[0].is_none()
    }

    /// Membership test.
    pub fn contains(&self, r: Reg) -> bool {
        self.regs.contains(&Some(r))
    }
}

impl fmt::Display for Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = self.op.mnemonic();
        match self.op {
            Op::Sll | Op::Srl | Op::Sra => write!(f, "{m} {}, {}, {}", self.rd, self.rt, self.imm),
            Op::Sllv | Op::Srlv | Op::Srav => {
                write!(f, "{m} {}, {}, {}", self.rd, self.rt, self.rs)
            }
            Op::Lui => write!(f, "{m} {}, {:#x}", self.rd, (self.imm as u32) >> 16),
            Op::Mult | Op::Multu | Op::Div | Op::Divu => write!(f, "{m} {}, {}", self.rs, self.rt),
            Op::Mfhi | Op::Mflo => write!(f, "{m} {}", self.rd),
            Op::Mthi | Op::Mtlo => write!(f, "{m} {}", self.rs),
            Op::J | Op::Jal => write!(f, "{m} {:#x}", (self.imm as u32) << 2),
            Op::Jr => write!(f, "{m} {}", self.rs),
            Op::Jalr => write!(f, "{m} {}, {}", self.rd, self.rs),
            Op::Syscall | Op::Break => f.write_str(m),
            op if op.is_load() => write!(f, "{m} {}, {}({})", self.rd, self.imm, self.rs),
            op if op.is_store() => write!(f, "{m} {}, {}({})", self.rt, self.imm, self.rs),
            op if op.is_cond_branch() => match op {
                Op::Beq | Op::Bne => {
                    write!(f, "{m} {}, {}, .{:+}", self.rs, self.rt, self.imm)
                }
                _ => write!(f, "{m} {}, .{:+}", self.rs, self.imm),
            },
            Op::Addi | Op::Addiu | Op::Slti | Op::Sltiu | Op::Andi | Op::Ori | Op::Xori => {
                write!(f, "{m} {}, {}, {}", self.rd, self.rs, self.imm)
            }
            _ => write!(f, "{m} {}, {}, {}", self.rd, self.rs, self.rt),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defs_uses_alu() {
        let i = Insn::r3(Op::Add, Reg::gpr(3), Reg::gpr(1), Reg::gpr(2));
        assert!(i.uses().contains(Reg::gpr(1)));
        assert!(i.uses().contains(Reg::gpr(2)));
        assert!(i.defs().contains(Reg::gpr(3)));
        assert_eq!(i.defs().len(), 1);
    }

    #[test]
    fn defs_discard_r0() {
        let i = Insn::r3(Op::Add, Reg::ZERO, Reg::gpr(1), Reg::gpr(2));
        assert!(i.defs().is_empty());
        assert!(Insn::nop().defs().is_empty());
    }

    #[test]
    fn mult_writes_hi_lo() {
        let i = Insn::muldiv(Op::Mult, Reg::gpr(4), Reg::gpr(5));
        assert!(i.defs().contains(Reg::HI));
        assert!(i.defs().contains(Reg::LO));
        assert_eq!(i.defs().len(), 2);
    }

    #[test]
    fn store_uses_base_and_data() {
        let i = Insn::store(Op::Sw, Reg::gpr(7), -4, Reg::SP);
        assert!(i.uses().contains(Reg::SP));
        assert!(i.uses().contains(Reg::gpr(7)));
        assert!(i.defs().is_empty());
    }

    #[test]
    fn branch_operands() {
        let beq = Insn::branch(Op::Beq, Reg::gpr(1), Reg::gpr(2), -3);
        assert_eq!(beq.uses().len(), 2);
        let blez = Insn::branch(Op::Blez, Reg::gpr(1), Reg::ZERO, 5);
        assert_eq!(blez.uses().len(), 1);
    }

    #[test]
    fn dedup_same_source() {
        let i = Insn::r3(Op::Add, Reg::gpr(3), Reg::gpr(1), Reg::gpr(1));
        assert_eq!(i.uses().len(), 1);
    }

    #[test]
    fn jal_defines_ra() {
        assert!(Insn::jump(Op::Jal, 0x100).defs().contains(Reg::RA));
        assert!(Insn::jump(Op::J, 0x100).defs().is_empty());
    }

    #[test]
    fn display_forms() {
        assert_eq!(
            Insn::load(Op::Lw, Reg::gpr(4), 8, Reg::gpr(3)).to_string(),
            "lw r4, 8(r3)"
        );
        assert_eq!(
            Insn::r3(Op::Add, Reg::gpr(3), Reg::gpr(1), Reg::gpr(2)).to_string(),
            "add r3, r1, r2"
        );
        assert_eq!(Insn::sys(Op::Syscall).to_string(), "syscall");
    }
}
