//! Opcode enumeration and static per-opcode metadata.

use std::fmt;

/// Coarse functional classification of an opcode, used for functional-unit
/// binding and statistics.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum OpClass {
    /// Integer add/subtract/compare (carry-propagating ALU work).
    IntAlu,
    /// Bitwise logic (`and`, `or`, `xor`, `nor` and their immediates, `lui`).
    Logic,
    /// Shift instructions.
    Shift,
    /// Integer multiply/divide and `HI`/`LO` moves.
    MulDiv,
    /// Single-precision floating point (bits of a GPR reinterpreted as `f32`).
    Fp,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Conditional branch.
    Branch,
    /// Unconditional jump (`j`, `jal`, `jr`, `jalr`).
    Jump,
    /// System call / breakpoint (serializing).
    Sys,
}

/// How an instruction's result decomposes across operand bit-slices; this is
/// the taxonomy of Figure 8 in the paper.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum SliceClass {
    /// Result slice *k* needs source slices `..=k` plus the carry out of
    /// slice *k−1*: add, subtract, address generation, set-less-than.
    /// Slices must execute low-to-high (the carry chain of Fig. 8b).
    CarryChained,
    /// Result slice *k* needs only source slices *k*: bitwise logic. Slices
    /// may execute out of order (Fig. 8c).
    Independent,
    /// Result slices need bits from other source slices (shifts); requires
    /// cross-slice communication, modeled as needing all source slices.
    CrossSlice,
    /// The operation consumes and produces whole operands at once
    /// (multiply, divide, floating point — §6 "difficult corner cases").
    Atomic,
}

/// Condition tested by a conditional branch.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BranchCond {
    /// `beq`: taken iff `rs == rt`.
    Eq,
    /// `bne`: taken iff `rs != rt`.
    Ne,
    /// `blez`: taken iff `rs <= 0` (signed).
    Lez,
    /// `bgtz`: taken iff `rs > 0` (signed).
    Gtz,
    /// `bltz`: taken iff `rs < 0` (signed).
    Ltz,
    /// `bgez`: taken iff `rs >= 0` (signed).
    Gez,
    /// `blt` (RV32-style two-register compare): taken iff `rs < rt`
    /// (signed). No PISA opcode maps here.
    Lt,
    /// `bge`: taken iff `rs >= rt` (signed).
    Ge,
    /// `bltu`: taken iff `rs < rt` (unsigned).
    Ltu,
    /// `bgeu`: taken iff `rs >= rt` (unsigned).
    Geu,
}

impl BranchCond {
    /// Whether mispredictions of this branch type can ever be detected from
    /// low-order operand bits alone (§5.3: only `beq`/`bne` qualify; the
    /// other four test the sign bit).
    #[inline]
    pub const fn early_resolvable(self) -> bool {
        matches!(self, BranchCond::Eq | BranchCond::Ne)
    }

    /// Evaluate the condition on full-width operands.
    #[inline]
    pub fn eval(self, rs: u32, rt: u32) -> bool {
        let s = rs as i32;
        match self {
            BranchCond::Eq => rs == rt,
            BranchCond::Ne => rs != rt,
            BranchCond::Lez => s <= 0,
            BranchCond::Gtz => s > 0,
            BranchCond::Ltz => s < 0,
            BranchCond::Gez => s >= 0,
            BranchCond::Lt => s < rt as i32,
            BranchCond::Ge => s >= rt as i32,
            BranchCond::Ltu => rs < rt,
            BranchCond::Geu => rs >= rt,
        }
    }
}

/// Width (and sign-extension behaviour) of a memory access.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MemWidth {
    /// Sign-extended byte.
    B,
    /// Zero-extended byte.
    Bu,
    /// Sign-extended halfword.
    H,
    /// Zero-extended halfword.
    Hu,
    /// Word.
    W,
}

impl MemWidth {
    /// Access size in bytes.
    #[inline]
    pub const fn bytes(self) -> u32 {
        match self {
            MemWidth::B | MemWidth::Bu => 1,
            MemWidth::H | MemWidth::Hu => 2,
            MemWidth::W => 4,
        }
    }
}

macro_rules! ops {
    ($(($variant:ident, $mnemonic:literal, $class:ident)),+ $(,)?) => {
        /// An opcode. See module docs of [`crate`] for the ISA overview.
        #[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
        #[allow(missing_docs)]
        pub enum Op {
            $($variant),+
        }

        impl Op {
            /// All opcodes, in declaration order.
            pub const ALL: &'static [Op] = &[$(Op::$variant),+];

            /// Assembler mnemonic.
            pub const fn mnemonic(self) -> &'static str {
                match self {
                    $(Op::$variant => $mnemonic),+
                }
            }

            /// Functional classification.
            pub const fn class(self) -> OpClass {
                match self {
                    $(Op::$variant => OpClass::$class),+
                }
            }

            /// Look an opcode up by mnemonic.
            pub fn from_mnemonic(m: &str) -> Option<Op> {
                match m {
                    $($mnemonic => Some(Op::$variant),)+
                    _ => None,
                }
            }
        }
    };
}

ops! {
    // R-type ALU
    (Add, "add", IntAlu),
    (Addu, "addu", IntAlu),
    (Sub, "sub", IntAlu),
    (Subu, "subu", IntAlu),
    (Slt, "slt", IntAlu),
    (Sltu, "sltu", IntAlu),
    (And, "and", Logic),
    (Or, "or", Logic),
    (Xor, "xor", Logic),
    (Nor, "nor", Logic),
    (Sll, "sll", Shift),
    (Srl, "srl", Shift),
    (Sra, "sra", Shift),
    (Sllv, "sllv", Shift),
    (Srlv, "srlv", Shift),
    (Srav, "srav", Shift),
    (Mult, "mult", MulDiv),
    (Multu, "multu", MulDiv),
    (Div, "div", MulDiv),
    (Divu, "divu", MulDiv),
    (Mfhi, "mfhi", MulDiv),
    (Mflo, "mflo", MulDiv),
    (Mthi, "mthi", MulDiv),
    (Mtlo, "mtlo", MulDiv),
    // Floating point on GPR bit patterns (synthetic single-precision).
    (AddS, "add.s", Fp),
    (SubS, "sub.s", Fp),
    (MulS, "mul.s", Fp),
    (DivS, "div.s", Fp),
    (SqrtS, "sqrt.s", Fp),
    (CvtWS, "cvt.w.s", Fp),
    (CvtSW, "cvt.s.w", Fp),
    // I-type ALU
    (Addi, "addi", IntAlu),
    (Addiu, "addiu", IntAlu),
    (Slti, "slti", IntAlu),
    (Sltiu, "sltiu", IntAlu),
    (Andi, "andi", Logic),
    (Ori, "ori", Logic),
    (Xori, "xori", Logic),
    (Lui, "lui", Logic),
    // Memory
    (Lb, "lb", Load),
    (Lbu, "lbu", Load),
    (Lh, "lh", Load),
    (Lhu, "lhu", Load),
    (Lw, "lw", Load),
    (Sb, "sb", Store),
    (Sh, "sh", Store),
    (Sw, "sw", Store),
    // Control
    (Beq, "beq", Branch),
    (Bne, "bne", Branch),
    (Blez, "blez", Branch),
    (Bgtz, "bgtz", Branch),
    (Bltz, "bltz", Branch),
    (Bgez, "bgez", Branch),
    (J, "j", Jump),
    (Jal, "jal", Jump),
    (Jr, "jr", Jump),
    (Jalr, "jalr", Jump),
    // System
    (Syscall, "syscall", Sys),
    (Break, "break", Sys),
}

impl Op {
    /// The bit-slice decomposition class (Fig. 8 taxonomy). Loads and stores
    /// are classified by their *address generation* (carry-chained add);
    /// branches by their comparison; jumps and syscalls are atomic.
    pub const fn slice_class(self) -> SliceClass {
        match self.class() {
            OpClass::IntAlu => SliceClass::CarryChained,
            OpClass::Logic => SliceClass::Independent,
            OpClass::Shift => SliceClass::CrossSlice,
            OpClass::MulDiv | OpClass::Fp | OpClass::Sys | OpClass::Jump => SliceClass::Atomic,
            // Address generation is a carry-chained add of base + offset.
            OpClass::Load | OpClass::Store => SliceClass::CarryChained,
            // beq/bne compare slices independently; the sign-testing types
            // need the top slice, which the scheduler models via
            // `BranchCond::early_resolvable`.
            OpClass::Branch => SliceClass::CarryChained,
        }
    }

    /// Branch condition, if this is a conditional branch.
    pub const fn branch_cond(self) -> Option<BranchCond> {
        match self {
            Op::Beq => Some(BranchCond::Eq),
            Op::Bne => Some(BranchCond::Ne),
            Op::Blez => Some(BranchCond::Lez),
            Op::Bgtz => Some(BranchCond::Gtz),
            Op::Bltz => Some(BranchCond::Ltz),
            Op::Bgez => Some(BranchCond::Gez),
            _ => None,
        }
    }

    /// Memory access width, if this is a load or store.
    pub const fn mem_width(self) -> Option<MemWidth> {
        match self {
            Op::Lb | Op::Sb => Some(MemWidth::B),
            Op::Lbu => Some(MemWidth::Bu),
            Op::Lh | Op::Sh => Some(MemWidth::H),
            Op::Lhu => Some(MemWidth::Hu),
            Op::Lw | Op::Sw => Some(MemWidth::W),
            _ => None,
        }
    }

    /// True for any control-transfer instruction (branch or jump).
    pub const fn is_control(self) -> bool {
        matches!(self.class(), OpClass::Branch | OpClass::Jump)
    }

    /// True for conditional branches.
    pub const fn is_cond_branch(self) -> bool {
        matches!(self.class(), OpClass::Branch)
    }

    /// True for loads.
    pub const fn is_load(self) -> bool {
        matches!(self.class(), OpClass::Load)
    }

    /// True for stores.
    pub const fn is_store(self) -> bool {
        matches!(self.class(), OpClass::Store)
    }

    /// True for call-like jumps that push a return address (`jal`, `jalr`).
    pub const fn is_call(self) -> bool {
        matches!(self, Op::Jal | Op::Jalr)
    }

    /// True for `jr r31`-style returns (any `jr`; the return-address stack
    /// is consulted only for `jr ra` by convention, decided at decode).
    pub const fn is_indirect_jump(self) -> bool {
        matches!(self, Op::Jr | Op::Jalr)
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mnemonic_roundtrip() {
        for &op in Op::ALL {
            assert_eq!(Op::from_mnemonic(op.mnemonic()), Some(op), "{op:?}");
        }
        assert_eq!(Op::from_mnemonic("bogus"), None);
    }

    #[test]
    fn branch_taxonomy_matches_paper() {
        // §5.3: only beq/bne can resolve early.
        let early: Vec<Op> = Op::ALL
            .iter()
            .copied()
            .filter(|o| o.branch_cond().is_some_and(|c| c.early_resolvable()))
            .collect();
        assert_eq!(early, vec![Op::Beq, Op::Bne]);
        let all_branches = Op::ALL.iter().filter(|o| o.is_cond_branch()).count();
        assert_eq!(all_branches, 6);
    }

    #[test]
    fn slice_classes() {
        assert_eq!(Op::Add.slice_class(), SliceClass::CarryChained);
        assert_eq!(Op::Xor.slice_class(), SliceClass::Independent);
        assert_eq!(Op::Sll.slice_class(), SliceClass::CrossSlice);
        assert_eq!(Op::Mult.slice_class(), SliceClass::Atomic);
        assert_eq!(Op::DivS.slice_class(), SliceClass::Atomic);
        assert_eq!(Op::Lw.slice_class(), SliceClass::CarryChained);
    }

    #[test]
    fn cond_eval() {
        assert!(BranchCond::Eq.eval(5, 5));
        assert!(!BranchCond::Eq.eval(5, 6));
        assert!(BranchCond::Ne.eval(5, 6));
        assert!(BranchCond::Lez.eval(0, 0));
        assert!(BranchCond::Lez.eval(u32::MAX, 0)); // -1 <= 0
        assert!(BranchCond::Gtz.eval(1, 0));
        assert!(!BranchCond::Gtz.eval(0x8000_0000, 0));
        assert!(BranchCond::Ltz.eval(0x8000_0000, 0));
        assert!(BranchCond::Gez.eval(0, 0));
    }

    #[test]
    fn mem_widths() {
        assert_eq!(Op::Lb.mem_width(), Some(MemWidth::B));
        assert_eq!(Op::Lw.mem_width().unwrap().bytes(), 4);
        assert_eq!(Op::Sh.mem_width().unwrap().bytes(), 2);
        assert_eq!(Op::Add.mem_width(), None);
    }
}
