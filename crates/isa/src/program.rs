//! Assembled program images.

use crate::insn::Insn;
use std::collections::BTreeMap;

/// Base virtual address of the text (code) segment.
pub const TEXT_BASE: u32 = 0x0040_0000;
/// Base virtual address of the data segment.
pub const DATA_BASE: u32 = 0x1000_0000;
/// Initial stack pointer (stack grows downward).
pub const STACK_TOP: u32 = 0x7fff_fff0;

/// An assembled program: instructions, initialized data, entry point and a
/// symbol table.
#[derive(Clone, Debug, Default)]
pub struct Program {
    /// The instruction stream, loaded at [`TEXT_BASE`].
    pub text: Vec<Insn>,
    /// Initialized data, loaded at [`DATA_BASE`].
    pub data: Vec<u8>,
    /// Entry-point virtual address (defaults to [`TEXT_BASE`], or the
    /// `main` symbol if defined).
    pub entry: u32,
    /// Label → virtual address map (text labels point into the text
    /// segment, data labels into the data segment).
    pub symbols: BTreeMap<String, u32>,
}

impl Program {
    /// The instruction at virtual address `pc`, if it lies in the text
    /// segment.
    #[inline]
    pub fn fetch(&self, pc: u32) -> Option<&Insn> {
        if pc < TEXT_BASE || !pc.is_multiple_of(4) {
            return None;
        }
        self.text.get(((pc - TEXT_BASE) / 4) as usize)
    }

    /// Virtual address of text word index `idx`.
    #[inline]
    pub fn text_addr(idx: usize) -> u32 {
        TEXT_BASE + (idx as u32) * 4
    }

    /// Address of a named symbol.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// Render the text segment as a disassembly listing, one instruction
    /// per line with addresses and label annotations.
    pub fn disassemble(&self) -> String {
        use std::fmt::Write as _;
        let mut by_addr: BTreeMap<u32, &str> = BTreeMap::new();
        for (name, &addr) in &self.symbols {
            by_addr.insert(addr, name);
        }
        let mut out = String::new();
        for (i, insn) in self.text.iter().enumerate() {
            let addr = Self::text_addr(i);
            if let Some(name) = by_addr.get(&addr) {
                let _ = writeln!(out, "{name}:");
            }
            let _ = writeln!(out, "  {addr:#010x}:  {insn}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Op;
    use crate::reg::Reg;

    #[test]
    fn fetch_bounds() {
        let p = Program {
            text: vec![Insn::nop(), Insn::sys(Op::Syscall)],
            entry: TEXT_BASE,
            ..Default::default()
        };
        assert_eq!(p.fetch(TEXT_BASE), Some(&Insn::nop()));
        assert_eq!(p.fetch(TEXT_BASE + 4), Some(&Insn::sys(Op::Syscall)));
        assert_eq!(p.fetch(TEXT_BASE + 8), None);
        assert_eq!(p.fetch(TEXT_BASE + 1), None);
        assert_eq!(p.fetch(0), None);
    }

    #[test]
    fn disassembly_includes_labels() {
        let mut p = Program {
            text: vec![Insn::imm_op(Op::Addiu, Reg::V0, Reg::ZERO, 1)],
            entry: TEXT_BASE,
            ..Default::default()
        };
        p.symbols.insert("main".into(), TEXT_BASE);
        let listing = p.disassemble();
        assert!(listing.contains("main:"));
        assert!(listing.contains("addiu r2, r0, 1"));
    }
}
