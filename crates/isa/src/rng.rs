//! A tiny deterministic PRNG for test-input and workload-data generation.
//!
//! The workspace builds in offline environments, so randomized tests
//! (the former proptest suites) draw from this splitmix64 stream instead
//! of an external crate. Sequences are stable across platforms and
//! releases: a failing seed reproduces forever.

/// A splitmix64 generator (Steele, Lea & Flood; the seeding PRNG of the
/// xoshiro family). One 64-bit state word, full period, passes BigCrush.
#[derive(Clone, Copy, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded generator. Any seed (including 0) is valid.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Next 32-bit value.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform value in `0..n` (`n > 0`).
    #[inline]
    pub fn below(&mut self, n: u32) -> u32 {
        debug_assert!(n > 0);
        // Lemire's multiply-shift reduction; bias is < 2^-32 and
        // irrelevant for test-input generation.
        ((self.next_u32() as u64 * n as u64) >> 32) as u32
    }

    /// Uniform value in `lo..hi` (`lo < hi`).
    #[inline]
    pub fn range(&mut self, lo: u32, hi: u32) -> u32 {
        lo + self.below(hi - lo)
    }

    /// Fair coin.
    #[inline]
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// Pick an element of a non-empty slice.
    #[inline]
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len() as u32) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_well_spread() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        // All distinct (splitmix64 is a bijection of the counter).
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), xs.len());
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
            let v = r.range(5, 10);
            assert!((5..10).contains(&v));
        }
        let _ = r.flip();
        assert!([1u32, 2, 3].contains(r.pick(&[1, 2, 3])));
    }
}
