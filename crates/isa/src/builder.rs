//! Programmatic assembler.
//!
//! [`Builder`] is the API the workload kernels use to emit code: it manages
//! labels (with forward references), a data segment, and produces a
//! [`Program`]. One method per instruction keeps the kernels readable:
//!
//! ```
//! use popk_isa::builder::Builder;
//! use popk_isa::Reg;
//!
//! let mut b = Builder::new();
//! let counter = b.data_word(10);
//! let (r2, r3) = (Reg::V0, Reg::V1);
//! b.li(r3, counter as i32);
//! b.lw(r2, 0, r3);
//! let top = b.here("top");
//! b.addiu(r2, r2, -1);
//! b.bne(r2, Reg::ZERO, top);
//! b.exit();
//! let program = b.finish();
//! assert!(program.text.len() >= 5);
//! ```

use crate::insn::Insn;
use crate::op::Op;
use crate::program::{Program, DATA_BASE, TEXT_BASE};
use crate::reg::Reg;
use std::collections::BTreeMap;

/// A code label managed by a [`Builder`]. Copyable; may be referenced
/// before it is bound.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Label(usize);

#[derive(Clone, Copy)]
enum Fixup {
    /// Patch the branch displacement of the instruction at this text index.
    Branch(usize),
    /// Patch the absolute word target of the jump at this text index.
    Jump(usize),
}

/// Programmatic assembler producing a [`Program`].
pub struct Builder {
    text: Vec<Insn>,
    data: Vec<u8>,
    bound: Vec<Option<usize>>,
    names: BTreeMap<String, Label>,
    fixups: Vec<(Fixup, Label)>,
    symbols: BTreeMap<String, u32>,
}

impl Default for Builder {
    fn default() -> Self {
        Self::new()
    }
}

impl Builder {
    /// An empty builder.
    pub fn new() -> Builder {
        Builder {
            text: Vec::new(),
            data: Vec::new(),
            bound: Vec::new(),
            names: BTreeMap::new(),
            fixups: Vec::new(),
            symbols: BTreeMap::new(),
        }
    }

    // ---- labels ---------------------------------------------------------

    /// Create a fresh, unbound label.
    pub fn label(&mut self) -> Label {
        self.bound.push(None);
        Label(self.bound.len() - 1)
    }

    /// Create or look up a named label (unbound until [`Builder::bind`] /
    /// [`Builder::here`]).
    pub fn named(&mut self, name: &str) -> Label {
        if let Some(&l) = self.names.get(name) {
            return l;
        }
        let l = self.label();
        self.names.insert(name.to_owned(), l);
        l
    }

    /// Bind `label` to the current text position.
    pub fn bind(&mut self, label: Label) {
        assert!(self.bound[label.0].is_none(), "label bound twice");
        self.bound[label.0] = Some(self.text.len());
        if let Some(name) = self
            .names
            .iter()
            .find_map(|(n, &l)| (l == label).then(|| n.clone()))
        {
            self.symbols
                .insert(name, TEXT_BASE + (self.text.len() as u32) * 4);
        }
    }

    /// Create a named label bound at the current position and return it.
    pub fn here(&mut self, name: &str) -> Label {
        let l = self.named(name);
        self.bind(l);
        l
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.text.len()
    }

    /// True if no instructions have been emitted.
    pub fn is_empty(&self) -> bool {
        self.text.is_empty()
    }

    // ---- data segment ---------------------------------------------------

    /// Append a 32-bit little-endian word to the data segment, 4-aligned;
    /// returns its virtual address.
    pub fn data_word(&mut self, w: u32) -> u32 {
        self.align_data(4);
        let addr = DATA_BASE + self.data.len() as u32;
        self.data.extend_from_slice(&w.to_le_bytes());
        addr
    }

    /// Append a sequence of 32-bit words; returns the address of the first.
    pub fn data_words(&mut self, ws: &[u32]) -> u32 {
        self.align_data(4);
        let addr = DATA_BASE + self.data.len() as u32;
        for &w in ws {
            self.data.extend_from_slice(&w.to_le_bytes());
        }
        addr
    }

    /// Append raw bytes; returns the address of the first.
    pub fn data_bytes(&mut self, bytes: &[u8]) -> u32 {
        let addr = DATA_BASE + self.data.len() as u32;
        self.data.extend_from_slice(bytes);
        addr
    }

    /// Reserve `n` zeroed bytes; returns the address of the first.
    pub fn data_space(&mut self, n: usize) -> u32 {
        let addr = DATA_BASE + self.data.len() as u32;
        self.data.resize(self.data.len() + n, 0);
        addr
    }

    /// Pad the data segment to an `align`-byte boundary (power of two).
    pub fn align_data(&mut self, align: usize) {
        debug_assert!(align.is_power_of_two());
        while !(DATA_BASE as usize + self.data.len()).is_multiple_of(align) {
            self.data.push(0);
        }
    }

    /// Record a data-segment symbol at `addr`.
    pub fn data_symbol(&mut self, name: &str, addr: u32) {
        self.symbols.insert(name.to_owned(), addr);
    }

    // ---- raw emission ---------------------------------------------------

    /// Emit an arbitrary pre-built instruction.
    pub fn emit(&mut self, insn: Insn) {
        self.text.push(insn);
    }

    fn emit_branch(&mut self, op: Op, rs: Reg, rt: Reg, target: Label) {
        let idx = self.text.len();
        if let Some(t) = self.bound[target.0] {
            let disp = t as i64 - (idx as i64 + 1);
            self.text.push(Insn::branch(op, rs, rt, disp as i32));
        } else {
            self.text.push(Insn::branch(op, rs, rt, 0));
            self.fixups.push((Fixup::Branch(idx), target));
        }
    }

    fn emit_jump(&mut self, op: Op, target: Label) {
        let idx = self.text.len();
        if let Some(t) = self.bound[target.0] {
            self.text.push(Insn::jump(op, (TEXT_BASE >> 2) + t as u32));
        } else {
            self.text.push(Insn::jump(op, 0));
            self.fixups.push((Fixup::Jump(idx), target));
        }
    }

    // ---- ALU ------------------------------------------------------------

    /// `add rd, rs, rt` (with overflow trap semantics in hardware; the
    /// emulator treats it as wrapping, like SimpleScalar's PISA).
    pub fn add(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Insn::r3(Op::Add, rd, rs, rt));
    }
    /// `addu rd, rs, rt`.
    pub fn addu(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Insn::r3(Op::Addu, rd, rs, rt));
    }
    /// `sub rd, rs, rt`.
    pub fn sub(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Insn::r3(Op::Sub, rd, rs, rt));
    }
    /// `subu rd, rs, rt`.
    pub fn subu(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Insn::r3(Op::Subu, rd, rs, rt));
    }
    /// `slt rd, rs, rt`.
    pub fn slt(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Insn::r3(Op::Slt, rd, rs, rt));
    }
    /// `sltu rd, rs, rt`.
    pub fn sltu(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Insn::r3(Op::Sltu, rd, rs, rt));
    }
    /// `and rd, rs, rt`.
    pub fn and(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Insn::r3(Op::And, rd, rs, rt));
    }
    /// `or rd, rs, rt`.
    pub fn or(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Insn::r3(Op::Or, rd, rs, rt));
    }
    /// `xor rd, rs, rt`.
    pub fn xor(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Insn::r3(Op::Xor, rd, rs, rt));
    }
    /// `nor rd, rs, rt`.
    pub fn nor(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Insn::r3(Op::Nor, rd, rs, rt));
    }
    /// `addi rt, rs, imm`.
    pub fn addi(&mut self, rt: Reg, rs: Reg, imm: i16) {
        self.emit(Insn::imm_op(Op::Addi, rt, rs, imm as i32));
    }
    /// `addiu rt, rs, imm`.
    pub fn addiu(&mut self, rt: Reg, rs: Reg, imm: i16) {
        self.emit(Insn::imm_op(Op::Addiu, rt, rs, imm as i32));
    }
    /// `slti rt, rs, imm`.
    pub fn slti(&mut self, rt: Reg, rs: Reg, imm: i16) {
        self.emit(Insn::imm_op(Op::Slti, rt, rs, imm as i32));
    }
    /// `sltiu rt, rs, imm`.
    pub fn sltiu(&mut self, rt: Reg, rs: Reg, imm: i16) {
        self.emit(Insn::imm_op(Op::Sltiu, rt, rs, imm as i32));
    }
    /// `andi rt, rs, imm16`.
    pub fn andi(&mut self, rt: Reg, rs: Reg, imm: u16) {
        self.emit(Insn::imm_op(Op::Andi, rt, rs, imm as i32));
    }
    /// `ori rt, rs, imm16`.
    pub fn ori(&mut self, rt: Reg, rs: Reg, imm: u16) {
        self.emit(Insn::imm_op(Op::Ori, rt, rs, imm as i32));
    }
    /// `xori rt, rs, imm16`.
    pub fn xori(&mut self, rt: Reg, rs: Reg, imm: u16) {
        self.emit(Insn::imm_op(Op::Xori, rt, rs, imm as i32));
    }
    /// `lui rt, imm16`.
    pub fn lui(&mut self, rt: Reg, imm16: u16) {
        self.emit(Insn::lui(rt, imm16));
    }

    // ---- shifts ---------------------------------------------------------

    /// `sll rd, rt, shamt`.
    pub fn sll(&mut self, rd: Reg, rt: Reg, shamt: u8) {
        self.emit(Insn::shift_imm(Op::Sll, rd, rt, shamt));
    }
    /// `srl rd, rt, shamt`.
    pub fn srl(&mut self, rd: Reg, rt: Reg, shamt: u8) {
        self.emit(Insn::shift_imm(Op::Srl, rd, rt, shamt));
    }
    /// `sra rd, rt, shamt`.
    pub fn sra(&mut self, rd: Reg, rt: Reg, shamt: u8) {
        self.emit(Insn::shift_imm(Op::Sra, rd, rt, shamt));
    }
    /// `sllv rd, rt, rs`.
    pub fn sllv(&mut self, rd: Reg, rt: Reg, rs: Reg) {
        self.emit(Insn::r3(Op::Sllv, rd, rs, rt));
    }
    /// `srlv rd, rt, rs`.
    pub fn srlv(&mut self, rd: Reg, rt: Reg, rs: Reg) {
        self.emit(Insn::r3(Op::Srlv, rd, rs, rt));
    }
    /// `srav rd, rt, rs`.
    pub fn srav(&mut self, rd: Reg, rt: Reg, rs: Reg) {
        self.emit(Insn::r3(Op::Srav, rd, rs, rt));
    }

    // ---- multiply / divide ---------------------------------------------

    /// `mult rs, rt`.
    pub fn mult(&mut self, rs: Reg, rt: Reg) {
        self.emit(Insn::muldiv(Op::Mult, rs, rt));
    }
    /// `multu rs, rt`.
    pub fn multu(&mut self, rs: Reg, rt: Reg) {
        self.emit(Insn::muldiv(Op::Multu, rs, rt));
    }
    /// `div rs, rt`.
    pub fn div(&mut self, rs: Reg, rt: Reg) {
        self.emit(Insn::muldiv(Op::Div, rs, rt));
    }
    /// `divu rs, rt`.
    pub fn divu(&mut self, rs: Reg, rt: Reg) {
        self.emit(Insn::muldiv(Op::Divu, rs, rt));
    }
    /// `mfhi rd`.
    pub fn mfhi(&mut self, rd: Reg) {
        self.emit(Insn::mfhilo(Op::Mfhi, rd));
    }
    /// `mflo rd`.
    pub fn mflo(&mut self, rd: Reg) {
        self.emit(Insn::mfhilo(Op::Mflo, rd));
    }

    // ---- floating point -------------------------------------------------

    /// `add.s rd, rs, rt` (GPR bit patterns as `f32`).
    pub fn add_s(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Insn::r3(Op::AddS, rd, rs, rt));
    }
    /// `sub.s rd, rs, rt`.
    pub fn sub_s(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Insn::r3(Op::SubS, rd, rs, rt));
    }
    /// `mul.s rd, rs, rt`.
    pub fn mul_s(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Insn::r3(Op::MulS, rd, rs, rt));
    }
    /// `div.s rd, rs, rt`.
    pub fn div_s(&mut self, rd: Reg, rs: Reg, rt: Reg) {
        self.emit(Insn::r3(Op::DivS, rd, rs, rt));
    }
    /// `cvt.s.w rd, rs` — convert integer to float.
    pub fn cvt_s_w(&mut self, rd: Reg, rs: Reg) {
        self.emit(Insn::r3(Op::CvtSW, rd, rs, Reg::ZERO));
    }
    /// `cvt.w.s rd, rs` — convert float to integer (truncating).
    pub fn cvt_w_s(&mut self, rd: Reg, rs: Reg) {
        self.emit(Insn::r3(Op::CvtWS, rd, rs, Reg::ZERO));
    }

    // ---- memory ---------------------------------------------------------

    /// `lb rt, off(base)`.
    pub fn lb(&mut self, rt: Reg, off: i16, base: Reg) {
        self.emit(Insn::load(Op::Lb, rt, off, base));
    }
    /// `lbu rt, off(base)`.
    pub fn lbu(&mut self, rt: Reg, off: i16, base: Reg) {
        self.emit(Insn::load(Op::Lbu, rt, off, base));
    }
    /// `lh rt, off(base)`.
    pub fn lh(&mut self, rt: Reg, off: i16, base: Reg) {
        self.emit(Insn::load(Op::Lh, rt, off, base));
    }
    /// `lhu rt, off(base)`.
    pub fn lhu(&mut self, rt: Reg, off: i16, base: Reg) {
        self.emit(Insn::load(Op::Lhu, rt, off, base));
    }
    /// `lw rt, off(base)`.
    pub fn lw(&mut self, rt: Reg, off: i16, base: Reg) {
        self.emit(Insn::load(Op::Lw, rt, off, base));
    }
    /// `sb rt, off(base)`.
    pub fn sb(&mut self, rt: Reg, off: i16, base: Reg) {
        self.emit(Insn::store(Op::Sb, rt, off, base));
    }
    /// `sh rt, off(base)`.
    pub fn sh(&mut self, rt: Reg, off: i16, base: Reg) {
        self.emit(Insn::store(Op::Sh, rt, off, base));
    }
    /// `sw rt, off(base)`.
    pub fn sw(&mut self, rt: Reg, off: i16, base: Reg) {
        self.emit(Insn::store(Op::Sw, rt, off, base));
    }

    // ---- control --------------------------------------------------------

    /// `beq rs, rt, label`.
    pub fn beq(&mut self, rs: Reg, rt: Reg, target: Label) {
        self.emit_branch(Op::Beq, rs, rt, target);
    }
    /// `bne rs, rt, label`.
    pub fn bne(&mut self, rs: Reg, rt: Reg, target: Label) {
        self.emit_branch(Op::Bne, rs, rt, target);
    }
    /// `blez rs, label`.
    pub fn blez(&mut self, rs: Reg, target: Label) {
        self.emit_branch(Op::Blez, rs, Reg::ZERO, target);
    }
    /// `bgtz rs, label`.
    pub fn bgtz(&mut self, rs: Reg, target: Label) {
        self.emit_branch(Op::Bgtz, rs, Reg::ZERO, target);
    }
    /// `bltz rs, label`.
    pub fn bltz(&mut self, rs: Reg, target: Label) {
        self.emit_branch(Op::Bltz, rs, Reg::ZERO, target);
    }
    /// `bgez rs, label`.
    pub fn bgez(&mut self, rs: Reg, target: Label) {
        self.emit_branch(Op::Bgez, rs, Reg::ZERO, target);
    }
    /// Unconditional branch (`beq r0, r0, label`).
    pub fn b(&mut self, target: Label) {
        self.emit_branch(Op::Beq, Reg::ZERO, Reg::ZERO, target);
    }
    /// `j label`.
    pub fn j(&mut self, target: Label) {
        self.emit_jump(Op::J, target);
    }
    /// `jal label`.
    pub fn jal(&mut self, target: Label) {
        self.emit_jump(Op::Jal, target);
    }
    /// `jr rs`.
    pub fn jr(&mut self, rs: Reg) {
        self.emit(Insn::jump_reg(Op::Jr, Reg::ZERO, rs));
    }
    /// `jalr rd, rs`.
    pub fn jalr(&mut self, rd: Reg, rs: Reg) {
        self.emit(Insn::jump_reg(Op::Jalr, rd, rs));
    }

    // ---- pseudo-instructions ---------------------------------------------

    /// `nop`.
    pub fn nop(&mut self) {
        self.emit(Insn::nop());
    }

    /// Load a 32-bit constant: one `addiu` when it fits in a signed 16-bit
    /// immediate, else `lui`+`ori`.
    pub fn li(&mut self, rt: Reg, value: i32) {
        if (-32768..=32767).contains(&value) {
            self.addiu(rt, Reg::ZERO, value as i16);
        } else {
            let v = value as u32;
            self.lui(rt, (v >> 16) as u16);
            if v & 0xffff != 0 {
                self.ori(rt, rt, (v & 0xffff) as u16);
            }
        }
    }

    /// Load the address of a data-segment location.
    pub fn la(&mut self, rt: Reg, addr: u32) {
        self.li(rt, addr as i32);
    }

    /// `move rd, rs` (`addu rd, rs, r0`).
    pub fn mov(&mut self, rd: Reg, rs: Reg) {
        self.addu(rd, rs, Reg::ZERO);
    }

    /// Raw `syscall`.
    pub fn syscall(&mut self) {
        self.emit(Insn::sys(Op::Syscall));
    }

    /// Print the integer in `rs` (clobbers `v0`/`a0`): the `PrintInt`
    /// service.
    pub fn print_int(&mut self, rs: Reg) {
        if rs != Reg::A0 {
            self.mov(Reg::A0, rs);
        }
        self.li(Reg::V0, 1);
        self.syscall();
    }

    /// Program exit: `syscall` with `v0 = 0` (the exit service).
    pub fn exit(&mut self) {
        self.li(Reg::V0, 0);
        self.emit(Insn::sys(Op::Syscall));
    }

    // ---- finalization ----------------------------------------------------

    /// Resolve all fixups and produce the [`Program`].
    ///
    /// # Panics
    /// Panics if any referenced label was never bound, or if a resolved
    /// branch displacement exceeds the 16-bit field.
    pub fn finish(mut self) -> Program {
        for (fix, label) in std::mem::take(&mut self.fixups) {
            let target = self.bound[label.0].unwrap_or_else(|| {
                let name = self
                    .names
                    .iter()
                    .find_map(|(n, &l)| (l == label).then_some(n.as_str()))
                    .unwrap_or("<anonymous>");
                panic!("unbound label {name:?}")
            });
            match fix {
                Fixup::Branch(idx) => {
                    let disp = target as i64 - (idx as i64 + 1);
                    assert!(
                        (-32768..=32767).contains(&disp),
                        "branch displacement {disp} out of range"
                    );
                    let old = self.text[idx];
                    self.text[idx] = Insn::branch(old.op(), old.rs(), old.rt(), disp as i32);
                }
                Fixup::Jump(idx) => {
                    let old = self.text[idx];
                    self.text[idx] = Insn::jump(old.op(), (TEXT_BASE >> 2) + target as u32);
                }
            }
        }
        let entry = self.symbols.get("main").copied().unwrap_or(TEXT_BASE);
        Program {
            text: self.text,
            data: self.data,
            entry,
            symbols: self.symbols,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_branches() {
        let mut b = Builder::new();
        let fwd = b.label();
        b.li(Reg::V0, 3);
        let top = b.here("top");
        b.addiu(Reg::V0, Reg::V0, -1);
        b.beq(Reg::V0, Reg::ZERO, fwd);
        b.bne(Reg::V0, Reg::ZERO, top);
        b.bind(fwd);
        b.exit();
        let p = b.finish();
        // beq at index 2 targets index 4: disp = 4 - 3 = 1.
        assert_eq!(p.text[2].imm(), 1);
        // bne at index 3 targets index 1: disp = 1 - 4 = -3.
        assert_eq!(p.text[3].imm(), -3);
    }

    #[test]
    fn jump_targets_are_absolute_words() {
        let mut b = Builder::new();
        let f = b.label();
        b.jal(f);
        b.exit();
        b.bind(f);
        b.jr(Reg::RA);
        let p = b.finish();
        let target_word = p.text[0].imm() as u32;
        assert_eq!(target_word << 2, Program::text_addr(3));
    }

    #[test]
    fn li_small_and_large() {
        let mut b = Builder::new();
        b.li(Reg::V0, 42);
        b.li(Reg::V1, 0x1002_f3c0u32 as i32);
        b.li(Reg::A0, 0x7fff_0000);
        let p = b.finish();
        assert_eq!(p.text.len(), 1 + 2 + 1); // addiu; lui+ori; lui only
    }

    #[test]
    fn data_layout() {
        let mut b = Builder::new();
        let a = b.data_bytes(&[1, 2, 3]);
        let w = b.data_word(0xdead_beef);
        assert_eq!(a, DATA_BASE);
        assert_eq!(w, DATA_BASE + 4); // aligned past the 3 bytes
        let p = b.finish();
        assert_eq!(&p.data[4..8], &0xdead_beefu32.to_le_bytes());
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut b = Builder::new();
        let l = b.named("nowhere");
        b.b(l);
        let _ = b.finish();
    }

    #[test]
    fn main_symbol_sets_entry() {
        let mut b = Builder::new();
        b.nop();
        b.here("main");
        b.exit();
        let p = b.finish();
        assert_eq!(p.entry, Program::text_addr(1));
    }
}
