//! Instruction-mix assertions: each stand-in workload must actually have
//! the behavioural character DESIGN.md §4 claims for it.

use popk_emu::Machine;
use popk_isa::{Op, OpClass};
use popk_workloads::{all, by_name};
use std::collections::HashMap;

const LIMIT: u64 = 60_000;

fn class_counts(name: &str) -> (HashMap<&'static str, u64>, u64) {
    let p = by_name(name).unwrap().program();
    let mut m = Machine::new(&p);
    let mut counts: HashMap<&'static str, u64> = HashMap::new();
    let mut total = 0u64;
    for rec in m.trace(LIMIT) {
        let rec = rec.unwrap();
        let key = match rec.insn.op().class() {
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::Branch => "branch",
            OpClass::Jump => "jump",
            OpClass::MulDiv => "muldiv",
            OpClass::Fp => "fp",
            OpClass::Shift => "shift",
            OpClass::Logic => "logic",
            OpClass::IntAlu => "alu",
            OpClass::Sys => "sys",
        };
        *counts.entry(key).or_default() += 1;
        total += 1;
    }
    (counts, total)
}

fn frac(counts: &HashMap<&'static str, u64>, total: u64, key: &str) -> f64 {
    *counts.get(key).unwrap_or(&0) as f64 / total as f64
}

#[test]
fn every_workload_is_loopy_and_mixed() {
    for w in all() {
        let (counts, total) = class_counts(w.name);
        assert_eq!(total, LIMIT, "{} exited early", w.name);
        let branches = frac(&counts, total, "branch");
        assert!(
            (0.02..0.45).contains(&branches),
            "{}: branch fraction {branches}",
            w.name
        );
        let mem = frac(&counts, total, "load") + frac(&counts, total, "store");
        assert!(mem > 0.05, "{}: memory fraction {mem}", w.name);
    }
}

#[test]
fn mcf_is_load_heavy_and_store_light() {
    let (c, t) = class_counts("mcf");
    assert!(frac(&c, t, "load") > 0.20);
    assert!(frac(&c, t, "store") < 0.05);
}

#[test]
fn bzip_and_li_are_store_heavy() {
    for name in ["bzip", "li"] {
        let (c, t) = class_counts(name);
        assert!(frac(&c, t, "store") > 0.05, "{name}");
    }
}

#[test]
fn vortex_dispatches_through_jalr() {
    let p = by_name("vortex").unwrap().program();
    let mut m = Machine::new(&p);
    let mut jalr = 0u64;
    for rec in m.trace(LIMIT) {
        if rec.unwrap().insn.op() == Op::Jalr {
            jalr += 1;
        }
    }
    assert!(jalr > 100, "vortex must dispatch via jalr, saw {jalr}");
}

#[test]
fn li_recurses_through_jal_jr() {
    let p = by_name("li").unwrap().program();
    let mut m = Machine::new(&p);
    let (mut jal, mut jr) = (0u64, 0u64);
    for rec in m.trace(LIMIT) {
        match rec.unwrap().insn.op() {
            Op::Jal => jal += 1,
            Op::Jr => jr += 1,
            _ => {}
        }
    }
    assert!(jal > 500 && jr > 500, "li recursion: jal {jal}, jr {jr}");
}

#[test]
fn vpr_exercises_floating_point() {
    let (c, t) = class_counts("vpr");
    assert!(frac(&c, t, "fp") > 0.005, "vpr needs FP in its hot loop");
}

#[test]
fn ijpeg_and_twolf_multiply() {
    for name in ["ijpeg", "twolf"] {
        let (c, t) = class_counts(name);
        assert!(frac(&c, t, "muldiv") > 0.01, "{name} should multiply");
    }
}

#[test]
fn li_contains_the_fig5_idiom() {
    // The mark test must be the literal lbu → andi → bne sequence.
    let p = by_name("li").unwrap().test_program();
    let mut found = false;
    for win in p.text.windows(3) {
        if win[0].op() == Op::Lbu
            && win[1].op() == Op::Andi
            && win[1].imm() == 1
            && matches!(win[2].op(), Op::Beq | Op::Bne)
        {
            found = true;
            break;
        }
    }
    assert!(found, "li must contain the Fig. 5 lbu/andi/bne idiom");
}

#[test]
fn working_set_sizes_differ() {
    // mcf's data segment must dwarf the L1 (64 KB); parser's must not.
    let mcf = by_name("mcf").unwrap().test_program();
    let parser = by_name("parser").unwrap().test_program();
    assert!(
        mcf.data.len() > 128 * 1024,
        "mcf working set: {}",
        mcf.data.len()
    );
    assert!(
        parser.data.len() < 32 * 1024,
        "parser working set: {}",
        parser.data.len()
    );
}

#[test]
fn branch_type_diversity() {
    // The suite overall must mix eq/ne with sign-testing branch types
    // (§5.3's taxonomy needs both populations).
    let (mut eqne, mut sign) = (0u64, 0u64);
    for w in all() {
        let p = w.program();
        let mut m = Machine::new(&p);
        for rec in m.trace(20_000) {
            if let Some(c) = rec.unwrap().insn.op().branch_cond() {
                if c.early_resolvable() {
                    eqne += 1;
                } else {
                    sign += 1;
                }
            }
        }
    }
    let share = eqne as f64 / (eqne + sign) as f64;
    assert!(
        (0.45..0.90).contains(&share),
        "eq/ne share {share} out of the calibrated band (paper: 61%)"
    );
}
