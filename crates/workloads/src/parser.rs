//! `parser` stand-in: character-class tokenizer state machine.
//!
//! SPEC `parser` grinds through English text character by character,
//! branching on character classes. This kernel scans a pseudo-English
//! buffer with a two-state (in-word / between-words) machine built from
//! range-check branch ladders (`sltiu`-style): word starts, digit runs and
//! punctuation each take different paths, so the branch stream mixes
//! highly-biased checks with data-dependent ones.

use crate::util::XorShift32;
use popk_isa::builder::Builder;
use popk_isa::{Program, Reg};

/// Text length in bytes.
pub const SIZE: u32 = 8192;

const SEED: u32 = 0x7061_7273; // "pars"

fn gen_text() -> Vec<u8> {
    let mut rng = XorShift32::new(SEED);
    let mut buf = Vec::with_capacity(SIZE as usize);
    while buf.len() < SIZE as usize {
        match rng.below(10) {
            0..=5 => {
                // a word of 1..=9 letters
                for _ in 0..=rng.below(9) {
                    buf.push(b'a' + rng.below(26) as u8);
                }
                buf.push(b' ');
            }
            6..=7 => {
                // a number of 1..=4 digits
                for _ in 0..=rng.below(4) {
                    buf.push(b'0' + rng.below(10) as u8);
                }
                buf.push(b' ');
            }
            _ => {
                buf.push(b",.;:!?"[rng.below(6) as usize]);
                buf.push(b' ');
            }
        }
    }
    buf.truncate(SIZE as usize);
    buf
}

/// Build the kernel; each iteration prints (words, digits seen,
/// punctuation count, total letter count).
pub fn build(iters: u32) -> Program {
    let text = gen_text();
    let mut b = Builder::new();
    let buf = b.data_bytes(&text);

    let (bufb, pos, words, digits, puncts, letters, in_word, iter) = (
        Reg::gpr(16),
        Reg::gpr(17),
        Reg::gpr(18),
        Reg::gpr(19),
        Reg::gpr(20),
        Reg::gpr(21),
        Reg::gpr(22),
        Reg::gpr(8),
    );
    let (c, t0, t1) = (Reg::gpr(23), Reg::gpr(9), Reg::gpr(10));

    b.here("main");
    b.la(bufb, buf);
    b.li(iter, iters as i32);

    let outer = b.here("outer");
    b.li(pos, 0);
    b.li(words, 0);
    b.li(digits, 0);
    b.li(puncts, 0);
    b.li(letters, 0);
    b.li(in_word, 0);

    let scan = b.here("scan");
    let advance = b.named("advance");
    let not_letter = b.named("not_letter");
    let not_digit = b.named("not_digit");
    b.addu(t0, bufb, pos);
    b.lbu(c, 0, t0);

    // Letter? 'a' <= c <= 'z'  ⇔  (c - 'a') <u 26, the classic MIPS
    // unsigned range-check idiom.
    b.addiu(t0, c, -(b'a' as i16));
    b.sltiu(t1, t0, 26);
    b.beq(t1, Reg::ZERO, not_letter);
    b.addiu(letters, letters, 1);
    // Word-start detection: count a word on the 0→1 transition.
    b.bne(in_word, Reg::ZERO, advance);
    b.li(in_word, 1);
    b.addiu(words, words, 1);
    b.b(advance);

    {
        let l = b.named("not_letter");
        b.bind(l);
    }
    b.li(in_word, 0);
    // Digit? (c - '0') <u 10, same idiom.
    b.addiu(t0, c, -(b'0' as i16));
    b.sltiu(t1, t0, 10);
    b.beq(t1, Reg::ZERO, not_digit);
    b.addiu(digits, digits, 1);
    b.b(advance);

    {
        let l = b.named("not_digit");
        b.bind(l);
    }
    // Space is silent; everything else is punctuation.
    b.li(t0, b' ' as i32);
    b.beq(c, t0, advance);
    b.addiu(puncts, puncts, 1);

    {
        let l = b.named("advance");
        b.bind(l);
    }
    b.addiu(pos, pos, 1);
    b.addiu(t0, pos, -(SIZE as i16));
    b.bltz(t0, scan);

    b.print_int(words);
    b.print_int(digits);
    b.print_int(puncts);
    b.print_int(letters);
    b.addiu(iter, iter, -1);
    b.bne(iter, Reg::ZERO, outer);
    b.exit();
    b.finish()
}

/// The Rust reference model.
pub fn reference(iters: u32) -> Vec<i32> {
    let text = gen_text();
    let mut out = Vec::new();
    for _ in 0..iters {
        let (mut words, mut digits, mut puncts, mut letters) = (0i32, 0i32, 0i32, 0i32);
        let mut in_word = false;
        for &c in &text {
            if c.is_ascii_lowercase() {
                letters += 1;
                if !in_word {
                    in_word = true;
                    words += 1;
                }
            } else {
                in_word = false;
                if c.is_ascii_digit() {
                    digits += 1;
                } else if c != b' ' {
                    puncts += 1;
                }
            }
        }
        out.extend([words, digits, puncts, letters]);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::run_outputs;

    #[test]
    fn matches_reference() {
        let p = build(3);
        assert_eq!(run_outputs(&p, 2_000_000), reference(3));
    }

    #[test]
    fn text_has_all_classes() {
        let r = reference(1);
        assert!(r.iter().all(|&v| v > 0), "degenerate text: {r:?}");
    }
}
