//! `li` stand-in: cons-cell mark/sweep interpreter.
//!
//! SPEC's `xlisp` spends much of its time in garbage collection; the
//! paper's Figure 5 shows its hottest mispredicting branch — the mark-bit
//! test `lbu / andi / bne` — contributing 18% of all mispredictions. This
//! kernel reproduces that inner loop literally: a recursive `mark` over a
//! random car/cdr graph whose first action is exactly that three-
//! instruction idiom, followed by a linear sweep that clears the bits.
//! Recursion through `jal`/`jr ra` also exercises the RAS.

use crate::util::XorShift32;
use popk_isa::builder::Builder;
use popk_isa::{Program, Reg};

/// Number of cons cells (16 B each; index 0 is the nil sentinel).
pub const CELLS: u32 = 4096;
/// Number of root pointers cycled through across iterations.
pub const ROOTS: u32 = 256;
/// Roots marked per outer iteration (before one sweep).
pub const ROOTS_PER_ITER: u32 = 8;

const SEED: u32 = 0x006c_6973; // "lis"

/// Cell layout: flags byte at +0, car index at +4, cdr index at +8.
const FLAGS_OFF: i16 = 0;
const CAR_OFF: i16 = 4;
const CDR_OFF: i16 = 8;

fn gen_graph() -> (Vec<u32>, Vec<u32>, Vec<u32>) {
    let mut rng = XorShift32::new(SEED);
    let n = CELLS as usize;
    // 1-based indices; 0 = nil. Bias car/cdr toward *lower* indices so the
    // recursion terminates quickly on average and depth stays bounded.
    let mut car = vec![0u32; n + 1];
    let mut cdr = vec![0u32; n + 1];
    for i in 1..=n {
        // ~20% nil pointers; children strictly below the parent index.
        car[i] = if rng.below(5) == 0 {
            0
        } else {
            rng.below(i as u32)
        };
        cdr[i] = if rng.below(5) == 0 {
            0
        } else {
            rng.below(i as u32)
        };
    }
    let roots: Vec<u32> = (0..ROOTS).map(|_| 1 + rng.below(CELLS)).collect();
    (car, cdr, roots)
}

/// Build the kernel with `iters` outer iterations; each iteration prints
/// the mark count then the sweep count.
pub fn build(iters: u32) -> Program {
    let (car, cdr, roots) = gen_graph();
    let mut b = Builder::new();

    let mut words = Vec::with_capacity((CELLS as usize + 1) * 4);
    for i in 0..=CELLS as usize {
        words.push(0); // flags (+ padding bytes)
        words.push(car[i]);
        words.push(cdr[i]);
        words.push(0); // pad
    }
    let cells = b.data_words(&words);
    let root_tab = b.data_words(&roots);

    let (base, iter, rootp, marked, swept, tmp, tmp2, addr) = (
        Reg::gpr(16),
        Reg::gpr(8),
        Reg::gpr(17),
        Reg::gpr(18),
        Reg::gpr(19),
        Reg::gpr(9),
        Reg::gpr(10),
        Reg::gpr(11),
    );

    let mark = b.named("mark");

    b.here("main");
    b.la(base, cells);
    b.li(iter, iters as i32);
    b.li(rootp, 0); // root cursor

    let outer = b.here("outer");
    // ---- mark phase: ROOTS_PER_ITER roots before each sweep ---------
    b.li(marked, 0);
    let rcount = Reg::gpr(21);
    b.li(rcount, ROOTS_PER_ITER as i32);
    let mark_next = b.here("mark_next");
    b.la(tmp, root_tab);
    b.sll(tmp2, rootp, 2);
    b.addu(tmp, tmp, tmp2);
    b.lw(Reg::A0, 0, tmp); // a0 = root cell index
    b.jal(mark);
    b.addu(marked, marked, Reg::V0);
    // rootp = (rootp + 1) % ROOTS
    b.addiu(rootp, rootp, 1);
    b.andi(rootp, rootp, (ROOTS - 1) as u16);
    b.addiu(rcount, rcount, -1);
    b.bgtz(rcount, mark_next);
    b.print_int(marked);

    // ---- sweep phase: count and clear mark bits ---------------------
    b.li(swept, 0);
    b.li(tmp, 1); // cell index
    let sweep = b.here("sweep");
    b.sll(addr, tmp, 4);
    b.addu(addr, addr, base);
    b.lbu(tmp2, FLAGS_OFF, addr);
    b.andi(tmp2, tmp2, 1);
    b.addu(swept, swept, tmp2);
    b.sb(Reg::ZERO, FLAGS_OFF, addr);
    b.addiu(tmp, tmp, 1);
    b.li(tmp2, CELLS as i32 + 1);
    b.bne(tmp, tmp2, sweep);
    b.print_int(swept);

    b.addiu(iter, iter, -1);
    b.bne(iter, Reg::ZERO, outer);
    b.exit();

    // ---- fn mark(a0: cell index) -> v0: newly marked count -----------
    // Non-nil check, then the Fig. 5 idiom: lbu flags / andi 1 / bne.
    b.bind(mark);
    let m_body = b.label();
    b.bne(Reg::A0, Reg::ZERO, m_body);
    b.li(Reg::V0, 0);
    b.jr(Reg::RA);
    b.bind(m_body);
    b.sll(tmp, Reg::A0, 4);
    b.addu(tmp, tmp, base);
    b.lbu(tmp2, FLAGS_OFF, tmp); // Fig. 5: lbu
    b.andi(tmp2, tmp2, 1); //        andi
    let m_fresh = b.label();
    b.beq(tmp2, Reg::ZERO, m_fresh); // (bne in Fig. 5; inverted sense here)
    b.li(Reg::V0, 0);
    b.jr(Reg::RA);
    b.bind(m_fresh);
    b.li(tmp2, 1);
    b.sb(tmp2, FLAGS_OFF, tmp);
    // Save ra, the cell address, and a slot for the car-subtree count.
    b.addiu(Reg::SP, Reg::SP, -12);
    b.sw(Reg::RA, 0, Reg::SP);
    b.sw(tmp, 4, Reg::SP);
    b.lw(Reg::A0, CAR_OFF, tmp);
    b.jal(mark);
    b.sw(Reg::V0, 8, Reg::SP);
    b.lw(tmp, 4, Reg::SP);
    b.lw(Reg::A0, CDR_OFF, tmp);
    b.jal(mark);
    b.lw(tmp2, 8, Reg::SP);
    b.addu(Reg::V0, Reg::V0, tmp2);
    b.addiu(Reg::V0, Reg::V0, 1);
    b.lw(Reg::RA, 0, Reg::SP);
    b.addiu(Reg::SP, Reg::SP, 12);
    b.jr(Reg::RA);

    b.finish()
}

/// The Rust reference model.
pub fn reference(iters: u32) -> Vec<i32> {
    let (car, cdr, roots) = gen_graph();
    let n = CELLS as usize;
    let mut flags = vec![false; n + 1];
    let mut out = Vec::new();

    fn mark(idx: usize, flags: &mut [bool], car: &[u32], cdr: &[u32]) -> u32 {
        if idx == 0 || flags[idx] {
            return 0;
        }
        flags[idx] = true;
        let a = mark(car[idx] as usize, flags, car, cdr);
        let b = mark(cdr[idx] as usize, flags, car, cdr);
        a + b + 1
    }

    let mut rootp = 0usize;
    for _ in 0..iters {
        let mut marked = 0u32;
        for _ in 0..ROOTS_PER_ITER {
            marked += mark(roots[rootp] as usize, &mut flags, &car, &cdr);
            rootp = (rootp + 1) % ROOTS as usize;
        }
        out.push(marked as i32);
        let mut swept = 0u32;
        for f in flags.iter_mut().skip(1) {
            swept += *f as u32;
            *f = false;
        }
        out.push(swept as i32);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::run_outputs;

    #[test]
    fn matches_reference() {
        let p = build(3);
        assert_eq!(run_outputs(&p, 5_000_000), reference(3));
    }

    #[test]
    fn mark_equals_sweep() {
        // Every marked cell must be found by the sweep.
        let r = reference(4);
        for pair in r.chunks(2) {
            assert_eq!(pair[0], pair[1]);
        }
    }

    #[test]
    fn marks_nontrivial_subgraphs() {
        let r = reference(8);
        assert!(r.iter().any(|&m| m > 10), "graph too sparse: {r:?}");
    }
}
