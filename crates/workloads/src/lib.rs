//! # popk-workloads — SPECint stand-in kernels (Table 1)
//!
//! The paper evaluates on eleven programs from SPECint2000/SPECint95.
//! Those binaries (and a PISA cross-compiler) are unavailable, so each
//! program is replaced by a kernel — written in the `popk` ISA via
//! [`popk_isa::builder::Builder`] — that reproduces the behavioural traits
//! the paper's techniques are sensitive to: instruction mix, branch
//! predictability, pointer- vs. array-dominated access patterns, and
//! working-set size. See `DESIGN.md` §4 for the substitution rationale.
//!
//! | name   | stands in for | character |
//! |--------|---------------|-----------|
//! | bzip   | bzip2         | move-to-front + RLE coding: scan loops, branchy |
//! | gcc    | gcc           | hashed symbol table with chained buckets |
//! | go     | go            | board-array heuristics, data-dependent branches |
//! | gzip   | gzip          | LZ77 window matching, byte-compare loops |
//! | ijpeg  | ijpeg         | 8×8 integer transform, multiply-heavy, predictable |
//! | li     | xlisp         | cons-cell mark/sweep with the Fig. 5 `lbu/andi/bne` idiom |
//! | mcf    | mcf           | pointer chasing over a >L1 arc array, memory bound |
//! | parser | parser        | character-class state machine over text |
//! | twolf  | twolf         | annealing-style swap accept/reject, unpredictable |
//! | vortex | vortex        | object DB with handler dispatch through `jalr` |
//! | vpr    | vpr           | bounding-box placement cost, some floating point |
//!
//! Every kernel takes an iteration count, prints per-phase checksums via
//! the `PrintInt` syscall and exits; a Rust reference model in each module
//! computes the same checksums, and unit tests assert emulation matches
//! the reference exactly — validating both kernel and emulator.
//!
//! ```
//! use popk_workloads::{all, by_name};
//!
//! assert_eq!(all().len(), 11);
//! let li = by_name("li").unwrap();
//! let program = (li.build)(2); // 2 outer iterations
//! assert!(!program.text.is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bzip;
pub mod gcc;
pub mod go;
pub mod gzip;
pub mod ijpeg;
pub mod li;
pub mod mcf;
pub mod parser;
pub mod twolf;
pub mod util;
pub mod vortex;
pub mod vpr;

use popk_isa::Program;

/// A registered workload.
#[derive(Clone, Copy)]
pub struct Workload {
    /// Short name (matches Table 1's benchmark column).
    pub name: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// Build the program with a given outer-iteration count.
    pub build: fn(u32) -> Program,
    /// Outer iterations that comfortably exceed a multi-million-instruction
    /// simulation budget (so budget-limited runs never exit early).
    pub full_iters: u32,
    /// Outer iterations suitable for fast functional tests.
    pub test_iters: u32,
}

impl Workload {
    /// The program sized for timing/characterization runs.
    pub fn program(&self) -> Program {
        (self.build)(self.full_iters)
    }

    /// The program sized for quick functional tests.
    pub fn test_program(&self) -> Program {
        (self.build)(self.test_iters)
    }
}

/// All eleven Table 1 workloads, in the paper's order.
pub fn all() -> Vec<Workload> {
    vec![
        Workload {
            name: "bzip",
            description: "move-to-front + run-length coder",
            build: bzip::build,
            full_iters: 2000,
            test_iters: 3,
        },
        Workload {
            name: "gcc",
            description: "hashed symbol table with chained buckets",
            build: gcc::build,
            full_iters: 2000,
            test_iters: 3,
        },
        Workload {
            name: "go",
            description: "board-array move evaluation",
            build: go::build,
            full_iters: 2000,
            test_iters: 3,
        },
        Workload {
            name: "gzip",
            description: "LZ77 window matcher",
            build: gzip::build,
            full_iters: 2000,
            test_iters: 3,
        },
        Workload {
            name: "ijpeg",
            description: "8x8 integer block transform",
            build: ijpeg::build,
            full_iters: 2000,
            test_iters: 3,
        },
        Workload {
            name: "li",
            description: "cons-cell mark/sweep interpreter",
            build: li::build,
            full_iters: 2000,
            test_iters: 3,
        },
        Workload {
            name: "mcf",
            description: "pointer chasing over a large arc array",
            build: mcf::build,
            full_iters: 2000,
            test_iters: 3,
        },
        Workload {
            name: "parser",
            description: "character-class tokenizer state machine",
            build: parser::build,
            full_iters: 2000,
            test_iters: 3,
        },
        Workload {
            name: "twolf",
            description: "annealing-style swap accept/reject",
            build: twolf::build,
            full_iters: 2000,
            test_iters: 3,
        },
        Workload {
            name: "vortex",
            description: "object DB with jalr handler dispatch",
            build: vortex::build,
            full_iters: 2000,
            test_iters: 3,
        },
        Workload {
            name: "vpr",
            description: "bounding-box placement cost",
            build: vpr::build,
            full_iters: 2000,
            test_iters: 3,
        },
    ]
}

/// Look a workload up by name.
pub fn by_name(name: &str) -> Option<Workload> {
    all().into_iter().find(|w| w.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_is_complete_and_unique() {
        let ws = all();
        assert_eq!(ws.len(), 11);
        let mut names: Vec<_> = ws.iter().map(|w| w.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 11);
        assert!(by_name("mcf").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn all_programs_build() {
        for w in all() {
            let p = w.test_program();
            assert!(!p.text.is_empty(), "{} emitted no code", w.name);
        }
    }
}
