//! `vpr` stand-in: bounding-box placement cost.
//!
//! FPGA placement sums net bounding-box dimensions over coordinate
//! arrays: streaming loads, compares and absolute differences with good
//! branch behaviour, plus occasional floating-point scaling (vpr is one
//! of the few SPECint programs with real FP in its hot path). Every
//! eighth net's cost passes through an `f32` multiply, exercising the
//! atomic (all-slices) path of the bit-sliced core.

use crate::util::XorShift32;
use popk_isa::builder::Builder;
use popk_isa::{Program, Reg};

/// Placed blocks.
pub const BLOCKS: u32 = 2048;
/// Two-pin nets per outer iteration.
pub const NETS: u32 = 2048;
/// FP scale factor applied to every 8th net (1.5 in f32).
pub const SCALE: f32 = 1.5;

const SEED: u32 = 0x0076_7072; // "vpr"

fn gen_placement() -> (Vec<u32>, Vec<u32>, Vec<u32>) {
    let mut rng = XorShift32::new(SEED);
    let xs: Vec<u32> = (0..BLOCKS).map(|_| rng.below(64)).collect();
    let ys: Vec<u32> = (0..BLOCKS).map(|_| rng.below(64)).collect();
    // Nets packed as (a << 16) | b.
    let nets: Vec<u32> = (0..NETS)
        .map(|_| (rng.below(BLOCKS) << 16) | rng.below(BLOCKS))
        .collect();
    (xs, ys, nets)
}

/// Build the kernel; each iteration prints the total cost, then perturbs
/// the placement so iterations differ.
pub fn build(iters: u32) -> Program {
    let (xs, ys, nets) = gen_placement();
    let mut b = Builder::new();
    let xsb = b.data_words(&xs);
    let ysb = b.data_words(&ys);
    let netb = b.data_words(&nets);

    let (xb, yb, nb, ni, total, iter) = (
        Reg::gpr(16),
        Reg::gpr(17),
        Reg::gpr(18),
        Reg::gpr(19),
        Reg::gpr(20),
        Reg::gpr(8),
    );
    let (a, c, t0, t1, t2, dx, dy, fs) = (
        Reg::gpr(21),
        Reg::gpr(22),
        Reg::gpr(9),
        Reg::gpr(10),
        Reg::gpr(11),
        Reg::gpr(23),
        Reg::gpr(24),
        Reg::gpr(25),
    );

    b.here("main");
    b.la(xb, xsb);
    b.la(yb, ysb);
    b.la(nb, netb);
    b.li(fs, SCALE.to_bits() as i32); // f32 constant lives in a GPR
    b.li(iter, iters as i32);

    let outer = b.here("outer");
    b.li(ni, 0);
    b.li(total, 0);

    let net = b.here("net");
    let no_fp = b.named("no_fp");
    b.sll(t0, ni, 2);
    b.addu(t0, t0, nb);
    b.lw(t1, 0, t0);
    b.srl(a, t1, 16);
    b.andi(c, t1, 0xffff);

    // dx = |x[a] - x[c]|
    b.sll(t0, a, 2);
    b.addu(t0, t0, xb);
    b.lw(t1, 0, t0);
    b.sll(t0, c, 2);
    b.addu(t0, t0, xb);
    b.lw(t2, 0, t0);
    // Branchless abs (sign-mask), as compilers emit for |a-b|.
    b.subu(dx, t1, t2);
    b.sra(t0, dx, 31);
    b.xor(dx, dx, t0);
    b.subu(dx, dx, t0);
    // dy = |y[a] - y[c]|
    b.sll(t0, a, 2);
    b.addu(t0, t0, yb);
    b.lw(t1, 0, t0);
    b.sll(t0, c, 2);
    b.addu(t0, t0, yb);
    b.lw(t2, 0, t0);
    b.subu(dy, t1, t2);
    b.sra(t0, dy, 31);
    b.xor(dy, dy, t0);
    b.subu(dy, dy, t0);

    b.addu(t0, dx, dy); // bounding-box half-perimeter

    // Every 8th net: cost = (f32(cost) * 1.5) as i32.
    b.andi(t1, ni, 7);
    b.bne(t1, Reg::ZERO, no_fp);
    b.cvt_s_w(t0, t0);
    b.mul_s(t0, t0, fs);
    b.cvt_w_s(t0, t0);
    {
        let l = b.named("no_fp");
        b.bind(l);
    }
    b.addu(total, total, t0);

    b.addiu(ni, ni, 1);
    b.addiu(t0, ni, -(NETS as i16));
    b.bltz(t0, net);

    b.print_int(total);

    // Perturb: x[iter & (BLOCKS-1)] = (x + 3) & 63.
    b.andi(t0, iter, (BLOCKS - 1) as u16);
    b.sll(t0, t0, 2);
    b.addu(t0, t0, xb);
    b.lw(t1, 0, t0);
    b.addiu(t1, t1, 3);
    b.andi(t1, t1, 63);
    b.sw(t1, 0, t0);

    b.addiu(iter, iter, -1);
    b.bne(iter, Reg::ZERO, outer);
    b.exit();
    b.finish()
}

/// The Rust reference model.
pub fn reference(iters: u32) -> Vec<i32> {
    let (mut xs, ys, nets) = gen_placement();
    let mut out = Vec::new();
    let mut iter_reg = iters;
    for _ in 0..iters {
        let mut total = 0i32;
        for (ni, &nv) in nets.iter().enumerate() {
            let a = (nv >> 16) as usize;
            let c = (nv & 0xffff) as usize;
            let dx = (xs[a] as i32 - xs[c] as i32).abs();
            let dy = (ys[a] as i32 - ys[c] as i32).abs();
            let mut cost = dx + dy;
            if ni % 8 == 0 {
                cost = (cost as f32 * SCALE) as i32;
            }
            total = total.wrapping_add(cost);
        }
        out.push(total);
        let idx = (iter_reg & (BLOCKS - 1)) as usize;
        xs[idx] = (xs[idx] + 3) & 63;
        iter_reg -= 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::run_outputs;

    #[test]
    fn matches_reference() {
        let p = build(3);
        assert_eq!(run_outputs(&p, 2_000_000), reference(3));
    }

    #[test]
    fn perturbation_changes_cost() {
        let r = reference(4);
        assert!(r.windows(2).any(|w| w[0] != w[1]), "{r:?}");
    }
}
