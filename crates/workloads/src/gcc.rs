//! `gcc` stand-in: hashed symbol table with chained buckets.
//!
//! Compilers hammer hash tables of identifiers: hash, walk a short
//! collision chain comparing keys, bump a use count on a hit or insert at
//! the head on a miss. The chain-walk compare (`bne` on the key) and the
//! hit/miss split give the mixed predictability Table 1 shows for gcc,
//! with pointer-y loads layered over array indexing.

use crate::util::XorShift32;
use popk_isa::builder::Builder;
use popk_isa::{Program, Reg};

/// Tokens processed per outer iteration.
pub const TOKENS: u32 = 2048;
/// Distinct symbol key space.
pub const KEYS: u32 = 1024;
/// Hash buckets.
pub const BUCKETS: u32 = 256;
/// Node pool capacity (node = key, count, next; 16 B each).
pub const POOL: u32 = KEYS + 8;

const SEED: u32 = 0x0067_6363; // "gcc"

/// Node field offsets.
const KEY_OFF: i16 = 0;
const COUNT_OFF: i16 = 4;
const NEXT_OFF: i16 = 8;

fn gen_tokens() -> Vec<u32> {
    // Zipf-ish reuse: most tokens repeat a hot subset (symbol lookups hit),
    // a minority are fresh.
    let mut rng = XorShift32::new(SEED);
    (0..TOKENS)
        .map(|_| {
            if rng.below(4) != 0 {
                rng.below(KEYS / 8)
            } else {
                rng.below(KEYS)
            }
        })
        .collect()
}

/// Build the kernel; each iteration prints (hits, inserts).
pub fn build(iters: u32) -> Program {
    let tokens = gen_tokens();
    let mut b = Builder::new();
    let toks = b.data_words(&tokens);
    // Bucket heads: node address or 0.
    let buckets = b.data_space((BUCKETS * 4) as usize);
    let pool = b.data_space((POOL * 16) as usize);

    let (tokb, bktb, poolb, bump, hits, inserts, iter) = (
        Reg::gpr(16),
        Reg::gpr(17),
        Reg::gpr(18),
        Reg::gpr(19),
        Reg::gpr(20),
        Reg::gpr(21),
        Reg::gpr(8),
    );
    let (ti, key, node, t0, t1, head_addr) = (
        Reg::gpr(22),
        Reg::gpr(23),
        Reg::gpr(24),
        Reg::gpr(9),
        Reg::gpr(10),
        Reg::gpr(25),
    );

    b.here("main");
    b.la(tokb, toks);
    b.la(bktb, buckets);
    b.la(poolb, pool);
    b.li(iter, iters as i32);

    let outer = b.here("outer");
    // Reset: clear bucket heads, reset the bump allocator.
    b.li(t0, 0);
    let clear = b.here("clear");
    b.sll(t1, t0, 2);
    b.addu(t1, t1, bktb);
    b.sw(Reg::ZERO, 0, t1);
    b.addiu(t0, t0, 1);
    b.li(t1, BUCKETS as i32);
    b.bne(t0, t1, clear);
    b.li(bump, 0);
    b.li(hits, 0);
    b.li(inserts, 0);
    b.li(ti, 0);

    let token = b.here("token");
    b.sll(t0, ti, 2);
    b.addu(t0, t0, tokb);
    b.lw(key, 0, t0);

    // head_addr = &buckets[key & (BUCKETS-1)]
    b.andi(t0, key, (BUCKETS - 1) as u16);
    b.sll(t0, t0, 2);
    b.addu(head_addr, t0, bktb);
    b.lw(node, 0, head_addr);

    // Walk the chain.
    let walk = b.here("walk");
    let miss = b.named("miss");
    let hit = b.named("hit");
    let next_token = b.named("next_token");
    b.beq(node, Reg::ZERO, miss);
    b.lw(t0, KEY_OFF, node);
    b.beq(t0, key, hit);
    b.lw(node, NEXT_OFF, node);
    b.b(walk);

    {
        let l = b.named("hit");
        b.bind(l);
    }
    b.lw(t0, COUNT_OFF, node);
    b.addiu(t0, t0, 1);
    b.sw(t0, COUNT_OFF, node);
    b.addiu(hits, hits, 1);
    b.b(next_token);

    {
        let l = b.named("miss");
        b.bind(l);
    }
    // node = &pool[bump++]; init {key, 1, old_head}; head = node.
    b.sll(t0, bump, 4);
    b.addu(node, t0, poolb);
    b.addiu(bump, bump, 1);
    b.sw(key, KEY_OFF, node);
    b.li(t0, 1);
    b.sw(t0, COUNT_OFF, node);
    b.lw(t1, 0, head_addr);
    b.sw(t1, NEXT_OFF, node);
    b.sw(node, 0, head_addr);
    b.addiu(inserts, inserts, 1);

    {
        let l = b.named("next_token");
        b.bind(l);
    }
    b.addiu(ti, ti, 1);
    b.addiu(t0, ti, -(TOKENS as i16));
    b.bltz(t0, token);

    b.print_int(hits);
    b.print_int(inserts);
    b.addiu(iter, iter, -1);
    b.bne(iter, Reg::ZERO, outer);
    b.exit();
    b.finish()
}

/// The Rust reference model.
pub fn reference(iters: u32) -> Vec<i32> {
    let tokens = gen_tokens();
    let mut out = Vec::new();
    for _ in 0..iters {
        let mut table: Vec<Vec<u32>> = vec![Vec::new(); BUCKETS as usize];
        let (mut hits, mut inserts) = (0u32, 0u32);
        for &key in &tokens {
            let bucket = &mut table[(key & (BUCKETS - 1)) as usize];
            if bucket.contains(&key) {
                hits += 1;
            } else {
                bucket.push(key);
                inserts += 1;
            }
        }
        out.push(hits as i32);
        out.push(inserts as i32);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::util::run_outputs;

    #[test]
    fn matches_reference() {
        let p = build(2);
        assert_eq!(run_outputs(&p, 5_000_000), reference(2));
    }

    #[test]
    fn pool_capacity_suffices() {
        let r = reference(1);
        assert!(r[1] <= POOL as i32, "inserts {} exceed pool {}", r[1], POOL);
    }

    #[test]
    fn mostly_hits() {
        let r = reference(1);
        assert!(r[0] > r[1], "hot-set reuse should dominate: {r:?}");
    }
}
