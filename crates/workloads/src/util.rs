//! Shared helpers for kernel construction and validation.

use popk_emu::Machine;
use popk_isa::Program;

/// A deterministic xorshift32 stream used to generate kernel input data at
/// build time (both the assembly's data segment and the Rust reference
/// model draw from this, guaranteeing they see identical inputs).
#[derive(Clone, Copy, Debug)]
pub struct XorShift32 {
    state: u32,
}

impl XorShift32 {
    /// Seeded generator; `seed` must be nonzero.
    ///
    /// # Panics
    /// Panics if `seed == 0` (an all-zero xorshift state is absorbing).
    pub fn new(seed: u32) -> XorShift32 {
        assert_ne!(seed, 0);
        XorShift32 { state: seed }
    }

    /// Next 32-bit value.
    #[inline]
    pub fn next_u32(&mut self) -> u32 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 17;
        x ^= x << 5;
        self.state = x;
        x
    }

    /// Uniform value in `[0, bound)` (bound > 0; slight modulo bias is
    /// irrelevant for workload generation).
    #[inline]
    pub fn below(&mut self, bound: u32) -> u32 {
        debug_assert!(bound > 0);
        self.next_u32() % bound
    }
}

/// Run `program` to completion (within `limit` instructions) and return
/// the `PrintInt` output channel. Panics on emulation errors or a missed
/// exit — kernels are expected to terminate cleanly.
pub fn run_outputs(program: &Program, limit: u64) -> Vec<i32> {
    let mut m = Machine::new(program);
    let code = m
        .run(limit)
        .unwrap_or_else(|e| panic!("emulation error: {e}"));
    assert_eq!(
        code,
        Some(0),
        "kernel did not exit within {limit} instructions"
    );
    m.output_ints().to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xorshift_is_deterministic_and_nontrivial() {
        let mut a = XorShift32::new(0x1234_5678);
        let mut b = XorShift32::new(0x1234_5678);
        let xs: Vec<u32> = (0..16).map(|_| a.next_u32()).collect();
        let ys: Vec<u32> = (0..16).map(|_| b.next_u32()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn below_respects_bound() {
        let mut r = XorShift32::new(7);
        for _ in 0..1000 {
            assert!(r.below(13) < 13);
        }
    }

    #[test]
    #[should_panic]
    fn zero_seed_rejected() {
        let _ = XorShift32::new(0);
    }
}
